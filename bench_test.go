// Benchmarks regenerating the performance-relevant artifacts of the
// paper, one benchmark family per experiment of DESIGN.md. Absolute
// numbers depend on the machine; the shapes the paper implies — the
// translated relational plans beating naive world-set evaluation, the
// §5.3 optimized translation beating the general one, the Figure 8/9
// rewrites beating the originals, and the exponential repair-by-key
// blowup — must hold everywhere.
package worldsetdb_test

import (
	"fmt"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/inline"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/physical"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/rewrite"
	"worldsetdb/internal/translate"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
	"worldsetdb/internal/wsdexec"
)

// tripQuery is cert(π_Arr(χ_Dep(HFlights))) — Examples 5.6/5.8.
func tripQuery() wsa.Expr {
	return wsa.NewCert(&wsa.Project{Columns: []string{"Arr"},
		From: &wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "HFlights"}}})
}

// BenchmarkEvalStrategies compares the three evaluation strategies for
// the same 1↦1 query (EXP-PERF1): the Figure 3 reference evaluator over
// explicit world-sets, the Figure 6 general translation, and the §5.3
// optimized translation, across database sizes.
func BenchmarkEvalStrategies(b *testing.B) {
	for _, nDep := range []int{10, 40, 160} {
		flights := datagen.Flights(nDep, 20, 0.3, 5)
		db := ra.DB{"HFlights": flights}
		ws := worldset.FromDB([]string{"HFlights"}, []*relation.Relation{flights})
		q := tripQuery()

		b.Run(fmt.Sprintf("naiveWorldSet/deps=%d", nDep), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wsa.Eval(q, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
		gen, err := translate.ToRelational(q, []string{"HFlights"}, db)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("generalRA/deps=%d", nDep), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gen.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
		opt, err := translate.ToRelationalOptimized(q, []string{"HFlights"}, db)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("optimizedRA/deps=%d", nDep), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := opt.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure2Pipeline measures the Figure 2 world-creation pipeline
// (EXP-F2): χ_Dep followed by certain arrivals.
func BenchmarkFigure2Pipeline(b *testing.B) {
	for _, nDep := range []int{5, 20, 80} {
		flights := datagen.Flights(nDep, 20, 0.3, 7)
		ws := worldset.FromDB([]string{"Flights"}, []*relation.Relation{flights})
		q := wsa.NewCert(&wsa.Project{Columns: []string{"Arr"},
			From: &wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "Flights"}}})
		b.Run(fmt.Sprintf("deps=%d", nDep), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wsa.Eval(q, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// figure8Queries builds q1/q2 of Figures 8 and 9 and their optimizer
// outputs.
func figure8Queries(b *testing.B, close wsa.CloseKind) (orig, opt wsa.Expr) {
	b.Helper()
	inner := wsa.NewPossGroup([]string{"Dep"}, nil,
		&wsa.Choice{Attrs: []string{"Dep", "City"},
			From: wsa.NewProduct(&wsa.Rel{Name: "HFlights"}, &wsa.Rel{Name: "Hotels"})})
	orig = &wsa.Close{Kind: close,
		From: &wsa.Project{Columns: []string{"City"},
			From: &wsa.Select{Pred: ra.Eq("Arr", "City"), From: inner}}}
	env := wsa.NewEnv(
		[]string{"HFlights", "Hotels"},
		[]relation.Schema{relation.NewSchema("Dep", "Arr"), relation.NewSchema("Name", "City", "Price")})
	opt, _ = rewrite.Optimize(orig, env, true)
	return orig, opt
}

// BenchmarkQ1VsQ1Prime is the Figure 8 rewriting ablation (EXP-F8).
func BenchmarkQ1VsQ1Prime(b *testing.B) {
	q1, q1p := figure8Queries(b, wsa.CloseCert)
	benchRewritePair(b, q1, q1p)
}

// BenchmarkQ2VsQ2Prime is the Figure 9 rewriting ablation (EXP-F9).
func BenchmarkQ2VsQ2Prime(b *testing.B) {
	q2, q2p := figure8Queries(b, wsa.ClosePoss)
	benchRewritePair(b, q2, q2p)
}

func benchRewritePair(b *testing.B, orig, opt wsa.Expr) {
	for _, nDep := range []int{4, 12} {
		flights := datagen.Flights(nDep, 10, 0.4, 3)
		hotels := datagen.Hotels(10, 2, 4)
		ws := worldset.FromDB([]string{"HFlights", "Hotels"},
			[]*relation.Relation{flights, hotels})
		b.Run(fmt.Sprintf("original/deps=%d", nDep), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wsa.Eval(orig, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("rewritten/deps=%d", nDep), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wsa.Eval(opt, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAcquisition runs the §2 acquisition script end to end
// (EXP-S2-ACQ).
func BenchmarkAcquisition(b *testing.B) {
	for _, n := range []int{2, 8} {
		ce := datagen.CompanyEmp(n, 4)
		es := datagen.EmpSkills(n, 4, 4, 11)
		b.Run(fmt.Sprintf("companies=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := isql.FromDB([]string{"Company_Emp", "Emp_Skills"},
					[]*relation.Relation{ce.Clone(), es.Clone()})
				_, err := s.ExecScript(`
					create table U as select * from Company_Emp choice of CID;
					create table V as
					  select R1.CID, R1.EID
					  from Company_Emp R1, (select * from U choice of EID) R2
					  where R1.CID = R2.CID and R1.EID != R2.EID;
					create table W as
					  select certain CID, Skill from V, Emp_Skills
					  where V.EID = Emp_Skills.EID
					  group worlds by (select CID from V);
					select possible CID from W where Skill = 'S0';`)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTPCHWhatIf runs the §2 what-if revenue analysis
// (EXP-S2-TPCH).
func BenchmarkTPCHWhatIf(b *testing.B) {
	for _, n := range []int{20, 60} {
		li := datagen.Lineitem(n, 3, 4, 42)
		b.Run(fmt.Sprintf("products=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := isql.FromDB([]string{"Lineitem"}, []*relation.Relation{li.Clone()})
				_, err := s.ExecScript(`create table YearQuantity as
					select A.Year, sum(A.Price) as Revenue
					from (select * from Lineitem choice of Year) as A
					where Quantity not in (select * from Lineitem choice of Quantity)
					group by A.Year;
					select possible Year from YearQuantity as Y
					where (select sum(Price) from Lineitem where Lineitem.Year = Y.Year) - Y.Revenue > 100000;`)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRepairByKey measures the exponential repair enumeration
// (EXP-S2-CENSUS): 2^dups worlds.
func BenchmarkRepairByKey(b *testing.B) {
	for _, dups := range []int{2, 6, 10} {
		census := datagen.Census(100, dups, 3)
		b.Run(fmt.Sprintf("dups=%d", dups), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := isql.FromDB([]string{"Census"}, []*relation.Relation{census.Clone()})
				if _, err := s.ExecString("create table Clean as select * from Census repair by key SSN;"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDivisionVsNotExists compares the three formulations of the
// trip-planning question (EXP-S2-SQL); the workload is small because the
// double-not-exists variant is cubic with correlated subqueries.
func BenchmarkDivisionVsNotExists(b *testing.B) {
	flights := datagen.Flights(6, 8, 0.5, 9)
	queries := map[string]string{
		"choiceCertain": "select certain Arr from HFlights choice of Dep;",
		"divideBy": "select Arr from (select Arr, Dep from HFlights) as F1 " +
			"divide by (select Dep from HFlights) as F2 on F1.Dep = F2.Dep;",
		"doubleNotExists": "select F1.Arr from HFlights F1 where not exists " +
			"(select * from HFlights F2 where not exists " +
			"(select * from HFlights F3 where F3.Dep = F2.Dep and F3.Arr = F1.Arr));",
	}
	for name, sql := range queries {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := isql.FromDB([]string{"HFlights"}, []*relation.Relation{flights})
				if _, err := s.ExecString(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTranslation measures plan generation itself: the Figure 6
// general translation vs the §5.3 optimized translation (EXP-E56/E58).
func BenchmarkTranslation(b *testing.B) {
	cat := ra.SchemaCatalog{"HFlights": relation.NewSchema("Dep", "Arr")}
	q := tripQuery()
	b.Run("general", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := translate.ToRelational(q, []string{"HFlights"}, cat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := translate.ToRelationalOptimized(q, []string{"HFlights"}, cat); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRewriteOptimizer measures the Figure 7 rewrite search on the
// Figure 8 query (EXP-PERF2).
func BenchmarkRewriteOptimizer(b *testing.B) {
	q, _ := figure8Queries(b, wsa.CloseCert)
	env := wsa.NewEnv(
		[]string{"HFlights", "Hotels"},
		[]relation.Schema{relation.NewSchema("Dep", "Arr"), relation.NewSchema("Name", "City", "Price")})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rewrite.Optimize(q, env, true)
	}
}

// BenchmarkPhysicalOperators is the EXP-PHYS ablation: the same
// group-worlds-by query evaluated by the naive Figure 3 evaluator, the
// generated Figure 6 relational plan over the inlined representation,
// and the dedicated physical operators of the paper's conclusion. The
// largest size (~10k base tuples, 400 worlds) exercises the parallel
// world-partitioned execution paths; the quadratic Figure 6 plan is
// skipped there.
func BenchmarkPhysicalOperators(b *testing.B) {
	q := wsa.NewPossGroup([]string{"Arr"}, []string{"Dep", "Arr"},
		&wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "Flights"}})
	for _, size := range []struct{ nDep, nArr int }{
		{5, 15}, {20, 15}, {80, 15}, {400, 90},
	} {
		flights := datagen.Flights(size.nDep, size.nArr, 0.3, 7)
		ws := worldset.FromDB([]string{"Flights"}, []*relation.Relation{flights})
		b.Run(fmt.Sprintf("naive/deps=%d", size.nDep), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wsa.Eval(q, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
		if size.nDep <= 80 {
			b.Run(fmt.Sprintf("figure6RA/deps=%d", size.nDep), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := translate.EvalWorldSet(q, ws); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("physical/deps=%d", size.nDep), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := physical.EvalWorldSet(q, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWSDRepair is the EXP-WSD ablation: the repair view as an
// explicit enumeration vs as a world-set decomposition with direct
// certain-answer computation.
func BenchmarkWSDRepair(b *testing.B) {
	for _, dups := range []int{6, 12} {
		census := datagen.Census(200, dups, 3)
		if dups <= 10 {
			b.Run(fmt.Sprintf("enumeration/dups=%d", dups), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s := isql.FromDB([]string{"Census"}, []*relation.Relation{census.Clone()})
					if _, err := s.ExecString("create table Clean as select * from Census repair by key SSN;"); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("decomposition/dups=%d", dups), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := wsd.RepairByKey("Census", census, []string{"SSN"})
				if err != nil {
					b.Fatal(err)
				}
				if d.Cert().Empty() {
					b.Fatal("unexpected empty certain answer")
				}
			}
		})
	}
}

// BenchmarkWSDX is the PR 2 tentpole ablation: certain answers over the
// census-repair view, evaluated by the factorized engine directly on
// the decomposition (cost linear in the input, independent of the world
// count — the dups=40 case covers 2^40 worlds) versus the physical
// engine over the pre-encoded inlined repair at the largest world count
// it can still enumerate. The encode happens outside the timer, so the
// physical engine is charged only for its certain-answer pass.
func BenchmarkWSDX(b *testing.B) {
	certQ := wsa.NewCert(&wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}})
	for _, dups := range []int{12, 40} {
		census := datagen.Census(200, dups, 3)
		db := wsd.FromComplete([]string{"Census"}, []*relation.Relation{census})
		b.Run(fmt.Sprintf("wsdexec/dups=%d", dups), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, plan, err := wsdexec.EvalOpts(certQ, db, &wsdexec.Options{NoFallback: true})
				if err != nil {
					b.Fatal(err)
				}
				if !plan.Native {
					b.Fatalf("plan not native: %v", plan)
				}
			}
		})
	}
	census := datagen.Census(50, 12, 3)
	ws := worldset.FromDB([]string{"Census"}, []*relation.Relation{census})
	clean, err := wsa.Run(&wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}}, ws, "Clean")
	if err != nil {
		b.Fatal(err)
	}
	repr := inline.Encode(clean)
	certClean := wsa.NewCert(&wsa.Rel{Name: "Clean"})
	b.Run("physical/dups=12", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := physical.Eval(certClean, repr); err != nil {
				b.Fatal(err)
			}
		}
	})
	smallDB := wsd.FromComplete([]string{"Census"}, []*relation.Relation{census})
	b.Run("wsdexecSmall/dups=12", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := wsdexec.EvalOpts(certQ, smallDB, &wsdexec.Options{NoFallback: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkInlineRoundTrip measures encode/decode of the inlined
// representation (EXP-F4) via the m↦m evaluation path.
func BenchmarkInlineRoundTrip(b *testing.B) {
	flights := datagen.Flights(40, 20, 0.3, 5)
	ws := worldset.FromDB([]string{"HFlights"}, []*relation.Relation{flights})
	q := &wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "HFlights"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := translate.EvalWorldSet(q, ws); err != nil {
			b.Fatal(err)
		}
	}
}
