// Command isql executes I-SQL scripts over world-sets backed by the
// decomposition-native store.
//
// Usage:
//
//	isql [-demo name] [-engine name] [-load file.wsd] [-save file.wsd] [-worlds] [script.isql]
//
// Without a script argument, statements are read from standard input.
// The -demo flag preloads one of the paper's datasets: flights,
// acquisition, census or lineitem; -load instead opens a catalog
// persisted as a .wsd JSON file, and -save writes the catalog back
// after the script ran — the decomposition round-trips in space linear
// in its size whatever the world count. After every select, the
// distinct answers across worlds are printed; -worlds additionally
// prints the whole world-set after each statement (or the
// decomposition summary when the world count exceeds the expansion
// budget).
//
// The -engine flag routes statements in the clean World-set Algebra
// fragment through one of the registered evaluation engines (reference
// | translated | physical | wsdexec, the default), all running against
// the session's catalog snapshot; the special name "legacy" forces the
// explicit world-set evaluator everywhere. Statements outside the
// fragment (aggregates, correlated subqueries) always use the explicit
// evaluator over a budget-guarded expansion, with results re-factorized
// into the catalog.
//
// Scripts may use the transactional statements BEGIN / COMMIT /
// ROLLBACK (multi-statement atomicity over one staged snapshot) and
// PREPARE name AS ... / EXECUTE name(args) with $1..$N placeholders
// (parse-once execution through the session plan cache).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/wsa"

	// Register the translated, physical and factorized engines with the
	// wsa engine registry (the reference engine registers itself).
	_ "worldsetdb/internal/physical"
	_ "worldsetdb/internal/translate"
	_ "worldsetdb/internal/wsdexec"
)

func main() {
	demo := flag.String("demo", "", "preload a demo database: flights | acquisition | census | lineitem")
	load := flag.String("load", "", "open a catalog persisted as a .wsd JSON file")
	save := flag.String("save", "", "persist the catalog to a .wsd JSON file after the script ran")
	engine := flag.String("engine", "",
		fmt.Sprintf("evaluate fragment statements through a registered WSA engine (%s) or 'legacy'; default: wsdexec on the decomposition",
			strings.Join(wsa.EngineNames(), " | ")))
	showWorlds := flag.Bool("worlds", false, "print the full world-set (or decomposition summary) after every statement")
	flag.Parse()

	session, err := newSession(*demo, *load)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	session.Engine = *engine

	var input string
	switch flag.NArg() {
	case 0:
		data, err := readAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		input = data
	case 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		input = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: isql [-demo name] [-load file.wsd] [-save file.wsd] [-worlds] [script.isql]")
		os.Exit(2)
	}

	stmts, err := isql.ParseScript(input)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, st := range stmts {
		fmt.Printf("isql> %s\n", st)
		res, err := session.Exec(st)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		switch {
		case len(res.Answers) > 0:
			for i, a := range res.Answers {
				caption := "answer"
				if len(res.Answers) > 1 {
					caption = fmt.Sprintf("answer variant %d of %d", i+1, len(res.Answers))
				}
				fmt.Println(a.Render(caption))
			}
		case res.Message != "":
			fmt.Printf("%s\n\n", res.Message)
		case res.Affected > 0:
			fmt.Printf("%d tuple(s) affected across %s world(s)\n\n", res.Affected, session.Worlds())
		default:
			fmt.Printf("ok; %s world(s)\n\n", session.Worlds())
		}
		if *showWorlds {
			if ws := session.WorldSet(); ws != nil {
				fmt.Println(ws)
			} else {
				fmt.Println(session.Catalog().Snapshot().DB)
			}
		}
	}

	if *save != "" {
		if err := isql.SaveCatalog(*save, session); err != nil {
			fmt.Fprintln(os.Stderr, "error saving catalog:", err)
			os.Exit(1)
		}
		fmt.Printf("catalog saved to %s\n", *save)
	}
}

func newSession(demo, load string) (*isql.Session, error) {
	if load != "" {
		if demo != "" {
			return nil, fmt.Errorf("isql: -demo and -load are mutually exclusive")
		}
		return isql.LoadCatalog(load)
	}
	if demo == "" {
		return isql.NewSession(), nil
	}
	names, rels, err := datagen.DemoDB(demo)
	if err != nil {
		return nil, err
	}
	return isql.FromDB(names, rels), nil
}

func readAll(f *os.File) (string, error) {
	var sb strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String(), sc.Err()
}
