// Command isql executes I-SQL scripts over world-sets.
//
// Usage:
//
//	isql [-demo name] [-worlds] [script.isql]
//
// Without a script argument, statements are read from standard input.
// The -demo flag preloads one of the paper's datasets: flights,
// acquisition, census or lineitem. After every select, the distinct
// answers across worlds are printed; -worlds additionally prints the
// whole world-set after each statement.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/relation"
)

func main() {
	demo := flag.String("demo", "", "preload a demo database: flights | acquisition | census | lineitem")
	showWorlds := flag.Bool("worlds", false, "print the full world-set after every statement")
	flag.Parse()

	session, err := newSession(*demo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var input string
	switch flag.NArg() {
	case 0:
		data, err := readAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		input = data
	case 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		input = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: isql [-demo name] [-worlds] [script.isql]")
		os.Exit(2)
	}

	stmts, err := isql.ParseScript(input)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, st := range stmts {
		fmt.Printf("isql> %s\n", st)
		res, err := session.Exec(st)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		switch {
		case len(res.Answers) > 0:
			for i, a := range res.Answers {
				caption := "answer"
				if len(res.Answers) > 1 {
					caption = fmt.Sprintf("answer variant %d of %d", i+1, len(res.Answers))
				}
				fmt.Println(a.Render(caption))
			}
		case res.Affected > 0:
			fmt.Printf("%d tuple(s) affected across %d world(s)\n\n",
				res.Affected, session.WorldSet().Len())
		default:
			fmt.Printf("ok; %d world(s)\n\n", session.WorldSet().Len())
		}
		if *showWorlds {
			fmt.Println(session.WorldSet())
		}
	}
}

func newSession(demo string) (*isql.Session, error) {
	switch demo {
	case "":
		return isql.NewSession(), nil
	case "flights":
		return isql.FromDB([]string{"HFlights"},
			[]*relation.Relation{datagen.PaperFlights()}), nil
	case "acquisition":
		return isql.FromDB([]string{"Company_Emp", "Emp_Skills"},
			[]*relation.Relation{datagen.PaperCompanyEmp(), datagen.PaperEmpSkills()}), nil
	case "census":
		return isql.FromDB([]string{"Census"},
			[]*relation.Relation{datagen.PaperCensus()}), nil
	case "lineitem":
		return isql.FromDB([]string{"Lineitem"},
			[]*relation.Relation{datagen.Lineitem(60, 3, 4, 42)}), nil
	}
	return nil, fmt.Errorf("unknown demo %q (want flights, acquisition, census or lineitem)", demo)
}

func readAll(f *os.File) (string, error) {
	var sb strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String(), sc.Err()
}
