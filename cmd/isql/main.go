// Command isql executes I-SQL scripts over world-sets.
//
// Usage:
//
//	isql [-demo name] [-engine name] [-worlds] [script.isql]
//
// Without a script argument, statements are read from standard input.
// The -demo flag preloads one of the paper's datasets: flights,
// acquisition, census or lineitem. After every select, the distinct
// answers across worlds are printed; -worlds additionally prints the
// whole world-set after each statement.
//
// The -engine flag routes select statements through one of the four
// registered evaluation engines (reference | translated | physical |
// wsdexec) instead of the session's own evaluator: the statement is
// compiled to World-set Algebra and dispatched via the engine registry
// in internal/wsa. Statements outside the clean WSA fragment
// (aggregates, correlated subqueries, updates) fall back to the session
// evaluator with a notice.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/wsa"

	// Register the translated, physical and factorized engines with the
	// wsa engine registry (the reference engine registers itself).
	_ "worldsetdb/internal/physical"
	_ "worldsetdb/internal/translate"
	_ "worldsetdb/internal/wsdexec"
)

func main() {
	demo := flag.String("demo", "", "preload a demo database: flights | acquisition | census | lineitem")
	engine := flag.String("engine", "",
		fmt.Sprintf("evaluate selects through a registered WSA engine (%s); default: the session evaluator",
			strings.Join(wsa.EngineNames(), " | ")))
	showWorlds := flag.Bool("worlds", false, "print the full world-set after every statement")
	flag.Parse()

	session, err := newSession(*demo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var input string
	switch flag.NArg() {
	case 0:
		data, err := readAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		input = data
	case 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		input = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: isql [-demo name] [-worlds] [script.isql]")
		os.Exit(2)
	}

	stmts, err := isql.ParseScript(input)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, st := range stmts {
		fmt.Printf("isql> %s\n", st)
		if *engine != "" {
			if sel, ok := st.(*isql.SelectStmt); ok {
				if done := execViaEngine(session, sel, *engine); done {
					// Selects leave the session's world-set unchanged,
					// so -worlds prints the same state the session
					// evaluator would.
					if *showWorlds {
						fmt.Println(session.WorldSet())
					}
					continue
				}
			}
		}
		res, err := session.Exec(st)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		switch {
		case len(res.Answers) > 0:
			for i, a := range res.Answers {
				caption := "answer"
				if len(res.Answers) > 1 {
					caption = fmt.Sprintf("answer variant %d of %d", i+1, len(res.Answers))
				}
				fmt.Println(a.Render(caption))
			}
		case res.Affected > 0:
			fmt.Printf("%d tuple(s) affected across %d world(s)\n\n",
				res.Affected, session.WorldSet().Len())
		default:
			fmt.Printf("ok; %d world(s)\n\n", session.WorldSet().Len())
		}
		if *showWorlds {
			fmt.Println(session.WorldSet())
		}
	}
}

// execViaEngine compiles a select to World-set Algebra and dispatches
// it through the named engine from the wsa registry, printing the
// distinct answers across worlds. It reports false (fall back to the
// session evaluator) when the statement lies outside the clean WSA
// fragment, and exits on engine errors like the main loop does.
func execViaEngine(session *isql.Session, sel *isql.SelectStmt, engine string) bool {
	q, err := session.Compile(sel)
	if err != nil {
		fmt.Printf("(outside the clean WSA fragment, using the session evaluator: %v)\n", err)
		return false
	}
	out, err := wsa.EvalWith(engine, q, session.WorldSet())
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	answers := isql.DistinctAnswers(out)
	for i, a := range answers {
		caption := fmt.Sprintf("answer (%s engine)", engine)
		if len(answers) > 1 {
			caption = fmt.Sprintf("answer variant %d of %d (%s engine)", i+1, len(answers), engine)
		}
		fmt.Println(a.Render(caption))
	}
	return true
}

func newSession(demo string) (*isql.Session, error) {
	switch demo {
	case "":
		return isql.NewSession(), nil
	case "flights":
		return isql.FromDB([]string{"HFlights"},
			[]*relation.Relation{datagen.PaperFlights()}), nil
	case "acquisition":
		return isql.FromDB([]string{"Company_Emp", "Emp_Skills"},
			[]*relation.Relation{datagen.PaperCompanyEmp(), datagen.PaperEmpSkills()}), nil
	case "census":
		return isql.FromDB([]string{"Census"},
			[]*relation.Relation{datagen.PaperCensus()}), nil
	case "lineitem":
		return isql.FromDB([]string{"Lineitem"},
			[]*relation.Relation{datagen.Lineitem(60, 3, 4, 42)}), nil
	}
	return nil, fmt.Errorf("unknown demo %q (want flights, acquisition, census or lineitem)", demo)
}

func readAll(f *os.File) (string, error) {
	var sb strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String(), sc.Err()
}
