// Command isqld serves I-SQL sessions concurrently over a shared
// decomposition-native catalog (see internal/isqld for the protocol).
//
// Usage:
//
//	isqld [-addr host:port] [-demo name] [-load file.wsd] [-save file.wsd] [-engine name]
//
// The catalog starts empty, from one of the paper's demo datasets
// (-demo flights | acquisition | census | lineitem), or from a .wsd
// catalog file (-load). With -save, the catalog is persisted on
// graceful shutdown (SIGINT/SIGTERM). Clients POST I-SQL scripts to
// /exec and read catalog statistics from /stats:
//
//	curl --data-binary 'select certain Name from Clean;' http://localhost:8486/exec
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isqld"
	"worldsetdb/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8486", "listen address")
	demo := flag.String("demo", "", "preload a demo database: flights | acquisition | census | lineitem")
	load := flag.String("load", "", "open a catalog persisted as a .wsd JSON file")
	save := flag.String("save", "", "persist the catalog to a .wsd JSON file on graceful shutdown")
	engine := flag.String("engine", "", "evaluation engine for fragment statements (default: wsdexec)")
	flag.Parse()

	cat, err := newCatalog(*demo, *load)
	if err != nil {
		log.Fatal(err)
	}
	srv := isqld.New(cat, isqld.WithEngine(*engine))

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		snap := cat.Snapshot()
		log.Printf("isqld: serving on http://%s — %d relation(s), %s world(s), size %d",
			*addr, len(snap.DB.Names), snap.DB.Worlds(), snap.DB.Size())
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("isqld: shutdown: %v", err)
	}
	if *save != "" {
		if err := store.SaveFile(*save, cat.Snapshot()); err != nil {
			log.Fatalf("isqld: saving catalog: %v", err)
		}
		log.Printf("isqld: catalog saved to %s", *save)
	}
}

func newCatalog(demo, load string) (*store.Catalog, error) {
	if load != "" {
		if demo != "" {
			return nil, fmt.Errorf("isqld: -demo and -load are mutually exclusive")
		}
		return store.LoadFile(load)
	}
	if demo == "" {
		return store.New(nil), nil
	}
	names, rels, err := datagen.DemoDB(demo)
	if err != nil {
		return nil, err
	}
	return store.FromComplete(names, rels), nil
}
