// Command isqld serves I-SQL sessions concurrently over a shared
// decomposition-native catalog (see internal/isqld for the protocol).
//
// Usage:
//
//	isqld [-addr host:port] [-demo name] [-load file.wsd] [-save file.wsd]
//	      [-engine name] [-wal dir] [-checkpoint-every n]
//
// The catalog starts empty, from one of the paper's demo datasets
// (-demo flights | acquisition | census | lineitem), or from a .wsd
// catalog file (-load). With -save, the catalog is persisted on
// graceful shutdown (SIGINT/SIGTERM). Clients POST I-SQL scripts to
// /exec (with an X-ISQL-Session header for sticky transactional
// sessions), register prepared statements on /prepare, run them via
// /execute, and read catalog statistics from /stats:
//
//	curl --data-binary 'select certain Name from Clean;' http://localhost:8486/exec
//
// # Durability
//
// With -wal, the catalog is durable: every committed transaction is
// appended (statement texts, CRC-framed, fsynced) to dir/wal.log before
// it becomes visible, and dir/checkpoint.wsd holds the last checkpoint.
// On startup the server recovers the checkpoint plus the replayed log
// tail — a crash loses nothing committed. -checkpoint-every bounds
// replay work by checkpointing after that many logged commits (0 =
// checkpoint only on graceful shutdown). When the directory already
// holds state, it wins over -demo/-load; a fresh directory is seeded
// from them and checkpointed immediately so the seed itself is durable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/isqld"
	"worldsetdb/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8486", "listen address")
	demo := flag.String("demo", "", "preload a demo database: flights | acquisition | census | lineitem")
	load := flag.String("load", "", "open a catalog persisted as a .wsd JSON file")
	save := flag.String("save", "", "persist the catalog to a .wsd JSON file on graceful shutdown")
	engine := flag.String("engine", "", "evaluation engine for fragment statements (default: wsdexec)")
	walDir := flag.String("wal", "", "directory for WAL-backed durability (checkpoint.wsd + wal.log)")
	ckptEvery := flag.Int("checkpoint-every", 256, "with -wal: checkpoint after this many logged commits (0 = only on shutdown)")
	txnRetries := flag.Int("txn-retries", 16, "automatic conflict retries per transaction (0 = surface conflicts immediately)")
	flag.Parse()

	cat, wal, ckptPath, err := openCatalog(*demo, *load, *walDir)
	if err != nil {
		log.Fatal(err)
	}
	srv := isqld.New(cat, isqld.WithEngine(*engine), isqld.WithTxnRetries(*txnRetries))

	// Bound WAL replay work: checkpoint once enough commits accumulated.
	stopCkpt := make(chan struct{})
	if wal != nil && *ckptEvery > 0 {
		go func() {
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for {
				select {
				case <-stopCkpt:
					return
				case <-tick.C:
					if wal.Appended() >= *ckptEvery {
						if err := cat.Checkpoint(wal, ckptPath); err != nil {
							log.Printf("isqld: checkpoint: %v", err)
						} else {
							log.Printf("isqld: checkpointed catalog v%d, WAL truncated", cat.Snapshot().Version)
						}
					}
				}
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		snap := cat.Snapshot()
		log.Printf("isqld: serving on http://%s — %d relation(s), %s world(s), size %d, version %d",
			*addr, len(snap.DB.Names), snap.DB.Worlds(), snap.DB.Size(), snap.Version)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	close(stopCkpt)
	srv.Close() // stop the idle-session sweeper
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("isqld: shutdown: %v", err)
	}
	if wal != nil {
		if err := cat.Checkpoint(wal, ckptPath); err != nil {
			log.Fatalf("isqld: final checkpoint: %v", err)
		}
		wal.Close()
		log.Printf("isqld: checkpointed to %s", ckptPath)
	}
	if *save != "" {
		if err := store.SaveFile(*save, cat.Snapshot()); err != nil {
			log.Fatalf("isqld: saving catalog: %v", err)
		}
		log.Printf("isqld: catalog saved to %s", *save)
	}
}

// openCatalog builds the serving catalog. Without -wal it is the PR 3
// behavior (empty, demo, or loaded file, all in-memory). With -wal,
// existing durable state (checkpoint and/or log) is recovered and wins;
// otherwise the seed is installed and immediately checkpointed.
func openCatalog(demo, load, walDir string) (*store.Catalog, *store.WAL, string, error) {
	if walDir == "" {
		cat, err := newCatalog(demo, load)
		return cat, nil, "", err
	}
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return nil, nil, "", err
	}
	ckptPath := filepath.Join(walDir, "checkpoint.wsd")
	walPath := filepath.Join(walDir, "wal.log")
	_, ckErr := os.Stat(ckptPath)
	wi, wErr := os.Stat(walPath)
	if ckErr == nil || (wErr == nil && wi.Size() > 0) {
		if demo != "" || load != "" {
			log.Printf("isqld: %s already holds catalog state; ignoring -demo/-load", walDir)
		}
		cat, wal, err := isql.OpenStore(ckptPath, walPath)
		return cat, wal, ckptPath, err
	}
	cat, err := newCatalog(demo, load)
	if err != nil {
		return nil, nil, "", err
	}
	wal, _, err := store.OpenWAL(walPath)
	if err != nil {
		return nil, nil, "", err
	}
	// Make the seed itself durable before the first transaction: replay
	// starts from the checkpoint, which must therefore include it.
	if err := wal.Checkpoint(cat.Snapshot(), ckptPath); err != nil {
		wal.Close()
		return nil, nil, "", err
	}
	cat.SetLogger(wal)
	return cat, wal, ckptPath, nil
}

func newCatalog(demo, load string) (*store.Catalog, error) {
	if load != "" {
		if demo != "" {
			return nil, fmt.Errorf("isqld: -demo and -load are mutually exclusive")
		}
		return store.LoadFile(load)
	}
	if demo == "" {
		return store.New(nil), nil
	}
	names, rels, err := datagen.DemoDB(demo)
	if err != nil {
		return nil, err
	}
	return store.FromComplete(names, rels), nil
}
