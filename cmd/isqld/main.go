// Command isqld serves I-SQL sessions concurrently over a shared
// decomposition-native catalog (see internal/isqld for the protocol).
//
// Usage:
//
//	isqld [-addr host:port] [-demo name] [-load file.wsd] [-save file.wsd]
//	      [-engine name] [-wal dir] [-checkpoint-every n] [-shards n]
//	      [-slow-query dur] [-debug-addr host:port]
//
// The catalog starts empty, from one of the paper's demo datasets
// (-demo flights | acquisition | census | lineitem), or from a .wsd
// catalog file (-load). With -save, the catalog is persisted on
// graceful shutdown (SIGINT/SIGTERM). Clients POST I-SQL scripts to
// /exec (with an X-ISQL-Session header for sticky transactional
// sessions), register prepared statements on /prepare, run them via
// /execute, and read catalog statistics from /stats:
//
//	curl --data-binary 'select certain Name from Clean;' http://localhost:8486/exec
//
// # Observability
//
// GET /metrics serves Prometheus text exposition (request and
// execution counters, per-shard commit-queue and WAL-fsync latency
// histograms, per-relation decomposition gauges); GET /healthz a JSON
// liveness document with the shard count and last durable epoch per
// shard. With -slow-query, any statement slower than the threshold
// writes its full span tree (parse → compile → per-operator
// evaluation → commit → fsync) to stderr as one JSON line. With
// -debug-addr, a second listener serves net/http/pprof profiles —
// keep it on a loopback or otherwise private address.
//
// # Durability
//
// With -wal, the catalog is durable: every committed transaction is
// appended (statement texts plus a page delta, CRC-framed, fsynced) to
// dir/wal.log before it becomes visible, and dir/checkpoint.wsd holds
// the last checkpoint as an incremental page file — each checkpoint
// rewrites only the pages of components touched since the previous one,
// through a fixed-size buffer pool (-pool-pages frames per shard), and
// a checkpoint with nothing new writes zero bytes. A pre-existing v1
// JSON checkpoint is still recovered; the first checkpoint after the
// upgrade migrates it to the page format in place. On startup the
// server recovers the checkpoint plus the replayed log tail — records
// carrying page deltas apply directly to the base without re-executing
// statements — so a crash loses nothing committed. -checkpoint-every
// bounds replay work by checkpointing after that many logged commits
// (0 = checkpoint only on graceful shutdown). When the directory
// already holds state, it wins over -demo/-load; a fresh directory is
// seeded from them and checkpointed immediately so the seed itself is
// durable.
//
// # Sharding
//
// With -shards n (n > 1), the catalog is component-sharded: relations
// hash to one of n shards, commits touching disjoint shards execute
// and fsync fully in parallel, and with -wal each shard logs to its own
// dir/wal-<i>.log segment (cross-shard commits use a two-phase
// stage+marker protocol; recovery merges the segments by epoch). The
// shard count is a runtime property: restarting with a different
// -shards is allowed after a clean shutdown (the checkpoint carries no
// shard layout), but segments written at one count must be recovered at
// the same count before changing it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/isqld"
	"worldsetdb/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8486", "listen address")
	demo := flag.String("demo", "", "preload a demo database: flights | acquisition | census | lineitem")
	load := flag.String("load", "", "open a catalog persisted as a .wsd JSON file")
	save := flag.String("save", "", "persist the catalog to a .wsd JSON file on graceful shutdown")
	engine := flag.String("engine", "", "evaluation engine for fragment statements (default: wsdexec)")
	walDir := flag.String("wal", "", "directory for WAL-backed durability (checkpoint.wsd + wal.log)")
	ckptEvery := flag.Int("checkpoint-every", 256, "with -wal: checkpoint after this many logged commits (0 = only on shutdown)")
	txnRetries := flag.Int("txn-retries", 16, "automatic conflict retries per transaction (0 = surface conflicts immediately)")
	shards := flag.Int("shards", 1, "component shards: commits on disjoint shards run in parallel, each with its own WAL segment (1 = unsharded)")
	poolPages := flag.Int("pool-pages", store.DefaultPoolPages, "with -wal: buffer-pool capacity in pages per shard for the paged checkpoint base")
	slowQuery := flag.Duration("slow-query", 0, "log the span tree of statements slower than this as JSON lines on stderr (0 = off)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on a second listener (keep it private)")
	flag.Parse()

	cat, wals, ckptPath, err := openCatalog(*demo, *load, *walDir, *shards, *poolPages)
	if err != nil {
		log.Fatal(err)
	}
	opts := []isqld.Option{isqld.WithEngine(*engine), isqld.WithTxnRetries(*txnRetries)}
	if *slowQuery > 0 {
		opts = append(opts, isqld.WithSlowQuery(*slowQuery, os.Stderr))
	}
	srv := isqld.New(cat, opts...)

	if *debugAddr != "" {
		// The pprof import registers on http.DefaultServeMux; serve that
		// mux on the debug listener only — the main handler never exposes
		// profiles.
		go func() {
			log.Printf("isqld: pprof on http://%s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("isqld: debug listener: %v", err)
			}
		}()
	}

	appended := func() int {
		n := 0
		for _, w := range wals {
			n += w.Appended()
		}
		return n
	}
	checkpoint := func() error {
		if cat.Shards() > 1 {
			return cat.CheckpointAll(ckptPath)
		}
		return cat.Checkpoint(wals[0], ckptPath)
	}

	// Bound WAL replay work: checkpoint once enough commits accumulated
	// across all segments.
	stopCkpt := make(chan struct{})
	if len(wals) > 0 && *ckptEvery > 0 {
		go func() {
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for {
				select {
				case <-stopCkpt:
					return
				case <-tick.C:
					if appended() >= *ckptEvery {
						if err := checkpoint(); err != nil {
							log.Printf("isqld: checkpoint: %v", err)
						} else {
							log.Printf("isqld: checkpointed catalog v%d, WAL truncated", cat.Snapshot().Version)
						}
					}
				}
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		snap := cat.Snapshot()
		log.Printf("isqld: serving on http://%s — %d relation(s), %s world(s), size %d, version %d, %d shard(s)",
			*addr, len(snap.DB.Names), snap.DB.Worlds(), snap.DB.Size(), snap.Version, cat.Shards())
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	close(stopCkpt)
	srv.Close() // stop the idle-session sweeper
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("isqld: shutdown: %v", err)
	}
	if len(wals) > 0 {
		if err := checkpoint(); err != nil {
			log.Fatalf("isqld: final checkpoint: %v", err)
		}
		for _, w := range wals {
			w.Close()
		}
		log.Printf("isqld: checkpointed to %s", ckptPath)
	}
	if *save != "" {
		if err := store.SaveFile(*save, cat.Snapshot()); err != nil {
			log.Fatalf("isqld: saving catalog: %v", err)
		}
		log.Printf("isqld: catalog saved to %s", *save)
	}
}

// openCatalog builds the serving catalog. Without -wal it is in-memory
// (empty, demo, or loaded file), sharded on request. With -wal,
// existing durable state (checkpoint and/or log segments) is recovered
// and wins; otherwise the seed is installed and immediately
// checkpointed. A nil/empty WAL slice means not durable.
func openCatalog(demo, load, walDir string, shards, poolPages int) (*store.Catalog, []*store.WAL, string, error) {
	if walDir == "" {
		cat, err := newCatalog(demo, load)
		if err != nil {
			return nil, nil, "", err
		}
		cat.Reshard(shards)
		return cat, nil, "", nil
	}
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return nil, nil, "", err
	}
	ckptPath := filepath.Join(walDir, "checkpoint.wsd")
	if shards > 1 {
		return openShardedCatalog(demo, load, walDir, ckptPath, shards, poolPages)
	}
	walPath := filepath.Join(walDir, "wal.log")
	_, ckErr := os.Stat(ckptPath)
	wi, wErr := os.Stat(walPath)
	if ckErr == nil || (wErr == nil && wi.Size() > 0) {
		if demo != "" || load != "" {
			log.Printf("isqld: %s already holds catalog state; ignoring -demo/-load", walDir)
		}
		cat, wal, err := isql.OpenStorePaged(ckptPath, walPath, poolPages)
		if err != nil {
			return nil, nil, "", err
		}
		return cat, []*store.WAL{wal}, ckptPath, nil
	}
	cat, err := newCatalog(demo, load)
	if err != nil {
		return nil, nil, "", err
	}
	wal, _, err := store.OpenWAL(walPath)
	if err != nil {
		return nil, nil, "", err
	}
	// Make the seed itself durable before the first transaction: replay
	// starts from the checkpoint, which must therefore include it.
	// Paging is attached first so the seed checkpoint already writes the
	// incremental page format.
	if err := cat.EnablePaging(ckptPath, poolPages); err != nil {
		wal.Close()
		return nil, nil, "", err
	}
	if err := cat.Checkpoint(wal, ckptPath); err != nil {
		wal.Close()
		return nil, nil, "", err
	}
	cat.SetLogger(wal)
	return cat, []*store.WAL{wal}, ckptPath, nil
}

// openShardedCatalog is openCatalog's durable sharded arm: per-shard
// wal-<i>.log segments, merged epoch recovery (isql.OpenStoreSharded)
// when the directory holds state, seed + immediate checkpoint when not.
func openShardedCatalog(demo, load, walDir, ckptPath string, shards, poolPages int) (*store.Catalog, []*store.WAL, string, error) {
	exists := false
	if _, err := os.Stat(ckptPath); err == nil {
		exists = true
	}
	for si := 0; si < shards && !exists; si++ {
		if wi, err := os.Stat(store.SegmentPath(walDir, si)); err == nil && wi.Size() > 0 {
			exists = true
		}
	}
	if exists {
		if demo != "" || load != "" {
			log.Printf("isqld: %s already holds catalog state; ignoring -demo/-load", walDir)
		}
		cat, wals, err := isql.OpenStoreShardedPaged(ckptPath, walDir, shards, poolPages)
		if err != nil {
			return nil, nil, "", err
		}
		return cat, wals, ckptPath, nil
	}
	cat, err := newCatalog(demo, load)
	if err != nil {
		return nil, nil, "", err
	}
	cat.Reshard(shards)
	if err := cat.EnablePaging(ckptPath, poolPages); err != nil {
		return nil, nil, "", err
	}
	wals := make([]*store.WAL, shards)
	for si := range wals {
		w, _, err := store.OpenWAL(store.SegmentPath(walDir, si))
		if err != nil {
			for _, o := range wals[:si] {
				o.Close()
			}
			return nil, nil, "", err
		}
		wals[si] = w
	}
	cat.SetShardLoggers(wals)
	if err := cat.CheckpointAll(ckptPath); err != nil {
		for _, w := range wals {
			w.Close()
		}
		return nil, nil, "", fmt.Errorf("isqld: checkpointing seed: %w", err)
	}
	return cat, wals, ckptPath, nil
}

func newCatalog(demo, load string) (*store.Catalog, error) {
	if load != "" {
		if demo != "" {
			return nil, fmt.Errorf("isqld: -demo and -load are mutually exclusive")
		}
		return store.LoadFile(load)
	}
	if demo == "" {
		return store.New(nil), nil
	}
	names, rels, err := datagen.DemoDB(demo)
	if err != nil {
		return nil, err
	}
	return store.FromComplete(names, rels), nil
}
