// Command promlint validates Prometheus text exposition data — the
// output of isqld's GET /metrics — and optionally asserts required
// series are present. CI pipes the live endpoint through it:
//
//	curl -fs http://127.0.0.1:8486/metrics | promlint \
//	  -require wsdb_wal_fsync_seconds,wsdb_relation_components
//
// It exits nonzero on malformed exposition text (bad HELP/TYPE
// comments, unparseable samples, incomplete histogram series) or on
// any missing required series.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"worldsetdb/internal/obs"
)

func main() {
	file := flag.String("f", "", "read exposition text from this file instead of stdin")
	require := flag.String("require", "", "comma-separated metric names that must have at least one sample")
	flag.Parse()

	var data []byte
	var err error
	if *file != "" {
		data, err = os.ReadFile(*file)
	} else {
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(2)
	}
	if err := obs.LintProm(data); err != nil {
		fmt.Fprintln(os.Stderr, "promlint: invalid exposition:", err)
		os.Exit(1)
	}
	missing := 0
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !obs.HasSeries(data, name) {
				fmt.Fprintf(os.Stderr, "promlint: required series %s has no samples\n", name)
				missing++
			}
		}
	}
	if missing > 0 {
		os.Exit(1)
	}
	fmt.Printf("promlint: ok (%d bytes)\n", len(data))
}
