// Command wsabench regenerates every experiment of the reproduction: for
// each table, figure and worked example of the paper it runs the
// corresponding workload and prints the measured rows (world counts,
// answers, plan sizes, wall-clock times). EXPERIMENTS.md records a
// captured run against the paper's expectations.
//
// Usage:
//
//	wsabench [-exp all|F2|ACQ|TPCH|CENSUS|WSD|WSDX|STORE|TXN|AGG|SHARD|PLAN|CKPT|SQL3|E56|F8F9|PHYS|F7|R46|P42] [-scale 1]
//
// -exp also accepts a comma-separated list (e.g. -exp TXN,AGG) so one
// CI step can gate several families in a single run.
//
// After a run, the fresh measurements are diffed against the committed
// baseline (-prev, by default the same BENCH_results.json this run
// overwrites, read before writing): per-op ns/op deltas are printed and
// any op slower than -regress times its baseline is flagged with a
// WARNING line. CI runs this non-blocking and uploads the fresh file as
// an artifact.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/inline"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/isqld"
	"worldsetdb/internal/obs"
	"worldsetdb/internal/physical"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/rewrite"
	"worldsetdb/internal/store"
	"worldsetdb/internal/translate"
	"worldsetdb/internal/uldb"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
	"worldsetdb/internal/wsdexec"
)

var (
	scale    = flag.Int("scale", 1, "multiply workload sizes")
	jsonPath = flag.String("json", "BENCH_results.json",
		"write measured rows as JSON to this file ('' disables); future PRs diff these for perf regressions")
	prevPath = flag.String("prev", "BENCH_results.json",
		"baseline JSON to diff the fresh measurements against ('' disables the diff)")
	regress = flag.Float64("regress", 2.0,
		"flag ops whose ns/op exceeds this multiple of the baseline")
	gate = flag.String("gate", "",
		"comma-separated op prefixes whose regressions are blocking: any flagged op matching one makes wsabench exit nonzero (e.g. -gate TXN/)")
	heapProfile = flag.String("heapprofile", "",
		"write a pprof heap profile to this file after the experiments (CI uploads it as an artifact)")
)

// benchRow is one measured operation in the JSON report. The quantile
// fields appear only on the per-family latency-quantiles rows; the
// regression diff reads op and ns_per_op only, so they are additive.
type benchRow struct {
	Op          string `json:"op"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	Worlds      int    `json:"worlds"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	P50Ns       int64  `json:"p50_ns,omitempty"`
	P95Ns       int64  `json:"p95_ns,omitempty"`
	P99Ns       int64  `json:"p99_ns,omitempty"`
	Samples     uint64 `json:"samples,omitempty"`
}

var benchRows []benchRow

// famHists accumulates every measured iteration of every op in a
// family (the op-name prefix before "/") into one latency histogram,
// so the report carries per-family p50/p95/p99 across iterations —
// min-of-5 ns/op alone hides tail latency.
var famHists = map[string]*obs.Histogram{}

func famHist(op string) *obs.Histogram {
	fam := op
	if i := strings.IndexByte(op, '/'); i >= 0 {
		fam = op[:i]
	}
	h := famHists[fam]
	if h == nil {
		h = &obs.Histogram{}
		famHists[fam] = h
	}
	return h
}

// quantileRows appends one latency-quantiles row per family. NsPerOp
// stays 0 so the regression diff skips these rows (quantiles across
// heterogeneous ops are a profile, not a regression signal).
func quantileRows() {
	fams := make([]string, 0, len(famHists))
	for f := range famHists {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		h := famHists[f]
		if h.Count() == 0 {
			continue
		}
		benchRows = append(benchRows, benchRow{
			Op:         f + "/latency-quantiles",
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			P50Ns:      h.Quantile(0.50).Nanoseconds(),
			P95Ns:      h.Quantile(0.95).Nanoseconds(),
			P99Ns:      h.Quantile(0.99).Nanoseconds(),
			Samples:    h.Count(),
		})
	}
}

// acceptanceFailures collects violated intra-run acceptance floors
// (ratios between ops of the same run, immune to machine speed); any
// entry makes the run exit nonzero.
var acceptanceFailures []string

// acceptRatio asserts an intra-run speedup floor.
func acceptRatio(name string, got, floor float64) {
	if got < floor {
		acceptanceFailures = append(acceptanceFailures,
			fmt.Sprintf("%s: %.2fx, floor %.1fx", name, got, floor))
	}
}

// bench measures f like timed and records a row for the JSON report.
// worlds may point at a counter the closure fills in (the world count
// the operation handled); nil means not applicable.
func bench(op string, worlds *int, f func()) time.Duration {
	d, allocs := timedAllocsInto(famHist(op), f)
	w := 0
	if worlds != nil {
		w = *worlds
	}
	benchRows = append(benchRows, benchRow{
		Op:          op,
		NsPerOp:     d.Nanoseconds(),
		AllocsPerOp: allocs,
		Worlds:      w,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	})
	return d
}

// writeJSON dumps the recorded rows so future PRs have a perf
// trajectory to compare against.
func writeJSON(path string) {
	if path == "" || len(benchRows) == 0 {
		return
	}
	data, err := json.MarshalIndent(benchRows, "", "  ")
	must(err)
	must(os.WriteFile(path, append(data, '\n'), 0o644))
	fmt.Printf("wrote %d measured rows to %s\n", len(benchRows), path)
}

// loadBaseline reads a previous BENCH_results.json; a missing or
// unreadable baseline just disables the diff (first run, renamed ops).
func loadBaseline(path string) map[string]benchRow {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "no baseline to diff against (%v); the regression check is skipped\n", err)
		return nil
	}
	var rows []benchRow
	if err := json.Unmarshal(data, &rows); err != nil {
		fmt.Fprintf(os.Stderr, "ignoring unparsable baseline %s: %v\n", path, err)
		return nil
	}
	out := make(map[string]benchRow, len(rows))
	for _, r := range rows {
		out[r.Op] = r
	}
	return out
}

// diffBaseline prints per-op ns/op deltas between the fresh rows and
// the baseline, flagging ops slower than factor× their baseline with
// WARNING lines (the CI step surfaces those as annotations). Returns
// the names of the flagged ops.
func diffBaseline(baseline map[string]benchRow, factor float64) []string {
	if len(baseline) == 0 || len(benchRows) == 0 {
		return nil
	}
	type delta struct {
		op         string
		prev, cur  int64
		ratio      float64
		regression bool
	}
	var ds []delta
	for _, r := range benchRows {
		p, ok := baseline[r.Op]
		if !ok || p.NsPerOp <= 0 {
			continue
		}
		ratio := float64(r.NsPerOp) / float64(p.NsPerOp)
		ds = append(ds, delta{r.Op, p.NsPerOp, r.NsPerOp, ratio, ratio > factor})
	}
	if len(ds) == 0 {
		return nil
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].ratio > ds[j].ratio })
	fmt.Printf("\n==================== baseline diff (%d ops, sorted by ratio) ====================\n", len(ds))
	fmt.Printf("%-40s %14s %14s %8s\n", "op", "prev ns/op", "ns/op", "ratio")
	var regressed []string
	for _, d := range ds {
		fmt.Printf("%-40s %14d %14d %7.2fx\n", d.op, d.prev, d.cur, d.ratio)
		if d.regression {
			regressed = append(regressed, d.op)
		}
	}
	for _, d := range ds {
		if d.regression {
			fmt.Printf("WARNING: %s regressed %.2fx (%d -> %d ns/op, threshold %.1fx)\n",
				d.op, d.ratio, d.prev, d.cur, factor)
		}
	}
	if len(regressed) == 0 {
		fmt.Printf("no op regressed beyond %.1fx of the baseline\n", factor)
	}
	return regressed
}

// gatedRegressions filters the flagged ops to those matching a -gate
// prefix; a non-empty result makes the run fail (the blocking families,
// e.g. TXN/, versus the warn-only rest).
func gatedRegressions(regressed []string, gates string) []string {
	if gates == "" {
		return nil
	}
	var out []string
	for _, op := range regressed {
		for _, g := range strings.Split(gates, ",") {
			if g = strings.TrimSpace(g); g != "" && strings.HasPrefix(op, g) {
				out = append(out, op)
				break
			}
		}
	}
	return out
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see DESIGN.md) or 'all'")
	flag.Parse()

	experiments := []struct {
		id   string
		name string
		run  func()
	}{
		{"F2", "Figure 2: choice-of / delete / certain on Flights", expF2},
		{"ACQ", "§2 acquisition scenario (EXP-S2-ACQ)", expAcquisition},
		{"TPCH", "§2 TPC-H what-if (EXP-S2-TPCH)", expTPCH},
		{"CENSUS", "§2 repair-by-key blowup (EXP-S2-CENSUS)", expCensus},
		{"WSD", "world-set decompositions: repair without enumeration (conclusion/future work)", expWSD},
		{"WSDX", "factorized WSD-native query engine: world-set algebra without enumerating worlds (PR 2 tentpole)", expWSDX},
		{"STORE", "decomposition-native catalog: factored pipelines, re-factorization, snapshot readers (PR 3 tentpole)", expStore},
		{"TXN", "transactional write path: WAL commit latency, prepared-statement throughput, recovery replay (PR 4 tentpole)", expTxn},
		{"AGG", "bounded component merging + world-count-independent aggregation (PR 6 tentpole)", expAgg},
		{"SHARD", "component-sharded catalog: parallel commits, per-shard WAL group commit, scatter reads (PR 7 tentpole)", expShard},
		{"PLAN", "cost-based planning over decomposition statistics: pruned rewrite search, ordered product chains, merge-vs-fallback decisions (PR 9 tentpole)", expPlan},
		{"CKPT", "paged checkpoints: full vs incremental write volume, delta vs statement recovery, cold start under a small buffer pool (PR 10 tentpole)", expCkpt},
		{"SQL3", "§2 I-SQL vs division vs double-not-exists (EXP-S2-SQL)", expThreeWays},
		{"E56", "Examples 5.6/5.8: naive vs general vs optimized evaluation", expTranslations},
		{"F8F9", "Figures 8/9: rewriting ablation q1→q1′, q2→q2′", expRewriting},
		{"PHYS", "dedicated physical operators vs translated plans (conclusion/future work)", expPhysical},
		{"F7", "Figure 7: equivalence verification table", expEquivalenceTable},
		{"R46", "Remark 4.6: TriQL non-genericity", expTriQL},
		{"P42", "Proposition 4.2: 3-colorability via repair-by-key", expThreeColor},
	}
	wanted := func(id string) bool {
		if *exp == "all" {
			return true
		}
		for _, part := range strings.Split(*exp, ",") {
			if strings.EqualFold(strings.TrimSpace(part), id) {
				return true
			}
		}
		return false
	}
	ran := false
	for _, e := range experiments {
		if !wanted(e.id) {
			continue
		}
		ran = true
		fmt.Printf("==================== EXP-%s: %s ====================\n", e.id, e.name)
		e.run()
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *heapProfile != "" {
		f, err := os.Create(*heapProfile)
		must(err)
		runtime.GC() // fold transient experiment garbage out of the profile
		must(pprof.WriteHeapProfile(f))
		must(f.Close())
		fmt.Printf("wrote heap profile to %s\n", *heapProfile)
	}
	// Read the baseline before writeJSON possibly overwrites it.
	baseline := loadBaseline(*prevPath)
	quantileRows()
	writeJSON(*jsonPath)
	regressed := diffBaseline(baseline, *regress)
	failed := false
	if blocking := gatedRegressions(regressed, *gate); len(blocking) > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d regression(s) in gated families (%s): %s\n",
			len(blocking), *gate, strings.Join(blocking, ", "))
		failed = true
	}
	for _, f := range acceptanceFailures {
		// Blocking only in gated runs (-gate, the dedicated CI step); the
		// warn-only sweep and ad-hoc local runs stay nonfatal.
		if *gate != "" {
			fmt.Fprintf(os.Stderr, "FAIL: acceptance floor violated: %s\n", f)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "WARNING: acceptance floor violated: %s\n", f)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// timed reports the wall-clock time of f, repeated until 50ms or 5 runs
// for stability, returning the minimum.
func timed(f func()) time.Duration {
	d, _ := timedAllocs(f)
	return d
}

// timedAllocs is timed plus the mean heap allocations per run.
func timedAllocs(f func()) (time.Duration, uint64) {
	return timedAllocsInto(nil, f)
}

// timedAllocsInto is timedAllocs with every iteration's duration
// additionally recorded into h (nil skips recording) — the feed for
// the per-family latency quantiles in the JSON report.
func timedAllocsInto(h *obs.Histogram, f func()) (time.Duration, uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m0 := ms.Mallocs
	best := time.Duration(0)
	total := time.Duration(0)
	runs := 0
	for i := 0; i < 5; i++ {
		start := time.Now()
		f()
		d := time.Since(start)
		h.Observe(d)
		runs++
		if best == 0 || d < best {
			best = d
		}
		total += d
		if total > 50*time.Millisecond && i >= 1 {
			break
		}
	}
	runtime.ReadMemStats(&ms)
	return best, (ms.Mallocs - m0) / uint64(runs)
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// sessionWorlds reads the session's world count off the decomposition
// (never expanding), saturating to int for the report columns — at
// -scale settings where the count exceeds the expansion budget,
// Session.WorldSet would return nil.
func sessionWorlds(s *isql.Session) int {
	w := s.Worlds()
	if w.IsInt64() && w.Int64() < int64(^uint(0)>>1) {
		return int(w.Int64())
	}
	return int(^uint(0) >> 1)
}

// expF2 scales the Figure 2 pipeline: χ_Dep world creation and certain
// arrivals.
func expF2() {
	fmt.Printf("%-10s %-10s %-10s %-14s %-14s\n", "flights", "deps", "worlds", "choice time", "certain time")
	for _, nDep := range []int{5, 20, 80, 320} {
		nDep := nDep * *scale
		flights := datagen.Flights(nDep, 20, 0.3, 7)
		ws := worldset.FromDB([]string{"Flights"}, []*relation.Relation{flights})
		chi := &wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "Flights"}}
		var worlds int
		dChoice := bench(fmt.Sprintf("F2/choice/deps=%d", nDep), &worlds, func() {
			out, err := wsa.Eval(chi, ws)
			must(err)
			worlds = out.Len()
		})
		certQ := wsa.NewCert(&wsa.Project{Columns: []string{"Arr"}, From: chi})
		dCert := bench(fmt.Sprintf("F2/certain/deps=%d", nDep), &worlds, func() {
			_, err := wsa.Eval(certQ, ws)
			must(err)
		})
		fmt.Printf("%-10d %-10d %-10d %-14s %-14s\n", flights.Len(), nDep, worlds, dChoice, dCert)
	}
}

func expAcquisition() {
	fmt.Printf("%-10s %-10s %-10s %-12s %-14s %-10s\n",
		"companies", "emps/co", "worlds", "targets", "time", "answer")
	for _, n := range []int{2, 4, 8, 16} {
		n := n * *scale
		ce := datagen.CompanyEmp(n, 4)
		es := datagen.EmpSkills(n, 4, 4, 11)
		var worlds, targets int
		d := bench(fmt.Sprintf("ACQ/script/companies=%d", n), &worlds, func() {
			s := isql.FromDB([]string{"Company_Emp", "Emp_Skills"},
				[]*relation.Relation{ce, es})
			_, err := s.ExecScript(`
				create table U as select * from Company_Emp choice of CID;
				create table V as
				  select R1.CID, R1.EID
				  from Company_Emp R1, (select * from U choice of EID) R2
				  where R1.CID = R2.CID and R1.EID != R2.EID;
				create table W as
				  select certain CID, Skill from V, Emp_Skills
				  where V.EID = Emp_Skills.EID
				  group worlds by (select CID from V);`)
			must(err)
			worlds = sessionWorlds(s)
			res, err := s.ExecString("select possible CID from W where Skill = 'S0';")
			must(err)
			targets = res.Answers[0].Len()
		})
		fmt.Printf("%-10d %-10d %-10d %-12d %-14s %s\n", n, 4, worlds, targets, d,
			"every company guarantees S0")
	}
}

func expTPCH() {
	fmt.Printf("%-10s %-10s %-10s %-12s %-14s\n", "products", "rows", "worlds", "loss-years", "time")
	for _, n := range []int{20, 60, 180} {
		n := n * *scale
		li := datagen.Lineitem(n, 3, 4, 42)
		var worlds, years int
		d := bench(fmt.Sprintf("TPCH/script/products=%d", n), &worlds, func() {
			s := isql.FromDB([]string{"Lineitem"}, []*relation.Relation{li})
			_, err := s.ExecString(`create table YearQuantity as
				select A.Year, sum(A.Price) as Revenue
				from (select * from Lineitem choice of Year) as A
				where Quantity not in (select * from Lineitem choice of Quantity)
				group by A.Year;`)
			must(err)
			worlds = sessionWorlds(s)
			res, err := s.ExecString(`select possible Year from YearQuantity as Y
				where (select sum(Price) from Lineitem where Lineitem.Year = Y.Year) - Y.Revenue > 100000;`)
			must(err)
			years = res.Answers[0].Len()
		})
		fmt.Printf("%-10d %-10d %-10d %-12d %-14s\n", n, li.Len(), worlds, years, d)
	}
}

func expCensus() {
	fmt.Printf("%-10s %-10s %-12s %-14s\n", "dup SSNs", "rows", "repairs", "time")
	for _, d := range []int{2, 4, 8, 12} {
		census := datagen.Census(200, d, 3)
		var repairs int
		dt := bench(fmt.Sprintf("CENSUS/repair/dups=%d", d), &repairs, func() {
			s := isql.FromDB([]string{"Census"}, []*relation.Relation{census})
			_, err := s.ExecString("create table Clean as select * from Census repair by key SSN;")
			must(err)
			repairs = sessionWorlds(s)
		})
		fmt.Printf("%-10d %-10d %-12d %-14s  (expected 2^%d = %d)\n",
			d, census.Len(), repairs, dt, d, 1<<d)
	}
}

// expWSD compares the explicit repair enumeration of EXP-CENSUS with
// the world-set decomposition of the same view: the decomposition stays
// linear in the input while representing 2^d worlds, and answers
// possible/certain queries directly.
func expWSD() {
	fmt.Printf("%-10s %-14s %-14s %-16s %-14s %-14s\n",
		"dup SSNs", "worlds", "enumeration", "decomposition", "wsd size", "cert via wsd")
	for _, dups := range []int{4, 8, 12, 40} {
		census := datagen.Census(200, dups, 3)
		enumTime := "(skipped: too many worlds)"
		if dups <= 12 {
			d := bench(fmt.Sprintf("WSD/enumeration/dups=%d", dups), nil, func() {
				s := isql.FromDB([]string{"Census"}, []*relation.Relation{census})
				_, err := s.ExecString("create table Clean as select * from Census repair by key SSN;")
				must(err)
			})
			enumTime = d.String()
		}
		var dec *wsd.WSD
		dDecomp := bench(fmt.Sprintf("WSD/decomposition/dups=%d", dups), nil, func() {
			var err error
			dec, err = wsd.RepairByKey("Census", census, []string{"SSN"})
			must(err)
		})
		var certLen int
		dCert := bench(fmt.Sprintf("WSD/cert/dups=%d", dups), nil, func() { certLen = dec.Cert().Len() })
		worlds := fmt.Sprintf("%d", dec.NumWorlds())
		if dups == 40 {
			worlds = "2^40"
		}
		fmt.Printf("%-10d %-14s %-14s %-16s %-14d %-14s (%d certain tuples)\n",
			dups, worlds, enumTime, dDecomp, dec.Size(), dCert, certLen)
	}
}

// expWSDX is the tentpole ablation for the factorized engine: the
// census-repair view queried for certain/possible answers, swept from
// 2^10 to 2^40 worlds. wsdexec evaluates cert(repair(Census)) and
// poss(repair(Census)) natively on the decomposition — cost linear in
// the input, independent of the world count — while every other engine
// must enumerate. At the largest world count the physical engine can
// still enumerate, the same certain-answer question is timed over the
// pre-encoded inlined repair so the speedup is measured head to head.
func expWSDX() {
	certQ := wsa.NewCert(&wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}})
	possQ := wsa.NewPoss(&wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}})

	fmt.Printf("%-10s %-10s %-14s %-14s %-14s %-10s\n",
		"dup SSNs", "rows", "worlds", "wsdx cert", "wsdx poss", "certain")
	for _, dups := range []int{10, 20, 30, 40} {
		census := datagen.Census(1000**scale, dups, 3)
		db := wsd.FromComplete([]string{"Census"}, []*relation.Relation{census})
		var certLen int
		dCert := bench(fmt.Sprintf("WSDX/cert-wsdx/dups=%d", dups), nil, func() {
			out, plan, err := wsdexec.EvalOpts(certQ, db, &wsdexec.Options{NoFallback: true})
			must(err)
			if !plan.Native {
				must(fmt.Errorf("WSDX cert plan not native: %v", plan))
			}
			certLen = out.Certain[1].Len()
		})
		dPoss := bench(fmt.Sprintf("WSDX/poss-wsdx/dups=%d", dups), nil, func() {
			_, _, err := wsdexec.EvalOpts(possQ, db, &wsdexec.Options{NoFallback: true})
			must(err)
		})
		fmt.Printf("%-10d %-10d 2^%-12d %-14s %-14s %-10d\n",
			dups, census.Len(), dups, dCert, dPoss, certLen)
	}

	// Head-to-head against the physical engine at enumerable scale: the
	// repaired world-set is materialized and inlined once, outside the
	// timer, so the physical engine is charged only for its certain-
	// answer pass — the representation every current engine needs.
	fmt.Printf("\n%-10s %-10s %-16s %-14s %-10s\n",
		"dup SSNs", "worlds", "physical cert", "wsdx cert", "speedup")
	certClean := wsa.NewCert(&wsa.Rel{Name: "Clean"})
	for _, dups := range []int{8, 10, 12} {
		census := datagen.Census(50**scale, dups, 3)
		ws := worldset.FromDB([]string{"Census"}, []*relation.Relation{census})
		clean, err := wsa.Run(&wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}}, ws, "Clean")
		must(err)
		repr := inline.Encode(clean)
		worlds := clean.Len()
		dPhys := bench(fmt.Sprintf("WSDX/cert-physical/dups=%d", dups), &worlds, func() {
			_, err := physical.Eval(certClean, repr)
			must(err)
		})
		db := wsd.FromComplete([]string{"Census"}, []*relation.Relation{census})
		dWsdx := bench(fmt.Sprintf("WSDX/cert-wsdx-vs-physical/dups=%d", dups), &worlds, func() {
			_, _, err := wsdexec.EvalOpts(certQ, db, &wsdexec.Options{NoFallback: true})
			must(err)
		})
		fmt.Printf("%-10d %-10d %-16s %-14s %.0fx\n",
			dups, worlds, dPhys, dWsdx, float64(dPhys)/float64(dWsdx))
	}
}

// expStore is the tentpole ablation for the decomposition-native
// catalog: the census-repair pipeline (repair → select → aggregate)
// executes statement by statement through the store-backed I-SQL
// session, staying factored end to end — wall-clock stays in
// milliseconds as the world count sweeps 2^10 → 2^40, where the
// explicit world-set session path stops being able to finish at all.
// Alongside: wsd.Refactor compressing enumerated world-sets back into
// components, catalog persistence, and the concurrent snapshot-reader
// fan-out that cmd/isqld serves from.
func expStore() {
	pipeline := `
		create table Clean as select * from Census repair by key SSN;
		create table Suspects as select SSN, Name from Clean where POB = 'NYC';
		select certain Name from Suspects;
		select possible Name from Suspects;`

	fmt.Printf("%-10s %-10s %-14s %-16s %-16s\n",
		"dup SSNs", "rows", "worlds", "store pipeline", "legacy pipeline")
	for _, dups := range []int{10, 20, 40} {
		census := datagen.Census(1000**scale, dups, 7)
		var worlds string
		dStore := bench(fmt.Sprintf("STORE/pipeline/dups=%d", dups), nil, func() {
			s := isql.FromDB([]string{"Census"}, []*relation.Relation{census})
			res, err := s.ExecScript(pipeline)
			must(err)
			if res.Plan == nil || !res.Plan.Native {
				must(fmt.Errorf("STORE pipeline left the decomposition (plan %v)", res.Plan))
			}
			worlds = s.Worlds().String()
		})
		legacy := "(refused: BudgetError)"
		if dups <= 10 {
			d := bench(fmt.Sprintf("STORE/pipeline-legacy/dups=%d", dups), nil, func() {
				s := isql.FromDB([]string{"Census"}, []*relation.Relation{census})
				s.Engine = "legacy"
				_, err := s.ExecScript(pipeline)
				must(err)
			})
			legacy = d.String()
		}
		fmt.Printf("%-10d %-10d %-14s %-16s %-16s\n", dups, census.Len(), worlds, dStore, legacy)
	}

	// Re-factorization: enumerated world-sets of 2^d worlds compress
	// back into d binary components (verified), the operation that keeps
	// pipelines factored after an entangled fallback.
	fmt.Printf("\n%-10s %-10s %-14s %-14s\n", "worlds", "size in", "size out", "refactor")
	for _, dups := range []int{4, 8, 12} {
		db := datagen.CensusRepairDecomp(60**scale, dups, 7)
		ws, err := db.Expand(0)
		must(err)
		var out *wsd.DecompDB
		d := bench(fmt.Sprintf("STORE/refactor/worlds=%d", 1<<dups), nil, func() {
			out, err = wsd.Refactor(ws)
			must(err)
		})
		if len(out.Components) != dups {
			must(fmt.Errorf("refactor found %d components, want %d", len(out.Components), dups))
		}
		sizeIn := 0
		for _, w := range ws.Worlds() {
			for _, r := range w {
				sizeIn += r.Len()
			}
		}
		fmt.Printf("%-10d %-10d %-14d %-14s\n", ws.Len(), sizeIn, out.Size(), d)
	}

	// Snapshot-reader fan-out over a shared 2^40-world catalog: 16
	// concurrent sessions, 4 certain-answer queries each — the isqld
	// serving path without the HTTP layer.
	seedSession := isql.FromDB([]string{"Census"}, []*relation.Relation{datagen.Census(1000**scale, 40, 7)})
	_, err := seedSession.ExecScript(pipeline)
	must(err)
	shared := seedSession.Catalog()
	const readers, queriesPer = 16, 4
	dReaders := bench("STORE/readers16x4/dups=40", nil, func() {
		var wg sync.WaitGroup
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sess := isql.FromCatalog(shared)
				for i := 0; i < queriesPer; i++ {
					res, err := sess.ExecString("select certain Name from Suspects;")
					must(err)
					if len(res.Answers) != 1 {
						must(fmt.Errorf("reader got %d answers", len(res.Answers)))
					}
				}
			}()
		}
		wg.Wait()
	})
	fmt.Printf("\n%d readers x %d certain-queries over one 2^40 catalog: %s (%.0f queries/s)\n",
		readers, queriesPer, dReaders, float64(readers*queriesPer)/dReaders.Seconds())

	// Persistence round trip of the factored 2^40 catalog.
	path := filepath.Join(os.TempDir(), "wsabench_store.wsd")
	defer os.Remove(path)
	dSave := bench("STORE/save/dups=40", nil, func() { must(isql.SaveCatalog(path, seedSession)) })
	var loaded *isql.Session
	dLoad := bench("STORE/load/dups=40", nil, func() {
		var err error
		loaded, err = isql.LoadCatalog(path)
		must(err)
	})
	if loaded.Worlds().Cmp(seedSession.Worlds()) != 0 {
		must(fmt.Errorf("persistence changed the world count"))
	}
	info, err := os.Stat(path)
	must(err)
	fmt.Printf("catalog persistence: save %s, load %s, %d bytes for %s worlds\n",
		dSave, dLoad, info.Size(), seedSession.Worlds())
}

// expTxn is the tentpole ablation for the transactional write path:
// (1) commit latency of BEGIN → k statements → COMMIT batches, with and
// without the statement-level WAL (the WAL run pays one fsynced append
// per commit, however many statements the batch holds); (2) request
// throughput of the isqld wire protocol, parse-per-request /exec versus
// the shared-plan-cache /execute — the prepared path must stay ≥2×
// ahead; (3) parameterized EXECUTE through plan-level binding versus
// the rebind-and-recompile path it replaced (≥2× floor); (4) WAL group
// commit: concurrent auto-commit writers sharing fsyncs versus a lone
// writer; (5) crash-recovery replay time of a statement log.
func expTxn() {
	// Commit latency vs statements per transaction.
	fmt.Printf("%-12s %-14s %-14s %-14s\n", "stmts/txn", "commit (mem)", "commit (wal)", "wal amortized/stmt")
	for _, k := range []int{1, 8, 64} {
		k := k * *scale
		mem := txnCommitLatency(fmt.Sprintf("TXN/commit-mem/stmts=%d", k), k, false)
		wal := txnCommitLatency(fmt.Sprintf("TXN/commit-wal/stmts=%d", k), k, true)
		fmt.Printf("%-12d %-14s %-14s %-14s\n", k, mem, wal, wal/time.Duration(k))
	}

	txnParamBinding()
	txnGroupCommit()

	// Prepared vs parse-per-request throughput over the live wire
	// protocol (httptest server, the real isqld handler stack).
	cat := store.FromComplete([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	srv := httptest.NewServer(isqld.New(cat).Handler())
	defer srv.Close()
	mustPost(srv.URL+"/exec", "create table Clean as select * from Census repair by key SSN;")
	var q strings.Builder
	q.WriteString("select certain Name from Clean where ")
	for i := 0; i < 48; i++ {
		if i > 0 {
			q.WriteString(" or ")
		}
		fmt.Fprintf(&q, "POB = 'C%d'", i)
	}
	q.WriteString(";")
	mustPost(srv.URL+"/prepare", "prepare q as "+strings.TrimSuffix(q.String(), ";")+";")
	const requests = 40
	dExec := bench("TXN/exec-unprepared", nil, func() {
		for i := 0; i < requests; i++ {
			mustPost(srv.URL+"/exec", q.String())
		}
	})
	dPrep := bench("TXN/execute-prepared", nil, func() {
		for i := 0; i < requests; i++ {
			mustPost(srv.URL+"/execute", "q")
		}
	})
	fmt.Printf("\nwire protocol, %d requests of one analytical query:\n", requests)
	fmt.Printf("%-24s %-14s %12.0f req/s\n", "/exec (parse each)", dExec, float64(requests)/dExec.Seconds())
	fmt.Printf("%-24s %-14s %12.0f req/s\n", "/execute (plan cache)", dPrep, float64(requests)/dPrep.Seconds())
	prepSpeedup := float64(dExec) / float64(dPrep)
	fmt.Printf("prepared speedup: %.1fx (target 2x; blocking floor 1.5x)\n", prepSpeedup)
	acceptRatio("prepared /execute vs /exec", prepSpeedup, 1.5)

	// Crash-recovery replay: reopen a store whose WAL tail holds N
	// single-statement commits past the last checkpoint.
	for _, records := range []int{50, 200} {
		records := records * *scale
		dir, err := os.MkdirTemp("", "wsabench_txn")
		must(err)
		wsdPath := filepath.Join(dir, "checkpoint.wsd")
		walPath := filepath.Join(dir, "wal.log")
		cat, wal, err := isql.OpenStore(wsdPath, walPath)
		must(err)
		sess := isql.FromCatalog(cat)
		_, err = sess.ExecString("create table T (A, B);")
		must(err)
		for i := 0; i < records; i++ {
			_, err = sess.ExecString(fmt.Sprintf("insert into T values (%d, %d);", i, i*7))
			must(err)
		}
		must(wal.Close()) // crash: no checkpoint
		var recovered *store.Catalog
		d := bench(fmt.Sprintf("TXN/recovery/records=%d", records), nil, func() {
			var w2 *store.WAL
			recovered, w2, err = isql.OpenStore(wsdPath, walPath)
			must(err)
			must(w2.Close())
		})
		if recovered.Snapshot().Version != cat.Snapshot().Version {
			must(fmt.Errorf("recovery ended at v%d, want v%d", recovered.Snapshot().Version, cat.Snapshot().Version))
		}
		info, err := os.Stat(walPath)
		must(err)
		fmt.Printf("recovery replay of %d logged commits: %s (%d-byte log)\n", records+1, d, info.Size())
		os.RemoveAll(dir)
	}
}

// txnParamBinding measures the parameterized prepared-statement path:
// EXECUTE q($1-bound) through plan-level binding (compile + prelower
// once, bind constants per call) against the PR-4 behavior it replaces
// — re-running compilation and the rewrite search per call on an
// already-parsed tree. The acceptance floor is 2×.
func txnParamBinding() {
	cat := store.FromComplete([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	sess := isql.FromCatalog(cat)
	runStmt := func(sql string) {
		_, err := sess.ExecString(sql)
		must(err)
	}
	runStmt("create table Clean as select * from Census repair by key SSN;")
	var q strings.Builder
	q.WriteString("select certain Name from Clean where POW = $1")
	for i := 0; i < 47; i++ {
		fmt.Fprintf(&q, " or POB = 'C%d'", i)
	}
	runStmt("prepare qp as " + q.String() + ";")
	call, err := isql.Parse("execute qp('Office');")
	must(err)
	// The old path: the same statement with the argument substituted, as
	// an already-parsed tree — executing it re-runs analysis, compilation
	// and the rewrite search every call, exactly what PR 4's EXECUTE did
	// for any statement with a $n parameter.
	rebound, err := isql.Parse(strings.Replace(q.String(), "$1", "'Office'", 1) + ";")
	must(err)
	const requests = 40 // matches the wire-protocol ops above
	dBound := bench("TXN/execute-param-bound", nil, func() {
		for i := 0; i < requests; i++ {
			_, err := sess.Exec(call)
			must(err)
		}
	})
	dRecompile := bench("TXN/execute-param-recompile", nil, func() {
		for i := 0; i < requests; i++ {
			_, err := sess.Exec(rebound)
			must(err)
		}
	})
	fmt.Printf("\nparameterized EXECUTE, %d calls of one 48-way disjunction:\n", requests)
	fmt.Printf("%-30s %-14s\n", "plan-level binding", dBound)
	fmt.Printf("%-30s %-14s\n", "rebind + recompile (old path)", dRecompile)
	speedup := float64(dRecompile) / float64(dBound)
	fmt.Printf("binding speedup: %.1fx (target 2x; blocking floor 1.5x)\n", speedup)
	// Intra-run floor: if parameterized EXECUTE recompiles again, this
	// collapses to ~1x — far below 1.5 whatever the machine. Measured
	// 2.0-2.2x; the gap to the floor is noise margin, not the target.
	acceptRatio("parameterized-EXECUTE binding vs recompile", speedup, 1.5)
}

// txnGroupCommit measures WAL group commit: total wall-clock and fsync
// count for W concurrent auto-commit writers (each insert is one logged
// commit) versus a lone writer issuing the same number of commits. The
// commit queue's leader coalesces every waiting committer's record into
// one write + one fsync, so the 8-writer run must need far fewer fsyncs
// than commits.
func txnGroupCommit() {
	const commitsPerWriter = 24
	fmt.Printf("\ngroup commit, %d logged single-insert commits per writer:\n", commitsPerWriter)
	fmt.Printf("%-10s %-10s %-8s %-14s %-14s\n", "writers", "commits", "fsyncs", "total", "per commit")
	for _, writers := range []int{1, 8} {
		dir, err := os.MkdirTemp("", "wsabench_gc")
		must(err)
		cat, wal, err := isql.OpenStore(filepath.Join(dir, "checkpoint.wsd"), filepath.Join(dir, "wal.log"))
		must(err)
		seed := isql.FromCatalog(cat)
		_, err = seed.ExecString("create table T (A, B);")
		must(err)
		baseSyncs := wal.Syncs()
		baseVersion := cat.Snapshot().Version
		round := 0
		d := bench(fmt.Sprintf("TXN/group-commit/writers=%d", writers), nil, func() {
			round++
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w, round int) {
					defer wg.Done()
					sess := isql.FromCatalog(cat)
					for i := 0; i < commitsPerWriter; i++ {
						if _, err := sess.ExecString(fmt.Sprintf("insert into T values (%d, %d);", (round*10+w)*1000+i, i)); err != nil {
							panic(err)
						}
					}
				}(w, round)
			}
			wg.Wait()
		})
		// bench may repeat the closure for timing stability; derive the
		// true totals from the version and sync counters.
		commits := uint64(cat.Snapshot().Version - baseVersion)
		syncs := wal.Syncs() - baseSyncs
		perRound := writers * commitsPerWriter
		fmt.Printf("%-10d %-10d %-8d %-14s %-14s\n", writers, commits, syncs, d, d/time.Duration(perRound))
		if writers > 1 && syncs > 0 {
			amort := float64(commits) / float64(syncs)
			fmt.Printf("fsync amortization at %d writers: %.1fx (%d commits / %d fsyncs)\n",
				writers, amort, commits, syncs)
			// Record the fsync count itself so the baseline diff tracks
			// amortization over time (more fsyncs = slower = flagged).
			benchRows = append(benchRows, benchRow{
				Op:         fmt.Sprintf("TXN/group-commit-fsyncs/writers=%d", writers),
				NsPerOp:    int64(syncs),
				Worlds:     int(commits),
				GOMAXPROCS: runtime.GOMAXPROCS(0),
			})
			// Intra-run floor: without group commit every commit fsyncs
			// itself and this is exactly 1x. Enforced only with real
			// scheduling parallelism — with a single P the runtime may
			// never hand the processor off during the leader's fsync,
			// legitimately serializing the committers.
			if runtime.GOMAXPROCS(0) > 1 {
				acceptRatio("group-commit fsync amortization at 8 writers", amort, 1.3)
			}
		}
		must(wal.Close())
		os.RemoveAll(dir)
	}
}

// txnCommitLatency times one BEGIN → k inserts → COMMIT batch, with the
// catalog optionally WAL-backed (fsync on commit).
func txnCommitLatency(op string, k int, withWAL bool) time.Duration {
	var cat *store.Catalog
	var wal *store.WAL
	if withWAL {
		dir, err := os.MkdirTemp("", "wsabench_txn")
		must(err)
		defer os.RemoveAll(dir)
		cat, wal, err = isql.OpenStore(filepath.Join(dir, "checkpoint.wsd"), filepath.Join(dir, "wal.log"))
		must(err)
		defer wal.Close()
	} else {
		cat = store.New(nil)
	}
	sess := isql.FromCatalog(cat)
	_, err := sess.ExecString("create table T (A, B);")
	must(err)
	n := 0
	return bench(op, nil, func() {
		must(sess.Begin())
		for i := 0; i < k; i++ {
			n++
			_, err := sess.ExecString(fmt.Sprintf("insert into T values (%d, %d);", n, n*3))
			must(err)
		}
		must(sess.Commit())
	})
}

// expCkpt is the tentpole ablation for the paged storage engine: (1)
// checkpoint write volume — a full checkpoint of a wide catalog versus
// an incremental one after dirtying a single relation (the incremental
// write must be a small fraction of the full one) and a no-op
// checkpoint (which must write zero bytes); (2) cold start with a
// buffer pool far smaller than the catalog — the pool pages chains in
// and out, recovery still completes; (3) crash-recovery replay with
// WAL page deltas versus pure statement re-execution (SetLogDeltas
// toggles what the log carries).
func expCkpt() {
	const pool = 256
	rels := 16 * *scale
	rows := 25

	dir, err := os.MkdirTemp("", "wsabench_ckpt")
	must(err)
	defer os.RemoveAll(dir)
	wsdPath := filepath.Join(dir, "checkpoint.wsd")
	cat, wal, err := isql.OpenStorePaged(wsdPath, filepath.Join(dir, "wal.log"), pool)
	must(err)
	sess := isql.FromCatalog(cat)
	for i := 0; i < rels; i++ {
		_, err := sess.ExecString(fmt.Sprintf("create table T%02d (A, B);", i))
		must(err)
		var ins strings.Builder
		fmt.Fprintf(&ins, "insert into T%02d values", i)
		for v := 0; v < rows; v++ {
			if v > 0 {
				ins.WriteString(",")
			}
			fmt.Fprintf(&ins, " (%d, %d)", i*1000+v, v*7)
		}
		ins.WriteString(";")
		_, err = sess.ExecString(ins.String())
		must(err)
	}

	// Full checkpoints: every iteration writes the whole catalog to a
	// fresh page file.
	swapPagers := func(path string) {
		for _, ps := range cat.Pagers() {
			if ps != nil {
				must(ps.Close())
			}
		}
		must(cat.EnablePaging(path, pool))
	}
	iter := 0
	dFull := bench(fmt.Sprintf("CKPT/checkpoint-full/rels=%d", rels), nil, func() {
		p := filepath.Join(dir, fmt.Sprintf("full-%d.wsd", iter))
		iter++
		swapPagers(p)
		must(cat.Checkpoint(wal, p))
	})
	fullBytes := cat.Pagers()[0].Stats().BytesWritten

	// Incremental: re-home on the main path, establish the base, then
	// each iteration dirties one relation and checkpoints only its pages.
	swapPagers(wsdPath)
	must(cat.Checkpoint(wal, wsdPath))
	ps := cat.Pagers()[0]
	incrBase := ps.Stats()
	v := 0
	dIncr := bench("CKPT/checkpoint-incremental", nil, func() {
		_, err := sess.ExecString(fmt.Sprintf("insert into T00 values (%d, %d);", 900000+v, v))
		must(err)
		v++
		must(cat.Checkpoint(wal, wsdPath))
	})
	incrStats := ps.Stats()
	incrBytes := (incrStats.BytesWritten - incrBase.BytesWritten) /
		(incrStats.Checkpoints - incrBase.Checkpoints)
	noopBase := ps.Stats()
	dNoop := bench("CKPT/checkpoint-noop", nil, func() {
		must(cat.Checkpoint(wal, wsdPath))
	})
	noopStats := ps.Stats()
	fmt.Printf("%-28s %-14s %12s\n", "checkpoint", "time", "bytes")
	fmt.Printf("%-28s %-14s %12d\n", fmt.Sprintf("full (%d relations)", rels), dFull, fullBytes)
	fmt.Printf("%-28s %-14s %12d\n", "incremental (1 dirty rel)", dIncr, incrBytes)
	fmt.Printf("%-28s %-14s %12d\n", "no-op (nothing committed)", dNoop, noopStats.BytesWritten-noopBase.BytesWritten)
	if noopStats.BytesWritten != noopBase.BytesWritten || noopStats.NoopSkips == noopBase.NoopSkips {
		must(fmt.Errorf("no-op checkpoint wrote %d bytes (skips %d -> %d)",
			noopStats.BytesWritten-noopBase.BytesWritten, noopBase.NoopSkips, noopStats.NoopSkips))
	}
	byteRatio := float64(fullBytes) / float64(incrBytes)
	fmt.Printf("incremental byte reduction: %.1fx fewer bytes than full (floor 4x)\n", byteRatio)
	acceptRatio("incremental vs full checkpoint bytes", byteRatio, 4)

	// Cold start: reopen the checkpointed catalog with a pool a fraction
	// of the file size, versus a pool that holds it entirely.
	wantVersion := cat.Snapshot().Version
	must(wal.Close())
	coldstart := func(op string, poolPages int) time.Duration {
		return bench(op, nil, func() {
			c2, w2, err := isql.OpenStorePaged(wsdPath, filepath.Join(dir, "wal.log"), poolPages)
			must(err)
			if got := c2.Snapshot().Version; got != wantVersion {
				must(fmt.Errorf("cold start recovered v%d, want v%d", got, wantVersion))
			}
			for _, p := range c2.Pagers() {
				must(p.Close())
			}
			must(w2.Close())
		})
	}
	dTiny := coldstart("CKPT/coldstart/pool=8", 8)
	dBig := coldstart(fmt.Sprintf("CKPT/coldstart/pool=%d", pool), pool)
	fi, err := os.Stat(wsdPath)
	must(err)
	fmt.Printf("\ncold start of a %d-page catalog: pool=8 %s, pool=%d %s\n",
		fi.Size()/8192, dTiny, pool, dBig)

	// Recovery replay: the checkpointed base is a raw Lineitem table;
	// every committed record past the checkpoint drops and rebuilds the
	// §2 what-if analysis with an analytic CTAS (choice-of worlds, a
	// not-in subquery, grouped aggregation). Replaying such a record
	// from statements re-runs the whole analysis through the engine;
	// replaying its WAL page delta just patches the resulting relations
	// back into the catalog. The gap is the query-evaluation cost deltas
	// skip — trivial single-row statements would hide it (their
	// execution is cheaper than decoding the post-commit state the
	// delta carries).
	li := datagen.Lineitem(20, 3, 4, 42)
	var seed strings.Builder
	seed.WriteString("insert into Lineitem values")
	wroteRow := false
	li.Each(func(t relation.Tuple) {
		if wroteRow {
			seed.WriteString(",")
		}
		wroteRow = true
		fmt.Fprintf(&seed, " ('%s', %d, %d, %d)",
			t[0].AsString(), t[1].AsInt(), t[2].AsInt(), t[3].AsInt())
	})
	seed.WriteString(";")
	const whatIf = `create table YearQuantity as
		select A.Year, sum(A.Price) as Revenue
		from (select * from Lineitem choice of Year) as A
		where Quantity not in (select * from Lineitem choice of Quantity)
		group by A.Year;`
	for _, records := range []int{10} {
		records := records * *scale
		var times [2]time.Duration
		for mode, deltas := range map[int]bool{0: true, 1: false} {
			rdir, err := os.MkdirTemp("", "wsabench_ckpt_rec")
			must(err)
			wsd2 := filepath.Join(rdir, "checkpoint.wsd")
			wal2path := filepath.Join(rdir, "wal.log")
			c2, w2, err := isql.OpenStorePaged(wsd2, wal2path, pool)
			must(err)
			c2.SetLogDeltas(deltas)
			s2 := isql.FromCatalog(c2)
			_, err = s2.ExecString("create table Lineitem (Product, Quantity, Price, Year);")
			must(err)
			_, err = s2.ExecString(seed.String())
			must(err)
			must(c2.Checkpoint(w2, wsd2)) // the WAL tail holds only the analyses
			for i := 0; i < records; i++ {
				if i > 0 {
					_, err := s2.ExecString("drop table YearQuantity;")
					must(err)
				}
				_, err := s2.ExecString(whatIf)
				must(err)
			}
			must(w2.Close()) // crash: the analyses live only in the log
			name := "delta"
			if !deltas {
				name = "stmt"
			}
			times[mode] = bench(fmt.Sprintf("CKPT/recovery-%s/records=%d", name, records), nil, func() {
				c3, w3, err := isql.OpenStorePaged(wsd2, wal2path, pool)
				must(err)
				if got := c3.Snapshot().Version; got != c2.Snapshot().Version {
					must(fmt.Errorf("recovery ended at v%d, want v%d", got, c2.Snapshot().Version))
				}
				for _, p := range c3.Pagers() {
					must(p.Close())
				}
				must(w3.Close())
			})
			os.RemoveAll(rdir)
		}
		speedup := float64(times[1]) / float64(times[0])
		fmt.Printf("recovery of %d commits: deltas %s, statements %s — %.1fx (floor 1.5x)\n",
			records, times[0], times[1], speedup)
		acceptRatio("delta vs statement recovery", speedup, 1.5)
	}
}

// expAgg is the tentpole ablation for the bounded evaluator: (1) the
// fragment+aggregate sweep — a catalog holding 2^10 → 2^40 repair
// worlds plus a small independent choice region, where aggregates and
// aggregate CTAS enumerate only the dependent components (latency must
// stay flat as the world count grows thirty orders of magnitude, and a
// fragment join of two choice tables must resolve its entanglement by
// a native merge, never a full expansion); (2) merge versus the
// enumeration fallback head to head on a decomposition whose only
// entanglement couples two 4-alternative components among d independent
// spectators — the merge pays cost 16 whatever d is, the fallback pays
// 2^(4+d) and above the budget cannot run at all.
func expAgg() {
	fmt.Printf("%-10s %-16s %-14s %-14s %-14s\n",
		"dup SSNs", "worlds", "bounded agg", "agg ctas", "merge join")
	var aggTimes []time.Duration
	for _, dups := range []int{10, 20, 30, 40} {
		census := datagen.Census(1000**scale, dups, 7)
		s := isql.FromDB([]string{"Census"}, []*relation.Relation{census})
		stats := isql.NewExecStats()
		s.Stats = stats
		_, err := s.ExecScript(`
			create table Clean as select * from Census repair by key SSN;
			create table Tiny (V);
			insert into Tiny values (1);
			insert into Tiny values (2);
			insert into Tiny values (3);
			create table Pick1 as select * from Tiny choice of V;
			create table Pick2 as select * from Tiny choice of V;`)
		must(err)
		worlds := s.Worlds().String()
		// Aggregate over the 1-component choice region: 3 dependent
		// worlds enumerated, however many the catalog represents.
		dAgg := bench(fmt.Sprintf("AGG/bounded-agg/dups=%d", dups), nil, func() {
			res, err := s.ExecString("select sum(V) as S from Pick1;")
			must(err)
			if len(res.Answers) != 3 {
				must(fmt.Errorf("AGG bounded aggregate: %d answers, want 3", len(res.Answers)))
			}
		})
		aggTimes = append(aggTimes, dAgg)
		// Aggregate CTAS: the grouped result is refactored and the
		// independent repair components spliced back unchanged.
		n := 0
		dCTAS := bench(fmt.Sprintf("AGG/agg-ctas/dups=%d", dups), nil, func() {
			n++
			_, err := s.ExecString(fmt.Sprintf(
				"create table PickStats%d as select V, count(*) as N from Pick1 group by V;", n))
			must(err)
		})
		// Fragment join entangling the two choice components: resolved by
		// one native merge (cost 9), never a fallback.
		dJoin := bench(fmt.Sprintf("AGG/merge-join/dups=%d", dups), nil, func() {
			res, err := s.ExecString("select certain X.V from Pick1 X, Pick2 Y where X.V = Y.V;")
			must(err)
			if res.Plan == nil || !res.Plan.Native || len(res.Plan.Merges) == 0 {
				must(fmt.Errorf("AGG merge join did not merge natively: %v", res.Plan))
			}
		})
		snap := stats.Snapshot()
		if snap.Fallbacks != 0 {
			must(fmt.Errorf("AGG sweep hit %d full-expansion fallbacks", snap.Fallbacks))
		}
		if snap.LegacyOps["aggregation"] == 0 {
			must(fmt.Errorf("AGG sweep recorded no bounded aggregation (stats %+v)", snap))
		}
		fmt.Printf("%-10d %-16s %-14s %-14s %-14s\n", dups, worlds, dAgg, dCTAS, dJoin)
	}
	// Intra-run floor for world-count independence: the bounded
	// aggregate at 2^40 may not be more than 5x the 2^10 run — the
	// dependent region is identical, only the spliced-back catalog grew.
	independence := float64(aggTimes[0]) / float64(aggTimes[len(aggTimes)-1])
	fmt.Printf("bounded aggregate 2^10 vs 2^40: %.2fx (floor 0.2x, i.e. at most 5x slower)\n", independence)
	acceptRatio("bounded aggregate world-count independence (2^10 vs 2^40)", independence, 0.2)

	// Merge vs enumeration fallback head to head.
	fmt.Printf("\n%-12s %-10s %-14s %-16s %-10s\n",
		"spectators", "worlds", "merge path", "expand path", "speedup")
	for _, d := range []int{8, 12, 38} {
		db, q := aggTornDB(4, d)
		dMerge := bench(fmt.Sprintf("AGG/merge/spect=%d", d), nil, func() {
			_, plan, err := wsdexec.EvalOpts(q, db, &wsdexec.Options{NoFallback: true})
			must(err)
			if !plan.Native || len(plan.Merges) != 1 || plan.MergeCost != 16 {
				must(fmt.Errorf("AGG merge plan not one native cost-16 merge: %v", plan))
			}
		})
		worlds := fmt.Sprintf("2^%d", 4+d)
		expand := "(refused: BudgetError)"
		speedup := ""
		if d <= 12 {
			dExpand := bench(fmt.Sprintf("AGG/expand/spect=%d", d), nil, func() {
				_, plan, err := wsdexec.EvalOpts(q, db, &wsdexec.Options{NoMerge: true, ExpandBudget: 1 << 20})
				must(err)
				if plan.Native {
					must(fmt.Errorf("AGG NoMerge run evaluated natively: %v", plan))
				}
			})
			expand = dExpand.String()
			ratio := float64(dExpand) / float64(dMerge)
			speedup = fmt.Sprintf("%.0fx", ratio)
			if d == 12 {
				// Without bounded merging the entangled product enumerates
				// 2^16 worlds; the merge pays 16 alternatives. If merging
				// silently degraded to enumeration this collapses to ~1x.
				acceptRatio("bounded merge vs enumeration fallback at 2^16 worlds", ratio, 3)
			}
		} else {
			_, _, err := wsdexec.EvalOpts(q, db, &wsdexec.Options{NoMerge: true, ExpandBudget: 1 << 20})
			var be *wsd.BudgetError
			if !errors.As(err, &be) {
				must(fmt.Errorf("AGG NoMerge at 2^42 should refuse with *wsd.BudgetError, got %v", err))
			}
		}
		fmt.Printf("%-12d %-10s %-14s %-16s %-10s\n", d, worlds, dMerge, expand, speedup)
	}
}

// aggTornDB builds a decomposition whose only entanglement couples two
// k-alternative components (relations R and S) while d independent
// binary spectator components vary relation T: k²·2^d worlds, merge
// cost k² for the product R × S.
func aggTornDB(k, d int) (*wsd.DecompDB, wsa.Expr) {
	names := []string{"R", "S", "T"}
	schemas := []relation.Schema{
		relation.NewSchema("A"), relation.NewSchema("B"), relation.NewSchema("C")}
	db := wsd.NewDecompDB(names, schemas)
	comp := func(ri, n int) wsd.DBComponent {
		c := wsd.DBComponent{}
		for a := 0; a < n; a++ {
			r := relation.New(schemas[ri])
			r.Insert(relation.Tuple{value.Int(int64(a))})
			c.Alternatives = append(c.Alternatives, wsd.DBAlternative{Rels: map[int]*relation.Relation{ri: r}})
		}
		return c
	}
	db.Components = append(db.Components, comp(0, k), comp(1, k))
	for i := 0; i < d; i++ {
		db.Components = append(db.Components, comp(2, 2))
	}
	return db, wsa.NewProduct(&wsa.Rel{Name: "R"}, &wsa.Rel{Name: "S"})
}

// expShard is the tentpole ablation for the component-sharded catalog:
// (1) transactional commit throughput under contention — concurrent
// writers each looping BEGIN → inserts into their own table → COMMIT,
// swept over shard counts {1,2,4,8} × writers {1,8}, every commit
// WAL-logged. On the unsharded catalog every concurrent commit loses
// first-committer-wins validation to whichever writer published first
// and re-executes its statements (a conflict-retry storm); shard-level
// validation confines conflicts to writers whose tables share a home
// shard, so disjoint writers commit — and fsync, each shard owning its
// own WAL segment — without ever retrying. Floor: ≥3x commit throughput
// at 8 writers on 4 shards versus 8 writers on 1 shard. (2) routed
// single-statement latency — a lone writer's auto-commit inserts take
// one shard's write path and must stay within 10% of the unsharded
// path. (3) scattered reads — selects over choice tables spread across
// the shards plus a cross-shard merge join, where the sharded snapshot
// hands the engine its component-to-shard map: scatter ordering may
// change scan chunking, never latency class or answers.
func expShard() {
	const (
		commitsPerWriter = 6
		stmtsPerTxn      = 4
		seedRows         = 8000
	)
	// The contention sweep needs writers that actually interleave: on a
	// box with few cores, GOMAXPROCS=1 would serialize the writers at
	// their commit points and no retry storm could develop on ANY
	// catalog. Pin GOMAXPROCS to the writer count for the sweep (the
	// JSON rows record it) and restore for the latency parts below.
	prevProcs := runtime.GOMAXPROCS(8)
	fmt.Printf("%-8s %-8s %-9s %-10s %-8s %-14s %-14s\n",
		"shards", "writers", "commits", "conflicts", "fsyncs", "total", "per commit")
	throughput := map[[2]int]time.Duration{}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, writers := range []int{1, 8} {
			dir, err := os.MkdirTemp("", "wsabench_shard")
			must(err)
			cat, wals := shardBenchCatalog(dir, shards)
			tables := shardSpreadNames(cat, writers)
			seed := isql.FromCatalog(cat)
			for _, tbl := range tables {
				_, err := seed.ExecString(fmt.Sprintf("create table %s (A, B);", tbl))
				must(err)
				// Seed rows so statement execution costs real work (every
				// insert copies the table): what a retry re-executes is
				// what the sweep is measuring.
				for base := 0; base < seedRows; base += 250 {
					var ins strings.Builder
					fmt.Fprintf(&ins, "insert into %s values", tbl)
					for v := base; v < base+250; v++ {
						if v > base {
							ins.WriteString(",")
						}
						fmt.Fprintf(&ins, " (%d, %d)", 10000000+v, v)
					}
					ins.WriteString(";")
					_, err := seed.ExecString(ins.String())
					must(err)
				}
			}
			baseVersion := cat.Snapshot().Version
			round := 0
			d := bench(fmt.Sprintf("SHARD/txn-commit/shards=%d,writers=%d", shards, writers), nil, func() {
				round++
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w, round int) {
						defer wg.Done()
						sess := isql.FromCatalog(cat)
						sess.RetryConflicts = 1 << 20
						for i := 0; i < commitsPerWriter; i++ {
							if err := sess.Begin(); err != nil {
								panic(err)
							}
							for j := 0; j < stmtsPerTxn; j++ {
								v := ((round*10+w)*100+i)*10 + j
								if _, err := sess.ExecString(fmt.Sprintf("insert into %s values (%d, %d);", tables[w], v, v*3)); err != nil {
									panic(err)
								}
							}
							if err := sess.Commit(); err != nil {
								panic(err)
							}
						}
					}(w, round)
				}
				wg.Wait()
			})
			commits := uint64(cat.Snapshot().Version - baseVersion)
			var conflicts, syncs uint64
			for _, st := range cat.ShardStats() {
				conflicts += st.Conflicts
				syncs += st.Syncs
			}
			perRound := writers * commitsPerWriter
			fmt.Printf("%-8d %-8d %-9d %-10d %-8d %-14s %-14s\n",
				shards, writers, commits, conflicts, syncs, d, d/time.Duration(perRound))
			throughput[[2]int{shards, writers}] = d
			for _, w := range wals {
				must(w.Close())
			}
			os.RemoveAll(dir)
		}
	}
	contended4 := float64(throughput[[2]int{1, 8}]) / float64(throughput[[2]int{4, 8}])
	contended8 := float64(throughput[[2]int{1, 8}]) / float64(throughput[[2]int{8, 8}])
	fmt.Printf("commit throughput, 8 writers: 4 shards %.1fx, 8 shards %.1fx over 1 shard (blocking floor: best ≥ 3x)\n",
		contended4, contended8)
	// Intra-run floor: the win is structural — shard-level validation
	// confines retry re-execution to writers sharing a shard, instead of
	// every in-flight transaction losing to every published commit.
	best := contended4
	if contended8 > best {
		best = contended8
	}
	acceptRatio("sharded commit throughput at 8 writers, 4+ shards vs 1 shard", best, 3)
	runtime.GOMAXPROCS(prevProcs)

	// Routed single-statement latency: one writer, auto-commit inserts,
	// in-memory catalogs so the comparison isolates the routing and
	// merged-publish overhead of the sharded write path (the durable
	// sweep above already covers the per-shard WAL, whose append+fsync
	// per commit is the same work on both sides). The two paths are
	// sampled in alternation so drift hits both equally; the floor
	// compares best rounds.
	type singleCfg struct {
		shards int
		sess   *isql.Session
		n      int
		best   time.Duration
	}
	var cfgs [2]*singleCfg
	for i, shards := range []int{1, 4} {
		cat := store.New(nil)
		cat.Reshard(shards)
		sess := isql.FromCatalog(cat)
		_, err := sess.ExecString("create table T (A, B);")
		must(err)
		cfgs[i] = &singleCfg{shards: shards, sess: sess}
	}
	const insertsPerRound = 256
	for rep := 0; rep < 5; rep++ {
		for _, cfg := range cfgs {
			start := time.Now()
			for j := 0; j < insertsPerRound; j++ {
				cfg.n++
				if _, err := cfg.sess.ExecString(fmt.Sprintf("insert into T values (%d, %d);", cfg.n, cfg.n*3)); err != nil {
					panic(err)
				}
			}
			if d := time.Since(start); cfg.best == 0 || d < cfg.best {
				cfg.best = d
			}
		}
	}
	for _, cfg := range cfgs {
		benchRows = append(benchRows, benchRow{
			Op:         fmt.Sprintf("SHARD/insert-routed/shards=%d", cfg.shards),
			NsPerOp:    cfg.best.Nanoseconds(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		})
	}
	single := float64(cfgs[0].best) / float64(cfgs[1].best)
	fmt.Printf("\nrouted single-writer insert, 4 shards vs unsharded: %.2fx (blocking floor 0.9x, i.e. within ~10%%)\n", single)
	acceptRatio("routed single-shard insert latency, 4 shards vs unsharded", single, 0.9)

	// Scattered reads over a sharded snapshot (in-memory): 8 choice
	// tables spread round-robin over the shards, read one select per
	// table plus one cross-shard merge join per pass.
	var scanNs [2]time.Duration
	for i, shards := range []int{1, 4} {
		cat := store.New(nil)
		cat.Reshard(shards)
		sess := isql.FromCatalog(cat)
		tables := shardSpreadNames(cat, 8)
		choices := make([]string, len(tables))
		for ti, tbl := range tables {
			mustPost2 := func(sql string) {
				_, err := sess.ExecString(sql)
				must(err)
			}
			mustPost2(fmt.Sprintf("create table %s (A);", tbl))
			for v := 0; v < 6; v++ {
				mustPost2(fmt.Sprintf("insert into %s values (%d);", tbl, v+10*ti))
			}
			choices[ti] = "P" + tbl
			mustPost2(fmt.Sprintf("create table %s as select * from %s choice of A;", choices[ti], tbl))
		}
		crossJoin := fmt.Sprintf("select certain X.A from %s X, %s Y where X.A = Y.A;", choices[0], choices[1])
		scanNs[i] = bench(fmt.Sprintf("SHARD/scatter-select/shards=%d", shards), nil, func() {
			for _, p := range choices {
				if _, err := sess.ExecString(fmt.Sprintf("select possible A from %s;", p)); err != nil {
					panic(err)
				}
			}
			if _, err := sess.ExecString(crossJoin); err != nil {
				panic(err)
			}
		})
	}
	scatter := float64(scanNs[0]) / float64(scanNs[1])
	fmt.Printf("scattered selects + cross-shard join, 4 shards vs unsharded: %.2fx (blocking floor 0.7x)\n", scatter)
	acceptRatio("scattered read latency, 4 shards vs unsharded", scatter, 0.7)
}

// shardBenchCatalog opens a fresh WAL-backed catalog sharded n ways in
// dir — the cmd/isqld wiring without the recovery arm. shards = 1 opens
// the unsharded single-log write path.
func shardBenchCatalog(dir string, shards int) (*store.Catalog, []*store.WAL) {
	cat := store.New(nil)
	cat.Reshard(shards)
	wals := make([]*store.WAL, cat.Shards())
	for i := range wals {
		w, _, err := store.OpenWAL(store.SegmentPath(dir, i))
		must(err)
		wals[i] = w
	}
	cat.SetShardLoggers(wals)
	return cat, wals
}

// shardSpreadNames picks n distinct table names whose home shards cycle
// round-robin over the catalog's shards, so each writer (or scattered
// reader) of the sweep lands where intended: writers % shards per
// shard, exactly.
func shardSpreadNames(cat *store.Catalog, n int) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		name := fmt.Sprintf("B%d", i)
		if cat.ShardOf(name) == len(out)%cat.Shards() {
			out = append(out, name)
		}
	}
	return out
}

// mustPost posts a body and requires HTTP 200.
func mustPost(url, body string) {
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	must(err)
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	must(err)
	if resp.StatusCode != http.StatusOK {
		must(fmt.Errorf("POST %s: status %d\n%s", url, resp.StatusCode, out))
	}
}

// expPlan is the cost-based-planning ablation (PR 9 tentpole): the
// three planner decisions that read decomposition statistics, each
// measured against its pre-stats arm.
//
//  1. cold compile — the Figure 8 analytical queries through the served
//     prelower search (PushSelections + bounded best-first rewrite)
//     with the branch-and-bound bound on versus off. The bound must cut
//     cold-compile latency by ≥1.3x while still picking a plan at least
//     as cheap as the exhaustive search's.
//  2. ordered product — a six-way product chain written largest-first.
//     Stats-ordered execution rebuilds it smallest-first so every
//     prefix intermediate stays tiny (the written order re-materializes
//     the full cross product once per trailing single-tuple piece), and
//     the restoring projection must keep the answer identical.
//  3. merge decision — an entanglement whose merge cost (36) exceeds
//     the expansion budget (20) but undercuts the input world count by
//     orders of magnitude: the cost-based engine merges natively under
//     the headroom rule where the pure budget test would have forced an
//     enumeration of every world.
func expPlan() {
	// (1) Cold-compile latency: pruned vs exhaustive rewrite search over
	// the served prelower rule set, seeded with plausible statistics.
	env := wsa.NewEnv(
		[]string{"HFlights", "Hotels"},
		[]relation.Schema{relation.NewSchema("Dep", "Arr"), relation.NewSchema("Name", "City", "Price")})
	st := rewrite.Stats{
		"HFlights": {Certain: 500, Alternative: 140, Components: 40},
		"Hotels":   {Certain: 20},
	}
	build := func(close wsa.CloseKind) wsa.Expr {
		inner := wsa.NewPossGroup([]string{"Dep"}, nil,
			&wsa.Choice{Attrs: []string{"Dep", "City"},
				From: wsa.NewProduct(&wsa.Rel{Name: "HFlights"}, &wsa.Rel{Name: "Hotels"})})
		return &wsa.Close{Kind: close,
			From: &wsa.Project{Columns: []string{"City"},
				From: &wsa.Select{Pred: ra.Eq("Arr", "City"), From: inner}}}
	}
	queries := []wsa.Expr{build(wsa.CloseCert), build(wsa.ClosePoss)}
	compile := func(op string, noPrune bool) (time.Duration, rewrite.SearchStats, float64) {
		var total rewrite.SearchStats
		var cost float64
		d := bench(op, nil, func() {
			total, cost = rewrite.SearchStats{}, 0
			for _, q := range queries {
				var ss rewrite.SearchStats
				best, _ := rewrite.OptimizeOpts(rewrite.PushSelections(q, env), env, false,
					&rewrite.Options{MaxExpansions: 200, MaxSize: 60, Stats: st,
						NoPrune: noPrune, Search: &ss})
				total.Expanded += ss.Expanded
				total.Pruned += ss.Pruned
				cost += rewrite.CostOn(best, st)
			}
		})
		return d, total, cost
	}
	fmt.Printf("%-18s %-14s %-10s %-10s %-12s\n", "search", "compile", "expanded", "pruned", "best cost")
	dPruned, sPruned, cPruned := compile("PLAN/cold-compile/pruned", false)
	dExh, sExh, cExh := compile("PLAN/cold-compile/exhaustive", true)
	fmt.Printf("%-18s %-14s %-10d %-10d %-12.0f\n", "branch-and-bound", dPruned, sPruned.Expanded, sPruned.Pruned, cPruned)
	fmt.Printf("%-18s %-14s %-10d %-10d %-12.0f\n", "exhaustive", dExh, sExh.Expanded, sExh.Pruned, cExh)
	if cPruned > cExh {
		must(fmt.Errorf("PLAN pruning changed the chosen plans: total cost %.1f pruned vs %.1f exhaustive", cPruned, cExh))
	}
	prRatio := float64(dExh) / float64(dPruned)
	fmt.Printf("cold-compile speedup from pruning: %.2fx (floor 1.3x)\n\n", prRatio)
	acceptRatio("cold-compile pruned vs exhaustive rewrite search", prRatio, 1.3)

	// (2) Stats-ordered product chains: Big (wide) × Mid × four
	// single-tuple pieces, written largest-first. The written order pays
	// |Big×Mid| again for every trailing piece; smallest-first pays the
	// final product once.
	names := []string{"Big", "Mid", "T1", "T2", "T3", "T4"}
	schemas := []relation.Schema{
		relation.NewSchema("A1", "A2", "A3", "A4", "A5", "A6"),
		relation.NewSchema("B1", "B2"),
		relation.NewSchema("C1"), relation.NewSchema("C2"),
		relation.NewSchema("C3"), relation.NewSchema("C4"),
	}
	pdb := wsd.NewDecompDB(names, schemas)
	for i := 0; i < 300**scale; i++ {
		pdb.Certain[0].Insert(relation.Tuple{
			value.Int(int64(i)), value.Int(int64(i % 7)), value.Int(int64(i % 11)),
			value.Int(int64(i % 13)), value.Int(int64(i % 17)), value.Int(int64(i % 19))})
	}
	for i := 0; i < 30; i++ {
		pdb.Certain[1].Insert(relation.Tuple{value.Int(int64(i)), value.Int(int64(i % 5))})
	}
	for t := 2; t < len(names); t++ {
		pdb.Certain[t].Insert(relation.Tuple{value.Int(int64(t))})
	}
	chain := wsa.Expr(&wsa.Rel{Name: names[0]})
	for _, n := range names[1:] {
		chain = wsa.NewProduct(chain, &wsa.Rel{Name: n})
	}
	// Answers must be identical tuple for tuple: the reorder's restoring
	// projection undoes the column shuffle, and Tuples() is canonical.
	ordOut, ordPlan, err := wsdexec.EvalOpts(chain, pdb, nil)
	must(err)
	naiveOut, naivePlan, err := wsdexec.EvalOpts(chain, pdb, &wsdexec.Options{NoReorder: true})
	must(err)
	if !ordPlan.Reordered || naivePlan.Reordered {
		must(fmt.Errorf("PLAN ordered-product: reordered flags ordered=%v naive=%v, want true/false",
			ordPlan.Reordered, naivePlan.Reordered))
	}
	a, b := ordOut.Certain[0].Tuples(), naiveOut.Certain[0].Tuples()
	if len(a) != len(b) {
		must(fmt.Errorf("PLAN ordered-product: %d tuples ordered vs %d naive", len(a), len(b)))
	}
	for i := range a {
		if a[i].Less(b[i]) || b[i].Less(a[i]) {
			must(fmt.Errorf("PLAN ordered-product: answers diverge at tuple %d: %v vs %v", i, a[i], b[i]))
		}
	}
	dOrdered := bench("PLAN/ordered-product/stats-ordered", nil, func() {
		_, plan, err := wsdexec.EvalOpts(chain, pdb, nil)
		must(err)
		if !plan.Reordered {
			must(fmt.Errorf("PLAN ordered-product run was not reordered: %v", plan))
		}
	})
	dWritten := bench("PLAN/ordered-product/written-order", nil, func() {
		_, _, err := wsdexec.EvalOpts(chain, pdb, &wsdexec.Options{NoReorder: true})
		must(err)
	})
	opRatio := float64(dWritten) / float64(dOrdered)
	fmt.Printf("%-18s %-14s\n%-18s %-14s\n", "stats-ordered", dOrdered, "written order", dWritten)
	fmt.Printf("ordered product chain speedup: %.2fx (floor 1.2x)\n\n", opRatio)
	acceptRatio("stats-ordered product chain vs written order", opRatio, 1.2)

	// (3) Merge-vs-fallback decision quality: two 6-alternative
	// components entangled among 8 binary spectators — merge cost 36,
	// 36·2^8 input worlds. At budget 20 the pure budget test refuses the
	// merge; the cost comparison (36 ≪ 9216 worlds, within 4x headroom)
	// merges natively. NoFallback makes the decision an assertion: had
	// the engine declined the merge, the run would error.
	mdb, mq := aggTornDB(6, 8)
	dCost := bench("PLAN/merge-decision/cost-based", nil, func() {
		_, plan, err := wsdexec.EvalOpts(mq, mdb, &wsdexec.Options{ExpandBudget: 20, NoFallback: true})
		must(err)
		if !plan.Native || len(plan.Merges) != 1 || plan.MergeCost != 36 {
			must(fmt.Errorf("PLAN merge-decision did not merge natively at cost 36: %v", plan))
		}
	})
	dEnum := bench("PLAN/merge-decision/enumerate", nil, func() {
		_, plan, err := wsdexec.EvalOpts(mq, mdb, &wsdexec.Options{NoMerge: true, ExpandBudget: 1 << 20})
		must(err)
		if plan.Native {
			must(fmt.Errorf("PLAN merge-decision NoMerge run evaluated natively: %v", plan))
		}
	})
	mdRatio := float64(dEnum) / float64(dCost)
	fmt.Printf("%-18s %-14s\n%-18s %-14s\n", "cost-based merge", dCost, "enumerate", dEnum)
	fmt.Printf("merge decision vs enumeration at 2^13 worlds: %.0fx (floor 3x)\n", mdRatio)
	acceptRatio("cost-based merge decision vs world enumeration", mdRatio, 3)
}

func expThreeWays() {
	fmt.Printf("%-44s %-10s %-14s\n", "formulation", "answer", "time")
	queries := []struct {
		name string
		sql  string
	}{
		{"I-SQL: choice of + certain",
			"select certain Arr from HFlights choice of Dep;"},
		{"SQL + division operator",
			"select Arr from (select Arr, Dep from HFlights) as F1 divide by (select Dep from HFlights) as F2 on F1.Dep = F2.Dep;"},
		{"plain SQL: double not-exists",
			"select F1.Arr from HFlights F1 where not exists (select * from HFlights F2 where not exists (select * from HFlights F3 where F3.Dep = F2.Dep and F3.Arr = F1.Arr));"},
	}
	// The double-not-exists formulation is cubic with correlated
	// subqueries, so the workload is kept small; even here I-SQL's
	// choice-of + certain wins by orders of magnitude.
	flights := datagen.Flights(8**scale, 12, 0.4, 9)
	for qi, q := range queries {
		var rows int
		d := bench(fmt.Sprintf("SQL3/form%d", qi), nil, func() {
			s := isql.FromDB([]string{"HFlights"}, []*relation.Relation{flights})
			res, err := s.ExecString(q.sql)
			must(err)
			rows = res.Answers[0].Len()
		})
		fmt.Printf("%-44s %-10d %-14s\n", q.name, rows, d)
	}
}

func expTranslations() {
	fmt.Printf("%-10s %-14s %-14s %-14s %-12s %-12s\n",
		"flights", "naive ws", "general RA", "optimized RA", "gen nodes", "opt nodes")
	q := wsa.NewCert(&wsa.Project{Columns: []string{"Arr"},
		From: &wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "HFlights"}}})
	for _, nDep := range []int{10, 40, 160, 640} {
		nDep := nDep * *scale
		flights := datagen.Flights(nDep, 20, 0.3, 5)
		db := ra.DB{"HFlights": flights}
		ws := worldset.FromDB([]string{"HFlights"}, []*relation.Relation{flights})

		dNaive := bench(fmt.Sprintf("E56/naive/deps=%d", nDep), nil, func() { _, err := wsa.Eval(q, ws); must(err) })
		gen, err := translate.ToRelational(q, []string{"HFlights"}, db)
		must(err)
		dGen := bench(fmt.Sprintf("E56/generalRA/deps=%d", nDep), nil, func() { _, err := gen.Eval(db); must(err) })
		opt, err := translate.ToRelationalOptimized(q, []string{"HFlights"}, db)
		must(err)
		dOpt := bench(fmt.Sprintf("E56/optimizedRA/deps=%d", nDep), nil, func() { _, err := opt.Eval(db); must(err) })
		fmt.Printf("%-10d %-14s %-14s %-14s %-12d %-12d\n",
			flights.Len(), dNaive, dGen, dOpt, ra.Size(gen), ra.Size(opt))
	}
}

func expRewriting() {
	build := func(close wsa.CloseKind) wsa.Expr {
		inner := wsa.NewPossGroup([]string{"Dep"}, nil,
			&wsa.Choice{Attrs: []string{"Dep", "City"},
				From: wsa.NewProduct(&wsa.Rel{Name: "HFlights"}, &wsa.Rel{Name: "Hotels"})})
		return &wsa.Close{Kind: close,
			From: &wsa.Project{Columns: []string{"City"},
				From: &wsa.Select{Pred: ra.Eq("Arr", "City"), From: inner}}}
	}
	env := wsa.NewEnv(
		[]string{"HFlights", "Hotels"},
		[]relation.Schema{relation.NewSchema("Dep", "Arr"), relation.NewSchema("Name", "City", "Price")})

	// Estimated cost is reported as the before/after ratio, not two
	// absolute columns: a ratio stays meaningful across estimator
	// retunings, absolute cost units do not.
	fmt.Printf("%-8s %-10s %-12s %-14s %-14s %-8s\n",
		"query", "flights", "est ratio", "original", "optimized", "speedup")
	for _, tc := range []struct {
		name  string
		close wsa.CloseKind
	}{{"q1", wsa.CloseCert}, {"q2", wsa.ClosePoss}} {
		q := build(tc.close)
		opt, _ := rewrite.Optimize(q, env, true)
		for _, nDep := range []int{4, 8, 16} {
			nDep := nDep * *scale
			flights := datagen.Flights(nDep, 10, 0.4, 3)
			hotels := datagen.Hotels(10, 2, 4)
			ws := worldset.FromDB([]string{"HFlights", "Hotels"},
				[]*relation.Relation{flights, hotels})
			dOrig := bench(fmt.Sprintf("F8F9/%s-original/deps=%d", tc.name, nDep), nil,
				func() { _, err := wsa.Eval(q, ws); must(err) })
			dOpt := bench(fmt.Sprintf("F8F9/%s-rewritten/deps=%d", tc.name, nDep), nil,
				func() { _, err := wsa.Eval(opt, ws); must(err) })
			fmt.Printf("%-8s %-10d %-12s %-14s %-14s %.1fx\n",
				tc.name, flights.Len(), fmt.Sprintf("%.1fx", rewrite.Cost(q)/rewrite.Cost(opt)),
				dOrig, dOpt, float64(dOrig)/float64(dOpt))
		}
	}
}

// expPhysical compares, on a group-worlds-by query where the Figure 6
// construction pairs worlds quadratically, the three execution paths
// over the same inlined representation: the naive Figure 3 evaluator,
// the generated relational plan, and the dedicated physical operators
// proposed in the paper's conclusion.
func expPhysical() {
	fmt.Printf("%-10s %-10s %-14s %-16s %-16s\n",
		"flights", "worlds", "naive ws", "Fig. 6 RA plan", "physical ops")
	q := wsa.NewPossGroup([]string{"Arr"}, []string{"Dep", "Arr"},
		&wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "Flights"}})
	for _, nDep := range []int{5, 20, 80} {
		nDep := nDep * *scale
		flights := datagen.Flights(nDep, 15, 0.3, 7)
		ws := worldset.FromDB([]string{"Flights"}, []*relation.Relation{flights})
		var worlds int
		dNaive := bench(fmt.Sprintf("PHYS/naive/deps=%d", nDep), &worlds, func() {
			out, err := wsa.Eval(q, ws)
			must(err)
			worlds = out.Len()
		})
		dRA := bench(fmt.Sprintf("PHYS/figure6RA/deps=%d", nDep), &worlds, func() {
			_, err := translate.EvalWorldSet(q, ws)
			must(err)
		})
		dPhys := bench(fmt.Sprintf("PHYS/physical/deps=%d", nDep), &worlds, func() {
			_, err := physical.EvalWorldSet(q, ws)
			must(err)
		})
		fmt.Printf("%-10d %-10d %-14s %-16s %-16s\n", flights.Len(), worlds, dNaive, dRA, dPhys)
	}
}

func expEquivalenceTable() {
	rows := []struct{ eq, status string }{
		{"(1)–(6) commute poss/cert with σ, π, ∪, ∩, ×", "verified on arbitrary world-sets"},
		{"(7) π/χ commute, (8) χ/product commute", "verified on arbitrary world-sets"},
		{"(9),(10) σ/γ commute", "needs extra side condition Y ⊆ X (counterexample for printed form)"},
		{"(11) poss absorbs χ", "verified on arbitrary world-sets"},
		{"(12)–(14) γ to projection reductions", "verified on arbitrary world-sets"},
		{"(15),(16) poss/pγ and cert/cγ fusions", "verified on arbitrary world-sets"},
		{"(17) nested χ merge", "verified on arbitrary world-sets"},
		{"(18) nested γ collapse", "sound only for equal grouping attrs (X = G); counterexample otherwise"},
		{"(19) nested γ collapse (inner cγ)", "counterexampled; omitted from the optimizer"},
		{"(20) pγ absorbs wider χ", "sound on singleton inputs only; multi-world counterexample"},
		{"(21) cγ absorbs wider χ", "sound only for χ attrs = grouping attrs, singleton inputs"},
		{"(22),(23) idempotent closes", "verified on arbitrary world-sets"},
		{"(24) cert/difference", "verified on arbitrary world-sets"},
		{"(25),(26) Prop. 6.3 poss/cert duality", "verified on arbitrary world-sets"},
	}
	fmt.Printf("%-50s %s\n", "equivalence", "status (see internal/rewrite/equivalences_test.go)")
	for _, r := range rows {
		fmt.Printf("%-50s %s\n", r.eq, r.status)
	}
}

func expTriQL() {
	u1 := &uldb.ULDB{Relations: []*uldb.XRelation{{
		Name: "R", Schema: relation.NewSchema("A"),
		Tuples: []*uldb.XTuple{{
			ID:           "t1",
			Alternatives: []relation.Tuple{uldb.IntTuple(1), uldb.IntTuple(2)},
			Maybe:        true,
		}},
	}}}
	u2 := &uldb.ULDB{
		External: map[string]int{"s1": 2},
		Relations: []*uldb.XRelation{{
			Name: "R", Schema: relation.NewSchema("A"),
			Tuples: []*uldb.XTuple{
				{ID: "t1", Alternatives: []relation.Tuple{uldb.IntTuple(1)}, Maybe: true,
					Lineage: [][]uldb.AltRef{{{Tuple: "s1", Alt: 1}}}},
				{ID: "t2", Alternatives: []relation.Tuple{uldb.IntTuple(2)}, Maybe: true,
					Lineage: [][]uldb.AltRef{{{Tuple: "s1", Alt: 2}}}},
			},
		}},
	}
	fmt.Print("U1:\n", u1.Relations[0], "U2:\n", u2.Relations[0])
	w1, err := u1.Worlds()
	must(err)
	w2, err := u2.Worlds()
	must(err)
	fmt.Printf("rep(U1) = rep(U2): %v (both are the 3 worlds {1}, {2}, {})\n",
		w1.Equal(w2))
	q1 := uldb.HorizontalSelect(u1.Relations[0])
	q2 := uldb.HorizontalSelect(u2.Relations[0])
	fmt.Printf("TriQL horizontal selection q: |q(U1)| = %d x-tuple(s), |q(U2)| = %d x-tuple(s)\n",
		len(q1.Tuples), len(q2.Tuples))
	fmt.Println("→ same input world-sets, different answers: TriQL is not generic (Remark 4.6)")
}

func expThreeColor() {
	graphs := []struct {
		name     string
		vertices int
		edges    [][2]int
		want     bool
	}{
		{"triangle", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, true},
		{"K4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, false},
		{"C5", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, true},
	}
	fmt.Printf("%-10s %-10s %-10s %-12s %-14s\n", "graph", "vertices", "worlds", "3-colorable", "time")
	for _, g := range graphs {
		vert := relation.New(relation.NewSchema("V"))
		for i := 0; i < g.vertices; i++ {
			vert.InsertValues(strVal(fmt.Sprintf("v%d", i)))
		}
		edge := relation.New(relation.NewSchema("U", "W"))
		for _, e := range g.edges {
			edge.InsertValues(strVal(fmt.Sprintf("v%d", e[0])), strVal(fmt.Sprintf("v%d", e[1])))
		}
		palette := relation.New(relation.NewSchema("Col"))
		for _, c := range []string{"r", "g", "b"} {
			palette.InsertValues(strVal(c))
		}
		var worlds int
		var colorable bool
		d := timed(func() {
			s := isql.FromDB([]string{"Vert", "Edge", "Palette"},
				[]*relation.Relation{vert, edge, palette})
			_, err := s.ExecString("create table Coloring as select V, Col from Vert, Palette repair by key V;")
			must(err)
			worlds = sessionWorlds(s)
			res, err := s.ExecString(`select C1.V from Edge, Coloring C1, Coloring C2
				where Edge.U = C1.V and Edge.W = C2.V and C1.Col = C2.Col;`)
			must(err)
			colorable = false
			for _, a := range res.Answers {
				if a.Empty() {
					colorable = true
				}
			}
		})
		status := fmt.Sprintf("%v", colorable)
		if colorable != g.want {
			status += " (UNEXPECTED)"
		}
		fmt.Printf("%-10s %-10d %-10d %-12s %-14s\n", g.name, g.vertices, worlds, status, d)
	}
}

func strVal(s string) value.Value { return value.Str(s) }
