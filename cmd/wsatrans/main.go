// Command wsatrans shows the whole compilation pipeline of the paper for
// one query: I-SQL text → World-set Algebra (§4) → operator type →
// rewritten plan (Figure 7) → general relational algebra translation
// (Figure 6) → optimized complete-to-complete translation (§5.3). All
// plans are evaluated and cross-checked on the selected demo database.
//
// Usage:
//
//	wsatrans [-demo flights] [-q "select certain Arr from HFlights choice of Dep;"]
package main

import (
	"flag"
	"fmt"
	"os"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/rewrite"
	"worldsetdb/internal/translate"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
)

func main() {
	demo := flag.String("demo", "flights", "demo database: flights | acquisition | census")
	query := flag.String("q", "select certain Arr from HFlights choice of Dep;", "I-SQL query")
	flag.Parse()

	names, rels, err := demoDB(*demo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	session := isql.FromDB(names, rels)
	db := ra.DB{}
	for i, n := range names {
		db[n] = rels[i]
	}

	fmt.Printf("I-SQL:\n  %s\n\n", *query)
	q, err := session.CompileString(*query)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile:", err)
		os.Exit(1)
	}
	fmt.Printf("World-set Algebra (§4):\n  %s\n  type: %s\n\n", q, wsa.TypeOf(q, wsa.One))

	env := wsa.NewEnv(names, schemasOf(rels))
	opt, trace := rewrite.Optimize(q, env, true)
	fmt.Printf("Figure 7 rewriting (estimated cost reduced %.1fx):\n", rewrite.Cost(q)/rewrite.Cost(opt))
	for _, step := range trace {
		fmt.Printf("  %-8s %s\n", step.Rule, step.Expr)
	}
	if len(trace) == 0 {
		fmt.Println("  (already optimal)")
	}
	fmt.Println()

	ws := worldset.FromDB(names, rels)
	refAnswers, err := wsa.Answers(q, ws)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reference evaluation:", err)
		os.Exit(1)
	}
	fmt.Printf("Figure 3 reference semantics: %d distinct answer(s)\n", len(refAnswers))
	for _, a := range refAnswers {
		fmt.Println(a.Render("  answer"))
	}

	if !wsa.IsCompleteToComplete(q) {
		fmt.Println("query is not 1↦1: no relational algebra equivalent on the complete database (Theorem 5.7 does not apply)")
		return
	}

	gen, err := translate.ToRelational(q, names, db)
	if err != nil {
		fmt.Fprintln(os.Stderr, "general translation:", err)
		os.Exit(1)
	}
	fmt.Printf("Figure 6 general translation (%d nodes):\n  %s\n\n", ra.Size(gen), gen)

	optPlan, err := translate.ToRelationalOptimized(q, names, db)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimized translation:", err)
		os.Exit(1)
	}
	fmt.Printf("§5.3 optimized translation (%d nodes):\n  %s\n", ra.Size(optPlan), optPlan)
	fmt.Printf("  paper display form: %s\n\n", translate.SimplifyPaperForm(optPlan, db))

	genRes, err := gen.Eval(db)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluating general plan:", err)
		os.Exit(1)
	}
	optRes, err := optPlan.Eval(db)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluating optimized plan:", err)
		os.Exit(1)
	}
	agree := genRes.EqualContents(refAnswers[0]) && optRes.EqualContents(refAnswers[0])
	fmt.Printf("cross-check: reference == general translation == optimized translation: %v\n", agree)
	if !agree {
		os.Exit(1)
	}
}

func demoDB(name string) ([]string, []*relation.Relation, error) {
	switch name {
	case "flights":
		return []string{"HFlights"}, []*relation.Relation{datagen.PaperFlights()}, nil
	case "acquisition":
		return []string{"Company_Emp", "Emp_Skills"},
			[]*relation.Relation{datagen.PaperCompanyEmp(), datagen.PaperEmpSkills()}, nil
	case "census":
		return []string{"Census"}, []*relation.Relation{datagen.PaperCensus()}, nil
	}
	return nil, nil, fmt.Errorf("unknown demo %q", name)
}

func schemasOf(rels []*relation.Relation) []relation.Schema {
	out := make([]relation.Schema, len(rels))
	for i, r := range rels {
		out[i] = r.Schema()
	}
	return out
}
