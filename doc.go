// Package worldsetdb is a from-scratch Go reproduction of "From Complete
// to Incomplete Information and Back" (Antova, Koch, Olteanu; SIGMOD
// 2007): the I-SQL language, World-set Algebra with the Figure 3
// possible-worlds semantics, the inlined representation and the
// translations to relational algebra of §5 (Theorem 5.7), and the
// algebraic equivalences and rewriting of §6.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are cmd/isql, cmd/isqld (the
// concurrent I-SQL server), cmd/wsatrans and cmd/wsabench, and the
// examples/ directory walks through the paper's application scenarios.
// The benchmarks in bench_test.go regenerate the performance-relevant
// artifacts (EXPERIMENTS.md records a captured run).
//
// # The decomposition-native store
//
// Session state lives in internal/store: a catalog of named tables
// backed by a multi-relation world-set decomposition (wsd.DecompDB)
// under MVCC-style versioning. Readers take an immutable snapshot with
// one atomic pointer load and evaluate against it wait-free; writers
// serialize through a single-writer transaction that publishes a new
// catalog version (copy-on-write down to individual relations). I-SQL
// sessions (internal/isql) run on the catalog: statements in the clean
// World-set Algebra fragment compile and evaluate through any
// registered engine — by default wsdexec, natively on the decomposition
// — while statements outside the fragment fall back to the explicit
// world-set evaluator over a budget-guarded expansion.
//
// Re-factorization (wsd.Refactor, the multi-relation generalization of
// wsd.Decompose) closes the loop: any enumerated world-set — a fallback
// output, a legacy-path result, a FromWorldSet seed — is factorized
// back into certain tuples plus independent components (verified
// blocks of pairwise-dependent tuples, spanning relations when the
// dependency does), so one entangled step never permanently
// de-factorizes a pipeline. A census-repair pipeline at 2^40 worlds
// (repair → select → certain/possible aggregation) runs each statement
// in milliseconds with the catalog staying linear-size throughout,
// while the same script on the explicit world-set path refuses with a
// typed wsd.BudgetError — the one error shape shared by wsd's Expand,
// the store, and the session's world budget.
//
// # The transactional write path
//
// Writes are transactional, durable and prepared. BEGIN switches a
// session onto a staged store transaction (store.Staged): statements
// execute unchanged against a private staging snapshot, invisible to
// every other session, until COMMIT publishes the whole batch as one
// catalog version (ROLLBACK discards it; concurrent readers never
// observe an intermediate statement). Concurrency control is
// optimistic, first-committer-wins — a conflicting commit surfaces as
// store.ConflictError and publishes nothing. With
// Session.RetryConflicts set (isqld's -txn-retries), a losing commit
// retries automatically: the transaction's logged write statements
// re-execute as a fresh transaction on the new latest version, up to
// the bound, and the conflict surfaces only on exhaustion. Retry
// visibility rules: answers the client read inside the original
// transaction came from the pre-conflict snapshot and are not
// re-issued; only the write statements replay, and their predicates
// re-evaluate against the winning committer's state — a successful
// retry is exactly the serial schedule "winner first, then this
// transaction" (differentially enforced by difftest.CheckTxnRetry).
//
// Durability is a statement-level write-ahead log (store.WAL): every
// committed transaction appends one CRC-framed record — the statement
// texts plus the version they committed as — and fsyncs before the
// version becomes visible. Concurrent committers group-commit: each
// stages and takes its version under the writer lock, then enqueues its
// record and releases the lock; a leader coalesces every queued record
// into one write and one fsync, publishes the versions in order, and
// hands leadership of later arrivals to a fresh flusher so no committer
// waits on work that is not its own. Readers only ever observe durable
// versions (the read pointer advances after the fsync; writers chain on
// the newest assigned version), and ordering guarantees survive a crash
// anywhere — including mid-batch — because recovery replays exactly the
// intact record prefix: an un-acked commit may be recovered (its record
// hit disk before the crash) but an acked commit is never lost and no
// record replays out of order. store.Open (isql.OpenStore with the
// I-SQL replayer) recovers the last checkpoint plus the log tail,
// reproducing the committed catalog byte-for-byte; torn tails are
// CRC-detected and truncated, and checkpoints (Catalog.Checkpoint)
// bound replay work by draining in-flight group commits and resetting
// the log under the writer lock.
//
// # Paged storage
//
// The checkpoint base is a page file (internal/page, internal/bufpool,
// store.PageStore): fixed 8 KiB CRC-framed pages holding one durable
// object each — a certain relation, a component, the view map —
// chained when an object outgrows a page, reached through a buffer
// pool with LRU eviction (-pool-pages caps resident pages per shard,
// so a catalog larger than memory still checkpoints and recovers).
// Checkpoints are incremental and copy-on-write: only objects whose
// content changed since the base version write pages, new page chains
// are committed by flipping one of two meta slots (epoch-stamped,
// CRC-guarded — a torn checkpoint leaves the previous slot intact and
// recovery falls back to it), and the pages freed by the flip are
// recycled into a free list so repeated checkpoints do not grow the
// file. A checkpoint at an unchanged version is skipped entirely
// (zero bytes written); a v1 JSON .wsd file found at the checkpoint
// path is migrated to the page format on the first checkpoint through
// it. Component-sharded catalogs write one page file per shard
// (checkpoint.wsd, checkpoint.wsd.s1, ...) with the coordinator file
// committed last, so a crash between shard files recovers a
// consistent mixed-epoch merge healed by WAL replay.
//
// WAL records additionally carry page deltas (store.CommitDelta): the
// commit's durable effect — touched certain relations, upserted and
// dropped components by stable ID, view and schema changes — computed
// on the commit path by pointer/shape diffing of the copy-on-write
// snapshots. Small edits log tuple-level patches (a single-row insert
// carries one tuple, not the relation), keeping records O(edit) on
// insert-heavy workloads. Recovery replays deltas by patching the
// decomposition directly — time proportional to the touched data,
// skipping parse, compile, the rewrite search and query evaluation —
// and falls back to deterministic statement re-execution for records
// without a delta or whose patch does not match the replay state
// (wsabench's CKPT family gates both the incremental-write and the
// delta-replay floors). Catalog.DurabilityStats feeds the /metrics
// durability gauges: checkpoint age, on-disk bytes, WAL tail depth,
// checkpoint and buffer-pool counters per shard.
//
// PREPARE parses a statement once — optionally with $1..$N
// placeholders — into a PlanCache shared across sessions; EXECUTE binds
// arguments and runs the cached tree. Fragment selects — parameterized
// or not — reuse a compiled, prelowered plan keyed on a schema
// fingerprint: placeholders compile to parameter slots inside the
// plan's predicates (ra.Param operands), and each EXECUTE binds its
// argument constants into the cached plan (wsa.BindParams copies only
// the parameterized spine, sharing everything else), so repeated
// execution skips parsing, analysis, compilation and the rewrite search
// entirely whatever the arguments (DML leaves the fingerprint — and the
// plan — intact; DDL forces one recompile).
//
// Catalogs persist as .wsd JSON documents (store.Save/Load, wired to
// cmd/isql's -load/-save flags): the factored form serializes in space
// linear in the decomposition regardless of the world count. cmd/isqld
// serves I-SQL sessions concurrently over one shared catalog through a
// line-oriented HTTP protocol (POST /exec, /prepare, /execute; GET
// /stats): each request gets its own session, selects run on snapshots
// (readers never block), and DML serializes through the catalog writer.
// A request carrying an X-ISQL-Session token gets a sticky session that
// holds transaction state across requests (idle sessions are evicted
// and rolled back after a TTL), and the -wal/-checkpoint-every flags
// make the served catalog durable across crashes — the serving path for
// many concurrent certain/possible queries against one factored
// world-set.
//
// # Execution engines
//
// The system has four evaluation engines for the same World-set
// Algebra semantics, registered by name in package wsa's engine
// registry and selectable from cmd/isql via -engine:
//
//   - "reference" (internal/wsa) — the Figure 3 compositional semantics
//     over explicit world-sets; the semantic ground truth every other
//     engine is differentially tested against, and the only engine for
//     operators that inherently enumerate (repair-by-key on entangled
//     inputs).
//   - "translated" (internal/translate) — the Figure 6 translation to
//     relational algebra over the inlined representation of §5,
//     demonstrating Theorem 5.7.
//   - "physical" (internal/physical) — dedicated world-partitioned
//     parallel operators over the inlined representation, the fastest
//     engine that still materializes worlds.
//   - "wsdexec" (internal/wsdexec) — the factorized engine: it
//     evaluates queries directly over a multi-relation world-set
//     decomposition (wsd.DecompDB), never expanding to worlds, so cost
//     is polynomial in the decomposition size and independent of the
//     world count (census repair with 2^40 worlds answers cert/poss in
//     about a millisecond). Operators that would couple independent
//     components fall back — recorded in the returned Plan — to the
//     physical or reference engine over a budget-guarded enumeration.
//
// All engines share an allocation-lean hashing core: tuples, column
// projections and whole relations hash through 64-bit FNV-1a digests
// (internal/hashkey) with typed-value verification on collision, never
// through intermediate key strings. Relations store rows in hash
// buckets and memoize their content digests (internal/relation), the
// relational operators join through cached per-column hash indexes
// (internal/ra), and both the physical and factorized executors fan
// work out across a GOMAXPROCS-sized worker pool (relation/pool.go)
// with deterministic merges — by world partition in internal/physical,
// by decomposition component in internal/wsdexec.
//
// # Cost-based planning
//
// Planning is statistics-driven end to end. wsd.Normalize computes
// per-relation decomposition statistics — certain and alternative
// cardinality, component spread, and an alternatives-per-component
// histogram — as a by-product of the normalization walk and caches
// them on the DecompDB, so every catalog snapshot carries them for
// free (Snapshot.Stats; the /metrics gauges read the same value). The
// rewrite search (internal/rewrite) runs on a cardinality-propagating
// cost estimator seeded by those statistics: per-class selectivity
// defaults (0.1 equality, 0.9 inequality, 0.33 range, 0.5 otherwise),
// join/product output estimates from input cardinalities, and world
// growth for choice-of/repair-by-key from component arities, with the
// world multiplier damped logarithmically — factorized evaluation's
// work follows decomposition pieces, not worlds. The equivalence
// search prunes branch-and-bound style: candidates costing more than a
// slack factor above the best complete plan are dropped, and the
// search stops outright once the cheapest frontier entry is past the
// bound (the wsabench PLAN family gates the cold-compile win). At
// execution time wsdexec orders pure product chains smallest-first by
// estimated piece cardinality (behind a projection restoring the
// original column order, so answers are byte-identical) and decides
// merge-vs-fallback by comparing the merge cost against the input
// world count the enumeration fallback would pay, not the fixed budget
// alone. Plan-cache entries record the statistics they were optimized
// under and re-plan when the live snapshot drifts past the staleness
// threshold — a component-count change or cardinality leaving a 2x
// band (wsdb_planner_replans_total counts these) — and bare EXPLAIN
// prints the per-operator cost and cardinality estimates the plan was
// chosen by.
//
// # Observability
//
// internal/obs is the low-overhead observability layer threaded
// through the whole statement lifecycle: nil-safe pooled trace spans
// (zero allocation when tracing is off — the nil *Span no-ops every
// method) and lock-free atomic counters and fixed-bucket latency
// histograms. One traced statement yields a span tree covering parse,
// compile (with plan-cache hit/miss), the rewrite search, every
// wsdexec operator (with component counts, merge events and their
// costs, fallback expansion), commit staging, the group-commit queue
// wait, the WAL fsync (with batch size) and the cross-shard 2PC
// stages.
//
// Three surfaces expose it. EXPLAIN ANALYZE <stmt> in I-SQL executes
// the statement for real and renders the span tree (bare EXPLAIN
// prints the compiled and prelowered algebra without executing).
// isqld serves GET /metrics in Prometheus text exposition — request
// and execution-path counters, per-shard commit-queue and WAL-fsync
// latency histograms, and per-relation decomposition-statistics
// gauges (certain vs alternative cardinality, components touched) —
// validated by obs.LintProm, which cmd/promlint wires into CI against
// the live endpoint; GET /healthz reports the shard count and last
// durable epoch per shard. And the isqld -slow-query flag logs the
// span tree of any statement over the threshold as one JSON line on
// stderr, while -debug-addr serves net/http/pprof on a separate
// (private) listener. cmd/wsabench records per-family p50/p95/p99
// latency quantiles into BENCH_results.json through the same
// histograms.
//
// # Correctness harnesses
//
// internal/difftest runs every query through all four engines on
// randomized world-sets — through wsdexec natively on randomized
// decompositions via CheckDecomp, and through the store/session path
// (snapshot + re-factorized fallbacks) via CheckStore — requiring
// world-set-identical (byte-identical, for decomposed inputs) answers,
// including under the race detector with partitioning forced on.
// golden_test.go pins the paper's running examples (Figure 2 pipeline,
// the Figure 8/9 rewrite pairs, census repair — both enumerated at
// small scale and factorized at 2^40 — and trip planning) to committed
// outputs under testdata/; internal/isql pins the 2^40 store pipeline
// and internal/isqld the server protocol the CI smoke job replays.
// cmd/wsabench diffs every run's measurements against the committed
// BENCH_results.json baseline and flags >2x per-op regressions; CI runs
// that non-blocking and uploads the fresh results.
package worldsetdb
