// Package worldsetdb is a from-scratch Go reproduction of "From Complete
// to Incomplete Information and Back" (Antova, Koch, Olteanu; SIGMOD
// 2007): the I-SQL language, World-set Algebra with the Figure 3
// possible-worlds semantics, the inlined representation and the
// translations to relational algebra of §5 (Theorem 5.7), and the
// algebraic equivalences and rewriting of §6.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are cmd/isql, cmd/wsatrans and
// cmd/wsabench, and the examples/ directory walks through the paper's
// application scenarios. The benchmarks in bench_test.go regenerate the
// performance-relevant artifacts (EXPERIMENTS.md records a captured
// run).
package worldsetdb
