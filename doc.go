// Package worldsetdb is a from-scratch Go reproduction of "From Complete
// to Incomplete Information and Back" (Antova, Koch, Olteanu; SIGMOD
// 2007): the I-SQL language, World-set Algebra with the Figure 3
// possible-worlds semantics, the inlined representation and the
// translations to relational algebra of §5 (Theorem 5.7), and the
// algebraic equivalences and rewriting of §6.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are cmd/isql, cmd/wsatrans and
// cmd/wsabench, and the examples/ directory walks through the paper's
// application scenarios. The benchmarks in bench_test.go regenerate the
// performance-relevant artifacts (EXPERIMENTS.md records a captured
// run).
//
// # Execution engine
//
// All evaluators share an allocation-lean hashing core: tuples, column
// projections and whole relations hash through 64-bit FNV-1a digests
// (internal/hashkey) with typed-value verification on collision, never
// through intermediate key strings. Relations store rows in hash
// buckets and memoize their content digests (internal/relation), the
// relational operators join through cached per-column hash indexes
// (internal/ra), and the dedicated executor for the paper's conclusion
// (internal/physical) partitions every operator by world and fans the
// partitions out across a GOMAXPROCS-sized worker pool with a
// deterministic merge — see internal/physical's package comment for the
// partitioning scheme and determinism guarantee.
//
// # Correctness harnesses
//
// internal/difftest runs every query through the three evaluators
// (Figure 3 reference, Figure 6 translation, physical operators) on
// randomized world-sets and requires world-set-identical answers,
// including under the race detector with partitioning forced on.
// golden_test.go pins the paper's running examples (Figure 2 pipeline,
// the Figure 8/9 rewrite pairs, census repair, trip planning) to
// committed outputs under testdata/.
package worldsetdb
