// Acquisition walks through the §2 business decision-support scenario
// step by step, printing the same tables the paper shows: U (buy one
// company), V (one key employee leaves), W (certain skills per target)
// and the final possible acquisition targets that guarantee the skill
// 'Web'.
package main

import (
	"fmt"
	"log"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/relation"
)

func step(s *isql.Session, title, sql string) {
	fmt.Printf("=== %s ===\n%s\n\n", title, sql)
	if _, err := s.ExecString(sql); err != nil {
		log.Fatal(err)
	}
}

func printRelationAcrossWorlds(s *isql.Session, name string) {
	ws := s.WorldSet()
	if ws == nil {
		log.Fatalf("%s worlds exceed the expansion budget; cannot print them", s.Worlds())
	}
	idx := ws.IndexOf(name)
	seen := map[string]bool{}
	n := 0
	for _, w := range ws.Worlds() {
		key := w[idx].ContentKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		n++
		fmt.Println(w[idx].Render(fmt.Sprintf("%s (variant %d)", name, n)))
	}
	fmt.Printf("world count: %d\n\n", ws.Len())
}

func main() {
	s := isql.FromDB(
		[]string{"Company_Emp", "Emp_Skills"},
		[]*relation.Relation{datagen.PaperCompanyEmp(), datagen.PaperEmpSkills()})

	fmt.Println(datagen.PaperCompanyEmp().Render("Company_Emp"))
	fmt.Println(datagen.PaperEmpSkills().Render("Emp_Skills"))

	step(s, "Suppose I choose to buy exactly one company",
		"create table U as select * from Company_Emp choice of CID;")
	printRelationAcrossWorlds(s, "U")

	step(s, "Assume that one (key) employee leaves that company",
		`create table V as
		   select R1.CID, R1.EID
		   from Company_Emp R1, (select * from U choice of EID) R2
		   where R1.CID = R2.CID and R1.EID != R2.EID;`)
	printRelationAcrossWorlds(s, "V")

	step(s, "Which skills can I obtain for certain per target?",
		`create table W as
		   select certain CID, Skill
		   from V, Emp_Skills
		   where V.EID = Emp_Skills.EID
		   group worlds by (select CID from V);`)
	printRelationAcrossWorlds(s, "W")

	fmt.Println("=== Possible targets guaranteeing the skill 'Web' ===")
	res, err := s.ExecString("select possible CID from W where Skill = 'Web';")
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res.Answers {
		fmt.Println(a.Render("Result"))
	}
}
