// Census_repair runs the §2 data-cleaning scenario: a Census relation
// whose SSN key is violated is viewed as the set of its possible repairs
// (one world per consistent choice), then queried with certain/possible
// to separate reliable facts from mere possibilities.
package main

import (
	"fmt"
	"log"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/relation"
)

func main() {
	census := datagen.PaperCensus()
	fmt.Println(census.Render("Census (SSN → Name, POB, POW violated)"))

	s := isql.FromDB([]string{"Census"}, []*relation.Relation{census})

	// The consistent views: all repairs w.r.t. the key SSN.
	if _, err := s.ExecString("create table Clean as select * from Census repair by key SSN;"); err != nil {
		log.Fatal(err)
	}
	ws := s.WorldSet()
	if ws == nil {
		log.Fatalf("%s worlds exceed the expansion budget", s.Worlds())
	}
	fmt.Printf("repair by key SSN creates %d possible worlds:\n\n", ws.Len())
	idx := ws.IndexOf("Clean")
	for i, w := range ws.Worlds() {
		fmt.Println(w[idx].Render(fmt.Sprintf("repair %d", i+1)))
	}

	// Facts that hold in every repair.
	res, err := s.ExecString("select certain SSN, POB from Clean;")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Answers[0].Render("certain (SSN, place of birth)"))

	// Names that are possible for SSN 111.
	res, err = s.ExecString("select possible Name from Clean where SSN = 111;")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Answers[0].Render("possible names for SSN 111"))

	// Scaling: each duplicated SSN doubles the repair count.
	for _, dups := range []int{2, 4, 8} {
		big := datagen.Census(100, dups, 7)
		s2 := isql.FromDB([]string{"Census"}, []*relation.Relation{big})
		if _, err := s2.ExecString("create table Clean as select * from Census repair by key SSN;"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d duplicated SSNs → %d repairs (2^%d)\n", dups, s2.Worlds(), dups)
	}
}
