// Decomposition demonstrates the conclusion's representation-system
// direction, now end to end through the store subsystem: the §2 census
// repair view with 40 violated keys has 2^40 possible worlds — far
// beyond enumeration — yet as a world-set decomposition it fits in
// linear space, answers possible/certain queries in microseconds,
// persists to a .wsd JSON file of linear size, and reloads into an
// I-SQL session that keeps querying it without ever expanding a world.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/wsd"
)

func main() {
	census := datagen.Census(10000, 40, 7)
	fmt.Printf("Census: %d rows, 40 SSNs duplicated\n\n", census.Len())

	start := time.Now()
	d, err := wsd.RepairByKey("Census", census, []string{"SSN"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposed in %v:\n", time.Since(start))
	fmt.Printf("  worlds represented: %d (= 2^40)\n", d.NumWorlds())
	fmt.Printf("  representation size: %d tuples (the input itself)\n", d.Size())
	fmt.Printf("  components: %d (one per violated key)\n\n", len(d.Components))

	start = time.Now()
	cert := d.Cert()
	fmt.Printf("certain tuples (hold in every repair): %d, computed in %v\n",
		cert.Len(), time.Since(start))

	start = time.Now()
	poss := d.Poss()
	fmt.Printf("possible tuples (hold in some repair): %d, computed in %v\n\n",
		poss.Len(), time.Since(start))

	if _, err := d.Rep(1 << 20); err != nil {
		fmt.Println("explicit expansion correctly refused:", err)
	}

	// The same pipeline through the decomposition-native store: the
	// repair materializes as a catalog table (still 2^40 worlds, still
	// linear space), persists to a .wsd file and reloads.
	session := isql.FromDB([]string{"Census"}, []*relation.Relation{census})
	start = time.Now()
	if _, err := session.ExecString("create table Clean as select * from Census repair by key SSN;"); err != nil {
		log.Fatal(err)
	}
	snap := session.Catalog().Snapshot()
	fmt.Printf("\nstore: materialized Clean in %v — %s worlds, catalog size %d tuples\n",
		time.Since(start), snap.DB.Worlds(), snap.DB.Size())

	path := filepath.Join(os.TempDir(), "census_demo.wsd")
	if err := isql.SaveCatalog(path, session); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store: catalog saved to %s (%d bytes for 2^40 worlds)\n", path, info.Size())

	reloaded, err := isql.LoadCatalog(path)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	res, err := reloaded.ExecString("select certain POB from Clean;")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store: reloaded and answered a certain-query natively in %v (%d certain birthplaces, plan: %v)\n",
		time.Since(start), res.Answers[0].Len(), res.Plan)
	defer os.Remove(path)

	// On a small instance, the decomposition expands to exactly the
	// repairs the paper's view enumerates.
	small, err := wsd.RepairByKey("Census", datagen.PaperCensus(), []string{"SSN"})
	if err != nil {
		log.Fatal(err)
	}
	ws, err := small.Rep(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npaper's 5-row census: %d repairs from a size-%d decomposition\n",
		ws.Len(), small.Size())
}
