// Decomposition demonstrates the conclusion's representation-system
// direction: the §2 census repair view with 40 violated keys has 2^40
// possible worlds — far beyond enumeration — yet as a world-set
// decomposition it fits in linear space and answers possible/certain
// queries in microseconds.
package main

import (
	"fmt"
	"log"
	"time"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/wsd"
)

func main() {
	census := datagen.Census(10000, 40, 7)
	fmt.Printf("Census: %d rows, 40 SSNs duplicated\n\n", census.Len())

	start := time.Now()
	d, err := wsd.RepairByKey("Census", census, []string{"SSN"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposed in %v:\n", time.Since(start))
	fmt.Printf("  worlds represented: %d (= 2^40)\n", d.NumWorlds())
	fmt.Printf("  representation size: %d tuples (the input itself)\n", d.Size())
	fmt.Printf("  components: %d (one per violated key)\n\n", len(d.Components))

	start = time.Now()
	cert := d.Cert()
	fmt.Printf("certain tuples (hold in every repair): %d, computed in %v\n",
		cert.Len(), time.Since(start))

	start = time.Now()
	poss := d.Poss()
	fmt.Printf("possible tuples (hold in some repair): %d, computed in %v\n\n",
		poss.Len(), time.Since(start))

	if _, err := d.Rep(1 << 20); err != nil {
		fmt.Println("explicit expansion correctly refused:", err)
	}

	// On a small instance, the decomposition expands to exactly the
	// repairs the paper's view enumerates.
	small, err := wsd.RepairByKey("Census", datagen.PaperCensus(), []string{"SSN"})
	if err != nil {
		log.Fatal(err)
	}
	ws, err := small.Rep(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npaper's 5-row census: %d repairs from a size-%d decomposition\n",
		ws.Len(), small.Size())
}
