// Quickstart: build a complete database, ask an I-SQL question over its
// possible worlds, and watch the same query run through all three
// engines the library provides — the direct I-SQL evaluator, the
// World-set Algebra reference semantics (Figure 3), and the translated
// relational algebra plan of Theorem 5.7.
package main

import (
	"fmt"
	"log"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/translate"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
)

func main() {
	// A complete database: the Flights relation of Figure 2(a).
	flights := datagen.PaperFlights()
	fmt.Println(flights.Render("HFlights (Figure 2a)"))

	// The trip-planning question of §2: to which cities can a group of
	// people, one per departure airport, all fly directly? Each choice
	// of a departure is a possible world; `certain` intersects the
	// arrivals across the worlds.
	const query = "select certain Arr from HFlights choice of Dep;"
	fmt.Println("I-SQL:", query)

	// Engine 1: the I-SQL evaluator over world-sets.
	session := isql.FromDB([]string{"HFlights"}, []*relation.Relation{flights})
	res, err := session.ExecString(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Answers[0].Render("answer via the I-SQL evaluator"))

	// Engine 2: compile to World-set Algebra and run the Figure 3
	// reference semantics.
	q, err := session.CompileString(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("World-set Algebra: %s   (type %s)\n\n", q, wsa.TypeOf(q, wsa.One))
	ws := worldset.FromDB([]string{"HFlights"}, []*relation.Relation{flights})
	answers, err := wsa.Answers(q, ws)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(answers[0].Render("answer via the Figure 3 semantics"))

	// Engine 3: Theorem 5.7 — translate the 1↦1 query to relational
	// algebra and evaluate it on the complete database directly.
	db := ra.DB{"HFlights": flights}
	plan, err := translate.ToRelationalOptimized(q, []string{"HFlights"}, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relational algebra (§5.3 optimized): %s\n\n", translate.SimplifyPaperForm(plan, db))
	out, err := plan.Eval(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.Render("answer via the translated plan"))
}
