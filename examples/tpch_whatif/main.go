// Tpch_whatif runs the §2 TPC-H Q17-style hypothetical query on a
// synthetic Lineitem relation: which years would lose more than a
// threshold of revenue if products of some quantity (package size) could
// no longer be sold? Every (year, missing quantity) pair becomes a
// possible world.
package main

import (
	"fmt"
	"log"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/relation"
)

func main() {
	lineitem := datagen.Lineitem(60, 3, 4, 42)
	fmt.Printf("Lineitem: %d rows (60 products × 4 years, 3 package sizes)\n\n", lineitem.Len())

	s := isql.FromDB([]string{"Lineitem"}, []*relation.Relation{lineitem})

	// Total revenue per year, for reference.
	res, err := s.ExecString("select Year, sum(Price) as Revenue from Lineitem group by Year;")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Answers[0].Render("revenue per year"))

	// One world per (year, missing quantity): the remaining revenue.
	if _, err := s.ExecString(`create view YearQuantity as
		select A.Year, sum(A.Price) as Revenue
		from (select * from Lineitem choice of Year) as A
		where Quantity not in (select * from Lineitem choice of Quantity)
		group by A.Year;`); err != nil {
		log.Fatal(err)
	}

	// Possible remaining revenues across the what-if worlds.
	res, err = s.ExecString("select possible Year, Revenue from YearQuantity;")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Answers[0].Render("possible (year, remaining revenue) pairs"))

	// Years that would lose more than 150,000.
	res, err = s.ExecString(`select possible Year from YearQuantity as Y
		where (select sum(Price) from Lineitem where Lineitem.Year = Y.Year) - Y.Revenue > 150000;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Answers[0].Render("years with a possible loss over 150000"))
}
