// Tpch_whatif runs the §2 TPC-H Q17-style hypothetical query on a
// synthetic Lineitem relation: which years would lose more than a
// threshold of revenue if products of some quantity (package size) could
// no longer be sold? Every (year, missing quantity) pair becomes a
// possible world.
//
// The catalog additionally carries a supplier master file with 40
// conflicting records repaired by key — 2^40 possible worlds held in
// linear space. The what-if pipeline reads only Lineitem, so its
// aggregates and subqueries evaluate on the bounded dependent region
// (here: no uncertain component at all) with latency independent of
// the catalog's world count; an aggregate over a single supplier key
// enumerates exactly that key's two repairs, never the 2^40.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
)

// supplierFile builds Supplier(SuppKey, SName) with nConflicts keys,
// each carrying two conflicting entries (a mistyped name), so repairing
// by key represents 2^nConflicts possible master files.
func supplierFile(nConflicts int) *relation.Relation {
	r := relation.New(relation.NewSchema("SuppKey", "SName"))
	for i := 0; i < nConflicts; i++ {
		r.InsertValues(value.Int(int64(9000+i)), value.Str(fmt.Sprintf("Supplier%02d", i)))
		r.InsertValues(value.Int(int64(9000+i)), value.Str(fmt.Sprintf("Suppl1er%02d", i)))
	}
	return r
}

func run(w io.Writer) error {
	lineitem := datagen.Lineitem(60, 3, 4, 42)
	supplier := supplierFile(40)
	fmt.Fprintf(w, "Lineitem: %d rows (60 products × 4 years, 3 package sizes)\n", lineitem.Len())
	fmt.Fprintf(w, "Supplier: %d rows (40 keys with two conflicting entries each)\n\n", supplier.Len())

	s := isql.FromDB([]string{"Lineitem", "Supplier"}, []*relation.Relation{lineitem, supplier})

	// Repair the supplier master file: 2^40 worlds, factored into 40
	// independent binary components.
	res, err := s.ExecString("create table SupplierClean as select * from Supplier repair by key SuppKey;")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "SupplierClean: %s possible worlds, decomposition size %d\n\n",
		s.Worlds(), res.Decomp.Size())

	// Total revenue per year, for reference. The aggregate depends on no
	// uncertain component — it answers on the certain region, however
	// many worlds the catalog represents.
	res, err = s.ExecString("select Year, sum(Price) as Revenue from Lineitem group by Year;")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.Answers[0].Render("revenue per year"))

	// One world per (year, missing quantity): the remaining revenue.
	if _, err := s.ExecString(`create view YearQuantity as
		select A.Year, sum(A.Price) as Revenue
		from (select * from Lineitem choice of Year) as A
		where Quantity not in (select * from Lineitem choice of Quantity)
		group by A.Year;`); err != nil {
		return err
	}

	// Possible remaining revenues across the what-if worlds.
	res, err = s.ExecString("select possible Year, Revenue from YearQuantity;")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.Answers[0].Render("possible (year, remaining revenue) pairs"))

	// Years that would lose more than 110,000.
	res, err = s.ExecString(`select possible Year from YearQuantity as Y
		where (select sum(Price) from Lineitem where Lineitem.Year = Y.Year) - Y.Revenue > 110000;`)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.Answers[0].Render("years with a possible loss over 110000"))

	// Narrow to one supplier key. The selection runs natively on the
	// decomposition, so the result table is touched by a single binary
	// component; an aggregate over it then enumerates that component's
	// 2 repairs — never the 2^40.
	if _, err := s.ExecString("create table Supp9000 as select * from SupplierClean where SuppKey = 9000;"); err != nil {
		return err
	}
	res, err = s.ExecString("select count(*) as N from Supp9000;")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.Answers[0].Render("records for supplier 9000 in every repair"))

	// The repaired master file itself answers natively on the
	// decomposition: the possible names for that key across all repairs.
	res, err = s.ExecString("select possible SName from Supp9000;")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.Answers[0].Render("possible names for supplier 9000"))
	fmt.Fprintf(w, "catalog still represents %s worlds\n", s.Worlds())
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
