package main

import (
	"bytes"
	"flag"
	"os"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden.txt with the current output")

// TestGolden pins the example's full output. The run holds a 2^40-world
// catalog throughout; before bounded evaluation every aggregate in the
// pipeline refused with a budget error, so completing at all — let alone
// byte-identically — is the regression gate.
func TestGolden(t *testing.T) {
	var buf bytes.Buffer
	start := time.Now()
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	elapsed := time.Since(start)
	if *update {
		if err := os.WriteFile("golden.txt", buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile("golden.txt")
	if err != nil {
		t.Fatalf("read golden (run with -update to record): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output drifted from golden.txt (re-record with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// World-count independence, loosely: the whole pipeline over the
	// 2^40-world catalog must finish in interactive time. The bound is
	// generous (CI machines vary) — enumeration would take years.
	if elapsed > 30*time.Second {
		t.Errorf("run took %v; expected world-count-independent latency", elapsed)
	}
}
