// Tripplanning reproduces Figure 2 end to end (choice-of, deletion under
// the possible-worlds DML semantics, certain arrivals) and then the
// query-rewriting examples of Figures 8 and 9: the optimizer derives the
// paper's q1′ and q2′ plans and shows the cost reduction.
package main

import (
	"fmt"
	"log"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/rewrite"
	"worldsetdb/internal/wsa"
)

func main() {
	figure2()
	figures8and9()
}

func figure2() {
	fmt.Println("================ Figure 2 ================")
	s := isql.FromDB([]string{"Flights"}, []*relation.Relation{datagen.PaperFlights()})
	fmt.Println(datagen.PaperFlights().Render("Flights (a)"))

	if _, err := s.ExecString("create table FlightsW as select * from Flights choice of Dep;"); err != nil {
		log.Fatal(err)
	}
	ws := s.WorldSet()
	if ws == nil {
		log.Fatalf("%s worlds exceed the expansion budget", s.Worlds())
	}
	fmt.Printf("(b) choice-of on Dep creates %d worlds\n\n", ws.Len())
	for i, w := range ws.Worlds() {
		fmt.Println(w[ws.IndexOf("FlightsW")].Render(fmt.Sprintf("Flights world %c", 'A'+i)))
	}

	res, err := s.ExecString("delete from FlightsW where Arr = 'ATL';")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(c) deleted %d ATL tuples across worlds; %d worlds remain\n\n",
		res.Affected, s.Worlds())

	res, err = s.ExecString("select certain Arr from Flights;")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("(d) certain arrivals over the original Flights:")
	for _, a := range res.Answers {
		fmt.Println(a.Render("F"))
	}
}

func tripEnv() *wsa.Env {
	return wsa.NewEnv(
		[]string{"HFlights", "Hotels"},
		[]relation.Schema{
			relation.NewSchema("Dep", "Arr"),
			relation.NewSchema("Name", "City", "Price"),
		})
}

func figures8and9() {
	fmt.Println("================ Figures 8 and 9 ================")
	q1 := wsa.NewCert(
		&wsa.Project{Columns: []string{"City"},
			From: &wsa.Select{Pred: ra.Eq("Arr", "City"),
				From: wsa.NewPossGroup([]string{"Dep"}, nil,
					&wsa.Choice{Attrs: []string{"Dep", "City"},
						From: wsa.NewProduct(&wsa.Rel{Name: "HFlights"}, &wsa.Rel{Name: "Hotels"})})}})
	q2 := wsa.NewPoss(
		&wsa.Project{Columns: []string{"City"},
			From: &wsa.Select{Pred: ra.Eq("Arr", "City"),
				From: wsa.NewPossGroup([]string{"Dep"}, nil,
					&wsa.Choice{Attrs: []string{"Dep", "City"},
						From: wsa.NewProduct(&wsa.Rel{Name: "HFlights"}, &wsa.Rel{Name: "Hotels"})})}})

	for name, q := range map[string]wsa.Expr{"q1 (Figure 8)": q1, "q2 (Figure 9)": q2} {
		opt, trace := rewrite.Optimize(q, tripEnv(), true)
		// Report estimated cost relatively: the ratio survives estimator
		// retuning, an absolute figure would not.
		fmt.Printf("%s:\n  original (%.1fx the optimized cost): %s\n",
			name, rewrite.Cost(q)/rewrite.Cost(opt), q)
		for _, step := range trace {
			fmt.Printf("    %-8s → %s\n", step.Rule, step.Expr)
		}
		fmt.Printf("  optimized: %s\n\n", opt)
	}
}
