module worldsetdb

go 1.24
