// Golden-file tests for the paper's running examples. Each scenario
// renders its result world-sets deterministically and compares them
// byte-for-byte against a committed file under testdata/, so engine
// refactors (parallel executors, hash-table rewrites, new decoders)
// cannot silently change semantics: any drift shows up as a diff, and an
// intended change has to be re-recorded explicitly with -update.
//
// Regenerate with:
//
//	go test -run TestGolden -update ./...
package worldsetdb_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/rewrite"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
	"worldsetdb/internal/wsdexec"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run 'go test -run TestGolden -update ./...'): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenFigure2Pipeline records the Figure 2 world-creation
// pipeline: χ_Dep(Flights) creates one world per departure city, and
// the certain arrivals across those worlds are the trip-planning answer.
func TestGoldenFigure2Pipeline(t *testing.T) {
	ws := worldset.FromDB([]string{"Flights"}, []*relation.Relation{datagen.PaperFlights()})
	chi := &wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "Flights"}}
	chosen := wsa.MustRun(chi, ws, "Chosen")
	cert := wsa.MustRun(wsa.NewCert(&wsa.Project{Columns: []string{"Arr"}, From: chi}), ws, "CertainArr")

	var b strings.Builder
	b.WriteString("== choice-of Dep: one world per departure ==\n")
	b.WriteString(chosen.String())
	b.WriteString("\n== certain arrivals across all worlds ==\n")
	b.WriteString(cert.String())
	checkGolden(t, "figure2_pipeline", b.String())
}

// figure8Query builds q1 (close = cert) / q2 (close = poss) of Figures
// 8 and 9 over the trip-planning schema.
func figure8Query(close wsa.CloseKind) wsa.Expr {
	inner := wsa.NewPossGroup([]string{"Dep"}, nil,
		&wsa.Choice{Attrs: []string{"Dep", "City"},
			From: wsa.NewProduct(&wsa.Rel{Name: "HFlights"}, &wsa.Rel{Name: "Hotels"})})
	return &wsa.Close{Kind: close,
		From: &wsa.Project{Columns: []string{"City"},
			From: &wsa.Select{Pred: ra.Eq("Arr", "City"), From: inner}}}
}

// goldenRewritePair runs a Figure 8/9 query and its optimizer rewrite,
// asserts they agree (the point of §6), and records both the rewritten
// form and the shared answers.
func goldenRewritePair(t *testing.T, name string, close wsa.CloseKind) {
	t.Helper()
	q := figure8Query(close)
	env := wsa.NewEnv(
		[]string{"HFlights", "Hotels"},
		[]relation.Schema{relation.NewSchema("Dep", "Arr"), relation.NewSchema("Name", "City", "Price")})
	opt, _ := rewrite.Optimize(q, env, true)
	ws := worldset.FromDB([]string{"HFlights", "Hotels"},
		[]*relation.Relation{datagen.PaperFlights(), datagen.PaperHotels()})
	orig := wsa.MustRun(q, ws, "Ans")
	rewritten := wsa.MustRun(opt, ws, "Ans")
	if !orig.EqualWorlds(rewritten) {
		t.Fatalf("rewritten query disagrees with original\noriginal: %s\nrewritten: %s", q, opt)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "query:     %s\n", q)
	fmt.Fprintf(&b, "rewritten: %s\n\n", opt)
	b.WriteString(orig.String())
	checkGolden(t, name, b.String())
}

// TestGoldenQ1Rewrite is the Figure 8 pair q1/q1′ on the paper's
// trip-planning instance.
func TestGoldenQ1Rewrite(t *testing.T) { goldenRewritePair(t, "q1_rewrite", wsa.CloseCert) }

// TestGoldenQ2Rewrite is the Figure 9 pair q2/q2′.
func TestGoldenQ2Rewrite(t *testing.T) { goldenRewritePair(t, "q2_rewrite", wsa.ClosePoss) }

// TestGoldenCensusRepair records the §2 census repair: two key
// violations, hence 2·2 = 4 repairs, queried for certain and possible
// facts.
func TestGoldenCensusRepair(t *testing.T) {
	s := isql.FromDB([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	if _, err := s.ExecString("create table Clean as select * from Census repair by key SSN;"); err != nil {
		t.Fatal(err)
	}
	res, err := s.ExecString("select certain Name from Clean;")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("== repairs of Census by key SSN ==\n")
	b.WriteString(s.WorldSet().String())
	b.WriteString("\n== certain names across repairs ==\n")
	for _, a := range res.Answers {
		b.WriteString(a.Render("CertainNames"))
	}
	checkGolden(t, "census_repair", b.String())
}

// TestGoldenCensusRepairWSDX pins the factorized engine's answers on
// the census-repair view at a scale no enumerating engine can touch:
// 40 duplicated SSNs mean 2^40 repairs, yet cert and poss come out of
// internal/wsdexec directly on the decomposition — the plans are
// asserted native, so any regression that silently reintroduces
// enumeration fails here before it fails a benchmark. The small-scale
// enumerating golden (TestGoldenCensusRepair) stays alongside.
func TestGoldenCensusRepairWSDX(t *testing.T) {
	census := datagen.Census(50, 40, 7)
	db := wsd.FromComplete([]string{"Census"}, []*relation.Relation{census})
	repair := &wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}}
	outC, planC, err := wsdexec.EvalOpts(wsa.NewCert(repair), db, &wsdexec.Options{NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	outP, planP, err := wsdexec.EvalOpts(wsa.NewPoss(repair), db, &wsdexec.Options{NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if !planC.Native || !planP.Native {
		t.Fatalf("plans must be native: cert=%v poss=%v", planC, planP)
	}
	ansC, ansP := outC.Certain[1], outP.Certain[1]
	var b strings.Builder
	fmt.Fprintf(&b, "== census repair by key SSN: %s worlds (2^40), decomposition size %d ==\n\n",
		outC.Worlds(), outC.Size())
	b.WriteString("== certain persons across all repairs (wsdexec, no enumeration) ==\n")
	b.WriteString(ansC.Render("CertainCensus"))
	b.WriteString("\n== possible persons across all repairs (wsdexec, no enumeration) ==\n")
	b.WriteString(ansP.Render("PossibleCensus"))
	checkGolden(t, "census_repair_wsdx", b.String())
}

// TestGoldenTripPlanning records the §2 I-SQL trip-planning question:
// destinations reachable regardless of the chosen departure.
func TestGoldenTripPlanning(t *testing.T) {
	s := isql.FromDB([]string{"HFlights"}, []*relation.Relation{datagen.PaperFlights()})
	res, err := s.ExecString("select certain Arr from HFlights choice of Dep;")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("== select certain Arr from HFlights choice of Dep ==\n")
	for _, a := range res.Answers {
		b.WriteString(a.Render("CertainArr"))
	}
	checkGolden(t, "trip_planning", b.String())
}
