// Package bufpool is the buffer pool of the paged storage engine: a
// fixed set of in-memory page frames over a backing page file, with
// pin/unpin reference counting, clock (second-chance) eviction and
// dirty tracking. The catalog's page store reads object chains through
// the pool — a catalog larger than the pool still loads, it just pays
// backend reads for the cold pages — and stages checkpoint writes as
// dirty frames that FlushDirty pushes to the backend in one sorted
// sweep (eviction under memory pressure writes dirty victims through
// early, which is safe: checkpoint commit is the meta-slot write, not
// the data write).
package bufpool

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Backend is the page I/O the pool caches. Page ids are frame indexes
// into the backing file; reads and writes are whole-page.
type Backend interface {
	ReadPage(id uint64, buf []byte) error
	WritePage(id uint64, buf []byte) error
}

// Stats is a point-in-time copy of the pool's counters.
type Stats struct {
	Hits        uint64 // Get served from a resident frame
	Misses      uint64 // Get that read through to the backend
	Evictions   uint64 // frames recycled by the clock hand
	DirtyWrites uint64 // dirty frames written back on eviction
}

// Pool is a fixed-capacity page cache. Safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	be   Backend
	size int // page size in bytes
	cap  int // max resident frames

	frames map[uint64]*Frame
	ring   []*Frame // clock order (append-only up to cap)
	hand   int

	hits, misses, evictions, dirtyWrites atomic.Uint64
}

// Frame is one resident page, pinned by the caller until Release. The
// buffer must not be touched after Release.
type Frame struct {
	pool  *Pool
	id    uint64
	buf   []byte
	pins  int
	ref   bool // clock reference bit
	dirty bool
}

// New returns a pool of capPages frames of pageSize bytes each over be.
// Capacity is clamped to at least 2 (a chain walk pins one frame while
// acquiring the next).
func New(be Backend, capPages, pageSize int) *Pool {
	if capPages < 2 {
		capPages = 2
	}
	return &Pool{be: be, size: pageSize, cap: capPages, frames: map[uint64]*Frame{}}
}

// Cap reports the pool's frame capacity.
func (p *Pool) Cap() int { return p.cap }

// Get pins the frame holding page id, reading it from the backend when
// not resident. The caller must Release it.
func (p *Pool) Get(id uint64) (*Frame, error) {
	p.mu.Lock()
	if fr, ok := p.frames[id]; ok {
		fr.pins++
		fr.ref = true
		p.hits.Add(1)
		p.mu.Unlock()
		return fr, nil
	}
	// The backend read stays under the lock: releasing it would let a
	// concurrent Get of the same id find the frame mapped but unfilled.
	// Reads are page-sized and the pool serves single-flighted paths
	// (recovery, checkpoint), so the serialization is not a bottleneck.
	fr, err := p.acquire(id)
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	p.misses.Add(1)
	if err := p.be.ReadPage(id, fr.buf); err != nil {
		p.drop(fr)
		p.mu.Unlock()
		return nil, fmt.Errorf("bufpool: reading page %d: %w", id, err)
	}
	p.mu.Unlock()
	return fr, nil
}

// NewFrame pins a frame for page id without reading the backend — the
// caller is about to overwrite the whole page (checkpoint writes to
// freshly allocated pages). The buffer contents are unspecified until
// written. The caller must Release it.
func (p *Pool) NewFrame(id uint64) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr, ok := p.frames[id]; ok {
		fr.pins++
		fr.ref = true
		fr.dirty = false
		return fr, nil
	}
	return p.acquire(id)
}

// acquire returns a pinned frame mapped to id, evicting if the pool is
// full. Caller holds p.mu.
func (p *Pool) acquire(id uint64) (*Frame, error) {
	if len(p.ring) < p.cap {
		fr := &Frame{pool: p, id: id, buf: make([]byte, p.size), pins: 1, ref: true}
		p.ring = append(p.ring, fr)
		p.frames[id] = fr
		return fr, nil
	}
	// Clock sweep: skip pinned frames, give referenced frames a second
	// chance, take the first unreferenced unpinned victim. Two full
	// sweeps without a victim means every frame is pinned.
	for scanned := 0; scanned < 2*len(p.ring); scanned++ {
		fr := p.ring[p.hand]
		p.hand = (p.hand + 1) % len(p.ring)
		if fr.pins > 0 {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		if fr.dirty {
			if err := p.be.WritePage(fr.id, fr.buf); err != nil {
				return nil, fmt.Errorf("bufpool: writing back evicted page %d: %w", fr.id, err)
			}
			fr.dirty = false
			p.dirtyWrites.Add(1)
		}
		p.evictions.Add(1)
		delete(p.frames, fr.id)
		fr.id = id
		fr.pins = 1
		fr.ref = true
		p.frames[id] = fr
		return fr, nil
	}
	return nil, fmt.Errorf("bufpool: all %d frames pinned", p.cap)
}

// drop unmaps a frame after a failed backend read. Caller holds p.mu;
// the frame keeps its ring slot and becomes an immediate eviction
// candidate.
func (p *Pool) drop(fr *Frame) {
	fr.pins = 0
	fr.ref = false
	fr.dirty = false
	delete(p.frames, fr.id)
}

// Data returns the frame's page buffer. Valid until Release.
func (f *Frame) Data() []byte { return f.buf }

// ID returns the page id the frame holds.
func (f *Frame) ID() uint64 { return f.id }

// MarkDirty flags the frame for write-back (FlushDirty, or eviction).
func (f *Frame) MarkDirty() {
	f.pool.mu.Lock()
	f.dirty = true
	f.pool.mu.Unlock()
}

// Release unpins the frame.
func (f *Frame) Release() {
	f.pool.mu.Lock()
	if f.pins > 0 {
		f.pins--
	}
	f.pool.mu.Unlock()
}

// FlushDirty writes every dirty frame to the backend in ascending page
// order (one sequential sweep for the checkpoint's dirty set) and
// clears their dirty bits. Pinned frames flush too — the pin protects
// residency, not write-back.
func (p *Pool) FlushDirty() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var dirty []*Frame
	for _, fr := range p.frames {
		if fr.dirty {
			dirty = append(dirty, fr)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].id < dirty[j].id })
	for _, fr := range dirty {
		if err := p.be.WritePage(fr.id, fr.buf); err != nil {
			return fmt.Errorf("bufpool: flushing page %d: %w", fr.id, err)
		}
		fr.dirty = false
	}
	return nil
}

// Resident reports how many frames are currently mapped.
func (p *Pool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Hits:        p.hits.Load(),
		Misses:      p.misses.Load(),
		Evictions:   p.evictions.Load(),
		DirtyWrites: p.dirtyWrites.Load(),
	}
}
