package bufpool

import (
	"fmt"
	"testing"
)

// memBackend is an in-memory page array tracking I/O counts.
type memBackend struct {
	pages       map[uint64][]byte
	size        int
	reads       int
	writes      int
	failWrites  bool
	missingRead bool
}

func newMem(size int) *memBackend { return &memBackend{pages: map[uint64][]byte{}, size: size} }

func (m *memBackend) ReadPage(id uint64, buf []byte) error {
	m.reads++
	pg, ok := m.pages[id]
	if !ok {
		if m.missingRead {
			return fmt.Errorf("no page %d", id)
		}
		pg = make([]byte, m.size)
	}
	copy(buf, pg)
	return nil
}

func (m *memBackend) WritePage(id uint64, buf []byte) error {
	m.writes++
	if m.failWrites {
		return fmt.Errorf("write failure injected")
	}
	m.pages[id] = append([]byte{}, buf...)
	return nil
}

func TestGetReadThroughAndHit(t *testing.T) {
	be := newMem(64)
	be.pages[3] = []byte("hello")
	p := New(be, 4, 64)
	fr, err := p.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(fr.Data()[:5]) != "hello" {
		t.Fatalf("read-through data: %q", fr.Data()[:5])
	}
	fr.Release()
	if _, err := p.Get(3); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	if be.reads != 1 {
		t.Fatalf("backend reads = %d, want 1", be.reads)
	}
}

func TestClockEviction(t *testing.T) {
	be := newMem(8)
	p := New(be, 2, 8)
	for id := uint64(0); id < 6; id++ {
		fr, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		fr.Release()
	}
	st := p.Stats()
	if st.Evictions != 4 {
		t.Fatalf("evictions = %d, want 4", st.Evictions)
	}
	if p.Resident() != 2 {
		t.Fatalf("resident = %d, want 2", p.Resident())
	}
}

func TestPinnedFramesAreNotEvicted(t *testing.T) {
	be := newMem(8)
	p := New(be, 2, 8)
	a, _ := p.Get(1)
	b, _ := p.Get(2)
	if _, err := p.Get(3); err == nil {
		t.Fatal("Get succeeded with every frame pinned")
	}
	b.Release()
	fr, err := p.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	fr.Release()
	a.Release()
	// Frame for id 1 must still be resident (it was pinned through the
	// eviction of 2).
	fr, err = p.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	fr.Release()
	if got := p.Stats().Hits; got != 1 {
		t.Fatalf("hits = %d, want 1 (id 1 must have stayed resident)", got)
	}
}

func TestDirtyWriteBackOnEviction(t *testing.T) {
	be := newMem(8)
	p := New(be, 2, 8)
	fr, _ := p.NewFrame(1)
	copy(fr.Data(), "dirty!")
	fr.MarkDirty()
	fr.Release()
	// Force eviction of page 1.
	for id := uint64(2); id <= 4; id++ {
		f, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	if string(be.pages[1][:6]) != "dirty!" {
		t.Fatal("dirty page not written back on eviction")
	}
	if st := p.Stats(); st.DirtyWrites != 1 {
		t.Fatalf("dirty writes = %d, want 1", st.DirtyWrites)
	}
}

func TestFlushDirtySortedSweep(t *testing.T) {
	be := newMem(8)
	p := New(be, 8, 8)
	for _, id := range []uint64{5, 2, 9} {
		fr, err := p.NewFrame(id)
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(id)
		fr.MarkDirty()
		fr.Release()
	}
	if err := p.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []uint64{2, 5, 9} {
		if be.pages[id][0] != byte(id) {
			t.Fatalf("page %d not flushed", id)
		}
	}
	if be.writes != 3 {
		t.Fatalf("backend writes = %d, want 3", be.writes)
	}
	// Second flush is a no-op: dirty bits cleared.
	if err := p.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	if be.writes != 3 {
		t.Fatalf("re-flush wrote %d extra pages", be.writes-3)
	}
}

func TestNewFrameDoesNotReadBackend(t *testing.T) {
	be := newMem(8)
	be.missingRead = true
	p := New(be, 4, 8)
	fr, err := p.NewFrame(7)
	if err != nil {
		t.Fatal(err)
	}
	fr.Release()
	if be.reads != 0 {
		t.Fatalf("NewFrame issued %d backend reads", be.reads)
	}
}
