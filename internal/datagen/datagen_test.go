package datagen

import (
	"math/rand"
	"testing"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
)

// TestPaperFixturesShape pins the exact paper instances the test suite
// and examples rely on.
func TestPaperFixturesShape(t *testing.T) {
	if got := PaperFlights(); got.Len() != 5 || !got.Schema().Equal(relation.NewSchema("Dep", "Arr")) {
		t.Errorf("PaperFlights: %d rows, %v", got.Len(), got.Schema())
	}
	if got := PaperCompanyEmp(); got.Len() != 5 {
		t.Errorf("PaperCompanyEmp rows = %d", got.Len())
	}
	if got := PaperEmpSkills(); got.Len() != 6 {
		t.Errorf("PaperEmpSkills rows = %d", got.Len())
	}
	if got := Fig5R(); got.Len() != 4 {
		t.Errorf("Fig5R rows = %d", got.Len())
	}
	if got := Fig5S(); got.Len() != 2 {
		t.Errorf("Fig5S rows = %d", got.Len())
	}
	if got := PaperCensus(); got.Len() != 5 {
		t.Errorf("PaperCensus rows = %d", got.Len())
	}
}

// TestGeneratorsDeterministic: equal seeds give equal data (benchmarks
// and EXPERIMENTS.md depend on it).
func TestGeneratorsDeterministic(t *testing.T) {
	if !Flights(10, 10, 0.5, 42).Equal(Flights(10, 10, 0.5, 42)) {
		t.Error("Flights not deterministic")
	}
	if !Lineitem(10, 3, 4, 42).Equal(Lineitem(10, 3, 4, 42)) {
		t.Error("Lineitem not deterministic")
	}
	if !Census(50, 5, 42).Equal(Census(50, 5, 42)) {
		t.Error("Census not deterministic")
	}
	if Flights(10, 10, 0.5, 1).Equal(Flights(10, 10, 0.5, 2)) {
		t.Error("different seeds should differ")
	}
}

// TestFlightsHub: every departure reaches the HUB, so cert queries over
// generated data are non-trivial.
func TestFlightsHub(t *testing.T) {
	f := Flights(8, 10, 0.2, 3)
	deps := map[string]bool{}
	hub := map[string]bool{}
	depIdx := f.Schema().Index("Dep")
	arrIdx := f.Schema().Index("Arr")
	f.Each(func(tup relation.Tuple) {
		deps[tup[depIdx].AsString()] = true
		if tup[arrIdx].AsString() == "HUB" {
			hub[tup[depIdx].AsString()] = true
		}
	})
	if len(deps) != 8 {
		t.Fatalf("departures = %d, want 8", len(deps))
	}
	for d := range deps {
		if !hub[d] {
			t.Fatalf("departure %s misses the HUB arrival", d)
		}
	}
}

// TestCensusDuplicateCount: exactly nDup SSNs occur twice.
func TestCensusDuplicateCount(t *testing.T) {
	c := Census(100, 7, 9)
	counts := map[string]int{}
	idx := c.Schema().Index("SSN")
	c.Each(func(tup relation.Tuple) { counts[tup[idx].Key()]++ })
	dups := 0
	for _, n := range counts {
		switch n {
		case 1:
		case 2:
			dups++
		default:
			t.Fatalf("SSN occurs %d times; generator promises at most 2", n)
		}
	}
	if dups != 7 {
		t.Fatalf("duplicated SSNs = %d, want 7", dups)
	}
}

// TestEmpSkillsBaseline: every employee has skill S0 (the certain-skill
// anchor the acquisition benchmark relies on).
func TestEmpSkillsBaseline(t *testing.T) {
	es := EmpSkills(3, 4, 4, 5)
	withS0 := map[string]bool{}
	eIdx := es.Schema().Index("EID")
	sIdx := es.Schema().Index("Skill")
	es.Each(func(tup relation.Tuple) {
		if tup[sIdx].Equal(value.Str("S0")) {
			withS0[tup[eIdx].AsString()] = true
		}
	})
	if len(withS0) != 12 {
		t.Fatalf("employees with S0 = %d, want 12", len(withS0))
	}
}

// TestRandomWorldSetBounds: world and tuple counts respect the limits.
func TestRandomWorldSetBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		ws := RandomWorldSet(rng, []string{"R"},
			[]relation.Schema{relation.NewSchema("A")}, 3, 4, 5)
		if ws.Len() < 1 || ws.Len() > 5 {
			t.Fatalf("world count %d out of [1, 5]", ws.Len())
		}
		for _, w := range ws.Worlds() {
			if w[0].Len() > 4 {
				t.Fatalf("tuple count %d exceeds 4", w[0].Len())
			}
		}
	}
}
