// Package datagen provides the paper's example instances (Figures 2, 4,
// 5 and the §2 scenarios) and deterministic synthetic workload
// generators for tests and benchmarks.
package datagen

import (
	"fmt"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
)

// DemoDB returns the named demo database the CLI tools preload —
// relation names plus instances — so cmd/isql and cmd/isqld serve
// identical data for the same -demo flag.
func DemoDB(name string) ([]string, []*relation.Relation, error) {
	switch name {
	case "flights":
		return []string{"HFlights"}, []*relation.Relation{PaperFlights()}, nil
	case "acquisition":
		return []string{"Company_Emp", "Emp_Skills"},
			[]*relation.Relation{PaperCompanyEmp(), PaperEmpSkills()}, nil
	case "census":
		return []string{"Census"}, []*relation.Relation{PaperCensus()}, nil
	case "lineitem":
		return []string{"Lineitem"}, []*relation.Relation{Lineitem(60, 3, 4, 42)}, nil
	}
	return nil, nil, fmt.Errorf("unknown demo %q (want flights, acquisition, census or lineitem)", name)
}

func strTuple(vals ...string) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = value.Str(v)
	}
	return t
}

// PaperFlights returns the Flights(Dep, Arr) database of Figure 2(a).
func PaperFlights() *relation.Relation {
	return relation.FromRows(relation.NewSchema("Dep", "Arr"),
		strTuple("FRA", "BCN"),
		strTuple("FRA", "ATL"),
		strTuple("PAR", "ATL"),
		strTuple("PAR", "BCN"),
		strTuple("PHL", "ATL"),
	)
}

// PaperCompanyEmp returns the Company_Emp(CID, EID) relation of §2.
func PaperCompanyEmp() *relation.Relation {
	return relation.FromRows(relation.NewSchema("CID", "EID"),
		strTuple("ACME", "e1"),
		strTuple("ACME", "e2"),
		strTuple("HAL", "e3"),
		strTuple("HAL", "e4"),
		strTuple("HAL", "e5"),
	)
}

// PaperEmpSkills returns the Emp_Skills(EID, Skill) relation of §2.
func PaperEmpSkills() *relation.Relation {
	return relation.FromRows(relation.NewSchema("EID", "Skill"),
		strTuple("e1", "Web"),
		strTuple("e2", "Web"),
		strTuple("e3", "Java"),
		strTuple("e3", "Web"),
		strTuple("e4", "SQL"),
		strTuple("e5", "Java"),
	)
}

// Fig5R returns relation R(A, B) of Figure 5(a).
func Fig5R() *relation.Relation {
	mk := func(a, b int64) relation.Tuple {
		return relation.Tuple{value.Int(a), value.Int(b)}
	}
	return relation.FromRows(relation.NewSchema("A", "B"),
		mk(1, 2), mk(2, 3), mk(2, 4), mk(3, 2))
}

// Fig5S returns relation S(C, D) of Figure 5(a).
func Fig5S() *relation.Relation {
	mk := func(c, d int64) relation.Tuple {
		return relation.Tuple{value.Int(c), value.Int(d)}
	}
	return relation.FromRows(relation.NewSchema("C", "D"),
		mk(2, 3), mk(4, 5))
}

// PaperHotels returns a Hotels(Name, City, Price) instance compatible
// with the Example 6.1 trip-planning scenario: hotels exist in the
// arrival cities of PaperFlights.
func PaperHotels() *relation.Relation {
	mk := func(name, city string, price int64) relation.Tuple {
		return relation.Tuple{value.Str(name), value.Str(city), value.Int(price)}
	}
	return relation.FromRows(relation.NewSchema("Name", "City", "Price"),
		mk("Ritz", "BCN", 300),
		mk("Ibis", "BCN", 90),
		mk("Hyatt", "ATL", 200),
		mk("Plaza", "PAR", 250),
	)
}

// PaperCensus returns the Census(SSN, Name, POB, POW) relation of §2
// with key violations on SSN (two persons sharing SSN 111, two sharing
// 222): 2·2 = 4 possible repairs.
func PaperCensus() *relation.Relation {
	mk := func(ssn int64, name, pob, pow string) relation.Tuple {
		return relation.Tuple{value.Int(ssn), value.Str(name), value.Str(pob), value.Str(pow)}
	}
	return relation.FromRows(relation.NewSchema("SSN", "Name", "POB", "POW"),
		mk(111, "Smith", "NYC", "Boston"),
		mk(111, "Smyth", "NYC", "Boston"),
		mk(222, "Jones", "LA", "SF"),
		mk(222, "Jonas", "LA", "SD"),
		mk(333, "Brown", "Austin", "Austin"),
	)
}
