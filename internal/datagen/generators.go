package datagen

import (
	"fmt"
	"math/rand"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsd"
)

// Flights generates a Flights(Dep, Arr) relation with nDep departure
// airports and, for each, a random subset of nArr arrival airports with
// the given density. A designated "hub" arrival appears for every
// departure so that `cert` queries have non-empty answers. Deterministic
// in seed.
func Flights(nDep, nArr int, density float64, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(relation.NewSchema("Dep", "Arr"))
	for d := 0; d < nDep; d++ {
		dep := value.Str(fmt.Sprintf("D%03d", d))
		r.Insert(relation.Tuple{dep, value.Str("HUB")})
		for a := 0; a < nArr; a++ {
			if rng.Float64() < density {
				r.Insert(relation.Tuple{dep, value.Str(fmt.Sprintf("A%03d", a))})
			}
		}
	}
	return r
}

// Hotels generates Hotels(Name, City, Price) with one or more hotels per
// arrival city produced by Flights (cities A000..A(nArr-1) and HUB).
func Hotels(nArr, perCity int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(relation.NewSchema("Name", "City", "Price"))
	cities := []string{"HUB"}
	for a := 0; a < nArr; a++ {
		cities = append(cities, fmt.Sprintf("A%03d", a))
	}
	for _, c := range cities {
		for h := 0; h < perCity; h++ {
			r.Insert(relation.Tuple{
				value.Str(fmt.Sprintf("H-%s-%d", c, h)),
				value.Str(c),
				value.Int(int64(50 + rng.Intn(400))),
			})
		}
	}
	return r
}

// CompanyEmp generates Company_Emp(CID, EID) with nCompanies companies
// of empPerCompany employees each.
func CompanyEmp(nCompanies, empPerCompany int) *relation.Relation {
	r := relation.New(relation.NewSchema("CID", "EID"))
	for c := 0; c < nCompanies; c++ {
		for e := 0; e < empPerCompany; e++ {
			r.Insert(relation.Tuple{
				value.Str(fmt.Sprintf("C%03d", c)),
				value.Str(fmt.Sprintf("e%03d_%03d", c, e)),
			})
		}
	}
	return r
}

// EmpSkills generates Emp_Skills(EID, Skill) giving each employee of
// CompanyEmp(nCompanies, empPerCompany) a random subset of nSkills
// skills; every employee gets skill "S0" so that certain-skill queries
// are non-trivial.
func EmpSkills(nCompanies, empPerCompany, nSkills int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(relation.NewSchema("EID", "Skill"))
	for c := 0; c < nCompanies; c++ {
		for e := 0; e < empPerCompany; e++ {
			eid := value.Str(fmt.Sprintf("e%03d_%03d", c, e))
			r.Insert(relation.Tuple{eid, value.Str("S0")})
			for s := 1; s < nSkills; s++ {
				if rng.Float64() < 0.4 {
					r.Insert(relation.Tuple{eid, value.Str(fmt.Sprintf("S%d", s))})
				}
			}
		}
	}
	return r
}

// Lineitem generates Lineitem(Product, Quantity, Price, Year) in the
// spirit of the §2 TPC-H discussion: nProducts products sold in one of
// nQuantities package sizes across nYears years.
func Lineitem(nProducts, nQuantities, nYears int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(relation.NewSchema("Product", "Quantity", "Price", "Year"))
	for p := 0; p < nProducts; p++ {
		for y := 0; y < nYears; y++ {
			q := 100 * (1 + rng.Intn(nQuantities))
			r.Insert(relation.Tuple{
				value.Str(fmt.Sprintf("P%04d", p)),
				value.Int(int64(q)),
				value.Int(int64(10 + rng.Intn(10000))),
				value.Int(int64(2000 + y)),
			})
		}
	}
	return r
}

// Census generates Census(SSN, Name, POB, POW) with n persons of which
// nDup social security numbers are duplicated once (each duplicated SSN
// doubles the number of repairs: 2^nDup worlds).
func Census(n, nDup int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(relation.NewSchema("SSN", "Name", "POB", "POW"))
	cities := []string{"NYC", "LA", "SF", "Austin", "Boston"}
	for i := 0; i < n; i++ {
		r.Insert(relation.Tuple{
			value.Int(int64(100000 + i)),
			value.Str(fmt.Sprintf("Person%04d", i)),
			value.Str(cities[rng.Intn(len(cities))]),
			value.Str(cities[rng.Intn(len(cities))]),
		})
	}
	for i := 0; i < nDup && i < n; i++ {
		// A second, conflicting tuple for an existing SSN (mistyped name).
		r.Insert(relation.Tuple{
			value.Int(int64(100000 + i)),
			value.Str(fmt.Sprintf("Persom%04d", i)),
			value.Str(cities[rng.Intn(len(cities))]),
			value.Str(cities[rng.Intn(len(cities))]),
		})
	}
	return r
}

// CensusRepairDecomp builds the repaired census catalog decomposition
// directly: ⟨Clean, Census⟩ where Census is the generated relation
// (certain) and Clean its repair-by-key view — one independent
// component per duplicated SSN, 2^nDup represented worlds in linear
// space. This is the canonical store/serving workload: benchmarks and
// server tests seed catalogs from it without running the I-SQL
// pipeline first.
func CensusRepairDecomp(n, nDup int, seed int64) *wsd.DecompDB {
	census := Census(n, nDup, seed)
	repair, err := wsd.RepairByKey("Clean", census, []string{"SSN"})
	if err != nil {
		panic(err) // generated input always has the SSN column
	}
	return wsd.FromWSD(repair).WithRelation("Census", census.Schema(), census)
}

// RandomRelation generates a relation over the given schema with up to
// maxTuples tuples drawn from an integer domain of the given size.
func RandomRelation(rng *rand.Rand, schema relation.Schema, domain, maxTuples int) *relation.Relation {
	r := relation.New(schema)
	n := rng.Intn(maxTuples + 1)
	for i := 0; i < n; i++ {
		t := make(relation.Tuple, len(schema))
		for j := range t {
			t[j] = value.Int(int64(rng.Intn(domain)))
		}
		r.Insert(t)
	}
	return r
}

// RandomDecompDB generates a multi-relation world-set decomposition
// over the given named schemas: random certain relations plus up to
// maxComponents independent components, each with 1..maxAlternatives
// alternatives contributing random (possibly empty) tuple sets to a
// random subset of the relations. The represented world count is at
// most maxAlternatives^maxComponents, so differential tests can keep
// inputs expandable while still exercising genuinely factored
// structure (components spanning several relations, empty alternatives,
// shared tuples between certain and alternative partitions).
func RandomDecompDB(rng *rand.Rand, names []string, schemas []relation.Schema,
	domain, maxCertain, maxComponents, maxAlternatives, maxTuples int) *wsd.DecompDB {
	db := wsd.NewDecompDB(names, schemas)
	for i, s := range schemas {
		db.Certain[i] = RandomRelation(rng, s, domain, maxCertain)
	}
	nComp := rng.Intn(maxComponents + 1)
	for c := 0; c < nComp; c++ {
		comp := wsd.DBComponent{}
		nAlt := 1 + rng.Intn(maxAlternatives)
		for a := 0; a < nAlt; a++ {
			alt := wsd.DBAlternative{Rels: map[int]*relation.Relation{}}
			for i, s := range schemas {
				if rng.Intn(3) == 0 {
					continue // this alternative leaves relation i alone
				}
				r := RandomRelation(rng, s, domain, maxTuples)
				if r.Len() > 0 {
					alt.Rels[i] = r
				}
			}
			comp.Alternatives = append(comp.Alternatives, alt)
		}
		db.Components = append(db.Components, comp)
	}
	return db
}

// RandomWorldSet generates a world-set with up to maxWorlds worlds over
// the given named schemas, each relation drawn by RandomRelation. At
// least one world is always produced.
func RandomWorldSet(rng *rand.Rand, names []string, schemas []relation.Schema, domain, maxTuples, maxWorlds int) *worldset.WorldSet {
	ws := worldset.New(names, schemas)
	n := 1 + rng.Intn(maxWorlds)
	for i := 0; i < n; i++ {
		w := make(worldset.World, len(schemas))
		for j, s := range schemas {
			w[j] = RandomRelation(rng, s, domain, maxTuples)
		}
		ws.Add(w)
	}
	return ws
}
