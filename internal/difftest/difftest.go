// Package difftest is the cross-evaluator differential harness: it runs
// the same World-set Algebra query through every evaluator the engine
// has — the Figure 3 reference semantics over explicit world-sets
// (wsa.Eval), the Figure 6 translation to relational algebra over the
// inlined representation (translate.EvalWorldSet), and the dedicated
// physical operators (physical.EvalWorldSet) — and asserts that the
// resulting world-sets coincide.
//
// The harness is how engine refactors stay honest: the parallel
// world-partitioned executor, the hash-join fast paths and the bucketed
// decoder all ship with "all three evaluators agree on hundreds of
// randomized queries" as the acceptance bar, including under the race
// detector with partitioning forced on (see difftest_test.go).
package difftest

import (
	"fmt"

	"worldsetdb/internal/physical"
	"worldsetdb/internal/translate"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
)

// Result reports one evaluator's output for a query.
type Result struct {
	Name string
	Out  *worldset.WorldSet
	Err  error
}

// Run evaluates q on ws with all three evaluators and returns their
// results in a fixed order: reference, translated, physical.
func Run(q wsa.Expr, ws *worldset.WorldSet) []Result {
	ref, refErr := wsa.Eval(q, ws)
	tr, trErr := translate.EvalWorldSet(q, ws)
	ph, phErr := physical.EvalWorldSet(q, ws)
	return []Result{
		{Name: "reference", Out: ref, Err: refErr},
		{Name: "translated", Out: tr, Err: trErr},
		{Name: "physical", Out: ph, Err: phErr},
	}
}

// Check runs q through all three evaluators and returns an error
// describing the first disagreement: an evaluator failing where the
// reference succeeds (or vice versa), or a world-set differing from the
// reference output. Relation names may differ across evaluators (the
// answer-table naming is an artifact), so world-sets are compared with
// EqualWorlds.
func Check(q wsa.Expr, ws *worldset.WorldSet) error {
	results := Run(q, ws)
	ref := results[0]
	if ref.Err != nil {
		// The generators only produce well-typed queries, so a reference
		// failure is itself a bug worth surfacing.
		return fmt.Errorf("reference evaluator failed for %s: %w", q, ref.Err)
	}
	for _, r := range results[1:] {
		if r.Err != nil {
			return fmt.Errorf("%s evaluator failed for %s where the reference succeeded: %w", r.Name, q, r.Err)
		}
		if !r.Out.EqualWorlds(ref.Out) {
			return fmt.Errorf("%s evaluator disagrees with the reference for %s\ninput:\n%s\nreference:\n%s\n%s:\n%s",
				r.Name, q, ws, ref.Out, r.Name, r.Out)
		}
	}
	return nil
}
