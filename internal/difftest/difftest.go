// Package difftest is the cross-evaluator differential harness: it runs
// the same World-set Algebra query through every evaluation engine the
// system has — the Figure 3 reference semantics over explicit
// world-sets (wsa.Eval), the Figure 6 translation to relational algebra
// over the inlined representation (translate.EvalWorldSet), the
// dedicated physical operators (physical.EvalWorldSet), and the
// factorized decomposition engine (wsdexec) — and asserts that the
// resulting world-sets coincide.
//
// The harness is how engine refactors stay honest: the parallel
// world-partitioned executor, the hash-join fast paths, the bucketed
// decoder and now the factorized WSD-native engine all ship with "all
// evaluators agree on hundreds of randomized queries" as the acceptance
// bar, including under the race detector with partitioning forced on
// (see difftest_test.go). Decomposed inputs get their own entry point,
// CheckDecomp, which runs wsdexec natively on the decomposition and the
// other three on its (expandable) enumeration, requiring byte-identical
// rendered world-sets; CheckStore runs the same queries the way an
// I-SQL session select does — through the store.Query snapshot path
// with re-factorized fallbacks — against the reference engine.
package difftest

import (
	"fmt"

	"worldsetdb/internal/physical"
	"worldsetdb/internal/store"
	"worldsetdb/internal/translate"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
	"worldsetdb/internal/wsdexec"
)

// Result reports one evaluator's output for a query.
type Result struct {
	Name string
	Out  *worldset.WorldSet
	Err  error
}

// Run evaluates q on ws with all four evaluators and returns their
// results in a fixed order: reference, translated, physical, wsdexec.
func Run(q wsa.Expr, ws *worldset.WorldSet) []Result {
	ref, refErr := wsa.Eval(q, ws)
	tr, trErr := translate.EvalWorldSet(q, ws)
	ph, phErr := physical.EvalWorldSet(q, ws)
	wx, wxErr := wsdexec.EvalWorldSet(q, ws)
	return []Result{
		{Name: "reference", Out: ref, Err: refErr},
		{Name: "translated", Out: tr, Err: trErr},
		{Name: "physical", Out: ph, Err: phErr},
		{Name: "wsdexec", Out: wx, Err: wxErr},
	}
}

// Check runs q through all four evaluators and returns an error
// describing the first disagreement: an evaluator failing where the
// reference succeeds (or vice versa), or a world-set differing from the
// reference output. Relation names may differ across evaluators (the
// answer-table naming is an artifact), so world-sets are compared with
// EqualWorlds.
func Check(q wsa.Expr, ws *worldset.WorldSet) error {
	_, err := checkResults(q, ws, Run(q, ws))
	return err
}

// checkResults compares a Run's results against the reference entry,
// returning the reference result for reuse.
func checkResults(q wsa.Expr, ws *worldset.WorldSet, results []Result) (Result, error) {
	ref := results[0]
	if ref.Err != nil {
		// The generators only produce well-typed queries, so a reference
		// failure is itself a bug worth surfacing.
		return ref, fmt.Errorf("reference evaluator failed for %s: %w", q, ref.Err)
	}
	for _, r := range results[1:] {
		if r.Err != nil {
			return ref, fmt.Errorf("%s evaluator failed for %s where the reference succeeded: %w", r.Name, q, r.Err)
		}
		if !r.Out.EqualWorlds(ref.Out) {
			return ref, fmt.Errorf("%s evaluator disagrees with the reference for %s\ninput:\n%s\nreference:\n%s\n%s:\n%s",
				r.Name, q, ws, ref.Out, r.Name, r.Out)
		}
	}
	return ref, nil
}

// CheckDecomp is the decomposition-level differential check: the
// factorized engine evaluates q directly on db while the reference,
// translated and physical engines run on db's enumeration (which must
// fit the default expansion budget — callers keep generated inputs
// expandable). Because the expanded wsdexec result and the reference
// result share names, schemas and the deterministic world ordering,
// they are required to render byte-identically, not merely compare
// equal.
func CheckDecomp(q wsa.Expr, db *wsd.DecompDB) error {
	ws, err := db.Expand(0)
	if err != nil {
		return fmt.Errorf("input decomposition not expandable: %w", err)
	}
	ref, err := checkResults(q, ws, Run(q, ws))
	if err != nil {
		return err
	}
	out, plan, err := wsdexec.Eval(q, db)
	if err != nil {
		return fmt.Errorf("wsdexec failed for %s on the decomposition where the reference succeeded: %w", q, err)
	}
	got, err := out.Expand(0)
	if err != nil {
		return fmt.Errorf("wsdexec result of %s not expandable (plan %v): %w", q, plan, err)
	}
	if g, w := got.String(), ref.Out.String(); g != w {
		return fmt.Errorf("wsdexec (plan %v) disagrees with the reference for %s\ninput:\n%s\nreference:\n%s\nwsdexec:\n%s",
			plan, q, db, w, g)
	}
	return nil
}

// CheckStore is the store-path differential check: the query runs the
// way an I-SQL session select does — through store.Query against a
// catalog snapshot holding the decomposition, with entangled fallbacks
// re-factorized by wsd.Refactor — and the expanded result must render
// byte-identically to the reference evaluation of the enumeration.
// Where CheckDecomp pins the factorized engine, CheckStore additionally
// pins the snapshot plumbing and the re-factorization of fallback
// outputs (every entangling query exercises Refactor here).
func CheckStore(q wsa.Expr, db *wsd.DecompDB) error {
	ws, err := db.Expand(0)
	if err != nil {
		return fmt.Errorf("input decomposition not expandable: %w", err)
	}
	ref, err := wsa.Eval(q, ws)
	if err != nil {
		return fmt.Errorf("reference evaluator failed for %s: %w", q, err)
	}
	snap := store.New(db).Snapshot()
	out, plan, err := store.Query(snap, "", q, 0)
	if err != nil {
		return fmt.Errorf("store path failed for %s where the reference succeeded: %w", q, err)
	}
	got, err := out.Expand(0)
	if err != nil {
		return fmt.Errorf("store result of %s not expandable (plan %v): %w", q, plan, err)
	}
	if g, w := got.String(), ref.String(); g != w {
		return fmt.Errorf("store path (plan %v) disagrees with the reference for %s\ninput:\n%s\nreference:\n%s\nstore:\n%s",
			plan, q, db, w, g)
	}
	return nil
}
