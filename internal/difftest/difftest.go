// Package difftest is the cross-evaluator differential harness: it runs
// the same World-set Algebra query through every evaluation engine the
// system has — the Figure 3 reference semantics over explicit
// world-sets (wsa.Eval), the Figure 6 translation to relational algebra
// over the inlined representation (translate.EvalWorldSet), the
// dedicated physical operators (physical.EvalWorldSet), and the
// factorized decomposition engine (wsdexec) — and asserts that the
// resulting world-sets coincide.
//
// The harness is how engine refactors stay honest: the parallel
// world-partitioned executor, the hash-join fast paths, the bucketed
// decoder and now the factorized WSD-native engine all ship with "all
// evaluators agree on hundreds of randomized queries" as the acceptance
// bar, including under the race detector with partitioning forced on
// (see difftest_test.go). Decomposed inputs get their own entry point,
// CheckDecomp, which runs wsdexec natively on the decomposition and the
// other three on its (expandable) enumeration, requiring byte-identical
// rendered world-sets; CheckStore runs the same queries the way an
// I-SQL session select does — through the store.Query snapshot path
// with re-factorized fallbacks — against the reference engine.
package difftest

import (
	"bytes"
	"fmt"
	"strings"

	"worldsetdb/internal/isql"
	"worldsetdb/internal/physical"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/store"
	"worldsetdb/internal/translate"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
	"worldsetdb/internal/wsdexec"
)

// Result reports one evaluator's output for a query.
type Result struct {
	Name string
	Out  *worldset.WorldSet
	Err  error
}

// Run evaluates q on ws with all four evaluators and returns their
// results in a fixed order: reference, translated, physical, wsdexec.
func Run(q wsa.Expr, ws *worldset.WorldSet) []Result {
	ref, refErr := wsa.Eval(q, ws)
	tr, trErr := translate.EvalWorldSet(q, ws)
	ph, phErr := physical.EvalWorldSet(q, ws)
	wx, wxErr := wsdexec.EvalWorldSet(q, ws)
	return []Result{
		{Name: "reference", Out: ref, Err: refErr},
		{Name: "translated", Out: tr, Err: trErr},
		{Name: "physical", Out: ph, Err: phErr},
		{Name: "wsdexec", Out: wx, Err: wxErr},
	}
}

// Check runs q through all four evaluators and returns an error
// describing the first disagreement: an evaluator failing where the
// reference succeeds (or vice versa), or a world-set differing from the
// reference output. Relation names may differ across evaluators (the
// answer-table naming is an artifact), so world-sets are compared with
// EqualWorlds.
func Check(q wsa.Expr, ws *worldset.WorldSet) error {
	_, err := checkResults(q, ws, Run(q, ws))
	return err
}

// checkResults compares a Run's results against the reference entry,
// returning the reference result for reuse.
func checkResults(q wsa.Expr, ws *worldset.WorldSet, results []Result) (Result, error) {
	ref := results[0]
	if ref.Err != nil {
		// The generators only produce well-typed queries, so a reference
		// failure is itself a bug worth surfacing.
		return ref, fmt.Errorf("reference evaluator failed for %s: %w", q, ref.Err)
	}
	for _, r := range results[1:] {
		if r.Err != nil {
			return ref, fmt.Errorf("%s evaluator failed for %s where the reference succeeded: %w", r.Name, q, r.Err)
		}
		if !r.Out.EqualWorlds(ref.Out) {
			return ref, fmt.Errorf("%s evaluator disagrees with the reference for %s\ninput:\n%s\nreference:\n%s\n%s:\n%s",
				r.Name, q, ws, ref.Out, r.Name, r.Out)
		}
	}
	return ref, nil
}

// CheckDecomp is the decomposition-level differential check: the
// factorized engine evaluates q directly on db while the reference,
// translated and physical engines run on db's enumeration (which must
// fit the default expansion budget — callers keep generated inputs
// expandable). Because the expanded wsdexec result and the reference
// result share names, schemas and the deterministic world ordering,
// they are required to render byte-identically, not merely compare
// equal.
func CheckDecomp(q wsa.Expr, db *wsd.DecompDB) error {
	ws, err := db.Expand(0)
	if err != nil {
		return fmt.Errorf("input decomposition not expandable: %w", err)
	}
	ref, err := checkResults(q, ws, Run(q, ws))
	if err != nil {
		return err
	}
	out, plan, err := wsdexec.Eval(q, db)
	if err != nil {
		return fmt.Errorf("wsdexec failed for %s on the decomposition where the reference succeeded: %w", q, err)
	}
	got, err := out.Expand(0)
	if err != nil {
		return fmt.Errorf("wsdexec result of %s not expandable (plan %v): %w", q, plan, err)
	}
	if g, w := got.String(), ref.Out.String(); g != w {
		return fmt.Errorf("wsdexec (plan %v) disagrees with the reference for %s\ninput:\n%s\nreference:\n%s\nwsdexec:\n%s",
			plan, q, db, w, g)
	}
	return nil
}

// CheckStore is the store-path differential check: the query runs the
// way an I-SQL session select does — through store.Query against a
// catalog snapshot holding the decomposition, with entangled fallbacks
// re-factorized by wsd.Refactor — and the expanded result must render
// byte-identically to the reference evaluation of the enumeration.
// Where CheckDecomp pins the factorized engine, CheckStore additionally
// pins the snapshot plumbing and the re-factorization of fallback
// outputs (every entangling query exercises Refactor here). The same
// query then runs once more through a 4-way component-sharded snapshot,
// where store.Query hands the engine the component-to-shard map and its
// parallel scans chunk along shard boundaries: sharding may change the
// scatter scheduling, never the rendered answer.
func CheckStore(q wsa.Expr, db *wsd.DecompDB) error {
	ws, err := db.Expand(0)
	if err != nil {
		return fmt.Errorf("input decomposition not expandable: %w", err)
	}
	ref, err := wsa.Eval(q, ws)
	if err != nil {
		return fmt.Errorf("reference evaluator failed for %s: %w", q, err)
	}
	snap := store.New(db).Snapshot()
	out, plan, err := store.Query(snap, "", q, 0)
	if err != nil {
		return fmt.Errorf("store path failed for %s where the reference succeeded: %w", q, err)
	}
	got, err := out.Expand(0)
	if err != nil {
		return fmt.Errorf("store result of %s not expandable (plan %v): %w", q, plan, err)
	}
	if g, w := got.String(), ref.String(); g != w {
		return fmt.Errorf("store path (plan %v) disagrees with the reference for %s\ninput:\n%s\nreference:\n%s\nstore:\n%s",
			plan, q, db, w, g)
	}
	snap4 := store.NewSharded(db, 4).Snapshot()
	out4, plan4, err := store.Query(snap4, "", q, 0)
	if err != nil {
		return fmt.Errorf("sharded store path failed for %s where the reference succeeded: %w", q, err)
	}
	got4, err := out4.Expand(0)
	if err != nil {
		return fmt.Errorf("sharded store result of %s not expandable (plan %v): %w", q, plan4, err)
	}
	if g, w := got4.String(), ref.String(); g != w {
		return fmt.Errorf("sharded store path (plan %v) disagrees with the reference for %s\ninput:\n%s\nreference:\n%s\nsharded store:\n%s",
			plan4, q, db, w, g)
	}
	return nil
}

// CheckSQLScript is the statement-level differential check: one I-SQL
// script runs through five sessions over the same seed database — the
// native factorized path (with execution accounting when stats is
// non-nil), the three wsa engines by override, and the legacy explicit
// world-set evaluator — and every statement must agree on answers and
// affected counts, with every session's state expanding to the same
// world-set after each statement. The native session additionally must
// never hit the engine's enumeration fallback: fragment statements
// evaluate natively (merging components at worst), and statements
// outside the fragment take the bounded evaluator, whose parity with
// the legacy session's full expansion this check pins.
func CheckSQLScript(names []string, rels []*relation.Relation, stmts []string, stats *isql.ExecStats) error {
	engines := []string{"", "reference", "translated", "physical", "legacy"}
	for _, sql := range stmts {
		if strings.Contains(sql, "repair by key") {
			// Repair-by-key has no relational algebra equivalent
			// (Proposition 4.2), so the translated and physical engines
			// cannot run such a script — they sit it out.
			engines = []string{"", "reference", "legacy"}
			break
		}
	}
	sessions := make([]*isql.Session, len(engines))
	for i, e := range engines {
		sessions[i] = isql.FromDB(names, rels)
		sessions[i].Engine = e
	}
	sessions[0].Stats = stats
	for _, sql := range stmts {
		var first *isql.Result
		var firstErr error
		for i, sess := range sessions {
			res, err := sess.ExecString(sql)
			if i == 0 {
				first, firstErr = res, err
				if err == nil && res.Plan != nil && !res.Plan.Native {
					return fmt.Errorf("difftest: %q fell back on the native path: %s", sql, res.Plan)
				}
				continue
			}
			if (err == nil) != (firstErr == nil) {
				return fmt.Errorf("difftest: %q: native err %v, %s err %v", sql, firstErr, engines[i], err)
			}
			if err != nil {
				continue
			}
			if len(res.Answers) != len(first.Answers) {
				return fmt.Errorf("difftest: %q: %d answers native vs %d %s", sql, len(first.Answers), len(res.Answers), engines[i])
			}
			for j := range res.Answers {
				if res.Answers[j].ContentKey() != first.Answers[j].ContentKey() {
					return fmt.Errorf("difftest: %q: answer %d differs between native and %s\nnative:\n%s\n%s:\n%s",
						sql, j, engines[i], first.Answers[j], engines[i], res.Answers[j])
				}
			}
			if res.Affected != first.Affected {
				return fmt.Errorf("difftest: %q: affected %d native vs %d %s", sql, first.Affected, res.Affected, engines[i])
			}
		}
		if firstErr != nil {
			continue
		}
		ref := sessions[0].WorldSet()
		if ref == nil {
			return fmt.Errorf("difftest: %q: native session state not expandable", sql)
		}
		want := ref.String()
		for i, sess := range sessions[1:] {
			ws := sess.WorldSet()
			if ws == nil {
				return fmt.Errorf("difftest: %q: %s session state not expandable", sql, engines[i+1])
			}
			if ws.String() != want {
				return fmt.Errorf("difftest: %q: %s session state differs from native\nnative:\n%s\n%s:\n%s",
					sql, engines[i+1], want, engines[i+1], ws)
			}
		}
	}
	return nil
}

// CheckTxn is the transactional differential check over one I-SQL
// script. From the same seed database it verifies the two transaction
// laws the store promises:
//
//  1. BEGIN → script → ROLLBACK leaves the catalog byte-identical
//     (through store.Save, version included) to never having run the
//     transaction, and
//  2. BEGIN → script → COMMIT produces a catalog content-identical to
//     running the same statements non-transactionally (versions differ
//     by construction — one commit versus N — and are normalized away),
//     with every select along the way returning identical answers.
func CheckTxn(names []string, rels []*relation.Relation, stmts []string) error {
	// Law 1: rollback identity.
	rolled := isql.FromDB(names, rels)
	before, err := rawCatalogBytes(rolled.Catalog().Snapshot())
	if err != nil {
		return err
	}
	if err := rolled.Begin(); err != nil {
		return err
	}
	for _, sql := range stmts {
		if _, err := rolled.ExecString(sql); err != nil {
			return fmt.Errorf("difftest: %q inside the transaction: %w", sql, err)
		}
	}
	if err := rolled.Rollback(); err != nil {
		return err
	}
	after, err := rawCatalogBytes(rolled.Catalog().Snapshot())
	if err != nil {
		return err
	}
	if !bytes.Equal(before, after) {
		return fmt.Errorf("difftest: rollback left a trace in the catalog for script %q\nbefore:\n%s\nafter:\n%s",
			stmts, before, after)
	}

	// Law 2: commit parity with auto-commit, answers compared statement
	// by statement.
	auto := isql.FromDB(names, rels)
	txn := isql.FromDB(names, rels)
	if err := txn.Begin(); err != nil {
		return err
	}
	for _, sql := range stmts {
		ares, aerr := auto.ExecString(sql)
		tres, terr := txn.ExecString(sql)
		if (aerr == nil) != (terr == nil) {
			return fmt.Errorf("difftest: %q: auto-commit err %v, transactional err %v", sql, aerr, terr)
		}
		if aerr != nil {
			return fmt.Errorf("difftest: %q failed on both paths: %w", sql, aerr)
		}
		if len(ares.Answers) != len(tres.Answers) {
			return fmt.Errorf("difftest: %q: %d auto-commit answers vs %d transactional", sql, len(ares.Answers), len(tres.Answers))
		}
		for i := range ares.Answers {
			if ares.Answers[i].ContentKey() != tres.Answers[i].ContentKey() {
				return fmt.Errorf("difftest: %q: answer %d differs inside the transaction\nauto:\n%s\ntxn:\n%s",
					sql, i, ares.Answers[i], tres.Answers[i])
			}
		}
		if ares.Affected != tres.Affected {
			return fmt.Errorf("difftest: %q: affected %d auto-commit vs %d transactional", sql, ares.Affected, tres.Affected)
		}
	}
	if err := txn.Commit(); err != nil {
		return fmt.Errorf("difftest: committing script %q: %w", stmts, err)
	}
	a, err := normCatalogBytes(auto.Catalog().Snapshot())
	if err != nil {
		return err
	}
	b, err := normCatalogBytes(txn.Catalog().Snapshot())
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("difftest: committed transaction differs from auto-commit for script %q\nauto:\n%s\ntxn:\n%s",
			stmts, a, b)
	}
	return nil
}

// CheckTxnRetry is the conflict-retry differential check: a transaction
// that loses first-committer-wins to a competing commit and is
// automatically re-run (Session.RetryConflicts) must leave the catalog
// byte-identical (content-compared; versions are normalized away) to a
// single-writer session executing the competing statement first and the
// transaction's statements after it — i.e. the retried commit equals the
// serial schedule it logically becomes. The retried run is swept over
// shard counts {1, 4}: on the component-sharded catalog the interloper
// and the transaction touch the same relations, hence the same shards,
// so shard-level validation must still detect the conflict, and the
// retried commit must converge on the same serial schedule whatever the
// shard layout (the persisted form carries none).
func CheckTxnRetry(names []string, rels []*relation.Relation, stmts []string, interloper string) error {
	// Serial reference: interloper first, then the transaction.
	seq := isql.FromDB(names, rels)
	if _, err := seq.ExecString(interloper); err != nil {
		return err
	}
	for _, sql := range stmts {
		if _, err := seq.ExecString(sql); err != nil {
			return fmt.Errorf("difftest: %q in the serial reference: %w", sql, err)
		}
	}
	want, err := normCatalogBytes(seq.Catalog().Snapshot())
	if err != nil {
		return err
	}

	for _, shards := range []int{1, 4} {
		cat := store.FromComplete(names, rels)
		cat.Reshard(shards)
		retried := isql.FromCatalog(cat)
		retried.RetryConflicts = 3
		if err := retried.Begin(); err != nil {
			return err
		}
		for _, sql := range stmts {
			if _, err := retried.ExecString(sql); err != nil {
				return fmt.Errorf("difftest: %q inside the transaction (%d shards): %w", sql, shards, err)
			}
		}
		// A competing writer on the same catalog commits between Begin
		// and Commit, forcing the first-committer-wins loss.
		comp := isql.FromCatalog(retried.Catalog())
		if _, err := comp.ExecString(interloper); err != nil {
			return fmt.Errorf("difftest: interloper %q (%d shards): %w", interloper, shards, err)
		}
		if err := retried.Commit(); err != nil {
			return fmt.Errorf("difftest: conflicted commit did not retry to success for script %q (%d shards): %w", stmts, shards, err)
		}
		got, err := normCatalogBytes(retried.Catalog().Snapshot())
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("difftest: retried commit differs from the serial schedule for script %q after %q at %d shards\nretried:\n%s\nserial:\n%s",
				stmts, interloper, shards, got, want)
		}
	}
	return nil
}

// rawCatalogBytes persists a snapshot as-is (version included).
func rawCatalogBytes(snap *store.Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := store.Save(&buf, snap); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// normCatalogBytes persists a snapshot with the version normalized, so
// states reached by different commit counts compare on content.
func normCatalogBytes(snap *store.Snapshot) ([]byte, error) {
	return rawCatalogBytes(&store.Snapshot{DB: snap.DB, Views: snap.Views})
}
