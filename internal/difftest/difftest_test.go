package difftest

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/isql"
	"worldsetdb/internal/randquery"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
	"worldsetdb/internal/wsdexec"
)

var (
	names   = []string{"R", "S"}
	schemas = []relation.Schema{relation.NewSchema("A", "B"), relation.NewSchema("C")}
)

// TestMain forces the partitioned parallel code paths in the physical
// executor and the inline decoder regardless of input size and core
// count, so the differential runs — especially under -race — exercise
// the worker fan-out and the deterministic merges.
func TestMain(m *testing.M) {
	relation.ForceParts = 3
	os.Exit(m.Run())
}

// TestPaperQueriesAgree pins the three evaluators to one another on the
// paper's running trip-planning pipeline, independent of randomness.
func TestPaperQueriesAgree(t *testing.T) {
	ws := worldset.FromDB([]string{"HFlights"}, []*relation.Relation{datagen.PaperFlights()})
	queries := []wsa.Expr{
		&wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "HFlights"}},
		wsa.NewCert(&wsa.Project{Columns: []string{"Arr"},
			From: &wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "HFlights"}}}),
		wsa.NewPoss(&wsa.Project{Columns: []string{"Arr"},
			From: &wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "HFlights"}}}),
		wsa.NewPossGroup([]string{"Arr"}, []string{"Dep", "Arr"},
			&wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "HFlights"}}),
	}
	for _, q := range queries {
		if err := Check(q, ws); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRandomizedAgreement is the main differential sweep: hundreds of
// randomized well-typed queries over randomized multi-world inputs, all
// three evaluators required to agree world-set-for-world-set.
func TestRandomizedAgreement(t *testing.T) {
	queries, inputs := 250, 2
	if testing.Short() {
		queries = 40
	}
	rng := rand.New(rand.NewSource(20070612))
	gen := randquery.NewQueryGen(rng, names, schemas)
	checked := 0
	for qi := 0; qi < queries; qi++ {
		q := gen.Query(1 + rng.Intn(3))
		for wi := 0; wi < inputs; wi++ {
			ws := datagen.RandomWorldSet(rng, names, schemas, 3, 3, 3)
			if err := Check(q, ws); err != nil {
				t.Fatalf("query %d input %d: %v", qi, wi, err)
			}
			checked++
		}
	}
	if want := queries * inputs; checked != want {
		t.Fatalf("checked %d query/input pairs, want %d", checked, want)
	}
	if !testing.Short() && checked < 500 {
		t.Fatalf("differential sweep too small: %d < 500", checked)
	}
}

// TestParallelMatchesSequential pins the determinism guarantee of the
// parallel executor: with partitioning forced on (TestMain) and off, the
// physical evaluator must produce byte-identical rendered output for the
// same query, not merely equal world-sets.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	gen := randquery.NewQueryGen(rng, names, schemas)
	for qi := 0; qi < 40; qi++ {
		q := gen.Query(1 + rng.Intn(3))
		ws := datagen.RandomWorldSet(rng, names, schemas, 3, 4, 3)
		par := mustPhysical(t, q, ws)
		relation.ForceParts = 1 // sequential
		seq := mustPhysical(t, q, ws)
		relation.ForceParts = 3
		if par != seq {
			t.Fatalf("parallel output differs from sequential for %s\nparallel:\n%s\nsequential:\n%s", q, par, seq)
		}
	}
}

func mustPhysical(t *testing.T, q wsa.Expr, ws *worldset.WorldSet) string {
	t.Helper()
	results := Run(q, ws)
	ph := results[2]
	if ph.Err != nil {
		t.Fatalf("physical eval failed for %s: %v", q, ph.Err)
	}
	return ph.Out.String()
}

// TestRandomizedDecompAgreement is the decomposition-level differential
// sweep backing the factorized engine: hundreds of randomized
// well-typed queries over randomized expandable decompositions
// (components spanning several relations, empty alternatives, certain
// tuples), wsdexec evaluated natively on the decomposition and required
// to render byte-identically to the reference run on the enumeration.
func TestRandomizedDecompAgreement(t *testing.T) {
	queries, inputs := 250, 2
	if testing.Short() {
		queries = 40
	}
	rng := rand.New(rand.NewSource(20070613))
	gen := randquery.NewQueryGen(rng, names, schemas)
	checked := 0
	for qi := 0; qi < queries; qi++ {
		q := gen.Query(1 + rng.Intn(3))
		for wi := 0; wi < inputs; wi++ {
			db := datagen.RandomDecompDB(rng, names, schemas, 3, 3, 2, 3, 2)
			if err := CheckDecomp(q, db); err != nil {
				t.Fatalf("query %d input %d: %v", qi, wi, err)
			}
			checked++
		}
	}
	if want := queries * inputs; checked != want {
		t.Fatalf("checked %d query/input pairs, want %d", checked, want)
	}
	if !testing.Short() && checked < 500 {
		t.Fatalf("decomposition differential sweep too small: %d < 500", checked)
	}
}

// TestRandomizedStoreAgreement is the store-path differential sweep:
// the same scale as the decomposition sweep (500+ query/input pairs),
// but through store.Query — the exact path I-SQL session selects take —
// so the catalog snapshot plumbing and the wsd.Refactor re-factorization
// of every fallback output are held to the byte-identity bar too.
func TestRandomizedStoreAgreement(t *testing.T) {
	queries, inputs := 250, 2
	if testing.Short() {
		queries = 40
	}
	rng := rand.New(rand.NewSource(20070614))
	gen := randquery.NewQueryGen(rng, names, schemas)
	checked := 0
	for qi := 0; qi < queries; qi++ {
		q := gen.Query(1 + rng.Intn(3))
		for wi := 0; wi < inputs; wi++ {
			db := datagen.RandomDecompDB(rng, names, schemas, 3, 3, 2, 3, 2)
			if err := CheckStore(q, db); err != nil {
				t.Fatalf("query %d input %d: %v", qi, wi, err)
			}
			checked++
		}
	}
	if want := queries * inputs; checked != want {
		t.Fatalf("checked %d query/input pairs, want %d", checked, want)
	}
	if !testing.Short() && checked < 500 {
		t.Fatalf("store differential sweep too small: %d < 500", checked)
	}
}

// TestWSDXParallelMatchesSequential pins the determinism guarantee of
// the factorized engine's component-parallel fan-out: with partitioning
// forced on (TestMain) and off, evaluating the same query on the same
// decomposition must produce byte-identical rendered output.
func TestWSDXParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	gen := randquery.NewQueryGen(rng, names, schemas)
	for qi := 0; qi < 40; qi++ {
		q := gen.Query(1 + rng.Intn(3))
		db := datagen.RandomDecompDB(rng, names, schemas, 3, 4, 2, 3, 2)
		par := mustWSDX(t, q, db)
		relation.ForceParts = 1 // sequential
		seq := mustWSDX(t, q, db)
		relation.ForceParts = 3
		if par != seq {
			t.Fatalf("wsdexec parallel output differs from sequential for %s\nparallel:\n%s\nsequential:\n%s", q, par, seq)
		}
	}
}

func mustWSDX(t *testing.T, q wsa.Expr, db *wsd.DecompDB) string {
	t.Helper()
	out, _, err := wsdexec.Eval(q, db)
	if err != nil {
		t.Fatalf("wsdexec eval failed for %s: %v", q, err)
	}
	ws, err := out.Expand(0)
	if err != nil {
		t.Fatalf("expanding wsdexec result of %s: %v", q, err)
	}
	return ws.String()
}

// seedRS builds the two-table seed database of the SQL-level sweep:
// R(A, B) and S(C) with small integer domains, so repair-by-key group
// sizes — and hence world counts — stay enumerable for the legacy
// comparison session.
func seedRS(rng *rand.Rand) ([]string, []*relation.Relation, []relation.Schema) {
	schemas := []relation.Schema{relation.NewSchema("A", "B"), relation.NewSchema("C")}
	r := relation.New(schemas[0])
	for i := 0; i < 5+rng.Intn(5); i++ {
		r.InsertValues(value.Int(int64(rng.Intn(6))), value.Int(int64(rng.Intn(8))))
	}
	s := relation.New(schemas[1])
	for i := 0; i < 3+rng.Intn(4); i++ {
		s.InsertValues(value.Int(int64(rng.Intn(8))))
	}
	return []string{"R", "S"}, []*relation.Relation{r, s}, schemas
}

// TestRandomizedSQLAgreement is the statement-level differential sweep:
// 500+ generated I-SQL statements — fragment selects, joins,
// group-worlds-by, aggregates (count/sum/min/max, group by) and
// (correlated) subqueries — through the native factorized path, the
// three wsa engines and the legacy evaluator, all required to agree.
// The native session's accounting must additionally show zero
// enumeration fallbacks: fragment statements merge at worst, and the
// out-of-fragment shapes run bounded, never expanding the catalog.
func TestRandomizedSQLAgreement(t *testing.T) {
	scripts, perScript := 56, 8
	if testing.Short() {
		scripts = 8
	}
	rng := rand.New(rand.NewSource(20070616))
	stats := isql.NewExecStats()
	total := 0
	for i := 0; i < scripts; i++ {
		names, rels, schemas := seedRS(rng)
		gen := randquery.NewStmtGen(rng, names, schemas)
		script := []string{gen.CreateUncertain()}
		if rng.Intn(2) == 0 {
			script = append(script, gen.CreateUncertain())
		}
		for j := 0; j < perScript; j++ {
			script = append(script, gen.Select())
		}
		total += len(script)
		if err := CheckSQLScript(names, rels, script, stats); err != nil {
			t.Fatalf("script %d: %v\nscript:\n%s", i, err, strings.Join(script, "\n"))
		}
	}
	if !testing.Short() && total < 500 {
		t.Fatalf("SQL differential sweep too small: %d < 500", total)
	}
	snap := stats.Snapshot()
	if snap.Fallbacks != 0 {
		t.Fatalf("native path hit %d enumeration fallbacks (ops %v)", snap.Fallbacks, snap.FallbackOps)
	}
	if snap.LegacyOps["aggregation"] == 0 || snap.LegacyOps["expression subquery"] == 0 {
		t.Fatalf("sweep did not exercise the out-of-fragment shapes: %+v", snap)
	}
	if snap.Merged == 0 {
		t.Fatalf("sweep did not exercise component merging: %+v", snap)
	}
}

// randTxnStmts generates one chunk of valid I-SQL statements over the
// seed table R(A, B): inserts, tuple-local updates/deletes, and
// world-creating CTAS. Tables created in a chunk are named uniquely per
// chunk and only referenced within it, so a rolled-back chunk leaves
// nothing later statements depend on.
func randTxnStmts(rng *rand.Rand, chunk int) []string {
	n := 1 + rng.Intn(4)
	out := make([]string, 0, n)
	created := ""
	for i := 0; i < n; i++ {
		switch k := rng.Intn(6); {
		case k == 0:
			out = append(out, fmt.Sprintf("insert into R values (%d, %d);", rng.Intn(8), rng.Intn(50)))
		case k == 1:
			out = append(out, fmt.Sprintf("update R set B = B + %d where A = %d;", 1+rng.Intn(9), rng.Intn(8)))
		case k == 2:
			out = append(out, fmt.Sprintf("delete from R where A = %d and B < %d;", rng.Intn(8), rng.Intn(20)))
		case k == 3 && created == "":
			created = fmt.Sprintf("C%d", chunk)
			op := "choice of A"
			if rng.Intn(2) == 0 {
				op = "repair by key A"
			}
			out = append(out, fmt.Sprintf("create table %s as select * from R %s;", created, op))
		case k == 4 && created != "":
			out = append(out, fmt.Sprintf("select possible B from %s;", created))
		default:
			out = append(out, "select certain A from R;")
		}
	}
	return out
}

// seedR builds the seed database for the transactional sweeps.
func seedR(rng *rand.Rand) ([]string, []*relation.Relation) {
	r := relation.New(relation.NewSchema("A", "B"))
	for i := 0; i < 6+rng.Intn(6); i++ {
		r.InsertValues(value.Int(int64(rng.Intn(6))), value.Int(int64(rng.Intn(40))))
	}
	return []string{"R"}, []*relation.Relation{r}
}

// TestRandomizedTxnLaws sweeps CheckTxn over randomized scripts:
// rollback must be byte-invisible and commit must match auto-commit,
// with identical answers along the way.
func TestRandomizedTxnLaws(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 12
	}
	rng := rand.New(rand.NewSource(20260726))
	for i := 0; i < iters; i++ {
		names, rels := seedR(rng)
		stmts := randTxnStmts(rng, i)
		if err := CheckTxn(names, rels, stmts); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

// TestRandomizedInterleavedTxn runs one long session of randomly
// interleaved BEGIN/COMMIT and BEGIN/ROLLBACK chunks against a shared
// catalog and requires the final state byte-identical to a reference
// session that ran only the committed chunks, auto-commit.
func TestRandomizedInterleavedTxn(t *testing.T) {
	iters := 15
	if testing.Short() {
		iters = 4
	}
	rng := rand.New(rand.NewSource(7262026))
	for i := 0; i < iters; i++ {
		names, rels := seedR(rng)
		live := isql.FromDB(names, rels)
		ref := isql.FromDB(names, rels)
		chunks := 3 + rng.Intn(4)
		for c := 0; c < chunks; c++ {
			stmts := randTxnStmts(rng, c)
			commit := rng.Intn(2) == 0
			if _, err := live.ExecString("begin;"); err != nil {
				t.Fatal(err)
			}
			for _, sql := range stmts {
				if _, err := live.ExecString(sql); err != nil {
					t.Fatalf("iteration %d chunk %d %q: %v", i, c, sql, err)
				}
			}
			end := "rollback;"
			if commit {
				end = "commit;"
			}
			if _, err := live.ExecString(end); err != nil {
				t.Fatal(err)
			}
			if commit {
				for _, sql := range stmts {
					if _, err := ref.ExecString(sql); err != nil {
						t.Fatalf("reference %q: %v", sql, err)
					}
				}
			}
		}
		a, err := normCatalogBytes(live.Catalog().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		b, err := normCatalogBytes(ref.Catalog().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("iteration %d: interleaved transactions diverge from committed-only replay\nlive:\n%s\nref:\n%s", i, a, b)
		}
	}
}

// TestRandomizedTxnRetrySweep sweeps CheckTxnRetry over randomized
// scripts: a transaction losing first-committer-wins to an interloper
// and automatically re-run must equal the serial schedule (interloper
// first, then the transaction) byte for byte.
func TestRandomizedTxnRetrySweep(t *testing.T) {
	iters := 40
	if testing.Short() {
		iters = 8
	}
	rng := rand.New(rand.NewSource(5202672))
	for i := 0; i < iters; i++ {
		names, rels := seedR(rng)
		stmts := randTxnStmts(rng, i)
		interloper := fmt.Sprintf("insert into R values (%d, %d);", 90+rng.Intn(8), 900+rng.Intn(90))
		if rng.Intn(3) == 0 {
			interloper = fmt.Sprintf("delete from R where B < %d;", rng.Intn(15))
		}
		if err := CheckTxnRetry(names, rels, stmts, interloper); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}
