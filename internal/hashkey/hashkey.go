// Package hashkey implements the allocation-free FNV-1a hashing that
// underpins tuple hashing across the engine. The evaluators used to key
// every hash table by an injective string encoding of the tuple
// (value.AppendKey joined into a Go string); at scale that allocates one
// string per probe. This package folds the same tagged byte stream into
// a 64-bit FNV-1a state instead, so hot paths hash typed values with no
// intermediate buffers.
//
// A 64-bit digest is not injective, so every consumer that needs exact
// set semantics (package relation's tuple storage, the hash joins in
// package ra, the world-partitioned operators in package physical) keys
// buckets by the digest and verifies candidates with typed value
// comparison. Hashing is an accelerator here, never a proof of equality.
//
// The digest of a value sequence is required to agree with the equality
// induced by value.Compare: two tuples with Compare-equal values fold to
// the same digest (value.Value.Hash feeds the same tagged encoding as
// value.Value.AppendKey). Tests in package value and package relation
// pin this invariant.
package hashkey

const (
	// Offset is the FNV-1a 64-bit offset basis: the initial digest state.
	Offset uint64 = 14695981039346656037
	// prime is the FNV-1a 64-bit prime.
	prime uint64 = 1099511628211
)

// Byte folds one byte into the digest.
func Byte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * prime
}

// Uint64 folds eight bytes (big-endian) into the digest.
func Uint64(h uint64, u uint64) uint64 {
	h = (h ^ (u >> 56)) * prime
	h = (h ^ (u >> 48 & 0xff)) * prime
	h = (h ^ (u >> 40 & 0xff)) * prime
	h = (h ^ (u >> 32 & 0xff)) * prime
	h = (h ^ (u >> 24 & 0xff)) * prime
	h = (h ^ (u >> 16 & 0xff)) * prime
	h = (h ^ (u >> 8 & 0xff)) * prime
	return (h ^ (u & 0xff)) * prime
}

// String folds the bytes of s into the digest without copying.
func String(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime
	}
	return h
}

// Mix folds a finished sub-digest into the digest. Used to combine
// per-element digests order-sensitively (e.g. a tuple of values) or to
// fold canonical per-set digests computed elsewhere.
func Mix(h uint64, sub uint64) uint64 {
	return Uint64(h, sub)
}

// Finalize avalanches a digest (the splitmix64 finalizer). Apply it to
// per-element digests before combining them commutatively (XOR for set
// digests): raw FNV states are too linear for XOR to mix well.
func Finalize(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
