package hashkey

import (
	"hash/fnv"
	"testing"
)

// TestMatchesStdlibFNV pins the fold functions to the stdlib FNV-1a
// implementation: Byte/Uint64/String over a byte stream must equal
// hash/fnv over the same bytes.
func TestMatchesStdlibFNV(t *testing.T) {
	ref := func(bs []byte) uint64 {
		h := fnv.New64a()
		h.Write(bs)
		return h.Sum64()
	}
	if got, want := String(Offset, "hello"), ref([]byte("hello")); got != want {
		t.Fatalf("String: got %x want %x", got, want)
	}
	h := Offset
	for _, b := range []byte("hello") {
		h = Byte(h, b)
	}
	if want := ref([]byte("hello")); h != want {
		t.Fatalf("Byte chain: got %x want %x", h, want)
	}
	u := uint64(0x0102030405060708)
	bs := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if got, want := Uint64(Offset, u), ref(bs); got != want {
		t.Fatalf("Uint64: got %x want %x", got, want)
	}
}

// TestOrderSensitivity: tuples are order-sensitive, so folding "ab" must
// differ from "ba".
func TestOrderSensitivity(t *testing.T) {
	if String(Offset, "ab") == String(Offset, "ba") {
		t.Fatal("FNV-1a should distinguish element order")
	}
	if Mix(Mix(Offset, 1), 2) == Mix(Mix(Offset, 2), 1) {
		t.Fatal("Mix should distinguish sub-digest order")
	}
}
