// Package inline implements the inlined representation of world-sets of
// Definition 5.1: all instances of a relation across worlds are stored
// in one table extended with world-id attributes, together with a world
// table W listing the world ids.
//
// Id attributes carry the relation.IDPrefix ('#') so the id/value split
// of a table is statically known. A table whose schema has no id
// attributes encodes a relation that appears unchanged in every world —
// the refinement used by the optimized translation of §5.3.
package inline

import (
	"fmt"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
)

// WorldAttr is the id attribute used by Encode.
const WorldAttr = "#w"

// WorldTableName is the name under which the world table is registered
// when a representation is loaded into an ra.DB catalog.
const WorldTableName = "$W"

// Repr is an inlined representation T = ⟨R1^T, …, Rk^T, W⟩.
type Repr struct {
	// Names are the represented relation names R1, …, Rk.
	Names []string
	// Tables hold the inlined instances; each schema is Ui ∪ Vi with
	// Vi ⊆ attrs(World) the table's id attributes.
	Tables []*relation.Relation
	// World is the world table W over the id attributes.
	World *relation.Relation
}

// Encode builds the inlined representation of a world-set, assigning
// integer world ids 1..n under the single id attribute "#w".
func Encode(ws *worldset.WorldSet) *Repr {
	names := append([]string{}, ws.Names()...)
	schemas := ws.Schemas()
	tables := make([]*relation.Relation, len(names))
	for i, s := range schemas {
		tables[i] = relation.New(s.Concat(relation.Schema{WorldAttr}))
	}
	world := relation.New(relation.Schema{WorldAttr})
	for wi, w := range ws.Worlds() {
		id := value.Int(int64(wi + 1))
		world.InsertDistinct(relation.Tuple{id})
		for ri, r := range w {
			// Rows are distinct within a world and carry distinct ids
			// across worlds, so no membership scan is needed.
			r.Each(func(t relation.Tuple) {
				tables[ri].InsertDistinct(append(t.Clone(), id))
			})
		}
	}
	return &Repr{Names: names, Tables: tables, World: world}
}

// Decode computes rep(T): the represented set of possible worlds. For
// each tuple w of the world table, each relation is the set of value
// tuples whose id attributes match the corresponding components of w;
// tables without id attributes are copied into every world. Several ids
// may decode to the same world; set semantics collapses them.
//
// Each table is bucketed once by its id projection (instead of being
// rescanned per world, which made decoding quadratic), and the worlds
// are then assembled in parallel chunks; adding them to the result
// world-set stays sequential and follows the deterministic world-table
// order, and the world-set's set semantics collapses duplicates exactly
// as before.
func (t *Repr) Decode() (*worldset.WorldSet, error) {
	wSchema := t.World.Schema()
	valueSchemas := make([]relation.Schema, len(t.Tables))
	idIdxWorld := make([][]int, len(t.Tables)) // positions of table id attrs in W
	valIdx := make([][]int, len(t.Tables))
	perWorld := make([]*relation.GroupMap, len(t.Tables)) // table rows by id projection
	for i, tbl := range t.Tables {
		s := tbl.Schema()
		ids := s.IDAttrs()
		vals := s.ValueAttrs()
		valueSchemas[i] = vals
		idIdxTable, err := s.Indexes(ids)
		if err != nil {
			return nil, err
		}
		if idIdxWorld[i], err = wSchema.Indexes(ids); err != nil {
			return nil, fmt.Errorf("inline: table %s has id attribute missing from world table: %w", t.Names[i], err)
		}
		if valIdx[i], err = s.Indexes(vals); err != nil {
			return nil, err
		}
		perWorld[i] = relation.NewGroupMap(idIdxTable, tbl.Len())
		tbl.Each(func(tup relation.Tuple) { perWorld[i].Add(tup) })
	}
	// Build each distinct id-group's decoded relation once, in parallel
	// chunks, and share the instance across every world that selects it.
	// A table without id attributes has a single group, so its decoded
	// relation is built once instead of once per world; relations are
	// immutable once shared, so the sharing is safe (the reference
	// evaluator shares instances across worlds the same way).
	decoded := make([]map[*relation.Group]*relation.Relation, len(t.Tables))
	empty := make([]*relation.Relation, len(t.Tables))
	for i := range t.Tables {
		groups := perWorld[i].Groups()
		rels := make([]*relation.Relation, len(groups))
		vIdx := valIdx[i]
		schema := valueSchemas[i]
		relation.ParallelChunks(len(groups), relation.NumParts(t.Tables[i].Len()), func(_, lo, hi int) {
			for g := lo; g < hi; g++ {
				out := relation.New(schema)
				// Rows of one group are distinct after dropping the
				// shared id columns: they differ in value columns.
				for _, tup := range groups[g].Rows {
					out.InsertDistinct(tup.Project(vIdx))
				}
				// Warm the memoized content hash off the main goroutine:
				// world deduplication reads it for every world.
				_ = out.ContentHash()
				rels[g] = out
			}
		})
		m := make(map[*relation.Group]*relation.Relation, len(groups))
		for g, grp := range groups {
			m[grp] = rels[g]
		}
		decoded[i] = m
		empty[i] = relation.New(schema)
	}
	ws := worldset.New(t.Names, valueSchemas)
	for _, w := range t.World.Tuples() {
		world := make(worldset.World, len(t.Tables))
		for i := range t.Tables {
			if grp := perWorld[i].Get(w, idIdxWorld[i]); grp != nil {
				world[i] = decoded[i][grp]
			} else {
				world[i] = empty[i]
			}
		}
		ws.Add(world)
	}
	return ws, nil
}

// NumWorlds returns the number of world ids in the world table (distinct
// representations of possibly equal worlds).
func (t *Repr) NumWorlds() int { return t.World.Len() }

// String renders the representation in the style of Figure 4(a).
func (t *Repr) String() string {
	out := ""
	for i, tbl := range t.Tables {
		out += tbl.Render(t.Names[i])
	}
	out += t.World.Render("W")
	return out
}
