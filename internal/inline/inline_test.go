package inline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
)

// TestFigure4RoundTrip reproduces Figure 4: the inlined representation
// with R^T = {(1,1), (3,1), (1,2)} and W^T = {1, 2, 3} encodes exactly
// the three worlds R1 = {1, 3}, R2 = {1}, R3 = {} (world 3 is empty,
// which the world table can express even though R^T never mentions id 3).
func TestFigure4RoundTrip(t *testing.T) {
	rt := relation.New(relation.NewSchema("A", "#w"))
	rt.InsertValues(value.Int(1), value.Int(1))
	rt.InsertValues(value.Int(3), value.Int(1))
	rt.InsertValues(value.Int(1), value.Int(2))
	wt := relation.New(relation.NewSchema("#w"))
	wt.InsertValues(value.Int(1))
	wt.InsertValues(value.Int(2))
	wt.InsertValues(value.Int(3))
	repr := &Repr{Names: []string{"R"}, Tables: []*relation.Relation{rt}, World: wt}

	ws, err := repr.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if ws.Len() != 3 {
		t.Fatalf("decoded %d worlds, want 3 (Figure 4(b))", ws.Len())
	}
	schemaA := relation.NewSchema("A")
	want := worldset.New([]string{"R"}, []relation.Schema{schemaA})
	want.Add(worldset.World{relation.FromRows(schemaA,
		relation.Tuple{value.Int(1)}, relation.Tuple{value.Int(3)})})
	want.Add(worldset.World{relation.FromRows(schemaA, relation.Tuple{value.Int(1)})})
	want.Add(worldset.World{relation.New(schemaA)})
	if !ws.Equal(want) {
		t.Fatalf("decoded world-set differs from Figure 4(b):\n%s", ws)
	}
}

// TestEncodeDecodeIdentity checks rep(Encode(A)) = A on the paper's
// world-sets and on random ones.
func TestEncodeDecodeIdentity(t *testing.T) {
	schema := relation.NewSchema("Dep", "Arr")
	ws := worldset.New([]string{"Flights"}, []relation.Schema{schema})
	fra := relation.FromRows(schema,
		relation.Tuple{value.Str("FRA"), value.Str("BCN")},
		relation.Tuple{value.Str("FRA"), value.Str("ATL")})
	par := relation.FromRows(schema,
		relation.Tuple{value.Str("PAR"), value.Str("ATL")},
		relation.Tuple{value.Str("PAR"), value.Str("BCN")})
	ws.Add(worldset.World{fra})
	ws.Add(worldset.World{par})

	got, err := Encode(ws).Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ws) {
		t.Fatalf("round trip failed:\n%s\nvs\n%s", got, ws)
	}
}

// TestEncodeDecodeProperty is the property-based version over random
// world-sets with two relations.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ws := datagen.RandomWorldSet(rng,
			[]string{"R", "S"},
			[]relation.Schema{relation.NewSchema("A", "B"), relation.NewSchema("C")},
			4, 5, 6)
		got, err := Encode(ws).Decode()
		if err != nil {
			return false
		}
		return got.Equal(ws)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeEmptyWorldSet checks that the empty world-set encodes as an
// empty world table (the paper: "The empty world-set is encoded by an
// empty world table").
func TestEncodeEmptyWorldSet(t *testing.T) {
	ws := worldset.New([]string{"R"}, []relation.Schema{relation.NewSchema("A")})
	repr := Encode(ws)
	if repr.World.Len() != 0 {
		t.Fatalf("world table should be empty")
	}
	back, err := repr.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Fatalf("decoded world-set should be empty")
	}
}

// TestDecodeIDFreeTable checks the §5.3 refinement: a table without id
// attributes decodes into every world.
func TestDecodeIDFreeTable(t *testing.T) {
	rt := relation.New(relation.NewSchema("A", "#w"))
	rt.InsertValues(value.Int(1), value.Int(1))
	rt.InsertValues(value.Int(2), value.Int(2))
	st := relation.New(relation.NewSchema("B"))
	st.InsertValues(value.Int(9))
	wt := relation.New(relation.NewSchema("#w"))
	wt.InsertValues(value.Int(1))
	wt.InsertValues(value.Int(2))
	repr := &Repr{Names: []string{"R", "S"}, Tables: []*relation.Relation{rt, st}, World: wt}
	ws, err := repr.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if ws.Len() != 2 {
		t.Fatalf("want 2 worlds, got %d", ws.Len())
	}
	for _, w := range ws.Worlds() {
		if w[1].Len() != 1 {
			t.Fatalf("S must appear in every world")
		}
	}
}
