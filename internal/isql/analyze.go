package isql

import (
	"fmt"
	"strings"

	"worldsetdb/internal/relation"
)

// columnNotFoundError reports a column reference that resolves in no
// scope.
type columnNotFoundError struct{ name string }

func (e *columnNotFoundError) Error() string {
	return fmt.Sprintf("isql: unknown column %q", e.name)
}

// selectInfo is the static analysis of one select statement.
type selectInfo struct {
	// joined is the schema of the product of the from items, with
	// alias-qualified attribute names.
	joined relation.Schema
	// fromSchemas are the per-item qualified schemas.
	fromSchemas []relation.Schema
	// divSchema is the divisor item's qualified schema (nil without
	// divide-by).
	divSchema relation.Schema
	// out is the output schema of the select.
	out relation.Schema
	// outExprs are the expressions computing each output column (nil
	// for a star select, which copies the joined row).
	outExprs []Expr
	// aggregated reports whether grouping/aggregation applies.
	aggregated bool
	// correlated marks subqueries (appearing in this select's
	// expressions) that reference enclosing scopes and therefore must be
	// evaluated per tuple.
	correlated map[*SelectStmt]bool
	// uncorrelated lists subqueries that can be lifted: evaluated once
	// against the world-set before tuple processing.
	uncorrelated []*SelectStmt
}

// analyzeSelect resolves names and computes schemas. scopes holds the
// schemas of enclosing selects, innermost first; resolution tries the
// select's own joined schema first, then the scopes outward.
func (s *Session) analyzeSelect(sel *SelectStmt, names []string, schemas []relation.Schema, scopes []relation.Schema) (*selectInfo, error) {
	info := &selectInfo{correlated: map[*SelectStmt]bool{}}

	// From items.
	for _, item := range sel.From {
		fs, err := s.fromItemSchema(item, names, schemas)
		if err != nil {
			return nil, err
		}
		info.fromSchemas = append(info.fromSchemas, fs)
		info.joined = append(info.joined, fs...)
	}
	if dup := firstDup(info.joined); dup != "" {
		return nil, fmt.Errorf("isql: ambiguous attribute %q in from clause (use aliases)", dup)
	}
	if sel.Divide != nil {
		ds, err := s.fromItemSchema(sel.Divide.Item, names, schemas)
		if err != nil {
			return nil, err
		}
		info.divSchema = ds
	}

	innerScopes := append([]relation.Schema{info.joined}, scopes...)

	// Where clause.
	if sel.Where != nil {
		if err := s.checkExpr(sel.Where, info, innerScopes, names, schemas); err != nil {
			return nil, err
		}
	}
	if sel.Divide != nil {
		// The ON condition sees the joined schema plus the divisor.
		divScopes := append([]relation.Schema{info.joined.Concat(info.divSchema)}, scopes...)
		if err := s.checkExpr(sel.Divide.On, info, divScopes, names, schemas); err != nil {
			return nil, err
		}
	}

	// Aggregation.
	info.aggregated = len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		if containsAgg(it.Expr) {
			info.aggregated = true
		}
	}
	if sel.Star && info.aggregated {
		return nil, fmt.Errorf("isql: select * cannot be combined with aggregation")
	}
	if sel.Divide != nil && info.aggregated {
		return nil, fmt.Errorf("isql: divide by cannot be combined with aggregation")
	}

	// Output schema.
	if sel.Star {
		info.out = dequalify(info.joined)
	} else {
		seen := map[string]bool{}
		for i, it := range sel.Items {
			if err := s.checkExpr(it.Expr, info, innerScopes, names, schemas); err != nil {
				return nil, err
			}
			name := outputName(it, i)
			if seen[name] {
				return nil, fmt.Errorf("isql: duplicate output column %q", name)
			}
			seen[name] = true
			info.out = append(info.out, name)
			info.outExprs = append(info.outExprs, it.Expr)
		}
	}

	// Group-by, choice-of, repair-by-key and group-worlds-by attributes
	// all resolve against the joined schema: per §3's order of
	// evaluation, the world-manipulating operators apply to the
	// where-filtered product, before the select list projects.
	for _, refs := range [][]ColumnRef{sel.GroupBy, sel.ChoiceOf, sel.RepairKey} {
		for _, r := range refs {
			if info.joined.Index(r.Full()) < 0 {
				return nil, &columnNotFoundError{name: r.Full()}
			}
		}
	}
	if gw := sel.GroupWorlds; gw != nil {
		for _, r := range gw.Attrs {
			if info.joined.Index(r.Full()) < 0 {
				return nil, &columnNotFoundError{name: r.Full()}
			}
		}
		if sel.Close == CloseNone {
			return nil, fmt.Errorf("isql: group worlds by requires select possible or select certain")
		}
	}
	return info, nil
}

// fromItemSchema computes a from item's schema with alias-qualified
// names.
func (s *Session) fromItemSchema(item FromItem, names []string, schemas []relation.Schema) (relation.Schema, error) {
	var base relation.Schema
	if item.Sub != nil {
		sub, err := s.analyzeSelect(item.Sub, names, schemas, nil)
		if err != nil {
			return nil, err
		}
		base = sub.out
	} else if view, ok := s.views[item.Table]; ok {
		sub, err := s.analyzeSelect(view, names, schemas, nil)
		if err != nil {
			return nil, err
		}
		base = sub.out
	} else {
		found := false
		for i, n := range names {
			if n == item.Table {
				base = schemas[i]
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("isql: unknown relation %q", item.Table)
		}
	}
	alias := item.name()
	out := make(relation.Schema, len(base))
	for i, a := range base {
		out[i] = alias + "." + unqualified(a)
	}
	return out, nil
}

// checkExpr resolves the expression's column references and classifies
// its subqueries as correlated or liftable.
func (s *Session) checkExpr(e Expr, info *selectInfo, scopes []relation.Schema, names []string, schemas []relation.Schema) error {
	switch n := e.(type) {
	case *LitExpr:
		return nil
	case *ParamExpr:
		// Valid in a prepared statement: analysis sees the unbound tree
		// when the plan is compiled once with parameter slots. Executing
		// without binding still fails, at evaluation time.
		return nil
	case *ColExpr:
		for _, sc := range scopes {
			if sc.Index(n.Ref.Full()) >= 0 {
				return nil
			}
		}
		return &columnNotFoundError{name: n.Ref.Full()}
	case *BinExpr:
		if err := s.checkExpr(n.L, info, scopes, names, schemas); err != nil {
			return err
		}
		return s.checkExpr(n.R, info, scopes, names, schemas)
	case *LogicExpr:
		if err := s.checkExpr(n.L, info, scopes, names, schemas); err != nil {
			return err
		}
		return s.checkExpr(n.R, info, scopes, names, schemas)
	case *NotExpr:
		return s.checkExpr(n.E, info, scopes, names, schemas)
	case *AggExpr:
		if n.Arg != nil {
			return s.checkExpr(n.Arg, info, scopes, names, schemas)
		}
		return nil
	case *InExpr:
		if err := s.checkExpr(n.Left, info, scopes, names, schemas); err != nil {
			return err
		}
		return s.classifySubquery(n.Sub, info, scopes, names, schemas)
	case *ExistsExpr:
		return s.classifySubquery(n.Sub, info, scopes, names, schemas)
	case *SubqueryExpr:
		return s.classifySubquery(n.Sub, info, scopes, names, schemas)
	}
	return fmt.Errorf("isql: unsupported expression %T", e)
}

// classifySubquery analyzes a nested select in expression position and
// records whether it is correlated (references an enclosing scope).
func (s *Session) classifySubquery(sub *SelectStmt, info *selectInfo, scopes []relation.Schema, names []string, schemas []relation.Schema) error {
	// First try to analyze with no outer scopes: success means every
	// reference resolves locally — the subquery can be lifted.
	if _, err := s.analyzeSelect(sub, names, schemas, nil); err == nil {
		info.uncorrelated = append(info.uncorrelated, sub)
		return nil
	} else if _, ok := unwrapColumnNotFound(err); !ok {
		return err
	}
	// Retry with the enclosing scopes: success means correlated.
	if _, err := s.analyzeSelect(sub, names, schemas, scopes); err != nil {
		return err
	}
	if createsWorlds(s, sub) {
		return fmt.Errorf("isql: correlated subquery (%s) cannot use choice-of or repair-by-key", sub)
	}
	info.correlated[sub] = true
	return nil
}

func unwrapColumnNotFound(err error) (*columnNotFoundError, bool) {
	for err != nil {
		if c, ok := err.(*columnNotFoundError); ok {
			return c, true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return nil, false
		}
		err = u.Unwrap()
	}
	return nil, false
}

// createsWorlds reports whether evaluating the select can change the
// world count (choice-of or repair-by-key anywhere in its tree,
// including views).
func createsWorlds(s *Session, sel *SelectStmt) bool {
	if len(sel.ChoiceOf) > 0 || len(sel.RepairKey) > 0 {
		return true
	}
	for _, f := range sel.From {
		if f.Sub != nil && createsWorlds(s, f.Sub) {
			return true
		}
		if f.Sub == nil {
			if v, ok := s.views[f.Table]; ok && createsWorlds(s, v) {
				return true
			}
		}
	}
	if sel.Divide != nil {
		d := sel.Divide.Item
		if d.Sub != nil && createsWorlds(s, d.Sub) {
			return true
		}
		if d.Sub == nil {
			if v, ok := s.views[d.Table]; ok && createsWorlds(s, v) {
				return true
			}
		}
	}
	var exprHas func(Expr) bool
	exprHas = func(e Expr) bool {
		switch n := e.(type) {
		case *BinExpr:
			return exprHas(n.L) || exprHas(n.R)
		case *LogicExpr:
			return exprHas(n.L) || exprHas(n.R)
		case *NotExpr:
			return exprHas(n.E)
		case *AggExpr:
			return n.Arg != nil && exprHas(n.Arg)
		case *InExpr:
			return createsWorlds(s, n.Sub)
		case *ExistsExpr:
			return createsWorlds(s, n.Sub)
		case *SubqueryExpr:
			return createsWorlds(s, n.Sub)
		}
		return false
	}
	if sel.Where != nil && exprHas(sel.Where) {
		return true
	}
	for _, it := range sel.Items {
		if exprHas(it.Expr) {
			return true
		}
	}
	return false
}

func containsAgg(e Expr) bool {
	switch n := e.(type) {
	case *AggExpr:
		return true
	case *BinExpr:
		return containsAgg(n.L) || containsAgg(n.R)
	case *LogicExpr:
		return containsAgg(n.L) || containsAgg(n.R)
	case *NotExpr:
		return containsAgg(n.E)
	}
	return false
}

func unqualified(name string) string {
	if i := strings.LastIndex(name, "."); i >= 0 {
		return name[i+1:]
	}
	return name
}

// dequalify strips qualifiers from attribute names where the result
// stays unambiguous, matching the paper's rendering of select * results.
func dequalify(s relation.Schema) relation.Schema {
	counts := map[string]int{}
	for _, n := range s {
		counts[unqualified(n)]++
	}
	out := make(relation.Schema, len(s))
	for i, n := range s {
		if counts[unqualified(n)] == 1 {
			out[i] = unqualified(n)
		} else {
			out[i] = n
		}
	}
	return out
}

func outputName(it SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*ColExpr); ok {
		return c.Ref.Name
	}
	if a, ok := it.Expr.(*AggExpr); ok {
		return a.Fn
	}
	return fmt.Sprintf("col%d", i+1)
}

func firstDup(s relation.Schema) string {
	seen := map[string]bool{}
	for _, n := range s {
		if seen[n] {
			return n
		}
		seen[n] = true
	}
	return ""
}
