package isql

import (
	"fmt"
	"strings"

	"worldsetdb/internal/value"
)

// CloseMode is the optional possible/certain closing of a select.
type CloseMode int

// Closing modes.
const (
	CloseNone CloseMode = iota
	ClosePossible
	CloseCertain
)

func (m CloseMode) String() string {
	switch m {
	case ClosePossible:
		return "possible"
	case CloseCertain:
		return "certain"
	}
	return ""
}

// Statement is any I-SQL statement.
type Statement interface {
	stmt()
	String() string
}

// ColumnRef names a column, optionally qualified by a table alias.
type ColumnRef struct {
	Qualifier string
	Name      string
}

// Full renders the reference as written.
func (c ColumnRef) Full() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// Expr is a scalar or boolean expression.
type Expr interface {
	exprNode()
	String() string
}

// ColExpr references a column.
type ColExpr struct{ Ref ColumnRef }

// LitExpr is a literal constant.
type LitExpr struct{ Val value.Value }

// BinExpr is a binary arithmetic or comparison expression
// (+ - * / = != < <= > >=).
type BinExpr struct {
	Op   string
	L, R Expr
}

// LogicExpr is AND/OR.
type LogicExpr struct {
	Op   string // "and" | "or"
	L, R Expr
}

// NotExpr negates a boolean expression.
type NotExpr struct{ E Expr }

// InExpr is `left [NOT] IN (subquery)`.
type InExpr struct {
	Left Expr
	Sub  *SelectStmt
	Neg  bool
}

// ExistsExpr is `[NOT] EXISTS (subquery)`.
type ExistsExpr struct {
	Sub *SelectStmt
	Neg bool
}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct{ Sub *SelectStmt }

// AggExpr is an aggregate call: SUM, COUNT, AVG, MIN, MAX. Star is
// COUNT(*).
type AggExpr struct {
	Fn   string
	Arg  Expr // nil when Star
	Star bool
}

func (*ColExpr) exprNode()      {}
func (*LitExpr) exprNode()      {}
func (*BinExpr) exprNode()      {}
func (*LogicExpr) exprNode()    {}
func (*NotExpr) exprNode()      {}
func (*InExpr) exprNode()       {}
func (*ExistsExpr) exprNode()   {}
func (*SubqueryExpr) exprNode() {}
func (*AggExpr) exprNode()      {}

func (e *ColExpr) String() string { return e.Ref.Full() }
func (e *LitExpr) String() string { return renderLiteral(e.Val) }

// exprPrec returns the rendering precedence of an expression (higher
// binds tighter), mirroring the parser's grammar so that String output
// re-parses to the same tree: or < and < not < comparisons < additive
// < multiplicative < atoms.
func exprPrec(e Expr) int {
	switch n := e.(type) {
	case *LogicExpr:
		if n.Op == "or" {
			return 1
		}
		return 2
	case *NotExpr:
		return 3
	case *BinExpr:
		switch n.Op {
		case "+", "-":
			return 5
		case "*", "/":
			return 6
		}
		return 4 // comparisons
	case *InExpr, *ExistsExpr:
		return 4 // condition-level: needs parens as a comparison operand
	}
	return 7 // atoms: columns, literals, aggregates, subqueries
}

func (e *BinExpr) String() string {
	p := exprPrec(e)
	l := e.L.String()
	// The grammar parses one comparison per level, so a comparison (or
	// in/exists) operand of a comparison needs parentheses on either
	// side; arithmetic needs them only for looser operands on the left
	// (left-associative re-parse keeps `A - B - C` as written).
	if lp := exprPrec(e.L); lp < p || (lp == p && p == 4) {
		l = "(" + l + ")"
	}
	r := e.R.String()
	// A right operand binding no tighter than the operator needs
	// parentheses: `X * (0 - 2)`, `A - (B - C)`, `X = (Y = Z)`.
	if rp := exprPrec(e.R); rp <= p {
		r = "(" + r + ")"
	}
	return fmt.Sprintf("%s %s %s", l, e.Op, r)
}
func (e *LogicExpr) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
func (e *NotExpr) String() string   { return fmt.Sprintf("not (%s)", e.E) }
func (e *InExpr) String() string {
	neg := ""
	if e.Neg {
		neg = "not "
	}
	return fmt.Sprintf("%s %sin (%s)", e.Left, neg, e.Sub)
}
func (e *ExistsExpr) String() string {
	neg := ""
	if e.Neg {
		neg = "not "
	}
	return fmt.Sprintf("%sexists (%s)", neg, e.Sub)
}
func (e *SubqueryExpr) String() string { return "(" + e.Sub.String() + ")" }
func (e *AggExpr) String() string {
	if e.Star {
		return e.Fn + "(*)"
	}
	return fmt.Sprintf("%s(%s)", e.Fn, e.Arg)
}

// SelectItem is one output column: an expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// FromItem is a base table or derived table with an optional alias.
type FromItem struct {
	Table string      // base table name if Sub is nil
	Sub   *SelectStmt // derived table
	Alias string
}

func (f FromItem) name() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Table
}

// GroupWorldsClause is the group-worlds-by condition: either a subquery
// (worlds producing the same answer group together) or an attribute
// list, which abbreviates the projection query (§3).
type GroupWorldsClause struct {
	Query *SelectStmt
	Attrs []ColumnRef
}

// DivideClause is the division extension used in §2's trip-planning
// discussion: `... divide by <from-item> on <cond>`.
type DivideClause struct {
	Item FromItem
	On   Expr
}

// SelectStmt is the Figure 1 select statement.
type SelectStmt struct {
	Close       CloseMode
	Star        bool
	Items       []SelectItem
	From        []FromItem
	Divide      *DivideClause
	Where       Expr
	GroupBy     []ColumnRef
	ChoiceOf    []ColumnRef
	RepairKey   []ColumnRef
	GroupWorlds *GroupWorldsClause
}

func (*SelectStmt) stmt() {}

func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("select ")
	if s.Close != CloseNone {
		b.WriteString(s.Close.String() + " ")
	}
	if s.Star {
		b.WriteString("*")
	} else {
		parts := make([]string, len(s.Items))
		for i, it := range s.Items {
			parts[i] = it.Expr.String()
			if it.Alias != "" {
				parts[i] += " as " + it.Alias
			}
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteString(" from ")
	fparts := make([]string, len(s.From))
	for i, f := range s.From {
		if f.Sub != nil {
			fparts[i] = "(" + f.Sub.String() + ")"
		} else {
			fparts[i] = f.Table
		}
		if f.Alias != "" {
			fparts[i] += " as " + f.Alias
		}
	}
	b.WriteString(strings.Join(fparts, ", "))
	if s.Divide != nil {
		if s.Divide.Item.Sub != nil {
			fmt.Fprintf(&b, " divide by (%s)", s.Divide.Item.Sub)
		} else {
			fmt.Fprintf(&b, " divide by %s", s.Divide.Item.Table)
		}
		if s.Divide.Item.Alias != "" {
			b.WriteString(" as " + s.Divide.Item.Alias)
		}
		fmt.Fprintf(&b, " on %s", s.Divide.On)
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " where %s", s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" group by " + joinRefs(s.GroupBy))
	}
	if len(s.ChoiceOf) > 0 {
		b.WriteString(" choice of " + joinRefs(s.ChoiceOf))
	}
	if len(s.RepairKey) > 0 {
		b.WriteString(" repair by key " + joinRefs(s.RepairKey))
	}
	if s.GroupWorlds != nil {
		if s.GroupWorlds.Query != nil {
			fmt.Fprintf(&b, " group worlds by (%s)", s.GroupWorlds.Query)
		} else {
			b.WriteString(" group worlds by " + joinRefs(s.GroupWorlds.Attrs))
		}
	}
	return b.String()
}

func joinRefs(refs []ColumnRef) string {
	parts := make([]string, len(refs))
	for i, r := range refs {
		parts[i] = r.Full()
	}
	return strings.Join(parts, ", ")
}

// InsertStmt inserts literal rows into a relation, in every world.
// In a prepared statement, cells may be $N parameter placeholders:
// Params, when non-nil, parallels Rows with the 1-based parameter
// number per cell (0 = the literal in Rows is real). EXECUTE binds the
// placeholders before execution.
type InsertStmt struct {
	Table  string
	Rows   [][]value.Value
	Params [][]int
}

func (*InsertStmt) stmt() {}
func (s *InsertStmt) String() string {
	rows := make([]string, len(s.Rows))
	for i, row := range s.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			if s.Params != nil && s.Params[i][j] > 0 {
				cells[j] = fmt.Sprintf("$%d", s.Params[i][j])
			} else {
				cells[j] = renderLiteral(v)
			}
		}
		rows[i] = "(" + strings.Join(cells, ", ") + ")"
	}
	return fmt.Sprintf("insert into %s values %s", s.Table, strings.Join(rows, ", "))
}

// DeleteStmt deletes matching tuples in every world.
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}
func (s *DeleteStmt) String() string {
	if s.Where == nil {
		return "delete from " + s.Table
	}
	return fmt.Sprintf("delete from %s where %s", s.Table, s.Where)
}

// SetClause is one col = expr assignment of an update.
type SetClause struct {
	Col  ColumnRef
	Expr Expr
}

// UpdateStmt updates matching tuples in every world.
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr
}

func (*UpdateStmt) stmt() {}
func (s *UpdateStmt) String() string {
	sets := make([]string, len(s.Sets))
	for i, sc := range s.Sets {
		sets[i] = sc.Col.Full() + " = " + sc.Expr.String()
	}
	out := fmt.Sprintf("update %s set %s", s.Table, strings.Join(sets, ", "))
	if s.Where != nil {
		out += " where " + s.Where.String()
	}
	return out
}

// CreateViewStmt registers a named view.
type CreateViewStmt struct {
	Name  string
	Query *SelectStmt
}

func (*CreateViewStmt) stmt() {}
func (s *CreateViewStmt) String() string {
	return "create view " + s.Name + " as " + s.Query.String()
}

// CreateTableStmt creates an empty base relation (untyped columns, as in
// the paper's abstract relational model).
type CreateTableStmt struct {
	Name    string
	Columns []string
}

func (*CreateTableStmt) stmt() {}
func (s *CreateTableStmt) String() string {
	return "create table " + s.Name + " (" + strings.Join(s.Columns, ", ") + ")"
}

// CreateTableAsStmt materializes a query's answer as a new base
// relation in every world — the mechanism behind the paper's
// step-by-step scenarios (U ← select …). Unlike a view, the worlds
// created by the query (choice-of, repair-by-key) become part of the
// session's world-set.
type CreateTableAsStmt struct {
	Name  string
	Query *SelectStmt
}

func (*CreateTableAsStmt) stmt() {}
func (s *CreateTableAsStmt) String() string {
	return "create table " + s.Name + " as " + s.Query.String()
}

// DropTableStmt removes a base relation from every world.
type DropTableStmt struct{ Name string }

func (*DropTableStmt) stmt()            {}
func (s *DropTableStmt) String() string { return "drop table " + s.Name }
