package isql

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"worldsetdb/internal/value"
)

// Transaction-control and prepared-statement AST nodes. BEGIN opens a
// staged transaction over one private staging snapshot; statements
// inside it are invisible to other sessions until COMMIT publishes them
// as one catalog version (ROLLBACK discards them). PREPARE registers a
// parsed statement — with optional $1..$N parameter placeholders —
// under a name in the session's plan cache; EXECUTE binds arguments and
// runs it, reusing the cached compiled plan when the statement is a
// zero-parameter select in the clean fragment.

// BeginStmt opens a transaction.
type BeginStmt struct{}

func (*BeginStmt) stmt()            {}
func (s *BeginStmt) String() string { return "begin" }

// CommitStmt atomically publishes the open transaction.
type CommitStmt struct{}

func (*CommitStmt) stmt()            {}
func (s *CommitStmt) String() string { return "commit" }

// RollbackStmt discards the open transaction.
type RollbackStmt struct{}

func (*RollbackStmt) stmt()            {}
func (s *RollbackStmt) String() string { return "rollback" }

// PrepareStmt registers Stmt under Name: `prepare name as <statement>`.
type PrepareStmt struct {
	Name string
	Stmt Statement
}

func (*PrepareStmt) stmt() {}
func (s *PrepareStmt) String() string {
	return "prepare " + s.Name + " as " + s.Stmt.String()
}

// ExecuteStmt runs a prepared statement with bound arguments:
// `execute name` or `execute name(arg, ...)`.
type ExecuteStmt struct {
	Name string
	Args []value.Value
}

func (*ExecuteStmt) stmt() {}
func (s *ExecuteStmt) String() string {
	if len(s.Args) == 0 {
		return "execute " + s.Name
	}
	cells := make([]string, len(s.Args))
	for i, v := range s.Args {
		cells[i] = renderLiteral(v)
	}
	return fmt.Sprintf("execute %s(%s)", s.Name, strings.Join(cells, ", "))
}

// ParamExpr is a $N placeholder (1-based) inside a prepared statement.
// It must be bound by EXECUTE before the statement runs; analysis and
// evaluation reject unbound parameters.
type ParamExpr struct{ N int }

func (*ParamExpr) exprNode()        {}
func (e *ParamExpr) String() string { return fmt.Sprintf("$%d", e.N) }

// renderLiteral renders a value as I-SQL literal text that re-parses to
// the same value — the invariant WAL replay and view storage depend on
// (statements persist as their String() rendering). Strings double
// embedded quotes (SQL convention, understood by the lexer); floats
// render in plain decimal notation because the lexer has no exponent
// syntax (strconv's -1 precision keeps the round trip exact).
func renderLiteral(v value.Value) string {
	switch v.Kind() {
	case value.KindString:
		return "'" + strings.ReplaceAll(v.AsString(), "'", "''") + "'"
	case value.KindFloat:
		f := v.AsFloat()
		if !math.IsNaN(f) && !math.IsInf(f, 0) {
			return strconv.FormatFloat(f, 'f', -1, 64)
		}
	}
	return v.String()
}
