package isql

import (
	"math/big"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsd"
)

// Bounded fallback evaluation. Statements outside the clean World-set
// Algebra fragment (aggregation, expression subqueries, divide-by, the
// query form of group-worlds-by) run through the explicit world-set
// evaluator — but a statement only reads the relations its tree
// mentions, and the decomposition's components are independent, so the
// evaluator only has to enumerate the components that contribute to
// those relations. This file builds that bounded input: one world per
// combination of the dependent components' alternatives, each carrying
// the certain tuples plus the dependent contributions. The enumeration
// cost is the product of just the dependent components' alternative
// counts — the same locality bound wsdexec's component merging gives
// the native operators — so an aggregate over one 3-alternative
// component costs 3 worlds on a 2^40-world catalog, not 2^40.

// stmtRelations records into the set every base relation the select can
// read, following views, derived tables, expression subqueries, the
// divide-by item and the group-worlds-by query.
func (s *Session) stmtRelations(sel *SelectStmt, into map[string]bool) {
	var walkSel func(*SelectStmt)
	var walkExpr func(Expr)
	// Views reference only earlier views (creation validates the body
	// against the catalog of its time), so expansion terminates; the set
	// just dedups repeated mentions.
	expandedViews := map[string]bool{}
	fromItem := func(item FromItem) {
		if item.Sub != nil {
			walkSel(item.Sub)
			return
		}
		if v, ok := s.views[item.Table]; ok {
			if !expandedViews[item.Table] {
				expandedViews[item.Table] = true
				walkSel(v)
			}
			return
		}
		into[item.Table] = true
	}
	walkExpr = func(e Expr) {
		switch n := e.(type) {
		case *BinExpr:
			walkExpr(n.L)
			walkExpr(n.R)
		case *LogicExpr:
			walkExpr(n.L)
			walkExpr(n.R)
		case *NotExpr:
			walkExpr(n.E)
		case *AggExpr:
			if n.Arg != nil {
				walkExpr(n.Arg)
			}
		case *InExpr:
			walkExpr(n.Left)
			walkSel(n.Sub)
		case *ExistsExpr:
			walkSel(n.Sub)
		case *SubqueryExpr:
			walkSel(n.Sub)
		}
	}
	walkSel = func(sel *SelectStmt) {
		if sel == nil {
			return
		}
		for _, f := range sel.From {
			fromItem(f)
		}
		if sel.Divide != nil {
			fromItem(sel.Divide.Item)
			walkExpr(sel.Divide.On)
		}
		walkExpr(sel.Where)
		for _, it := range sel.Items {
			walkExpr(it.Expr)
		}
		if sel.GroupWorlds != nil && sel.GroupWorlds.Query != nil {
			walkSel(sel.GroupWorlds.Query)
		}
	}
	walkSel(sel)
}

// dependentComponents returns, in ascending order, the components
// contributing at least one tuple to any of the given relation indices
// — the components whose choices the statement's answer can depend on.
func dependentComponents(db *wsd.DecompDB, refIdx map[int]bool) []int {
	var deps []int
	for ci, c := range db.Components {
		dep := false
		for _, a := range c.Alternatives {
			for ri, r := range a.Rels {
				if refIdx[ri] && r != nil && r.Len() > 0 {
					dep = true
					break
				}
			}
			if dep {
				break
			}
		}
		if dep {
			deps = append(deps, ci)
		}
	}
	return deps
}

// boundedInput builds the world-set the fallback evaluator runs the
// statement on: one world per combination of the dependent components'
// alternatives, every relation holding its certain tuples plus the
// dependent contributions. Relations no dependent component touches are
// exactly their full per-world content; the others the statement never
// reads. The enumeration refuses to exceed the session budget with the
// same *wsd.BudgetError shape Expand reports — but measured against the
// dependent combination count, not the catalog's world count.
func (s *Session) boundedInput(db *wsd.DecompDB, sel *SelectStmt) (*worldset.WorldSet, []int, error) {
	refs := map[string]bool{}
	s.stmtRelations(sel, refs)
	refIdx := map[int]bool{}
	for name := range refs {
		if i := db.IndexOf(name); i >= 0 {
			refIdx[i] = true
		}
	}
	deps := dependentComponents(db, refIdx)
	if len(deps) == len(db.Components) {
		ws, err := db.Expand(s.maxWorlds())
		return ws, deps, err
	}
	// A component with no alternatives (dependent or not) empties the
	// represented world-set; the bounded enumeration must agree.
	if db.Worlds().Sign() == 0 {
		return worldset.New(db.Names, db.Schemas), deps, nil
	}
	budget := s.maxWorlds()
	cost := big.NewInt(1)
	var m big.Int
	for _, ci := range deps {
		cost.Mul(cost, m.SetInt64(int64(len(db.Components[ci].Alternatives))))
	}
	if !cost.IsInt64() || cost.Int64() > int64(budget) {
		return nil, nil, &wsd.BudgetError{Worlds: cost, Budget: budget}
	}
	ws := worldset.New(db.Names, db.Schemas)
	choice := make([]int, len(deps))
	for {
		w := make(worldset.World, len(db.Certain))
		for i, r := range db.Certain {
			w[i] = r.Clone()
		}
		for k, ci := range deps {
			for ri, r := range db.Components[ci].Alternatives[choice[k]].Rels {
				r.Each(func(t relation.Tuple) { w[ri].Insert(t) })
			}
		}
		ws.Add(w)
		i := 0
		for ; i < len(deps); i++ {
			choice[i]++
			if choice[i] < len(db.Components[deps[i]].Alternatives) {
				break
			}
			choice[i] = 0
		}
		if i == len(deps) {
			break
		}
	}
	return ws, deps, nil
}

// spliceIndependent re-attaches the components the bounded evaluation
// did not enumerate to the re-factorized local result. Sound because
// the statement read none of their contributions: every full world is a
// local world plus the independent contributions, and the components
// stay independent of the local result's.
func spliceIndependent(local, base *wsd.DecompDB, deps []int) *wsd.DecompDB {
	depSet := map[int]bool{}
	for _, ci := range deps {
		depSet[ci] = true
	}
	for ci, c := range base.Components {
		if !depSet[ci] {
			local.Components = append(local.Components, c)
		}
	}
	return local
}
