package isql

import (
	"errors"
	"testing"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/wsd"
)

// boundedCatalog builds the 2^40-world census catalog plus a tiny
// independent uncertain region: Pick is one 3-alternative component on
// a catalog of 3 * 2^40 worlds. Statements reading only Pick must cost
// 3 worlds, not 2^40.
func boundedCatalog(t *testing.T) *Session {
	t.Helper()
	s := FromDB([]string{"Census"}, []*relation.Relation{pipelineCensus()})
	s.Stats = NewExecStats()
	for _, sql := range censusPipeline[:2] {
		mustExec(t, s, sql)
	}
	mustExec(t, s, "create table Tiny (V);")
	for _, v := range []string{"1", "2", "3"} {
		mustExec(t, s, "insert into Tiny values ("+v+");")
	}
	mustExec(t, s, "create table Pick as select * from Tiny choice of V;")
	if got, want := s.Worlds().String(), "3298534883328"; got != want { // 3 * 2^40
		t.Fatalf("catalog worlds = %s, want %s", got, want)
	}
	return s
}

// TestBoundedAggregateWorldCountIndependent: an aggregate outside the
// WSA fragment over a small uncertain region answers on a 2^40-world
// catalog by enumerating only the dependent component — the bugfix this
// test pins. The same aggregate over the 40-component repair region
// still refuses, with the budget error reporting the dependent cost
// (2^40), not the catalog's total world count (3 * 2^40).
func TestBoundedAggregateWorldCountIndependent(t *testing.T) {
	s := boundedCatalog(t)

	// count(*) over Pick: one tuple per world in all 3 worlds.
	res, err := s.ExecString("select count(*) as N from Pick;")
	if err != nil {
		t.Fatalf("bounded aggregate: %v", err)
	}
	if len(res.Answers) != 1 || !res.Answers[0].Contains(relation.Tuple{intVal(1)}) {
		t.Fatalf("count(*) over Pick = %v, want the single answer {1}", res.Answers)
	}
	// The bounded worlds are not full worlds — the result must not
	// pretend to expose the session state.
	if res.WorldSet != nil {
		t.Fatal("partial-dependency fallback must leave Result.WorldSet nil")
	}

	// sum(V) distinguishes the three worlds: three distinct answers.
	res, err = s.ExecString("select sum(V) as S from Pick;")
	if err != nil {
		t.Fatalf("bounded sum: %v", err)
	}
	if len(res.Answers) != 3 {
		t.Fatalf("sum(V) over Pick has %d distinct answers, want 3", len(res.Answers))
	}

	// Over the 40-component repair region the answer genuinely depends
	// on 2^40 combinations: refuse with the shared budget shape, costed
	// at the dependent components only.
	var be *wsd.BudgetError
	_, err = s.ExecString("select count(*) as N from Clean;")
	if !errors.As(err, &be) {
		t.Fatalf("aggregate over Clean: want *wsd.BudgetError, got %v", err)
	}
	if got, want := be.Worlds.String(), "1099511627776"; got != want { // 2^40, not 3 * 2^40
		t.Fatalf("budget error cost = %s, want the dependent-component cost %s", got, want)
	}

	// Execution accounting: 3 native CTAS, 3 legacy aggregates (the
	// refused one included), all attributed to aggregation.
	snap := s.Stats.Snapshot()
	if snap.Native != 3 {
		t.Fatalf("stats native = %d, want 3", snap.Native)
	}
	if snap.Legacy != 3 || snap.LegacyOps["aggregation"] != 3 {
		t.Fatalf("stats legacy = %d (ops %v), want 3 aggregation", snap.Legacy, snap.LegacyOps)
	}
}

// TestBoundedCTASSplicesIndependentComponents: a create-table-as whose
// query is outside the fragment re-factorizes only the dependent
// region and splices the untouched components back — the catalog keeps
// its exact world count and linear size, and stays natively queryable.
func TestBoundedCTASSplicesIndependentComponents(t *testing.T) {
	s := boundedCatalog(t)
	res, err := s.ExecString("create table PickTotal as select V, count(*) as N from Pick group by V;")
	if err != nil {
		t.Fatalf("bounded create-table-as: %v", err)
	}
	if res.WorldSet != nil {
		t.Fatal("partial-dependency CTAS must leave Result.WorldSet nil")
	}
	if got, want := s.Worlds().String(), "3298534883328"; got != want {
		t.Fatalf("worlds after bounded CTAS = %s, want %s (unchanged)", got, want)
	}
	snap := s.Catalog().Snapshot()
	if size := snap.DB.Size(); size > 6*pipelineCensus().Len() {
		t.Fatalf("catalog size %d after bounded CTAS is not linear in the input", size)
	}
	// The spliced catalog is a normal catalog: both the new table and
	// the untouched repair region answer natively.
	res, err = s.ExecString("select possible N from PickTotal;")
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || !res.Plan.Native {
		t.Fatalf("select over the spliced catalog not native (plan %v)", res.Plan)
	}
	if len(res.Answers) != 1 || !res.Answers[0].Contains(relation.Tuple{intVal(1)}) {
		t.Fatalf("possible N from PickTotal = %v, want {1}", res.Answers)
	}
	if res, err = s.ExecString("select certain Name from Suspects;"); err != nil {
		t.Fatal(err)
	} else if res.Plan == nil || !res.Plan.Native {
		t.Fatalf("repair region not native after splice (plan %v)", res.Plan)
	}
	// PickTotal stays correlated with Pick: in each world the total's V
	// is exactly the picked V.
	res, err = s.ExecString("select count(*) as M from Pick, PickTotal where Pick.V != PickTotal.V;")
	if err != nil {
		t.Fatalf("correlation probe: %v", err)
	}
	if len(res.Answers) != 1 || !res.Answers[0].Contains(relation.Tuple{intVal(0)}) {
		t.Fatalf("Pick/PickTotal disagree in some world: %v", res.Answers)
	}
}

// TestPreparedFallbackMemo: a prepared statement that fell back keeps a
// memo keyed on the decomposition fingerprint — repeat executions skip
// the doomed native attempt, and a moved decomposition shape clears the
// memo so the native path is retried (the plan-cache staleness fix).
func TestPreparedFallbackMemo(t *testing.T) {
	s := NewSession()
	mustExec(t, s, "create table T (A);")
	mustExec(t, s, "insert into T values (1);")
	mustExec(t, s, "insert into T values (2);")
	mustExec(t, s, "create table U as select * from T choice of A;")
	mustExec(t, s, "prepare q as select certain A from U choice of A;")

	// First execution attempts the native path: choice-of over the
	// uncertain U entangles, and the plan names the coupled components.
	res, err := s.ExecString("execute q;")
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Plan.Native {
		t.Fatalf("choice-of over uncertain U should fall back, plan %v", res.Plan)
	}
	if len(res.Plan.FallbackComponents) == 0 {
		t.Fatalf("first fallback must identify the entangled components, plan %v", res.Plan)
	}
	firstOp := res.Plan.FallbackOp

	// Second execution hits the memo: same decomposition shape, so the
	// native attempt is skipped (no entangled-component analysis ran —
	// the assumed fallback carries the op only).
	res, err = s.ExecString("execute q;")
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Plan.Native || res.Plan.FallbackOp != firstOp {
		t.Fatalf("memoized execution should assume fallback at %q, plan %v", firstOp, res.Plan)
	}
	if len(res.Plan.FallbackComponents) != 0 {
		t.Fatalf("memoized execution should skip the native attempt, plan %v", res.Plan)
	}

	// DML that moves the decomposition shape invalidates the memo:
	// emptying U folds its component away, and the statement runs
	// natively — a stale cached fallback decision would have kept it on
	// enumeration forever.
	mustExec(t, s, "delete from U;")
	res, err = s.ExecString("execute q;")
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || !res.Plan.Native {
		t.Fatalf("after the shape moved the native path must be retried, plan %v", res.Plan)
	}
}
