package isql

import (
	"errors"
	"fmt"

	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/wsa"
)

// fragmentError marks a statement as lying outside the clean World-set
// Algebra fragment — a capability limit of compilation, not a mistake
// in the statement. The session falls back to the explicit world-set
// evaluator exactly on this error type; genuine errors (unknown
// relations or columns, ambiguity) surface directly.
type fragmentError struct {
	// op is the short name of the fragment feature that routed the
	// statement to the fallback evaluator ("aggregation", "divide-by",
	// ...), the key execution statistics attribute fallbacks to.
	op  string
	msg string
}

func (e *fragmentError) Error() string { return e.msg }

// outsideFragment builds a fragmentError.
func outsideFragment(op, format string, args ...any) error {
	return &fragmentError{op: op, msg: fmt.Sprintf(format, args...)}
}

// fragmentOp extracts the fragment feature name from a fragmentError
// chain ("" when the error is not one).
func fragmentOp(err error) string {
	var fe *fragmentError
	if errors.As(err, &fe) {
		return fe.op
	}
	return ""
}

// Compile translates the clean I-SQL fragment of §4 — no aggregation,
// no expression subqueries, no divide-by — into World-set Algebra. The
// resulting expression can be fed to the reference evaluator, the
// rewrite optimizer and the §5 translations.
//
// The compiled query follows the paper's order of evaluation: the
// select-list projection applies after choice-of and repair-by-key, and
// group-worlds-by compiles to pγ/cγ whose grouping attributes refer to
// the pre-projection join.
func (s *Session) Compile(sel *SelectStmt) (wsa.Expr, error) {
	snap, err := s.snapshotForRead()
	if err != nil {
		return nil, err
	}
	return s.compileOn(snap.DB.Names, snap.DB.Schemas, sel)
}

// compileOn compiles against an explicit relational schema (the names
// and per-relation schemas of a catalog snapshot).
func (s *Session) compileOn(names []string, schemas []relation.Schema, sel *SelectStmt) (wsa.Expr, error) {
	info, err := s.analyzeSelect(sel, names, schemas, nil)
	if err != nil {
		return nil, err
	}
	if info.aggregated {
		return nil, outsideFragment("aggregation", "isql: aggregation is outside the World-set Algebra fragment")
	}
	if sel.Divide != nil {
		return nil, outsideFragment("divide-by", "isql: divide-by is outside the World-set Algebra fragment")
	}
	if len(info.correlated) > 0 || len(info.uncorrelated) > 0 {
		return nil, outsideFragment("expression subquery", "isql: expression subqueries are outside the World-set Algebra fragment")
	}

	// FROM: product of the (alias-renamed) items.
	var joined wsa.Expr
	for i, item := range sel.From {
		e, err := s.compileFromItem(item, info.fromSchemas[i], names, schemas)
		if err != nil {
			return nil, err
		}
		if joined == nil {
			joined = e
		} else {
			joined = wsa.NewProduct(joined, e)
		}
	}
	if joined == nil {
		return nil, outsideFragment("select without from", "isql: select without from is not supported")
	}

	q := joined
	if sel.Where != nil {
		pred, err := compilePred(sel.Where)
		if err != nil {
			return nil, err
		}
		q = &wsa.Select{Pred: pred, From: q}
	}
	if len(sel.ChoiceOf) > 0 {
		q = &wsa.Choice{Attrs: resolveRefs(sel.ChoiceOf, info.joined), From: q}
	}
	if len(sel.RepairKey) > 0 {
		q = &wsa.RepairKey{Attrs: resolveRefs(sel.RepairKey, info.joined), From: q}
	}

	// Select list: source columns in the joined schema and their output
	// names.
	var srcCols []string
	var outNames []string
	if sel.Star {
		srcCols = append(srcCols, info.joined...)
		outNames = append(outNames, info.out...)
	} else {
		for i, it := range sel.Items {
			col, ok := it.Expr.(*ColExpr)
			if !ok {
				return nil, outsideFragment("expression select list", "isql: select item %s is outside the World-set Algebra fragment (plain columns only)", it.Expr)
			}
			j := info.joined.Index(col.Ref.Full())
			if j < 0 {
				return nil, &columnNotFoundError{name: col.Ref.Full()}
			}
			srcCols = append(srcCols, info.joined[j])
			outNames = append(outNames, info.out[i])
		}
	}

	if sel.GroupWorlds != nil {
		if sel.GroupWorlds.Query != nil {
			return nil, outsideFragment("query-form group-worlds-by", "isql: query-form group-worlds-by is outside the World-set Algebra fragment (use the attribute form)")
		}
		groupBy := resolveRefs(sel.GroupWorlds.Attrs, info.joined)
		g := &wsa.Group{GroupBy: groupBy, Proj: srcCols, From: q}
		if sel.Close == ClosePossible {
			g.Kind = wsa.GroupPoss
		} else {
			g.Kind = wsa.GroupCert
		}
		return renameOut(g, srcCols, outNames), nil
	}

	q = renameOut(&wsa.Project{Columns: srcCols, From: q}, srcCols, outNames)
	switch sel.Close {
	case ClosePossible:
		q = wsa.NewPoss(q)
	case CloseCertain:
		q = wsa.NewCert(q)
	}
	return q, nil
}

// CompileString parses and compiles a select statement.
func (s *Session) CompileString(sql string) (wsa.Expr, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("isql: only select statements compile to World-set Algebra")
	}
	return s.Compile(sel)
}

// compileFromItem compiles a base table, view or derived table and
// renames its attributes to the alias-qualified names of the analysis.
func (s *Session) compileFromItem(item FromItem, qualified relation.Schema, names []string, schemas []relation.Schema) (wsa.Expr, error) {
	var inner wsa.Expr
	var innerSchema relation.Schema
	switch {
	case item.Sub != nil:
		sub, err := s.compileOn(names, schemas, item.Sub)
		if err != nil {
			return nil, err
		}
		si, err := s.analyzeSelect(item.Sub, names, schemas, nil)
		if err != nil {
			return nil, err
		}
		inner, innerSchema = sub, si.out
	default:
		if view, ok := s.views[item.Table]; ok {
			sub, err := s.compileOn(names, schemas, view)
			if err != nil {
				return nil, err
			}
			si, err := s.analyzeSelect(view, names, schemas, nil)
			if err != nil {
				return nil, err
			}
			inner, innerSchema = sub, si.out
		} else {
			idx := -1
			for i, n := range names {
				if n == item.Table {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("isql: unknown relation %q", item.Table)
			}
			inner, innerSchema = &wsa.Rel{Name: item.Table}, schemas[idx]
		}
	}
	pairs := make([]ra.RenamePair, len(innerSchema))
	for i, a := range innerSchema {
		pairs[i] = ra.RenamePair{From: a, To: qualified[i]}
	}
	return &wsa.Rename{Pairs: pairs, From: inner}, nil
}

// renameOut renames projected source columns to their output names,
// omitting the node when nothing changes.
func renameOut(q wsa.Expr, src, out []string) wsa.Expr {
	var pairs []ra.RenamePair
	for i := range src {
		if src[i] != out[i] {
			pairs = append(pairs, ra.RenamePair{From: src[i], To: out[i]})
		}
	}
	if len(pairs) == 0 {
		return q
	}
	if g, ok := q.(*wsa.Group); ok {
		// Renaming after a group keeps the γ proj list consistent: wrap.
		return &wsa.Rename{Pairs: pairs, From: g}
	}
	return &wsa.Rename{Pairs: pairs, From: q}
}

// compilePred converts an I-SQL boolean expression over columns and
// literals into an ra.Pred.
func compilePred(e Expr) (ra.Pred, error) {
	switch n := e.(type) {
	case *LogicExpr:
		l, err := compilePred(n.L)
		if err != nil {
			return nil, err
		}
		r, err := compilePred(n.R)
		if err != nil {
			return nil, err
		}
		if n.Op == "and" {
			return ra.And{L: l, R: r}, nil
		}
		return ra.Or{L: l, R: r}, nil
	case *NotExpr:
		p, err := compilePred(n.E)
		if err != nil {
			return nil, err
		}
		return ra.Not{P: p}, nil
	case *BinExpr:
		var op ra.CmpOp
		switch n.Op {
		case "=":
			op = ra.OpEq
		case "!=":
			op = ra.OpNe
		case "<":
			op = ra.OpLt
		case "<=":
			op = ra.OpLe
		case ">":
			op = ra.OpGt
		case ">=":
			op = ra.OpGe
		default:
			return nil, outsideFragment("expression condition", "isql: operator %q is outside the World-set Algebra fragment", n.Op)
		}
		l, err := compileOperand(n.L)
		if err != nil {
			return nil, err
		}
		r, err := compileOperand(n.R)
		if err != nil {
			return nil, err
		}
		return ra.Cmp{Left: l, Op: op, Right: r}, nil
	}
	return nil, outsideFragment("expression condition", "isql: condition %s is outside the World-set Algebra fragment", e)
}

func compileOperand(e Expr) (ra.Operand, error) {
	switch n := e.(type) {
	case *ColExpr:
		return ra.Col(n.Ref.Full()), nil
	case *LitExpr:
		return ra.Const(n.Val), nil
	case *ParamExpr:
		// A $n placeholder compiles to a parameter slot: the prepared
		// plan is compiled (and prelowered) once with the slot in place,
		// and EXECUTE binds the argument into the cached plan.
		return ra.Param(n.N), nil
	}
	return ra.Operand{}, outsideFragment("expression condition", "isql: operand %s is outside the World-set Algebra fragment", e)
}

// resolveRefs maps written column references to the joined-schema names
// they resolve to.
func resolveRefs(refs []ColumnRef, joined relation.Schema) []string {
	out := make([]string, len(refs))
	for i, r := range refs {
		if j := joined.Index(r.Full()); j >= 0 {
			out[i] = joined[j]
		} else {
			out[i] = r.Full()
		}
	}
	return out
}
