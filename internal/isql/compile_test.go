package isql

import (
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/translate"
	"worldsetdb/internal/wsa"
)

// compileAndCompare compiles the I-SQL query to WSA, evaluates it with
// the reference Figure 3 semantics, and compares the distinct answers
// with the direct I-SQL evaluator's.
func compileAndCompare(t *testing.T, s *Session, sql string) wsa.Expr {
	t.Helper()
	q, err := s.CompileString(sql)
	if err != nil {
		t.Fatalf("compile %s: %v", sql, err)
	}
	direct := mustExec(t, s, sql)
	viaWSA, err := wsa.Answers(q, s.WorldSet())
	if err != nil {
		t.Fatalf("wsa eval of %s: %v", q, err)
	}
	if len(direct.Answers) != len(viaWSA) {
		t.Fatalf("%s: %d distinct answers via I-SQL, %d via WSA\nWSA: %s",
			sql, len(direct.Answers), len(viaWSA), q)
	}
	for i := range direct.Answers {
		if !direct.Answers[i].EqualContents(viaWSA[i]) {
			t.Fatalf("%s: answer %d differs\nisql: %v\nwsa: %v\nWSA query: %s",
				sql, i, direct.Answers[i], viaWSA[i], q)
		}
	}
	return q
}

// TestCompileTripPlanning compiles the §2 trip-planning query and checks
// both evaluators agree; the compiled query is 1↦1 and translates to
// relational algebra end-to-end.
func TestCompileTripPlanning(t *testing.T) {
	s := flightsSession()
	q := compileAndCompare(t, s, "select certain Arr from HFlights choice of Dep;")
	if !wsa.IsCompleteToComplete(q) {
		t.Fatalf("compiled query should be 1↦1: %s", q)
	}
	db := ra.DB{"HFlights": datagen.PaperFlights()}
	got, err := translate.EvalComplete(q, []string{"HFlights"}, db)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.FromRows(relation.NewSchema("Arr"), strTuple("ATL"))
	if !got.EqualContents(want) {
		t.Fatalf("I-SQL → WSA → RA pipeline returned %v, want {ATL}", got)
	}
}

// TestCompileVariants checks the compiler across the fragment's
// constructs against the direct evaluator.
func TestCompileVariants(t *testing.T) {
	queries := []string{
		"select * from HFlights;",
		"select Dep from HFlights;",
		"select Arr from HFlights where Dep = 'FRA';",
		"select possible Arr from HFlights choice of Dep;",
		"select certain Arr from HFlights choice of Dep, Arr;",
		"select F.Arr as City from HFlights F where F.Dep != 'PHL';",
		"select A.Arr, B.Dep from HFlights A, HFlights B where A.Dep = B.Dep and A.Arr != B.Arr;",
		"select possible Arr from (select * from HFlights where Dep != 'PHL') G choice of Dep;",
		"select certain Arr from HFlights choice of Dep group worlds by Dep;",
		"select * from HFlights repair by key Dep;",
	}
	for _, q := range queries {
		compileAndCompare(t, flightsSession(), q)
	}
}

// TestCompileAcquisition compiles the inner acquisition steps (through a
// view for U) and checks agreement.
func TestCompileAcquisition(t *testing.T) {
	s := FromDB([]string{"Company_Emp", "Emp_Skills"},
		[]*relation.Relation{datagen.PaperCompanyEmp(), datagen.PaperEmpSkills()})
	mustExec(t, s, "create view U as select * from Company_Emp choice of CID;")
	compileAndCompare(t, s, `select R1.CID, R1.EID
		from Company_Emp R1, (select * from U choice of EID) R2
		where R1.CID = R2.CID and R1.EID != R2.EID;`)
}

// TestCompileRejectsNonFragment checks aggregation, subqueries and
// divide-by are refused with clear errors.
func TestCompileRejectsNonFragment(t *testing.T) {
	s := flightsSession()
	bad := []string{
		"select count(*) as N from HFlights;",
		"select Arr from HFlights where Dep in (select Dep from HFlights);",
		"select Arr from (select Arr, Dep from HFlights) as F1 divide by (select Dep from HFlights) as F2 on F1.Dep = F2.Dep;",
	}
	for _, q := range bad {
		if _, err := s.CompileString(q); err == nil {
			t.Errorf("expected compile error for %s", q)
		}
	}
}
