package isql

import (
	"fmt"
	"math/big"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsd"
)

// preAnswerName carries the where-filtered join during select
// evaluation; the world-manipulating clauses operate on it.
const preAnswerName = "$pre"

// evalCtx is the runtime environment for expression evaluation: the
// current world, the current tuple (schema + values), lifted subquery
// relations, and the chain of enclosing contexts for correlated
// subqueries.
type evalCtx struct {
	session *Session
	world   worldset.World
	names   []string
	schemas []relation.Schema
	schema  relation.Schema
	tuple   relation.Tuple
	lifted  map[*SelectStmt]int
	outer   *evalCtx
	// groupRows is set while evaluating aggregate expressions: the
	// tuples of the current group.
	groupRows []relation.Tuple
}

// scopeChain returns the tuple schemas of the context chain, innermost
// first, for static analysis of subqueries.
func (c *evalCtx) scopeChain() []relation.Schema {
	var out []relation.Schema
	for cur := c; cur != nil; cur = cur.outer {
		out = append(out, cur.schema)
	}
	return out
}

// evalSelect evaluates sel on ws. The returned world-set contains the
// input relations of ws followed by one answer relation (named "$ans").
// outer, when non-nil, supplies the enclosing tuple environment for
// correlated subquery evaluation.
func (s *Session) evalSelect(sel *SelectStmt, ws *worldset.WorldSet, outer *evalCtx) (*worldset.WorldSet, error) {
	var scopes []relation.Schema
	if outer != nil {
		scopes = outer.scopeChain()
	}
	info, err := s.analyzeSelect(sel, ws.Names(), ws.Schemas(), scopes)
	if err != nil {
		return nil, err
	}
	k0 := ws.NumRelations()

	// Phase 1: from items (each extends the world-set by one relation,
	// possibly multiplying worlds via nested choice-of).
	cur := ws
	fromIdx := make([]int, len(sel.From))
	for i, item := range sel.From {
		cur, err = s.evalFromItem(item, cur, info.fromSchemas[i])
		if err != nil {
			return nil, err
		}
		fromIdx[i] = cur.NumRelations() - 1
	}
	divIdx := -1
	if sel.Divide != nil {
		cur, err = s.evalFromItem(sel.Divide.Item, cur, info.divSchema)
		if err != nil {
			return nil, err
		}
		divIdx = cur.NumRelations() - 1
	}

	// Phase 2: lift uncorrelated expression subqueries.
	lifted := map[*SelectStmt]int{}
	for _, sub := range info.uncorrelated {
		cur, err = s.evalSelect(sub, cur, nil)
		if err != nil {
			return nil, err
		}
		lifted[sub] = cur.NumRelations() - 1
	}

	// Phase 3: per world, the where-filtered join (the pre-answer).
	pre := worldset.New(
		append(append([]string{}, cur.Names()...), preAnswerName),
		append(append([]relation.Schema{}, cur.Schemas()...), info.joined))
	var evalErr error
	cur.Each(func(w worldset.World) {
		if evalErr != nil {
			return
		}
		ctx := &evalCtx{
			session: s, world: w,
			names: cur.Names(), schemas: cur.Schemas(),
			schema: info.joined, lifted: lifted, outer: outer,
		}
		rows, err := s.joinWorld(w, fromIdx, info, sel.Where, ctx)
		if err != nil {
			evalErr = err
			return
		}
		nw := make(worldset.World, len(w)+1)
		copy(nw, w)
		nw[len(w)] = rows
		pre.Add(nw)
	})
	if evalErr != nil {
		return nil, evalErr
	}

	// Phase 4: choice-of and repair-by-key split worlds on the
	// pre-answer (§3, order of evaluation).
	if len(sel.ChoiceOf) > 0 {
		pre, err = splitChoice(pre, refNames(sel.ChoiceOf))
		if err != nil {
			return nil, err
		}
	}
	if len(sel.RepairKey) > 0 {
		pre, err = splitRepair(pre, refNames(sel.RepairKey), s.maxWorlds())
		if err != nil {
			return nil, err
		}
	}

	// Phase 5: per world, project/aggregate the pre-answer into the
	// output relation.
	preIdx := pre.NumRelations() - 1
	withOut := worldset.New(
		append(append([]string{}, pre.Names()...), answerName),
		append(append([]relation.Schema{}, pre.Schemas()...), info.out))
	pre.Each(func(w worldset.World) {
		if evalErr != nil {
			return
		}
		ctx := &evalCtx{
			session: s, world: w[:len(w)-1],
			names: cur.Names(), schemas: cur.Schemas(),
			schema: info.joined, lifted: lifted, outer: outer,
		}
		var ans *relation.Relation
		var err error
		switch {
		case sel.Divide != nil:
			ans, err = s.evalDivision(sel, info, w[preIdx], w[divIdx], ctx)
		case info.aggregated:
			ans, err = s.evalAggregation(sel, info, w[preIdx], ctx)
		default:
			ans, err = s.evalProjection(sel, info, w[preIdx], ctx)
		}
		if err != nil {
			evalErr = err
			return
		}
		nw := make(worldset.World, len(w)+1)
		copy(nw, w)
		nw[len(w)] = ans
		withOut.Add(nw)
	})
	if evalErr != nil {
		return nil, evalErr
	}

	// Phase 6: possible/certain, grouped by the group-worlds-by clause.
	if sel.Close != CloseNone {
		withOut, err = s.applyClose(sel, info, withOut, preIdx)
		if err != nil {
			return nil, err
		}
	}

	// Phase 7: drop the intermediate relations, keeping the original
	// k0 relations and the answer.
	ansIdx := withOut.NumRelations() - 1
	out := worldset.New(
		append(append([]string{}, ws.Names()...), answerName),
		append(append([]relation.Schema{}, ws.Schemas()...), info.out))
	withOut.Each(func(w worldset.World) {
		nw := make(worldset.World, k0+1)
		copy(nw, w[:k0])
		nw[k0] = w[ansIdx]
		out.Add(nw)
	})
	return out, nil
}

// evalFromItem extends the world-set with one relation: a base table or
// view copy, or a derived table. The new relation carries the qualified
// schema computed by analysis.
func (s *Session) evalFromItem(item FromItem, cur *worldset.WorldSet, qualified relation.Schema) (*worldset.WorldSet, error) {
	if item.Sub != nil {
		sub, err := s.evalSelect(item.Sub, cur, nil)
		if err != nil {
			return nil, err
		}
		return relabelLast(sub, qualified), nil
	}
	if view, ok := s.views[item.Table]; ok {
		sub, err := s.evalSelect(view, cur, nil)
		if err != nil {
			return nil, err
		}
		return relabelLast(sub, qualified), nil
	}
	idx := cur.IndexOf(item.Table)
	if idx < 0 {
		return nil, fmt.Errorf("isql: unknown relation %q", item.Table)
	}
	return cur.Extend(preAnswerName, qualified, func(w worldset.World) *relation.Relation {
		return w[idx].WithSchema(qualified)
	}), nil
}

// relabelLast renames the last relation's attributes (and keeps the
// reserved relation name).
func relabelLast(ws *worldset.WorldSet, schema relation.Schema) *worldset.WorldSet {
	k := ws.NumRelations() - 1
	schemas := append([]relation.Schema{}, ws.Schemas()...)
	schemas[k] = schema
	out := worldset.New(ws.Names(), schemas)
	ws.Each(func(w worldset.World) {
		nw := append(worldset.World{}, w...)
		nw[k] = nw[k].WithSchema(schema)
		out.Add(nw)
	})
	return out
}

// joinWorld computes the where-filtered product of the from relations in
// one world.
func (s *Session) joinWorld(w worldset.World, fromIdx []int, info *selectInfo, where Expr, ctx *evalCtx) (*relation.Relation, error) {
	out := relation.New(info.joined)
	if len(fromIdx) == 0 {
		return out, nil
	}
	rels := make([][]relation.Tuple, len(fromIdx))
	for i, idx := range fromIdx {
		rels[i] = w[idx].Tuples()
		if len(rels[i]) == 0 {
			return out, nil
		}
	}
	current := make(relation.Tuple, 0, len(info.joined))
	var rec func(level int) error
	rec = func(level int) error {
		if level == len(rels) {
			t := current.Clone()
			if where != nil {
				ctx.tuple = t
				keep, err := ctx.evalBool(where)
				if err != nil {
					return err
				}
				if !keep {
					return nil
				}
			}
			out.Insert(t)
			return nil
		}
		for _, t := range rels[level] {
			current = append(current, t...)
			if err := rec(level + 1); err != nil {
				return err
			}
			current = current[:len(current)-len(t)]
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// evalProjection computes the plain (non-aggregated) select list over
// the pre-answer rows.
func (s *Session) evalProjection(sel *SelectStmt, info *selectInfo, pre *relation.Relation, ctx *evalCtx) (*relation.Relation, error) {
	out := relation.New(info.out)
	if sel.Star {
		pre.Each(func(t relation.Tuple) { out.Insert(t) })
		return out, nil
	}
	var evalErr error
	pre.Each(func(t relation.Tuple) {
		if evalErr != nil {
			return
		}
		ctx.tuple = t
		row := make(relation.Tuple, len(info.outExprs))
		for i, e := range info.outExprs {
			v, err := ctx.evalExpr(e)
			if err != nil {
				evalErr = err
				return
			}
			row[i] = v
		}
		out.Insert(row)
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// evalAggregation groups the pre-answer rows by the group-by attributes
// and evaluates the select list once per group (aggregates see the
// group's rows).
func (s *Session) evalAggregation(sel *SelectStmt, info *selectInfo, pre *relation.Relation, ctx *evalCtx) (*relation.Relation, error) {
	gIdx, err := info.joined.Indexes(refNames(sel.GroupBy))
	if err != nil {
		return nil, err
	}
	groups := map[string][]relation.Tuple{}
	var order []string
	for _, t := range pre.Tuples() {
		var key []byte
		for _, i := range gIdx {
			key = t[i].AppendKey(key)
			key = append(key, 0x1f)
		}
		if _, ok := groups[string(key)]; !ok {
			order = append(order, string(key))
		}
		groups[string(key)] = append(groups[string(key)], t)
	}
	out := relation.New(info.out)
	// A global aggregate over an empty input produces one row (e.g.
	// count(*) = 0) only when there is no group-by, matching SQL. The
	// group must be non-nil: nil marks "no aggregation context".
	if len(order) == 0 && len(sel.GroupBy) == 0 {
		order = append(order, "")
		groups[""] = []relation.Tuple{}
	}
	for _, key := range order {
		rows := groups[key]
		ctx.groupRows = rows
		if len(rows) > 0 {
			ctx.tuple = rows[0]
		} else {
			ctx.tuple = make(relation.Tuple, len(info.joined))
		}
		row := make(relation.Tuple, len(info.outExprs))
		for i, e := range info.outExprs {
			v, err := ctx.evalExpr(e)
			if err != nil {
				ctx.groupRows = nil
				return nil, err
			}
			row[i] = v
		}
		out.Insert(row)
	}
	ctx.groupRows = nil
	return out, nil
}

// evalDivision implements the `divide by ... on ...` extension: output
// tuples o (the select list over dividend rows) such that for every
// divisor row d some dividend row j with the same select-list values
// satisfies the ON condition against d.
func (s *Session) evalDivision(sel *SelectStmt, info *selectInfo, pre, div *relation.Relation, ctx *evalCtx) (*relation.Relation, error) {
	out := relation.New(info.out)
	combined := info.joined.Concat(info.divSchema)
	divRows := div.Tuples()
	preRows := pre.Tuples()

	// Candidate outputs with their witness rows.
	type cand struct {
		out  relation.Tuple
		rows []relation.Tuple
	}
	cands := map[string]*cand{}
	for _, j := range preRows {
		ctx.tuple = j
		row := make(relation.Tuple, len(info.outExprs))
		for i, e := range info.outExprs {
			v, err := ctx.evalExpr(e)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		k := row.Key()
		c, ok := cands[k]
		if !ok {
			c = &cand{out: row}
			cands[k] = c
		}
		c.rows = append(c.rows, j)
	}
	dctx := &evalCtx{
		session: s, world: ctx.world, names: ctx.names, schemas: ctx.schemas,
		schema: combined, lifted: ctx.lifted, outer: ctx.outer,
	}
	for _, c := range cands {
		covered := true
		for _, d := range divRows {
			ok := false
			for _, j := range c.rows {
				t := make(relation.Tuple, 0, len(combined))
				t = append(append(t, j...), d...)
				dctx.tuple = t
				match, err := dctx.evalBool(sel.Divide.On)
				if err != nil {
					return nil, err
				}
				if match {
					ok = true
					break
				}
			}
			if !ok {
				covered = false
				break
			}
		}
		if covered {
			out.Insert(c.out)
		}
	}
	return out, nil
}

// refNames flattens column references to their written names.
func refNames(refs []ColumnRef) []string {
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = r.Full()
	}
	return out
}

// splitChoice implements choice-of on the last relation: one world per
// combination of values of the given attributes; empty answers keep
// their world.
func splitChoice(ws *worldset.WorldSet, attrs []string) (*worldset.WorldSet, error) {
	k := ws.NumRelations() - 1
	idx, err := ws.Schemas()[k].Indexes(attrs)
	if err != nil {
		return nil, err
	}
	out := worldset.New(ws.Names(), ws.Schemas())
	ws.Each(func(w worldset.World) {
		r := w[k]
		if r.Empty() {
			out.Add(w)
			return
		}
		parts := map[string]*relation.Relation{}
		r.Each(func(t relation.Tuple) {
			var key []byte
			for _, i := range idx {
				key = t[i].AppendKey(key)
				key = append(key, 0x1f)
			}
			p, ok := parts[string(key)]
			if !ok {
				p = relation.New(r.Schema())
				parts[string(key)] = p
			}
			p.Insert(t)
		})
		for _, p := range parts {
			nw := append(worldset.World{}, w...)
			nw[k] = p
			out.Add(nw)
		}
	})
	return out, nil
}

// splitRepair implements repair-by-key on the last relation: one world
// per maximal repair under the key constraint.
func splitRepair(ws *worldset.WorldSet, attrs []string, maxWorlds int) (*worldset.WorldSet, error) {
	k := ws.NumRelations() - 1
	idx, err := ws.Schemas()[k].Indexes(attrs)
	if err != nil {
		return nil, err
	}
	out := worldset.New(ws.Names(), ws.Schemas())
	var evalErr error
	ws.Each(func(w worldset.World) {
		if evalErr != nil {
			return
		}
		r := w[k]
		groups := map[string][]relation.Tuple{}
		var order []string
		for _, t := range r.Tuples() {
			var key []byte
			for _, i := range idx {
				key = t[i].AppendKey(key)
				key = append(key, 0x1f)
			}
			if _, ok := groups[string(key)]; !ok {
				order = append(order, string(key))
			}
			groups[string(key)] = append(groups[string(key)], t)
		}
		// Guard with the same typed budget error wsd's Expand and the
		// store report, so every layer refuses runaway enumeration with
		// one shape.
		total := big.NewInt(1)
		var m big.Int
		for _, key := range order {
			total.Mul(total, m.SetInt64(int64(len(groups[key]))))
		}
		if !total.IsInt64() || total.Int64() > int64(maxWorlds) {
			evalErr = &wsd.BudgetError{Worlds: total, Budget: maxWorlds}
			return
		}
		choice := make([]int, len(order))
		for {
			rep := relation.New(r.Schema())
			for gi, key := range order {
				rep.Insert(groups[key][choice[gi]])
			}
			nw := append(worldset.World{}, w...)
			nw[k] = rep
			out.Add(nw)
			if out.Len() > maxWorlds {
				evalErr = &wsd.BudgetError{Worlds: big.NewInt(int64(out.Len())), Budget: maxWorlds}
				return
			}
			i := 0
			for ; i < len(order); i++ {
				choice[i]++
				if choice[i] < len(groups[order[i]]) {
					break
				}
				choice[i] = 0
			}
			if i == len(order) {
				break
			}
		}
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// applyClose implements possible/certain with optional group-worlds-by:
// worlds are grouped (by the grouping query's per-world answer, by a
// projection of the pre-answer, or all together), and each world's
// output is replaced by the union (possible) or intersection (certain)
// over its group.
func (s *Session) applyClose(sel *SelectStmt, info *selectInfo, ws *worldset.WorldSet, preIdx int) (*worldset.WorldSet, error) {
	k := ws.NumRelations() - 1

	groupKey := func(w worldset.World) (string, error) {
		gw := sel.GroupWorlds
		if gw == nil {
			return "", nil
		}
		if gw.Query != nil {
			single := worldset.New(ws.Names(), ws.Schemas())
			single.Add(w)
			res, err := s.evalSelect(gw.Query, single, nil)
			if err != nil {
				return "", err
			}
			worlds := res.Worlds()
			if len(worlds) != 1 {
				return "", fmt.Errorf("isql: group-worlds-by query must not create worlds")
			}
			return worlds[0][len(worlds[0])-1].ContentKey(), nil
		}
		idx, err := w[preIdx].Schema().Indexes(refNames(gw.Attrs))
		if err != nil {
			return "", err
		}
		return w[preIdx].Project(idx, relation.NewSchema(refNames(gw.Attrs)...)).ContentKey(), nil
	}

	agg := map[string]*relation.Relation{}
	var aggErr error
	ws.Each(func(w worldset.World) {
		if aggErr != nil {
			return
		}
		key, err := groupKey(w)
		if err != nil {
			aggErr = err
			return
		}
		cur, ok := agg[key]
		if !ok {
			agg[key] = w[k]
			return
		}
		if sel.Close == ClosePossible {
			merged := cur.Clone()
			w[k].Each(func(t relation.Tuple) { merged.Insert(t) })
			agg[key] = merged
		} else {
			next := relation.New(cur.Schema())
			cur.Each(func(t relation.Tuple) {
				if w[k].Contains(t) {
					next.Insert(t)
				}
			})
			agg[key] = next
		}
	})
	if aggErr != nil {
		return nil, aggErr
	}
	out := worldset.New(ws.Names(), ws.Schemas())
	ws.Each(func(w worldset.World) {
		if aggErr != nil {
			return
		}
		key, err := groupKey(w)
		if err != nil {
			aggErr = err
			return
		}
		nw := append(worldset.World{}, w...)
		nw[k] = agg[key]
		out.Add(nw)
	})
	if aggErr != nil {
		return nil, aggErr
	}
	return out, nil
}
