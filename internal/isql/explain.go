package isql

import (
	"fmt"
	"strings"

	"worldsetdb/internal/obs"
	"worldsetdb/internal/rewrite"
	"worldsetdb/internal/wsa"
)

// ExplainStmt wraps a statement for plan and trace inspection:
// `explain [analyze] <stmt>`. Bare EXPLAIN compiles a select and
// reports its lowered (and prelowered) World-set Algebra without
// executing; EXPLAIN ANALYZE executes the wrapped statement for real —
// DML commits — with a trace attached and renders the resulting span
// tree (parse → compile → rewrite → per-operator evaluation → commit →
// fsync) with merge costs and component ids.
type ExplainStmt struct {
	Analyze bool
	Stmt    Statement
}

func (*ExplainStmt) stmt() {}
func (s *ExplainStmt) String() string {
	if s.Analyze {
		return "explain analyze " + s.Stmt.String()
	}
	return "explain " + s.Stmt.String()
}

// execExplain runs an EXPLAIN statement. The ANALYZE form swaps a
// fresh trace root into the session, executes the inner statement
// through the ordinary Exec dispatch (so the measured path is exactly
// the served path), and renders plan plus span tree into the result
// message.
func (s *Session) execExplain(n *ExplainStmt) (*Result, error) {
	if !n.Analyze {
		return s.explainCompile(n.Stmt)
	}
	trace := obs.NewTrace("stmt")
	trace.Set("sql", n.Stmt.String())

	// Parse the inner statement's canonical text so the trace carries an
	// honest parse cost — the wrapped tree was parsed as part of the
	// EXPLAIN line, not on its own.
	psp := trace.Child("parse")
	inner, err := Parse(n.Stmt.String())
	psp.End()
	if err != nil {
		trace.Release()
		return nil, fmt.Errorf("isql: explain analyze: reparsing the statement: %w", err)
	}

	prev := s.span
	s.span = trace
	res, err := s.Exec(inner)
	s.span = prev
	trace.End()
	if err != nil {
		trace.Release()
		return nil, err
	}

	var b strings.Builder
	if res.Plan != nil {
		fmt.Fprintf(&b, "plan: %s\n", res.Plan)
	}
	b.WriteString(trace.Render())
	trace.Release()

	// Report the plan and span tree, not the rows: ANALYZE executes the
	// statement for real (DML commits), but its answer is the trace.
	out := &Result{
		Plan:    res.Plan,
		Message: strings.TrimRight(b.String(), "\n"),
	}
	return out, nil
}

// explainCompile is the bare EXPLAIN form: compile (and prelower) a
// select against the current snapshot and report the algebra without
// executing. Only selects compile to a standalone plan; other
// statements execute-to-plan and need ANALYZE.
func (s *Session) explainCompile(st Statement) (*Result, error) {
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("isql: explain without analyze supports select statements; use explain analyze for %T", st)
	}
	snap, err := s.snapshotForRead()
	if err != nil {
		return nil, err
	}
	q, err := s.compileOn(snap.DB.Names, snap.DB.Schemas, sel)
	if err != nil {
		if isFragmentError(err) {
			return &Result{Message: fmt.Sprintf(
				"outside the WSA fragment (%s): evaluates on the bounded dependent-component expansion", fragmentOp(err))}, nil
		}
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "compiled: %s", q)
	env := wsa.NewEnv(snap.DB.Names, snap.DB.Schemas)
	stats := rewrite.StatsOf(snap.DB)
	r := rewrite.PrelowerStats(q, env, stats, nil)
	if !wsa.Equal(r, q) {
		fmt.Fprintf(&b, "\nprelowered: %s", r)
	}
	// Per-operator estimated cost and cardinality under the catalog's
	// decomposition statistics — the numbers the plan was chosen by.
	fmt.Fprintf(&b, "\nestimates:\n%s", rewrite.ExplainEstimates(r, stats))
	return &Result{Message: b.String()}, nil
}
