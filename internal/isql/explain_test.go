package isql

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/obs"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/store"
)

// TestExplainAnalyzeGolden pins the normalized EXPLAIN ANALYZE span
// trees of the statement lifecycle end to end, against a WAL-backed
// catalog so the commit spans carry the group-commit queue wait and
// fsync: a census-repair CTAS over 2^40 worlds (native, with the full
// per-operator tree), a join whose entanglement resolves by one
// bounded component merge, an aggregate outside the WSA fragment
// (bounded legacy fallback), and a plain insert (commit + WAL only).
// Durations are normalized to t=X; everything else — span names,
// nesting, component counts, merge costs, batch sizes — must stay
// byte-identical.
func TestExplainAnalyzeGolden(t *testing.T) {
	dir := t.TempDir()
	cat, wal, err := OpenStore(filepath.Join(dir, "ckpt.wsd"), filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	s := FromCatalog(cat)

	// Seed: the 2^40-world census (1000 people, 40 uncertain) plus a
	// 3-row Tiny table for the merge and fallback statements.
	census := datagen.Census(1000, 40, 7)
	if err := importRelation(s, "Census", census); err != nil {
		t.Fatal(err)
	}
	setup := `
create table Tiny (V);
insert into Tiny values (1), (2), (3);
create table Pick1 as select * from Tiny choice of V;
create table Pick2 as select * from Tiny choice of V;
`
	if _, err := s.ExecScript(setup); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, sql := range []string{
		`explain analyze create table Clean as select * from Census repair by key SSN;`,
		`explain analyze select certain X.V from Pick1 X, Pick2 Y where X.V = Y.V;`,
		`explain analyze select sum(V) as S from Pick1;`,
		`explain analyze insert into Tiny values (9);`,
	} {
		res, err := s.ExecString(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		fmt.Fprintf(&b, "== %s\n%s\n", sql, obs.NormalizeDurations(res.Message))
	}
	got := b.String()
	// The repair-by-key CTAS took the catalog to 2^40 worlds (times the
	// 9 Pick1×Pick2 combinations) — the trace above really covers a
	// statement at paper scale.
	if lg := s.Worlds().BitLen() - 1; lg < 40 {
		t.Fatalf("post-repair worlds = 2^%d, want ≥ 2^40", lg)
	}

	goldenPath := filepath.Join("testdata", "explain_analyze.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (rerun with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("explain analyze output drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// importRelation installs a complete relation into the session catalog
// under the given name.
func importRelation(s *Session, name string, r *relation.Relation) error {
	return s.updateRouted(nil, func(tx *store.Tx) error {
		tx.Log(fmt.Sprintf("-- import %s", name))
		db := tx.DB().WithRelation(name, r.Schema(), r)
		tx.SetDB(db)
		return nil
	})
}

// TestExplainCompileOnly checks the bare EXPLAIN form: compiled (and
// prelowered) algebra without execution, and the fragment diagnosis
// for statements outside the clean WSA fragment.
func TestExplainCompileOnly(t *testing.T) {
	s := NewSession()
	if _, err := s.ExecScript(`create table R (A, B); insert into R values (1, 2);`); err != nil {
		t.Fatal(err)
	}
	res, err := s.ExecString(`explain select A from R;`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "compiled:") {
		t.Fatalf("explain message %q lacks compiled algebra", res.Message)
	}
	res, err = s.ExecString(`explain select sum(A) as S from R;`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "outside the WSA fragment") {
		t.Fatalf("explain message %q lacks fragment diagnosis", res.Message)
	}
	// EXPLAIN of transaction control is rejected at parse time.
	if _, err := Parse(`explain analyze begin;`); err == nil {
		t.Fatal("explain analyze begin parsed, want error")
	}
}

// TestExplainAnalyzeDoesNotLeakTrace checks the session span resets
// after EXPLAIN ANALYZE, so later statements run untraced.
func TestExplainAnalyzeDoesNotLeakTrace(t *testing.T) {
	s := NewSession()
	if _, err := s.ExecScript(`create table R (A); insert into R values (1);`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecString(`explain analyze select A from R;`); err != nil {
		t.Fatal(err)
	}
	if s.span != nil {
		t.Fatal("session span not reset after explain analyze")
	}
}
