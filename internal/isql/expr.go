package isql

import (
	"fmt"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
)

// resolve finds a column in the context chain, innermost scope first.
func (c *evalCtx) resolve(ref ColumnRef) (value.Value, error) {
	for cur := c; cur != nil; cur = cur.outer {
		if i := cur.schema.Index(ref.Full()); i >= 0 {
			return cur.tuple[i], nil
		}
	}
	return value.Null(), &columnNotFoundError{name: ref.Full()}
}

// evalBool evaluates a boolean expression.
func (c *evalCtx) evalBool(e Expr) (bool, error) {
	v, err := c.evalExpr(e)
	if err != nil {
		return false, err
	}
	if v.Kind() != value.KindBool {
		return false, fmt.Errorf("isql: expected boolean, got %s in %s", v.Kind(), e)
	}
	return v.AsBool(), nil
}

// evalExpr evaluates a scalar expression in the current context.
func (c *evalCtx) evalExpr(e Expr) (value.Value, error) {
	switch n := e.(type) {
	case *LitExpr:
		return n.Val, nil

	case *ParamExpr:
		return value.Null(), fmt.Errorf("isql: unbound parameter $%d (bind it with execute)", n.N)

	case *ColExpr:
		return c.resolve(n.Ref)

	case *BinExpr:
		l, err := c.evalExpr(n.L)
		if err != nil {
			return value.Null(), err
		}
		r, err := c.evalExpr(n.R)
		if err != nil {
			return value.Null(), err
		}
		switch n.Op {
		case "=", "!=", "<", "<=", ">", ">=":
			return value.Bool(cmpOp(n.Op, l, r)), nil
		case "+", "-", "*", "/":
			return arith(n.Op, l, r)
		}
		return value.Null(), fmt.Errorf("isql: unknown operator %q", n.Op)

	case *LogicExpr:
		l, err := c.evalBool(n.L)
		if err != nil {
			return value.Null(), err
		}
		// Short-circuit.
		if n.Op == "and" && !l {
			return value.Bool(false), nil
		}
		if n.Op == "or" && l {
			return value.Bool(true), nil
		}
		r, err := c.evalBool(n.R)
		if err != nil {
			return value.Null(), err
		}
		return value.Bool(r), nil

	case *NotExpr:
		b, err := c.evalBool(n.E)
		if err != nil {
			return value.Null(), err
		}
		return value.Bool(!b), nil

	case *AggExpr:
		return c.evalAgg(n)

	case *InExpr:
		rel, err := c.subRelation(n.Sub)
		if err != nil {
			return value.Null(), err
		}
		lv, err := c.evalExpr(n.Left)
		if err != nil {
			return value.Null(), err
		}
		col, err := matchColumn(rel.Schema(), n.Left)
		if err != nil {
			return value.Null(), err
		}
		found := false
		rel.Each(func(t relation.Tuple) {
			if t[col].Equal(lv) {
				found = true
			}
		})
		return value.Bool(found != n.Neg), nil

	case *ExistsExpr:
		rel, err := c.subRelation(n.Sub)
		if err != nil {
			return value.Null(), err
		}
		return value.Bool((rel.Len() > 0) != n.Neg), nil

	case *SubqueryExpr:
		rel, err := c.subRelation(n.Sub)
		if err != nil {
			return value.Null(), err
		}
		if len(rel.Schema()) != 1 {
			return value.Null(), fmt.Errorf("isql: scalar subquery must return one column, got %v", rel.Schema())
		}
		switch rel.Len() {
		case 0:
			return value.Null(), nil
		case 1:
			return rel.Tuples()[0][0], nil
		}
		return value.Null(), fmt.Errorf("isql: scalar subquery returned %d rows", rel.Len())
	}
	return value.Null(), fmt.Errorf("isql: unsupported expression %T", e)
}

// subRelation returns the subquery's answer in the current world: the
// lifted instance for uncorrelated subqueries, or a per-tuple evaluation
// for correlated ones.
func (c *evalCtx) subRelation(sub *SelectStmt) (*relation.Relation, error) {
	if idx, ok := c.lifted[sub]; ok {
		return c.world[idx], nil
	}
	single := worldset.New(c.names, c.schemas)
	single.Add(c.world[:len(c.names)])
	res, err := c.session.evalSelect(sub, single, c)
	if err != nil {
		return nil, err
	}
	worlds := res.Worlds()
	if len(worlds) != 1 {
		return nil, fmt.Errorf("isql: correlated subquery created %d worlds", len(worlds))
	}
	w := worlds[0]
	return w[len(w)-1], nil
}

// matchColumn picks the subquery column an IN test compares against:
// the column with the same unqualified name as the left-hand column, or
// the only column.
func matchColumn(s relation.Schema, left Expr) (int, error) {
	if col, ok := left.(*ColExpr); ok {
		want := col.Ref.Name
		found := -1
		for i, n := range s {
			if unqualified(n) == want {
				if found >= 0 {
					return 0, fmt.Errorf("isql: ambiguous IN column %q in %v", want, s)
				}
				found = i
			}
		}
		if found >= 0 {
			return found, nil
		}
	}
	if len(s) == 1 {
		return 0, nil
	}
	return 0, fmt.Errorf("isql: cannot determine IN comparison column in %v", s)
}

func cmpOp(op string, l, r value.Value) bool {
	c := l.Compare(r)
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

func arith(op string, l, r value.Value) (value.Value, error) {
	if !l.IsNumeric() || !r.IsNumeric() {
		return value.Null(), fmt.Errorf("isql: arithmetic on non-numeric values %s, %s", l, r)
	}
	if l.Kind() == value.KindInt && r.Kind() == value.KindInt && op != "/" {
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case "+":
			return value.Int(a + b), nil
		case "-":
			return value.Int(a - b), nil
		case "*":
			return value.Int(a * b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case "+":
		return value.Float(a + b), nil
	case "-":
		return value.Float(a - b), nil
	case "*":
		return value.Float(a * b), nil
	case "/":
		if b == 0 {
			return value.Null(), fmt.Errorf("isql: division by zero")
		}
		return value.Float(a / b), nil
	}
	return value.Null(), fmt.Errorf("isql: unknown arithmetic operator %q", op)
}

// evalAgg evaluates an aggregate over the current group's rows.
func (c *evalCtx) evalAgg(a *AggExpr) (value.Value, error) {
	if c.groupRows == nil {
		return value.Null(), fmt.Errorf("isql: aggregate %s outside an aggregation context", a)
	}
	if a.Star {
		if a.Fn != "count" {
			return value.Null(), fmt.Errorf("isql: %s(*) is not valid", a.Fn)
		}
		return value.Int(int64(len(c.groupRows))), nil
	}
	saved := c.tuple
	defer func() { c.tuple = saved }()

	var (
		count    int64
		sumInt   int64
		sumFloat float64
		allInt   = true
		min, max value.Value
	)
	for _, row := range c.groupRows {
		c.tuple = row
		v, err := c.evalExpr(a.Arg)
		if err != nil {
			return value.Null(), err
		}
		if v.IsNull() {
			continue
		}
		count++
		if a.Fn == "sum" || a.Fn == "avg" {
			if !v.IsNumeric() {
				return value.Null(), fmt.Errorf("isql: %s over non-numeric value %s", a.Fn, v)
			}
			if v.Kind() == value.KindInt {
				sumInt += v.AsInt()
			} else {
				allInt = false
			}
			sumFloat += v.AsFloat()
		}
		if count == 1 {
			min, max = v, v
		} else {
			if v.Less(min) {
				min = v
			}
			if max.Less(v) {
				max = v
			}
		}
	}
	switch a.Fn {
	case "count":
		return value.Int(count), nil
	case "sum":
		// SUM over the empty set is 0 here (documented deviation from
		// SQL's NULL): the §2 revenue comparisons subtract sums and a
		// missing year should contribute no revenue.
		if count == 0 {
			return value.Int(0), nil
		}
		if allInt {
			return value.Int(sumInt), nil
		}
		return value.Float(sumFloat), nil
	case "avg":
		if count == 0 {
			return value.Null(), nil
		}
		return value.Float(sumFloat / float64(count)), nil
	case "min":
		if count == 0 {
			return value.Null(), nil
		}
		return min, nil
	case "max":
		if count == 0 {
			return value.Null(), nil
		}
		return max, nil
	}
	return value.Null(), fmt.Errorf("isql: unknown aggregate %q", a.Fn)
}
