package isql

import (
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
)

func strTuple(vals ...string) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = value.Str(v)
	}
	return t
}

func flightsSession() *Session {
	return FromDB([]string{"HFlights"}, []*relation.Relation{datagen.PaperFlights()})
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.ExecString(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

// singleAnswer asserts the query has exactly one distinct answer across
// worlds and returns it.
func singleAnswer(t *testing.T, s *Session, sql string) *relation.Relation {
	t.Helper()
	res := mustExec(t, s, sql)
	if len(res.Answers) != 1 {
		t.Fatalf("%s: expected one distinct answer, got %d", sql, len(res.Answers))
	}
	return res.Answers[0]
}

// TestTripPlanningCertain runs the §2 trip-planning query through the
// I-SQL front end: `select certain Arr from HFlights choice of Dep`
// returns {ATL}.
func TestTripPlanningCertain(t *testing.T) {
	got := singleAnswer(t, flightsSession(), "select certain Arr from HFlights choice of Dep;")
	want := relation.FromRows(relation.NewSchema("Arr"), strTuple("ATL"))
	if !got.Equal(want) {
		t.Fatalf("certain arrivals = %v, want {ATL}", got)
	}
}

// TestTripPlanningThreeWays checks the §2 claim that the same question
// is expressible (1) in I-SQL with choice-of + certain, (2) in SQL with
// a division operator, and (3) in plain SQL with two not-exists — all
// returning the same answer.
func TestTripPlanningThreeWays(t *testing.T) {
	queries := []string{
		"select certain Arr from HFlights choice of Dep;",

		"select Arr from (select Arr, Dep from HFlights) as F1 " +
			"divide by (select Dep from HFlights) as F2 on F1.Dep = F2.Dep;",

		"select F1.Arr from HFlights F1 where not exists " +
			"(select * from HFlights F2 where not exists " +
			"(select * from HFlights F3 where F3.Dep = F2.Dep and F3.Arr = F1.Arr));",
	}
	want := relation.FromRows(relation.NewSchema("Arr"), strTuple("ATL"))
	for _, q := range queries {
		got := singleAnswer(t, flightsSession(), q)
		if !got.EqualContents(want) {
			t.Errorf("%s\n  returned %v, want {ATL}", q, got)
		}
	}
}

// TestExample32Delete reproduces Example 3.2 / Figure 2(c): deleting the
// ATL rows in the world-set of Figure 2(b).
func TestExample32Delete(t *testing.T) {
	schema := relation.NewSchema("Dep", "Arr")
	ws := worldset.New([]string{"Flights"}, []relation.Schema{schema})
	ws.Add(worldset.World{relation.FromRows(schema,
		strTuple("FRA", "BCN"), strTuple("FRA", "ATL"))})
	ws.Add(worldset.World{relation.FromRows(schema,
		strTuple("PAR", "ATL"), strTuple("PAR", "BCN"))})
	ws.Add(worldset.World{relation.FromRows(schema, strTuple("PHL", "ATL"))})
	s := FromWorldSet(ws)

	res := mustExec(t, s, "delete from Flights where Arr = 'ATL';")
	if res.Affected != 3 {
		t.Errorf("deleted %d tuples, want 3 (one ATL row per world)", res.Affected)
	}
	// Figure 2(c): {FRA→BCN}, {PAR→BCN}, {} — three worlds.
	if s.WorldSet().Len() != 3 {
		t.Fatalf("world count = %d, want 3\n%s", s.WorldSet().Len(), s.WorldSet())
	}
	want := map[string]bool{
		relation.FromRows(schema, strTuple("FRA", "BCN")).ContentKey(): true,
		relation.FromRows(schema, strTuple("PAR", "BCN")).ContentKey(): true,
		relation.New(schema).ContentKey():                              true,
	}
	for _, w := range s.WorldSet().Worlds() {
		if !want[w[0].ContentKey()] {
			t.Errorf("unexpected world contents:\n%s", w[0])
		}
	}
}

// TestAcquisitionScenario executes the full §2 business-decision script:
// choose a company, one employee leaves, certain skills per target,
// possible targets guaranteeing 'Web'. The paper's tables U, V, W and
// Result are checked at each step.
func TestAcquisitionScenario(t *testing.T) {
	s := FromDB([]string{"Company_Emp", "Emp_Skills"},
		[]*relation.Relation{datagen.PaperCompanyEmp(), datagen.PaperEmpSkills()})

	mustExec(t, s, "create table U as select * from Company_Emp choice of CID;")
	if s.WorldSet().Len() != 2 {
		t.Fatalf("after U: %d worlds, want 2", s.WorldSet().Len())
	}

	mustExec(t, s, `create table V as
		select R1.CID, R1.EID
		from Company_Emp R1, (select * from U choice of EID) R2
		where R1.CID = R2.CID and R1.EID != R2.EID;`)
	if s.WorldSet().Len() != 5 {
		t.Fatalf("after V: %d worlds, want 5\n%s", s.WorldSet().Len(), s.WorldSet())
	}

	mustExec(t, s, `create table W as
		select certain CID, Skill
		from V, Emp_Skills
		where V.EID = Emp_Skills.EID
		group worlds by (select CID from V);`)
	// W is (ACME, Web) in the two ACME worlds and (HAL, Java) in the
	// three HAL worlds.
	wIdx := s.WorldSet().IndexOf("W")
	wantACME := relation.FromRows(relation.NewSchema("CID", "Skill"), strTuple("ACME", "Web"))
	wantHAL := relation.FromRows(relation.NewSchema("CID", "Skill"), strTuple("HAL", "Java"))
	acme, hal := 0, 0
	for _, w := range s.WorldSet().Worlds() {
		switch {
		case w[wIdx].EqualContents(wantACME):
			acme++
		case w[wIdx].EqualContents(wantHAL):
			hal++
		default:
			t.Errorf("unexpected W:\n%s", w[wIdx])
		}
	}
	if acme != 2 || hal != 3 {
		t.Errorf("W distribution: %d ACME worlds and %d HAL worlds, want 2 and 3", acme, hal)
	}

	got := singleAnswer(t, s, "select possible CID from W where Skill = 'Web';")
	want := relation.FromRows(relation.NewSchema("CID"), strTuple("ACME"))
	if !got.EqualContents(want) {
		t.Fatalf("possible targets = %v, want {ACME}", got)
	}
}

// tpchLineitem builds a small Lineitem instance where exactly year 2000
// loses more than 1,000,000 when quantity 100 disappears.
func tpchLineitem() *relation.Relation {
	mk := func(p string, q, price, y int64) relation.Tuple {
		return relation.Tuple{value.Str(p), value.Int(q), value.Int(price), value.Int(y)}
	}
	return relation.FromRows(relation.NewSchema("Product", "Quantity", "Price", "Year"),
		mk("P1", 100, 1200000, 2000),
		mk("P2", 200, 700000, 2000),
		mk("P3", 100, 500000, 2001),
		mk("P4", 200, 100000, 2001),
		mk("P5", 100, 900000, 2002),
		mk("P6", 200, 300000, 2002),
	)
}

// TestTPCHWhatIf reproduces the §2 TPC-H Q17-style what-if analysis:
// years losing over 1,000,000 of revenue if some quantity is no longer
// available.
func TestTPCHWhatIf(t *testing.T) {
	s := FromDB([]string{"Lineitem"}, []*relation.Relation{tpchLineitem()})

	mustExec(t, s, `create view YearQuantity as
		select A.Year, sum(A.Price) as Revenue
		from (select * from Lineitem choice of Year) as A
		where Quantity not in (select * from Lineitem choice of Quantity)
		group by A.Year;`)

	got := singleAnswer(t, s, `select possible Year from YearQuantity as Y
		where (select sum(Price) from Lineitem where Lineitem.Year = Y.Year) - Y.Revenue > 1000000;`)
	want := relation.FromRows(relation.NewSchema("Year"), relation.Tuple{value.Int(2000)})
	if !got.EqualContents(want) {
		t.Fatalf("years with >1M loss = %v, want {2000}", got)
	}
}

// TestCensusRepair reproduces the §2 data-cleaning scenario: the
// repair-by-key view of an inconsistent Census relation.
func TestCensusRepair(t *testing.T) {
	s := FromDB([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	res := mustExec(t, s, "select * from Census repair by key SSN;")
	if got := len(res.Answers); got != 4 {
		t.Fatalf("distinct repairs = %d, want 4", got)
	}
	for _, rep := range res.Answers {
		if rep.Len() != 3 {
			t.Errorf("repair should keep 3 tuples (one per SSN), got %d", rep.Len())
		}
		seen := map[string]bool{}
		rep.Each(func(tup relation.Tuple) {
			k := tup[rep.Schema().Index("SSN")].Key()
			if seen[k] {
				t.Errorf("repair violates the SSN key:\n%s", rep)
			}
			seen[k] = true
		})
	}
}

// TestInsertIntoAllWorlds checks the DML semantics of §3: an insert
// applies in every world.
func TestInsertIntoAllWorlds(t *testing.T) {
	s := flightsSession()
	mustExec(t, s, "create table Chosen as select * from HFlights choice of Dep;")
	if s.WorldSet().Len() != 3 {
		t.Fatalf("want 3 worlds")
	}
	mustExec(t, s, "insert into Chosen values ('ZRH', 'BCN');")
	idx := s.WorldSet().IndexOf("Chosen")
	for _, w := range s.WorldSet().Worlds() {
		if !w[idx].Contains(strTuple("ZRH", "BCN")) {
			t.Fatalf("insert missing from a world:\n%s", w[idx])
		}
	}
}

// TestUpdateInAllWorlds checks updates run per world.
func TestUpdateInAllWorlds(t *testing.T) {
	s := flightsSession()
	res := mustExec(t, s, "update HFlights set Arr = 'BCN' where Arr = 'ATL';")
	if res.Affected != 3 {
		t.Fatalf("updated %d rows, want 3", res.Affected)
	}
	got := singleAnswer(t, s, "select Arr from HFlights;")
	want := relation.FromRows(relation.NewSchema("Arr"), strTuple("BCN"))
	if !got.EqualContents(want) {
		t.Fatalf("arrivals after update = %v, want {BCN}", got)
	}
}

// TestGroupWorldsByAttrShorthand checks the attribute-list form of
// group-worlds-by (§3: a projection query may be abbreviated by its
// attribute list).
func TestGroupWorldsByAttrShorthand(t *testing.T) {
	s := flightsSession()
	// Group the departure worlds by Dep (each its own group): certain
	// arrivals per departure = all of that departure's arrivals.
	res := mustExec(t, s,
		"select certain Arr from HFlights choice of Dep group worlds by Dep;")
	// FRA and PAR share the arrival set {ATL, BCN}; PHL has {ATL} —
	// two distinct per-departure answers.
	if len(res.Answers) != 2 {
		t.Fatalf("expected 2 distinct per-departure answers, got %d", len(res.Answers))
	}
}

// TestAggregates exercises SUM/COUNT/AVG/MIN/MAX.
func TestAggregates(t *testing.T) {
	s := FromDB([]string{"Lineitem"}, []*relation.Relation{tpchLineitem()})
	got := singleAnswer(t, s,
		"select Year, count(*) as N, sum(Price) as Total, min(Price) as Lo, max(Price) as Hi from Lineitem group by Year;")
	if got.Len() != 3 {
		t.Fatalf("expected 3 year groups, got %d:\n%s", got.Len(), got)
	}
	want2000 := relation.Tuple{value.Int(2000), value.Int(2), value.Int(1900000),
		value.Int(700000), value.Int(1200000)}
	if !got.Contains(want2000) {
		t.Fatalf("missing year-2000 aggregate row in\n%s", got)
	}
}

// TestScalarSubqueryAndArithmetic checks correlated scalar subqueries in
// conditions.
func TestScalarSubqueryAndArithmetic(t *testing.T) {
	s := FromDB([]string{"Lineitem"}, []*relation.Relation{tpchLineitem()})
	got := singleAnswer(t, s, `select L.Product from Lineitem L
		where L.Price * 2 > (select sum(Price) from Lineitem where Lineitem.Year = L.Year);`)
	// Products contributing more than half of their year's revenue:
	// P1 (2.4M > 1.9M), P3 (1M > 0.6M), P5 (1.8M > 1.2M).
	want := relation.FromRows(relation.NewSchema("Product"),
		strTuple("P1"), strTuple("P3"), strTuple("P5"))
	if !got.EqualContents(want) {
		t.Fatalf("got %v, want P1, P3, P5", got)
	}
}

// TestViewExpansion checks that views with world-creating bodies expand
// compositionally.
func TestViewExpansion(t *testing.T) {
	s := flightsSession()
	mustExec(t, s, "create view PerDep as select * from HFlights choice of Dep;")
	got := singleAnswer(t, s, "select certain Arr from PerDep;")
	want := relation.FromRows(relation.NewSchema("Arr"), strTuple("ATL"))
	if !got.EqualContents(want) {
		t.Fatalf("certain arrivals through view = %v, want {ATL}", got)
	}
}

// TestParserErrors checks a few malformed statements fail with position
// information rather than panicking.
func TestParserErrors(t *testing.T) {
	bad := []string{
		"select from X;",
		"select * X;",
		"select * from (select * from X);", // missing derived alias
		"insert into X values 1, 2;",
		"select * from X where A = 'unterminated;",
		"select certain A from X group worlds by;",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		}
	}
}

// TestSelectStarDeQualification checks output naming: select * strips
// qualifiers when unambiguous.
func TestSelectStarDeQualification(t *testing.T) {
	s := flightsSession()
	got := singleAnswer(t, s, "select * from HFlights F where F.Arr = 'BCN';")
	if !got.Schema().Equal(relation.NewSchema("Dep", "Arr")) {
		t.Fatalf("schema = %v, want (Dep, Arr)", got.Schema())
	}
	if got.Len() != 2 {
		t.Fatalf("rows = %d, want 2", got.Len())
	}
}

// TestRepairLimit ensures runaway repairs are refused.
func TestRepairLimit(t *testing.T) {
	s := FromDB([]string{"Census"}, []*relation.Relation{datagen.Census(40, 40, 7)})
	s.MaxWorlds = 512
	if _, err := s.ExecString("select * from Census repair by key SSN;"); err == nil {
		t.Fatal("expected a world-limit error")
	}
}
