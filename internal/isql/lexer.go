package isql

import (
	"strings"
	"unicode"
)

// Lex tokenizes an I-SQL input. Comments run from "--" to end of line.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			toks = append(toks, Token{Kind: TokIdent, Text: input[start:i], Pos: start})
		case c >= '0' && c <= '9':
			start := i
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.') {
				// Stop a trailing dot that is qualification, e.g. "1.CID"
				// is not valid here, but "1.5" is; accept digits after dot.
				if input[i] == '.' && (i+1 >= n || input[i+1] < '0' || input[i+1] > '9') {
					break
				}
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '$':
			start := i
			i++
			digits := i
			for i < n && input[i] >= '0' && input[i] <= '9' {
				i++
			}
			if i == digits {
				return nil, errf(start, "expected parameter number after '$'")
			}
			toks = append(toks, Token{Kind: TokParam, Text: input[digits:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				for i < n && input[i] != '\'' {
					sb.WriteByte(input[i])
					i++
				}
				if i >= n {
					return nil, errf(start, "unterminated string literal")
				}
				i++ // closing quote...
				// ...unless doubled: '' inside a literal is one quote (the
				// SQL convention renderLiteral emits).
				if i < n && input[i] == '\'' {
					sb.WriteByte('\'')
					i++
					continue
				}
				break
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		default:
			start := i
			// Multi-character operators first.
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "!=", "<>", "<=", ">=":
				toks = append(toks, Token{Kind: TokSymbol, Text: two, Pos: start})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', ';', '*', '=', '<', '>', '.', '+', '-', '/':
				toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: start})
				i++
			default:
				return nil, errf(start, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
