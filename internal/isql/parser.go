package isql

import (
	"strings"

	"worldsetdb/internal/value"
)

// Parse parses a single I-SQL statement (a trailing semicolon is
// allowed).
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, errf(p.peek().Pos, "unexpected trailing input %q", p.peek().Text)
	}
	return st, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(input string) ([]Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Statement
	for !p.atEOF() {
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.accept(";") && !p.atEOF() {
			return nil, errf(p.peek().Pos, "expected ';' between statements, got %q", p.peek().Text)
		}
		for p.accept(";") {
		}
	}
	return out, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token   { return p.toks[p.pos] }
func (p *parser) atEOF() bool   { return p.peek().Kind == TokEOF }
func (p *parser) next() Token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(m int) { p.pos = m }

// isKw reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *parser) isKw(kw string) bool {
	t := p.peek()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

// acceptKw consumes the keyword if present.
func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.pos++
		return true
	}
	return false
}

// expectKw consumes the keyword or fails.
func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return errf(p.peek().Pos, "expected %q, got %q", kw, p.peek().Text)
	}
	return nil
}

// accept consumes the symbol if present.
func (p *parser) accept(sym string) bool {
	t := p.peek()
	if t.Kind == TokSymbol && t.Text == sym {
		p.pos++
		return true
	}
	return false
}

// expect consumes the symbol or fails.
func (p *parser) expect(sym string) error {
	if !p.accept(sym) {
		return errf(p.peek().Pos, "expected %q, got %q", sym, p.peek().Text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", errf(t.Pos, "expected identifier, got %q", t.Text)
	}
	p.pos++
	return t.Text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isKw("select"):
		return p.parseSelect()
	case p.isKw("insert"):
		return p.parseInsert()
	case p.isKw("delete"):
		return p.parseDelete()
	case p.isKw("update"):
		return p.parseUpdate()
	case p.isKw("create"):
		return p.parseCreate()
	case p.isKw("drop"):
		return p.parseDrop()
	case p.isKw("begin"):
		p.next()
		p.acceptKw("transaction") // optional noise word
		return &BeginStmt{}, nil
	case p.isKw("commit"):
		p.next()
		return &CommitStmt{}, nil
	case p.isKw("rollback"):
		p.next()
		return &RollbackStmt{}, nil
	case p.isKw("prepare"):
		return p.parsePrepare()
	case p.isKw("execute"):
		p.next()
		return p.parseExecuteCall()
	case p.isKw("explain"):
		return p.parseExplain()
	}
	return nil, errf(p.peek().Pos, "expected a statement, got %q", p.peek().Text)
}

// parseExplain parses `explain [analyze] <statement>`.
func (p *parser) parseExplain() (Statement, error) {
	if err := p.expectKw("explain"); err != nil {
		return nil, err
	}
	analyze := p.acceptKw("analyze")
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	switch st.(type) {
	case *BeginStmt, *CommitStmt, *RollbackStmt, *PrepareStmt, *ExplainStmt:
		return nil, errf(p.peek().Pos, "cannot explain a %s statement", st)
	}
	return &ExplainStmt{Analyze: analyze, Stmt: st}, nil
}

// parsePrepare parses `prepare <name> as <statement>`.
func (p *parser) parsePrepare() (Statement, error) {
	if err := p.expectKw("prepare"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("as"); err != nil {
		return nil, err
	}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	switch st.(type) {
	case *BeginStmt, *CommitStmt, *RollbackStmt, *PrepareStmt, *ExecuteStmt, *ExplainStmt:
		return nil, errf(p.peek().Pos, "cannot prepare a %s statement", st)
	}
	return &PrepareStmt{Name: name, Stmt: st}, nil
}

// parseExecuteCall parses `<name> [( literal, ... )]` — the body of an
// EXECUTE statement, shared with the server's /execute endpoint where
// the `execute` keyword is implied.
func (p *parser) parseExecuteCall() (*ExecuteStmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &ExecuteStmt{Name: name}
	if p.accept("(") {
		if !p.accept(")") {
			for {
				v, err := p.parseLiteral()
				if err != nil {
					return nil, err
				}
				st.Args = append(st.Args, v)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

// ParseExecuteCall parses the bare prepared-statement invocation form
// `name` or `name(arg, ...)` — what the isqld /execute endpoint
// receives, sparing the request the full statement grammar.
func ParseExecuteCall(input string) (*ExecuteStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseExecuteCall()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, errf(p.peek().Pos, "unexpected trailing input %q", p.peek().Text)
	}
	return st, nil
}

// reservedAfterFrom are keywords that terminate an implicit alias.
var reservedAfterFrom = map[string]bool{
	"where": true, "group": true, "choice": true, "repair": true,
	"divide": true, "on": true, "as": true, "from": true, "and": true,
	"or": true, "not": true, "in": true, "exists": true, "values": true,
	"set": true, "order": true, "select": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.acceptKw("possible") {
		s.Close = ClosePossible
	} else if p.acceptKw("certain") {
		s.Close = CloseCertain
	}
	if p.accept("*") {
		s.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, item)
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, item)
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKw("divide") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		item, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		on, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		s.Divide = &DivideClause{Item: item, On: on}
	}
	if p.acceptKw("where") {
		w, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	// "group by" vs "group worlds by" need lookahead.
	for {
		switch {
		case p.isKw("group"):
			mark := p.save()
			p.next()
			if p.acceptKw("worlds") {
				if err := p.expectKw("by"); err != nil {
					return nil, err
				}
				gw, err := p.parseGroupWorlds()
				if err != nil {
					return nil, err
				}
				s.GroupWorlds = gw
				continue
			}
			if p.acceptKw("by") {
				refs, err := p.parseRefList()
				if err != nil {
					return nil, err
				}
				s.GroupBy = refs
				continue
			}
			p.restore(mark)
			return s, nil
		case p.isKw("choice"):
			p.next()
			if err := p.expectKw("of"); err != nil {
				return nil, err
			}
			refs, err := p.parseRefList()
			if err != nil {
				return nil, err
			}
			s.ChoiceOf = refs
		case p.isKw("repair"):
			p.next()
			if err := p.expectKw("by"); err != nil {
				return nil, err
			}
			if err := p.expectKw("key"); err != nil {
				return nil, err
			}
			refs, err := p.parseRefList()
			if err != nil {
				return nil, err
			}
			s.RepairKey = refs
		default:
			return s, nil
		}
	}
}

func (p *parser) parseGroupWorlds() (*GroupWorldsClause, error) {
	if p.accept("(") {
		if p.isKw("select") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &GroupWorldsClause{Query: sub}, nil
		}
		refs, err := p.parseRefList()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &GroupWorldsClause{Attrs: refs}, nil
	}
	refs, err := p.parseRefList()
	if err != nil {
		return nil, err
	}
	return &GroupWorldsClause{Attrs: refs}, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("as") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if t := p.peek(); t.Kind == TokIdent && !reservedAfterFrom[strings.ToLower(t.Text)] {
		item.Alias = t.Text
		p.pos++
	}
	return item, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	var item FromItem
	if p.accept("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return item, err
		}
		if err := p.expect(")"); err != nil {
			return item, err
		}
		item.Sub = sub
	} else {
		name, err := p.ident()
		if err != nil {
			return item, err
		}
		item.Table = name
	}
	if p.acceptKw("as") {
		a, err := p.ident()
		if err != nil {
			return item, err
		}
		item.Alias = a
	} else if t := p.peek(); t.Kind == TokIdent && !reservedAfterFrom[strings.ToLower(t.Text)] {
		item.Alias = t.Text
		p.pos++
	}
	if item.Sub != nil && item.Alias == "" {
		return item, errf(p.peek().Pos, "derived table requires an alias")
	}
	return item, nil
}

func (p *parser) parseRefList() ([]ColumnRef, error) {
	var out []ColumnRef
	for {
		r, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		if !p.accept(",") {
			break
		}
	}
	return out, nil
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	name, err := p.ident()
	if err != nil {
		return ColumnRef{}, err
	}
	if p.accept(".") {
		col, err := p.ident()
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Qualifier: name, Name: col}, nil
	}
	return ColumnRef{Name: name}, nil
}

// parseCondition parses a boolean expression (OR-level).
func (p *parser) parseCondition() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &LogicExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &LogicExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKw("not") {
		if p.isKw("exists") {
			p.next()
			sub, err := p.parseParenSelect()
			if err != nil {
				return nil, err
			}
			return &ExistsExpr{Sub: sub, Neg: true}, nil
		}
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	if p.isKw("exists") {
		p.next()
		sub, err := p.parseParenSelect()
		if err != nil {
			return nil, err
		}
		return &ExistsExpr{Sub: sub}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseParenSelect() (*SelectStmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	sub, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return sub, nil
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	// IN / NOT IN.
	if p.acceptKw("not") {
		if err := p.expectKw("in"); err != nil {
			return nil, err
		}
		sub, err := p.parseParenSelect()
		if err != nil {
			return nil, err
		}
		return &InExpr{Left: l, Sub: sub, Neg: true}, nil
	}
	if p.acceptKw("in") {
		sub, err := p.parseParenSelect()
		if err != nil {
			return nil, err
		}
		return &InExpr{Left: l, Sub: sub}, nil
	}
	t := p.peek()
	if t.Kind == TokSymbol {
		switch t.Text {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			op := t.Text
			if op == "<>" {
				op = "!="
			}
			return &BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	// A parenthesized boolean expression is already a condition.
	if isBooleanExpr(l) {
		return l, nil
	}
	return nil, errf(t.Pos, "expected comparison operator, got %q", t.Text)
}

// isBooleanExpr reports whether e is condition-shaped (produced by a
// comparison, connective or quantifier) rather than a scalar.
func isBooleanExpr(e Expr) bool {
	switch n := e.(type) {
	case *LogicExpr, *NotExpr, *InExpr, *ExistsExpr:
		return true
	case *BinExpr:
		switch n.Op {
		case "=", "!=", "<", "<=", ">", ">=":
			return true
		}
	}
	return false
}

// parseExpr parses additive arithmetic.
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokSymbol && (t.Text == "+" || t.Text == "-") {
			p.next()
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokSymbol && (t.Text == "*" || t.Text == "/") {
			p.next()
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

var aggFns = map[string]bool{"sum": true, "count": true, "avg": true, "min": true, "max": true}

func (p *parser) parseFactor() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		return &LitExpr{Val: value.Parse(t.Text)}, nil
	case TokString:
		p.next()
		return &LitExpr{Val: value.Str(t.Text)}, nil
	case TokParam:
		p.next()
		n, err := parseParamNumber(t)
		if err != nil {
			return nil, err
		}
		return &ParamExpr{N: n}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.next()
			if p.isKw("select") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Sub: sub}, nil
			}
			// A parenthesized operand is either a boolean condition or a
			// plain arithmetic expression (`X * (0 - 2)`); try the wider
			// condition grammar first and fall back.
			mark := p.save()
			if e, err := p.parseCondition(); err == nil {
				if err := p.expect(")"); err == nil {
					return e, nil
				}
			}
			p.restore(mark)
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "-" {
			p.next()
			e, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: "-", L: &LitExpr{Val: value.Int(0)}, R: e}, nil
		}
	case TokIdent:
		lower := strings.ToLower(t.Text)
		switch lower {
		case "null":
			p.next()
			return &LitExpr{Val: value.Null()}, nil
		case "true", "false":
			p.next()
			return &LitExpr{Val: value.Bool(lower == "true")}, nil
		}
		if aggFns[lower] && p.toks[p.pos+1].Kind == TokSymbol && p.toks[p.pos+1].Text == "(" {
			p.next()
			p.next() // '('
			if p.accept("*") {
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return &AggExpr{Fn: lower, Star: true}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &AggExpr{Fn: lower, Arg: arg}, nil
		}
		ref, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		return &ColExpr{Ref: ref}, nil
	}
	return nil, errf(t.Pos, "expected expression, got %q", t.Text)
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKw("insert"); err != nil {
		return nil, err
	}
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("values"); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	hasParams := false
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []value.Value
		var params []int
		for {
			if t := p.peek(); t.Kind == TokParam {
				p.next()
				n, err := parseParamNumber(t)
				if err != nil {
					return nil, err
				}
				row = append(row, value.Null())
				params = append(params, n)
				hasParams = true
			} else {
				v, err := p.parseLiteral()
				if err != nil {
					return nil, err
				}
				row = append(row, v)
				params = append(params, 0)
			}
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		st.Params = append(st.Params, params)
		if !p.accept(",") {
			break
		}
	}
	if !hasParams {
		st.Params = nil
	}
	return st, nil
}

// parseParamNumber converts a TokParam's digits to its 1-based index.
func parseParamNumber(t Token) (int, error) {
	n := 0
	for _, c := range t.Text {
		n = n*10 + int(c-'0')
		if n > 1<<16 {
			return 0, errf(t.Pos, "parameter number $%s out of range", t.Text)
		}
	}
	if n == 0 {
		return 0, errf(t.Pos, "parameters are numbered from $1")
	}
	return n, nil
}

func (p *parser) parseLiteral() (value.Value, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		return value.Parse(t.Text), nil
	case TokString:
		p.next()
		return value.Str(t.Text), nil
	case TokIdent:
		lower := strings.ToLower(t.Text)
		switch lower {
		case "null":
			p.next()
			return value.Null(), nil
		case "true", "false":
			p.next()
			return value.Bool(lower == "true"), nil
		}
	case TokSymbol:
		if t.Text == "-" {
			p.next()
			v, err := p.parseLiteral()
			if err != nil {
				return value.Null(), err
			}
			switch v.Kind() {
			case value.KindInt:
				return value.Int(-v.AsInt()), nil
			case value.KindFloat:
				return value.Float(-v.AsFloat()), nil
			}
			return value.Null(), errf(t.Pos, "cannot negate non-numeric literal")
		}
	}
	return value.Null(), errf(t.Pos, "expected literal, got %q", t.Text)
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKw("delete"); err != nil {
		return nil, err
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.acceptKw("where") {
		w, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKw("update"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	for {
		ref, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, SetClause{Col: ref, Expr: e})
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKw("where") {
		w, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKw("create"); err != nil {
		return nil, err
	}
	if p.acceptKw("view") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("as"); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{Name: name, Query: sub}, nil
	}
	if p.acceptKw("table") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.acceptKw("as") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			return &CreateTableAsStmt{Name: name, Query: sub}, nil
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &CreateTableStmt{Name: name, Columns: cols}, nil
	}
	return nil, errf(p.peek().Pos, "expected VIEW or TABLE after CREATE")
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKw("drop"); err != nil {
		return nil, err
	}
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name}, nil
}
