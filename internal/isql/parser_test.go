package isql

import (
	"strings"
	"testing"

	"worldsetdb/internal/value"
)

// TestParseRoundTrip checks that parsing the String() rendering of a
// parsed statement reproduces the same rendering — the stability
// property the tooling relies on.
func TestParseRoundTrip(t *testing.T) {
	statements := []string{
		"select * from Flights;",
		"select certain Arr from HFlights choice of Dep;",
		"select possible CID from W where Skill = 'Web';",
		"select R1.CID, R1.EID from Company_Emp R1, (select * from U choice of EID) R2 where R1.CID = R2.CID and R1.EID != R2.EID;",
		"select A.Year, sum(A.Price) as Revenue from (select * from Lineitem choice of Year) as A where Quantity not in (select * from Lineitem choice of Quantity) group by A.Year;",
		"select * from Census repair by key SSN;",
		"select certain CID, Skill from V, Emp_Skills where V.EID = Emp_Skills.EID group worlds by (select CID from V);",
		"select certain Arr from HFlights choice of Dep group worlds by Dep;",
		"select Arr from (select Arr, Dep from HFlights) as F1 divide by (select Dep from HFlights) as F2 on F1.Dep = F2.Dep;",
		"select F1.Arr from HFlights F1 where not exists (select * from HFlights F2 where not exists (select * from HFlights F3 where F3.Dep = F2.Dep and F3.Arr = F1.Arr));",
		"insert into Flights values ('ZRH', 'BCN'), ('ZRH', 'ATL');",
		"delete from Flights where Arr = 'ATL';",
		"update Flights set Arr = 'BCN' where Dep = 'FRA';",
		"create view V as select * from Flights;",
		"create table T (A, B, C);",
		"create table U as select * from Flights choice of Dep;",
		"drop table T;",
		"select possible Year from YQ as Y where (select sum(Price) from L where L.Year = Y.Year) - Y.Revenue > 1000000;",
		"select A, count(*) as N, min(B) as Lo, max(B) as Hi, avg(B) as M from R group by A;",
		"select * from R where A >= 1 and (B < 2 or not C = 3);",
	}
	for _, sql := range statements {
		st1, err := Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		rendered := st1.String()
		st2, err := Parse(rendered + ";")
		if err != nil {
			t.Fatalf("re-parse of %q (rendered from %q): %v", rendered, sql, err)
		}
		if st2.String() != rendered {
			t.Errorf("round trip unstable:\n  sql:      %s\n  render1:  %s\n  render2:  %s",
				sql, rendered, st2.String())
		}
	}
}

// TestParseScriptSplitsStatements checks multi-statement scripts with
// comments and blank statements.
func TestParseScriptSplitsStatements(t *testing.T) {
	script := `
		-- load
		create table T (A);
		insert into T values (1), (2);;

		select * from T; -- trailing comment
	`
	stmts, err := ParseScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("parsed %d statements, want 3", len(stmts))
	}
	if _, ok := stmts[0].(*CreateTableStmt); !ok {
		t.Errorf("statement 0 is %T", stmts[0])
	}
	if ins, ok := stmts[1].(*InsertStmt); !ok || len(ins.Rows) != 2 {
		t.Errorf("statement 1 is %T with wrong rows", stmts[1])
	}
}

// TestLexerDetails covers operators, strings and comments.
func TestLexerDetails(t *testing.T) {
	toks, err := Lex("a<>b <= >= != 'x y' -- rest\n3.5 1.CID")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind != TokEOF {
			texts = append(texts, tk.Text)
		}
	}
	want := []string{"a", "<>", "b", "<=", ">=", "!=", "x y", "3.5", "1", ".", "CID"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Fatalf("tokens = %v, want %v", texts, want)
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("expected unterminated-string error")
	}
	if _, err := Lex("a @ b"); err == nil {
		t.Error("expected unexpected-character error")
	}
}

// TestParseLiterals covers literal parsing in inserts, including
// negatives and booleans.
func TestParseLiterals(t *testing.T) {
	st, err := Parse("insert into T values (1, -2, 2.5, 'x', true, null);")
	if err != nil {
		t.Fatal(err)
	}
	row := st.(*InsertStmt).Rows[0]
	want := []value.Value{
		value.Int(1), value.Int(-2), value.Float(2.5),
		value.Str("x"), value.Bool(true), value.Null(),
	}
	if len(row) != len(want) {
		t.Fatalf("row arity %d, want %d", len(row), len(want))
	}
	for i := range want {
		if !row[i].Equal(want[i]) || row[i].Kind() != want[i].Kind() {
			t.Errorf("literal %d = %v (%s), want %v (%s)",
				i, row[i], row[i].Kind(), want[i], want[i].Kind())
		}
	}
}

// TestAliasParsing: implicit and explicit aliases, and keywords that end
// an alias position.
func TestAliasParsing(t *testing.T) {
	st, err := Parse("select F.Arr from HFlights F where F.Dep = 'FRA';")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if sel.From[0].Alias != "F" {
		t.Errorf("implicit alias = %q", sel.From[0].Alias)
	}
	st, err = Parse("select X.A as B from T as X group by X.A;")
	if err != nil {
		t.Fatal(err)
	}
	sel = st.(*SelectStmt)
	if sel.Items[0].Alias != "B" || sel.From[0].Alias != "X" {
		t.Errorf("explicit aliases lost: %+v", sel)
	}
	if len(sel.GroupBy) != 1 || sel.GroupBy[0].Full() != "X.A" {
		t.Errorf("group by = %v", sel.GroupBy)
	}
}

// TestOperatorPrecedence: AND binds tighter than OR; NOT tightest.
func TestOperatorPrecedence(t *testing.T) {
	st, err := Parse("select * from T where A = 1 or B = 2 and C = 3;")
	if err != nil {
		t.Fatal(err)
	}
	where := st.(*SelectStmt).Where
	or, ok := where.(*LogicExpr)
	if !ok || or.Op != "or" {
		t.Fatalf("top operator should be OR, got %s", where)
	}
	and, ok := or.R.(*LogicExpr)
	if !ok || and.Op != "and" {
		t.Fatalf("right branch should be AND, got %s", or.R)
	}
}

// TestQuotedStringLiteralRoundTrip: embedded quotes double on render
// (SQL convention) and the lexer folds them back.
func TestQuotedStringLiteralRoundTrip(t *testing.T) {
	st, err := Parse("insert into T values ('it''s', '''lead', 'trail''');")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	want := []string{"it's", "'lead", "trail'"}
	for i, w := range want {
		if got := ins.Rows[0][i].AsString(); got != w {
			t.Fatalf("cell %d = %q, want %q", i, got, w)
		}
	}
	st2, err := Parse(st.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", st.String(), err)
	}
	if st.String() != st2.String() {
		t.Fatalf("quoted literals do not round-trip: %q vs %q", st.String(), st2.String())
	}
}
