package isql

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"worldsetdb/internal/obs"
	"worldsetdb/internal/rewrite"
	"worldsetdb/internal/store"
	"worldsetdb/internal/value"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsdexec"
)

// PlannerReplans counts plan-cache recompiles triggered by decomposition
// statistics drifting past the staleness threshold (statsDrifted) while
// the schema fingerprint was unchanged — exported at isqld /metrics as
// wsdb_planner_replans_total. Schema-change recompiles do not count:
// those are forced correctness recompiles, not cost-model staleness.
var PlannerReplans obs.Counter

// Prepared statements: PREPARE parses a statement once (with optional
// $1..$N placeholders) and registers it in a PlanCache; EXECUTE binds
// arguments and runs it. For zero-parameter selects in the clean WSA
// fragment the cache also holds the compiled plan, keyed on a
// fingerprint of the schema it compiled against (relation names,
// attribute lists, view texts — the only inputs compilation reads), so
// a server executing the same prepared query request after request
// skips parsing, analysis and compilation entirely and goes straight to
// snapshot evaluation. DML bumps the catalog version but not the
// fingerprint, so the plan survives interleaved writes; DDL or view
// changes alter the fingerprint and force one recompile.

// PlanCache is a concurrency-safe registry of prepared statements. A
// zero-value cache is not usable; construct with NewPlanCache. Sessions
// lazily create a private cache; a server shares one across all its
// sessions (Session.SetPlanCache) so a statement prepared on any
// connection is executable — already compiled — on every other. The
// cache is bounded: past the capacity, registering a new name evicts
// the least recently used statement (the shared server cache is fed by
// an unauthenticated endpoint and must not grow without limit).
type PlanCache struct {
	mu     sync.RWMutex
	byName map[string]*Prepared
	cap    int
	clock  uint64
}

// DefaultPlanCacheCap bounds a cache's entries unless SetCap raises it.
const DefaultPlanCacheCap = 1024

// NewPlanCache returns an empty cache with the default capacity.
func NewPlanCache() *PlanCache {
	return &PlanCache{byName: map[string]*Prepared{}, cap: DefaultPlanCacheCap}
}

// SetCap changes the eviction capacity (minimum 1).
func (c *PlanCache) SetCap(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = max(n, 1)
}

// Get returns the prepared statement registered under name, or nil.
func (c *PlanCache) Get(name string) *Prepared {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.byName[name]
	if p != nil {
		c.clock++
		p.lastUsed = c.clock
	}
	return p
}

// put registers p, replacing any previous statement of the same name
// and evicting the least recently used entry when full.
func (c *PlanCache) put(p *Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, replacing := c.byName[p.Name]; !replacing && len(c.byName) >= c.cap {
		var lruName string
		var lru uint64
		first := true
		for name, q := range c.byName {
			if first || q.lastUsed < lru {
				lruName, lru, first = name, q.lastUsed, false
			}
		}
		delete(c.byName, lruName)
	}
	c.clock++
	p.lastUsed = c.clock
	c.byName[p.Name] = p
}

// Names lists the registered statement names, sorted.
func (c *PlanCache) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.byName))
	for n := range c.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Prepared is one registered statement plus its memoized compilation.
type Prepared struct {
	// Name the statement is executed by.
	Name string
	// SQL is the normalized statement text (the parsed tree re-rendered).
	SQL string
	// Stmt is the parsed statement, with parameters unbound.
	Stmt Statement
	// NumParams is the highest $N placeholder in the statement.
	NumParams int

	// lastUsed is the cache's LRU clock tick; guarded by the cache lock.
	lastUsed uint64

	mu       sync.Mutex
	compiled bool     // a plan was compiled for fingerprint fp
	fp       uint64   // schema fingerprint the plan is valid for
	plan     wsa.Expr // the compiled plan
	compiles int      // how many times the plan was (re)compiled

	// planStats are the decomposition statistics the plan was optimized
	// under. A plan stays cached while the catalog's statistics remain
	// within the drift threshold of these; past it the costs the rewrite
	// search minimized no longer describe the data and planFor re-plans
	// (counted by PlannerReplans).
	planStats rewrite.Stats

	// Fallback memo: when the factorized engine fell back on this plan
	// (entanglement beyond the merge budget), the op and the
	// decomposition fingerprint it happened under. While the
	// decomposition shape is unchanged, execution passes
	// Options.AssumeFallback and skips the doomed native attempt; once
	// the shape moves — components merged away, shrunk by DML, or
	// re-factorized — the memo is stale and the native path is retried.
	fbOp string
	fbFP uint64
}

// Compiles reports how many times the statement's plan was compiled —
// one per schema fingerprint it has executed under. A parameterized
// EXECUTE binds into the cached plan, so repeated execution against an
// unchanged schema keeps this at 1.
func (p *Prepared) Compiles() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.compiles
}

// planFor returns the statement's compiled, prelowered plan for the
// snapshot, reusing the memoized plan while the snapshot's schema
// fingerprint is unchanged and recompiling (once) when DDL moved it.
// The rewrite search (rewrite.Prelower) runs here, at compile time, so
// per-execution evaluation passes NoRewrite and goes straight to the
// operators — on a small catalog the rewriter dominates per-request
// cost, and it depends only on the query and the schema, exactly what
// the fingerprint pins. Compilation errors — including the
// fragmentError that routes a select to the fallback evaluator — are
// returned uncached.
func (p *Prepared) planFor(s *Session, snap *store.Snapshot) (wsa.Expr, error) {
	sel, ok := p.Stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("isql: prepared statement %q is not a select", p.Name)
	}
	fp := schemaFingerprint(snap)
	st := rewrite.StatsOf(snap.DB)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.compiled && p.fp == fp {
		if !statsDrifted(p.planStats, st) {
			return p.plan, nil
		}
		// Same schema, moved data: the cached plan is still correct but
		// was optimized for cardinalities that no longer hold — re-plan.
		PlannerReplans.Inc()
	}
	q, err := s.compileOn(snap.DB.Names, snap.DB.Schemas, sel)
	if err != nil {
		return nil, err
	}
	q = rewrite.PrelowerStats(q, wsa.NewEnv(snap.DB.Names, snap.DB.Schemas), st, nil)
	p.compiled, p.fp, p.plan, p.planStats = true, fp, q, st
	p.compiles++
	return q, nil
}

// driftRatio is the staleness threshold on per-relation cardinality: a
// cached plan survives while every relation's tuple count stays within
// a factor of driftRatio of what it was optimized under (with +1
// smoothing so empty relations drift on their first real growth, not on
// every insert).
const driftRatio = 2.0

// statsDrifted reports whether the catalog's decomposition statistics
// moved enough since plan optimization to invalidate the cost model's
// choices: a relation's component count changed (the merge-vs-fallback
// and world-growth estimates keyed on it), or its cardinality left the
// driftRatio band (the join-order and selectivity estimates did).
func statsDrifted(old, cur rewrite.Stats) bool {
	if len(old) != len(cur) {
		return true
	}
	for name, o := range old {
		c, ok := cur[name]
		if !ok || o.Components != c.Components {
			return true
		}
		oc := o.Certain + o.Alternative + 1
		cc := c.Certain + c.Alternative + 1
		if oc > cc*driftRatio || cc > oc*driftRatio {
			return true
		}
	}
	return false
}

// assumeFallback returns the memoized fallback op when the snapshot's
// decomposition fingerprint still matches the one the fallback was
// observed under ("" otherwise — attempt the native path). A moved
// fingerprint clears the memo: the plan-cache entry must not keep a
// statement on the enumeration fallback after the decomposition changed
// into a shape the native path handles.
func (p *Prepared) assumeFallback(snap *store.Snapshot) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fbOp == "" {
		return ""
	}
	if p.fbFP != decompFingerprint(snap) {
		p.fbOp = ""
		return ""
	}
	return p.fbOp
}

// notePlan records how the factorized engine executed the plan: a
// fallback is memoized under the current decomposition fingerprint, a
// native execution clears any memo. Errors (e.g. *wsd.BudgetError
// mid-fallback) are never memoized — the next execution retries from
// scratch.
func (p *Prepared) notePlan(snap *store.Snapshot, plan *wsdexec.Plan) {
	if plan == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if plan.Native {
		p.fbOp = ""
		return
	}
	if plan.FallbackOp != "" {
		p.fbOp, p.fbFP = plan.FallbackOp, decompFingerprint(snap)
	}
}

// decompFingerprint digests the decomposition's shape — the component
// arities and which relations each alternative touches — everything
// that determines whether (and at what cost) a plan's entanglements
// merge within budget. Content edits that keep the shape leave it
// unchanged; structural moves (re-factorization, normalization dropping
// or folding components, DDL) change it.
func decompFingerprint(snap *store.Snapshot) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "n%d;", len(snap.DB.Names))
	for _, c := range snap.DB.Components {
		fmt.Fprintf(h, "c%d(", len(c.Alternatives))
		for _, a := range c.Alternatives {
			ris := make([]int, 0, len(a.Rels))
			for ri, r := range a.Rels {
				if r != nil && r.Len() > 0 {
					ris = append(ris, ri)
				}
			}
			sort.Ints(ris)
			fmt.Fprintf(h, "%v;", ris)
		}
		h.Write([]byte{')'})
	}
	return h.Sum64()
}

// schemaFingerprint digests everything select compilation reads from a
// snapshot: relation names, their attribute lists, and the view
// definitions. Data edits leave it unchanged — prepared plans survive
// DML — while DDL and view changes move it.
func schemaFingerprint(snap *store.Snapshot) uint64 {
	h := fnv.New64a()
	for i, name := range snap.DB.Names {
		fmt.Fprintf(h, "%q(", name)
		for _, a := range snap.DB.Schemas[i] {
			fmt.Fprintf(h, "%q,", a)
		}
		h.Write([]byte{')'})
	}
	views := make([]string, 0, len(snap.Views))
	for name, sql := range snap.Views {
		views = append(views, name+"\x00"+sql)
	}
	sort.Strings(views)
	for _, v := range views {
		fmt.Fprintf(h, "%q;", v)
	}
	return h.Sum64()
}

// planCache returns the session's cache, creating a private one on
// first use.
func (s *Session) planCache() *PlanCache {
	if s.prep == nil {
		s.prep = NewPlanCache()
	}
	return s.prep
}

// SetPlanCache attaches a (typically shared) prepared-statement cache.
func (s *Session) SetPlanCache(c *PlanCache) { s.prep = c }

// execPrepare registers the statement. Validation beyond parsing
// happens at EXECUTE time, against the schema the execution sees —
// tables a prepared statement mentions may legitimately be created
// after the PREPARE.
func (s *Session) execPrepare(n *PrepareStmt) (*Result, error) {
	s.planCache().put(&Prepared{
		Name:      n.Name,
		SQL:       n.Stmt.String(),
		Stmt:      n.Stmt,
		NumParams: maxParamStmt(n.Stmt),
	})
	return &Result{
		Decomp:  s.target().Snapshot().DB,
		Message: fmt.Sprintf("prepared %s", n.Name),
	}, nil
}

// execExecute binds arguments and runs the prepared statement. Selects
// — parameterized or not — run through the memoized compiled plan:
// arguments bind into the already-compiled, already-prelowered plan
// (wsa.BindParams), so repeated EXECUTE never re-runs analysis,
// compilation or the rewrite search. Everything else goes through the
// regular statement dispatch on the already-parsed (and, with
// parameters, substituted) tree — never re-parsing SQL.
func (s *Session) execExecute(n *ExecuteStmt) (*Result, error) {
	p := s.planCache().Get(n.Name)
	if p == nil {
		return nil, fmt.Errorf("isql: unknown prepared statement %q", n.Name)
	}
	if len(n.Args) != p.NumParams {
		return nil, p.arityError(len(n.Args))
	}
	if sel, ok := p.Stmt.(*SelectStmt); ok {
		return s.execSelectWith(sel, p, n.Args)
	}
	if p.NumParams == 0 {
		return s.Exec(p.Stmt)
	}
	bound, err := bindStmt(p.Stmt, n.Args)
	if err != nil {
		return nil, err
	}
	return s.Exec(bound)
}

// arityError reports an EXECUTE argument-count mismatch in terms of the
// statement's declared parameter count — the full $1..$N slot list the
// PREPARE registered — so the caller sees what the statement declares,
// not just whichever slot happened to fail binding.
func (p *Prepared) arityError(got int) error {
	if p.NumParams == 0 {
		return fmt.Errorf("isql: prepared statement %q declares no parameters, got %d argument(s)", p.Name, got)
	}
	return fmt.Errorf("isql: prepared statement %q declares %d parameter(s) ($1..$%d), got %d argument(s)",
		p.Name, p.NumParams, p.NumParams, got)
}

// bindPlan binds EXECUTE arguments into the cached compiled plan. The
// arity was validated against the declared parameter count up front, so
// a slot out of range here is a bug, reported with the declared count.
func (p *Prepared) bindPlan(q wsa.Expr, args []value.Value) (wsa.Expr, error) {
	if len(args) == 0 {
		return q, nil
	}
	bound, err := wsa.BindParams(q, args)
	if err != nil {
		return nil, fmt.Errorf("isql: binding prepared statement %q (declares %d parameter(s)): %w", p.Name, p.NumParams, err)
	}
	return bound, nil
}

// firstUnboundParam rejects executing an insert whose cells still hold
// placeholders (a PREPAREd statement run without EXECUTE binding).
func firstUnboundParam(params [][]int) error {
	for _, row := range params {
		for _, n := range row {
			if n > 0 {
				return fmt.Errorf("isql: unbound parameter $%d (bind it with execute)", n)
			}
		}
	}
	return nil
}

// maxParamStmt returns the highest parameter number in the statement.
func maxParamStmt(st Statement) int {
	switch n := st.(type) {
	case *SelectStmt:
		return maxParamSelect(n)
	case *InsertStmt:
		out := 0
		for _, row := range n.Params {
			for _, p := range row {
				out = max(out, p)
			}
		}
		return out
	case *DeleteStmt:
		return maxParamExpr(n.Where)
	case *UpdateStmt:
		out := maxParamExpr(n.Where)
		for _, sc := range n.Sets {
			out = max(out, maxParamExpr(sc.Expr))
		}
		return out
	case *CreateTableAsStmt:
		return maxParamSelect(n.Query)
	case *CreateViewStmt:
		return maxParamSelect(n.Query)
	}
	return 0
}

func maxParamSelect(sel *SelectStmt) int {
	out := 0
	for _, it := range sel.Items {
		out = max(out, maxParamExpr(it.Expr))
	}
	for _, f := range sel.From {
		if f.Sub != nil {
			out = max(out, maxParamSelect(f.Sub))
		}
	}
	if sel.Divide != nil {
		if sel.Divide.Item.Sub != nil {
			out = max(out, maxParamSelect(sel.Divide.Item.Sub))
		}
		out = max(out, maxParamExpr(sel.Divide.On))
	}
	out = max(out, maxParamExpr(sel.Where))
	if sel.GroupWorlds != nil && sel.GroupWorlds.Query != nil {
		out = max(out, maxParamSelect(sel.GroupWorlds.Query))
	}
	return out
}

func maxParamExpr(e Expr) int {
	switch n := e.(type) {
	case nil:
		return 0
	case *ParamExpr:
		return n.N
	case *BinExpr:
		return max(maxParamExpr(n.L), maxParamExpr(n.R))
	case *LogicExpr:
		return max(maxParamExpr(n.L), maxParamExpr(n.R))
	case *NotExpr:
		return maxParamExpr(n.E)
	case *AggExpr:
		return maxParamExpr(n.Arg)
	case *InExpr:
		return max(maxParamExpr(n.Left), maxParamSelect(n.Sub))
	case *ExistsExpr:
		return maxParamSelect(n.Sub)
	case *SubqueryExpr:
		return maxParamSelect(n.Sub)
	}
	return 0
}

// bindStmt returns a copy of the statement with every $N placeholder
// replaced by args[N-1]. The prepared tree itself is never mutated — it
// stays in the cache, reusable by concurrent sessions.
func bindStmt(st Statement, args []value.Value) (Statement, error) {
	switch n := st.(type) {
	case *SelectStmt:
		return bindSelect(n, args)
	case *InsertStmt:
		if n.Params == nil {
			return n, nil
		}
		out := &InsertStmt{Table: n.Table, Rows: make([][]value.Value, len(n.Rows))}
		for i, row := range n.Rows {
			nr := append([]value.Value{}, row...)
			for j, p := range n.Params[i] {
				if p == 0 {
					continue
				}
				if p > len(args) {
					return nil, fmt.Errorf("isql: parameter $%d out of range (%d argument(s))", p, len(args))
				}
				nr[j] = args[p-1]
			}
			out.Rows[i] = nr
		}
		return out, nil
	case *DeleteStmt:
		w, err := bindExpr(n.Where, args)
		if err != nil {
			return nil, err
		}
		return &DeleteStmt{Table: n.Table, Where: w}, nil
	case *UpdateStmt:
		out := &UpdateStmt{Table: n.Table, Sets: make([]SetClause, len(n.Sets))}
		for i, sc := range n.Sets {
			e, err := bindExpr(sc.Expr, args)
			if err != nil {
				return nil, err
			}
			out.Sets[i] = SetClause{Col: sc.Col, Expr: e}
		}
		w, err := bindExpr(n.Where, args)
		if err != nil {
			return nil, err
		}
		out.Where = w
		return out, nil
	case *CreateTableAsStmt:
		q, err := bindSelect(n.Query, args)
		if err != nil {
			return nil, err
		}
		return &CreateTableAsStmt{Name: n.Name, Query: q}, nil
	case *CreateViewStmt:
		q, err := bindSelect(n.Query, args)
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{Name: n.Name, Query: q}, nil
	}
	return st, nil // no parameters possible
}

func bindSelect(sel *SelectStmt, args []value.Value) (*SelectStmt, error) {
	out := *sel
	out.Items = make([]SelectItem, len(sel.Items))
	for i, it := range sel.Items {
		e, err := bindExpr(it.Expr, args)
		if err != nil {
			return nil, err
		}
		out.Items[i] = SelectItem{Expr: e, Alias: it.Alias}
	}
	out.From = make([]FromItem, len(sel.From))
	for i, f := range sel.From {
		nf := f
		if f.Sub != nil {
			sub, err := bindSelect(f.Sub, args)
			if err != nil {
				return nil, err
			}
			nf.Sub = sub
		}
		out.From[i] = nf
	}
	if sel.Divide != nil {
		d := *sel.Divide
		if d.Item.Sub != nil {
			sub, err := bindSelect(d.Item.Sub, args)
			if err != nil {
				return nil, err
			}
			d.Item.Sub = sub
		}
		on, err := bindExpr(d.On, args)
		if err != nil {
			return nil, err
		}
		d.On = on
		out.Divide = &d
	}
	w, err := bindExpr(sel.Where, args)
	if err != nil {
		return nil, err
	}
	out.Where = w
	if sel.GroupWorlds != nil && sel.GroupWorlds.Query != nil {
		q, err := bindSelect(sel.GroupWorlds.Query, args)
		if err != nil {
			return nil, err
		}
		out.GroupWorlds = &GroupWorldsClause{Query: q}
	}
	return &out, nil
}

func bindExpr(e Expr, args []value.Value) (Expr, error) {
	switch n := e.(type) {
	case nil:
		return nil, nil
	case *ParamExpr:
		if n.N > len(args) {
			return nil, fmt.Errorf("isql: parameter $%d out of range (%d argument(s))", n.N, len(args))
		}
		return &LitExpr{Val: args[n.N-1]}, nil
	case *BinExpr:
		l, err := bindExpr(n.L, args)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(n.R, args)
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: n.Op, L: l, R: r}, nil
	case *LogicExpr:
		l, err := bindExpr(n.L, args)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(n.R, args)
		if err != nil {
			return nil, err
		}
		return &LogicExpr{Op: n.Op, L: l, R: r}, nil
	case *NotExpr:
		inner, err := bindExpr(n.E, args)
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: inner}, nil
	case *AggExpr:
		if n.Arg == nil {
			return n, nil
		}
		arg, err := bindExpr(n.Arg, args)
		if err != nil {
			return nil, err
		}
		return &AggExpr{Fn: n.Fn, Arg: arg, Star: n.Star}, nil
	case *InExpr:
		l, err := bindExpr(n.Left, args)
		if err != nil {
			return nil, err
		}
		sub, err := bindSelect(n.Sub, args)
		if err != nil {
			return nil, err
		}
		return &InExpr{Left: l, Sub: sub, Neg: n.Neg}, nil
	case *ExistsExpr:
		sub, err := bindSelect(n.Sub, args)
		if err != nil {
			return nil, err
		}
		return &ExistsExpr{Sub: sub, Neg: n.Neg}, nil
	case *SubqueryExpr:
		sub, err := bindSelect(n.Sub, args)
		if err != nil {
			return nil, err
		}
		return &SubqueryExpr{Sub: sub}, nil
	}
	return e, nil // literals, columns
}
