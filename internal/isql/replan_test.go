package isql

import (
	"fmt"
	"testing"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
)

// TestPlanCacheReplansOnStatsDrift proves the plan cache's staleness
// check end to end: a cached prepared plan survives DML that keeps the
// relation's cardinality inside the drift band, and is re-planned —
// same schema fingerprint, so only the statistics check can trigger it
// — once the catalog's statistics drift past driftRatio.
func TestPlanCacheReplansOnStatsDrift(t *testing.T) {
	r := relation.New(relation.NewSchema("A", "B"))
	r.Insert(relation.Tuple{value.Int(1), value.Int(10)})
	r.Insert(relation.Tuple{value.Int(2), value.Int(20)})
	s := FromDB([]string{"T"}, []*relation.Relation{r})
	if _, err := s.ExecScript(`
		prepare p as select A from T where B = 10;
		execute p;`); err != nil {
		t.Fatal(err)
	}
	p := s.planCache().Get("p")
	if p == nil {
		t.Fatal("prepared statement not registered")
	}
	if got := p.Compiles(); got != 1 {
		t.Fatalf("Compiles after first execute = %d, want 1", got)
	}
	replansBefore := PlannerReplans.Value()

	// One more row: 3+1 tuples against the 2+1 the plan was optimized
	// under — inside the 2x band, the cached plan must survive.
	if _, err := s.ExecScript(`
		insert into T values (3, 30);
		execute p;`); err != nil {
		t.Fatal(err)
	}
	if got := p.Compiles(); got != 1 {
		t.Fatalf("Compiles after in-band insert = %d, want 1 (no replan)", got)
	}

	// Grow the relation past the band (2+1 → 10+1 is over driftRatio):
	// the next execute must re-plan and count it.
	for i := 4; i <= 10; i++ {
		if _, err := s.ExecString(fmt.Sprintf("insert into T values (%d, %d);", i, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.ExecString("execute p;"); err != nil {
		t.Fatal(err)
	}
	if got := p.Compiles(); got != 2 {
		t.Fatalf("Compiles after drifted catalog = %d, want 2 (replanned)", got)
	}
	if got := PlannerReplans.Value(); got != replansBefore+1 {
		t.Fatalf("PlannerReplans = %d, want %d", got, replansBefore+1)
	}

	// The re-planned entry recorded the new statistics: executing again
	// without further DML stays on the cached plan.
	if _, err := s.ExecString("execute p;"); err != nil {
		t.Fatal(err)
	}
	if got := p.Compiles(); got != 2 {
		t.Fatalf("Compiles after replan settled = %d, want 2", got)
	}
}
