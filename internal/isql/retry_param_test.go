package isql

import (
	"errors"
	"strings"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/store"
	"worldsetdb/internal/value"
)

// TestExecuteParamBindsCachedPlan: a parameterized EXECUTE binds into
// the memoized compiled plan — the plan compiles once and every
// execution (whatever the arguments) reuses it, staying on the
// compiled-engine path.
func TestExecuteParamBindsCachedPlan(t *testing.T) {
	s := FromDB([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	mustScript(t, s,
		"create table Clean as select * from Census repair by key SSN;",
		"prepare q as select certain Name from Clean where POB = $1;",
	)
	res, err := s.ExecString("execute q('NYC');")
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("parameterized execute fell off the compiled-plan path")
	}
	nyc := res.Answers
	if _, err := s.ExecString("execute q('LA');"); err != nil {
		t.Fatal(err)
	}
	res3, err := s.ExecString("execute q('NYC');")
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Answers) != len(nyc) || res3.Answers[0].ContentKey() != nyc[0].ContentKey() {
		t.Fatalf("re-binding changed the answer: %v vs %v", res3.Answers, nyc)
	}
	p := s.planCache().Get("q")
	if p == nil {
		t.Fatal("prepared statement vanished from the cache")
	}
	if got := p.Compiles(); got != 1 {
		t.Fatalf("plan compiled %d times across 3 parameterized executions, want 1", got)
	}
	// DML must not recompile either (fingerprint pins the schema, not the
	// data); DDL must recompile exactly once.
	mustScript(t, s, "insert into Census values (7, 'Extra', 'NYC', 'Desk');", "execute q('NYC');")
	if got := p.Compiles(); got != 1 {
		t.Fatalf("DML forced a recompile (%d compiles)", got)
	}
	mustScript(t, s, "create view V as select Name from Census;", "execute q('NYC');", "execute q('LA');")
	if got := p.Compiles(); got != 2 {
		t.Fatalf("DDL recompiles once, got %d compiles", got)
	}
}

// TestExecuteParamConcurrentBinding: many sessions bind different
// arguments into one shared cached plan simultaneously (run under -race
// in CI); binding copies the parameterized spine, so executions never
// see each other's arguments.
func TestExecuteParamConcurrentBinding(t *testing.T) {
	a := FromDB([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	cache := NewPlanCache()
	a.SetPlanCache(cache)
	mustScript(t, a,
		"create table Clean as select * from Census repair by key SSN;",
		"prepare q as select possible Name from Clean where POB = $1;",
	)
	want := map[string]string{}
	for _, pob := range []string{"NYC", "LA"} {
		res, err := a.ExecString("execute q('" + pob + "');")
		if err != nil {
			t.Fatal(err)
		}
		want[pob] = res.Answers[0].ContentKey()
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			sess := FromCatalog(a.Catalog())
			sess.SetPlanCache(cache)
			pob := []string{"NYC", "LA"}[g%2]
			for i := 0; i < 10; i++ {
				res, err := sess.ExecString("execute q('" + pob + "');")
				if err != nil {
					done <- err
					return
				}
				if res.Answers[0].ContentKey() != want[pob] {
					done <- errors.New("concurrent binding mixed up arguments for " + pob)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := cache.Get("q").Compiles(); got != 1 {
		t.Fatalf("shared plan compiled %d times under concurrent execution, want 1", got)
	}
}

// TestExecuteArityDeclaredCount: an EXECUTE arity mismatch reports the
// statement's declared parameter count, not just whichever slot failed.
func TestExecuteArityDeclaredCount(t *testing.T) {
	s := NewSession()
	mustScript(t, s,
		"create table T (A, B);",
		"prepare q as select A from T where A = $1 and B = $2;",
	)
	_, err := s.ExecString("execute q(1);")
	if err == nil || !strings.Contains(err.Error(), "declares 2 parameter(s) ($1..$2)") {
		t.Fatalf("arity error must name the declared count, got: %v", err)
	}
	_, err = s.ExecString("execute q(1, 2, 3);")
	if err == nil || !strings.Contains(err.Error(), "declares 2 parameter(s)") {
		t.Fatalf("excess arguments must name the declared count, got: %v", err)
	}
	mustScript(t, s, "prepare p as select A from T;")
	_, err = s.ExecString("execute p(1);")
	if err == nil || !strings.Contains(err.Error(), "declares no parameters") {
		t.Fatalf("zero-parameter statement error: %v", err)
	}
}

// TestUnboundParamRejectedOnFallbackPath: a direct (unprepared) select
// holding $n must be refused even when it lies outside the WSA fragment
// — the legacy evaluator could otherwise short-circuit past the unbound
// slot and silently answer on some tuples.
func TestUnboundParamRejectedOnFallbackPath(t *testing.T) {
	s := NewSession()
	mustScript(t, s,
		"create table T (A, B);",
		"insert into T values (1, 10);",
	)
	// `B + 1` pushes the predicate outside the fragment, forcing the
	// legacy path where `or` can short-circuit before reaching $1.
	_, err := s.ExecString("select B from T where A = 1 or B + 1 = $1;")
	if err == nil || !strings.Contains(err.Error(), "unbound parameter $1") {
		t.Fatalf("unbound parameter on the fallback path must be refused, got: %v", err)
	}
}

// TestExecuteParamFragmentFallback: a parameterized prepared statement
// outside the clean WSA fragment (aggregation) binds into the parsed
// tree and runs on the fallback evaluator — same answers, no fast path.
func TestExecuteParamFragmentFallback(t *testing.T) {
	s := NewSession()
	mustScript(t, s,
		"create table T (A, B);",
		"insert into T values (1, 10);",
		"insert into T values (2, 10);",
		"insert into T values (3, 20);",
		"prepare agg as select count(*) as N from T where B = $1;",
	)
	got := singleAnswer(t, s, "execute agg(10);")
	if !got.Contains(relation.Tuple{value.Int(2)}) {
		t.Fatalf("execute agg(10) = %v, want count 2", got)
	}
	got = singleAnswer(t, s, "execute agg(20);")
	if !got.Contains(relation.Tuple{value.Int(1)}) {
		t.Fatalf("execute agg(20) = %v, want count 1", got)
	}
}

// TestTxnConflictAutoRetry: with RetryConflicts set, a transaction that
// loses first-committer-wins replays its writes on the new base and
// commits; both writers' effects land.
func TestTxnConflictAutoRetry(t *testing.T) {
	a := NewSession()
	a.RetryConflicts = 2
	mustScript(t, a, "create table T (A);")
	b := FromCatalog(a.Catalog())

	mustScript(t, a, "begin;", "insert into T values (1);")
	mustScript(t, b, "insert into T values (2);") // auto-commit wins the race
	if _, err := a.ExecString("commit;"); err != nil {
		t.Fatalf("retryable commit failed: %v", err)
	}
	if a.InTxn() {
		t.Fatal("retry left a transaction open")
	}
	got := singleAnswer(t, b, "select A from T;")
	if got.Len() != 2 || !got.Contains(relation.Tuple{value.Int(1)}) || !got.Contains(relation.Tuple{value.Int(2)}) {
		t.Fatalf("after retry T = %v, want both rows", got)
	}
	// Three commits happened: create, winner, retried transaction.
	if v := a.Catalog().Snapshot().Version; v != 4 {
		t.Fatalf("catalog at version %d, want 4", v)
	}
}

// TestTxnRetryReplayFailure: a retried statement failing on the new
// base (the winner took its table name) surfaces the replay error, not
// a silent partial commit.
func TestTxnRetryReplayFailure(t *testing.T) {
	a := NewSession()
	a.RetryConflicts = 3
	mustScript(t, a, "create table T (A);")
	b := FromCatalog(a.Catalog())

	mustScript(t, a, "begin;", "create table U (B);")
	mustScript(t, b, "create table U (C);") // winner takes the name
	_, err := a.ExecString("commit;")
	if err == nil || !strings.Contains(err.Error(), "conflict retry") {
		t.Fatalf("replay failure must surface, got: %v", err)
	}
	if a.InTxn() {
		t.Fatal("failed retry left a transaction open")
	}
	// The winner's U(C) is intact; the loser's U(B) never landed.
	snap := a.Catalog().Snapshot()
	idx := snap.DB.IndexOf("U")
	if idx < 0 || snap.DB.Schemas[idx].Index("C") < 0 {
		t.Fatalf("winner's table damaged: %v", snap.DB.Schemas)
	}
}

// TestTxnRetryDisabledByDefault: RetryConflicts defaults to zero — the
// pre-retry first-committer-wins behavior surfaces the conflict.
func TestTxnRetryDisabledByDefault(t *testing.T) {
	a := NewSession()
	mustScript(t, a, "create table T (A);")
	b := FromCatalog(a.Catalog())
	mustScript(t, a, "begin;", "insert into T values (1);")
	mustScript(t, b, "insert into T values (2);")
	_, err := a.ExecString("commit;")
	var ce *store.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("want *store.ConflictError with retries disabled, got %v", err)
	}
}
