package isql

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"

	"worldsetdb/internal/obs"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/store"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
	"worldsetdb/internal/wsdexec"
)

// Session is an I-SQL database: named tables backed by a world-set
// decomposition in a store.Catalog, plus a view catalog. State stays
// factored across statements — the decompose → query → recompose loop
// of §5–7 — so a census-repair pipeline over 2^40 worlds executes each
// statement in time polynomial in the decomposition size.
//
// Statements in the clean World-set Algebra fragment compile and run
// through a registered engine directly on the catalog snapshot
// (wsdexec, the factorized engine, by default). Statements outside the
// fragment (aggregation, expression subqueries, divide-by, query-form
// group-worlds-by) fall back to the session's own explicit world-set
// evaluator over a budget-guarded expansion, and any state they produce
// is re-factorized with wsd.Refactor before it is committed — one
// entangled step never permanently de-factorizes the catalog.
//
// A Session is a single-goroutine view of a catalog; any number of
// sessions may share one Catalog concurrently (see cmd/isqld). Selects
// run against an immutable snapshot; DML and DDL serialize through the
// catalog's single-writer transaction.
//
// The zero value is not usable; construct with NewSession, FromDB,
// FromWorldSet or FromCatalog.
type Session struct {
	cat *store.Catalog

	// txn is the open staged transaction (nil outside BEGIN/COMMIT);
	// while set, every statement reads and writes the private staging
	// snapshot instead of the shared catalog (see txn.go).
	txn *store.Staged

	// prep caches prepared statements (PREPARE/EXECUTE). Lazily created;
	// a server shares one cache across its sessions with SetPlanCache.
	prep *PlanCache

	// views caches the parsed view definitions of the snapshot version
	// viewsVersion; refreshed whenever the catalog moves.
	views        map[string]*SelectStmt
	viewsVersion uint64

	// MaxWorlds bounds explicit world materialization: the expansion
	// budget for fallback evaluation, repair-by-key in the legacy
	// evaluator, and distinct-answer enumeration. 0 means the package
	// default of 1<<20. Violations surface as *wsd.BudgetError — the
	// same error shape wsd's Expand and the store report.
	MaxWorlds int

	// RetryConflicts bounds automatic conflict retry: a COMMIT that loses
	// first-committer-wins re-runs the transaction's write statements on
	// the new latest version up to this many times before surfacing
	// *store.ConflictError. 0 (the default) disables retry — conflicts
	// surface immediately, the pre-retry behavior.
	RetryConflicts int

	// Stats, when set, receives execution accounting (native/merged/
	// fallback/legacy counters per operator). A server shares one
	// instance across its sessions; nil disables recording.
	Stats *ExecStats

	// Engine picks the engine for statements in the clean WSA fragment:
	// "" or "wsdexec" evaluate natively on the decomposition; any other
	// name in the wsa registry ("reference", "translated", "physical")
	// evaluates on the budget-guarded expansion with the output
	// re-factorized; the special name "legacy" bypasses compilation and
	// runs every statement through the explicit world-set evaluator —
	// the pre-store execution path, kept for comparison.
	Engine string

	// span is the root of the current statement's trace. nil — the
	// default — disables tracing entirely (every instrumented call site
	// no-ops on the nil span). EXPLAIN ANALYZE and the server's
	// slow-query log set it around one statement via SetTrace.
	span *obs.Span
}

// SetTrace attaches a trace root: subsequent statements record their
// stage and operator spans as children. Pass nil to disable.
func (s *Session) SetTrace(sp *obs.Span) { s.span = sp }

// legacyEngine routes every statement through the explicit world-set
// evaluator.
const legacyEngine = "legacy"

// NewSession returns a session over the empty complete database: one
// world with no relations.
func NewSession() *Session {
	return FromCatalog(store.New(nil))
}

// FromDB returns a session whose world-set is the singleton {A} for the
// given complete database.
func FromDB(names []string, rels []*relation.Relation) *Session {
	return FromCatalog(store.FromComplete(names, rels))
}

// FromWorldSet returns a session over an existing world-set, factorized
// into the catalog decomposition by wsd.Refactor.
func FromWorldSet(ws *worldset.WorldSet) *Session {
	db, err := wsd.Refactor(ws)
	if err != nil {
		panic(fmt.Sprintf("isql: refactoring the initial world-set: %v", err))
	}
	return FromCatalog(store.New(db))
}

// FromCatalog returns a session over a shared store catalog. Sessions
// are cheap: a server creates one per connection over one catalog.
func FromCatalog(cat *store.Catalog) *Session {
	return &Session{cat: cat, views: map[string]*SelectStmt{}}
}

// Catalog returns the session's backing catalog.
func (s *Session) Catalog() *store.Catalog { return s.cat }

// SaveCatalog persists the session's current catalog snapshot — the
// factored tables plus the view definitions — as a .wsd JSON file
// (space linear in the decomposition, whatever the world count).
func SaveCatalog(path string, s *Session) error {
	return store.SaveFile(path, s.cat.Snapshot())
}

// LoadCatalog opens a session over a catalog persisted with
// SaveCatalog.
func LoadCatalog(path string) (*Session, error) {
	cat, err := store.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return FromCatalog(cat), nil
}

// Worlds returns the exact number of worlds the session state
// represents, straight off the decomposition (the staging snapshot
// inside an open transaction).
func (s *Session) Worlds() *big.Int { return s.target().Snapshot().DB.Worlds() }

// WorldSet returns the session's current state as an explicit
// world-set, expanded from the catalog decomposition within the session
// budget. It returns nil when the represented world count exceeds the
// budget — at that scale use Catalog and the decomposition directly.
func (s *Session) WorldSet() *worldset.WorldSet {
	ws, err := s.target().Snapshot().DB.Expand(s.maxWorlds())
	if err != nil {
		return nil
	}
	return ws
}

// Views returns the names of registered views, sorted.
func (s *Session) Views() []string {
	snap := s.target().Snapshot()
	out := make([]string, 0, len(snap.Views))
	for n := range snap.Views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (s *Session) maxWorlds() int {
	if s.MaxWorlds == 0 {
		return 1 << 20
	}
	return s.MaxWorlds
}

// engineName maps the session Engine field to a store engine name.
func (s *Session) engineName() string {
	if s.Engine == legacyEngine {
		return ""
	}
	return s.Engine
}

// snapshotForRead loads the current snapshot of the session's execution
// target (the staging snapshot inside an open transaction) and
// synchronizes the view parse cache to exactly that version, so a
// statement never compiles against a newer snapshot with an older view
// set (or vice versa) when other sessions commit concurrently.
func (s *Session) snapshotForRead() (*store.Snapshot, error) {
	snap := s.target().Snapshot()
	if err := s.refreshViewsFrom(snap); err != nil {
		return nil, err
	}
	return snap, nil
}

// refreshViewsFrom re-parses the given snapshot's view definitions when
// the cached version differs.
func (s *Session) refreshViewsFrom(snap *store.Snapshot) error {
	if s.viewsVersion == snap.Version && s.views != nil {
		return nil
	}
	views := make(map[string]*SelectStmt, len(snap.Views))
	for name, sql := range snap.Views {
		st, err := Parse(sql)
		if err != nil {
			return fmt.Errorf("isql: stored view %q does not parse: %w", name, err)
		}
		sel, ok := st.(*SelectStmt)
		if !ok {
			return fmt.Errorf("isql: stored view %q is not a select", name)
		}
		views[name] = sel
	}
	s.views = views
	s.viewsVersion = snap.Version
	return nil
}

// Result reports the outcome of executing a statement.
type Result struct {
	// Answers holds, for a select, the distinct answer relations across
	// worlds in deterministic order (a 1↦1 query yields exactly one).
	Answers []*relation.Relation
	// WorldSet is the explicit world-set after the statement (extended
	// with the answer relation for a select, named $ans), populated only
	// on the legacy evaluation paths, which materialized it anyway. The
	// native decomposition paths leave it nil — Decomp always holds the
	// factored result; expand it (or call Session.WorldSet) on demand.
	WorldSet *worldset.WorldSet
	// Decomp is the factored form of the same state or query result.
	Decomp *wsd.DecompDB
	// Affected counts modified tuples per world summed over worlds for
	// DML statements, saturating at the integer limit (the catalog can
	// represent more worlds than fit an int).
	Affected int
	// Plan records how a compiled statement was evaluated (nil when the
	// statement ran through the legacy explicit world-set evaluator).
	Plan *wsdexec.Plan
	// Message is a human-readable status for statements whose effect is
	// not catalog state (e.g. "prepared q1").
	Message string
}

// answerName is the name of a select's answer relation in Result
// world-sets (shared with the wsa engines' convention).
const answerName = "$ans"

// ExecString parses and executes one statement.
func (s *Session) ExecString(sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.Exec(st)
}

// ExecScript parses and executes a semicolon-separated script, returning
// the result of the last statement.
func (s *Session) ExecScript(sql string) (*Result, error) {
	stmts, err := ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, st := range stmts {
		if last, err = s.Exec(st); err != nil {
			return nil, fmt.Errorf("executing %q: %w", st, err)
		}
	}
	return last, nil
}

// Exec executes a statement against the session. Select statements do
// not modify the session; DML, create and drop statements commit a new
// catalog version. Each execution path synchronizes the view cache to
// the exact snapshot it evaluates against (the latest committed version
// under the writer lock, for statements that write).
func (s *Session) Exec(st Statement) (*Result, error) {
	switch n := st.(type) {
	case *SelectStmt:
		return s.execSelect(n)
	case *CreateTableAsStmt:
		return s.execCreateTableAs(n)
	case *CreateViewStmt:
		return s.execCreateView(n)
	case *CreateTableStmt:
		return s.execCreateTable(n)
	case *DropTableStmt:
		return s.execDropTable(n)
	case *InsertStmt:
		return s.execInsert(n)
	case *DeleteStmt:
		return s.execDelete(n)
	case *UpdateStmt:
		return s.execUpdate(n)
	case *BeginStmt, *CommitStmt, *RollbackStmt:
		return s.execTxnControl(st)
	case *PrepareStmt:
		return s.execPrepare(n)
	case *ExecuteStmt:
		return s.execExecute(n)
	case *ExplainStmt:
		return s.execExplain(n)
	}
	return nil, fmt.Errorf("isql: unsupported statement %T", st)
}

// updateRouted wraps the execution target's UpdateRouted with a commit
// span: when the session carries a trace, the store's WAL append, group
// commit queue wait, fsync and 2PC stages attach under it via
// Tx.SetTrace. The statement's own spans inside the closure (a CTAS
// compiles and evaluates there, under the writer) nest below it too —
// the span stands for the whole staged write, not just the publish.
func (s *Session) updateRouted(refs []string, fn func(*store.Tx) error) error {
	sp := s.span.Child("commit")
	prev := s.span
	s.span = sp
	defer func() {
		s.span = prev
		sp.End()
	}()
	return s.target().UpdateRouted(refs, func(tx *store.Tx) error {
		tx.SetTrace(sp)
		return fn(tx)
	})
}

// execSelect evaluates a select: natively on the snapshot decomposition
// when the statement compiles to the clean WSA fragment, through the
// legacy evaluator over the budget-guarded expansion when compilation
// reports a fragmentError. Genuine compile errors (unknown relations
// or columns) surface directly — falling back would bury a typo under
// a BudgetError on a large catalog.
func (s *Session) execSelect(sel *SelectStmt) (*Result, error) {
	return s.execSelectWith(sel, nil, nil)
}

// execSelectWith is execSelect with an optional prepared-statement
// entry supplying a memoized compiled plan (skipping analysis and
// compilation when the schema fingerprint still matches) plus the
// EXECUTE arguments to bind into it. Parameterized prepared selects
// stay on the fast path: the cached plan carries parameter slots and
// the arguments bind into it per call (wsa.BindParams), never
// recompiling or re-running the rewrite search.
func (s *Session) execSelectWith(sel *SelectStmt, pre *Prepared, args []value.Value) (*Result, error) {
	if pre == nil {
		// Outside EXECUTE there is nothing to bind a placeholder with —
		// reject on the statement tree, before either execution path (a
		// fragment fallback could otherwise short-circuit past the
		// unbound slot and silently answer).
		if p := maxParamSelect(sel); p > 0 {
			return nil, fmt.Errorf("isql: unbound parameter $%d (bind it with execute)", p)
		}
	}
	snap, err := s.snapshotForRead()
	if err != nil {
		return nil, err
	}
	if s.txn != nil {
		// Record the relations this select reads (views expanded): on a
		// sharded catalog their shards join commit-time validation, so
		// read-write transactions stay serializable, not just
		// write-consistent.
		refs := map[string]bool{}
		s.stmtRelations(sel, refs)
		s.txn.MarkReads(refs)
	}
	var fragErr error
	if s.Engine != legacyEngine {
		var q wsa.Expr
		var err error
		opts := &wsdexec.Options{ExpandBudget: s.maxWorlds()}
		onDecomp := s.engineName() == "" || s.engineName() == "wsdexec"
		csp := s.span.Child("compile")
		if pre != nil {
			// Cached plans are prelowered at compile time; skip the
			// per-request rewrite search.
			before := pre.Compiles()
			q, err = pre.planFor(s, snap)
			csp.Set("plan-cache", cacheLabel(pre.Compiles() == before))
			opts.NoRewrite = true
			if err == nil {
				if onDecomp {
					// A statement that just fell back on this decomposition
					// shape skips the native attempt; a moved shape clears
					// the memo and retries natively (see Prepared).
					opts.AssumeFallback = pre.assumeFallback(snap)
				}
				q, err = pre.bindPlan(q, args)
				if err != nil {
					csp.End()
					return nil, err
				}
			}
		} else {
			q, err = s.compileOn(snap.DB.Names, snap.DB.Schemas, sel)
		}
		csp.End()
		if err != nil && !isFragmentError(err) {
			return nil, err
		}
		if err == nil {
			xsp := s.span.Child("exec")
			opts.Trace = xsp
			out, plan, err := store.QueryOpts(snap, s.engineName(), q, opts)
			if plan != nil {
				xsp.SetInt("merges", int64(len(plan.Merges)))
				if plan.FallbackEngine == "" {
					xsp.Set("path", "native")
				} else {
					xsp.Set("path", "fallback:"+plan.FallbackEngine)
				}
			}
			xsp.End()
			if err != nil {
				return nil, err
			}
			if pre != nil && onDecomp {
				pre.notePlan(snap, plan)
			}
			s.Stats.recordPlan(plan)
			answers, err := out.Instances(len(out.Names)-1, s.maxWorlds())
			if err != nil {
				return nil, err
			}
			return &Result{Answers: answers, Decomp: out, Plan: plan}, nil
		}
		fragErr = err
	}
	// Legacy / fallback evaluation needs a fully bound statement tree.
	lsel := sel
	if len(args) > 0 {
		bound, err := bindSelect(sel, args)
		if err != nil {
			return nil, err
		}
		lsel = bound
	}
	if s.Engine == legacyEngine {
		// The comparison engine enumerates the whole world-set by design.
		ws, err := snap.DB.Expand(s.maxWorlds())
		if err != nil {
			return nil, err
		}
		out, err := s.evalSelect(lsel, ws, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Answers: distinctAnswers(out), WorldSet: out}, nil
	}
	// Outside the WSA fragment: evaluate on the bounded input — only the
	// components contributing to relations the statement reads are
	// enumerated, so an aggregate over a small uncertain region answers
	// in time independent of the catalog's world count.
	s.Stats.recordLegacy(fragmentOp(fragErr))
	bsp := s.span.Child("exec.bounded").Set("fragment-op", fragmentOp(fragErr))
	ws, deps, err := s.boundedInput(snap.DB, lsel)
	if err != nil {
		bsp.End()
		return nil, err
	}
	bsp.SetInt("components", int64(len(deps)))
	out, err := s.evalSelect(lsel, ws, nil)
	bsp.End()
	if err != nil {
		return nil, err
	}
	res := &Result{Answers: distinctAnswers(out)}
	if len(deps) == len(snap.DB.Components) {
		// The bounded input was the full expansion; expose it as before.
		res.WorldSet = out
	}
	return res, nil
}

func (s *Session) execCreateTableAs(n *CreateTableAsStmt) (*Result, error) {
	if p := maxParamSelect(n.Query); p > 0 {
		return nil, fmt.Errorf("isql: unbound parameter $%d (bind it with execute)", p)
	}
	var res *Result
	err := s.updateRouted(nil, func(tx *store.Tx) error {
		tx.Log(n.String())
		if err := s.refreshViewsFrom(tx.Snap()); err != nil {
			return err
		}
		if tx.Snap().HasRelation(n.Name) {
			return fmt.Errorf("isql: relation %q already exists", n.Name)
		}
		var fragErr error
		if s.Engine != legacyEngine {
			csp := s.span.Child("compile")
			q, err := s.compileOn(tx.Snap().DB.Names, tx.Snap().DB.Schemas, n.Query)
			csp.End()
			if err != nil && !isFragmentError(err) {
				return err
			}
			if err == nil {
				xsp := s.span.Child("exec")
				out, plan, err := store.QueryOpts(tx.Snap(), s.engineName(), q,
					&wsdexec.Options{ExpandBudget: s.maxWorlds(), Trace: xsp})
				xsp.End()
				if err != nil {
					return err
				}
				s.Stats.recordPlan(plan)
				db := out.RenameRelation(len(out.Names)-1, n.Name).Normalize()
				tx.SetDB(db)
				res = &Result{Decomp: db, Plan: plan}
				return nil
			}
			fragErr = err
		}
		base := tx.Snap().DB
		if s.Engine == legacyEngine {
			ws, err := base.Expand(s.maxWorlds())
			if err != nil {
				return err
			}
			out, err := s.evalSelect(n.Query, ws, nil)
			if err != nil {
				return err
			}
			out = renameLastRelation(out, n.Name)
			db, err := wsd.Refactor(out)
			if err != nil {
				return err
			}
			tx.SetDB(db)
			res = &Result{WorldSet: out, Decomp: db}
			return nil
		}
		// Outside the WSA fragment: evaluate on the bounded input, then
		// re-factorize the local result and splice the untouched
		// components back — one entangled step never enumerates (or
		// de-factorizes) more than the components the query reads.
		s.Stats.recordLegacy(fragmentOp(fragErr))
		ws, deps, err := s.boundedInput(base, n.Query)
		if err != nil {
			return err
		}
		out, err := s.evalSelect(n.Query, ws, nil)
		if err != nil {
			return err
		}
		out = renameLastRelation(out, n.Name)
		db, err := wsd.Refactor(out)
		if err != nil {
			return err
		}
		db = spliceIndependent(db, base, deps).Normalize()
		tx.SetDB(db)
		res = &Result{Decomp: db}
		if len(deps) == len(base.Components) {
			res.WorldSet = out
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (s *Session) execCreateView(n *CreateViewStmt) (*Result, error) {
	if p := maxParamSelect(n.Query); p > 0 {
		// A stored view must be self-contained: there is no EXECUTE to
		// bind its placeholders when a later statement expands it.
		return nil, fmt.Errorf("isql: view body holds unbound parameter $%d", p)
	}
	var res *Result
	err := s.updateRouted(nil, func(tx *store.Tx) error {
		tx.Log(n.String())
		snap := tx.Snap()
		if err := s.refreshViewsFrom(snap); err != nil {
			return err
		}
		if snap.HasRelation(n.Name) {
			return fmt.Errorf("isql: relation %q already exists", n.Name)
		}
		// Validate the view body against the current schema by static
		// analysis (name resolution, arity, subquery classification).
		if _, err := s.analyzeSelect(n.Query, snap.DB.Names, snap.DB.Schemas, nil); err != nil {
			return fmt.Errorf("isql: invalid view %q: %w", n.Name, err)
		}
		tx.SetView(n.Name, n.Query.String())
		res = s.stateResult(tx.DB())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (s *Session) execCreateTable(n *CreateTableStmt) (*Result, error) {
	var res *Result
	err := s.updateRouted(nil, func(tx *store.Tx) error {
		tx.Log(n.String())
		if tx.Snap().HasRelation(n.Name) {
			return fmt.Errorf("isql: relation %q already exists", n.Name)
		}
		db := tx.DB().WithRelation(n.Name, relation.NewSchema(n.Columns...), nil)
		tx.SetDB(db)
		res = s.stateResult(db)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (s *Session) execDropTable(n *DropTableStmt) (*Result, error) {
	var res *Result
	err := s.updateRouted(nil, func(tx *store.Tx) error {
		tx.Log(n.String())
		db := tx.DB()
		idx := db.IndexOf(n.Name)
		if idx < 0 {
			if _, ok := tx.Views()[n.Name]; ok {
				tx.DropView(n.Name)
				res = s.stateResult(db)
				return nil
			}
			return fmt.Errorf("isql: unknown relation %q", n.Name)
		}
		next := db.DropRelation(idx).Normalize()
		tx.SetDB(next)
		res = s.stateResult(next)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// stateResult packages the post-statement catalog state. Write
// statements do not materialize worlds — the factored state is in
// Decomp, and Session.WorldSet expands on demand.
func (s *Session) stateResult(db *wsd.DecompDB) *Result {
	return &Result{Decomp: db}
}

func (s *Session) execInsert(n *InsertStmt) (*Result, error) {
	if err := firstUnboundParam(n.Params); err != nil {
		return nil, err
	}
	var res *Result
	err := s.updateRouted([]string{n.Table}, func(tx *store.Tx) error {
		tx.Log(n.String())
		db := tx.DB()
		idx := db.IndexOf(n.Table)
		if idx < 0 {
			return fmt.Errorf("isql: unknown relation %q", n.Table)
		}
		schema := db.Schemas[idx]
		for _, row := range n.Rows {
			if len(row) != len(schema) {
				return fmt.Errorf("isql: insert arity %d does not match schema %v", len(row), schema)
			}
		}
		// Inserting makes a tuple certain. The world-weighted affected
		// count is the number of worlds the tuple was absent from,
		// computed on the decomposition without enumeration.
		worlds := db.Worlds()
		affected := new(big.Int)
		var delta big.Int
		nr := db.Certain[idx].Clone()
		for _, row := range n.Rows {
			t := relation.Tuple(row).Clone()
			if !nr.Insert(t) {
				continue
			}
			delta.Sub(worlds, db.PresenceCount(idx, t))
			affected.Add(affected, &delta)
		}
		next := db.WithCertain(idx, nr).Normalize()
		tx.SetDB(next)
		res = s.stateResult(next)
		res.Affected = satInt(affected)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (s *Session) execDelete(n *DeleteStmt) (*Result, error) {
	if s.Engine == legacyEngine || exprHasSubquery(n.Where) {
		return s.legacyDML(n.String(), func(ws *worldset.WorldSet) (*worldset.WorldSet, int, error) {
			return s.legacyDelete(ws, n)
		})
	}
	return s.mutateNative(n.String(), n.Table, nil,
		func(ctx *evalCtx, t relation.Tuple) (relation.Tuple, bool, error) {
			if n.Where != nil {
				ctx.tuple = t
				match, err := ctx.evalBool(n.Where)
				if err != nil || !match {
					return t, false, err
				}
			}
			return nil, true, nil
		})
}

func (s *Session) execUpdate(n *UpdateStmt) (*Result, error) {
	hasSub := exprHasSubquery(n.Where)
	for _, sc := range n.Sets {
		hasSub = hasSub || exprHasSubquery(sc.Expr)
	}
	if s.Engine == legacyEngine || hasSub {
		return s.legacyDML(n.String(), func(ws *worldset.WorldSet) (*worldset.WorldSet, int, error) {
			return s.legacyUpdate(ws, n)
		})
	}
	var setIdx []int
	return s.mutateNative(n.String(), n.Table,
		func(schema relation.Schema) error {
			setIdx = make([]int, len(n.Sets))
			for i, sc := range n.Sets {
				j := schema.Index(sc.Col.Full())
				if j < 0 {
					return fmt.Errorf("isql: unknown column %q in update", sc.Col.Full())
				}
				setIdx[i] = j
			}
			return nil
		},
		func(ctx *evalCtx, t relation.Tuple) (relation.Tuple, bool, error) {
			ctx.tuple = t
			if n.Where != nil {
				match, err := ctx.evalBool(n.Where)
				if err != nil || !match {
					return t, false, err
				}
			}
			nt := t.Clone()
			for i, sc := range n.Sets {
				v, err := ctx.evalExpr(sc.Expr)
				if err != nil {
					return nil, false, err
				}
				nt[setIdx[i]] = v
			}
			return nt, true, nil
		})
}

// mutateNative is the shared scaffolding of the native (tuple-local)
// DML paths: locate the table, map perTuple over every decomposition
// piece of the relation (certain and alternative contributions —
// tuple-local predicates distribute over the pieces), weight the
// touched pre-tuples by their world presence for the affected count,
// normalize, and commit. perTuple returns the replacement tuple (nil
// to drop it) and whether the statement touched the tuple; it sees the
// pre-state tuple via ctx.tuple only after setting it itself or via
// the passed t.
func (s *Session) mutateNative(stmt, table string, prepare func(relation.Schema) error,
	perTuple func(*evalCtx, relation.Tuple) (relation.Tuple, bool, error)) (*Result, error) {
	var res *Result
	err := s.updateRouted([]string{table}, func(tx *store.Tx) error {
		tx.Log(stmt)
		db := tx.DB()
		idx := db.IndexOf(table)
		if idx < 0 {
			return fmt.Errorf("isql: unknown relation %q", table)
		}
		schema := db.Schemas[idx]
		if prepare != nil {
			if err := prepare(schema); err != nil {
				return err
			}
		}
		ctx := &evalCtx{session: s, schema: schema}
		touched := map[string]relation.Tuple{}
		next, err := db.MapRelation(idx, func(r *relation.Relation) (*relation.Relation, error) {
			nr := relation.New(schema)
			var evalErr error
			r.Each(func(t relation.Tuple) {
				if evalErr != nil {
					return
				}
				nt, hit, err := perTuple(ctx, t)
				if err != nil {
					evalErr = err
					return
				}
				if hit {
					touched[t.Key()] = t
				}
				if nt != nil {
					nr.Insert(nt)
				}
			})
			if evalErr != nil {
				return nil, evalErr
			}
			return nr, nil
		})
		if err != nil {
			return err
		}
		affected := new(big.Int)
		for _, t := range touched {
			affected.Add(affected, db.PresenceCount(idx, t))
		}
		next = next.Normalize()
		tx.SetDB(next)
		res = s.stateResult(next)
		res.Affected = satInt(affected)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// legacyDML expands the catalog, applies a per-world mutation with the
// explicit world-set evaluator, and re-factorizes the result into the
// next catalog version.
func (s *Session) legacyDML(stmt string, apply func(*worldset.WorldSet) (*worldset.WorldSet, int, error)) (*Result, error) {
	var res *Result
	err := s.updateRouted(nil, func(tx *store.Tx) error {
		tx.Log(stmt)
		if err := s.refreshViewsFrom(tx.Snap()); err != nil {
			return err
		}
		ws, err := tx.Snap().DB.Expand(s.maxWorlds())
		if err != nil {
			return err
		}
		out, affected, err := apply(ws)
		if err != nil {
			return err
		}
		db, err := wsd.Refactor(out)
		if err != nil {
			return err
		}
		tx.SetDB(db)
		res = &Result{WorldSet: out, Decomp: db, Affected: affected}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// legacyDelete is the per-world delete of the explicit world-set
// evaluator (predicates may hold subqueries).
func (s *Session) legacyDelete(ws *worldset.WorldSet, n *DeleteStmt) (*worldset.WorldSet, int, error) {
	idx := ws.IndexOf(n.Table)
	if idx < 0 {
		return nil, 0, fmt.Errorf("isql: unknown relation %q", n.Table)
	}
	schema := ws.Schemas()[idx]
	affected := 0
	out := worldset.New(ws.Names(), ws.Schemas())
	var evalErr error
	ws.Each(func(w worldset.World) {
		if evalErr != nil {
			return
		}
		nw := append(worldset.World{}, w...)
		nr := relation.New(schema)
		ctx := &evalCtx{session: s, world: w, names: ws.Names(), schemas: ws.Schemas(), schema: schema}
		nw[idx].Each(func(t relation.Tuple) {
			if evalErr != nil {
				return
			}
			keep := true
			if n.Where != nil {
				ctx.tuple = t
				match, err := ctx.evalBool(n.Where)
				if err != nil {
					evalErr = err
					return
				}
				keep = !match
			} else {
				keep = false
			}
			if keep {
				nr.Insert(t)
			} else {
				affected++
			}
		})
		nw[idx] = nr
		out.Add(nw)
	})
	if evalErr != nil {
		return nil, 0, evalErr
	}
	return out, affected, nil
}

// legacyUpdate is the per-world update of the explicit world-set
// evaluator.
func (s *Session) legacyUpdate(ws *worldset.WorldSet, n *UpdateStmt) (*worldset.WorldSet, int, error) {
	idx := ws.IndexOf(n.Table)
	if idx < 0 {
		return nil, 0, fmt.Errorf("isql: unknown relation %q", n.Table)
	}
	schema := ws.Schemas()[idx]
	setIdx := make([]int, len(n.Sets))
	for i, sc := range n.Sets {
		j := schema.Index(sc.Col.Full())
		if j < 0 {
			return nil, 0, fmt.Errorf("isql: unknown column %q in update", sc.Col.Full())
		}
		setIdx[i] = j
	}
	affected := 0
	out := worldset.New(ws.Names(), ws.Schemas())
	var evalErr error
	ws.Each(func(w worldset.World) {
		if evalErr != nil {
			return
		}
		nw := append(worldset.World{}, w...)
		nr := relation.New(schema)
		ctx := &evalCtx{session: s, world: w, names: ws.Names(), schemas: ws.Schemas(), schema: schema}
		nw[idx].Each(func(t relation.Tuple) {
			if evalErr != nil {
				return
			}
			ctx.tuple = t
			match := true
			if n.Where != nil {
				m, err := ctx.evalBool(n.Where)
				if err != nil {
					evalErr = err
					return
				}
				match = m
			}
			if !match {
				nr.Insert(t)
				return
			}
			nt := t.Clone()
			for i, sc := range n.Sets {
				v, err := ctx.evalExpr(sc.Expr)
				if err != nil {
					evalErr = err
					return
				}
				nt[setIdx[i]] = v
			}
			nr.Insert(nt)
			affected++
		})
		nw[idx] = nr
		out.Add(nw)
	})
	if evalErr != nil {
		return nil, 0, evalErr
	}
	return out, affected, nil
}

// DistinctAnswers extracts the deduplicated answer relations (the last
// relation of every world) of an evaluated select, in deterministic
// order — the same extraction that fills Result.Answers. Exported so
// callers evaluating compiled statements through other engines print
// answers identically to the session evaluator.
func DistinctAnswers(ws *worldset.WorldSet) []*relation.Relation { return distinctAnswers(ws) }

// distinctAnswers extracts the deduplicated answer relations of an
// evaluated select, in deterministic order.
func distinctAnswers(ws *worldset.WorldSet) []*relation.Relation {
	k := ws.NumRelations() - 1
	seen := map[string]*relation.Relation{}
	for _, w := range ws.Worlds() {
		seen[w[k].ContentKey()] = w[k]
	}
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	out := make([]*relation.Relation, len(keys))
	for i, key := range keys {
		out[i] = seen[key]
	}
	return out
}

func renameLastRelation(ws *worldset.WorldSet, name string) *worldset.WorldSet {
	names := append([]string{}, ws.Names()...)
	names[len(names)-1] = name
	out := worldset.New(names, ws.Schemas())
	ws.Each(func(w worldset.World) { out.Add(w) })
	return out
}

// cacheLabel names a plan-cache outcome for trace attributes.
func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// satInt converts a world-weighted count to an int, saturating.
func satInt(b *big.Int) int {
	if b.IsInt64() {
		if i := b.Int64(); i <= math.MaxInt {
			return int(i)
		}
	}
	return math.MaxInt
}

// isFragmentError reports whether an error marks a statement as merely
// outside the clean WSA fragment (fall back) rather than wrong (fail).
func isFragmentError(err error) bool {
	var fe *fragmentError
	return errors.As(err, &fe)
}

// exprHasSubquery reports whether the expression contains a subquery in
// any position — the statically detectable reason a DML predicate
// cannot be evaluated tuple-locally on the decomposition pieces.
func exprHasSubquery(e Expr) bool {
	switch n := e.(type) {
	case nil:
		return false
	case *BinExpr:
		return exprHasSubquery(n.L) || exprHasSubquery(n.R)
	case *LogicExpr:
		return exprHasSubquery(n.L) || exprHasSubquery(n.R)
	case *NotExpr:
		return exprHasSubquery(n.E)
	case *AggExpr:
		return n.Arg != nil && exprHasSubquery(n.Arg)
	case *InExpr, *ExistsExpr, *SubqueryExpr:
		return true
	}
	return false
}
