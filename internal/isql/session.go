package isql

import (
	"fmt"
	"sort"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/worldset"
)

// Session is an I-SQL database: a world-set of named relations plus a
// view catalog. The zero value is not usable; construct with NewSession
// or FromDB.
type Session struct {
	ws    *worldset.WorldSet
	views map[string]*SelectStmt
	// MaxWorlds bounds world-set growth (repair-by-key is exponential);
	// 0 means the package default of 1<<20.
	MaxWorlds int
}

// NewSession returns a session over the empty complete database: one
// world with no relations.
func NewSession() *Session {
	ws := worldset.New(nil, nil)
	ws.Add(worldset.World{})
	return &Session{ws: ws, views: map[string]*SelectStmt{}}
}

// FromDB returns a session whose world-set is the singleton {A} for the
// given complete database.
func FromDB(names []string, rels []*relation.Relation) *Session {
	return &Session{ws: worldset.FromDB(names, rels), views: map[string]*SelectStmt{}}
}

// FromWorldSet returns a session over an existing world-set.
func FromWorldSet(ws *worldset.WorldSet) *Session {
	return &Session{ws: ws, views: map[string]*SelectStmt{}}
}

// WorldSet returns the session's current world-set.
func (s *Session) WorldSet() *worldset.WorldSet { return s.ws }

// Views returns the names of registered views, sorted.
func (s *Session) Views() []string {
	out := make([]string, 0, len(s.views))
	for n := range s.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (s *Session) maxWorlds() int {
	if s.MaxWorlds == 0 {
		return 1 << 20
	}
	return s.MaxWorlds
}

// Result reports the outcome of executing a statement.
type Result struct {
	// Answers holds, for a select, the distinct answer relations across
	// worlds in deterministic order (a 1↦1 query yields exactly one).
	Answers []*relation.Relation
	// WorldSet is the world-set after the statement, extended with the
	// answer relation for a select (named Answer).
	WorldSet *worldset.WorldSet
	// Affected counts modified tuples per world summed over worlds, for
	// DML statements.
	Affected int
}

// answerName is the name of a select's answer relation in Result.WorldSet.
const answerName = "$ans"

// ExecString parses and executes one statement.
func (s *Session) ExecString(sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.Exec(st)
}

// ExecScript parses and executes a semicolon-separated script, returning
// the result of the last statement.
func (s *Session) ExecScript(sql string) (*Result, error) {
	stmts, err := ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, st := range stmts {
		if last, err = s.Exec(st); err != nil {
			return nil, fmt.Errorf("executing %q: %w", st, err)
		}
	}
	return last, nil
}

// Exec executes a statement against the session. Select statements do
// not modify the session; DML, create and drop statements do.
func (s *Session) Exec(st Statement) (*Result, error) {
	switch n := st.(type) {
	case *SelectStmt:
		out, err := s.evalSelect(n, s.ws, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Answers: distinctAnswers(out), WorldSet: out}, nil

	case *CreateTableAsStmt:
		if s.ws.IndexOf(n.Name) >= 0 || s.views[n.Name] != nil {
			return nil, fmt.Errorf("isql: relation %q already exists", n.Name)
		}
		out, err := s.evalSelect(n.Query, s.ws, nil)
		if err != nil {
			return nil, err
		}
		s.ws = renameLastRelation(out, n.Name)
		return &Result{WorldSet: s.ws}, nil

	case *CreateViewStmt:
		if s.ws.IndexOf(n.Name) >= 0 || s.views[n.Name] != nil {
			return nil, fmt.Errorf("isql: relation %q already exists", n.Name)
		}
		// Validate the view body against the current schema by a dry
		// run on an empty world-set clone of the schema.
		if _, err := s.evalSelect(n.Query, s.ws, nil); err != nil {
			return nil, fmt.Errorf("isql: invalid view %q: %w", n.Name, err)
		}
		s.views[n.Name] = n.Query
		return &Result{WorldSet: s.ws}, nil

	case *CreateTableStmt:
		if s.ws.IndexOf(n.Name) >= 0 || s.views[n.Name] != nil {
			return nil, fmt.Errorf("isql: relation %q already exists", n.Name)
		}
		schema := relation.NewSchema(n.Columns...)
		s.ws = s.ws.Extend(n.Name, schema, func(worldset.World) *relation.Relation {
			return relation.New(schema)
		})
		return &Result{WorldSet: s.ws}, nil

	case *DropTableStmt:
		idx := s.ws.IndexOf(n.Name)
		if idx < 0 {
			if _, ok := s.views[n.Name]; ok {
				delete(s.views, n.Name)
				return &Result{WorldSet: s.ws}, nil
			}
			return nil, fmt.Errorf("isql: unknown relation %q", n.Name)
		}
		s.ws = dropRelation(s.ws, idx)
		return &Result{WorldSet: s.ws}, nil

	case *InsertStmt:
		return s.execInsert(n)
	case *DeleteStmt:
		return s.execDelete(n)
	case *UpdateStmt:
		return s.execUpdate(n)
	}
	return nil, fmt.Errorf("isql: unsupported statement %T", st)
}

// DistinctAnswers extracts the deduplicated answer relations (the last
// relation of every world) of an evaluated select, in deterministic
// order — the same extraction that fills Result.Answers. Exported so
// callers evaluating compiled statements through other engines (the
// -engine path of cmd/isql) print answers identically to the session
// evaluator.
func DistinctAnswers(ws *worldset.WorldSet) []*relation.Relation { return distinctAnswers(ws) }

// distinctAnswers extracts the deduplicated answer relations of an
// evaluated select, in deterministic order.
func distinctAnswers(ws *worldset.WorldSet) []*relation.Relation {
	k := ws.NumRelations() - 1
	seen := map[string]*relation.Relation{}
	for _, w := range ws.Worlds() {
		seen[w[k].ContentKey()] = w[k]
	}
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	out := make([]*relation.Relation, len(keys))
	for i, key := range keys {
		out[i] = seen[key]
	}
	return out
}

func renameLastRelation(ws *worldset.WorldSet, name string) *worldset.WorldSet {
	names := append([]string{}, ws.Names()...)
	names[len(names)-1] = name
	out := worldset.New(names, ws.Schemas())
	ws.Each(func(w worldset.World) { out.Add(w) })
	return out
}

func dropRelation(ws *worldset.WorldSet, idx int) *worldset.WorldSet {
	names := append([]string{}, ws.Names()...)
	schemas := append([]relation.Schema{}, ws.Schemas()...)
	names = append(names[:idx], names[idx+1:]...)
	schemas = append(schemas[:idx], schemas[idx+1:]...)
	out := worldset.New(names, schemas)
	ws.Each(func(w worldset.World) {
		nw := make(worldset.World, 0, len(w)-1)
		nw = append(nw, w[:idx]...)
		nw = append(nw, w[idx+1:]...)
		out.Add(nw)
	})
	return out
}

func (s *Session) execInsert(n *InsertStmt) (*Result, error) {
	idx := s.ws.IndexOf(n.Table)
	if idx < 0 {
		return nil, fmt.Errorf("isql: unknown relation %q", n.Table)
	}
	schema := s.ws.Schemas()[idx]
	for _, row := range n.Rows {
		if len(row) != len(schema) {
			return nil, fmt.Errorf("isql: insert arity %d does not match schema %v", len(row), schema)
		}
	}
	affected := 0
	out := worldset.New(s.ws.Names(), s.ws.Schemas())
	s.ws.Each(func(w worldset.World) {
		nw := append(worldset.World{}, w...)
		nr := nw[idx].Clone()
		for _, row := range n.Rows {
			if nr.Insert(relation.Tuple(row)) {
				affected++
			}
		}
		nw[idx] = nr
		out.Add(nw)
	})
	s.ws = out
	return &Result{WorldSet: s.ws, Affected: affected}, nil
}

func (s *Session) execDelete(n *DeleteStmt) (*Result, error) {
	idx := s.ws.IndexOf(n.Table)
	if idx < 0 {
		return nil, fmt.Errorf("isql: unknown relation %q", n.Table)
	}
	schema := s.ws.Schemas()[idx]
	affected := 0
	out := worldset.New(s.ws.Names(), s.ws.Schemas())
	var evalErr error
	s.ws.Each(func(w worldset.World) {
		if evalErr != nil {
			return
		}
		nw := append(worldset.World{}, w...)
		nr := relation.New(schema)
		ctx := &evalCtx{session: s, world: w, names: s.ws.Names(), schemas: s.ws.Schemas(), schema: schema}
		nw[idx].Each(func(t relation.Tuple) {
			if evalErr != nil {
				return
			}
			keep := true
			if n.Where != nil {
				ctx.tuple = t
				match, err := ctx.evalBool(n.Where)
				if err != nil {
					evalErr = err
					return
				}
				keep = !match
			} else {
				keep = false
			}
			if keep {
				nr.Insert(t)
			} else {
				affected++
			}
		})
		nw[idx] = nr
		out.Add(nw)
	})
	if evalErr != nil {
		return nil, evalErr
	}
	s.ws = out
	return &Result{WorldSet: s.ws, Affected: affected}, nil
}

func (s *Session) execUpdate(n *UpdateStmt) (*Result, error) {
	idx := s.ws.IndexOf(n.Table)
	if idx < 0 {
		return nil, fmt.Errorf("isql: unknown relation %q", n.Table)
	}
	schema := s.ws.Schemas()[idx]
	setIdx := make([]int, len(n.Sets))
	for i, sc := range n.Sets {
		j := schema.Index(sc.Col.Full())
		if j < 0 {
			return nil, fmt.Errorf("isql: unknown column %q in update", sc.Col.Full())
		}
		setIdx[i] = j
	}
	affected := 0
	out := worldset.New(s.ws.Names(), s.ws.Schemas())
	var evalErr error
	s.ws.Each(func(w worldset.World) {
		if evalErr != nil {
			return
		}
		nw := append(worldset.World{}, w...)
		nr := relation.New(schema)
		ctx := &evalCtx{session: s, world: w, names: s.ws.Names(), schemas: s.ws.Schemas(), schema: schema}
		nw[idx].Each(func(t relation.Tuple) {
			if evalErr != nil {
				return
			}
			ctx.tuple = t
			match := true
			if n.Where != nil {
				m, err := ctx.evalBool(n.Where)
				if err != nil {
					evalErr = err
					return
				}
				match = m
			}
			if !match {
				nr.Insert(t)
				return
			}
			nt := t.Clone()
			for i, sc := range n.Sets {
				v, err := ctx.evalExpr(sc.Expr)
				if err != nil {
					evalErr = err
					return
				}
				nt[setIdx[i]] = v
			}
			nr.Insert(nt)
			affected++
		})
		nw[idx] = nr
		out.Add(nw)
	})
	if evalErr != nil {
		return nil, evalErr
	}
	s.ws = out
	return &Result{WorldSet: s.ws, Affected: affected}, nil
}
