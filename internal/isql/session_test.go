package isql

import (
	"strings"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
)

// TestSessionLifecycle: create table, insert, query, update, delete,
// drop — the plain-SQL subset behaves like a (single-world) database.
func TestSessionLifecycle(t *testing.T) {
	s := NewSession()
	mustExec(t, s, "create table T (A, B);")
	res := mustExec(t, s, "insert into T values (1, 'x'), (2, 'y'), (2, 'y');")
	if res.Affected != 2 {
		t.Errorf("insert affected %d, want 2 (set semantics)", res.Affected)
	}
	got := singleAnswer(t, s, "select A from T where B = 'y';")
	if got.Len() != 1 || !got.Contains(relation.Tuple{value.Int(2)}) {
		t.Fatalf("select = %v", got)
	}
	mustExec(t, s, "update T set A = 9 where B = 'x';")
	got = singleAnswer(t, s, "select A from T;")
	if !got.Contains(relation.Tuple{value.Int(9)}) {
		t.Fatalf("update missing: %v", got)
	}
	res = mustExec(t, s, "delete from T;")
	if res.Affected != 2 {
		t.Errorf("delete affected %d, want 2", res.Affected)
	}
	mustExec(t, s, "drop table T;")
	if _, err := s.ExecString("select * from T;"); err == nil {
		t.Fatal("expected unknown-relation error after drop")
	}
}

// TestDuplicateRelationNames: tables and views share a namespace.
func TestDuplicateRelationNames(t *testing.T) {
	s := flightsSession()
	mustExec(t, s, "create view V as select * from HFlights;")
	if _, err := s.ExecString("create table V (A);"); err == nil {
		t.Fatal("expected name-clash error")
	}
	if _, err := s.ExecString("create view HFlights as select * from HFlights;"); err == nil {
		t.Fatal("expected name-clash error for view over table name")
	}
	mustExec(t, s, "drop table V;") // drops the view
	mustExec(t, s, "create table V (A);")
}

// TestViewValidationAtCreate: a broken view body is rejected
// immediately, not at first use.
func TestViewValidationAtCreate(t *testing.T) {
	s := flightsSession()
	if _, err := s.ExecString("create view Bad as select Missing from HFlights;"); err == nil {
		t.Fatal("expected unknown-column error at view creation")
	}
	if len(s.Views()) != 0 {
		t.Fatal("failed view must not be registered")
	}
}

// TestNestedCorrelation: a two-level correlated subquery resolves
// against the outermost scope (the F1 alias).
func TestNestedCorrelation(t *testing.T) {
	s := flightsSession()
	// Departures that fly everywhere any airline flies to from FRA.
	got := singleAnswer(t, s, `select F1.Dep from HFlights F1
		where not exists (select * from HFlights F2
			where F2.Dep = 'FRA' and not exists (select * from HFlights F3
				where F3.Dep = F1.Dep and F3.Arr = F2.Arr));`)
	// FRA and PAR both serve {ATL, BCN}; PHL only ATL.
	want := relation.FromRows(relation.NewSchema("Dep"), strTuple("FRA"), strTuple("PAR"))
	if !got.EqualContents(want) {
		t.Fatalf("got %v, want {FRA, PAR}", got)
	}
}

// TestCorrelatedWorldCreatingSubqueryRejected: choice-of inside a
// correlated subquery has no coherent semantics and is refused.
func TestCorrelatedWorldCreatingSubqueryRejected(t *testing.T) {
	s := flightsSession()
	_, err := s.ExecString(`select F1.Dep from HFlights F1
		where F1.Arr in (select Arr from HFlights F2 where F2.Dep = F1.Dep choice of Arr);`)
	if err == nil || !strings.Contains(err.Error(), "correlated") {
		t.Fatalf("expected correlated-choice error, got %v", err)
	}
}

// TestAmbiguousColumnsRejected: self-products require aliases.
func TestAmbiguousColumnsRejected(t *testing.T) {
	s := flightsSession()
	if _, err := s.ExecString("select * from HFlights, HFlights;"); err == nil {
		t.Fatal("expected ambiguity error for unaliased self-product")
	}
	if _, err := s.ExecString("select Dep from HFlights A, HFlights B;"); err == nil {
		t.Fatal("expected ambiguous-column error")
	}
}

// TestInsertArityChecked: inserts must match the schema.
func TestInsertArityChecked(t *testing.T) {
	s := flightsSession()
	if _, err := s.ExecString("insert into HFlights values ('MUC');"); err == nil {
		t.Fatal("expected arity error")
	}
}

// TestGroupWorldsQueryMustNotCreateWorlds: the grouping query runs per
// world and may not itself fork worlds.
func TestGroupWorldsQueryMustNotCreateWorlds(t *testing.T) {
	s := flightsSession()
	_, err := s.ExecString(`select certain Arr from HFlights choice of Dep
		group worlds by (select * from HFlights choice of Arr);`)
	if err == nil {
		t.Fatal("expected an error for a world-creating grouping query")
	}
}

// TestEmptyGroupAggregate: a global aggregate over an empty relation
// yields one row (count = 0, sum = 0), per the documented semantics.
func TestEmptyGroupAggregate(t *testing.T) {
	s := NewSession()
	mustExec(t, s, "create table T (A);")
	got := singleAnswer(t, s, "select count(*) as N, sum(A) as S from T;")
	if got.Len() != 1 {
		t.Fatalf("global aggregate over empty input must yield one row, got %d", got.Len())
	}
	if !got.Contains(relation.Tuple{value.Int(0), value.Int(0)}) {
		t.Fatalf("want (0, 0), got %v", got)
	}
	// With group-by, no groups → no rows.
	got = singleAnswer(t, s, "select A, count(*) as N from T group by A;")
	if got.Len() != 0 {
		t.Fatalf("grouped aggregate over empty input must be empty, got %v", got)
	}
}

// TestChoiceOfQualifiedAttribute: choice-of resolves against the joined
// schema with qualified names. After projecting the answer to Arr, the
// FRA and PAR worlds carry identical contents and collapse (set
// semantics), leaving two distinct worlds — exactly what the reference
// Figure 3 semantics produces for π_Arr(χ_Dep(HFlights)).
func TestChoiceOfQualifiedAttribute(t *testing.T) {
	s := flightsSession()
	res := mustExec(t, s, "select F.Arr from HFlights F choice of F.Dep;")
	ws, err := res.Decomp.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Len() != 2 {
		t.Fatalf("expected 2 worlds after collapse, got %d", ws.Len())
	}
	if len(res.Answers) != 2 {
		t.Fatalf("expected the answers {ATL, BCN} and {ATL}, got %d", len(res.Answers))
	}
}

// TestArithmeticInSelectList: computed output columns.
func TestArithmeticInSelectList(t *testing.T) {
	s := FromDB([]string{"Lineitem"}, []*relation.Relation{tpchLineitem()})
	got := singleAnswer(t, s, "select Product, Price / 1000 as K from Lineitem where Year = 2000;")
	if got.Len() != 2 {
		t.Fatalf("rows = %d", got.Len())
	}
	if !got.Contains(relation.Tuple{value.Str("P1"), value.Float(1200)}) {
		t.Fatalf("computed column wrong: %v", got)
	}
}

// TestMultipleChoiceAttrs: choice of two attributes splits per value
// combination.
func TestMultipleChoiceAttrs(t *testing.T) {
	s := flightsSession()
	res := mustExec(t, s, "select * from HFlights choice of Dep, Arr;")
	ws, err := res.Decomp.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Len() != 5 {
		t.Fatalf("5 (Dep, Arr) combinations expected, got %d", ws.Len())
	}
}

// TestCTASThenQueryAcrossWorlds: materialized multi-world tables stay
// queryable and DML applies per world (integration of the pieces).
func TestCTASThenQueryAcrossWorlds(t *testing.T) {
	s := FromDB([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	mustExec(t, s, "create table Clean as select * from Census repair by key SSN;")
	if s.WorldSet().Len() != 4 {
		t.Fatalf("4 repairs expected")
	}
	res := mustExec(t, s, "delete from Clean where SSN = 333;")
	if res.Affected != 4 {
		t.Fatalf("the SSN-333 tuple is in every repair; affected = %d", res.Affected)
	}
	got := singleAnswer(t, s, "select certain SSN from Clean;")
	want := relation.FromRows(relation.NewSchema("SSN"),
		relation.Tuple{value.Int(111)}, relation.Tuple{value.Int(222)})
	if !got.EqualContents(want) {
		t.Fatalf("certain SSNs = %v, want {111, 222}", got)
	}
}
