package isql

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"worldsetdb/internal/store"
)

// crossShardTables picks two table names homing on different shards of
// cat, so a transaction writing both must take the cross-shard
// two-phase commit path.
func crossShardTables(t *testing.T, cat *store.Catalog) (string, string) {
	t.Helper()
	ta := "T0"
	for i := 1; i < 64; i++ {
		tb := fmt.Sprintf("T%d", i)
		if cat.ShardOf(tb) != cat.ShardOf(ta) {
			return ta, tb
		}
	}
	t.Fatal("no two table names home on different shards")
	return "", ""
}

// TestShardedCrashRecoveryByteIdentical is the sharded WAL acceptance
// test at the I-SQL level: a workload over a 4-shard catalog — all-shard
// DDL, routed single-shard commits, and a committed cross-shard
// transaction as the final commit — crashes without checkpointing, and
// merged-epoch recovery over the four segments must restore the catalog
// byte-identical (version included) to the last committed snapshot. An
// uncommitted transaction in flight at crash time leaves no trace.
func TestShardedCrashRecoveryByteIdentical(t *testing.T) {
	const nshards = 4
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "checkpoint.wsd")

	cat, wals, err := OpenStoreSharded(wsdPath, dir, nshards)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := crossShardTables(t, cat)
	s := FromCatalog(cat)
	mustScript(t, s,
		fmt.Sprintf("create table %s (A);", ta),
		fmt.Sprintf("create table %s (A);", tb),
		fmt.Sprintf("insert into %s values (1), (2);", ta),
		fmt.Sprintf("insert into %s values (10);", tb),
		"begin;",
		fmt.Sprintf("insert into %s values (777);", ta),
		fmt.Sprintf("insert into %s values (888);", tb),
		"commit;",
	)
	want := rawSnapBytes(t, cat.Snapshot())

	// An in-flight transaction at crash time: staged, never committed.
	mustScript(t, s, "begin;", fmt.Sprintf("delete from %s;", ta))
	for _, w := range wals {
		w.Close() // crash: no checkpoint, open transaction dropped
	}

	cat2, wals2, err := OpenStoreSharded(wsdPath, dir, nshards)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range wals2 {
			w.Close()
		}
	}()
	if got := rawSnapBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatalf("recovered catalog differs from last committed snapshot\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// And the recovered catalog serves, with the cross-shard commit
	// visible on both shards.
	s2 := FromCatalog(cat2)
	if got := singleAnswer(t, s2, fmt.Sprintf("select certain A from %s;", ta)); got.Len() != 3 {
		t.Fatalf("recovered %s has %d certain rows, want 3", ta, got.Len())
	}
	if got := singleAnswer(t, s2, fmt.Sprintf("select certain A from %s;", tb)); got.Len() != 2 {
		t.Fatalf("recovered %s has %d certain rows, want 2", tb, got.Len())
	}
}

// TestShardedCrashTornMarkerRollsBack pins cross-shard atomicity under
// the worst crash point: the stage records of a cross-shard transaction
// reached every participant segment, but the crash tore off the
// coordinator's commit marker. Recovery must discard the transaction on
// ALL participants — neither shard may show a torn half — restoring the
// catalog byte-identical to the state before the transaction began.
func TestShardedCrashTornMarkerRollsBack(t *testing.T) {
	const nshards = 4
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "checkpoint.wsd")

	cat, wals, err := OpenStoreSharded(wsdPath, dir, nshards)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := crossShardTables(t, cat)
	s := FromCatalog(cat)
	mustScript(t, s,
		fmt.Sprintf("create table %s (A);", ta),
		fmt.Sprintf("create table %s (A);", tb),
		fmt.Sprintf("insert into %s values (1), (2);", ta),
		fmt.Sprintf("insert into %s values (10);", tb),
	)
	want := rawSnapBytes(t, cat.Snapshot())
	mustScript(t, s,
		"begin;",
		fmt.Sprintf("insert into %s values (777);", ta),
		fmt.Sprintf("insert into %s values (888);", tb),
		"commit;",
	)
	for _, w := range wals {
		w.Close()
	}

	// Tear the marker off the coordinator segment (the lowest
	// participant shard), leaving the stage records on both segments.
	co := cat.ShardOf(ta)
	if o := cat.ShardOf(tb); o < co {
		co = o
	}
	seg := store.SegmentPath(dir, co)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	trim := bytes.LastIndexByte(bytes.TrimSuffix(data, []byte("\n")), '\n')
	if trim < 0 {
		t.Fatalf("coordinator segment %s has no line to tear", seg)
	}
	if err := os.WriteFile(seg, data[:trim+1], 0o644); err != nil {
		t.Fatal(err)
	}

	cat2, wals2, err := OpenStoreSharded(wsdPath, dir, nshards)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range wals2 {
			w.Close()
		}
	}()
	if got := rawSnapBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatalf("unmarked cross-shard commit not rolled back on every shard\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	s2 := FromCatalog(cat2)
	if got := singleAnswer(t, s2, fmt.Sprintf("select certain A from %s;", ta)); got.Len() != 2 {
		t.Fatalf("%s has %d certain rows after rollback, want 2 (777 must not survive)", ta, got.Len())
	}
	if got := singleAnswer(t, s2, fmt.Sprintf("select certain A from %s;", tb)); got.Len() != 1 {
		t.Fatalf("%s has %d certain rows after rollback, want 1 (888 must not survive)", tb, got.Len())
	}
}
