package isql

import (
	"sync"

	"worldsetdb/internal/wsdexec"
)

// ExecStats aggregates, across any number of sessions sharing it (a
// server attaches one instance to every connection's session), how
// compiled statements were executed: fully native on the decomposition,
// native after bounded component merging, through the factorized
// engine's enumeration fallback, or through the session's bounded
// legacy evaluator for statements outside the WSA fragment. The per-op
// maps attribute merges and fallbacks to the operator (or fragment
// feature) that caused them — the observability handle for the
// "fallbacks should be rare" invariant.
type ExecStats struct {
	mu          sync.Mutex
	native      uint64
	merged      uint64
	fallbacks   uint64
	legacy      uint64
	mergeOps    map[string]uint64
	fallbackOps map[string]uint64
	legacyOps   map[string]uint64
}

// NewExecStats returns an empty, ready-to-share counter set.
func NewExecStats() *ExecStats {
	return &ExecStats{
		mergeOps:    map[string]uint64{},
		fallbackOps: map[string]uint64{},
		legacyOps:   map[string]uint64{},
	}
}

// recordPlan accounts one compiled-statement execution. A nil receiver
// (session without stats) or nil plan is a no-op.
func (st *ExecStats) recordPlan(p *wsdexec.Plan) {
	if st == nil || p == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if p.Native {
		st.native++
		if len(p.Merges) > 0 {
			st.merged++
			for _, m := range p.Merges {
				st.mergeOps[m.Op]++
			}
		}
		return
	}
	st.fallbacks++
	op := p.FallbackOp
	if op == "" {
		op = "unknown"
	}
	st.fallbackOps[op]++
}

// recordLegacy accounts one statement evaluated by the bounded legacy
// evaluator because it lies outside the WSA fragment, keyed by the
// fragment feature that put it there.
func (st *ExecStats) recordLegacy(op string) {
	if st == nil {
		return
	}
	if op == "" {
		op = "unknown"
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.legacy++
	st.legacyOps[op]++
}

// ExecStatsSnapshot is a point-in-time copy of an ExecStats, shaped for
// JSON rendering (the isqld /stats document embeds it).
type ExecStatsSnapshot struct {
	// Native counts statements evaluated natively on the decomposition
	// (including those that merged components).
	Native uint64 `json:"native"`
	// Merged counts native statements that resolved an entanglement by
	// merging components.
	Merged uint64 `json:"merged"`
	// Fallbacks counts statements the factorized engine evaluated by
	// enumeration because a merge exceeded the budget (or was disabled).
	Fallbacks uint64 `json:"fallbacks"`
	// Legacy counts statements outside the WSA fragment, evaluated by
	// the session's bounded world-set evaluator.
	Legacy uint64 `json:"legacy"`
	// MergeOps attributes merges to the entangling operator.
	MergeOps map[string]uint64 `json:"merge_ops,omitempty"`
	// FallbackOps attributes engine fallbacks to the operator.
	FallbackOps map[string]uint64 `json:"fallback_ops,omitempty"`
	// LegacyOps attributes legacy evaluations to the fragment feature.
	LegacyOps map[string]uint64 `json:"legacy_ops,omitempty"`
}

// Snapshot returns a copy of the counters. Safe on a nil receiver.
func (st *ExecStats) Snapshot() ExecStatsSnapshot {
	if st == nil {
		return ExecStatsSnapshot{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := ExecStatsSnapshot{
		Native:    st.native,
		Merged:    st.merged,
		Fallbacks: st.fallbacks,
		Legacy:    st.legacy,
	}
	if len(st.mergeOps) > 0 {
		out.MergeOps = map[string]uint64{}
		for k, v := range st.mergeOps {
			out.MergeOps[k] = v
		}
	}
	if len(st.fallbackOps) > 0 {
		out.FallbackOps = map[string]uint64{}
		for k, v := range st.fallbackOps {
			out.FallbackOps[k] = v
		}
	}
	if len(st.legacyOps) > 0 {
		out.LegacyOps = map[string]uint64{}
		for k, v := range st.legacyOps {
			out.LegacyOps[k] = v
		}
	}
	return out
}
