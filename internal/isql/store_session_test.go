package isql

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/wsd"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// censusPipeline is the acceptance pipeline of the store subsystem:
// repair (2^40 worlds) → select (σ/π over the factored catalog) →
// aggregate across all worlds (certain/possible). Every statement must
// run natively on the decomposition — no world enumeration anywhere.
var censusPipeline = []string{
	"create table Clean as select * from Census repair by key SSN;",
	"create table Suspects as select SSN, Name from Clean where POB = 'NYC';",
	"select certain Name from Suspects;",
	"select possible Name from Suspects;",
}

func pipelineCensus() *relation.Relation { return datagen.Census(120, 40, 7) }

// TestGoldenCensusStorePipeline pins the multi-statement census-repair
// pipeline at 2^40 worlds end to end through the store: each statement
// stays factored (plan native, no BudgetError), the catalog keeps the
// exact world count, and the answers are pinned byte-for-byte.
func TestGoldenCensusStorePipeline(t *testing.T) {
	s := FromDB([]string{"Census"}, []*relation.Relation{pipelineCensus()})
	var b strings.Builder
	for _, sql := range censusPipeline {
		res, err := s.ExecString(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if res.Plan == nil || !res.Plan.Native {
			t.Fatalf("%s: not evaluated natively on the decomposition (plan %v)", sql, res.Plan)
		}
		fmt.Fprintf(&b, "isql> %s\n", sql)
		if len(res.Answers) > 0 {
			for _, a := range res.Answers {
				b.WriteString(a.Render("answer"))
			}
		} else {
			fmt.Fprintf(&b, "ok; %s world(s), decomposition size %d\n",
				res.Decomp.Worlds(), res.Decomp.Size())
		}
		b.WriteByte('\n')
	}
	if got, want := s.Worlds().String(), "1099511627776"; got != want { // 2^40
		t.Fatalf("catalog worlds = %s, want %s", got, want)
	}
	// The catalog state is factored: linear size, never expanded.
	snap := s.Catalog().Snapshot()
	if size := snap.DB.Size(); size > 4*pipelineCensus().Len() {
		t.Fatalf("catalog size %d is not linear in the input", size)
	}
	if ws := s.WorldSet(); ws != nil {
		t.Fatal("a 2^40-world catalog must refuse explicit expansion")
	}
	checkGoldenFile(t, "census_store_pipeline", b.String())
}

// TestCensusPipelineLegacyPathRefused: the same script on the explicit
// world-set session path cannot complete within budget — the first
// statement reports the shared *wsd.BudgetError shape instead of
// attempting 2^40-world enumeration.
func TestCensusPipelineLegacyPathRefused(t *testing.T) {
	s := FromDB([]string{"Census"}, []*relation.Relation{pipelineCensus()})
	s.Engine = "legacy"
	_, err := s.ExecString(censusPipeline[0])
	var be *wsd.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("legacy path must refuse with *wsd.BudgetError, got %v", err)
	}
	// Enumerating engines hit the same budget wall through the store:
	// build the 2^40 catalog natively, then ask the physical engine.
	s2 := FromDB([]string{"Census"}, []*relation.Relation{pipelineCensus()})
	for _, sql := range censusPipeline[:2] {
		if _, err := s2.ExecString(sql); err != nil {
			t.Fatal(err)
		}
	}
	s2.Engine = "physical"
	if _, err := s2.ExecString(censusPipeline[2]); !errors.As(err, &be) {
		t.Fatalf("physical engine must refuse with *wsd.BudgetError, got %v", err)
	}
}

// TestRepairBudgetErrorShapeShared: the legacy evaluator's repair limit
// reports the same typed budget error as wsd.Expand and the store.
func TestRepairBudgetErrorShapeShared(t *testing.T) {
	s := FromDB([]string{"Census"}, []*relation.Relation{datagen.Census(40, 40, 7)})
	s.Engine = "legacy"
	s.MaxWorlds = 512
	_, err := s.ExecString("select * from Census repair by key SSN;")
	var be *wsd.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("legacy repair limit: want *wsd.BudgetError, got %v", err)
	}
	if be.Budget != 512 {
		t.Fatalf("budget in error = %d, want 512", be.Budget)
	}
	// Same statement through the store path: native evaluation succeeds
	// but listing 2^40 distinct answers is refused with the same shape.
	s2 := FromDB([]string{"Census"}, []*relation.Relation{datagen.Census(40, 40, 7)})
	s2.MaxWorlds = 512
	if _, err := s2.ExecString("select * from Census repair by key SSN;"); !errors.As(err, &be) {
		t.Fatalf("store path: want *wsd.BudgetError, got %v", err)
	}
}

// TestConcurrentReadersByteIdentical: N sessions over one catalog
// snapshot answer the same query byte-identically while running
// concurrently (the -race CI run makes this the reader-isolation
// proof).
func TestConcurrentReadersByteIdentical(t *testing.T) {
	s := FromDB([]string{"Census"}, []*relation.Relation{pipelineCensus()})
	for _, sql := range censusPipeline[:2] {
		if _, err := s.ExecString(sql); err != nil {
			t.Fatal(err)
		}
	}
	cat := s.Catalog()
	const readers = 8
	outputs := make([]string, readers)
	errs := make([]error, readers)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := FromCatalog(cat)
			var b strings.Builder
			for i := 0; i < 4; i++ {
				res, err := sess.ExecString("select certain Name from Suspects;")
				if err != nil {
					errs[g] = err
					return
				}
				for _, a := range res.Answers {
					b.WriteString(a.Render("answer"))
				}
			}
			outputs[g] = b.String()
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", g, err)
		}
	}
	for g := 1; g < readers; g++ {
		if outputs[g] != outputs[0] {
			t.Fatalf("reader %d output differs from reader 0\n--- reader %d ---\n%s\n--- reader 0 ---\n%s",
				g, g, outputs[g], outputs[0])
		}
	}
	if outputs[0] == "" {
		t.Fatal("readers produced no output")
	}
}

// TestConcurrentSessionsSharedCatalog: sessions over one catalog see
// each other's committed writes, and a reader mid-flight is never torn:
// every answer corresponds to some committed version.
func TestConcurrentSessionsSharedCatalog(t *testing.T) {
	writer := NewSession()
	cat := writer.Catalog()
	mustExec(t, writer, "create table T (A);")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := FromCatalog(cat)
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := sess.ExecString("select A from T;")
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if len(res.Answers) != 1 {
					t.Errorf("reader saw %d answers", len(res.Answers))
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		mustExec(t, writer, fmt.Sprintf("insert into T values (%d);", i))
	}
	close(stop)
	wg.Wait()
	got := singleAnswer(t, FromCatalog(cat), "select count(*) as N from T;")
	if got.Len() != 1 {
		t.Fatalf("final count rows = %d", got.Len())
	}
}

// TestStoreSessionParityRandomized is the session-level differential:
// scripts covering the fragment and the fallback paths run through both
// the store-backed default path and the legacy explicit world-set path,
// and must produce identical distinct answers and world counts at every
// step.
func TestStoreSessionParityRandomized(t *testing.T) {
	scripts := [][]string{
		{
			"create table U as select * from Company_Emp choice of CID;",
			"select possible CID from U;",
			"select certain EID from U group worlds by CID;",
			"insert into U values ('NEW', 'e9');",
			"select certain CID from U where EID = 'e9';",
			"delete from U where CID = 'ACME';",
			"select possible EID from U;",
		},
		{
			"create table Clean as select * from Census repair by key SSN;",
			"select certain Name from Clean;",
			"update Clean set POW = 'Remote' where POB = 'NYC';",
			"select possible POW from Clean;",
			"select SSN, count(*) as N from Clean group by SSN;",
			"delete from Clean;",
			"select possible SSN from Clean;",
		},
		{
			// Two independent uncertain regions: aggregates and an
			// aggregate CTAS read only U, so the native path enumerates
			// U's components and splices S's back — legacy expands
			// everything; the states must agree exactly.
			"create table U as select * from Company_Emp choice of CID;",
			"create table S as select * from Emp_Skills choice of EID;",
			"select count(*) as N from U;",
			"create table CU as select CID, count(*) as N from U group by CID;",
			"select possible N from CU;",
			"select count(*) as M from S where EID != 'nobody';",
			"select EID from S where EID in (select EID from Emp_Skills);",
		},
		{
			"create view PerDep as select * from HFlights choice of Dep;",
			"select certain Arr from PerDep;",
			"create table X as select Arr from HFlights where Dep != 'PHL' choice of Arr;",
			"select possible Arr from X;",
			"drop table X;",
			"select Dep from HFlights where Arr in (select Arr from HFlights F2 where F2.Dep = 'FRA');",
		},
	}
	dbs := func() [][2]any {
		return [][2]any{
			{[]string{"Company_Emp", "Emp_Skills"}, []*relation.Relation{datagen.PaperCompanyEmp(), datagen.PaperEmpSkills()}},
			{[]string{"Census"}, []*relation.Relation{datagen.PaperCensus()}},
			{[]string{"Company_Emp", "Emp_Skills"}, []*relation.Relation{datagen.PaperCompanyEmp(), datagen.PaperEmpSkills()}},
			{[]string{"HFlights"}, []*relation.Relation{datagen.PaperFlights()}},
		}
	}
	for si, script := range scripts {
		seed := dbs()[si]
		names := seed[0].([]string)
		rels := seed[1].([]*relation.Relation)
		native := FromDB(names, rels)
		legacy := FromDB(names, rels)
		legacy.Engine = "legacy"
		for _, sql := range script {
			nres, nerr := native.ExecString(sql)
			lres, lerr := legacy.ExecString(sql)
			if (nerr == nil) != (lerr == nil) {
				t.Fatalf("script %d %q: native err %v, legacy err %v", si, sql, nerr, lerr)
			}
			if nerr != nil {
				continue
			}
			if len(nres.Answers) != len(lres.Answers) {
				t.Fatalf("script %d %q: %d native answers vs %d legacy", si, sql, len(nres.Answers), len(lres.Answers))
			}
			for i := range nres.Answers {
				if nres.Answers[i].ContentKey() != lres.Answers[i].ContentKey() {
					t.Fatalf("script %d %q: answer %d differs\nnative:\n%s\nlegacy:\n%s",
						si, sql, i, nres.Answers[i], lres.Answers[i])
				}
			}
			if nres.Affected != lres.Affected {
				t.Fatalf("script %d %q: affected %d native vs %d legacy", si, sql, nres.Affected, lres.Affected)
			}
			nws, lws := native.WorldSet(), legacy.WorldSet()
			if nws == nil || lws == nil {
				t.Fatalf("script %d %q: state not expandable", si, sql)
			}
			if nws.String() != lws.String() {
				t.Fatalf("script %d %q: session state differs\nnative:\n%s\nlegacy:\n%s", si, sql, nws, lws)
			}
		}
	}
}

// TestViewTextRoundTrip: views are stored as rendered SQL text, so
// expression rendering must re-parse to the same tree — unary minus
// and nested arithmetic were the regression (X * -2 parses as
// X * (0 - 2); without precedence-aware rendering the stored text
// re-parsed as (X * 0) - 2).
func TestViewTextRoundTrip(t *testing.T) {
	s := NewSession()
	mustExec(t, s, "create table T (X);")
	mustExec(t, s, "insert into T values (5);")
	direct := singleAnswer(t, s, "select X * -2 as Z from T;")
	mustExec(t, s, "create view V as select X * -2 as Z from T;")
	mustExec(t, s, "create view W as select X - (X - 1) as Z from T;")
	viaView := singleAnswer(t, s, "select Z from V;")
	if direct.ContentKey() != viaView.ContentKey() {
		t.Fatalf("view round trip changed the answer: direct %v, via view %v", direct, viaView)
	}
	if got := singleAnswer(t, s, "select Z from W;"); !got.Contains(relation.Tuple{intVal(1)}) {
		t.Fatalf("X - (X - 1) through a view = %v, want 1", got)
	}
	// Boolean-valued comparison operands and in/exists operands must
	// also survive the text round trip (one bad view would poison every
	// later statement of the session and any saved catalog).
	mustExec(t, s, "create view B as select X from T where (X = 1) = (X = 2);")
	if got := singleAnswer(t, s, "select X from B;"); got.Len() != 1 {
		t.Fatalf("(X = 1) = (X = 2) is true for X = 5; view B = %v", got)
	}
	mustExec(t, s, "create view E as select X from T where (X in (select X from T)) = true;")
	if got := singleAnswer(t, s, "select X from E;"); got.Len() != 1 {
		t.Fatalf("in-operand view round trip broke: %v", got)
	}
}

func intVal(i int64) value.Value { return value.Int(i) }

// TestGenuineCompileErrorsSurfaceDirectly: a typo on a 2^40-world
// catalog must report the real error (unknown column/relation), not a
// BudgetError from a pointless fallback expansion.
func TestGenuineCompileErrorsSurfaceDirectly(t *testing.T) {
	s := FromDB([]string{"Census"}, []*relation.Relation{pipelineCensus()})
	for _, sql := range censusPipeline[:2] {
		mustExec(t, s, sql)
	}
	var be *wsd.BudgetError
	_, err := s.ExecString("select certain Naem from Suspects;")
	if err == nil || errors.As(err, &be) || !strings.Contains(err.Error(), "Naem") {
		t.Fatalf("typo must surface as unknown column, got %v", err)
	}
	_, err = s.ExecString("select * from Suspect;")
	if err == nil || errors.As(err, &be) || !strings.Contains(err.Error(), "Suspect") {
		t.Fatalf("unknown relation must surface directly, got %v", err)
	}
	// Statements merely outside the fragment run on the bounded input —
	// and when the answer genuinely depends on all 40 repair components,
	// the bounded enumeration's budget refusal is the correct report.
	_, err = s.ExecString("select count(*) as N from Clean;")
	if !errors.As(err, &be) {
		t.Fatalf("aggregate over all 40 components should refuse with BudgetError, got %v", err)
	}
}

// TestCatalogPersistenceThroughSession: -load/-save level round trip at
// the session layer (the cmd/isql flags build on this).
func TestCatalogPersistenceThroughSession(t *testing.T) {
	s := FromDB([]string{"Census"}, []*relation.Relation{pipelineCensus()})
	for _, sql := range censusPipeline[:2] {
		mustExec(t, s, sql)
	}
	mustExec(t, s, "create view NYC as select Name from Suspects;")
	path := filepath.Join(t.TempDir(), "census.wsd")
	if err := SaveCatalog(path, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Worlds().String(), s.Worlds().String(); got != want {
		t.Fatalf("worlds after reload = %s, want %s", got, want)
	}
	a := singleAnswer(t, loaded, "select certain Name from NYC;")
	b := singleAnswer(t, s, "select certain Name from NYC;")
	if a.ContentKey() != b.ContentKey() {
		t.Fatal("answers differ after catalog reload")
	}
}

func checkGoldenFile(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run 'go test -update ./internal/isql'): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
