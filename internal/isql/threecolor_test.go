package isql

import (
	"fmt"
	"testing"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
)

// colorSession builds the Proposition 4.2 reduction instance: Vert(V),
// Edge(U, W) and Palette(Col) = {r, g, b}.
func colorSession(vertices int, edges [][2]int) *Session {
	vert := relation.New(relation.NewSchema("V"))
	for i := 0; i < vertices; i++ {
		vert.InsertValues(value.Str(fmt.Sprintf("v%d", i)))
	}
	edge := relation.New(relation.NewSchema("U", "W"))
	for _, e := range edges {
		edge.InsertValues(value.Str(fmt.Sprintf("v%d", e[0])), value.Str(fmt.Sprintf("v%d", e[1])))
	}
	palette := relation.New(relation.NewSchema("Col"))
	for _, c := range []string{"r", "g", "b"} {
		palette.InsertValues(value.Str(c))
	}
	return FromDB([]string{"Vert", "Edge", "Palette"},
		[]*relation.Relation{vert, edge, palette})
}

// threeColorable runs the guess-and-check program of Proposition 4.2:
// repair-by-key over Vert × Palette enumerates all colorings as possible
// worlds; the check query lists monochromatic edges per world. The graph
// is 3-colorable iff some world has no monochromatic edge.
func threeColorable(t *testing.T, s *Session) bool {
	t.Helper()
	mustExec(t, s, `create table Coloring as
		select V, Col from Vert, Palette repair by key V;`)
	res := mustExec(t, s, `select C1.V from Edge, Coloring C1, Coloring C2
		where Edge.U = C1.V and Edge.W = C2.V and C1.Col = C2.Col;`)
	for _, ans := range res.Answers {
		if ans.Empty() {
			return true
		}
	}
	return false
}

// TestThreeColorabilityReduction checks the Proposition 4.2 reduction on
// graphs with known chromatic numbers: a triangle (χ=3), the complete
// graph K4 (χ=4), the odd cycle C5 (χ=3) and a path (χ=2).
func TestThreeColorabilityReduction(t *testing.T) {
	cases := []struct {
		name     string
		vertices int
		edges    [][2]int
		want     bool
	}{
		{"triangle", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, true},
		{"K4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, false},
		{"C5", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, true},
		{"path", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			s := colorSession(c.vertices, c.edges)
			if got := threeColorable(t, s); got != c.want {
				t.Fatalf("3-colorable(%s) = %v, want %v", c.name, got, c.want)
			}
		})
	}
}

// TestColoringWorldCount checks that the repair-by-key enumeration
// creates exactly 3^|V| worlds — the exponential blowup Proposition 4.2
// exploits.
func TestColoringWorldCount(t *testing.T) {
	s := colorSession(4, [][2]int{{0, 1}})
	mustExec(t, s, `create table Coloring as
		select V, Col from Vert, Palette repair by key V;`)
	if got, want := s.WorldSet().Len(), 81; got != want {
		t.Fatalf("coloring worlds = %d, want 3^4 = %d", got, want)
	}
}
