// Package isql implements I-SQL, the SQL analog for incomplete
// information of §3 of the paper: the standard SQL skeleton plus the
// possible/certain closing constructs, choice-of, repair-by-key and
// group-worlds-by, with data manipulation commands executed under the
// possible-worlds semantics (Figure 1).
//
// The package contains a lexer, a recursive-descent parser, a direct
// evaluator over world-sets (including the SQL aggregation the paper
// uses in its TPC-H scenario, which World-set Algebra deliberately
// omits), and a compiler from the clean fragment to World-set Algebra.
package isql

import "fmt"

// TokKind classifies lexer tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokSymbol // punctuation and operators
	TokParam  // $N parameter placeholder in a prepared statement
)

// Token is one lexical unit. Keywords are TokIdent; the parser matches
// them case-insensitively.
type Token struct {
	Kind TokKind
	Text string
	Pos  int // byte offset in the input, for error messages
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "<eof>"
	}
	return t.Text
}

// SyntaxError reports a parse failure with position information.
type SyntaxError struct {
	Pos     int
	Message string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("isql: syntax error at offset %d: %s", e.Pos, e.Message)
}

func errf(pos int, format string, args ...interface{}) error {
	return &SyntaxError{Pos: pos, Message: fmt.Sprintf(format, args...)}
}
