package isql

import (
	"errors"
	"fmt"

	"worldsetdb/internal/store"
)

// Transactional sessions. Outside a transaction every statement
// auto-commits through the catalog's single-writer Update (one
// statement, one version). BEGIN switches the session's execution
// target to a store.Staged transaction: the same statement code runs
// against a private staging snapshot, invisible to every other session,
// until COMMIT publishes the whole batch as one catalog version (or
// ROLLBACK discards it). Readers meanwhile keep snapshot isolation on
// the pre-transaction version — they never observe an intermediate
// statement of an open transaction.

// execTarget is where a session's statements read and write: the shared
// catalog (auto-commit) or an open staged transaction. *store.Catalog
// and *store.Staged both satisfy it, which is what lets every exec path
// run unchanged inside and outside a transaction.
type execTarget interface {
	Snapshot() *store.Snapshot
	Update(fn func(*store.Tx) error) error
	// UpdateRouted is Update carrying the statement's relation
	// references: on a sharded catalog the commit takes only the locks
	// of the shards those relations (and their component closure) route
	// to. nil refs means the statement has no routing information (DDL,
	// CTAS, legacy DML) and commits against every shard.
	UpdateRouted(refs []string, fn func(*store.Tx) error) error
}

// target returns the session's current execution target.
func (s *Session) target() execTarget {
	if s.txn != nil {
		return s.txn
	}
	return s.cat
}

// InTxn reports whether the session has an open transaction.
func (s *Session) InTxn() bool { return s.txn != nil }

// Begin opens a transaction. Statements until Commit/Rollback stage
// against a private snapshot; other sessions keep seeing the
// pre-transaction catalog.
func (s *Session) Begin() error {
	if s.txn != nil {
		return fmt.Errorf("isql: transaction already open (nested transactions are not supported)")
	}
	s.txn = s.cat.Begin()
	// The staging chain numbers versions privately; never let a cached
	// view parse from one lineage leak into the other.
	s.viewsVersion = 0
	return nil
}

// Commit publishes the open transaction atomically as one catalog
// version. With optimistic concurrency, a conflicting writer since
// Begin surfaces as *store.ConflictError and nothing is published.
// Either way the transaction is closed.
//
// With RetryConflicts > 0 the session retries a conflicted commit
// automatically: the transaction's logged write statements (the same
// records the WAL persists — selects are not replayed) re-execute as a
// fresh transaction on the new latest version, up to RetryConflicts
// times, and *store.ConflictError surfaces only on exhaustion. Answers
// the client already read inside the original transaction came from the
// pre-conflict snapshot; the retried writes see — and their predicates
// re-evaluate against — the winning committer's state (see the retry
// visibility rules in the package documentation).
func (s *Session) Commit() error {
	if s.txn == nil {
		return fmt.Errorf("isql: no open transaction to commit")
	}
	txn := s.txn
	err := txn.Commit()
	s.txn = nil
	s.viewsVersion = 0
	if err == nil || s.RetryConflicts <= 0 {
		return err
	}
	stmts := txn.Stmts()
	for attempt := 0; attempt < s.RetryConflicts; attempt++ {
		ce := asConflict(err)
		if ce == nil {
			break
		}
		// Wait for the winning commit to become reader-visible before
		// re-basing: under group commit the winner's version sits in the
		// commit queue until its coalesced fsync completes, and re-running
		// immediately would spin the whole retry budget against the same
		// unpublished version.
		s.cat.WaitPublished(ce.Current)
		err = s.rerunTxn(stmts)
	}
	return err
}

// asConflict extracts the typed first-committer-wins error, if any.
func asConflict(err error) *store.ConflictError {
	var ce *store.ConflictError
	if errors.As(err, &ce) {
		return ce
	}
	return nil
}

// rerunTxn replays a conflicted transaction's write statements on a
// fresh base and tries to commit again. A statement failing on the new
// base (say, its table was dropped by the winning committer) aborts the
// retry with that error; a fresh conflict is returned for the caller's
// retry loop to count.
func (s *Session) rerunTxn(stmts []string) error {
	if err := s.Begin(); err != nil {
		return err
	}
	for _, sql := range stmts {
		if _, err := s.ExecString(sql); err != nil {
			s.Rollback()
			return fmt.Errorf("isql: replaying %q for conflict retry: %w", sql, err)
		}
	}
	txn := s.txn
	err := txn.Commit()
	s.txn = nil
	s.viewsVersion = 0
	return err
}

// Rollback discards the open transaction.
func (s *Session) Rollback() error {
	if s.txn == nil {
		return fmt.Errorf("isql: no open transaction to roll back")
	}
	s.txn.Rollback()
	s.txn = nil
	s.viewsVersion = 0
	return nil
}

// execTxnControl executes BEGIN/COMMIT/ROLLBACK.
func (s *Session) execTxnControl(st Statement) (*Result, error) {
	var err error
	switch st.(type) {
	case *BeginStmt:
		err = s.Begin()
	case *CommitStmt:
		err = s.Commit()
	case *RollbackStmt:
		err = s.Rollback()
	}
	if err != nil {
		return nil, err
	}
	return &Result{Decomp: s.target().Snapshot().DB}, nil
}

// ReplayRecord is the store.Applier for statement-level WAL recovery:
// it re-executes one committed transaction's statements as a single
// staged transaction, reproducing exactly the catalog version the
// record committed as. Statement execution is deterministic, so the
// recovered catalog is byte-identical (through store.Save) to the
// pre-crash committed state.
func ReplayRecord(cat *store.Catalog, rec store.WALRecord) error {
	sess := FromCatalog(cat)
	if err := sess.Begin(); err != nil {
		return err
	}
	for _, sql := range rec.Stmts {
		st, err := Parse(sql)
		if err != nil {
			sess.Rollback()
			return fmt.Errorf("isql: WAL statement %q does not parse: %w", sql, err)
		}
		if _, err := sess.Exec(st); err != nil {
			sess.Rollback()
			return fmt.Errorf("isql: replaying %q: %w", sql, err)
		}
	}
	return sess.Commit()
}

// OpenStore opens a WAL-backed catalog: the last checkpoint at wsdPath
// plus the replayed statement-log tail at walPath (see store.Open). The
// returned catalog has the WAL attached, so every further commit is
// logged and fsynced before it becomes visible.
func OpenStore(wsdPath, walPath string) (*store.Catalog, *store.WAL, error) {
	return store.Open(wsdPath, walPath, ReplayRecord)
}

// OpenStoreSharded opens a component-sharded WAL-backed catalog: the
// last checkpoint at wsdPath plus the merged replay of the per-shard
// statement-log segments wal-<i>.log under walDir (see
// store.OpenSharded). nshards <= 1 degrades to the single-segment
// OpenStore layout.
func OpenStoreSharded(wsdPath, walDir string, nshards int) (*store.Catalog, []*store.WAL, error) {
	return store.OpenSharded(wsdPath, walDir, nshards, ReplayRecord)
}

// OpenStorePaged is OpenStore with an explicit buffer-pool capacity (in
// pages) for the page-file checkpoint base.
func OpenStorePaged(wsdPath, walPath string, poolPages int) (*store.Catalog, *store.WAL, error) {
	return store.OpenPaged(wsdPath, walPath, ReplayRecord, poolPages)
}

// OpenStoreShardedPaged is OpenStoreSharded with an explicit per-shard
// buffer-pool capacity.
func OpenStoreShardedPaged(wsdPath, walDir string, nshards, poolPages int) (*store.Catalog, []*store.WAL, error) {
	return store.OpenShardedPaged(wsdPath, walDir, nshards, ReplayRecord, poolPages)
}
