package isql

import (
	"fmt"

	"worldsetdb/internal/store"
)

// Transactional sessions. Outside a transaction every statement
// auto-commits through the catalog's single-writer Update (one
// statement, one version). BEGIN switches the session's execution
// target to a store.Staged transaction: the same statement code runs
// against a private staging snapshot, invisible to every other session,
// until COMMIT publishes the whole batch as one catalog version (or
// ROLLBACK discards it). Readers meanwhile keep snapshot isolation on
// the pre-transaction version — they never observe an intermediate
// statement of an open transaction.

// execTarget is where a session's statements read and write: the shared
// catalog (auto-commit) or an open staged transaction. *store.Catalog
// and *store.Staged both satisfy it, which is what lets every exec path
// run unchanged inside and outside a transaction.
type execTarget interface {
	Snapshot() *store.Snapshot
	Update(fn func(*store.Tx) error) error
}

// target returns the session's current execution target.
func (s *Session) target() execTarget {
	if s.txn != nil {
		return s.txn
	}
	return s.cat
}

// InTxn reports whether the session has an open transaction.
func (s *Session) InTxn() bool { return s.txn != nil }

// Begin opens a transaction. Statements until Commit/Rollback stage
// against a private snapshot; other sessions keep seeing the
// pre-transaction catalog.
func (s *Session) Begin() error {
	if s.txn != nil {
		return fmt.Errorf("isql: transaction already open (nested transactions are not supported)")
	}
	s.txn = s.cat.Begin()
	// The staging chain numbers versions privately; never let a cached
	// view parse from one lineage leak into the other.
	s.viewsVersion = 0
	return nil
}

// Commit publishes the open transaction atomically as one catalog
// version. With optimistic concurrency, a conflicting writer since
// Begin surfaces as *store.ConflictError and nothing is published.
// Either way the transaction is closed.
func (s *Session) Commit() error {
	if s.txn == nil {
		return fmt.Errorf("isql: no open transaction to commit")
	}
	err := s.txn.Commit()
	s.txn = nil
	s.viewsVersion = 0
	return err
}

// Rollback discards the open transaction.
func (s *Session) Rollback() error {
	if s.txn == nil {
		return fmt.Errorf("isql: no open transaction to roll back")
	}
	s.txn.Rollback()
	s.txn = nil
	s.viewsVersion = 0
	return nil
}

// execTxnControl executes BEGIN/COMMIT/ROLLBACK.
func (s *Session) execTxnControl(st Statement) (*Result, error) {
	var err error
	switch st.(type) {
	case *BeginStmt:
		err = s.Begin()
	case *CommitStmt:
		err = s.Commit()
	case *RollbackStmt:
		err = s.Rollback()
	}
	if err != nil {
		return nil, err
	}
	return &Result{Decomp: s.target().Snapshot().DB}, nil
}

// ReplayRecord is the store.Applier for statement-level WAL recovery:
// it re-executes one committed transaction's statements as a single
// staged transaction, reproducing exactly the catalog version the
// record committed as. Statement execution is deterministic, so the
// recovered catalog is byte-identical (through store.Save) to the
// pre-crash committed state.
func ReplayRecord(cat *store.Catalog, rec store.WALRecord) error {
	sess := FromCatalog(cat)
	if err := sess.Begin(); err != nil {
		return err
	}
	for _, sql := range rec.Stmts {
		st, err := Parse(sql)
		if err != nil {
			sess.Rollback()
			return fmt.Errorf("isql: WAL statement %q does not parse: %w", sql, err)
		}
		if _, err := sess.Exec(st); err != nil {
			sess.Rollback()
			return fmt.Errorf("isql: replaying %q: %w", sql, err)
		}
	}
	return sess.Commit()
}

// OpenStore opens a WAL-backed catalog: the last checkpoint at wsdPath
// plus the replayed statement-log tail at walPath (see store.Open). The
// returned catalog has the WAL attached, so every further commit is
// logged and fsynced before it becomes visible.
func OpenStore(wsdPath, walPath string) (*store.Catalog, *store.WAL, error) {
	return store.Open(wsdPath, walPath, ReplayRecord)
}
