package isql

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/store"
	"worldsetdb/internal/value"
)

// snapBytes renders a snapshot through store.Save with the version
// normalized away, so states reached by different numbers of commits
// compare on content.
func snapBytes(t *testing.T, snap *store.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	norm := &store.Snapshot{Version: 0, DB: snap.DB, Views: snap.Views}
	if err := store.Save(&buf, norm); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// rawSnapBytes keeps the version — for identity checks where even the
// version must be untouched (rollback, crash recovery).
func rawSnapBytes(t *testing.T, snap *store.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := store.Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustScript(t *testing.T, s *Session, stmts ...string) {
	t.Helper()
	for _, sql := range stmts {
		if _, err := s.ExecString(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
}

// TestTxnInvisibleUntilCommit: a concurrent session over the same
// catalog keeps seeing the pre-transaction state while statements
// stage, and the whole batch at once after COMMIT.
func TestTxnInvisibleUntilCommit(t *testing.T) {
	writer := NewSession()
	mustScript(t, writer, "create table T (A);", "insert into T values (1);")
	reader := FromCatalog(writer.Catalog())
	baseVersion := writer.Catalog().Snapshot().Version

	mustScript(t, writer, "begin;", "insert into T values (2);", "insert into T values (3);",
		"create table U (B);")
	// The writer's own statements see the staging snapshot...
	if got := singleAnswer(t, writer, "select count(*) as N from T;"); !got.Contains(relation.Tuple{value.Int(3)}) {
		t.Fatalf("writer does not see its own staged inserts: %v", got)
	}
	// ...while the reader still sees the pre-transaction catalog.
	if got := singleAnswer(t, reader, "select count(*) as N from T;"); !got.Contains(relation.Tuple{value.Int(1)}) {
		t.Fatalf("reader observed an uncommitted statement: %v", got)
	}
	if writer.Catalog().Snapshot().Version != baseVersion {
		t.Fatal("staging bumped the shared catalog version")
	}

	mustScript(t, writer, "commit;")
	if got := writer.Catalog().Snapshot().Version; got != baseVersion+1 {
		t.Fatalf("commit published version %d, want %d (whole batch = one version)", got, baseVersion+1)
	}
	if got := singleAnswer(t, reader, "select count(*) as N from T;"); !got.Contains(relation.Tuple{value.Int(3)}) {
		t.Fatalf("reader misses the committed batch: %v", got)
	}
}

// TestTxnRollbackByteIdentity: BEGIN → statements → ROLLBACK leaves the
// persisted catalog byte-identical to never having run the transaction.
func TestTxnRollbackByteIdentity(t *testing.T) {
	s := FromDB([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	mustScript(t, s, "create table Clean as select * from Census repair by key SSN;")
	before := rawSnapBytes(t, s.Catalog().Snapshot())

	mustScript(t, s,
		"begin;",
		"insert into Census values (999, 'Ghost', 'NYC', 'Nowhere');",
		"update Clean set POB = 'LA' where POB = 'NYC';",
		"create table Tmp (Z);",
		"create view V as select Name from Clean;",
		"drop table Tmp;",
		"rollback;")
	after := rawSnapBytes(t, s.Catalog().Snapshot())
	if !bytes.Equal(before, after) {
		t.Fatal("rollback left a trace in the persisted catalog")
	}
	// The session itself must also be back on the committed state (view
	// cache included: V must be gone).
	if _, err := s.ExecString("select Name from V;"); err == nil {
		t.Fatal("rolled-back view still resolves")
	}
}

// TestTxnCommitMatchesAutocommit: the same statements committed as one
// transaction produce the same catalog content as auto-committing each.
func TestTxnCommitMatchesAutocommit(t *testing.T) {
	stmts := []string{
		"create table Clean as select * from Census repair by key SSN;",
		"update Clean set POW = 'Remote' where POB = 'NYC';",
		"insert into Census values (42, 'New', 'SF', 'Here');",
		"create view V as select Name from Clean;",
		"delete from Census where SSN = 42;",
	}
	auto := FromDB([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	mustScript(t, auto, stmts...)

	txn := FromDB([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	mustScript(t, txn, "begin;")
	mustScript(t, txn, stmts...)
	mustScript(t, txn, "commit;")

	a := snapBytes(t, auto.Catalog().Snapshot())
	b := snapBytes(t, txn.Catalog().Snapshot())
	if !bytes.Equal(a, b) {
		t.Fatalf("transactional commit differs from auto-commit\n--- auto ---\n%s\n--- txn ---\n%s", a, b)
	}
}

// TestTxnConflictFirstCommitterWins: optimistic concurrency across two
// sessions sharing a catalog.
func TestTxnConflictFirstCommitterWins(t *testing.T) {
	a := NewSession()
	mustScript(t, a, "create table T (A);")
	b := FromCatalog(a.Catalog())

	mustScript(t, a, "begin;", "insert into T values (1);")
	mustScript(t, b, "insert into T values (2);") // auto-commit wins
	_, err := a.ExecString("commit;")
	var ce *store.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("want *store.ConflictError, got %v", err)
	}
	if a.InTxn() {
		t.Fatal("failed commit left the transaction open")
	}
	got := singleAnswer(t, b, "select A from T;")
	if got.Len() != 1 || !got.Contains(relation.Tuple{value.Int(2)}) {
		t.Fatalf("catalog after conflict = %v, want only the winner's row", got)
	}
}

// TestTxnControlErrors: commit/rollback without begin, nested begin.
func TestTxnControlErrors(t *testing.T) {
	s := NewSession()
	if _, err := s.ExecString("commit;"); err == nil {
		t.Fatal("commit without begin must fail")
	}
	if _, err := s.ExecString("rollback;"); err == nil {
		t.Fatal("rollback without begin must fail")
	}
	mustScript(t, s, "begin;")
	if _, err := s.ExecString("begin;"); err == nil {
		t.Fatal("nested begin must fail")
	}
	mustScript(t, s, "rollback;")
}

// TestPrepareExecuteParams: placeholders bind per execution; the
// prepared tree in the cache is never mutated.
func TestPrepareExecuteParams(t *testing.T) {
	s := NewSession()
	mustScript(t, s,
		"create table T (A, B);",
		"prepare ins as insert into T values ($1, $2);",
		"execute ins(1, 'x');",
		"execute ins(2, 'y');",
		"prepare sel as select A from T where B = $1;",
	)
	if got := singleAnswer(t, s, "execute sel('y');"); got.Len() != 1 || !got.Contains(relation.Tuple{value.Int(2)}) {
		t.Fatalf("execute sel('y') = %v", got)
	}
	if got := singleAnswer(t, s, "execute sel('x');"); !got.Contains(relation.Tuple{value.Int(1)}) {
		t.Fatalf("execute sel('x') = %v", got)
	}
	// Wrong arity and unknown names are real errors.
	if _, err := s.ExecString("execute sel;"); err == nil || !strings.Contains(err.Error(), "argument") {
		t.Fatalf("arity mismatch: %v", err)
	}
	if _, err := s.ExecString("execute nosuch;"); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("unknown prepared statement: %v", err)
	}
	// Running the raw prepared statement without binding is refused.
	if _, err := s.ExecString("insert into T values ($1, $2);"); err == nil || !strings.Contains(err.Error(), "unbound parameter") {
		t.Fatalf("unbound parameter must be refused, got %v", err)
	}
	if _, err := s.ExecString("select A from T where B = $1;"); err == nil || !strings.Contains(err.Error(), "unbound parameter") {
		t.Fatalf("unbound select parameter must be refused, got %v", err)
	}
}

// TestPreparedPlanSurvivesDML: the compiled plan is keyed on the schema
// fingerprint, so data edits reuse it and DDL forces a correct
// recompile.
func TestPreparedPlanSurvivesDML(t *testing.T) {
	s := FromDB([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	mustScript(t, s,
		"create table Clean as select * from Census repair by key SSN;",
		"prepare q as select certain Name from Clean;",
	)
	first := singleAnswer(t, s, "execute q;")
	// DML moves the version but not the schema; the memoized plan must
	// still evaluate against the NEW snapshot.
	mustScript(t, s, "delete from Clean;")
	if got := singleAnswer(t, s, "execute q;"); got.Len() != 0 {
		t.Fatalf("after delete, execute q = %v, want empty (stale snapshot?)", got)
	}
	// DDL (a new view) changes the fingerprint: recompile, still correct.
	mustScript(t, s, "create view W as select Name from Census;")
	if got := singleAnswer(t, s, "execute q;"); got.Len() != 0 {
		t.Fatalf("after DDL, execute q = %v", got)
	}
	_ = first
}

// TestPreparedSharedAcrossSessions: a shared PlanCache makes a
// statement prepared on one session executable on another — the isqld
// serving model.
func TestPreparedSharedAcrossSessions(t *testing.T) {
	a := FromDB([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	cache := NewPlanCache()
	a.SetPlanCache(cache)
	mustScript(t, a, "prepare q as select possible Name from Census;")

	b := FromCatalog(a.Catalog())
	b.SetPlanCache(cache)
	if got := singleAnswer(t, b, "execute q;"); got.Len() == 0 {
		t.Fatal("shared prepared statement returned nothing")
	}
	// Concurrent executes over the shared cache (plan memoization is
	// racy territory; run under -race in CI).
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := FromCatalog(a.Catalog())
			sess.SetPlanCache(cache)
			for i := 0; i < 5; i++ {
				if _, err := sess.ExecString("execute q;"); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("executor %d: %v", g, err)
		}
	}
}

// TestPrepareRoundTripString: prepare/execute statements re-parse from
// their rendered text (the script-echo invariant every statement obeys).
func TestPrepareRoundTripString(t *testing.T) {
	for _, sql := range []string{
		"prepare q as select A from T where B = $1",
		"prepare ins as insert into T values ($1, 'x', $2)",
		"execute q('a')",
		"execute ins(1, 2.5)",
		"begin",
		"commit",
		"rollback",
	} {
		st, err := Parse(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		st2, err := Parse(st.String())
		if err != nil {
			t.Fatalf("re-parsing %q (from %q): %v", st.String(), sql, err)
		}
		if st.String() != st2.String() {
			t.Fatalf("%q does not round-trip: %q vs %q", sql, st.String(), st2.String())
		}
	}
}

// TestCrashRecoveryByteIdentical is the WAL acceptance test: run a
// workload over a WAL-backed catalog — auto-commits, a committed
// multi-statement transaction, and an uncommitted one in flight — kill
// the process (drop the WAL without checkpointing), reopen, and require
// the recovered catalog byte-identical (version included) to the last
// committed snapshot.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "checkpoint.wsd")
	walPath := filepath.Join(dir, "wal.log")

	cat, wal, err := OpenStore(wsdPath, walPath)
	if err != nil {
		t.Fatal(err)
	}
	s := FromCatalog(cat)
	mustScript(t, s,
		"create table Census (SSN, Name, POB);",
		"insert into Census values (1, 'Smith', 'NYC'), (1, 'Smith', 'LA'), (2, 'Brown', 'SF');",
		"begin;",
		"create table Clean as select * from Census repair by key SSN;",
		"create view NYC as select Name from Clean where POB = 'NYC';",
		"commit;",
		"update Census set POB = 'CHI' where SSN = 2;",
	)
	want := rawSnapBytes(t, cat.Snapshot())

	// An in-flight transaction at crash time: staged, never committed.
	mustScript(t, s, "begin;", "delete from Census;", "drop table Clean;")
	wal.Close() // crash: no checkpoint, open transaction dropped

	cat2, wal2, err := OpenStore(wsdPath, walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	got := rawSnapBytes(t, cat2.Snapshot())
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered catalog differs from last committed snapshot\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// And the recovered catalog serves: the view works, worlds intact.
	s2 := FromCatalog(cat2)
	if got := singleAnswer(t, s2, "select certain Name from NYC;"); got.Len() != 0 {
		// repair made POB alternatives; certain NYC names may be empty —
		// just require the query to run. (Checked via error above.)
		_ = got
	}
	if s2.Worlds().Int64() != 2 {
		t.Fatalf("recovered worlds = %s, want 2", s2.Worlds())
	}
}

// TestCrashRecoveryAfterCheckpoint: checkpoint mid-workload, more
// commits, crash — recovery = checkpoint + replayed tail.
func TestCrashRecoveryAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "checkpoint.wsd")
	walPath := filepath.Join(dir, "wal.log")

	cat, wal, err := OpenStore(wsdPath, walPath)
	if err != nil {
		t.Fatal(err)
	}
	s := FromCatalog(cat)
	mustScript(t, s,
		"create table T (A);",
		"insert into T values (1);",
	)
	if err := cat.Checkpoint(wal, wsdPath); err != nil {
		t.Fatal(err)
	}
	mustScript(t, s,
		"insert into T values (2);",
		"begin;", "insert into T values (3);", "update T set A = 30 where A = 3;", "commit;",
	)
	want := rawSnapBytes(t, cat.Snapshot())
	wal.Close()

	cat2, wal2, err := OpenStore(wsdPath, walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := rawSnapBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("checkpoint + tail recovery differs from last committed state")
	}
}

// TestWALLiteralRoundTrip pins the literal-rendering invariant WAL
// replay depends on: floats that would render in scientific notation,
// strings with embedded quotes, negatives, bools and nulls must all
// survive commit → statement log → crash → replay byte-for-byte.
func TestWALLiteralRoundTrip(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "checkpoint.wsd")
	walPath := filepath.Join(dir, "wal.log")
	cat, wal, err := OpenStore(wsdPath, walPath)
	if err != nil {
		t.Fatal(err)
	}
	s := FromCatalog(cat)
	mustScript(t, s,
		"create table T (A, B);",
		"insert into T values (10000000.5, 'it''s quoted');",
		"insert into T values (-0.00000125, 'plain');",
		"insert into T values (true, null);",
		"update T set B = 'x''y' where A = -0.00000125;",
	)
	want := rawSnapBytes(t, cat.Snapshot())
	wal.Close()
	cat2, wal2, err := OpenStore(wsdPath, walPath)
	if err != nil {
		t.Fatalf("replaying literal-heavy WAL: %v", err)
	}
	defer wal2.Close()
	if got := rawSnapBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatalf("literal round trip through the WAL diverged\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWALLargeRecordRecovered: a committed record far larger than any
// scanner buffer must replay, not be mistaken for a torn tail.
func TestWALLargeRecordRecovered(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "checkpoint.wsd")
	walPath := filepath.Join(dir, "wal.log")
	cat, wal, err := OpenStore(wsdPath, walPath)
	if err != nil {
		t.Fatal(err)
	}
	s := FromCatalog(cat)
	mustScript(t, s, "create table T (A, B);")
	big := strings.Repeat("x", 3<<20) // one 3 MiB statement text
	mustScript(t, s, "begin;", fmt.Sprintf("insert into T values (1, '%s');", big), "commit;")
	want := rawSnapBytes(t, cat.Snapshot())
	wal.Close()
	cat2, wal2, err := OpenStore(wsdPath, walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := rawSnapBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("multi-megabyte WAL record was not recovered intact")
	}
}
