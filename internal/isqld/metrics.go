package isqld

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"worldsetdb/internal/isql"
	"worldsetdb/internal/obs"
	"worldsetdb/internal/rewrite"
	"worldsetdb/internal/wsd"
)

// WithSlowQuery enables the slow-query log: every statement executes
// with a trace attached, and any statement slower than d has its span
// tree written to w as one JSON line (parse → compile → per-operator
// evaluation → commit → fsync, with merge costs and component ids) —
// the post-hoc answer to "what was that request doing". Tracing every
// statement costs a few allocations per span; the threshold only
// gates the logging.
func WithSlowQuery(d time.Duration, w io.Writer) Option {
	return func(s *Server) {
		s.slowQuery = d
		s.slowW = w
	}
}

// endpointHist returns the request-latency histogram for an endpoint.
func (s *Server) endpointHist(endpoint string) *obs.Histogram {
	switch endpoint {
	case "exec":
		return &s.histExec
	case "prepare":
		return &s.histPrepare
	case "execute":
		return &s.histExecute
	}
	return nil
}

// observeRequest records one request's wall time under its endpoint.
// Use as `defer s.observeRequest("exec", time.Now())`.
func (s *Server) observeRequest(endpoint string, start time.Time) {
	s.endpointHist(endpoint).Observe(time.Since(start))
}

// runScript executes a script like RunScript, additionally tracing
// each statement when the slow-query log is enabled and emitting span
// trees for statements over the threshold.
func (s *Server) runScript(sess *isql.Session, script string) (string, error) {
	if s.slowQuery <= 0 {
		return RunScript(sess, script)
	}
	stmts, err := isql.ParseScript(script)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, st := range stmts {
		fmt.Fprintf(&b, "isql> %s\n", st)
		res, err := s.execTraced(sess, st)
		if err != nil {
			return b.String(), err
		}
		renderResult(&b, sess, res)
	}
	return b.String(), nil
}

// execTraced runs one statement with a trace attached and logs the
// span tree when it ran slower than the threshold.
func (s *Server) execTraced(sess *isql.Session, st isql.Statement) (*isql.Result, error) {
	tr := obs.NewTrace("stmt")
	tr.Set("sql", st.String())
	sess.SetTrace(tr)
	res, err := sess.Exec(st)
	sess.SetTrace(nil)
	tr.End()
	if tr.Duration() >= s.slowQuery {
		if data, jerr := json.Marshal(tr); jerr == nil {
			s.slowMu.Lock()
			s.slowW.Write(append(data, '\n'))
			s.slowMu.Unlock()
		}
	}
	tr.Release()
	return res, err
}

// healthz is the GET /healthz document: liveness plus the recovery
// facts a supervisor (or the CI smoke job) asserts on — how many
// catalog shards are serving and the last durable epoch each one has
// published. Always HTTP 200 while the server is up.
type healthz struct {
	Status  string `json:"status"`
	Version uint64 `json:"version"`
	Shards  int    `json:"shards"`
	// ShardEpochs holds, per shard, the newest published (durable)
	// epoch; a restart that replayed its WAL reports the pre-crash
	// epochs here.
	ShardEpochs []uint64 `json:"shard_epochs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := healthz{Status: "ok", Version: s.cat.Snapshot().Version, Shards: s.cat.Shards()}
	if s.cat.Shards() > 1 {
		for _, st := range s.cat.ShardStats() {
			h.ShardEpochs = append(h.ShardEpochs, st.Version)
		}
	} else {
		h.ShardEpochs = []uint64{h.Version}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format: request and execution counters, per-shard commit-queue and
// fsync latency histograms, and per-relation decomposition-statistics
// gauges (the feed for decomposition-aware planning).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var p obs.Prom
	snap := s.cat.Snapshot()

	// Catalog shape.
	p.Gauge("wsdb_catalog_version", "Latest committed catalog version.", "", float64(snap.Version))
	p.Gauge("wsdb_catalog_size", "Decomposition size (total stored tuples).", "", float64(snap.DB.Size()))
	p.Gauge("wsdb_catalog_components", "Independent components in the catalog decomposition.", "", float64(len(snap.DB.Components)))
	p.Gauge("wsdb_catalog_worlds_log2", "Base-2 logarithm (floor) of the represented world count.", "", worldsLog2(snap.DB))
	p.Gauge("wsdb_catalog_shards", "Catalog shards (1 when unsharded).", "", float64(s.cat.Shards()))
	s.mu.Lock()
	live := len(s.sessions)
	s.mu.Unlock()
	p.Gauge("wsdb_sessions", "Live sticky sessions.", "", float64(live))

	// Request counters and latency per endpoint.
	for _, ep := range []string{"exec", "prepare", "execute"} {
		h := s.endpointHist(ep)
		p.Counter("wsdb_requests_total", "HTTP requests served per endpoint.", obs.Label("endpoint", ep), h.Count())
	}
	for _, ep := range []string{"exec", "prepare", "execute"} {
		p.Histogram("wsdb_request_seconds", "Request wall time per endpoint.", obs.Label("endpoint", ep), s.endpointHist(ep).Snapshot())
	}

	// Execution accounting: the ExecStatsSnapshot counters of /stats,
	// re-exported as Prometheus series.
	es := s.exec.Snapshot()
	p.Counter("wsdb_execs_total", "Statements executed over /exec and /execute.", "", s.execs.Load())
	for _, pc := range []struct {
		path string
		v    uint64
	}{{"native", es.Native}, {"merged", es.Merged}, {"fallback", es.Fallbacks}, {"legacy", es.Legacy}} {
		p.Counter("wsdb_exec_path_total", "Compiled-statement executions per evaluation path.", obs.Label("path", pc.path), pc.v)
	}
	for _, kc := range []struct {
		kind string
		ops  map[string]uint64
	}{{"merge", es.MergeOps}, {"fallback", es.FallbackOps}, {"legacy", es.LegacyOps}} {
		for _, op := range sortedKeys(kc.ops) {
			p.Counter("wsdb_exec_op_total", "Merges, fallbacks and legacy evaluations attributed to the causing operator.",
				obs.Label("kind", kc.kind)+","+obs.Label("op", op), kc.ops[op])
		}
	}

	// Per-shard commit statistics and latency histograms. Unsharded
	// catalogs report one shard 0 so dashboards keep a uniform shape.
	if s.cat.Shards() > 1 {
		stats := s.cat.ShardStats()
		for _, st := range stats {
			p.Gauge("wsdb_shard_version", "Newest published epoch per shard.", shardLabel(st.Shard), float64(st.Version))
		}
		for _, st := range stats {
			p.Counter("wsdb_shard_commits_total", "Commits published per shard.", shardLabel(st.Shard), st.Commits)
		}
		for _, st := range stats {
			p.Counter("wsdb_shard_conflicts_total", "Staged commits refused validation per shard.", shardLabel(st.Shard), st.Conflicts)
		}
		for _, st := range stats {
			p.Gauge("wsdb_shard_pending", "Commits queued for group commit per shard.", shardLabel(st.Shard), float64(st.Pending))
		}
		for _, st := range stats {
			p.Counter("wsdb_shard_wal_fsyncs_total", "WAL fsyncs per shard segment.", shardLabel(st.Shard), st.Syncs)
		}
	}
	shardObs := s.cat.ObsShards()
	for _, so := range shardObs {
		p.Histogram("wsdb_commit_queue_seconds", "Group-commit queue wait per shard.", shardLabel(so.Shard), so.Queue.Snapshot())
	}
	for _, so := range shardObs {
		if so.Fsync != nil {
			p.Histogram("wsdb_wal_fsync_seconds", "WAL fsync duration per shard.", shardLabel(so.Shard), so.Fsync.Snapshot())
		}
	}

	// Decomposition statistics per relation: how much of each relation
	// is certain vs alternative, and across how many components its
	// uncertainty spreads — the same snapshot-cached statistics the
	// planner reads (wsd.Stats, pre-computed by Normalize), so scraping
	// /metrics never re-walks the decomposition.
	st := snap.Stats()
	for i, name := range snap.DB.Names {
		p.Gauge("wsdb_relation_certain_tuples", "Tuples of the relation present in every world.",
			relLabel(name), float64(st.Rel(i).Certain))
	}
	for i, name := range snap.DB.Names {
		p.Gauge("wsdb_relation_alternative_tuples", "Tuples of the relation stored across component alternatives.",
			relLabel(name), float64(st.Rel(i).Alternative))
	}
	for i, name := range snap.DB.Names {
		p.Gauge("wsdb_relation_components", "Components with alternatives contributing to the relation.",
			relLabel(name), float64(st.Rel(i).Components))
	}

	// Durability posture per shard: how stale the recovery base is, how
	// big it is on disk, and how much WAL tail a crash right now would
	// replay. Always exported (an unsharded catalog reports one shard 0)
	// so dashboards and the CI smoke can assert on them unconditionally.
	ds := s.cat.DurabilityStats()
	for _, d := range ds {
		p.Gauge("wsdb_checkpoint_age_seconds", "Seconds since the shard's last checkpoint completed or was skipped as a no-op (-1 before the first).",
			shardLabel(d.Shard), d.CheckpointAgeSeconds)
	}
	for _, d := range ds {
		p.Gauge("wsdb_shard_disk_bytes", "On-disk size of the shard's checkpoint base file.",
			shardLabel(d.Shard), float64(d.DiskBytes))
	}
	for _, d := range ds {
		p.Gauge("wsdb_wal_tail_records", "Records in the shard's WAL segment — the crash-replay backlog.",
			shardLabel(d.Shard), float64(d.WALTailRecords))
	}
	// Paged-checkpoint I/O and buffer-pool counters, present once the
	// catalog runs on the page-file base.
	if pagers := s.cat.Pagers(); len(pagers) > 0 {
		for _, d := range ds {
			p.Counter("wsdb_checkpoints_total", "Page checkpoints written per shard.", shardLabel(d.Shard), d.Checkpoints)
		}
		for _, d := range ds {
			p.Counter("wsdb_checkpoint_noop_skips_total", "Checkpoints skipped because nothing changed since the previous one.", shardLabel(d.Shard), d.NoopSkips)
		}
		for _, d := range ds {
			p.Counter("wsdb_checkpoint_pages_written_total", "Pages written by checkpoints per shard.", shardLabel(d.Shard), d.PagesWritten)
		}
		for _, d := range ds {
			p.Counter("wsdb_bufpool_hits_total", "Buffer-pool page reads served from resident frames.", shardLabel(d.Shard), d.Pool.Hits)
		}
		for _, d := range ds {
			p.Counter("wsdb_bufpool_misses_total", "Buffer-pool page reads that went to disk.", shardLabel(d.Shard), d.Pool.Misses)
		}
		for _, d := range ds {
			p.Counter("wsdb_bufpool_evictions_total", "Buffer-pool frames recycled by the clock hand.", shardLabel(d.Shard), d.Pool.Evictions)
		}
		for i, ps := range pagers {
			if ps != nil {
				p.HistogramRaw("wsdb_checkpoint_bytes", "Bytes written per checkpoint (incremental checkpoints observe only dirty pages).",
					shardLabel(i), ps.BytesHist().Snapshot())
			}
		}
	}

	// Cost-based planning counters: rewrite-search effort across every
	// compile in the process, and plan-cache re-plans forced by
	// statistics drift.
	p.Counter("wsdb_rewrite_expanded_total", "Rewrite-search candidate plans expanded across all compiles.",
		"", rewrite.SearchExpanded.Value())
	p.Counter("wsdb_rewrite_pruned_total", "Rewrite-search candidate plans pruned by the cost bound across all compiles.",
		"", rewrite.SearchPruned.Value())
	p.Counter("wsdb_planner_replans_total", "Plan-cache recompiles triggered by decomposition-statistics drift.",
		"", isql.PlannerReplans.Value())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(p.Bytes())
}

func shardLabel(i int) string { return obs.Label("shard", strconv.Itoa(i)) }
func relLabel(name string) string {
	return obs.Label("relation", name)
}

// worldsLog2 approximates log2 of the represented world count (exact
// for powers of two; floor otherwise; 0 for the empty world-set).
func worldsLog2(db *wsd.DecompDB) float64 {
	w := db.Worlds()
	if w.Sign() <= 0 {
		return 0
	}
	return float64(w.BitLen() - 1)
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
