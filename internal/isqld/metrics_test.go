package isqld

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/obs"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/store"
)

// shardedWALServer builds a 4-shard, WAL-backed census catalog and
// serves it — the acceptance shape for /metrics: per-shard commit and
// fsync histograms must all be present.
func shardedWALServer(t *testing.T, opts ...Option) (*httptest.Server, *store.Catalog) {
	t.Helper()
	dir := t.TempDir()
	cat := store.FromComplete([]string{"Census"},
		[]*relation.Relation{datagen.Census(50, 10, 7)})
	cat.Reshard(4)
	wals := make([]*store.WAL, 4)
	for si := range wals {
		w, _, err := store.OpenWAL(store.SegmentPath(dir, si))
		if err != nil {
			t.Fatal(err)
		}
		wals[si] = w
		t.Cleanup(func() { w.Close() })
	}
	cat.SetShardLoggers(wals)
	return serveCat(t, cat, opts...), cat
}

// TestMetricsEndpoint asserts GET /metrics serves valid Prometheus
// text exposition on a 4-shard WAL-backed catalog, with every
// required series present: per-shard commit-queue and fsync
// histograms, per-relation decomposition gauges, execution-path and
// request counters.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := shardedWALServer(t)

	// Traffic on several paths: a repair CTAS (native), a select, an
	// aggregate (legacy fallback), and inserts routing to shards.
	if code, out := post(t, ts.URL+"/exec", `
create table Clean as select * from Census repair by key SSN;
select certain Name from Clean;
select count(*) as N from Clean;
create table Audit (Who, What);
insert into Audit values ('a', 1);
insert into Audit values ('b', 2);
`); code != http.StatusOK {
		t.Fatalf("traffic: %d %s", code, out)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if err := obs.LintProm(data); err != nil {
		t.Fatalf("invalid Prometheus exposition: %v\n%s", err, data)
	}
	for _, series := range []string{
		"wsdb_catalog_version",
		"wsdb_catalog_components",
		"wsdb_catalog_worlds_log2",
		"wsdb_catalog_shards",
		"wsdb_requests_total",
		"wsdb_request_seconds",
		"wsdb_execs_total",
		"wsdb_exec_path_total",
		"wsdb_exec_op_total",
		"wsdb_shard_version",
		"wsdb_shard_commits_total",
		"wsdb_shard_conflicts_total",
		"wsdb_shard_pending",
		"wsdb_shard_wal_fsyncs_total",
		"wsdb_commit_queue_seconds",
		"wsdb_wal_fsync_seconds",
		"wsdb_relation_certain_tuples",
		"wsdb_relation_alternative_tuples",
		"wsdb_relation_components",
		"wsdb_sessions",
		"wsdb_checkpoint_age_seconds",
		"wsdb_shard_disk_bytes",
		"wsdb_wal_tail_records",
	} {
		if !obs.HasSeries(data, series) {
			t.Errorf("missing required series %s", series)
		}
	}
	// All four shards expose a fsync histogram (count line per shard).
	for _, shard := range []string{`shard="0"`, `shard="1"`, `shard="2"`, `shard="3"`} {
		if !strings.Contains(string(data), "wsdb_wal_fsync_seconds_count{"+shard+"}") {
			t.Errorf("missing per-shard fsync histogram for %s", shard)
		}
	}
	// The repaired relation reports its decomposition split.
	if !strings.Contains(string(data), `wsdb_relation_alternative_tuples{relation="Clean"}`) {
		t.Error("missing decomposition gauge for relation Clean")
	}
}

// TestMetricsDurabilityGauges asserts the durability series on a
// paged, 4-shard catalog: after a checkpoint, every shard reports a
// non-negative checkpoint age, a non-zero base file on disk, an empty
// WAL tail, and the checkpoint-bytes histogram — and the exposition
// stays promlint-clean.
func TestMetricsDurabilityGauges(t *testing.T) {
	ts, cat := shardedWALServer(t)
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "cat.wsd")
	if err := cat.EnablePaging(wsdPath, 64); err != nil {
		t.Fatal(err)
	}
	if code, out := post(t, ts.URL+"/exec", `
create table Audit (Who, What);
insert into Audit values ('a', 1);
insert into Audit values ('b', 2);
`); code != http.StatusOK {
		t.Fatalf("traffic: %d %s", code, out)
	}
	if err := cat.CheckpointAll(wsdPath); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if err := obs.LintProm(data); err != nil {
		t.Fatalf("invalid Prometheus exposition: %v\n%s", err, data)
	}
	for _, series := range []string{
		"wsdb_checkpoint_age_seconds",
		"wsdb_shard_disk_bytes",
		"wsdb_wal_tail_records",
		"wsdb_checkpoints_total",
		"wsdb_checkpoint_noop_skips_total",
		"wsdb_checkpoint_pages_written_total",
		"wsdb_bufpool_hits_total",
		"wsdb_bufpool_misses_total",
		"wsdb_bufpool_evictions_total",
		"wsdb_checkpoint_bytes",
	} {
		if !obs.HasSeries(data, series) {
			t.Errorf("missing required series %s", series)
		}
	}
	text := string(data)
	for _, shard := range []string{`shard="0"`, `shard="1"`, `shard="2"`, `shard="3"`} {
		if !strings.Contains(text, "wsdb_checkpoint_age_seconds{"+shard+"}") {
			t.Errorf("missing checkpoint age for %s", shard)
		}
		if !strings.Contains(text, "wsdb_checkpoint_bytes_count{"+shard+"}") {
			t.Errorf("missing checkpoint-bytes histogram for %s", shard)
		}
	}
	// After CheckpointAll: zero WAL tail everywhere, age non-negative,
	// bases on disk. Parse the gauge samples directly.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "wsdb_wal_tail_records{") {
			if !strings.HasSuffix(line, " 0") {
				t.Errorf("non-empty WAL tail after checkpoint: %s", line)
			}
		}
		if strings.HasPrefix(line, "wsdb_checkpoint_age_seconds{") {
			if strings.Contains(line, " -1") {
				t.Errorf("checkpoint age unset after checkpoint: %s", line)
			}
		}
		if strings.HasPrefix(line, "wsdb_shard_disk_bytes{") {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("empty base file after checkpoint: %s", line)
			}
		}
	}
}

// TestHealthzShardEpochs asserts /healthz reports the shard count and
// per-shard durable epochs (the CI recovery smoke greps these).
func TestHealthzShardEpochs(t *testing.T) {
	ts, _ := shardedWALServer(t)
	if code, out := post(t, ts.URL+"/exec", `create table Audit (Who); insert into Audit values ('x');`); code != http.StatusOK {
		t.Fatalf("setup: %d %s", code, out)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h struct {
		Status      string   `json:"status"`
		Version     uint64   `json:"version"`
		Shards      int      `json:"shards"`
		ShardEpochs []uint64 `json:"shard_epochs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Shards != 4 || len(h.ShardEpochs) != 4 {
		t.Fatalf("healthz = %+v, want ok/4 shards/4 epochs", h)
	}
	var max uint64
	for _, e := range h.ShardEpochs {
		if e > max {
			max = e
		}
	}
	if max == 0 {
		t.Fatalf("healthz = %+v: no shard published a durable epoch after commits", h)
	}
}

// TestStatsShapeGolden pins the JSON key set of /stats (top-level and
// the nested exec object) so the document stays backward-compatible:
// keys may be added, but a missing or renamed key fails here first.
func TestStatsShapeGolden(t *testing.T) {
	ts := censusServer(t, 50, 10)
	// Populate every optional section: a repair (native exec), an
	// aggregate (legacy op attribution), a prepared statement, a sticky
	// session.
	if code, out := post(t, ts.URL+"/exec",
		`create table Clean as select * from Census repair by key SSN; select count(*) as N from Clean;`); code != http.StatusOK {
		t.Fatalf("setup: %d %s", code, out)
	}
	if code, out := post(t, ts.URL+"/prepare", `prepare q1 as select certain Name from Clean;`); code != http.StatusOK {
		t.Fatalf("prepare: %d %s", code, out)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/exec", strings.NewReader("begin;"))
	req.Header.Set(SessionHeader, "shape-test")
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, k := range sortedKeySet(doc) {
		lines = append(lines, k)
	}
	var execDoc map[string]json.RawMessage
	if err := json.Unmarshal(doc["exec"], &execDoc); err != nil {
		t.Fatal(err)
	}
	for _, k := range sortedKeySet(execDoc) {
		lines = append(lines, "exec."+k)
	}
	got := strings.Join(lines, "\n") + "\n"

	goldenPath := filepath.Join("testdata", "stats_shape.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (rerun with -update): %v", err)
	}
	for _, key := range strings.Split(strings.TrimSpace(string(want)), "\n") {
		if !contains(lines, key) {
			t.Errorf("/stats lost key %q (shape must stay backward-compatible)", key)
		}
	}
	if got != string(want) {
		t.Logf("note: /stats keys differ from golden (additions are fine):\ngot:\n%swant:\n%s", got, want)
	}
}

func sortedKeySet(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestSlowQueryLog asserts statements over the threshold emit their
// span tree as one JSON line each, and that the trace detaches from
// the session afterwards.
func TestSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	cat := store.FromComplete([]string{"Census"},
		[]*relation.Relation{datagen.Census(50, 10, 7)})
	ts := serveCat(t, cat, WithSlowQuery(time.Nanosecond, w))
	if code, out := post(t, ts.URL+"/exec",
		`create table Clean as select * from Census repair by key SSN; select certain Name from Clean;`); code != http.StatusOK {
		t.Fatalf("exec: %d %s", code, out)
	}
	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("slow-query log has %d lines, want 2:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	for _, line := range lines {
		var span struct {
			Name     string            `json:"name"`
			DurNs    int64             `json:"dur_ns"`
			Attrs    map[string]string `json:"attrs"`
			Children []json.RawMessage `json:"children"`
		}
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("slow-query line is not JSON: %v\n%s", err, line)
		}
		if span.Name != "stmt" || span.Attrs["sql"] == "" || len(span.Children) == 0 {
			t.Fatalf("span tree incomplete: %s", line)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestConcurrentMetricsRace hammers the new counters and histograms
// from concurrent writers while /metrics and /stats read them — run
// under -race in CI.
func TestConcurrentMetricsRace(t *testing.T) {
	ts, _ := shardedWALServer(t, WithTxnRetries(32), WithSlowQuery(time.Nanosecond, io.Discard))
	if code, out := post(t, ts.URL+"/exec", `create table Audit (Who, What);`); code != http.StatusOK {
		t.Fatalf("setup: %d %s", code, out)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				stmt := "insert into Audit values ('w" + string(rune('a'+i)) + "', " + string(rune('0'+j)) + ");"
				resp, err := http.Post(ts.URL+"/exec", "text/plain", strings.NewReader(stmt))
				if err != nil {
					t.Error(err)
					return
				}
				out, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("writer %d: %d %s", i, resp.StatusCode, out)
					return
				}
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if err := obs.LintProm(buf.Bytes()); err != nil {
					t.Errorf("metrics under load: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
