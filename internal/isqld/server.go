// Package isqld implements the concurrent I-SQL server: any number of
// HTTP clients execute I-SQL scripts against one shared
// decomposition-native catalog (internal/store). Each request gets its
// own session; selects evaluate wait-free against an immutable catalog
// snapshot (readers never block, and never see a torn version), while
// DML and DDL serialize through the catalog's single-writer MVCC
// transaction. This is the serving path of the north star: a
// 2^40-world census catalog answers certain/possible queries from many
// concurrent readers in milliseconds each, because every reader works
// on the factored representation.
//
// # Protocol
//
// The server speaks a line-oriented text protocol over HTTP:
//
//	POST /exec     body: an I-SQL script (semicolon-separated
//	               statements). The response streams, per statement, an
//	               "isql> <statement>" echo followed by the rendered
//	               distinct answers (selects) or an "ok; N world(s)"
//	               status line. A statement error stops the script with
//	               an "error: ..." line and HTTP 422.
//	GET  /stats    JSON: catalog version, world count, decomposition
//	               size, relation and view names.
//	GET  /healthz  "ok" once the server is up.
package isqld

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"

	"worldsetdb/internal/isql"
	"worldsetdb/internal/store"

	// An isqld server can be asked for any registered engine; link all
	// four so the registry is complete wherever the server runs.
	_ "worldsetdb/internal/physical"
	_ "worldsetdb/internal/translate"
	_ "worldsetdb/internal/wsdexec"
)

// Server serves I-SQL sessions over one shared catalog.
type Server struct {
	cat    *store.Catalog
	engine string
	// maxBody bounds script size (default 1 MiB).
	maxBody int64
	// stats
	execs atomic.Uint64
}

// Option configures a Server.
type Option func(*Server)

// WithEngine picks the evaluation engine for fragment statements
// (default: wsdexec natively on the decomposition).
func WithEngine(name string) Option { return func(s *Server) { s.engine = name } }

// New returns a server over the catalog.
func New(cat *store.Catalog, opts ...Option) *Server {
	s := &Server{cat: cat, maxBody: 1 << 20}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Catalog returns the shared catalog (for persistence on shutdown).
func (s *Server) Catalog() *store.Catalog { return s.cat }

// Handler returns the HTTP handler serving the protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /exec", s.handleExec)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

// session returns a fresh session bound to the shared catalog. Sessions
// are cheap (a pointer and a view parse cache); per-request isolation
// is what lets requests run concurrently.
func (s *Server) session() *isql.Session {
	sess := isql.FromCatalog(s.cat)
	sess.Engine = s.engine
	return sess
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBody+1))
	if err != nil {
		http.Error(w, "error: reading request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > s.maxBody {
		http.Error(w, fmt.Sprintf("error: script exceeds %d bytes", s.maxBody), http.StatusRequestEntityTooLarge)
		return
	}
	s.execs.Add(1)
	sess := s.session()
	out, err := RunScript(sess, string(body))
	if err != nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusUnprocessableEntity)
		io.WriteString(w, out)
		fmt.Fprintf(w, "error: %v\n", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, out)
}

// RunScript executes an I-SQL script against the session and renders
// the per-statement output of the line protocol. On a statement error
// it returns the output up to that point plus the error.
func RunScript(sess *isql.Session, script string) (string, error) {
	stmts, err := isql.ParseScript(script)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, st := range stmts {
		fmt.Fprintf(&b, "isql> %s\n", st)
		res, err := sess.Exec(st)
		if err != nil {
			return b.String(), err
		}
		switch {
		case len(res.Answers) > 0:
			for i, a := range res.Answers {
				caption := "answer"
				if len(res.Answers) > 1 {
					caption = fmt.Sprintf("answer variant %d of %d", i+1, len(res.Answers))
				}
				b.WriteString(a.Render(caption))
				b.WriteByte('\n')
			}
		case res.Affected > 0:
			fmt.Fprintf(&b, "%d tuple(s) affected across %s world(s)\n\n", res.Affected, sess.Worlds())
		default:
			fmt.Fprintf(&b, "ok; %s world(s)\n\n", sess.Worlds())
		}
	}
	return b.String(), nil
}

// Stats is the /stats document.
type Stats struct {
	Version   uint64   `json:"version"`
	Worlds    string   `json:"worlds"`
	Size      int      `json:"size"`
	Relations []string `json:"relations"`
	Views     []string `json:"views"`
	Execs     uint64   `json:"execs"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.cat.Snapshot()
	views := make([]string, 0, len(snap.Views))
	for v := range snap.Views {
		views = append(views, v)
	}
	sort.Strings(views)
	st := Stats{
		Version:   snap.Version,
		Worlds:    snap.DB.Worlds().String(),
		Size:      snap.DB.Size(),
		Relations: append([]string{}, snap.DB.Names...),
		Views:     views,
		Execs:     s.execs.Load(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(st)
}
