// Package isqld implements the concurrent I-SQL server: any number of
// HTTP clients execute I-SQL scripts against one shared
// decomposition-native catalog (internal/store). Each request gets its
// own session; selects evaluate wait-free against an immutable catalog
// snapshot (readers never block, and never see a torn version), while
// DML and DDL serialize through the catalog's single-writer MVCC
// transaction. This is the serving path of the north star: a
// 2^40-world census catalog answers certain/possible queries from many
// concurrent readers in milliseconds each, because every reader works
// on the factored representation.
//
// # Protocol
//
// The server speaks a line-oriented text protocol over HTTP:
//
//	POST /exec     body: an I-SQL script (semicolon-separated
//	               statements). The response streams, per statement, an
//	               "isql> <statement>" echo followed by the rendered
//	               distinct answers (selects) or an "ok; N world(s)"
//	               status line. A statement error stops the script with
//	               an "error: ..." line and HTTP 422.
//	POST /prepare  body: one or more `prepare <name> as <statement>`
//	               statements. Registers them in the server-wide plan
//	               cache shared by every session; compiled plans are
//	               memoized, so later /execute requests skip parsing and
//	               compilation.
//	POST /execute  body: `<name>` or `<name>(arg, ...)` — runs a
//	               prepared statement with the bound literal arguments,
//	               rendered like one /exec statement.
//	GET  /stats    JSON: catalog version, world count, decomposition
//	               size, relation and view names, prepared statements,
//	               live transactional sessions.
//	GET  /metrics  Prometheus text exposition (0.0.4): request and
//	               execution counters, per-shard commit-queue and WAL
//	               fsync latency histograms, per-relation decomposition
//	               statistics gauges.
//	GET  /healthz  JSON liveness document once the server is up:
//	               status, catalog version, shard count and the last
//	               durable epoch per shard.
//
// # Transactional sessions
//
// A request carrying an X-ISQL-Session header is sticky: the server
// keeps one named session per token, serializes that token's requests,
// and preserves session state — most importantly an open BEGIN
// transaction — across requests. A script may BEGIN in one request,
// stage statements over several more, and COMMIT later; until the
// commit, every other session (and every /exec reader) keeps seeing the
// pre-transaction catalog. Sticky sessions idle longer than the TTL are
// evicted and their open transaction rolled back — by a background
// sweeper (stopped by Server.Close), so an abandoned transaction
// releases its staging snapshot even on a server receiving no further
// requests. Requests without the header run on a throwaway session, and
// a transaction left open at the end of the script is rolled back
// (there is no token to resume it by).
//
// A COMMIT losing first-committer-wins to a concurrent writer is
// retried automatically up to the WithTxnRetries budget: the
// transaction's write statements re-execute on the new latest version
// and the conflict surfaces as a request error only on exhaustion.
package isqld

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"worldsetdb/internal/isql"
	"worldsetdb/internal/obs"
	"worldsetdb/internal/store"

	// An isqld server can be asked for any registered engine; link all
	// four so the registry is complete wherever the server runs.
	_ "worldsetdb/internal/physical"
	_ "worldsetdb/internal/translate"
	_ "worldsetdb/internal/wsdexec"
)

// SessionHeader names the sticky-session token header.
const SessionHeader = "X-ISQL-Session"

// Server serves I-SQL sessions over one shared catalog.
type Server struct {
	cat    *store.Catalog
	engine string
	// maxBody bounds script size (default 1 MiB).
	maxBody int64
	// prep is the server-wide prepared-statement cache, shared by every
	// session (sticky and throwaway).
	prep *isql.PlanCache
	// txnRetries is each session's automatic conflict-retry budget.
	txnRetries int
	// sticky sessions by token.
	mu         sync.Mutex
	sessions   map[string]*stickySession
	sessionTTL time.Duration
	// stopSweep ends the background idle-session sweeper; closeOnce
	// makes Close idempotent.
	stopSweep chan struct{}
	closeOnce sync.Once
	// stats
	execs atomic.Uint64
	// exec is the server-wide execution accounting (native / merged /
	// fallback / legacy, attributed per operator), shared by every
	// session the server creates.
	exec *isql.ExecStats
	// Request-latency histograms per endpoint; their counts double as
	// the per-endpoint request counters on /metrics.
	histExec, histPrepare, histExecute obs.Histogram
	// Slow-query log: statements slower than slowQuery write their span
	// tree to slowW as one JSON line (0 disables; see WithSlowQuery).
	slowQuery time.Duration
	slowW     io.Writer
	slowMu    sync.Mutex
}

// stickySession is one token's persistent session. Its mutex serializes
// requests for the token (a session is single-goroutine).
type stickySession struct {
	mu       sync.Mutex
	sess     *isql.Session
	lastUsed time.Time
}

// Option configures a Server.
type Option func(*Server)

// WithEngine picks the evaluation engine for fragment statements
// (default: wsdexec natively on the decomposition).
func WithEngine(name string) Option { return func(s *Server) { s.engine = name } }

// WithSessionTTL sets the sticky-session idle eviction age (default 5
// minutes). An evicted session's open transaction is rolled back.
func WithSessionTTL(d time.Duration) Option { return func(s *Server) { s.sessionTTL = d } }

// WithTxnRetries sets each session's automatic conflict-retry budget: a
// COMMIT losing first-committer-wins re-runs the transaction's write
// statements up to n times before the conflict surfaces as a request
// error (default 0 — no retry).
func WithTxnRetries(n int) Option { return func(s *Server) { s.txnRetries = n } }

// New returns a server over the catalog. The server owns a background
// sweeper goroutine; call Close when done with it.
func New(cat *store.Catalog, opts ...Option) *Server {
	s := &Server{
		cat:        cat,
		maxBody:    1 << 20,
		prep:       isql.NewPlanCache(),
		sessions:   map[string]*stickySession{},
		sessionTTL: 5 * time.Minute,
		stopSweep:  make(chan struct{}),
		exec:       isql.NewExecStats(),
	}
	for _, o := range opts {
		o(s)
	}
	go s.sweepLoop()
	return s
}

// Close stops the background session sweeper. Idempotent; it does not
// touch the catalog or in-flight requests.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.stopSweep) })
}

// sweepLoop evicts idle sticky sessions in the background, so an open
// transaction abandoned by its client releases its staging snapshot
// after the TTL even on a server receiving no further requests (the
// in-request eviction alone would pin it indefinitely on a quiet
// server).
func (s *Server) sweepLoop() {
	interval := s.sessionTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopSweep:
			return
		case <-tick.C:
			s.mu.Lock()
			s.evictIdleLocked()
			s.mu.Unlock()
		}
	}
}

// Catalog returns the shared catalog (for persistence on shutdown).
func (s *Server) Catalog() *store.Catalog { return s.cat }

// Handler returns the HTTP handler serving the protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /exec", s.handleExec)
	mux.HandleFunc("POST /prepare", s.handlePrepare)
	mux.HandleFunc("POST /execute", s.handleExecute)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// session returns a fresh throwaway session bound to the shared catalog
// and plan cache. Sessions are cheap (a pointer and a view parse
// cache); per-request isolation is what lets requests run concurrently.
func (s *Server) session() *isql.Session {
	sess := isql.FromCatalog(s.cat)
	sess.Engine = s.engine
	sess.SetPlanCache(s.prep)
	sess.RetryConflicts = s.txnRetries
	sess.Stats = s.exec
	return sess
}

// acquire resolves the request's session: the token's sticky session
// (locked for the duration of the request; created on first use) when
// the header is set, a throwaway otherwise. release must be called when
// the request is done; for throwaway sessions it rolls back any open
// transaction.
func (s *Server) acquire(r *http.Request) (sess *isql.Session, release func()) {
	token := r.Header.Get(SessionHeader)
	if token == "" {
		sess = s.session()
		return sess, func() {
			if sess.InTxn() {
				sess.Rollback()
			}
		}
	}
	s.mu.Lock()
	s.evictIdleLocked()
	st, ok := s.sessions[token]
	if !ok {
		st = &stickySession{sess: s.session()}
		s.sessions[token] = st
	}
	st.lastUsed = time.Now()
	s.mu.Unlock()
	st.mu.Lock()
	return st.sess, func() {
		s.mu.Lock()
		st.lastUsed = time.Now()
		s.mu.Unlock()
		st.mu.Unlock()
	}
}

// evictIdleLocked drops sticky sessions idle beyond the TTL, rolling
// back their open transactions. Caller holds s.mu.
func (s *Server) evictIdleLocked() {
	cutoff := time.Now().Add(-s.sessionTTL)
	for token, st := range s.sessions {
		if st.lastUsed.Before(cutoff) {
			if st.mu.TryLock() { // skip a session mid-request
				if st.sess.InTxn() {
					st.sess.Rollback()
				}
				st.mu.Unlock()
				delete(s.sessions, token)
			}
		}
	}
}

// body reads a bounded request body.
func (s *Server) body(w http.ResponseWriter, r *http.Request) (string, bool) {
	data, err := io.ReadAll(io.LimitReader(r.Body, s.maxBody+1))
	if err != nil {
		http.Error(w, "error: reading request: "+err.Error(), http.StatusBadRequest)
		return "", false
	}
	if int64(len(data)) > s.maxBody {
		http.Error(w, fmt.Sprintf("error: script exceeds %d bytes", s.maxBody), http.StatusRequestEntityTooLarge)
		return "", false
	}
	return string(data), true
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	defer s.observeRequest("exec", time.Now())
	script, ok := s.body(w, r)
	if !ok {
		return
	}
	s.execs.Add(1)
	sess, release := s.acquire(r)
	defer release()
	out, err := s.runScript(sess, script)
	s.reply(w, out, err)
}

// handlePrepare registers `prepare <name> as <statement>` statements in
// the server-wide plan cache.
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	defer s.observeRequest("prepare", time.Now())
	script, ok := s.body(w, r)
	if !ok {
		return
	}
	stmts, err := isql.ParseScript(script)
	if err != nil {
		s.reply(w, "", err)
		return
	}
	sess, release := s.acquire(r)
	defer release()
	var b strings.Builder
	for _, st := range stmts {
		if _, isPrep := st.(*isql.PrepareStmt); !isPrep {
			s.reply(w, b.String(), fmt.Errorf("/prepare accepts only prepare statements, got %q", st))
			return
		}
		res, err := sess.Exec(st)
		if err != nil {
			s.reply(w, b.String(), err)
			return
		}
		fmt.Fprintf(&b, "%s\n", res.Message)
	}
	s.reply(w, b.String(), nil)
}

// handleExecute runs a prepared statement: the body is the bare call
// form `name` or `name(arg, ...)` — no statement grammar to parse, and
// for cached fragment selects no compilation either.
func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	defer s.observeRequest("execute", time.Now())
	body, ok := s.body(w, r)
	if !ok {
		return
	}
	call, err := isql.ParseExecuteCall(body)
	if err != nil {
		s.reply(w, "", err)
		return
	}
	s.execs.Add(1)
	sess, release := s.acquire(r)
	defer release()
	var res *isql.Result
	if s.slowQuery > 0 {
		res, err = s.execTraced(sess, call)
	} else {
		res, err = sess.Exec(call)
	}
	if err != nil {
		s.reply(w, "", err)
		return
	}
	var b strings.Builder
	renderResult(&b, sess, res)
	s.reply(w, b.String(), nil)
}

// reply writes the line-protocol response: the rendered output so far,
// plus an error line and status 422 when a statement failed.
func (s *Server) reply(w http.ResponseWriter, out string, err error) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err != nil {
		w.WriteHeader(http.StatusUnprocessableEntity)
		io.WriteString(w, out)
		fmt.Fprintf(w, "error: %v\n", err)
		return
	}
	io.WriteString(w, out)
}

// RunScript executes an I-SQL script against the session and renders
// the per-statement output of the line protocol. On a statement error
// it returns the output up to that point plus the error.
func RunScript(sess *isql.Session, script string) (string, error) {
	stmts, err := isql.ParseScript(script)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, st := range stmts {
		fmt.Fprintf(&b, "isql> %s\n", st)
		res, err := sess.Exec(st)
		if err != nil {
			return b.String(), err
		}
		renderResult(&b, sess, res)
	}
	return b.String(), nil
}

// renderResult writes one statement's protocol output.
func renderResult(b *strings.Builder, sess *isql.Session, res *isql.Result) {
	switch {
	case len(res.Answers) > 0:
		for i, a := range res.Answers {
			caption := "answer"
			if len(res.Answers) > 1 {
				caption = fmt.Sprintf("answer variant %d of %d", i+1, len(res.Answers))
			}
			b.WriteString(a.Render(caption))
			b.WriteByte('\n')
		}
	case res.Message != "":
		fmt.Fprintf(b, "%s\n\n", res.Message)
	case res.Affected > 0:
		fmt.Fprintf(b, "%d tuple(s) affected across %s world(s)\n\n", res.Affected, sess.Worlds())
	default:
		fmt.Fprintf(b, "ok; %s world(s)\n\n", sess.Worlds())
	}
}

// Stats is the /stats document.
type Stats struct {
	Version   uint64   `json:"version"`
	Worlds    string   `json:"worlds"`
	Size      int      `json:"size"`
	Relations []string `json:"relations"`
	Views     []string `json:"views"`
	Execs     uint64   `json:"execs"`
	Prepared  []string `json:"prepared,omitempty"`
	Sessions  int      `json:"sessions"`
	// Exec breaks executions down by evaluation path: native on the
	// decomposition (merged counts those that merged components),
	// engine-level enumeration fallbacks, and legacy evaluations of
	// statements outside the WSA fragment — attributed per operator, the
	// serving-path view of the "fallbacks should be rare" invariant.
	Exec isql.ExecStatsSnapshot `json:"exec"`
	// Shards holds per-shard commit statistics on a component-sharded
	// catalog (published epoch, commits, validation conflicts, queued
	// group commits, segment fsyncs); absent when unsharded.
	Shards []store.ShardStat `json:"shards,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.cat.Snapshot()
	views := make([]string, 0, len(snap.Views))
	for v := range snap.Views {
		views = append(views, v)
	}
	sort.Strings(views)
	s.mu.Lock()
	live := len(s.sessions)
	s.mu.Unlock()
	st := Stats{
		Version:   snap.Version,
		Worlds:    snap.DB.Worlds().String(),
		Size:      snap.DB.Size(),
		Relations: append([]string{}, snap.DB.Names...),
		Views:     views,
		Execs:     s.execs.Load(),
		Prepared:  s.prep.Names(),
		Sessions:  live,
		Exec:      s.exec.Snapshot(),
	}
	if s.cat.Shards() > 1 {
		st.Shards = s.cat.ShardStats()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(st)
}
