package isqld

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/store"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

func censusServer(t testing.TB, n, dups int) *httptest.Server {
	t.Helper()
	cat := store.FromComplete([]string{"Census"},
		[]*relation.Relation{datagen.Census(n, dups, 7)})
	return serveCat(t, cat)
}

// serveCat builds a Server over cat, wires its background sweeper's
// shutdown into the test, and serves it over httptest.
func serveCat(t testing.TB, cat *store.Catalog, opts ...Option) *httptest.Server {
	t.Helper()
	srv := New(cat, opts...)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t testing.TB, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(out)
}

// TestSmokeScriptGolden runs the CI smoke script — the same file the
// workflow posts at a live server — and pins the full response. The
// paper's census demo: 4 repairs, certain/possible facts.
func TestSmokeScriptGolden(t *testing.T) {
	cat := store.FromComplete([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	ts := serveCat(t, cat)
	defer ts.Close()
	script, err := os.ReadFile(filepath.Join("testdata", "smoke.isql"))
	if err != nil {
		t.Fatal(err)
	}
	code, got := post(t, ts.URL+"/exec", string(script))
	if code != http.StatusOK {
		t.Fatalf("status %d\n%s", code, got)
	}
	golden := filepath.Join("testdata", "smoke.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run 'go test -update ./internal/isqld'): %v", err)
	}
	if got != string(want) {
		t.Fatalf("smoke output differs\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestConcurrentReadersIdentical is the serving-path acceptance check:
// after materializing the 2^40-world census repair, N concurrent
// clients issue certain-answer queries against the shared catalog and
// must receive byte-identical responses (run under -race in CI).
func TestConcurrentReadersIdentical(t *testing.T) {
	ts := censusServer(t, 120, 40)
	code, out := post(t, ts.URL+"/exec",
		"create table Clean as select * from Census repair by key SSN;")
	if code != http.StatusOK {
		t.Fatalf("materializing: %d\n%s", code, out)
	}
	if !strings.Contains(out, "1099511627776 world(s)") {
		t.Fatalf("expected a 2^40-world catalog, got\n%s", out)
	}
	const readers, rounds = 8, 4
	query := "select certain Name from Clean where POB = 'NYC';"
	results := make([]string, readers)
	errs := make([]error, readers)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var b strings.Builder
			for i := 0; i < rounds; i++ {
				resp, err := http.Post(ts.URL+"/exec", "text/plain", strings.NewReader(query))
				if err != nil {
					errs[g] = err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs[g] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[g] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
				b.Write(body)
			}
			results[g] = b.String()
		}(g)
	}
	wg.Wait()
	for g := 0; g < readers; g++ {
		if errs[g] != nil {
			t.Fatalf("reader %d: %v", g, errs[g])
		}
		if results[g] != results[0] {
			t.Fatalf("reader %d response differs from reader 0", g)
		}
	}
	if !strings.Contains(results[0], "answer") {
		t.Fatalf("readers got no answers:\n%s", results[0])
	}
}

// TestConcurrentWritersSerialize: concurrent DML requests all commit
// (single-writer serialization), and the final state reflects every
// insert exactly once.
func TestConcurrentWritersSerialize(t *testing.T) {
	cat := store.New(nil)
	ts := serveCat(t, cat)
	defer ts.Close()
	if code, out := post(t, ts.URL+"/exec", "create table T (A);"); code != http.StatusOK {
		t.Fatalf("create: %d %s", code, out)
	}
	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/exec", "text/plain",
				strings.NewReader(fmt.Sprintf("insert into T values (%d);", g)))
			if err != nil {
				errs[g] = err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[g] = fmt.Errorf("status %d", resp.StatusCode)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", g, err)
		}
	}
	code, out := post(t, ts.URL+"/exec", "select count(*) as N from T;")
	if code != http.StatusOK || !strings.Contains(out, fmt.Sprintf("%d", writers)) {
		t.Fatalf("final count missing %d:\n%s", writers, out)
	}
}

// TestStatementErrorReported: a bad statement yields HTTP 422 with the
// error in the body, after the successful prefix.
func TestStatementErrorReported(t *testing.T) {
	ts := censusServer(t, 10, 1)
	code, out := post(t, ts.URL+"/exec", "select certain Name from Census; select * from Missing;")
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422\n%s", code, out)
	}
	if !strings.Contains(out, "error:") || !strings.Contains(out, "Missing") {
		t.Fatalf("error not reported:\n%s", out)
	}
}

// TestStatsEndpoint checks /stats and /healthz.
func TestStatsEndpoint(t *testing.T) {
	ts := censusServer(t, 50, 10)
	if code, out := post(t, ts.URL+"/exec",
		"create table Clean as select * from Census repair by key SSN; create view V as select Name from Clean;"); code != http.StatusOK {
		t.Fatalf("setup: %d %s", code, out)
	}
	// One native select and one aggregate (legacy path) populate the
	// per-path execution accounting.
	if code, out := post(t, ts.URL+"/exec",
		"select certain Name from Clean; select count(*) as N from Clean;"); code != http.StatusOK {
		t.Fatalf("exec accounting setup: %d %s", code, out)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Worlds != "1024" { // 2^10
		t.Fatalf("stats worlds = %s, want 1024", st.Worlds)
	}
	if len(st.Relations) != 2 || len(st.Views) != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Version < 2 {
		t.Fatalf("version %d, want ≥ 2 after two commits", st.Version)
	}
	// The CTAS and the plain select ran natively; the aggregate went
	// through the bounded legacy evaluator, attributed to its feature.
	if st.Exec.Native < 2 {
		t.Fatalf("exec accounting native = %d, want ≥ 2\n%+v", st.Exec.Native, st.Exec)
	}
	if st.Exec.Legacy != 1 || st.Exec.LegacyOps["aggregation"] != 1 {
		t.Fatalf("exec accounting legacy = %d (ops %v), want 1 aggregation", st.Exec.Legacy, st.Exec.LegacyOps)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hr.StatusCode)
	}
}

// BenchmarkReaderThroughput measures concurrent certain-answer queries
// against a shared 2^40-world catalog — the serving-path headline
// number (compare with enumerating 10^12 worlds per request).
func BenchmarkReaderThroughput(b *testing.B) {
	cat := store.FromComplete([]string{"Census"},
		[]*relation.Relation{datagen.Census(1000, 40, 7)})
	ts := serveCat(b, cat)
	defer ts.Close()
	if code, out := post(b, ts.URL+"/exec",
		"create table Clean as select * from Census repair by key SSN;"); code != http.StatusOK {
		b.Fatalf("materializing: %d %s", code, out)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/exec", "text/plain",
				strings.NewReader("select certain POB from Clean;"))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
}

// postSession is post with a sticky-session token header.
func postSession(t testing.TB, url, token, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(SessionHeader, token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(out)
}

// TestTxnScriptGolden pins the transactional protocol end to end — the
// same script the CI smoke job posts at a live WAL-backed server: a
// committed BEGIN batch, a rolled-back one, and the resulting answers.
func TestTxnScriptGolden(t *testing.T) {
	cat := store.FromComplete([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	ts := serveCat(t, cat)
	defer ts.Close()
	script, err := os.ReadFile(filepath.Join("testdata", "txn.isql"))
	if err != nil {
		t.Fatal(err)
	}
	code, got := post(t, ts.URL+"/exec", string(script))
	if code != http.StatusOK {
		t.Fatalf("status %d\n%s", code, got)
	}
	golden := filepath.Join("testdata", "txn.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run 'go test -update ./internal/isqld'): %v", err)
	}
	if got != string(want) {
		t.Fatalf("txn output differs\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestTransactionAtomicityUnderReaders is the tentpole acceptance
// check: a sticky session stages a BEGIN → N statements → COMMIT batch
// across several requests while concurrent /exec readers poll; every
// reader response must reflect either the pre-transaction or the
// post-commit catalog — never an intermediate statement. Run under
// -race in CI.
func TestTransactionAtomicityUnderReaders(t *testing.T) {
	cat := store.New(nil)
	ts := serveCat(t, cat)
	defer ts.Close()
	if code, out := post(t, ts.URL+"/exec",
		"create table T (A); insert into T values (0);"); code != http.StatusOK {
		t.Fatalf("setup: %d %s", code, out)
	}
	const staged = 5
	stop := make(chan struct{})
	bad := make(chan string, 1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, out := post(t, ts.URL+"/exec", "select count(*) as N from T;")
				if code != http.StatusOK {
					select {
					case bad <- fmt.Sprintf("reader status %d: %s", code, out):
					default:
					}
					return
				}
				// The count is either 1 (pre-transaction) or 1+staged
				// (post-commit); anything else is a torn read.
				if !strings.Contains(out, "\n1\n") && !strings.Contains(out, fmt.Sprintf("\n%d\n", 1+staged)) {
					select {
					case bad <- "torn read:\n" + out:
					default:
					}
					return
				}
			}
		}()
	}
	if code, out := postSession(t, ts.URL+"/exec", "writer", "begin;"); code != http.StatusOK {
		t.Fatalf("begin: %d %s", code, out)
	}
	for i := 1; i <= staged; i++ {
		if code, out := postSession(t, ts.URL+"/exec", "writer",
			fmt.Sprintf("insert into T values (%d);", i)); code != http.StatusOK {
			t.Fatalf("staged insert %d: %d %s", i, code, out)
		}
	}
	if code, out := postSession(t, ts.URL+"/exec", "writer", "commit;"); code != http.StatusOK {
		t.Fatalf("commit: %d %s", code, out)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-bad:
		t.Fatal(msg)
	default:
	}
	code, out := post(t, ts.URL+"/exec", "select count(*) as N from T;")
	if code != http.StatusOK || !strings.Contains(out, fmt.Sprintf("\n%d\n", 1+staged)) {
		t.Fatalf("final count missing %d:\n%s", 1+staged, out)
	}
}

// TestStatelessRequestRollsBackOpenTxn: a /exec script that BEGINs
// without a session token cannot resume — its open transaction is
// rolled back at end of request and never becomes visible.
func TestStatelessRequestRollsBackOpenTxn(t *testing.T) {
	cat := store.New(nil)
	ts := serveCat(t, cat)
	defer ts.Close()
	if code, out := post(t, ts.URL+"/exec", "create table T (A);"); code != http.StatusOK {
		t.Fatalf("setup: %d %s", code, out)
	}
	if code, out := post(t, ts.URL+"/exec", "begin; insert into T values (1);"); code != http.StatusOK {
		t.Fatalf("open-txn script: %d %s", code, out)
	}
	code, out := post(t, ts.URL+"/exec", "select count(*) as N from T;")
	if code != http.StatusOK || !strings.Contains(out, "\n0\n") {
		t.Fatalf("abandoned stateless transaction leaked:\n%s", out)
	}
}

// TestStickySessionEviction: an idle sticky session past the TTL is
// evicted and its open transaction rolled back.
func TestStickySessionEviction(t *testing.T) {
	cat := store.New(nil)
	ts := serveCat(t, cat, WithSessionTTL(30*time.Millisecond))
	defer ts.Close()
	if code, out := post(t, ts.URL+"/exec", "create table T (A);"); code != http.StatusOK {
		t.Fatalf("setup: %d %s", code, out)
	}
	if code, out := postSession(t, ts.URL+"/exec", "tok", "begin; insert into T values (1);"); code != http.StatusOK {
		t.Fatalf("begin: %d %s", code, out)
	}
	time.Sleep(60 * time.Millisecond)
	// Any session acquisition sweeps; this one creates a fresh session
	// under the same token, whose commit has nothing staged.
	code, out := postSession(t, ts.URL+"/exec", "tok", "select count(*) as N from T;")
	if code != http.StatusOK || !strings.Contains(out, "\n0\n") {
		t.Fatalf("evicted transaction leaked:\n%s", out)
	}
	if code, _ := postSession(t, ts.URL+"/exec", "tok", "commit;"); code == http.StatusOK {
		t.Fatal("commit on the evicted session's replacement must fail (no open transaction)")
	}
}

// TestPrepareExecuteEndpoints: /prepare registers into the shared
// cache, /execute runs with and without arguments, errors surface.
func TestPrepareExecuteEndpoints(t *testing.T) {
	cat := store.FromComplete([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	ts := serveCat(t, cat)
	defer ts.Close()
	if code, out := post(t, ts.URL+"/exec",
		"create table Clean as select * from Census repair by key SSN;"); code != http.StatusOK {
		t.Fatalf("setup: %d %s", code, out)
	}
	code, out := post(t, ts.URL+"/prepare",
		"prepare certnames as select certain Name from Clean; prepare bypob as select Name from Clean where POB = $1;")
	if code != http.StatusOK || !strings.Contains(out, "prepared certnames") || !strings.Contains(out, "prepared bypob") {
		t.Fatalf("prepare: %d\n%s", code, out)
	}
	code, out = post(t, ts.URL+"/execute", "certnames")
	if code != http.StatusOK || !strings.Contains(out, "answer") {
		t.Fatalf("execute certnames: %d\n%s", code, out)
	}
	code, out = post(t, ts.URL+"/execute", "bypob('NYC')")
	if code != http.StatusOK || !strings.Contains(out, "answer") {
		t.Fatalf("execute bypob: %d\n%s", code, out)
	}
	// Errors: unknown name, wrong arity, non-prepare on /prepare.
	if code, _ = post(t, ts.URL+"/execute", "nosuch"); code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown prepared statement: status %d", code)
	}
	if code, _ = post(t, ts.URL+"/execute", "bypob"); code != http.StatusUnprocessableEntity {
		t.Fatalf("missing argument: status %d", code)
	}
	if code, _ = post(t, ts.URL+"/prepare", "select * from Clean;"); code != http.StatusUnprocessableEntity {
		t.Fatalf("non-prepare on /prepare: status %d", code)
	}
	// /stats lists the prepared statements.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Prepared) != 2 {
		t.Fatalf("stats.Prepared = %v, want 2 names", st.Prepared)
	}
}

// BenchmarkPreparedVsExec compares parse-per-request /exec with cached
// /execute for the same analytical query — the prepared path must stay
// well ahead (wsabench TXN pins the ratio).
func BenchmarkPreparedVsExec(b *testing.B) {
	cat := store.FromComplete([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	ts := serveCat(b, cat)
	defer ts.Close()
	if code, out := post(b, ts.URL+"/exec",
		"create table Clean as select * from Census repair by key SSN;"); code != http.StatusOK {
		b.Fatalf("setup: %d %s", code, out)
	}
	query := analyticalQuery()
	if code, out := post(b, ts.URL+"/prepare", "prepare q as "+query); code != http.StatusOK {
		b.Fatalf("prepare: %d %s", code, out)
	}
	b.Run("exec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if code, _ := post(b, ts.URL+"/exec", query); code != http.StatusOK {
				b.Fatal("exec failed")
			}
		}
	})
	b.Run("execute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if code, _ := post(b, ts.URL+"/execute", "q"); code != http.StatusOK {
				b.Fatal("execute failed")
			}
		}
	})
}

// analyticalQuery builds a wordy fragment select whose per-request cost
// is dominated by parsing and compilation — the shape /prepare+/execute
// exists to amortize.
func analyticalQuery() string {
	var b strings.Builder
	b.WriteString("select certain Name from Clean where ")
	for i := 0; i < 48; i++ {
		if i > 0 {
			b.WriteString(" or ")
		}
		fmt.Fprintf(&b, "POB = 'C%d'", i)
	}
	b.WriteString(";")
	return b.String()
}
