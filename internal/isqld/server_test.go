package isqld

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/store"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

func censusServer(t testing.TB, n, dups int) *httptest.Server {
	t.Helper()
	cat := store.FromComplete([]string{"Census"},
		[]*relation.Relation{datagen.Census(n, dups, 7)})
	ts := httptest.NewServer(New(cat).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t testing.TB, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(out)
}

// TestSmokeScriptGolden runs the CI smoke script — the same file the
// workflow posts at a live server — and pins the full response. The
// paper's census demo: 4 repairs, certain/possible facts.
func TestSmokeScriptGolden(t *testing.T) {
	cat := store.FromComplete([]string{"Census"}, []*relation.Relation{datagen.PaperCensus()})
	ts := httptest.NewServer(New(cat).Handler())
	defer ts.Close()
	script, err := os.ReadFile(filepath.Join("testdata", "smoke.isql"))
	if err != nil {
		t.Fatal(err)
	}
	code, got := post(t, ts.URL+"/exec", string(script))
	if code != http.StatusOK {
		t.Fatalf("status %d\n%s", code, got)
	}
	golden := filepath.Join("testdata", "smoke.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run 'go test -update ./internal/isqld'): %v", err)
	}
	if got != string(want) {
		t.Fatalf("smoke output differs\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestConcurrentReadersIdentical is the serving-path acceptance check:
// after materializing the 2^40-world census repair, N concurrent
// clients issue certain-answer queries against the shared catalog and
// must receive byte-identical responses (run under -race in CI).
func TestConcurrentReadersIdentical(t *testing.T) {
	ts := censusServer(t, 120, 40)
	code, out := post(t, ts.URL+"/exec",
		"create table Clean as select * from Census repair by key SSN;")
	if code != http.StatusOK {
		t.Fatalf("materializing: %d\n%s", code, out)
	}
	if !strings.Contains(out, "1099511627776 world(s)") {
		t.Fatalf("expected a 2^40-world catalog, got\n%s", out)
	}
	const readers, rounds = 8, 4
	query := "select certain Name from Clean where POB = 'NYC';"
	results := make([]string, readers)
	errs := make([]error, readers)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var b strings.Builder
			for i := 0; i < rounds; i++ {
				resp, err := http.Post(ts.URL+"/exec", "text/plain", strings.NewReader(query))
				if err != nil {
					errs[g] = err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs[g] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[g] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
				b.Write(body)
			}
			results[g] = b.String()
		}(g)
	}
	wg.Wait()
	for g := 0; g < readers; g++ {
		if errs[g] != nil {
			t.Fatalf("reader %d: %v", g, errs[g])
		}
		if results[g] != results[0] {
			t.Fatalf("reader %d response differs from reader 0", g)
		}
	}
	if !strings.Contains(results[0], "answer") {
		t.Fatalf("readers got no answers:\n%s", results[0])
	}
}

// TestConcurrentWritersSerialize: concurrent DML requests all commit
// (single-writer serialization), and the final state reflects every
// insert exactly once.
func TestConcurrentWritersSerialize(t *testing.T) {
	cat := store.New(nil)
	ts := httptest.NewServer(New(cat).Handler())
	defer ts.Close()
	if code, out := post(t, ts.URL+"/exec", "create table T (A);"); code != http.StatusOK {
		t.Fatalf("create: %d %s", code, out)
	}
	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/exec", "text/plain",
				strings.NewReader(fmt.Sprintf("insert into T values (%d);", g)))
			if err != nil {
				errs[g] = err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[g] = fmt.Errorf("status %d", resp.StatusCode)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", g, err)
		}
	}
	code, out := post(t, ts.URL+"/exec", "select count(*) as N from T;")
	if code != http.StatusOK || !strings.Contains(out, fmt.Sprintf("%d", writers)) {
		t.Fatalf("final count missing %d:\n%s", writers, out)
	}
}

// TestStatementErrorReported: a bad statement yields HTTP 422 with the
// error in the body, after the successful prefix.
func TestStatementErrorReported(t *testing.T) {
	ts := censusServer(t, 10, 1)
	code, out := post(t, ts.URL+"/exec", "select certain Name from Census; select * from Missing;")
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422\n%s", code, out)
	}
	if !strings.Contains(out, "error:") || !strings.Contains(out, "Missing") {
		t.Fatalf("error not reported:\n%s", out)
	}
}

// TestStatsEndpoint checks /stats and /healthz.
func TestStatsEndpoint(t *testing.T) {
	ts := censusServer(t, 50, 10)
	if code, out := post(t, ts.URL+"/exec",
		"create table Clean as select * from Census repair by key SSN; create view V as select Name from Clean;"); code != http.StatusOK {
		t.Fatalf("setup: %d %s", code, out)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Worlds != "1024" { // 2^10
		t.Fatalf("stats worlds = %s, want 1024", st.Worlds)
	}
	if len(st.Relations) != 2 || len(st.Views) != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Version < 2 {
		t.Fatalf("version %d, want ≥ 2 after two commits", st.Version)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hr.StatusCode)
	}
}

// BenchmarkReaderThroughput measures concurrent certain-answer queries
// against a shared 2^40-world catalog — the serving-path headline
// number (compare with enumerating 10^12 worlds per request).
func BenchmarkReaderThroughput(b *testing.B) {
	cat := store.FromComplete([]string{"Census"},
		[]*relation.Relation{datagen.Census(1000, 40, 7)})
	ts := httptest.NewServer(New(cat).Handler())
	defer ts.Close()
	if code, out := post(b, ts.URL+"/exec",
		"create table Clean as select * from Census repair by key SSN;"); code != http.StatusOK {
		b.Fatalf("materializing: %d %s", code, out)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/exec", "text/plain",
				strings.NewReader("select certain POB from Clean;"))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
}
