package isqld

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"worldsetdb/internal/isql"
	"worldsetdb/internal/store"
)

// TestBackgroundSweepEvictsIdleTxn: an abandoned sticky transaction is
// rolled back by the background sweeper with NO further request
// arriving — the quiet-server case the in-request eviction alone cannot
// cover (its staging snapshot would stay pinned indefinitely).
func TestBackgroundSweepEvictsIdleTxn(t *testing.T) {
	cat := store.New(nil)
	srv := New(cat, WithSessionTTL(30*time.Millisecond))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, out := post(t, ts.URL+"/exec", "create table T (A);"); code != http.StatusOK {
		t.Fatalf("setup: %d %s", code, out)
	}
	if code, out := postSession(t, ts.URL+"/exec", "tok", "begin; insert into T values (1);"); code != http.StatusOK {
		t.Fatalf("begin: %d %s", code, out)
	}
	srv.mu.Lock()
	live := len(srv.sessions)
	srv.mu.Unlock()
	if live != 1 {
		t.Fatalf("sticky session not registered: %d live", live)
	}
	// No requests from here on: only the sweeper can evict.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		live = len(srv.sessions)
		srv.mu.Unlock()
		if live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background sweep never evicted the idle session (%d live)", live)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The evicted transaction was rolled back, not committed.
	if code, out := post(t, ts.URL+"/exec", "select count(*) as N from T;"); code != http.StatusOK || !strings.Contains(out, "\n0\n") {
		t.Fatalf("evicted transaction leaked: %d\n%s", code, out)
	}
}

// TestConcurrentTxnWritersRetry: BEGIN/COMMIT scripts from concurrent
// stateless clients conflict under first-committer-wins; with the
// server's automatic retry every script must succeed and every row
// land (run under -race in CI). The catalog is WAL-backed so group
// commit is live: a retry must wait for the winner's coalesced fsync
// to publish, not spin its budget against the in-flight version.
func TestConcurrentTxnWritersRetry(t *testing.T) {
	dir := t.TempDir()
	cat, wal, err := isql.OpenStore(filepath.Join(dir, "checkpoint.wsd"), filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	srv := New(cat, WithTxnRetries(32))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, out := post(t, ts.URL+"/exec", "create table T (A, B);"); code != http.StatusOK {
		t.Fatalf("setup: %d %s", code, out)
	}
	const writers = 8
	var wg sync.WaitGroup
	fails := make([]string, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			script := fmt.Sprintf("begin; insert into T values (%d, %d); insert into T values (%d, %d); commit;",
				g, 1, g, 2)
			code, out := post(t, ts.URL+"/exec", script)
			if code != http.StatusOK {
				fails[g] = fmt.Sprintf("status %d: %s", code, out)
			}
		}(g)
	}
	wg.Wait()
	for g, f := range fails {
		if f != "" {
			t.Fatalf("writer %d failed despite retry: %s", g, f)
		}
	}
	code, out := post(t, ts.URL+"/exec", "select count(*) as N from T;")
	if code != http.StatusOK || !strings.Contains(out, fmt.Sprintf("\n%d\n", writers*2)) {
		t.Fatalf("want %d rows after concurrent transactional writers, got:\n%s", writers*2, out)
	}
}

// TestConcurrentTxnWritersNoRetrySurfacesConflict: without retries at
// least one of the racing transactions must lose (sanity check that the
// retry test is actually exercising conflicts).
func TestConcurrentTxnWritersNoRetrySurfacesConflict(t *testing.T) {
	cat := store.New(nil)
	srv := New(cat) // retries disabled
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, out := post(t, ts.URL+"/exec", "create table T (A);"); code != http.StatusOK {
		t.Fatalf("setup: %d %s", code, out)
	}
	const writers = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	conflicts := 0
	// A barrier start maximizes overlap so at least one conflict is all
	// but certain with 8 writers × 3 transactions.
	for round := 0; round < 3 && conflicts == 0; round++ {
		start := make(chan struct{})
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				code, out := post(t, ts.URL+"/exec",
					fmt.Sprintf("begin; insert into T values (%d); commit;", g))
				if code != http.StatusOK && strings.Contains(out, "conflict") {
					mu.Lock()
					conflicts++
					mu.Unlock()
				}
			}(g)
		}
		close(start)
		wg.Wait()
	}
	if conflicts == 0 {
		t.Skip("no conflict materialized in 3 rounds (single-core scheduling); nothing to assert")
	}
}
