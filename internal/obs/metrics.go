package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotone atomic counter. The zero value is ready to use;
// a nil *Counter is a no-op.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram bucket layout: power-of-two nanosecond boundaries starting
// at 256ns. Bucket i < histBuckets-1 holds durations whose nanosecond
// count fits in histMinShift+i bits (≤ 2^(histMinShift+i) - 1); the
// last bucket is the +Inf overflow. 28 buckets span 256ns to ~34s —
// fsyncs, operator evaluations and whole-request latencies all land in
// range with ~2x resolution, enough for p50/p95/p99 at fixed size.
const (
	histBuckets  = 28
	histMinShift = 8
)

// Histogram is a fixed-bucket latency histogram safe for concurrent
// Observe. The zero value is ready to use — it embeds by value into
// hot-path structs (WAL, shard state) with no constructor and no
// allocation. A nil *Histogram is a no-op.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
	buckets [histBuckets]atomic.Uint64
}

func bucketIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns)) - histMinShift
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// BucketBound returns the inclusive upper bound of bucket i; the last
// bucket is unbounded and reports the largest finite boundary (its
// Prometheus exposition uses +Inf).
func BucketBound(i int) time.Duration {
	if i >= histBuckets-1 {
		i = histBuckets - 1
	}
	return time.Duration(uint64(1)<<(histMinShift+i)) - 1
}

// NumBuckets reports the fixed bucket count.
func NumBuckets() int { return histBuckets }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	h.count.Add(1)
	if ns > 0 {
		h.sum.Add(uint64(ns))
	}
	h.buckets[bucketIndex(ns)].Add(1)
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// HistSnapshot is a point-in-time copy of a histogram's state.
type HistSnapshot struct {
	Count   uint64
	SumNs   uint64
	Buckets [histBuckets]uint64
}

// Snapshot copies the histogram's counters. Concurrent observers may
// land between the loads; each bucket value is individually exact.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding the q*count-th observation — an overestimate by at
// most one bucket width (~2x). Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}

// Quantile on a snapshot (same estimate as Histogram.Quantile).
func (s HistSnapshot) Quantile(q float64) time.Duration {
	total := uint64(0)
	for _, b := range s.Buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	cum := uint64(0)
	for i, b := range s.Buckets {
		cum += b
		if cum >= target {
			return BucketBound(i)
		}
	}
	return BucketBound(histBuckets - 1)
}
