package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatalf("nil span Child = %v, want nil", c)
	}
	s.End()
	s.Set("k", "v").SetInt("n", 1)
	s.Event("e")
	s.ChildSpan("y", time.Now(), time.Second)
	s.Release()
	if got := s.Render(); got != "" {
		t.Fatalf("nil Render = %q", got)
	}
	if b, err := s.MarshalJSON(); err != nil || string(b) != "null" {
		t.Fatalf("nil MarshalJSON = %s, %v", b, err)
	}
}

func TestSpanTreeRender(t *testing.T) {
	root := NewTrace("stmt")
	p := root.Child("parse")
	p.End()
	e := root.Child("exec")
	e.SetInt("components", 3)
	e.Event("merge").Set("op", "product").SetInt("cost", 16)
	e.End()
	root.ChildSpan("wal.fsync", time.Now(), 5*time.Millisecond).SetInt("batch", 2)
	root.End()

	got := NormalizeDurations(root.Render())
	want := strings.Join([]string{
		"stmt t=X",
		"  parse t=X",
		"  exec t=X components=3",
		"    merge t=X op=product cost=16",
		"  wal.fsync t=X batch=2",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("render mismatch:\n%s\nwant:\n%s", got, want)
	}

	b, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var js struct {
		Name     string `json:"name"`
		DurNs    int64  `json:"dur_ns"`
		Children []struct {
			Name string `json:"name"`
		} `json:"children"`
	}
	if err := json.Unmarshal(b, &js); err != nil {
		t.Fatal(err)
	}
	if js.Name != "stmt" || len(js.Children) != 3 || js.Children[1].Name != "exec" {
		t.Fatalf("json tree mismatch: %s", b)
	}
	root.Release()
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(2 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 < 500*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Fatalf("p50 = %v, want ~512ns bucket bound", p50)
	}
	if p99 < 2*time.Millisecond || p99 > 8*time.Millisecond {
		t.Fatalf("p99 = %v, want ~2-4ms bucket bound", p99)
	}
	if h.Sum() != 90*500*time.Nanosecond+10*2*time.Millisecond {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamps into bucket 0
	h.Observe(0)
	h.Observe(time.Hour) // clamps into the overflow bucket
	s := h.Snapshot()
	if s.Buckets[0] != 2 || s.Buckets[histBuckets-1] != 1 {
		t.Fatalf("bucket clamp mismatch: %v", s.Buckets)
	}
}

// TestConcurrentMetrics hammers counters, histograms and one shared
// trace from concurrent writers; run with -race this pins the
// instrumentation as data-race-free (the flush-leader cross-goroutine
// span attach is the real-world analogue).
func TestConcurrentMetrics(t *testing.T) {
	var h Histogram
	var c Counter
	root := NewTrace("concurrent")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					sp := root.Child("work")
					sp.SetInt("worker", int64(w))
					sp.End()
				}
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter=%d hist=%d, want 8000", c.Value(), h.Count())
	}
	if n := len(root.Children()); n != 80 {
		t.Fatalf("children = %d, want 80", n)
	}
	var p Prom
	p.Counter("test_total", "test", "", c.Value())
	p.Histogram("test_seconds", "test", "", h.Snapshot())
	if err := LintProm(p.Bytes()); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestPromExposition(t *testing.T) {
	var h Histogram
	h.Observe(300 * time.Nanosecond)
	h.Observe(3 * time.Millisecond)
	var p Prom
	p.Counter("wsdb_commits_total", "Commits.", Label("shard", "0"), 42)
	p.Counter("wsdb_commits_total", "Commits.", Label("shard", "1"), 7)
	p.Gauge("wsdb_components", "Components.", "", 12)
	p.Histogram("wsdb_fsync_seconds", "Fsync latency.", Label("shard", "0"), h.Snapshot())
	out := p.Bytes()

	if err := LintProm(out); err != nil {
		t.Fatalf("lint rejects builder output: %v\n%s", err, out)
	}
	text := string(out)
	if strings.Count(text, "# TYPE wsdb_commits_total counter") != 1 {
		t.Fatalf("TYPE header not emitted exactly once:\n%s", text)
	}
	for _, want := range []string{
		`wsdb_commits_total{shard="0"} 42`,
		`wsdb_commits_total{shard="1"} 7`,
		"wsdb_components 12",
		`wsdb_fsync_seconds_bucket{shard="0",le="+Inf"} 2`,
		`wsdb_fsync_seconds_count{shard="0"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
	for _, name := range []string{"wsdb_commits_total", "wsdb_components", "wsdb_fsync_seconds"} {
		if !HasSeries(out, name) {
			t.Fatalf("HasSeries(%s) = false", name)
		}
	}
	if HasSeries(out, "wsdb_missing") {
		t.Fatal("HasSeries reports a series that is not there")
	}
}

func TestLintPromRejects(t *testing.T) {
	bad := []struct{ name, text string }{
		{"sample before TYPE", "foo 1\n"},
		{"garbage line", "# TYPE foo counter\nfoo{ 1\n"},
		{"bad value", "# TYPE foo counter\nfoo eleven\n"},
		{"unknown type", "# TYPE foo widget\nfoo 1\n"},
		{"incomplete histogram", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 1\nh_sum 0\nh_count 1\n"},
	}
	for _, tc := range bad {
		if err := LintProm([]byte(tc.text)); err == nil {
			t.Errorf("%s: lint accepted:\n%s", tc.name, tc.text)
		}
	}
	if err := LintProm([]byte("# a free comment\n# TYPE ok counter\nok{a=\"b\",c=\"d\"} 5\n")); err != nil {
		t.Errorf("lint rejected valid text: %v", err)
	}
}
