package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Prom accumulates metrics in the Prometheus text exposition format
// (version 0.0.4): one HELP/TYPE header pair per metric name, samples
// below it. Emit samples for one name contiguously — the builder writes
// the header the first time a name appears.
type Prom struct {
	buf   bytes.Buffer
	typed map[string]string
}

func (p *Prom) header(name, help, typ string) {
	if p.typed == nil {
		p.typed = map[string]string{}
	}
	if _, ok := p.typed[name]; ok {
		return
	}
	p.typed[name] = typ
	fmt.Fprintf(&p.buf, "# HELP %s %s\n", name, help)
	fmt.Fprintf(&p.buf, "# TYPE %s %s\n", name, typ)
}

func sample(b *bytes.Buffer, name, labels string, val string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(val)
	b.WriteByte('\n')
}

// Counter emits one counter sample. labels is the rendered label list
// without braces (e.g. `shard="0"`), "" for none.
func (p *Prom) Counter(name, help, labels string, v uint64) {
	p.header(name, help, "counter")
	sample(&p.buf, name, labels, strconv.FormatUint(v, 10))
}

// Gauge emits one gauge sample.
func (p *Prom) Gauge(name, help, labels string, v float64) {
	p.header(name, help, "gauge")
	sample(&p.buf, name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

// Histogram emits one histogram series (cumulative le buckets in
// seconds, +Inf, _sum, _count) from a snapshot.
func (p *Prom) Histogram(name, help, labels string, s HistSnapshot) {
	p.header(name, help, "histogram")
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i := 0; i < histBuckets-1; i++ {
		cum += s.Buckets[i]
		le := strconv.FormatFloat(float64(BucketBound(i)+1)/1e9, 'g', -1, 64)
		sample(&p.buf, name+"_bucket", labels+sep+`le="`+le+`"`, strconv.FormatUint(cum, 10))
	}
	cum += s.Buckets[histBuckets-1]
	sample(&p.buf, name+"_bucket", labels+sep+`le="+Inf"`, strconv.FormatUint(cum, 10))
	sample(&p.buf, name+"_sum", labels, strconv.FormatFloat(float64(s.SumNs)/1e9, 'g', -1, 64))
	sample(&p.buf, name+"_count", labels, strconv.FormatUint(s.Count, 10))
}

// HistogramRaw emits one histogram series whose observations are raw
// unit counts (bytes, pages, rows) rather than durations: bucket bounds
// and the sum are reported in the recorded unit instead of being scaled
// to seconds. The snapshot must come from a Histogram that observed
// raw values cast to time.Duration.
func (p *Prom) HistogramRaw(name, help, labels string, s HistSnapshot) {
	p.header(name, help, "histogram")
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i := 0; i < histBuckets-1; i++ {
		cum += s.Buckets[i]
		le := strconv.FormatInt(int64(BucketBound(i))+1, 10)
		sample(&p.buf, name+"_bucket", labels+sep+`le="`+le+`"`, strconv.FormatUint(cum, 10))
	}
	cum += s.Buckets[histBuckets-1]
	sample(&p.buf, name+"_bucket", labels+sep+`le="+Inf"`, strconv.FormatUint(cum, 10))
	sample(&p.buf, name+"_sum", labels, strconv.FormatUint(s.SumNs, 10))
	sample(&p.buf, name+"_count", labels, strconv.FormatUint(s.Count, 10))
}

// Bytes returns the accumulated exposition text.
func (p *Prom) Bytes() []byte { return p.buf.Bytes() }

// Label escapes a label value and renders one key="value" pair.
func Label(key, val string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return key + `="` + r.Replace(val) + `"`
}

var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)( \d+)?$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// LintProm validates Prometheus text exposition data: well-formed HELP/
// TYPE comments, TYPE declared before a name's first sample, parseable
// sample lines and values, and complete histogram series (a +Inf
// bucket, _sum and _count for every TYPE histogram name). CI runs it
// against the live /metrics output and fails the smoke job on any
// error.
func LintProm(data []byte) error {
	types := map[string]string{}
	seen := map[string]bool{}
	histSuffix := map[string]map[string]bool{} // base name -> suffixes seen
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !promNameRe.MatchString(name) {
				return fmt.Errorf("line %d: bad metric name %q in %s comment", lineno, name, fields[1])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE comment missing type", lineno)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q for %s", lineno, fields[3], name)
				}
				if seen[name] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineno, name)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineno, name)
				}
				types[name] = fields[3]
				if fields[3] == "histogram" {
					histSuffix[name] = map[string]bool{}
				}
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: unparseable sample line %q", lineno, line)
		}
		name, labels, val := m[1], m[3], m[4]
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				if !promLabelRe.MatchString(pair) {
					return fmt.Errorf("line %d: bad label %q", lineno, pair)
				}
			}
		}
		if _, err := strconv.ParseFloat(strings.TrimPrefix(val, "+"), 64); err != nil && val != "+Inf" && val != "-Inf" && val != "NaN" {
			return fmt.Errorf("line %d: unparseable value %q", lineno, val)
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && types[trimmed] == "histogram" {
				base = trimmed
				histSuffix[base][suf] = true
				if suf == "_bucket" {
					if !strings.Contains(labels, `le="`) {
						return fmt.Errorf("line %d: histogram bucket %s without le label", lineno, name)
					}
					if strings.Contains(labels, `le="+Inf"`) {
						histSuffix[base]["+Inf"] = true
					}
				}
				break
			}
		}
		if base == name {
			if _, ok := types[name]; !ok {
				return fmt.Errorf("line %d: sample for %s before its TYPE", lineno, name)
			}
		}
		seen[base] = true
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for name := range histSuffix {
		if !seen[name] {
			continue // declared but no samples: legal
		}
		for _, want := range []string{"_bucket", "+Inf", "_sum", "_count"} {
			if !histSuffix[name][want] {
				return fmt.Errorf("histogram %s incomplete: missing %s", name, want)
			}
		}
	}
	return nil
}

// splitLabels splits a rendered label list on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// HasSeries reports whether the exposition data contains at least one
// sample line for the metric name (exact name or histogram/summary
// component of it). CI uses it for required-series checks.
func HasSeries(data []byte, name string) bool {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || strings.TrimSpace(line) == "" {
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		got := m[1]
		if got == name || got == name+"_bucket" || got == name+"_sum" || got == name+"_count" {
			return true
		}
	}
	return false
}
