// Package obs is the engine's low-overhead observability layer:
// monotonic-clock span traces for per-statement attribution (parse →
// rewrite → per-operator evaluation → commit → fsync), atomic counters
// and fixed-bucket latency histograms for aggregation, and a Prometheus
// text exporter with a lint-grade validator for CI.
//
// Everything is built to cost nothing when disabled: a nil *Span is a
// valid no-op receiver for every method, so instrumented code paths
// carry a single nil pointer and never branch into allocation, and
// Histogram/Counter are zero-value-usable atomics that embed by value
// into existing structs (the WAL, shard states) without constructors.
package obs

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one key=value annotation on a span.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Span is one timed region of a statement's execution. Spans form a
// tree: the root is the statement, children are stages (parse, compile,
// exec, commit) and operator evaluations. A nil *Span is the disabled
// tracer — every method is a no-op on it — so call sites thread one
// pointer unconditionally.
//
// The mutex guards children and attrs: the group-commit flush leader
// attaches wal.queue/wal.fsync spans to a committer's trace from its
// own goroutine (the done-channel handoff orders the attach before the
// committer reads the tree).
type Span struct {
	Name  string
	Start time.Time
	Dur   time.Duration

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	ended    bool
}

var spanPool = sync.Pool{New: func() any { return new(Span) }}

func newSpan(name string, start time.Time) *Span {
	s := spanPool.Get().(*Span)
	s.Name, s.Start, s.Dur = name, start, 0
	s.attrs, s.children, s.ended = s.attrs[:0], s.children[:0], false
	return s
}

// NewTrace starts a root span. Callers that decide tracing is off pass
// the nil *Span instead and the whole tree never allocates.
func NewTrace(name string) *Span { return newSpan(name, time.Now()) }

// Release returns the span tree to the pool. Call only once the trace
// is fully rendered/serialized and no reference escapes (the EXPLAIN
// ANALYZE and slow-query paths call it after emitting).
func (s *Span) Release() {
	if s == nil {
		return
	}
	for _, c := range s.children {
		c.Release()
	}
	s.children = s.children[:0]
	s.attrs = s.attrs[:0]
	spanPool.Put(s)
}

// Child starts a sub-span now. End it with End.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name, time.Now())
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ChildSpan attaches an already-measured interval as a completed child
// — the group-commit flush leader uses it to stamp a committer's queue
// wait and fsync share from outside the committer's goroutine.
func (s *Span) ChildSpan(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name, start)
	c.Dur, c.ended = d, true
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Event records an instantaneous annotated child (merge records, plan
// decisions) — rendered like a span with zero duration.
func (s *Span) Event(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name, time.Now())
	c.ended = true
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stops the span's clock. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.Dur = time.Since(s.Start)
		s.ended = true
	}
	s.mu.Unlock()
}

// Set annotates the span.
func (s *Span) Set(key, val string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, val})
	s.mu.Unlock()
	return s
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) *Span {
	return s.Set(key, strconv.FormatInt(v, 10))
}

// Duration returns the span's measured duration (0 while running).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Dur
}

// Render formats the span tree, one span per line, indented by depth:
//
//	stmt t=1.2ms
//	  parse t=80µs
//	  exec t=900µs op=select
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.render(&b, 0)
	return b.String()
}

func (s *Span) render(b *strings.Builder, depth int) {
	s.mu.Lock()
	name, dur := s.Name, s.Dur
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(name)
	fmt.Fprintf(b, " t=%s", dur.Round(time.Nanosecond))
	for _, a := range attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Val)
	}
	b.WriteByte('\n')
	for _, c := range children {
		c.render(b, depth+1)
	}
}

var durRe = regexp.MustCompile(`(^|[ ])t=[^ \n]+`)

// NormalizeDurations replaces every rendered t=<duration> with t=X so
// golden tests pin the tree shape and annotations, not the timings.
func NormalizeDurations(rendered string) string {
	return durRe.ReplaceAllString(rendered, "${1}t=X")
}

// jsonSpan is the slow-query-log serialization of a span tree.
type jsonSpan struct {
	Name     string            `json:"name"`
	DurNs    int64             `json:"dur_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []jsonSpan        `json:"children,omitempty"`
}

func (s *Span) toJSON() jsonSpan {
	s.mu.Lock()
	js := jsonSpan{Name: s.Name, DurNs: s.Dur.Nanoseconds()}
	if len(s.attrs) > 0 {
		js.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			js.Attrs[a.Key] = a.Val
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		js.Children = append(js.Children, c.toJSON())
	}
	return js
}

// MarshalJSON serializes the span tree (slow-query log lines).
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	return json.Marshal(s.toJSON())
}

// SortedAttrs returns the span's annotations sorted by key (tests).
func (s *Span) SortedAttrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := append([]Attr(nil), s.attrs...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Children returns the span's direct children (tests, log walkers).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}
