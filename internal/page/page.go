// Package page defines the fixed-size on-disk page frame of the paged
// storage engine (format v2). A page file is an array of Size-byte
// frames; every frame carries a small header — kind, payload length,
// the id of the next page in its chain, and a CRC over header and
// payload — so torn or garbage frames are detected on read and an
// object larger than one page is stored as a singly linked page chain.
//
// The package is deliberately dumb: it frames bytes, nothing more.
// Allocation, chains, directories and checkpoint atomicity live in
// internal/store's PageStore; caching and eviction in internal/bufpool.
package page

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// Size is the fixed page size in bytes.
	Size = 8192
	// HeaderLen is the framing overhead per page: kind (1 byte), three
	// reserved padding bytes, payload length (4), next page id (8) and
	// CRC-32 (4).
	HeaderLen = 20
	// MaxPayload is the payload capacity of one page.
	MaxPayload = Size - HeaderLen
)

// Kind tags what a page holds.
type Kind uint8

const (
	// KindFree marks an unused frame (also the zero value of fresh
	// file space, which never carries a valid CRC).
	KindFree Kind = iota
	// KindMeta is one of the two alternating checkpoint-commit slots
	// (pages 0 and 1 of a page file).
	KindMeta
	// KindDir is a directory chain page: the object table of one
	// durable checkpoint epoch.
	KindDir
	// KindData is an object chain page: certain-relation rows or
	// component alternatives.
	KindData
)

func (k Kind) String() string {
	switch k {
	case KindFree:
		return "free"
	case KindMeta:
		return "meta"
	case KindDir:
		return "dir"
	case KindData:
		return "data"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Layout of a frame:
//
//	[0]     kind
//	[1:4]   reserved (zero)
//	[4:8]   payload length, little endian
//	[8:16]  next page id, little endian (0 = end of chain; page 0 is a
//	        meta slot and can never be chain-linked)
//	[16:20] CRC-32 (IEEE) of bytes [0:16] and the payload
//	[20:]   payload
const (
	offKind    = 0
	offLen     = 4
	offNext    = 8
	offCRC     = 16
	offPayload = HeaderLen
)

// Encode frames payload into buf (which must be exactly Size bytes):
// header, CRC, payload, zero fill. The payload must fit MaxPayload.
func Encode(buf []byte, kind Kind, next uint64, payload []byte) error {
	if len(buf) != Size {
		return fmt.Errorf("page: Encode into %d-byte buffer (want %d)", len(buf), Size)
	}
	if len(payload) > MaxPayload {
		return fmt.Errorf("page: %d-byte payload exceeds page capacity %d", len(payload), MaxPayload)
	}
	buf[offKind] = byte(kind)
	buf[1], buf[2], buf[3] = 0, 0, 0
	binary.LittleEndian.PutUint32(buf[offLen:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[offNext:], next)
	copy(buf[offPayload:], payload)
	for i := offPayload + len(payload); i < Size; i++ {
		buf[i] = 0
	}
	crc := crc32.NewIEEE()
	crc.Write(buf[:offCRC])
	crc.Write(buf[offPayload : offPayload+len(payload)])
	binary.LittleEndian.PutUint32(buf[offCRC:], crc.Sum32())
	return nil
}

// Decode validates the frame in buf and returns its kind, next pointer
// and payload. The payload aliases buf — callers that outlive the
// buffer must copy. A CRC mismatch (torn write, garbage, or a
// never-written frame) is an error.
func Decode(buf []byte) (Kind, uint64, []byte, error) {
	if len(buf) != Size {
		return 0, 0, nil, fmt.Errorf("page: Decode of %d-byte buffer (want %d)", len(buf), Size)
	}
	n := binary.LittleEndian.Uint32(buf[offLen:])
	if n > MaxPayload {
		return 0, 0, nil, fmt.Errorf("page: payload length %d exceeds capacity %d", n, MaxPayload)
	}
	crc := crc32.NewIEEE()
	crc.Write(buf[:offCRC])
	crc.Write(buf[offPayload : offPayload+int(n)])
	if got, want := binary.LittleEndian.Uint32(buf[offCRC:]), crc.Sum32(); got != want {
		return 0, 0, nil, fmt.Errorf("page: CRC mismatch (got %08x, want %08x)", got, want)
	}
	kind := Kind(buf[offKind])
	next := binary.LittleEndian.Uint64(buf[offNext:])
	return kind, next, buf[offPayload : offPayload+int(n)], nil
}

// Chunks splits an object's bytes into per-page payloads. Every object
// occupies at least one page, so an empty object still gets a frame
// (its directory entry needs a head page to point at).
func Chunks(data []byte) [][]byte {
	if len(data) == 0 {
		return [][]byte{nil}
	}
	var out [][]byte
	for len(data) > 0 {
		n := len(data)
		if n > MaxPayload {
			n = MaxPayload
		}
		out = append(out, data[:n])
		data = data[n:]
	}
	return out
}
