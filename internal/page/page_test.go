package page

import (
	"bytes"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	buf := make([]byte, Size)
	payload := []byte(`{"hello":"world"}`)
	if err := Encode(buf, KindData, 42, payload); err != nil {
		t.Fatal(err)
	}
	kind, next, got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindData || next != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: kind=%v next=%d payload=%q", kind, next, got)
	}
}

func TestDecodeEmptyPayload(t *testing.T) {
	buf := make([]byte, Size)
	if err := Encode(buf, KindDir, 0, nil); err != nil {
		t.Fatal(err)
	}
	kind, next, got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindDir || next != 0 || len(got) != 0 {
		t.Fatalf("empty round trip: kind=%v next=%d len=%d", kind, next, len(got))
	}
}

func TestEncodeRejectsOversizedPayload(t *testing.T) {
	buf := make([]byte, Size)
	if err := Encode(buf, KindData, 0, make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if err := Encode(buf, KindData, 0, make([]byte, MaxPayload)); err != nil {
		t.Fatalf("max payload rejected: %v", err)
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	buf := make([]byte, Size)
	if err := Encode(buf, KindData, 7, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit.
	buf[offPayload] ^= 1
	if _, _, _, err := Decode(buf); err == nil {
		t.Fatal("corrupt payload decoded")
	}
	buf[offPayload] ^= 1
	// Flip a header bit (the next pointer).
	buf[offNext] ^= 1
	if _, _, _, err := Decode(buf); err == nil {
		t.Fatal("corrupt header decoded")
	}
}

func TestDecodeRejectsZeroFrame(t *testing.T) {
	// A never-written frame is all zeros; its CRC field (0) must not
	// accidentally validate. CRC-32 IEEE of 16 zero bytes is nonzero.
	if _, _, _, err := Decode(make([]byte, Size)); err == nil {
		t.Fatal("all-zero frame decoded as valid")
	}
}

func TestChunks(t *testing.T) {
	if got := Chunks(nil); len(got) != 1 || got[0] != nil {
		t.Fatalf("empty object: %v", got)
	}
	data := make([]byte, MaxPayload*2+5)
	got := Chunks(data)
	if len(got) != 3 || len(got[0]) != MaxPayload || len(got[1]) != MaxPayload || len(got[2]) != 5 {
		t.Fatalf("chunk sizes: %d %d", len(got), len(got[len(got)-1]))
	}
	if got = Chunks(make([]byte, MaxPayload)); len(got) != 1 {
		t.Fatalf("exact-fit object split into %d chunks", len(got))
	}
}
