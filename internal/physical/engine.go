package physical

import "worldsetdb/internal/wsa"

func init() {
	// The dedicated physical operators are one of the four evaluation
	// engines; see the engine registry in package wsa.
	wsa.RegisterEngine("physical", EvalWorldSet)
}

// CanEval reports whether this engine supports every operator of q.
// Repair-by-key requires world enumeration (Proposition 4.2), which the
// inlined representation cannot express without blowup, so queries
// containing it must go to the reference evaluator. The factorized
// engine in internal/wsdexec keys its fallback choice on this: when an
// operator entangles decomposition components it enumerates the input
// and hands the query to the fastest engine that can run it.
func CanEval(q wsa.Expr) bool {
	ok := true
	wsa.Walk(q, func(n wsa.Expr) {
		if _, isRepair := n.(*wsa.RepairKey); isRepair {
			ok = false
		}
	})
	return ok
}
