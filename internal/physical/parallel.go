package physical

import (
	"worldsetdb/internal/relation"
)

// Parallel execution model
//
// Every dedicated operator partitions its input tuples by the FNV-1a
// digest of the tuple's world-id projection, modulo the partition count
// (a full-tuple digest for plain set operations). Because equal values
// hash equally, all tuples of one world — and all duplicates of one
// tuple — land in the same partition, so partitions are processed fully
// independently: no locks, no shared mutable state. Each worker
// deduplicates within its partition; the merge then appends partitions
// back-to-back in partition order 0..P-1 with relation.InsertDistinct
// (cross-partition duplicates are impossible by construction). The
// result relation is a set, so its contents — and hence the sorted
// Tuples()/Render() output — are byte-identical to a sequential run.
//
// The pool primitives and their sizing knobs (GOMAXPROCS-sized, capped
// at relation.MaxFanOut, sequential below relation.SeqThreshold,
// test-forceable via relation.ForceParts) live in relation/pool.go and
// are shared with the parallel decoder in package inline.

// numParts picks the partition count for an operator over n input
// tuples.
func numParts(n int) int { return relation.NumParts(n) }

// parallelDo runs f(p) for every partition p in [0, parts) and waits.
func parallelDo(parts int, f func(part int)) { relation.ParallelDo(parts, f) }

// parallelChunks splits [0, n) into parts contiguous chunks and runs
// f(chunk, lo, hi) for each non-empty chunk on the pool.
func parallelChunks(n, parts int, f func(chunk, lo, hi int)) {
	relation.ParallelChunks(n, parts, f)
}

// partitionBy splits r's tuples into parts slices by the digest of the
// columns at idx (nil = whole tuple), so tuples agreeing on those
// columns — in particular, all tuples of one world — land in the same
// partition.
func partitionBy(r *relation.Relation, idx []int, parts int) [][]relation.Tuple {
	out := make([][]relation.Tuple, parts)
	if parts == 1 {
		rows := make([]relation.Tuple, 0, r.Len())
		r.Each(func(t relation.Tuple) { rows = append(rows, t) })
		out[0] = rows
		return out
	}
	est := r.Len()/parts + 1
	for i := range out {
		out[i] = make([]relation.Tuple, 0, est)
	}
	r.Each(func(t relation.Tuple) {
		p := int(t.HashOn(idx) % uint64(parts))
		out[p] = append(out[p], t)
	})
	return out
}

// mergeDistinct builds a relation over schema from per-partition row
// slices whose rows are distinct within each partition and, by the
// partitioning invariant, across partitions.
func mergeDistinct(schema relation.Schema, parts [][]relation.Tuple) *relation.Relation {
	out := relation.New(schema)
	for _, rows := range parts {
		for _, t := range rows {
			out.InsertDistinct(t)
		}
	}
	return out
}
