// Package physical implements the research direction named in the
// paper's conclusion: "query plans with dedicated physical operators for
// our I-SQL constructs should perform much better than the default
// relational algebra query over the (nonsuccinct, and thus in practice
// too large) inlined representation".
//
// The executor here evaluates World-set Algebra queries directly over
// inlined representations (Definition 5.1) with specialized algorithms:
//
//   - cert is a single hash pass counting, per answer tuple, the worlds
//     it appears in (instead of the relational division of Figure 6);
//   - poss is a duplicate-eliminating projection whose result is stored
//     id-free ("appears in every world");
//   - group-worlds-by hashes each world's grouping projection to an
//     interned set signature and aggregates unions/intersections per
//     group (instead of the quadratic world-pairing construction of
//     Figure 6);
//   - choice-of extends the answer and the world table in one pass,
//     padding empty worlds with the constant c of Remark 5.5.
//
// # Parallel execution
//
// Each of these operators is world-partitioned: input tuples are split
// into P partitions by the FNV-1a digest of their world-id projection
// (full-tuple digest for plain set operations), so all tuples of one
// world land in one partition and partitions evaluate independently on
// a worker pool sized by GOMAXPROCS (capped at 16; inputs below
// SeqThreshold stay sequential). Workers share only read-only inputs;
// each deduplicates within its partition, and the merge concatenates
// partitions deterministically in partition order. Determinism
// guarantee: equal tuples hash to the same partition, so the merged
// relation is set-for-set — and after the canonical Tuples() sort,
// byte-for-byte — identical to a sequential run. See parallel.go.
//
// All hash tables key on 64-bit digests (package hashkey) with typed
// value comparison on collision — no intermediate key strings — so
// results agree tuple-for-tuple with the Figure 3 reference semantics
// (see physical_test.go and internal/difftest, which fuzz random
// queries) while avoiding both the naive evaluator's world
// materialization and the translated plans' join/division detours.
package physical

import (
	"fmt"
	"sort"
	"strings"

	"worldsetdb/internal/hashkey"
	"worldsetdb/internal/inline"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
)

// Eval evaluates q over the inlined representation repr and returns the
// representation extended with the answer table (named "$ans"). The
// input representation is not modified.
func Eval(q wsa.Expr, repr *inline.Repr) (*inline.Repr, error) {
	ex := &executor{repr: repr}
	res, world, err := ex.eval(q, repr.World)
	if err != nil {
		return nil, err
	}
	out := &inline.Repr{
		Names:  append(append([]string{}, repr.Names...), "$ans"),
		Tables: append(append([]*relation.Relation{}, repr.Tables...), res),
		World:  world,
	}
	return out, nil
}

// EvalWorldSet is the world-set-level entry point: encode, execute,
// decode. It is directly comparable with wsa.Eval.
func EvalWorldSet(q wsa.Expr, ws *worldset.WorldSet) (*worldset.WorldSet, error) {
	out, err := Eval(q, inline.Encode(ws))
	if err != nil {
		return nil, err
	}
	return out.Decode()
}

type executor struct {
	repr  *inline.Repr
	fresh int
}

func (ex *executor) freshID(base string) string {
	ex.fresh++
	base = strings.Map(func(r rune) rune {
		if r == '.' || r == ' ' {
			return '_'
		}
		return r
	}, strings.TrimPrefix(base, relation.IDPrefix))
	return fmt.Sprintf("%sp%d_%s", relation.IDPrefix, ex.fresh, base)
}

// eval returns the answer table (value attrs ∪ id attrs) and the world
// table after evaluating q.
func (ex *executor) eval(q wsa.Expr, world *relation.Relation) (*relation.Relation, *relation.Relation, error) {
	switch n := q.(type) {
	case *wsa.Rel:
		for i, name := range ex.repr.Names {
			if name == n.Name {
				return ex.repr.Tables[i], world, nil
			}
		}
		return nil, nil, fmt.Errorf("physical: unknown relation %q", n.Name)

	case *wsa.Select:
		res, w, err := ex.eval(n.From, world)
		if err != nil {
			return nil, nil, err
		}
		out, err := (&ra.Select{Pred: n.Pred, From: &ra.Lit{Rel: res}}).Eval(nil)
		return out, w, err

	case *wsa.Project:
		res, w, err := ex.eval(n.From, world)
		if err != nil {
			return nil, nil, err
		}
		cols := append(append([]string{}, n.Columns...), res.Schema().IDAttrs()...)
		out, err := ra.ProjectNames(&ra.Lit{Rel: res}, cols...).Eval(nil)
		return out, w, err

	case *wsa.Rename:
		res, w, err := ex.eval(n.From, world)
		if err != nil {
			return nil, nil, err
		}
		out, err := (&ra.Rename{Pairs: n.Pairs, From: &ra.Lit{Rel: res}}).Eval(nil)
		return out, w, err

	case *wsa.Choice:
		return ex.evalChoice(n, world)
	case *wsa.Close:
		return ex.evalClose(n, world)
	case *wsa.Group:
		return ex.evalGroup(n, world)
	case *wsa.BinOp:
		return ex.evalBinary(n.Kind, n.L, n.R, ra.True{}, world)
	case *wsa.Join:
		return ex.evalBinary(wsa.OpProduct, n.L, n.R, n.Pred, world)
	case *wsa.RepairKey:
		return nil, nil, fmt.Errorf("physical: repair-by-key requires world enumeration (Proposition 4.2); use the reference evaluator")
	}
	return nil, nil, fmt.Errorf("physical: unknown operator %T", q)
}

// evalChoice extends the answer with copies of the choice attributes as
// id attributes and updates the world table in one pass, keeping empty
// worlds alive under the pad constant. Both passes are partitioned by
// the answer's world-id projection: a world's answer rows and its world
// rows land in the same partition, so the distinct chosen B-combinations
// per world are partition-local state.
func (ex *executor) evalChoice(n *wsa.Choice, world *relation.Relation) (*relation.Relation, *relation.Relation, error) {
	res, w, err := ex.eval(n.From, world)
	if err != nil {
		return nil, nil, err
	}
	s := res.Schema()
	ids := s.IDAttrs()
	bIdx, err := s.Indexes(n.Attrs)
	if err != nil {
		return nil, nil, err
	}
	idIdx, err := s.Indexes(ids)
	if err != nil {
		return nil, nil, err
	}
	wIDIdx, err := w.Schema().Indexes(ids)
	if err != nil {
		return nil, nil, err
	}
	vb := make([]string, len(n.Attrs))
	for i, b := range n.Attrs {
		vb[i] = ex.freshID(b)
	}
	outSchema := s.Concat(relation.Schema(vb))
	newWorldSchema := w.Schema().Concat(relation.Schema(vb))

	parts := numParts(res.Len() + w.Len())
	resParts := partitionBy(res, idIdx, parts)
	wParts := partitionBy(w, wIDIdx, parts)
	outParts := make([][]relation.Tuple, parts)
	worldParts := make([][]relation.Tuple, parts)
	parallelDo(parts, func(p int) {
		// Answer rows: append the B values as new id columns; group the
		// partition's rows by world id for the world-extension pass.
		groups := relation.NewGroupMap(idIdx, len(resParts[p]))
		outRows := make([]relation.Tuple, 0, len(resParts[p]))
		for _, t := range resParts[p] {
			nt := make(relation.Tuple, 0, len(t)+len(bIdx))
			nt = append(nt, t...)
			for _, i := range bIdx {
				nt = append(nt, t[i])
			}
			outRows = append(outRows, nt)
			groups.Add(t)
		}
		outParts[p] = outRows

		// Distinct chosen B-combinations per world id combination.
		combos := make(map[*relation.Group][]relation.Tuple, groups.Len())
		for _, grp := range groups.Groups() {
			seen := relation.NewKeySet(len(grp.Rows))
			var cs []relation.Tuple
			for _, t := range grp.Rows {
				if seen.Add(t, bIdx) {
					cs = append(cs, t.Project(bIdx))
				}
			}
			combos[grp] = cs
		}

		// World rows: extend with each chosen combination, or with pads
		// if the answer was empty in that world.
		var wRows []relation.Tuple
		for _, t := range wParts[p] {
			grp := groups.Get(t, wIDIdx)
			if grp == nil {
				nt := make(relation.Tuple, 0, len(t)+len(vb))
				nt = append(nt, t...)
				for range vb {
					nt = append(nt, value.Pad())
				}
				wRows = append(wRows, nt)
				continue
			}
			for _, c := range combos[grp] {
				nt := make(relation.Tuple, 0, len(t)+len(c))
				nt = append(nt, t...)
				nt = append(nt, c...)
				wRows = append(wRows, nt)
			}
		}
		worldParts[p] = wRows
	})
	return mergeDistinct(outSchema, outParts), mergeDistinct(newWorldSchema, worldParts), nil
}

// evalClose implements poss (parallel distinct projection, stored
// id-free) and cert (parallel hash world-counting partitioned by the
// answer's value projection).
func (ex *executor) evalClose(n *wsa.Close, world *relation.Relation) (*relation.Relation, *relation.Relation, error) {
	res, w, err := ex.eval(n.From, world)
	if err != nil {
		return nil, nil, err
	}
	s := res.Schema()
	d, ids := s.ValueAttrs(), s.IDAttrs()
	if len(ids) == 0 {
		// Already world-independent: poss and cert are the identity.
		return res, w, nil
	}
	dIdx, err := s.Indexes(d)
	if err != nil {
		return nil, nil, err
	}
	parts := numParts(res.Len())
	resParts := partitionBy(res, dIdx, parts)
	outParts := make([][]relation.Tuple, parts)
	if n.Kind == wsa.ClosePoss {
		parallelDo(parts, func(p int) {
			seen := relation.NewKeySet(len(resParts[p]))
			var rows []relation.Tuple
			for _, t := range resParts[p] {
				if seen.Add(t, dIdx) {
					rows = append(rows, t.Project(dIdx))
				}
			}
			outParts[p] = rows
		})
		return mergeDistinct(d, outParts), w, nil
	}
	// cert: a tuple is certain iff its distinct id combinations cover
	// every world (projected to the answer's id attributes). The world
	// key set is built once and shared read-only across workers.
	idIdx, err := s.Indexes(ids)
	if err != nil {
		return nil, nil, err
	}
	wIdx, err := w.Schema().Indexes(ids)
	if err != nil {
		return nil, nil, err
	}
	worldKeys := relation.NewKeySet(w.Len())
	w.Each(func(t relation.Tuple) { worldKeys.Add(t, wIdx) })
	nWorlds := worldKeys.Len()
	if nWorlds == 0 {
		// No worlds: nothing is certain (avoid the vacuous-truth count
		// match where 0 covered ids would equal 0 worlds).
		return relation.New(d), w, nil
	}

	parallelDo(parts, func(p int) {
		groups := relation.NewGroupMap(dIdx, len(resParts[p]))
		for _, t := range resParts[p] {
			groups.Add(t)
		}
		var rows []relation.Tuple
		for _, grp := range groups.Groups() {
			// Count distinct world ids covering this value tuple,
			// ignoring stale ids absent from the world table.
			covered := relation.NewKeySet(len(grp.Rows))
			cnt := 0
			for _, t := range grp.Rows {
				if worldKeys.Contains(t, idIdx) && covered.Add(t, idIdx) {
					cnt++
				}
			}
			if cnt == nWorlds {
				rows = append(rows, grp.Key)
			}
		}
		outParts[p] = rows
	})
	return mergeDistinct(d, outParts), w, nil
}

// sigInterner assigns small integer ids to distinct sets of projected
// tuples, verifying candidate matches element-wise so group signatures
// are exact even under digest collisions.
type sigInterner struct {
	buckets map[uint64][]internEntry
	next    int
}

type internEntry struct {
	rows []relation.Tuple // sorted distinct projections
	id   int
}

func (in *sigInterner) intern(rows []relation.Tuple, h uint64) int {
	for _, e := range in.buckets[h] {
		if len(e.rows) == len(rows) {
			same := true
			for i := range rows {
				if !e.rows[i].Equal(rows[i]) {
					same = false
					break
				}
			}
			if same {
				return e.id
			}
		}
	}
	id := in.next
	in.next++
	in.buckets[h] = append(in.buckets[h], internEntry{rows: rows, id: id})
	return id
}

// evalGroup implements pγ/cγ by hashing world signatures: each world's
// distinct grouping projection — computed in parallel across worlds and
// interned exactly — determines its group; unions/intersections are
// aggregated per group (in parallel across groups) and emitted per world
// (in parallel across worlds).
func (ex *executor) evalGroup(n *wsa.Group, world *relation.Relation) (*relation.Relation, *relation.Relation, error) {
	res, w, err := ex.eval(n.From, world)
	if err != nil {
		return nil, nil, err
	}
	s := res.Schema()
	d, ids := s.ValueAttrs(), s.IDAttrs()
	gIdx, err := s.Indexes(n.GroupBy)
	if err != nil {
		return nil, nil, err
	}
	proj := n.ProjOrAll(d)
	pIdx, err := s.Indexes(proj)
	if err != nil {
		return nil, nil, err
	}
	idIdx, err := s.Indexes(ids)
	if err != nil {
		return nil, nil, err
	}
	wIdx, err := w.Schema().Indexes(ids)
	if err != nil {
		return nil, nil, err
	}

	// Per world (by answer-id projection): the rows. Worlds come from W
	// projected to the answer ids, so worlds with empty answers are kept.
	perWorld := relation.NewGroupMap(idIdx, res.Len())
	res.Each(func(t relation.Tuple) { perWorld.Add(t) })
	worldIDs := relation.NewGroupMap(wIdx, w.Len())
	w.Each(func(t relation.Tuple) { worldIDs.Add(t) })
	worlds := worldIDs.Groups() // distinct id projections, one per world

	// Signature per world: the sorted distinct grouping projection of
	// its rows, computed in parallel and interned sequentially.
	type worldSig struct {
		rows []relation.Tuple // sorted distinct g-projections
		hash uint64
	}
	sigs := make([]worldSig, len(worlds))
	parts := numParts(res.Len() + len(worlds))
	parallelChunks(len(worlds), parts, func(_, lo, hi int) {
		for wi := lo; wi < hi; wi++ {
			var rows []relation.Tuple
			if grp := perWorld.Get(worlds[wi].Key, nil); grp != nil {
				seen := relation.NewKeySet(len(grp.Rows))
				for _, t := range grp.Rows {
					if seen.Add(t, gIdx) {
						rows = append(rows, t.Project(gIdx))
					}
				}
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i].Less(rows[j]) })
			h := hashkey.Offset
			for _, t := range rows {
				h = hashkey.Mix(h, t.Hash())
			}
			sigs[wi] = worldSig{rows: rows, hash: h}
		}
	})
	interner := &sigInterner{buckets: make(map[uint64][]internEntry, len(worlds))}
	sigOf := make([]int, len(worlds))
	var sigWorlds [][]int // signature id -> member world indexes
	for wi := range worlds {
		id := interner.intern(sigs[wi].rows, sigs[wi].hash)
		sigOf[wi] = id
		if id == len(sigWorlds) {
			sigWorlds = append(sigWorlds, nil)
		}
		sigWorlds[id] = append(sigWorlds[id], wi)
	}

	// Aggregate per group signature, in parallel across signatures.
	projSchema := relation.NewSchema(proj...)
	agg := make([]*relation.Relation, len(sigWorlds))
	worldProj := func(wi int) *relation.Relation {
		projected := relation.New(projSchema)
		if grp := perWorld.Get(worlds[wi].Key, nil); grp != nil {
			for _, t := range grp.Rows {
				projected.Insert(t.Project(pIdx))
			}
		}
		return projected
	}
	parallelChunks(len(sigWorlds), parts, func(_, lo, hi int) {
		for sid := lo; sid < hi; sid++ {
			members := sigWorlds[sid]
			cur := worldProj(members[0])
			for _, wi := range members[1:] {
				if n.Kind == wsa.GroupPoss {
					if grp := perWorld.Get(worlds[wi].Key, nil); grp != nil {
						for _, t := range grp.Rows {
							cur.Insert(t.Project(pIdx))
						}
					}
				} else {
					other := relation.NewKeySet(16)
					if grp := perWorld.Get(worlds[wi].Key, nil); grp != nil {
						for _, t := range grp.Rows {
							other.Add(t, pIdx)
						}
					}
					next := relation.New(projSchema)
					cur.Each(func(t relation.Tuple) {
						if other.Contains(t, nil) {
							next.Insert(t)
						}
					})
					cur = next
				}
			}
			agg[sid] = cur
		}
	})

	// Emit the group aggregate per world, tagged with the world's ids,
	// in parallel across worlds. Distinct worlds yield distinct tagged
	// rows, so the merge is duplicate-free by construction.
	outSchema := projSchema.Concat(ids)
	emitParts := make([][]relation.Tuple, parts)
	parallelChunks(len(worlds), parts, func(chunk, lo, hi int) {
		var rows []relation.Tuple
		for wi := lo; wi < hi; wi++ {
			idVals := worlds[wi].Key
			agg[sigOf[wi]].Each(func(t relation.Tuple) {
				nt := make(relation.Tuple, 0, len(t)+len(idVals))
				nt = append(nt, t...)
				nt = append(nt, idVals...)
				rows = append(rows, nt)
			})
		}
		emitParts[chunk] = rows
	})
	return mergeDistinct(outSchema, emitParts), w, nil
}

// evalBinary pairs answers on their shared id attributes within the
// combined world table. Products go through the (index-accelerated)
// natural join; union/intersection/difference run as parallel set
// operations partitioned by the full tuple digest, so matching rows of
// both operands meet in the same partition.
func (ex *executor) evalBinary(kind wsa.BinOpKind, l, r wsa.Expr, joinPred ra.Pred, world *relation.Relation) (*relation.Relation, *relation.Relation, error) {
	r1, w1, err := ex.eval(l, world)
	if err != nil {
		return nil, nil, err
	}
	r2, w2, err := ex.eval(r, world)
	if err != nil {
		return nil, nil, err
	}
	w0, err := (&ra.NaturalJoin{L: &ra.Lit{Rel: w1}, R: &ra.Lit{Rel: w2}}).Eval(nil)
	if err != nil {
		return nil, nil, err
	}
	if kind == wsa.OpProduct {
		joined, err := (&ra.NaturalJoin{L: &ra.Lit{Rel: r1}, R: &ra.Lit{Rel: r2}}).Eval(nil)
		if err != nil {
			return nil, nil, err
		}
		if _, isTrue := joinPred.(ra.True); !isTrue {
			if joined, err = (&ra.Select{Pred: joinPred, From: &ra.Lit{Rel: joined}}).Eval(nil); err != nil {
				return nil, nil, err
			}
		}
		return joined, w0, nil
	}
	d1 := r1.Schema().ValueAttrs()
	d2 := r2.Schema().ValueAttrs()
	if len(d1) != len(d2) {
		return nil, nil, fmt.Errorf("physical: %v operands have arities %d and %d", kind, len(d1), len(d2))
	}
	w0s := w0.Schema()
	lhsE := ra.ProjectNames(&ra.NaturalJoin{L: &ra.Lit{Rel: r1}, R: &ra.Lit{Rel: w0}},
		append(append([]string{}, d1...), w0s...)...)
	cols := make([]ra.ProjCol, 0, len(d1)+len(w0s))
	for i := range d1 {
		cols = append(cols, ra.ProjCol{As: d1[i], Src: d2[i]})
	}
	for _, id := range w0s {
		cols = append(cols, ra.ProjCol{As: id, Src: id})
	}
	rhsE := &ra.Project{Columns: cols, From: &ra.NaturalJoin{L: &ra.Lit{Rel: r2}, R: &ra.Lit{Rel: w0}}}
	lhs, err := lhsE.Eval(nil)
	if err != nil {
		return nil, nil, err
	}
	rhs, err := rhsE.Eval(nil)
	if err != nil {
		return nil, nil, err
	}
	out, err := parallelSetOp(kind, lhs, rhs)
	return out, w0, err
}

// parallelSetOp computes l ∪/∩/− r partitioned by the full tuple digest.
// Both operands are relations (rows already distinct within each), so
// workers only deduplicate across the two inputs.
func parallelSetOp(kind wsa.BinOpKind, l, r *relation.Relation) (*relation.Relation, error) {
	parts := numParts(l.Len() + r.Len())
	lp := partitionBy(l, nil, parts)
	rp := partitionBy(r, nil, parts)
	outParts := make([][]relation.Tuple, parts)
	var opErr error
	parallelDo(parts, func(p int) {
		var rows []relation.Tuple
		switch kind {
		case wsa.OpUnion:
			seen := relation.NewKeySet(len(lp[p]) + len(rp[p]))
			for _, t := range lp[p] {
				seen.Add(t, nil)
				rows = append(rows, t)
			}
			for _, t := range rp[p] {
				if seen.Add(t, nil) {
					rows = append(rows, t)
				}
			}
		case wsa.OpIntersect:
			rset := relation.NewKeySet(len(rp[p]))
			for _, t := range rp[p] {
				rset.Add(t, nil)
			}
			for _, t := range lp[p] {
				if rset.Contains(t, nil) {
					rows = append(rows, t)
				}
			}
		case wsa.OpDiff:
			rset := relation.NewKeySet(len(rp[p]))
			for _, t := range rp[p] {
				rset.Add(t, nil)
			}
			for _, t := range lp[p] {
				if !rset.Contains(t, nil) {
					rows = append(rows, t)
				}
			}
		default:
			opErr = fmt.Errorf("physical: unknown binary kind %v", kind)
		}
		outParts[p] = rows
	})
	if opErr != nil {
		return nil, opErr
	}
	return mergeDistinct(l.Schema(), outParts), nil
}
