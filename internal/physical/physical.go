// Package physical implements the research direction named in the
// paper's conclusion: "query plans with dedicated physical operators for
// our I-SQL constructs should perform much better than the default
// relational algebra query over the (nonsuccinct, and thus in practice
// too large) inlined representation".
//
// The executor here evaluates World-set Algebra queries directly over
// inlined representations (Definition 5.1) with specialized algorithms:
//
//   - cert is a single hash pass counting, per answer tuple, the worlds
//     it appears in (instead of the relational division of Figure 6);
//   - poss is a duplicate-eliminating projection whose result is stored
//     id-free ("appears in every world");
//   - group-worlds-by hashes each world's grouping projection to a
//     signature and aggregates unions/intersections per group (instead
//     of the quadratic world-pairing construction of Figure 6);
//   - choice-of extends the answer and the world table in one pass,
//     padding empty worlds with the constant c of Remark 5.5.
//
// Results agree tuple-for-tuple with the Figure 3 reference semantics
// (see physical_test.go, which fuzzes random queries) while avoiding
// both the naive evaluator's world materialization and the translated
// plans' join/division detours.
package physical

import (
	"fmt"
	"sort"
	"strings"

	"worldsetdb/internal/inline"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
)

// Eval evaluates q over the inlined representation repr and returns the
// representation extended with the answer table (named "$ans"). The
// input representation is not modified.
func Eval(q wsa.Expr, repr *inline.Repr) (*inline.Repr, error) {
	ex := &executor{repr: repr}
	res, world, err := ex.eval(q, repr.World)
	if err != nil {
		return nil, err
	}
	out := &inline.Repr{
		Names:  append(append([]string{}, repr.Names...), "$ans"),
		Tables: append(append([]*relation.Relation{}, repr.Tables...), res),
		World:  world,
	}
	return out, nil
}

// EvalWorldSet is the world-set-level entry point: encode, execute,
// decode. It is directly comparable with wsa.Eval.
func EvalWorldSet(q wsa.Expr, ws *worldset.WorldSet) (*worldset.WorldSet, error) {
	out, err := Eval(q, inline.Encode(ws))
	if err != nil {
		return nil, err
	}
	return out.Decode()
}

type executor struct {
	repr  *inline.Repr
	fresh int
}

func (ex *executor) freshID(base string) string {
	ex.fresh++
	base = strings.Map(func(r rune) rune {
		if r == '.' || r == ' ' {
			return '_'
		}
		return r
	}, strings.TrimPrefix(base, relation.IDPrefix))
	return fmt.Sprintf("%sp%d_%s", relation.IDPrefix, ex.fresh, base)
}

// eval returns the answer table (value attrs ∪ id attrs) and the world
// table after evaluating q.
func (ex *executor) eval(q wsa.Expr, world *relation.Relation) (*relation.Relation, *relation.Relation, error) {
	switch n := q.(type) {
	case *wsa.Rel:
		for i, name := range ex.repr.Names {
			if name == n.Name {
				return ex.repr.Tables[i], world, nil
			}
		}
		return nil, nil, fmt.Errorf("physical: unknown relation %q", n.Name)

	case *wsa.Select:
		res, w, err := ex.eval(n.From, world)
		if err != nil {
			return nil, nil, err
		}
		out, err := (&ra.Select{Pred: n.Pred, From: &ra.Lit{Rel: res}}).Eval(nil)
		return out, w, err

	case *wsa.Project:
		res, w, err := ex.eval(n.From, world)
		if err != nil {
			return nil, nil, err
		}
		cols := append(append([]string{}, n.Columns...), res.Schema().IDAttrs()...)
		out, err := ra.ProjectNames(&ra.Lit{Rel: res}, cols...).Eval(nil)
		return out, w, err

	case *wsa.Rename:
		res, w, err := ex.eval(n.From, world)
		if err != nil {
			return nil, nil, err
		}
		out, err := (&ra.Rename{Pairs: n.Pairs, From: &ra.Lit{Rel: res}}).Eval(nil)
		return out, w, err

	case *wsa.Choice:
		return ex.evalChoice(n, world)
	case *wsa.Close:
		return ex.evalClose(n, world)
	case *wsa.Group:
		return ex.evalGroup(n, world)
	case *wsa.BinOp:
		return ex.evalBinary(n.Kind, n.L, n.R, ra.True{}, world)
	case *wsa.Join:
		return ex.evalBinary(wsa.OpProduct, n.L, n.R, n.Pred, world)
	case *wsa.RepairKey:
		return nil, nil, fmt.Errorf("physical: repair-by-key requires world enumeration (Proposition 4.2); use the reference evaluator")
	}
	return nil, nil, fmt.Errorf("physical: unknown operator %T", q)
}

// evalChoice extends the answer with copies of the choice attributes as
// id attributes and updates the world table in one pass, keeping empty
// worlds alive under the pad constant.
func (ex *executor) evalChoice(n *wsa.Choice, world *relation.Relation) (*relation.Relation, *relation.Relation, error) {
	res, w, err := ex.eval(n.From, world)
	if err != nil {
		return nil, nil, err
	}
	s := res.Schema()
	ids := s.IDAttrs()
	bIdx, err := s.Indexes(n.Attrs)
	if err != nil {
		return nil, nil, err
	}
	idIdx, err := s.Indexes(ids)
	if err != nil {
		return nil, nil, err
	}
	vb := make([]string, len(n.Attrs))
	for i, b := range n.Attrs {
		vb[i] = ex.freshID(b)
	}

	// Answer: append the B values as new id columns.
	outSchema := s.Concat(relation.Schema(vb))
	out := relation.New(outSchema)
	// choices: id-combination key → set of chosen B tuples.
	choices := make(map[string][][]value.Value)
	chosenSeen := make(map[string]bool)
	res.Each(func(t relation.Tuple) {
		nt := make(relation.Tuple, 0, len(t)+len(vb))
		nt = append(nt, t...)
		for _, i := range bIdx {
			nt = append(nt, t[i])
		}
		out.Insert(nt)

		idKey := hashKey(t, idIdx)
		bVals := make([]value.Value, len(bIdx))
		var ck []byte
		ck = append(ck, idKey...)
		ck = append(ck, 0x1e)
		for p, i := range bIdx {
			bVals[p] = t[i]
			ck = value.Value.AppendKey(t[i], ck)
			ck = append(ck, 0x1f)
		}
		if !chosenSeen[string(ck)] {
			chosenSeen[string(ck)] = true
			choices[idKey] = append(choices[idKey], bVals)
		}
	})

	// World table: every old world row extended with each of its chosen
	// B combinations, or with pads if the answer was empty there.
	wIDIdx, err := w.Schema().Indexes(ids)
	if err != nil {
		return nil, nil, err
	}
	newWorld := relation.New(w.Schema().Concat(relation.Schema(vb)))
	w.Each(func(t relation.Tuple) {
		combos := choices[hashKey(t, wIDIdx)]
		if len(combos) == 0 {
			nt := make(relation.Tuple, 0, len(t)+len(vb))
			nt = append(nt, t...)
			for range vb {
				nt = append(nt, value.Pad())
			}
			newWorld.Insert(nt)
			return
		}
		for _, c := range combos {
			nt := make(relation.Tuple, 0, len(t)+len(vb))
			nt = append(nt, t...)
			nt = append(nt, c...)
			newWorld.Insert(nt)
		}
	})
	return out, newWorld, nil
}

// evalClose implements poss (distinct projection, stored id-free) and
// cert (hash world-counting).
func (ex *executor) evalClose(n *wsa.Close, world *relation.Relation) (*relation.Relation, *relation.Relation, error) {
	res, w, err := ex.eval(n.From, world)
	if err != nil {
		return nil, nil, err
	}
	s := res.Schema()
	d, ids := s.ValueAttrs(), s.IDAttrs()
	if len(ids) == 0 {
		// Already world-independent: poss and cert are the identity.
		return res, w, nil
	}
	dIdx, err := s.Indexes(d)
	if err != nil {
		return nil, nil, err
	}
	if n.Kind == wsa.ClosePoss {
		return res.Project(dIdx, d), w, nil
	}
	// cert: a tuple is certain iff its distinct id combinations cover
	// every world (projected to the answer's id attributes).
	idIdx, err := s.Indexes(ids)
	if err != nil {
		return nil, nil, err
	}
	wIdx, err := w.Schema().Indexes(ids)
	if err != nil {
		return nil, nil, err
	}
	worldKeys := make(map[string]bool, w.Len())
	w.Each(func(t relation.Tuple) { worldKeys[hashKey(t, wIdx)] = true })

	counts := make(map[string]map[string]bool)
	reps := make(map[string]relation.Tuple)
	res.Each(func(t relation.Tuple) {
		dk := hashKey(t, dIdx)
		ik := hashKey(t, idIdx)
		if !worldKeys[ik] {
			return // stale id not in the world table: cannot count
		}
		m, ok := counts[dk]
		if !ok {
			m = make(map[string]bool)
			counts[dk] = m
			reps[dk] = t
		}
		m[ik] = true
	})
	out := relation.New(d)
	for dk, m := range counts {
		if len(m) == len(worldKeys) {
			t := reps[dk]
			nt := make(relation.Tuple, len(dIdx))
			for p, i := range dIdx {
				nt[p] = t[i]
			}
			out.Insert(nt)
		}
	}
	return out, w, nil
}

// evalGroup implements pγ/cγ by hashing world signatures: each world's
// grouping projection determines its group; unions/intersections are
// aggregated per group and emitted per world.
func (ex *executor) evalGroup(n *wsa.Group, world *relation.Relation) (*relation.Relation, *relation.Relation, error) {
	res, w, err := ex.eval(n.From, world)
	if err != nil {
		return nil, nil, err
	}
	s := res.Schema()
	d, ids := s.ValueAttrs(), s.IDAttrs()
	gIdx, err := s.Indexes(n.GroupBy)
	if err != nil {
		return nil, nil, err
	}
	proj := n.ProjOrAll(d)
	pIdx, err := s.Indexes(proj)
	if err != nil {
		return nil, nil, err
	}
	idIdx, err := s.Indexes(ids)
	if err != nil {
		return nil, nil, err
	}
	wIdx, err := w.Schema().Indexes(ids)
	if err != nil {
		return nil, nil, err
	}

	// Per world (by answer-id projection): the rows.
	type bucket struct {
		rows []relation.Tuple
	}
	perWorld := make(map[string]*bucket)
	res.Each(func(t relation.Tuple) {
		k := hashKey(t, idIdx)
		b, ok := perWorld[k]
		if !ok {
			b = &bucket{}
			perWorld[k] = b
		}
		b.rows = append(b.rows, t)
	})

	// Distinct worlds from W (projected to the answer ids), including
	// worlds with empty answers.
	type worldInfo struct {
		idVals relation.Tuple
		sig    string
	}
	var worlds []worldInfo
	seenWorld := map[string]bool{}
	w.Each(func(t relation.Tuple) {
		k := hashKey(t, wIdx)
		if seenWorld[k] {
			return
		}
		seenWorld[k] = true
		idVals := make(relation.Tuple, len(wIdx))
		for p, i := range wIdx {
			idVals[p] = t[i]
		}
		worlds = append(worlds, worldInfo{idVals: idVals, sig: ""})
	})
	// Signature: the sorted distinct grouping projection of the world's
	// rows.
	for i := range worlds {
		k := hashKey(worlds[i].idVals, identity(len(wIdx)))
		var keys []string
		if b, ok := perWorld[k]; ok {
			seen := map[string]bool{}
			for _, t := range b.rows {
				gk := hashKey(t, gIdx)
				if !seen[gk] {
					seen[gk] = true
					keys = append(keys, gk)
				}
			}
		}
		sort.Strings(keys)
		worlds[i].sig = strings.Join(keys, "\x1d")
	}

	// Aggregate per group signature.
	agg := make(map[string]*relation.Relation)
	projSchema := relation.NewSchema(proj...)
	for _, wi := range worlds {
		k := hashKey(wi.idVals, identity(len(wIdx)))
		projected := relation.New(projSchema)
		if b, ok := perWorld[k]; ok {
			for _, t := range b.rows {
				nt := make(relation.Tuple, len(pIdx))
				for p, i := range pIdx {
					nt[p] = t[i]
				}
				projected.Insert(nt)
			}
		}
		cur, ok := agg[wi.sig]
		if !ok {
			agg[wi.sig] = projected
			continue
		}
		if n.Kind == wsa.GroupPoss {
			projected.Each(func(t relation.Tuple) { cur.Insert(t) })
		} else {
			next := relation.New(projSchema)
			cur.Each(func(t relation.Tuple) {
				if projected.Contains(t) {
					next.Insert(t)
				}
			})
			agg[wi.sig] = next
		}
	}

	// Emit the group aggregate per world, tagged with the world's ids.
	outSchema := projSchema.Concat(ids)
	out := relation.New(outSchema)
	for _, wi := range worlds {
		a := agg[wi.sig]
		a.Each(func(t relation.Tuple) {
			nt := make(relation.Tuple, 0, len(t)+len(wi.idVals))
			nt = append(nt, t...)
			nt = append(nt, wi.idVals...)
			out.Insert(nt)
		})
	}
	return out, w, nil
}

// evalBinary pairs answers on their shared id attributes within the
// combined world table.
func (ex *executor) evalBinary(kind wsa.BinOpKind, l, r wsa.Expr, joinPred ra.Pred, world *relation.Relation) (*relation.Relation, *relation.Relation, error) {
	r1, w1, err := ex.eval(l, world)
	if err != nil {
		return nil, nil, err
	}
	r2, w2, err := ex.eval(r, world)
	if err != nil {
		return nil, nil, err
	}
	w0, err := (&ra.NaturalJoin{L: &ra.Lit{Rel: w1}, R: &ra.Lit{Rel: w2}}).Eval(nil)
	if err != nil {
		return nil, nil, err
	}
	if kind == wsa.OpProduct {
		joined, err := (&ra.NaturalJoin{L: &ra.Lit{Rel: r1}, R: &ra.Lit{Rel: r2}}).Eval(nil)
		if err != nil {
			return nil, nil, err
		}
		if _, isTrue := joinPred.(ra.True); !isTrue {
			if joined, err = (&ra.Select{Pred: joinPred, From: &ra.Lit{Rel: joined}}).Eval(nil); err != nil {
				return nil, nil, err
			}
		}
		return joined, w0, nil
	}
	d1 := r1.Schema().ValueAttrs()
	d2 := r2.Schema().ValueAttrs()
	if len(d1) != len(d2) {
		return nil, nil, fmt.Errorf("physical: %v operands have arities %d and %d", kind, len(d1), len(d2))
	}
	w0s := w0.Schema()
	lhsE := ra.ProjectNames(&ra.NaturalJoin{L: &ra.Lit{Rel: r1}, R: &ra.Lit{Rel: w0}},
		append(append([]string{}, d1...), w0s...)...)
	cols := make([]ra.ProjCol, 0, len(d1)+len(w0s))
	for i := range d1 {
		cols = append(cols, ra.ProjCol{As: d1[i], Src: d2[i]})
	}
	for _, id := range w0s {
		cols = append(cols, ra.ProjCol{As: id, Src: id})
	}
	rhsE := &ra.Project{Columns: cols, From: &ra.NaturalJoin{L: &ra.Lit{Rel: r2}, R: &ra.Lit{Rel: w0}}}
	var op ra.Expr
	switch kind {
	case wsa.OpUnion:
		op = &ra.Union{L: lhsE, R: rhsE}
	case wsa.OpIntersect:
		op = &ra.Intersect{L: lhsE, R: rhsE}
	case wsa.OpDiff:
		op = &ra.Diff{L: lhsE, R: rhsE}
	default:
		return nil, nil, fmt.Errorf("physical: unknown binary kind %v", kind)
	}
	out, err := op.Eval(nil)
	return out, w0, err
}

func hashKey(t relation.Tuple, idx []int) string {
	var k []byte
	for _, i := range idx {
		k = t[i].AppendKey(k)
		k = append(k, 0x1f)
	}
	return string(k)
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
