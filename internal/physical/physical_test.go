package physical

import (
	"math/rand"
	"os"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/randquery"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
)

// TestMain forces every operator through the partitioned parallel code
// paths regardless of input size and core count, so the fuzzers (and the
// race detector) exercise the worker fan-out and the deterministic merge
// even on small fixtures and single-core machines.
func TestMain(m *testing.M) {
	relation.ForceParts = 3
	os.Exit(m.Run())
}

var (
	names   = []string{"R", "S"}
	schemas = []relation.Schema{relation.NewSchema("A", "B"), relation.NewSchema("C")}
)

// checkAgainstReference runs q through the physical executor and the
// Figure 3 reference semantics and compares world-sets.
func checkAgainstReference(t *testing.T, q wsa.Expr, ws *worldset.WorldSet) {
	t.Helper()
	want, err := wsa.Eval(q, ws)
	if err != nil {
		t.Fatalf("reference %s: %v", q, err)
	}
	got, err := EvalWorldSet(q, ws)
	if err != nil {
		t.Fatalf("physical %s: %v", q, err)
	}
	if !got.EqualWorlds(want) {
		t.Fatalf("physical executor disagrees for %s\ninput:\n%s\nreference:\n%s\nphysical:\n%s",
			q, ws, want, got)
	}
}

// TestPhysicalTripPlanning checks the §2 query end to end.
func TestPhysicalTripPlanning(t *testing.T) {
	ws := worldset.FromDB([]string{"HFlights"}, []*relation.Relation{datagen.PaperFlights()})
	q := wsa.NewCert(&wsa.Project{Columns: []string{"Arr"},
		From: &wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "HFlights"}}})
	out, err := EvalWorldSet(q, ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range out.Worlds() {
		ans := w[len(w)-1]
		if ans.Len() != 1 {
			t.Fatalf("certain arrivals should be {ATL}, got %v", ans)
		}
	}
	checkAgainstReference(t, q, ws)
}

// TestPhysicalOperators covers each dedicated operator against the
// reference semantics on the shared schema.
func TestPhysicalOperators(t *testing.T) {
	rel := func(n string) wsa.Expr { return &wsa.Rel{Name: n} }
	queries := []wsa.Expr{
		rel("R"),
		&wsa.Project{Columns: []string{"B"}, From: rel("R")},
		wsa.NewPoss(&wsa.Choice{Attrs: []string{"A"}, From: rel("R")}),
		wsa.NewCert(&wsa.Choice{Attrs: []string{"A"}, From: rel("R")}),
		wsa.NewCert(&wsa.Project{Columns: []string{"B"},
			From: &wsa.Choice{Attrs: []string{"A"}, From: rel("R")}}),
		wsa.NewPossGroup([]string{"B"}, []string{"A", "B"},
			&wsa.Choice{Attrs: []string{"A"}, From: rel("R")}),
		wsa.NewCertGroup([]string{"B"}, []string{"A"},
			&wsa.Choice{Attrs: []string{"A"}, From: rel("R")}),
		wsa.NewUnion(
			&wsa.Project{Columns: []string{"A"}, From: &wsa.Choice{Attrs: []string{"A"}, From: rel("R")}},
			&wsa.Choice{Attrs: []string{"C"}, From: rel("S")}),
		wsa.NewProduct(
			&wsa.Project{Columns: []string{"A"}, From: &wsa.Choice{Attrs: []string{"B"}, From: rel("R")}},
			rel("S")),
	}
	rng := rand.New(rand.NewSource(99))
	for _, q := range queries {
		for i := 0; i < 10; i++ {
			ws := datagen.RandomWorldSet(rng, names, schemas, 3, 4, 3)
			checkAgainstReference(t, q, ws)
		}
	}
}

// TestPhysicalFuzz cross-checks the executor on random queries — the
// same regime as the translation fuzzers.
func TestPhysicalFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(4242))
	gen := randquery.NewQueryGen(rng, names, schemas)
	for qi := 0; qi < 150; qi++ {
		q := gen.Query(1 + rng.Intn(3))
		for wi := 0; wi < 3; wi++ {
			ws := datagen.RandomWorldSet(rng, names, schemas, 3, 3, 3)
			checkAgainstReference(t, q, ws)
		}
	}
}

// TestPhysicalRejectsRepair: repair-by-key stays with the reference
// evaluator.
func TestPhysicalRejectsRepair(t *testing.T) {
	ws := worldset.FromDB([]string{"R"}, []*relation.Relation{datagen.Fig5R()})
	q := &wsa.RepairKey{Attrs: []string{"A"}, From: &wsa.Rel{Name: "R"}}
	if _, err := EvalWorldSet(q, ws); err == nil {
		t.Fatal("expected an error for repair-by-key")
	}
}
