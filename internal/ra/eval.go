package ra

import (
	"fmt"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
)

// Eval implements Expr.
func (b *Base) Eval(db DB) (*relation.Relation, error) {
	r, ok := db[b.Name]
	if !ok {
		return nil, fmt.Errorf("ra: unknown relation %q", b.Name)
	}
	return r, nil
}

// Eval implements Expr.
func (s *Select) Eval(db DB) (*relation.Relation, error) {
	in, err := s.From.Eval(db)
	if err != nil {
		return nil, err
	}
	pred, err := s.Pred.Compile(in.Schema())
	if err != nil {
		return nil, err
	}
	out := relation.New(in.Schema())
	in.Each(func(t relation.Tuple) {
		if pred(t) {
			out.Insert(t)
		}
	})
	return out, nil
}

// Eval implements Expr.
func (p *Project) Eval(db DB) (*relation.Relation, error) {
	in, err := p.From.Eval(db)
	if err != nil {
		return nil, err
	}
	srcs := make([]string, len(p.Columns))
	names := make(relation.Schema, len(p.Columns))
	for i, c := range p.Columns {
		srcs[i] = c.Src
		names[i] = c.As
	}
	idx, err := in.Schema().Indexes(srcs)
	if err != nil {
		return nil, fmt.Errorf("ra: project: %w", err)
	}
	if dup := firstDuplicate(names); dup != "" {
		return nil, fmt.Errorf("ra: duplicate output attribute %q in projection", dup)
	}
	return in.Project(idx, names), nil
}

// Eval implements Expr.
func (r *Rename) Eval(db DB) (*relation.Relation, error) {
	in, err := r.From.Eval(db)
	if err != nil {
		return nil, err
	}
	out, err := r.mapped(in.Schema())
	if err != nil {
		return nil, err
	}
	return in.WithSchema(out), nil
}

// Eval implements Expr.
func (p *Product) Eval(db DB) (*relation.Relation, error) {
	l, err := p.L.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := p.R.Eval(db)
	if err != nil {
		return nil, err
	}
	if shared := l.Schema().Intersect(r.Schema()); len(shared) > 0 {
		return nil, fmt.Errorf("ra: product operands share attributes %v", shared)
	}
	out := relation.New(l.Schema().Concat(r.Schema()))
	l.Each(func(lt relation.Tuple) {
		r.Each(func(rt relation.Tuple) {
			t := make(relation.Tuple, 0, len(lt)+len(rt))
			t = append(append(t, lt...), rt...)
			out.Insert(t)
		})
	})
	return out, nil
}

// Eval implements Expr. Equality conjuncts between the operands are
// executed as a hash join; residual conjuncts filter the matches.
func (j *Join) Eval(db DB) (*relation.Relation, error) {
	l, err := j.L.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := j.R.Eval(db)
	if err != nil {
		return nil, err
	}
	outSchema := l.Schema().Concat(r.Schema())
	pairs, rest := equiPairs(j.Pred, l.Schema(), r.Schema())
	residual, err := Conj(rest...).Compile(outSchema)
	if err != nil {
		return nil, err
	}
	out := relation.New(outSchema)
	emit := func(lt, rt relation.Tuple) {
		t := make(relation.Tuple, 0, len(lt)+len(rt))
		t = append(append(t, lt...), rt...)
		if residual(t) {
			out.Insert(t)
		}
	}
	if len(pairs) == 0 {
		l.Each(func(lt relation.Tuple) {
			r.Each(func(rt relation.Tuple) { emit(lt, rt) })
		})
		return out, nil
	}
	// Hash-join fast path: probe a (cached) index on the right operand's
	// equi-join columns. No key strings are built; collisions are
	// resolved inside Index.Lookup by typed comparison.
	lCols := make([]int, len(pairs))
	rCols := make([]int, len(pairs))
	for i, pr := range pairs {
		lCols[i], rCols[i] = pr[0], pr[1]
	}
	build := r.IndexOn(rCols)
	l.Each(func(lt relation.Tuple) {
		for _, rt := range build.Lookup(lt, lCols) {
			emit(lt, rt)
		}
	})
	return out, nil
}

// naturalParts computes the shared attributes and the join plumbing for
// natural-join-family operators.
type naturalPlan struct {
	shared    relation.Schema
	lIdx      []int // positions of shared attrs in left schema
	rIdx      []int // positions of shared attrs in right schema
	rRestIdx  []int // positions of non-shared attrs in right schema
	outSchema relation.Schema
}

func planNatural(l, r *relation.Relation) (naturalPlan, error) {
	var p naturalPlan
	p.shared = l.Schema().Intersect(r.Schema())
	var err error
	p.lIdx, err = l.Schema().Indexes(p.shared)
	if err != nil {
		return p, err
	}
	p.rIdx, err = r.Schema().Indexes(p.shared)
	if err != nil {
		return p, err
	}
	rest := r.Schema().Minus(l.Schema())
	p.rRestIdx, err = r.Schema().Indexes(rest)
	if err != nil {
		return p, err
	}
	p.outSchema = l.Schema().Concat(rest)
	return p, nil
}

// Eval implements Expr.
func (j *NaturalJoin) Eval(db DB) (*relation.Relation, error) {
	l, err := j.L.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := j.R.Eval(db)
	if err != nil {
		return nil, err
	}
	p, err := planNatural(l, r)
	if err != nil {
		return nil, err
	}
	out := relation.New(p.outSchema)
	build := r.IndexOn(p.rIdx)
	l.Each(func(lt relation.Tuple) {
		for _, rt := range build.Lookup(lt, p.lIdx) {
			t := make(relation.Tuple, 0, len(p.outSchema))
			t = append(t, lt...)
			for _, i := range p.rRestIdx {
				t = append(t, rt[i])
			}
			out.Insert(t)
		}
	})
	return out, nil
}

// Eval implements Expr: R ⋈ S plus dangling R-tuples padded with the
// constant c.
func (j *LeftOuterPad) Eval(db DB) (*relation.Relation, error) {
	l, err := j.L.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := j.R.Eval(db)
	if err != nil {
		return nil, err
	}
	p, err := planNatural(l, r)
	if err != nil {
		return nil, err
	}
	out := relation.New(p.outSchema)
	build := r.IndexOn(p.rIdx)
	nPad := len(p.rRestIdx)
	l.Each(func(lt relation.Tuple) {
		matches := build.Lookup(lt, p.lIdx)
		if len(matches) == 0 {
			t := make(relation.Tuple, 0, len(p.outSchema))
			t = append(t, lt...)
			for i := 0; i < nPad; i++ {
				t = append(t, value.Pad())
			}
			out.Insert(t)
			return
		}
		for _, rt := range matches {
			t := make(relation.Tuple, 0, len(p.outSchema))
			t = append(t, lt...)
			for _, i := range p.rRestIdx {
				t = append(t, rt[i])
			}
			out.Insert(t)
		}
	})
	return out, nil
}

func evalSetOperands(db DB, le, re Expr, op string) (*relation.Relation, *relation.Relation, error) {
	l, err := le.Eval(db)
	if err != nil {
		return nil, nil, err
	}
	r, err := re.Eval(db)
	if err != nil {
		return nil, nil, err
	}
	if len(l.Schema()) != len(r.Schema()) {
		return nil, nil, fmt.Errorf("ra: %s operands have arities %d and %d", op, len(l.Schema()), len(r.Schema()))
	}
	return l, r, nil
}

// Eval implements Expr.
func (u *Union) Eval(db DB) (*relation.Relation, error) {
	l, r, err := evalSetOperands(db, u.L, u.R, "∪")
	if err != nil {
		return nil, err
	}
	out := l.Clone()
	r.Each(func(t relation.Tuple) { out.Insert(t) })
	return out, nil
}

// Eval implements Expr.
func (d *Diff) Eval(db DB) (*relation.Relation, error) {
	l, r, err := evalSetOperands(db, d.L, d.R, "−")
	if err != nil {
		return nil, err
	}
	out := relation.New(l.Schema())
	l.Each(func(t relation.Tuple) {
		if !r.Contains(t) {
			out.Insert(t)
		}
	})
	return out, nil
}

// Eval implements Expr.
func (i *Intersect) Eval(db DB) (*relation.Relation, error) {
	l, r, err := evalSetOperands(db, i.L, i.R, "∩")
	if err != nil {
		return nil, err
	}
	out := relation.New(l.Schema())
	l.Each(func(t relation.Tuple) {
		if r.Contains(t) {
			out.Insert(t)
		}
	})
	return out, nil
}

// Eval implements Expr. Division groups the dividend by its D-attributes
// and keeps groups covering every divisor tuple.
func (d *Divide) Eval(db DB) (*relation.Relation, error) {
	l, err := d.L.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := d.R.Eval(db)
	if err != nil {
		return nil, err
	}
	shared := l.Schema().Intersect(r.Schema())
	if len(shared) != len(r.Schema()) {
		return nil, fmt.Errorf("ra: divisor schema %v not contained in dividend schema %v", r.Schema(), l.Schema())
	}
	dAttrs := l.Schema().Minus(r.Schema())
	dIdx, err := l.Schema().Indexes(dAttrs)
	if err != nil {
		return nil, err
	}
	lShared, err := l.Schema().Indexes(shared)
	if err != nil {
		return nil, err
	}
	rShared, err := r.Schema().Indexes(shared)
	if err != nil {
		return nil, err
	}
	divisor := relation.NewKeySet(r.Len())
	r.Each(func(t relation.Tuple) { divisor.Add(t, rShared) })

	groups := relation.NewGroupMap(dIdx, l.Len())
	l.Each(func(t relation.Tuple) { groups.Add(t) })
	out := relation.New(dAttrs)
	for _, grp := range groups.Groups() {
		// Count the distinct divisor values covered by this group;
		// tuples pairing d with non-divisor values do not help coverage
		// (standard division ignores them).
		seen := relation.NewKeySet(len(grp.Rows))
		n := 0
		for _, t := range grp.Rows {
			if divisor.Contains(t, lShared) && seen.Add(t, lShared) {
				n++
			}
		}
		if n == divisor.Len() {
			out.Insert(grp.Key)
		}
	}
	return out, nil
}

// MustEval evaluates e against db, panicking on error. For tests and
// examples where the expression is statically known to be well-formed.
func MustEval(e Expr, db DB) *relation.Relation {
	r, err := e.Eval(db)
	if err != nil {
		panic(err)
	}
	return r
}
