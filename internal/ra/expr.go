package ra

import (
	"fmt"
	"strings"

	"worldsetdb/internal/relation"
)

// DB is a catalog of named relations: the "complete database" the
// translated queries of §5 run against.
type DB map[string]*relation.Relation

// SchemaOf looks up the schema of a base relation.
func (db DB) SchemaOf(name string) (relation.Schema, bool) {
	r, ok := db[name]
	if !ok {
		return nil, false
	}
	return r.Schema(), true
}

// Catalog resolves base-relation schemas during static schema inference.
type Catalog interface {
	SchemaOf(name string) (relation.Schema, bool)
}

// Expr is a relational algebra expression.
type Expr interface {
	// Schema infers the output schema against a catalog.
	Schema(cat Catalog) (relation.Schema, error)
	// Eval computes the result against a database.
	Eval(db DB) (*relation.Relation, error)
	String() string
}

// Base references a named relation of the database.
type Base struct{ Name string }

// Schema implements Expr.
func (b *Base) Schema(cat Catalog) (relation.Schema, error) {
	s, ok := cat.SchemaOf(b.Name)
	if !ok {
		return nil, fmt.Errorf("ra: unknown relation %q", b.Name)
	}
	return s, nil
}

func (b *Base) String() string { return b.Name }

// Lit is a literal constant relation, e.g. the nullary world table {⟨⟩}
// of Example 5.6 or the padding tuple {⟨c, …, c⟩} of Remark 5.5.
type Lit struct {
	Rel *relation.Relation
	// Label overrides rendering (e.g. "{⟨⟩}").
	Label string
}

// Schema implements Expr.
func (l *Lit) Schema(Catalog) (relation.Schema, error) { return l.Rel.Schema(), nil }

// Eval implements Expr.
func (l *Lit) Eval(DB) (*relation.Relation, error) { return l.Rel.Clone(), nil }

func (l *Lit) String() string {
	if l.Label != "" {
		return l.Label
	}
	return fmt.Sprintf("lit%v", l.Rel.Schema())
}

// Select is σ_pred(From).
type Select struct {
	Pred Pred
	From Expr
}

// Schema implements Expr.
func (s *Select) Schema(cat Catalog) (relation.Schema, error) {
	in, err := s.From.Schema(cat)
	if err != nil {
		return nil, err
	}
	for _, c := range s.Pred.Columns(nil) {
		if in.Index(c) < 0 {
			return nil, fmt.Errorf("ra: selection attribute %q not in %v", c, in)
		}
	}
	return in, nil
}

func (s *Select) String() string {
	return fmt.Sprintf("σ[%s](%s)", s.Pred, s.From)
}

// ProjCol is one output column of a generalized projection: source
// attribute Src exposed under name As. Src == As is a plain projection
// column; Src != As renames (and, if Src also appears elsewhere in the
// list, duplicates) the column, which is how the translation's
// π_{D, V, B as V_B} is expressed.
type ProjCol struct {
	As  string
	Src string
}

// Cols builds a plain projection column list (no renaming).
func Cols(names ...string) []ProjCol {
	out := make([]ProjCol, len(names))
	for i, n := range names {
		out[i] = ProjCol{As: n, Src: n}
	}
	return out
}

// ColsAs appends a renamed copy "src as as" to a column list.
func ColsAs(cols []ProjCol, src, as string) []ProjCol {
	return append(append([]ProjCol{}, cols...), ProjCol{As: as, Src: src})
}

// Project is the generalized projection π_{cols}(From).
type Project struct {
	Columns []ProjCol
	From    Expr
}

// ProjectNames is a convenience constructor for a plain projection.
func ProjectNames(from Expr, names ...string) *Project {
	return &Project{Columns: Cols(names...), From: from}
}

// Schema implements Expr.
func (p *Project) Schema(cat Catalog) (relation.Schema, error) {
	in, err := p.From.Schema(cat)
	if err != nil {
		return nil, err
	}
	out := make(relation.Schema, len(p.Columns))
	for i, c := range p.Columns {
		if in.Index(c.Src) < 0 {
			return nil, fmt.Errorf("ra: projection attribute %q not in %v", c.Src, in)
		}
		out[i] = c.As
	}
	if dup := firstDuplicate(out); dup != "" {
		return nil, fmt.Errorf("ra: duplicate output attribute %q in projection", dup)
	}
	return out, nil
}

func firstDuplicate(s relation.Schema) string {
	seen := make(map[string]bool, len(s))
	for _, n := range s {
		if seen[n] {
			return n
		}
		seen[n] = true
	}
	return ""
}

func (p *Project) String() string {
	parts := make([]string, len(p.Columns))
	for i, c := range p.Columns {
		if c.As == c.Src {
			parts[i] = c.As
		} else {
			parts[i] = c.Src + " as " + c.As
		}
	}
	return fmt.Sprintf("π[%s](%s)", strings.Join(parts, ","), p.From)
}

// RenamePair is one A→B renaming of δ.
type RenamePair struct{ From, To string }

// Rename is δ_{A→B, …}(From): attribute renaming in place (schema order
// preserved).
type Rename struct {
	Pairs []RenamePair
	From  Expr
}

// RenameAttrs builds δ with the given from→to pairs.
func RenameAttrs(from Expr, pairs ...RenamePair) *Rename {
	return &Rename{Pairs: pairs, From: from}
}

func (r *Rename) mapped(in relation.Schema) (relation.Schema, error) {
	out := in.Clone()
	for _, p := range r.Pairs {
		i := in.Index(p.From)
		if i < 0 {
			return nil, fmt.Errorf("ra: rename source %q not in %v", p.From, in)
		}
		out[i] = p.To
	}
	if dup := firstDuplicate(out); dup != "" {
		return nil, fmt.Errorf("ra: rename creates duplicate attribute %q", dup)
	}
	return out, nil
}

// Schema implements Expr.
func (r *Rename) Schema(cat Catalog) (relation.Schema, error) {
	in, err := r.From.Schema(cat)
	if err != nil {
		return nil, err
	}
	return r.mapped(in)
}

func (r *Rename) String() string {
	parts := make([]string, len(r.Pairs))
	for i, p := range r.Pairs {
		parts[i] = p.From + "→" + p.To
	}
	return fmt.Sprintf("δ[%s](%s)", strings.Join(parts, ","), r.From)
}

// Product is the cross product ×; operand schemas must be disjoint.
type Product struct{ L, R Expr }

// Schema implements Expr.
func (p *Product) Schema(cat Catalog) (relation.Schema, error) {
	ls, err := p.L.Schema(cat)
	if err != nil {
		return nil, err
	}
	rs, err := p.R.Schema(cat)
	if err != nil {
		return nil, err
	}
	if shared := ls.Intersect(rs); len(shared) > 0 {
		return nil, fmt.Errorf("ra: product operands share attributes %v", shared)
	}
	return ls.Concat(rs), nil
}

func (p *Product) String() string { return fmt.Sprintf("(%s × %s)", p.L, p.R) }

// Join is the theta join L ⋈_pred R: σ_pred(L × R) with hash-join
// evaluation for the equality conjuncts.
type Join struct {
	L, R Expr
	Pred Pred
}

// Schema implements Expr.
func (j *Join) Schema(cat Catalog) (relation.Schema, error) {
	p := Product{j.L, j.R}
	s, err := p.Schema(cat)
	if err != nil {
		return nil, err
	}
	for _, c := range j.Pred.Columns(nil) {
		if s.Index(c) < 0 {
			return nil, fmt.Errorf("ra: join attribute %q not in %v", c, s)
		}
	}
	return s, nil
}

func (j *Join) String() string { return fmt.Sprintf("(%s ⋈[%s] %s)", j.L, j.Pred, j.R) }

// NaturalJoin joins on all attributes with equal names; the output keeps
// L's schema followed by R's non-shared attributes. The translation of
// Figure 6 writes these joins as R_i ⋈ W′ (joins on the shared world-id
// attributes).
type NaturalJoin struct{ L, R Expr }

// Schema implements Expr.
func (j *NaturalJoin) Schema(cat Catalog) (relation.Schema, error) {
	ls, err := j.L.Schema(cat)
	if err != nil {
		return nil, err
	}
	rs, err := j.R.Schema(cat)
	if err != nil {
		return nil, err
	}
	return ls.Concat(rs.Minus(ls)), nil
}

func (j *NaturalJoin) String() string { return fmt.Sprintf("(%s ⋈ %s)", j.L, j.R) }

// LeftOuterPad is the modified left outer join =⊲⊳ of Remark 5.5:
//
//	R =⊲⊳ S  =  R ⋈ S  ∪  (R − R ⋉ S) × {⟨c, …, c⟩}
//
// i.e. a natural left outer join whose dangling tuples are padded with
// the distinguished constant c instead of nulls.
type LeftOuterPad struct{ L, R Expr }

// Schema implements Expr.
func (j *LeftOuterPad) Schema(cat Catalog) (relation.Schema, error) {
	n := NaturalJoin{j.L, j.R}
	return n.Schema(cat)
}

func (j *LeftOuterPad) String() string { return fmt.Sprintf("(%s =⊲⊳ %s)", j.L, j.R) }

// Union is ∪. Operands must have equal arity; columns align by position
// and the result carries L's schema.
type Union struct{ L, R Expr }

// Schema implements Expr.
func (u *Union) Schema(cat Catalog) (relation.Schema, error) {
	return setOpSchema(cat, u.L, u.R, "∪")
}

func (u *Union) String() string { return fmt.Sprintf("(%s ∪ %s)", u.L, u.R) }

// Diff is set difference −.
type Diff struct{ L, R Expr }

// Schema implements Expr.
func (d *Diff) Schema(cat Catalog) (relation.Schema, error) { return setOpSchema(cat, d.L, d.R, "−") }

func (d *Diff) String() string { return fmt.Sprintf("(%s − %s)", d.L, d.R) }

// Intersect is ∩.
type Intersect struct{ L, R Expr }

// Schema implements Expr.
func (i *Intersect) Schema(cat Catalog) (relation.Schema, error) {
	return setOpSchema(cat, i.L, i.R, "∩")
}

func (i *Intersect) String() string { return fmt.Sprintf("(%s ∩ %s)", i.L, i.R) }

func setOpSchema(cat Catalog, l, r Expr, op string) (relation.Schema, error) {
	ls, err := l.Schema(cat)
	if err != nil {
		return nil, err
	}
	rs, err := r.Schema(cat)
	if err != nil {
		return nil, err
	}
	if len(ls) != len(rs) {
		return nil, fmt.Errorf("ra: %s operands have arities %d and %d", op, len(ls), len(rs))
	}
	return ls, nil
}

// Divide is relational division L ÷ R: with D = attrs(L) − attrs(R)
// (matched by exact name), the result contains the D-tuples d such that
// for every tuple v of R, the combined tuple (d, v) is in L. The cert
// translation of Figure 6 divides the answer table by the world table.
type Divide struct{ L, R Expr }

// Schema implements Expr.
func (d *Divide) Schema(cat Catalog) (relation.Schema, error) {
	ls, err := d.L.Schema(cat)
	if err != nil {
		return nil, err
	}
	rs, err := d.R.Schema(cat)
	if err != nil {
		return nil, err
	}
	shared := ls.Intersect(rs)
	if len(shared) != len(rs) {
		return nil, fmt.Errorf("ra: divisor schema %v not contained in dividend schema %v", rs, ls)
	}
	return ls.Minus(rs), nil
}

func (d *Divide) String() string { return fmt.Sprintf("(%s ÷ %s)", d.L, d.R) }

// Nullary returns the nullary relation {⟨⟩}: the initial world table of
// a complete database (Example 5.6, step 1).
func Nullary() *Lit {
	r := relation.New(relation.Schema{})
	r.Insert(relation.Tuple{})
	return &Lit{Rel: r, Label: "{⟨⟩}"}
}
