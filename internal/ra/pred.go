// Package ra implements the named-perspective relational algebra the
// paper builds on (§4.1): selection σ, projection π (generalized with
// renaming, so π_{D, B as V_B} is a single operator), renaming δ,
// product ×, union ∪, difference −, intersection ∩, theta and natural
// joins ⋈, division ÷, and the padded left outer join =⊲⊳ of Remark 5.5.
//
// Expressions evaluate against a DB (a catalog of named relations) and
// produce fresh relations; the evaluator uses hash-based algorithms for
// joins and set operations.
package ra

import (
	"fmt"
	"strings"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
)

// CmpOp is a comparison operator in a selection condition.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// Apply evaluates the comparison on two values.
func (o CmpOp) Apply(a, b value.Value) bool {
	c := a.Compare(b)
	switch o {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// Operand is one side of a comparison: an attribute, a constant, or an
// unbound parameter slot ($n in a prepared statement). A parameter slot
// carries no value; BindPred replaces it with a constant before the
// predicate can compile, which is what lets a prepared plan be compiled
// (and prelowered) once and bound per execution.
type Operand struct {
	Col     string      // attribute name if IsCol
	Const   value.Value // constant otherwise
	IsCol   bool
	ParamN  int // 1-based $n slot if > 0
	colIdx  int // resolved by compile
	isBound bool
}

// Col returns an attribute operand.
func Col(name string) Operand { return Operand{Col: name, IsCol: true} }

// Const returns a constant operand.
func Const(v value.Value) Operand { return Operand{Const: v} }

// Param returns a parameter-slot operand for the placeholder $n
// (1-based). The slot must be bound with BindPred before the predicate
// compiles; evaluating an unbound slot is an error, not a value.
func Param(n int) Operand { return Operand{ParamN: n} }

func (o Operand) String() string {
	if o.IsCol {
		return o.Col
	}
	if o.ParamN > 0 {
		return fmt.Sprintf("$%d", o.ParamN)
	}
	if o.Const.Kind() == value.KindString {
		return "'" + o.Const.String() + "'"
	}
	return o.Const.String()
}

// Pred is a selection condition over the tuples of a single schema.
type Pred interface {
	// Compile resolves attribute references against a schema, returning
	// an evaluator closure.
	Compile(s relation.Schema) (func(relation.Tuple) bool, error)
	// Columns appends the attribute names referenced by the predicate.
	Columns(dst []string) []string
	String() string
}

// True is the always-true predicate.
type True struct{}

// Compile implements Pred.
func (True) Compile(relation.Schema) (func(relation.Tuple) bool, error) {
	return func(relation.Tuple) bool { return true }, nil
}

// Columns implements Pred.
func (True) Columns(dst []string) []string { return dst }

func (True) String() string { return "true" }

// Cmp compares two operands.
type Cmp struct {
	Left  Operand
	Op    CmpOp
	Right Operand
}

// Eq builds the equality comparison l = r on two attributes.
func Eq(l, r string) Cmp { return Cmp{Left: Col(l), Op: OpEq, Right: Col(r)} }

// EqConst builds the comparison attr = const.
func EqConst(attr string, v value.Value) Cmp {
	return Cmp{Left: Col(attr), Op: OpEq, Right: Const(v)}
}

// NeConst builds the comparison attr != const.
func NeConst(attr string, v value.Value) Cmp {
	return Cmp{Left: Col(attr), Op: OpNe, Right: Const(v)}
}

// Ne builds the comparison l != r on two attributes.
func Ne(l, r string) Cmp { return Cmp{Left: Col(l), Op: OpNe, Right: Col(r)} }

// Compile implements Pred.
func (c Cmp) Compile(s relation.Schema) (func(relation.Tuple) bool, error) {
	get := func(o Operand) (func(relation.Tuple) value.Value, error) {
		if o.ParamN > 0 {
			return nil, fmt.Errorf("ra: unbound parameter $%d (bind the plan with BindPred before evaluation)", o.ParamN)
		}
		if !o.IsCol {
			v := o.Const
			return func(relation.Tuple) value.Value { return v }, nil
		}
		i := s.Index(o.Col)
		if i < 0 {
			return nil, fmt.Errorf("ra: attribute %q not in schema %v", o.Col, s)
		}
		return func(t relation.Tuple) value.Value { return t[i] }, nil
	}
	l, err := get(c.Left)
	if err != nil {
		return nil, err
	}
	r, err := get(c.Right)
	if err != nil {
		return nil, err
	}
	op := c.Op
	return func(t relation.Tuple) bool { return op.Apply(l(t), r(t)) }, nil
}

// Columns implements Pred.
func (c Cmp) Columns(dst []string) []string {
	if c.Left.IsCol {
		dst = append(dst, c.Left.Col)
	}
	if c.Right.IsCol {
		dst = append(dst, c.Right.Col)
	}
	return dst
}

func (c Cmp) String() string {
	return fmt.Sprintf("%s%s%s", c.Left, c.Op, c.Right)
}

// And is conjunction.
type And struct{ L, R Pred }

// Conj folds a list of predicates into a conjunction (True if empty).
func Conj(ps ...Pred) Pred {
	var out Pred = True{}
	for i, p := range ps {
		if i == 0 {
			out = p
		} else {
			out = And{out, p}
		}
	}
	return out
}

// Compile implements Pred.
func (a And) Compile(s relation.Schema) (func(relation.Tuple) bool, error) {
	l, err := a.L.Compile(s)
	if err != nil {
		return nil, err
	}
	r, err := a.R.Compile(s)
	if err != nil {
		return nil, err
	}
	return func(t relation.Tuple) bool { return l(t) && r(t) }, nil
}

// Columns implements Pred.
func (a And) Columns(dst []string) []string { return a.R.Columns(a.L.Columns(dst)) }

func (a And) String() string { return a.L.String() + " ∧ " + a.R.String() }

// Or is disjunction.
type Or struct{ L, R Pred }

// Compile implements Pred.
func (o Or) Compile(s relation.Schema) (func(relation.Tuple) bool, error) {
	l, err := o.L.Compile(s)
	if err != nil {
		return nil, err
	}
	r, err := o.R.Compile(s)
	if err != nil {
		return nil, err
	}
	return func(t relation.Tuple) bool { return l(t) || r(t) }, nil
}

// Columns implements Pred.
func (o Or) Columns(dst []string) []string { return o.R.Columns(o.L.Columns(dst)) }

func (o Or) String() string { return "(" + o.L.String() + " ∨ " + o.R.String() + ")" }

// Not is negation.
type Not struct{ P Pred }

// Compile implements Pred.
func (n Not) Compile(s relation.Schema) (func(relation.Tuple) bool, error) {
	p, err := n.P.Compile(s)
	if err != nil {
		return nil, err
	}
	return func(t relation.Tuple) bool { return !p(t) }, nil
}

// Columns implements Pred.
func (n Not) Columns(dst []string) []string { return n.P.Columns(dst) }

func (n Not) String() string { return "¬(" + n.P.String() + ")" }

// equiPairs extracts attribute pairs (l, r) from the conjunctive closure
// of p such that l resolves only in ls and r only in rs (or vice versa).
// remainder collects conjuncts that are not such equalities. Used by the
// hash-join planner inside the evaluator.
func equiPairs(p Pred, ls, rs relation.Schema) (pairs [][2]int, remainder []Pred) {
	switch q := p.(type) {
	case And:
		p1, r1 := equiPairs(q.L, ls, rs)
		p2, r2 := equiPairs(q.R, ls, rs)
		return append(p1, p2...), append(r1, r2...)
	case Cmp:
		if q.Op == OpEq && q.Left.IsCol && q.Right.IsCol {
			li, ri := ls.Index(q.Left.Col), rs.Index(q.Right.Col)
			if li >= 0 && ri >= 0 && rs.Index(q.Left.Col) < 0 && ls.Index(q.Right.Col) < 0 {
				return [][2]int{{li, ri}}, nil
			}
			li, ri = ls.Index(q.Right.Col), rs.Index(q.Left.Col)
			if li >= 0 && ri >= 0 && rs.Index(q.Right.Col) < 0 && ls.Index(q.Left.Col) < 0 {
				return [][2]int{{li, ri}}, nil
			}
		}
	case True:
		return nil, nil
	}
	return nil, []Pred{p}
}

// BindPred returns p with every parameter slot $n replaced by the
// constant args[n-1]. Subtrees without slots are returned as-is — the
// input is never mutated, so many executions can bind one cached
// (compiled, prelowered) predicate concurrently. A slot beyond the
// argument list is an error.
func BindPred(p Pred, args []value.Value) (Pred, error) {
	switch q := p.(type) {
	case Cmp:
		l, lerr := bindOperand(q.Left, args)
		r, rerr := bindOperand(q.Right, args)
		if lerr != nil {
			return nil, lerr
		}
		if rerr != nil {
			return nil, rerr
		}
		if l == q.Left && r == q.Right {
			return p, nil
		}
		return Cmp{Left: l, Op: q.Op, Right: r}, nil
	case And:
		l, err := BindPred(q.L, args)
		if err != nil {
			return nil, err
		}
		r, err := BindPred(q.R, args)
		if err != nil {
			return nil, err
		}
		if l == q.L && r == q.R {
			return p, nil
		}
		return And{L: l, R: r}, nil
	case Or:
		l, err := BindPred(q.L, args)
		if err != nil {
			return nil, err
		}
		r, err := BindPred(q.R, args)
		if err != nil {
			return nil, err
		}
		if l == q.L && r == q.R {
			return p, nil
		}
		return Or{L: l, R: r}, nil
	case Not:
		inner, err := BindPred(q.P, args)
		if err != nil {
			return nil, err
		}
		if inner == q.P {
			return p, nil
		}
		return Not{P: inner}, nil
	}
	return p, nil // True and slot-free leaves
}

func bindOperand(o Operand, args []value.Value) (Operand, error) {
	if o.ParamN == 0 {
		return o, nil
	}
	if o.ParamN > len(args) {
		return Operand{}, fmt.Errorf("ra: parameter $%d out of range (%d argument(s))", o.ParamN, len(args))
	}
	return Const(args[o.ParamN-1]), nil
}

// MaxPredParam returns the highest parameter slot $n in the predicate
// (0 when it is fully bound).
func MaxPredParam(p Pred) int {
	switch q := p.(type) {
	case Cmp:
		return max(q.Left.ParamN, q.Right.ParamN)
	case And:
		return max(MaxPredParam(q.L), MaxPredParam(q.R))
	case Or:
		return max(MaxPredParam(q.L), MaxPredParam(q.R))
	case Not:
		return MaxPredParam(q.P)
	}
	return 0
}

func predList(ps []Pred) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ∧ ")
}
