package ra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
)

func tup(vals ...int64) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = value.Int(v)
	}
	return t
}

func randomRel(rng *rand.Rand, schema relation.Schema, domain, maxRows int) *relation.Relation {
	r := relation.New(schema)
	for i := 0; i < rng.Intn(maxRows+1); i++ {
		t := make(relation.Tuple, len(schema))
		for j := range t {
			t[j] = value.Int(int64(rng.Intn(domain)))
		}
		r.Insert(t)
	}
	return r
}

func testDB(rng *rand.Rand) DB {
	return DB{
		"R": randomRel(rng, relation.NewSchema("A", "B"), 3, 8),
		"S": randomRel(rng, relation.NewSchema("B", "C"), 3, 8),
		"T": randomRel(rng, relation.NewSchema("D"), 3, 4),
	}
}

// TestSelectProject checks σ and generalized π on a fixture.
func TestSelectProject(t *testing.T) {
	db := DB{"R": relation.FromRows(relation.NewSchema("A", "B"),
		tup(1, 2), tup(2, 3), tup(2, 4))}
	got := MustEval(&Select{Pred: EqConst("A", value.Int(2)), From: &Base{Name: "R"}}, db)
	if got.Len() != 2 {
		t.Fatalf("σ_A=2 should keep 2 rows, got %d", got.Len())
	}
	// Generalized projection with a duplicated, renamed column.
	p := &Project{Columns: []ProjCol{{As: "A", Src: "A"}, {As: "A2", Src: "A"}}, From: &Base{Name: "R"}}
	pr := MustEval(p, db)
	if pr.Len() != 2 { // (1,1) and (2,2)
		t.Fatalf("π_{A, A as A2} should collapse to 2 rows, got %d", pr.Len())
	}
	pr.Each(func(tp relation.Tuple) {
		if !tp[0].Equal(tp[1]) {
			t.Fatalf("duplicated column mismatch: %v", tp)
		}
	})
}

// TestJoinMatchesProductSelect is the hash-join correctness property:
// R ⋈_pred S ≡ σ_pred(R × S) on random inputs, for both equi and theta
// predicates.
func TestJoinMatchesProductSelect(t *testing.T) {
	preds := []Pred{
		Eq("A", "C"),
		And{L: Eq("A", "C"), R: Cmp{Left: Col("B"), Op: OpLt, Right: Col("S.B")}},
		Cmp{Left: Col("B"), Op: OpGe, Right: Col("C")},
	}
	for _, pred := range preds {
		pred := pred
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			db := DB{
				"R": randomRel(rng, relation.NewSchema("A", "B"), 3, 10),
				"S": randomRel(rng, relation.NewSchema("C", "S.B"), 3, 10),
			}
			join, err := (&Join{L: &Base{Name: "R"}, R: &Base{Name: "S"}, Pred: pred}).Eval(db)
			if err != nil {
				return false
			}
			ps, err := (&Select{Pred: pred, From: &Product{L: &Base{Name: "R"}, R: &Base{Name: "S"}}}).Eval(db)
			if err != nil {
				return false
			}
			return join.Equal(ps)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Errorf("pred %v: %v", pred, err)
		}
	}
}

// TestNaturalJoinSharedAttrs checks natural join against its definition
// via product, rename, select and project.
func TestNaturalJoinSharedAttrs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := testDB(rng)
		nj, err := (&NaturalJoin{L: &Base{Name: "R"}, R: &Base{Name: "S"}}).Eval(db)
		if err != nil {
			return false
		}
		// Definition: π_{A,B,C}(σ_{B=B'}(R × δ_{B→B'}(S))).
		def := &Project{
			Columns: Cols("A", "B", "C"),
			From: &Select{Pred: Eq("B", "B'"),
				From: &Product{L: &Base{Name: "R"},
					R: &Rename{Pairs: []RenamePair{{From: "B", To: "B'"}}, From: &Base{Name: "S"}}}},
		}
		want, err := def.Eval(db)
		if err != nil {
			return false
		}
		return nj.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDivideTextbookIdentity checks ÷ against the classical expansion
// R ÷ S = π_D(R) − π_D((π_D(R) × S) − R).
func TestDivideTextbookIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := DB{
			"R": randomRel(rng, relation.NewSchema("A", "D"), 3, 10),
			"T": randomRel(rng, relation.NewSchema("D"), 3, 4),
		}
		div, err := (&Divide{L: &Base{Name: "R"}, R: &Base{Name: "T"}}).Eval(db)
		if err != nil {
			return false
		}
		piD := ProjectNames(&Base{Name: "R"}, "A")
		expansion := &Diff{
			L: piD,
			R: ProjectNames(&Diff{
				L: &Product{L: piD, R: &Base{Name: "T"}},
				R: ProjectNames(&Base{Name: "R"}, "A", "D"),
			}, "A"),
		}
		want, err := expansion.Eval(db)
		if err != nil {
			return false
		}
		return div.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestDivideByNullary: dividing by the nullary world table {⟨⟩} is the
// identity — the single-world case of the cert translation.
func TestDivideByNullary(t *testing.T) {
	db := DB{"R": relation.FromRows(relation.NewSchema("A"), tup(1), tup(2))}
	got := MustEval(&Divide{L: &Base{Name: "R"}, R: Nullary()}, db)
	if !got.Equal(db["R"]) {
		t.Fatalf("R ÷ {⟨⟩} = %v, want R", got)
	}
}

// TestLeftOuterPad checks =⊲⊳ pads dangling tuples with the constant c
// (Remark 5.5).
func TestLeftOuterPad(t *testing.T) {
	db := DB{
		"W": relation.FromRows(relation.NewSchema("V"), tup(1), tup(2)),
		"X": relation.FromRows(relation.NewSchema("V", "U"), tup(1, 10)),
	}
	got := MustEval(&LeftOuterPad{L: &Base{Name: "W"}, R: &Base{Name: "X"}}, db)
	if got.Len() != 2 {
		t.Fatalf("=⊲⊳ should keep both W rows, got %d", got.Len())
	}
	if !got.Contains(relation.Tuple{value.Int(1), value.Int(10)}) {
		t.Error("matched row missing")
	}
	if !got.Contains(relation.Tuple{value.Int(2), value.Pad()}) {
		t.Error("dangling row should be padded with c")
	}
}

// TestSetOps checks ∪, ∩, − align positionally and keep the left schema.
func TestSetOps(t *testing.T) {
	db := DB{
		"R": relation.FromRows(relation.NewSchema("A"), tup(1), tup(2)),
		"S": relation.FromRows(relation.NewSchema("B"), tup(2), tup(3)),
	}
	u := MustEval(&Union{L: &Base{Name: "R"}, R: &Base{Name: "S"}}, db)
	if u.Len() != 3 || !u.Schema().Equal(relation.Schema{"A"}) {
		t.Errorf("union = %v", u)
	}
	i := MustEval(&Intersect{L: &Base{Name: "R"}, R: &Base{Name: "S"}}, db)
	if i.Len() != 1 || !i.Contains(tup(2)) {
		t.Errorf("intersect = %v", i)
	}
	d := MustEval(&Diff{L: &Base{Name: "R"}, R: &Base{Name: "S"}}, db)
	if d.Len() != 1 || !d.Contains(tup(1)) {
		t.Errorf("diff = %v", d)
	}
}

// TestSchemaErrors checks static schema validation catches malformed
// plans.
func TestSchemaErrors(t *testing.T) {
	cat := SchemaCatalog{"R": relation.NewSchema("A", "B")}
	bad := []Expr{
		&Select{Pred: EqConst("Z", value.Int(1)), From: &Base{Name: "R"}},
		ProjectNames(&Base{Name: "R"}, "Z"),
		&Product{L: &Base{Name: "R"}, R: &Base{Name: "R"}}, // shared attrs
		&Divide{L: &Base{Name: "R"}, R: &Base{Name: "missing"}},
		&Rename{Pairs: []RenamePair{{From: "A", To: "B"}}, From: &Base{Name: "R"}}, // duplicate
	}
	for _, e := range bad {
		if _, err := e.Schema(cat); err == nil {
			t.Errorf("expected schema error for %s", e)
		}
	}
}

// TestSimplifyPreservesSemantics fuzzes the plan simplifier: simplified
// plans evaluate identically.
func TestSimplifyPreservesSemantics(t *testing.T) {
	exprs := []Expr{
		ProjectNames(ProjectNames(&Base{Name: "R"}, "A", "B"), "A"),
		&Rename{Pairs: []RenamePair{{From: "A", To: "X"}},
			From: ProjectNames(&Base{Name: "R"}, "A")},
		ProjectNames(&Rename{Pairs: []RenamePair{{From: "A", To: "X"}}, From: &Base{Name: "R"}}, "X"),
		&Product{L: Nullary(), R: &Base{Name: "T"}},
		&Select{Pred: True{}, From: &Base{Name: "T"}},
		&Project{Columns: Cols("A", "B"), From: &Base{Name: "R"}}, // identity
		&Union{L: ProjectNames(ProjectNames(&Base{Name: "R"}, "A", "B"), "A"),
			R: &Rename{Pairs: []RenamePair{{From: "D", To: "A"}}, From: &Base{Name: "T"}}},
	}
	for _, e := range exprs {
		e := e
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			db := testDB(rng)
			simp := SimplifyWith(e, db, SimplifyOptions{})
			want, err := e.Eval(db)
			if err != nil {
				return false
			}
			got, err := simp.Eval(db)
			if err != nil {
				return false
			}
			return got.Equal(want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("simplify broke %s: %v", e, err)
		}
	}
}

// TestSimplifyReduces checks the simplifier actually shrinks the
// canonical patterns.
func TestSimplifyReduces(t *testing.T) {
	cat := SchemaCatalog{"R": relation.NewSchema("A", "B")}
	e := ProjectNames(ProjectNames(&Base{Name: "R"}, "A", "B"), "A")
	s := SimplifyWith(e, cat, SimplifyOptions{})
	if Size(s) >= Size(e) {
		t.Errorf("π∘π not fused: %s", s)
	}
	id := &Project{Columns: Cols("A", "B"), From: &Base{Name: "R"}}
	if got := SimplifyWith(id, cat, SimplifyOptions{}); Size(got) != 1 {
		t.Errorf("identity projection not eliminated: %s", got)
	}
}

// TestPredicateCompile checks comparison and boolean connective
// evaluation.
func TestPredicateCompile(t *testing.T) {
	schema := relation.NewSchema("A", "B")
	pred := Or{
		L: And{L: Cmp{Left: Col("A"), Op: OpLe, Right: Col("B")},
			R: NeConst("A", value.Int(0))},
		R: Not{P: Cmp{Left: Col("B"), Op: OpGt, Right: Const(value.Int(1))}},
	}
	eval, err := pred.Compile(schema)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    relation.Tuple
		want bool
	}{
		{tup(1, 2), true},  // 1<=2 ∧ 1≠0
		{tup(0, 5), false}, // left fails (A=0), right fails (5>1)
		{tup(0, 1), true},  // right side: ¬(1>1)
		{tup(3, 2), false},
	}
	for _, c := range cases {
		if got := eval(c.t); got != c.want {
			t.Errorf("pred(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}
