package ra

import (
	"worldsetdb/internal/relation"
)

// SimplifyOptions gate context-dependent simplifications.
type SimplifyOptions struct {
	// DropNullaryOuterPad rewrites {⟨⟩} =⊲⊳ X to X. The two differ only
	// when X is empty ({⟨c,…,c⟩} vs ∅); the optimized translator enables
	// this because in its output the world table and the dividend it
	// guards are derived from the same base expression, so both are
	// empty together and division results coincide (see §5.3 and
	// Example 5.8).
	DropNullaryOuterPad bool
}

// Simplify rewrites e into a smaller equivalent plan using sound local
// rules: projection/projection and rename/rename fusion, identity
// projection and empty-rename elimination, σ_true removal, and products
// with the nullary relation {⟨⟩}.
func Simplify(e Expr, opt SimplifyOptions) Expr {
	for {
		next, changed := simplifyOnce(e, opt)
		if !changed {
			return next
		}
		e = next
	}
}

func simplifyOnce(e Expr, opt SimplifyOptions) (Expr, bool) {
	switch n := e.(type) {
	case *Base, *Lit, nil:
		return e, false

	case *Select:
		from, ch := simplifyOnce(n.From, opt)
		if _, isTrue := n.Pred.(True); isTrue {
			return from, true
		}
		if ch {
			return &Select{Pred: n.Pred, From: from}, true
		}
		return e, false

	case *Project:
		from, ch := simplifyOnce(n.From, opt)
		if ch {
			return &Project{Columns: n.Columns, From: from}, true
		}
		// π ∘ π fusion: rewrite sources through the inner column list.
		if inner, ok := n.From.(*Project); ok {
			cols := make([]ProjCol, len(n.Columns))
			okAll := true
			for i, c := range n.Columns {
				src, found := lookupProj(inner.Columns, c.Src)
				if !found {
					okAll = false
					break
				}
				cols[i] = ProjCol{As: c.As, Src: src}
			}
			if okAll {
				return &Project{Columns: cols, From: inner.From}, true
			}
		}
		// π ∘ δ fusion: rewrite sources through the rename.
		if inner, ok := n.From.(*Rename); ok {
			cols := make([]ProjCol, len(n.Columns))
			for i, c := range n.Columns {
				src := c.Src
				for _, p := range inner.Pairs {
					if p.To == src {
						src = p.From
						break
					}
				}
				cols[i] = ProjCol{As: c.As, Src: src}
			}
			return &Project{Columns: cols, From: inner.From}, true
		}
		// Identity projection elimination.
		if s, err := n.From.Schema(emptyCatalog{}); err == nil && identityProj(n.Columns, s) {
			return n.From, true
		}
		return e, false

	case *Rename:
		from, ch := simplifyOnce(n.From, opt)
		if len(n.Pairs) == 0 {
			return from, true
		}
		if ch {
			return &Rename{Pairs: n.Pairs, From: from}, true
		}
		// δ ∘ π fusion: apply the rename to the projection's output
		// names.
		if inner, ok := n.From.(*Project); ok {
			cols := make([]ProjCol, len(inner.Columns))
			for i, c := range inner.Columns {
				as := c.As
				for _, p := range n.Pairs {
					if p.From == as {
						as = p.To
						break
					}
				}
				cols[i] = ProjCol{As: as, Src: c.Src}
			}
			return &Project{Columns: cols, From: inner.From}, true
		}
		return e, false

	case *Product:
		l, ch1 := simplifyOnce(n.L, opt)
		r, ch2 := simplifyOnce(n.R, opt)
		if isNullaryLit(l) {
			return r, true
		}
		if isNullaryLit(r) {
			return l, true
		}
		if ch1 || ch2 {
			return &Product{L: l, R: r}, true
		}
		return e, false

	case *Join:
		l, ch1 := simplifyOnce(n.L, opt)
		r, ch2 := simplifyOnce(n.R, opt)
		if ch1 || ch2 {
			return &Join{L: l, R: r, Pred: n.Pred}, true
		}
		return e, false

	case *NaturalJoin:
		l, ch1 := simplifyOnce(n.L, opt)
		r, ch2 := simplifyOnce(n.R, opt)
		if isNullaryLit(l) {
			return r, true
		}
		if isNullaryLit(r) {
			return l, true
		}
		if ch1 || ch2 {
			return &NaturalJoin{L: l, R: r}, true
		}
		return e, false

	case *LeftOuterPad:
		l, ch1 := simplifyOnce(n.L, opt)
		r, ch2 := simplifyOnce(n.R, opt)
		if opt.DropNullaryOuterPad && isNullaryLit(l) {
			return r, true
		}
		if ch1 || ch2 {
			return &LeftOuterPad{L: l, R: r}, true
		}
		return e, false

	case *Union:
		return simplifyBinary(e, n.L, n.R, opt, func(l, r Expr) Expr { return &Union{L: l, R: r} })
	case *Diff:
		return simplifyBinary(e, n.L, n.R, opt, func(l, r Expr) Expr { return &Diff{L: l, R: r} })
	case *Intersect:
		return simplifyBinary(e, n.L, n.R, opt, func(l, r Expr) Expr { return &Intersect{L: l, R: r} })
	case *Divide:
		return simplifyBinary(e, n.L, n.R, opt, func(l, r Expr) Expr { return &Divide{L: l, R: r} })
	}
	return e, false
}

func simplifyBinary(orig, l, r Expr, opt SimplifyOptions, rebuild func(l, r Expr) Expr) (Expr, bool) {
	ls, ch1 := simplifyOnce(l, opt)
	rs, ch2 := simplifyOnce(r, opt)
	if ch1 || ch2 {
		return rebuild(ls, rs), true
	}
	return orig, false
}

func lookupProj(cols []ProjCol, name string) (string, bool) {
	for _, c := range cols {
		if c.As == name {
			return c.Src, true
		}
	}
	return "", false
}

func identityProj(cols []ProjCol, s relation.Schema) bool {
	if len(cols) != len(s) {
		return false
	}
	for i, c := range cols {
		if c.As != c.Src || c.As != s[i] {
			return false
		}
	}
	return true
}

func isNullaryLit(e Expr) bool {
	l, ok := e.(*Lit)
	return ok && len(l.Rel.Schema()) == 0 && l.Rel.Len() == 1
}

// emptyCatalog resolves no names: schema inference under it succeeds
// only for subtrees whose leaves are literals, which is all the identity
// check needs (failures simply skip the rewrite).
type emptyCatalog struct{}

func (emptyCatalog) SchemaOf(string) (relation.Schema, bool) { return nil, false }

// SchemaCatalog builds a Catalog from a fixed name → schema map.
type SchemaCatalog map[string]relation.Schema

// SchemaOf implements Catalog.
func (c SchemaCatalog) SchemaOf(name string) (relation.Schema, bool) {
	s, ok := c[name]
	return s, ok
}

// SimplifyWith is Simplify with a catalog so identity projections over
// base tables are also eliminated.
func SimplifyWith(e Expr, cat Catalog, opt SimplifyOptions) Expr {
	for {
		next, changed := simplifyOnceCat(e, cat, opt)
		if !changed {
			return next
		}
		e = next
	}
}

func simplifyOnceCat(e Expr, cat Catalog, opt SimplifyOptions) (Expr, bool) {
	// Run the catalog-free pass first.
	if next, changed := simplifyOnce(e, opt); changed {
		return next, true
	}
	// Then the identity-projection check with real schemas, applied
	// top-down.
	switch n := e.(type) {
	case *Project:
		if s, err := n.From.Schema(cat); err == nil && identityProj(n.Columns, s) {
			return n.From, true
		}
		if from, ch := simplifyOnceCat(n.From, cat, opt); ch {
			return &Project{Columns: n.Columns, From: from}, true
		}
	case *Select:
		if from, ch := simplifyOnceCat(n.From, cat, opt); ch {
			return &Select{Pred: n.Pred, From: from}, true
		}
	case *Rename:
		if from, ch := simplifyOnceCat(n.From, cat, opt); ch {
			return &Rename{Pairs: n.Pairs, From: from}, true
		}
	case *Product:
		if l, ch := simplifyOnceCat(n.L, cat, opt); ch {
			return &Product{L: l, R: n.R}, true
		}
		if r, ch := simplifyOnceCat(n.R, cat, opt); ch {
			return &Product{L: n.L, R: r}, true
		}
	case *Join:
		if l, ch := simplifyOnceCat(n.L, cat, opt); ch {
			return &Join{L: l, R: n.R, Pred: n.Pred}, true
		}
		if r, ch := simplifyOnceCat(n.R, cat, opt); ch {
			return &Join{L: n.L, R: r, Pred: n.Pred}, true
		}
	case *NaturalJoin:
		if l, ch := simplifyOnceCat(n.L, cat, opt); ch {
			return &NaturalJoin{L: l, R: n.R}, true
		}
		if r, ch := simplifyOnceCat(n.R, cat, opt); ch {
			return &NaturalJoin{L: n.L, R: r}, true
		}
	case *LeftOuterPad:
		if l, ch := simplifyOnceCat(n.L, cat, opt); ch {
			return &LeftOuterPad{L: l, R: n.R}, true
		}
		if r, ch := simplifyOnceCat(n.R, cat, opt); ch {
			return &LeftOuterPad{L: n.L, R: r}, true
		}
	case *Union:
		if l, ch := simplifyOnceCat(n.L, cat, opt); ch {
			return &Union{L: l, R: n.R}, true
		}
		if r, ch := simplifyOnceCat(n.R, cat, opt); ch {
			return &Union{L: n.L, R: r}, true
		}
	case *Diff:
		if l, ch := simplifyOnceCat(n.L, cat, opt); ch {
			return &Diff{L: l, R: n.R}, true
		}
		if r, ch := simplifyOnceCat(n.R, cat, opt); ch {
			return &Diff{L: n.L, R: r}, true
		}
	case *Intersect:
		if l, ch := simplifyOnceCat(n.L, cat, opt); ch {
			return &Intersect{L: l, R: n.R}, true
		}
		if r, ch := simplifyOnceCat(n.R, cat, opt); ch {
			return &Intersect{L: n.L, R: r}, true
		}
	case *Divide:
		if l, ch := simplifyOnceCat(n.L, cat, opt); ch {
			return &Divide{L: l, R: n.R}, true
		}
		if r, ch := simplifyOnceCat(n.R, cat, opt); ch {
			return &Divide{L: n.L, R: r}, true
		}
	}
	return e, false
}

// DAGSize counts the distinct nodes of an RA expression, following
// shared subexpressions only once. The Figure 6 translation produces
// heavily shared plans (its let-bindings): DAGSize is the right measure
// for the paper's "polynomial size" claim, whereas Size (the tree
// rendering) duplicates shared subtrees.
func DAGSize(e Expr) int {
	seen := map[Expr]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		if e == nil || seen[e] {
			return
		}
		seen[e] = true
		switch n := e.(type) {
		case *Select:
			walk(n.From)
		case *Project:
			walk(n.From)
		case *Rename:
			walk(n.From)
		case *Product:
			walk(n.L)
			walk(n.R)
		case *Join:
			walk(n.L)
			walk(n.R)
		case *NaturalJoin:
			walk(n.L)
			walk(n.R)
		case *LeftOuterPad:
			walk(n.L)
			walk(n.R)
		case *Union:
			walk(n.L)
			walk(n.R)
		case *Diff:
			walk(n.L)
			walk(n.R)
		case *Intersect:
			walk(n.L)
			walk(n.R)
		case *Divide:
			walk(n.L)
			walk(n.R)
		}
	}
	walk(e)
	return len(seen)
}

// Size counts the AST nodes of an RA expression.
func Size(e Expr) int {
	switch n := e.(type) {
	case *Base, *Lit:
		return 1
	case *Select:
		return 1 + Size(n.From)
	case *Project:
		return 1 + Size(n.From)
	case *Rename:
		return 1 + Size(n.From)
	case *Product:
		return 1 + Size(n.L) + Size(n.R)
	case *Join:
		return 1 + Size(n.L) + Size(n.R)
	case *NaturalJoin:
		return 1 + Size(n.L) + Size(n.R)
	case *LeftOuterPad:
		return 1 + Size(n.L) + Size(n.R)
	case *Union:
		return 1 + Size(n.L) + Size(n.R)
	case *Diff:
		return 1 + Size(n.L) + Size(n.R)
	case *Intersect:
		return 1 + Size(n.L) + Size(n.R)
	case *Divide:
		return 1 + Size(n.L) + Size(n.R)
	}
	return 1
}
