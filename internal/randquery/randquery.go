// Package randquery generates random well-typed World-set Algebra
// queries over a fixed relational schema, for fuzzing the translations,
// the rewrite optimizer and the physical executor against the Figure 3
// reference semantics.
package randquery

import (
	"fmt"
	"math/rand"

	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/wsa"
)

// QueryGen generates random well-typed World-set Algebra queries over a
// fixed relational schema, for fuzzing the translations and the rewrite
// optimizer against the reference semantics.
type QueryGen struct {
	rng     *rand.Rand
	names   []string
	schemas []relation.Schema
	// Domain is the integer constant domain used in selections; it
	// should match the data generator's domain so selections are
	// selective but not always empty.
	Domain int
	// fresh numbers generated rename targets.
	fresh int
}

// NewQueryGen builds a generator over the given schema.
func NewQueryGen(rng *rand.Rand, names []string, schemas []relation.Schema) *QueryGen {
	return &QueryGen{rng: rng, names: names, schemas: schemas, Domain: 3}
}

// Query generates a random query with the given depth budget. The
// result is always well-typed with respect to the generator's schema.
func (g *QueryGen) Query(depth int) wsa.Expr {
	q, _ := g.gen(depth)
	return q
}

// gen returns a query and its output schema.
func (g *QueryGen) gen(depth int) (wsa.Expr, relation.Schema) {
	if depth <= 0 {
		i := g.rng.Intn(len(g.names))
		return &wsa.Rel{Name: g.names[i]}, g.schemas[i]
	}
	switch g.rng.Intn(10) {
	case 0: // σ
		sub, s := g.gen(depth - 1)
		return &wsa.Select{Pred: g.pred(s), From: sub}, s

	case 1: // π onto a random non-empty prefix-free subset
		sub, s := g.gen(depth - 1)
		cols := g.subset(s)
		return &wsa.Project{Columns: cols, From: sub}, relation.NewSchema(cols...)

	case 2: // δ of one attribute
		sub, s := g.gen(depth - 1)
		i := g.rng.Intn(len(s))
		g.fresh++
		to := fmt.Sprintf("r%d", g.fresh)
		out := s.Clone()
		out[i] = to
		return &wsa.Rename{Pairs: []ra.RenamePair{{From: s[i], To: to}}, From: sub}, out

	case 3: // χ
		sub, s := g.gen(depth - 1)
		return &wsa.Choice{Attrs: g.subset(s), From: sub}, s

	case 4: // poss / cert
		sub, s := g.gen(depth - 1)
		if g.rng.Intn(2) == 0 {
			return wsa.NewPoss(sub), s
		}
		return wsa.NewCert(sub), s

	case 5: // pγ / cγ
		sub, s := g.gen(depth - 1)
		group := g.subset(s)
		proj := g.subset(s)
		out := relation.NewSchema(proj...)
		if g.rng.Intn(2) == 0 {
			return wsa.NewPossGroup(group, proj, sub), out
		}
		return wsa.NewCertGroup(group, proj, sub), out

	case 6: // product with disjoint renaming of the right side
		l, ls := g.gen(depth - 1)
		r, rs := g.gen(depth - 1)
		pairs := make([]ra.RenamePair, len(rs))
		out := ls.Clone()
		rr := rs.Clone()
		for i, a := range rs {
			g.fresh++
			rr[i] = fmt.Sprintf("p%d", g.fresh)
			pairs[i] = ra.RenamePair{From: a, To: rr[i]}
			out = append(out, rr[i])
		}
		return wsa.NewProduct(l, &wsa.Rename{Pairs: pairs, From: r}), out

	case 7, 8: // set operations on aligned single columns
		l, ls := g.gen(depth - 1)
		r, rs := g.gen(depth - 1)
		lc, rc := ls[g.rng.Intn(len(ls))], rs[g.rng.Intn(len(rs))]
		lp := &wsa.Project{Columns: []string{lc}, From: l}
		var rp wsa.Expr = &wsa.Project{Columns: []string{rc}, From: r}
		if rc != lc {
			rp = &wsa.Rename{Pairs: []ra.RenamePair{{From: rc, To: lc}}, From: rp}
		}
		out := relation.NewSchema(lc)
		switch g.rng.Intn(3) {
		case 0:
			return wsa.NewUnion(lp, rp), out
		case 1:
			return wsa.NewIntersect(lp, rp), out
		default:
			return wsa.NewDiff(lp, rp), out
		}

	default: // join on a comparison between two sides
		l, ls := g.gen(depth - 1)
		r, rs := g.gen(depth - 1)
		pairs := make([]ra.RenamePair, len(rs))
		rr := rs.Clone()
		out := ls.Clone()
		for i, a := range rs {
			g.fresh++
			rr[i] = fmt.Sprintf("j%d", g.fresh)
			pairs[i] = ra.RenamePair{From: a, To: rr[i]}
			out = append(out, rr[i])
		}
		pred := ra.Eq(ls[g.rng.Intn(len(ls))], rr[g.rng.Intn(len(rr))])
		return &wsa.Join{L: l, R: &wsa.Rename{Pairs: pairs, From: r}, Pred: pred}, out
	}
}

// subset draws a random non-empty subset of the schema, in order.
func (g *QueryGen) subset(s relation.Schema) []string {
	var out []string
	for _, a := range s {
		if g.rng.Intn(2) == 0 {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		out = append(out, s[g.rng.Intn(len(s))])
	}
	return out
}

// pred draws a random comparison over the schema.
func (g *QueryGen) pred(s relation.Schema) ra.Pred {
	a := s[g.rng.Intn(len(s))]
	ops := []ra.CmpOp{ra.OpEq, ra.OpNe, ra.OpLt, ra.OpGe}
	op := ops[g.rng.Intn(len(ops))]
	if g.rng.Intn(3) == 0 && len(s) > 1 {
		b := s[g.rng.Intn(len(s))]
		return ra.Cmp{Left: ra.Col(a), Op: op, Right: ra.Col(b)}
	}
	c := value.Int(int64(g.rng.Intn(g.Domain)))
	return ra.Cmp{Left: ra.Col(a), Op: op, Right: ra.Const(c)}
}
