package randquery

import (
	"fmt"
	"math/rand"

	"worldsetdb/internal/relation"
)

// sqlTable is one queryable table of a generated script.
type sqlTable struct {
	name string
	cols []string
}

// StmtGen generates random I-SQL statements over a growing set of
// tables: the certain base tables it starts from plus the uncertain
// tables its create-table-as statements derive from them. The selects
// cover the clean WSA fragment (projections, selections, aliased
// joins, group-worlds-by, certain/possible) and the shapes outside it
// — aggregation (count/sum/min/max, group by) and subqueries (in,
// correlated exists) — the statement-level complement of the
// algebra-level QueryGen, behind the bounded-fallback differential
// sweeps.
//
// Uncertainty enters only through CreateUncertain, which applies
// choice-of or repair-by-key to certain scans; the generated selects
// never put either construct over an uncertain answer, so on the
// factorized engine every fragment statement must evaluate natively
// (merging components at worst, never enumerating).
type StmtGen struct {
	rng  *rand.Rand
	base []sqlTable // certain seed tables
	all  []sqlTable // base plus created uncertain tables
	// Domain is the integer constant domain of generated comparisons;
	// it should match the data generator's domain.
	Domain int
	fresh  int
}

// NewStmtGen builds a statement generator over the given base tables.
func NewStmtGen(rng *rand.Rand, names []string, schemas []relation.Schema) *StmtGen {
	g := &StmtGen{rng: rng, Domain: 8}
	for i, n := range names {
		t := sqlTable{name: n, cols: append([]string{}, schemas[i]...)}
		g.base = append(g.base, t)
		g.all = append(g.all, t)
	}
	return g
}

// CreateUncertain emits a create-table-as introducing fresh components:
// choice-of or repair-by-key over a (possibly filtered) certain base
// table. The new table joins the pool later selects draw from.
func (g *StmtGen) CreateUncertain() string {
	g.fresh++
	name := fmt.Sprintf("U%d", g.fresh)
	t := g.base[g.rng.Intn(len(g.base))]
	key := t.cols[g.rng.Intn(len(t.cols))]
	op := "choice of " + key
	if g.rng.Intn(2) == 0 {
		op = "repair by key " + key
	}
	where := ""
	if g.rng.Intn(3) == 0 {
		where = fmt.Sprintf(" where %s >= %d", t.cols[g.rng.Intn(len(t.cols))], g.rng.Intn(g.Domain/2))
	}
	g.all = append(g.all, sqlTable{name: name, cols: t.cols})
	return fmt.Sprintf("create table %s as select * from %s%s %s;", name, t.name, where, op)
}

// Select emits one random select statement over the known tables.
func (g *StmtGen) Select() string {
	col := func(t sqlTable) string { return t.cols[g.rng.Intn(len(t.cols))] }
	t := g.all[g.rng.Intn(len(g.all))]
	close := ""
	switch g.rng.Intn(3) {
	case 0:
		close = "certain "
	case 1:
		close = "possible "
	}
	where := ""
	if g.rng.Intn(2) == 0 {
		ops := []string{"=", "!=", "<", ">="}
		where = fmt.Sprintf(" where %s %s %d", col(t), ops[g.rng.Intn(len(ops))], g.rng.Intn(g.Domain))
	}
	switch g.rng.Intn(8) {
	case 0: // σ/π with a world closure
		return fmt.Sprintf("select %s%s from %s%s;", close, col(t), t.name, where)
	case 1: // group-worlds-by (attribute form)
		if close == "" {
			close = "certain "
		}
		return fmt.Sprintf("select %s%s from %s%s group worlds by %s;", close, col(t), t.name, where, col(t))
	case 2: // aliased equi-join; self-joins entangle and must merge
		u := g.all[g.rng.Intn(len(g.all))]
		return fmt.Sprintf("select %sX.%s from %s X, %s Y where X.%s = Y.%s;",
			close, col(t), t.name, u.name, col(t), col(u))
	case 3: // count(*)
		return fmt.Sprintf("select count(*) as N from %s%s;", t.name, where)
	case 4: // column aggregate
		fn := []string{"sum", "min", "max"}[g.rng.Intn(3)]
		return fmt.Sprintf("select %s(%s) as S from %s%s;", fn, col(t), t.name, where)
	case 5: // group by with an aggregate
		gc := col(t)
		return fmt.Sprintf("select %s, count(*) as N from %s%s group by %s;", gc, t.name, where, gc)
	case 6: // (not) in subquery
		u := g.all[g.rng.Intn(len(g.all))]
		neg := ""
		if g.rng.Intn(3) == 0 {
			neg = "not "
		}
		return fmt.Sprintf("select %s from %s where %s %sin (select %s from %s);",
			col(t), t.name, col(t), neg, col(u), u.name)
	default: // correlated (not) exists
		u := g.all[g.rng.Intn(len(g.all))]
		neg := ""
		if g.rng.Intn(3) == 0 {
			neg = "not "
		}
		return fmt.Sprintf("select X.%s from %s X where %sexists (select * from %s Y where Y.%s = X.%s);",
			col(t), t.name, neg, u.name, col(u), col(t))
	}
}
