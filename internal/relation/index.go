package relation

import (
	"strconv"
	"strings"
)

// This file implements the shared hash-index machinery used by the
// hash-join fast paths in package ra and the world-partitioned operators
// in package physical. All structures key buckets by the FNV-1a digest
// of a column projection (package hashkey, via Tuple.HashOn) and verify
// candidates with typed value comparison, so results are exact even
// under digest collisions and no key strings are ever allocated.

// Index is a read-only hash index of tuples on a fixed column list.
// Build one with BuildIndex or, cached, with Relation.IndexOn.
type Index struct {
	cols    []int
	buckets map[uint64][]Tuple
}

// BuildIndex indexes r's tuples on the columns at cols (nil = all
// columns).
func BuildIndex(r *Relation, cols []int) *Index {
	ix := &Index{cols: cols, buckets: make(map[uint64][]Tuple, r.Len())}
	r.Each(func(t Tuple) { ix.Add(t) })
	return ix
}

// Add appends a tuple to the index. Unlike Relation.Insert this keeps
// duplicates: an index is a multimap from key columns to rows.
func (ix *Index) Add(t Tuple) {
	h := t.HashOn(ix.cols)
	ix.buckets[h] = append(ix.buckets[h], t)
}

// Lookup returns the tuples whose indexed columns equal probe's columns
// at probeCols (nil = all of probe). In the common, collision-free case
// the bucket slice is returned directly without allocating.
func (ix *Index) Lookup(probe Tuple, probeCols []int) []Tuple {
	bucket := ix.buckets[probe.HashOn(probeCols)]
	for i, t := range bucket {
		if !t.EqualOn(probe, ix.cols, probeCols) {
			// Digest collision: fall back to filtering the bucket.
			out := append([]Tuple(nil), bucket[:i]...)
			for _, u := range bucket[i+1:] {
				if u.EqualOn(probe, ix.cols, probeCols) {
					out = append(out, u)
				}
			}
			return out
		}
	}
	return bucket
}

// IndexOn returns a hash index of r on the columns at cols, building it
// on first use and caching it on the relation. The cache makes repeated
// joins against the same base table (translated Figure 6 plans probe the
// world table dozens of times) cost one build. The cached index is
// dropped if the relation is mutated; safe for concurrent readers.
func (r *Relation) IndexOn(cols []int) *Index {
	var sig strings.Builder
	for _, c := range cols {
		sig.WriteString(strconv.Itoa(c))
		sig.WriteByte(',')
	}
	key := sig.String()
	r.mu.Lock()
	defer r.mu.Unlock()
	if ix, ok := r.indexes[key]; ok {
		return ix
	}
	ix := BuildIndex(r, cols)
	if r.indexes == nil {
		r.indexes = make(map[string]*Index)
	}
	r.indexes[key] = ix
	return ix
}

// KeySet is a set of column projections of tuples, collision-verified.
// It stores each distinct projection once, as a materialized tuple.
type KeySet struct {
	buckets map[uint64][]Tuple
	n       int
}

// NewKeySet returns an empty key set with capacity hint n.
func NewKeySet(n int) *KeySet {
	return &KeySet{buckets: make(map[uint64][]Tuple, n)}
}

// Add inserts the projection of t onto cols (nil = whole tuple),
// reporting whether it was new. The projection is materialized only on
// first insertion.
func (s *KeySet) Add(t Tuple, cols []int) bool {
	h := t.HashOn(cols)
	for _, u := range s.buckets[h] {
		if u.EqualOn(t, nil, cols) {
			return false
		}
	}
	s.buckets[h] = append(s.buckets[h], t.Project(identityOr(cols, len(t))))
	s.n++
	return true
}

// Contains reports whether the projection of t onto cols is in the set.
func (s *KeySet) Contains(t Tuple, cols []int) bool {
	for _, u := range s.buckets[t.HashOn(cols)] {
		if u.EqualOn(t, nil, cols) {
			return true
		}
	}
	return false
}

// Len returns the number of distinct projections added.
func (s *KeySet) Len() int { return s.n }

// Each calls f for every stored projection in unspecified order.
func (s *KeySet) Each(f func(Tuple)) {
	for _, bucket := range s.buckets {
		for _, t := range bucket {
			f(t)
		}
	}
}

// Group is one equivalence class of a GroupBy: the projected key and the
// member rows in insertion order.
type Group struct {
	Key  Tuple
	Rows []Tuple
}

// GroupMap groups tuples by a column projection, collision-verified.
type GroupMap struct {
	cols    []int
	buckets map[uint64][]*Group
	groups  []*Group
}

// NewGroupMap returns an empty group map over the projection cols
// (nil = whole tuple) with capacity hint n.
func NewGroupMap(cols []int, n int) *GroupMap {
	return &GroupMap{cols: cols, buckets: make(map[uint64][]*Group, n)}
}

// Add appends t to its group, creating the group if needed, and returns
// the group.
func (g *GroupMap) Add(t Tuple) *Group {
	h := t.HashOn(g.cols)
	for _, grp := range g.buckets[h] {
		if grp.Key.EqualOn(t, nil, g.cols) {
			grp.Rows = append(grp.Rows, t)
			return grp
		}
	}
	grp := &Group{Key: t.Project(identityOr(g.cols, len(t))), Rows: []Tuple{t}}
	g.buckets[h] = append(g.buckets[h], grp)
	g.groups = append(g.groups, grp)
	return grp
}

// Get returns the group whose key equals probe's columns at probeCols
// (nil = all of probe), or nil.
func (g *GroupMap) Get(probe Tuple, probeCols []int) *Group {
	for _, grp := range g.buckets[probe.HashOn(probeCols)] {
		if grp.Key.EqualOn(probe, nil, probeCols) {
			return grp
		}
	}
	return nil
}

// Groups returns the groups in first-insertion order.
func (g *GroupMap) Groups() []*Group { return g.groups }

// Len returns the number of groups.
func (g *GroupMap) Len() int { return len(g.groups) }

func identityOr(cols []int, n int) []int {
	if cols != nil {
		return cols
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
