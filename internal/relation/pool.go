package relation

import (
	"runtime"
	"sync"
)

// Worker-pool primitives shared by the world-partitioned operators in
// package physical and the parallel decoder in package inline. The pool
// is sized by GOMAXPROCS and bounded: callers pick a partition count
// with NumParts and fan out with ParallelDo/ParallelChunks, which block
// until every worker finishes, so parallelism never escapes an
// operator's evaluation.

// MaxFanOut caps the partition count: beyond this, per-partition hash
// tables get too small to amortize their allocation.
const MaxFanOut = 16

var (
	// ForceParts, when positive, fixes the partition count regardless of
	// GOMAXPROCS and input size. Tests set it (in a TestMain, before any
	// evaluation runs) to push every operator through the partitioned
	// code paths — and the race detector — on any machine, including
	// single-core CI runners.
	ForceParts int

	// SeqThreshold is the input size (in tuples) below which parallel
	// callers stay sequential: goroutine fan-out costs more than it
	// saves on small inputs.
	SeqThreshold = 4096
)

// NumParts picks the partition count for work over n input tuples.
func NumParts(n int) int {
	if ForceParts > 0 {
		return ForceParts
	}
	w := runtime.GOMAXPROCS(0)
	if w <= 1 || n < SeqThreshold {
		return 1
	}
	if w > MaxFanOut {
		w = MaxFanOut
	}
	return w
}

// ParallelDo runs f(p) for every partition p in [0, parts) and waits.
// With one partition it stays on the calling goroutine.
func ParallelDo(parts int, f func(part int)) {
	if parts <= 1 {
		f(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(parts)
	for p := 0; p < parts; p++ {
		go func(p int) {
			defer wg.Done()
			f(p)
		}(p)
	}
	wg.Wait()
}

// ParallelChunks splits [0, n) into parts contiguous chunks and runs
// f(chunk, lo, hi) for each non-empty chunk on the pool. Chunk indexes
// are stable, so callers can write per-chunk output slots without
// coordination.
func ParallelChunks(n, parts int, f func(chunk, lo, hi int)) {
	if n == 0 {
		return
	}
	if parts <= 1 || n < parts {
		parts = 1
	}
	size := (n + parts - 1) / parts
	ParallelDo(parts, func(c int) {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if lo < hi {
			f(c, lo, hi)
		}
	})
}
