package relation

import (
	"fmt"
	"sort"
	"strings"

	"worldsetdb/internal/value"
)

// Tuple is an ordered list of values conforming to some schema.
type Tuple []value.Value

// Key returns an injective encoding of the tuple, usable as a map key.
func (t Tuple) Key() string {
	var b []byte
	for _, v := range t {
		b = v.AppendKey(b)
		b = append(b, 0x1f) // field separator; never produced by AppendKey payloads of equal length ambiguity
	}
	return string(b)
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Less orders tuples lexicographically.
func (t Tuple) Less(u Tuple) bool {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c < 0
		}
	}
	return len(t) < len(u)
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "⟨" + strings.Join(parts, ", ") + "⟩"
}

// Relation is a set of tuples over a schema. The zero Relation is not
// usable; construct with New. Relations are mutable until shared; all
// algebra operators in package ra allocate fresh results.
type Relation struct {
	schema Schema
	rows   map[string]Tuple
}

// New returns an empty relation over the given schema.
func New(schema Schema) *Relation {
	return &Relation{schema: schema, rows: make(map[string]Tuple)}
}

// FromRows builds a relation over schema containing the given tuples.
// Each row must have exactly len(schema) values.
func FromRows(schema Schema, rows ...Tuple) *Relation {
	r := New(schema)
	for _, t := range rows {
		r.Insert(t)
	}
	return r
}

// Schema returns the relation's schema. Callers must not mutate it.
func (r *Relation) Schema() Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return len(r.rows) == 0 }

// Insert adds a tuple, reporting whether it was new. It panics if the
// arity does not match the schema: arity mismatches are program bugs, not
// data errors.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != len(r.schema) {
		panic(fmt.Sprintf("relation: inserting arity-%d tuple into schema %v", len(t), r.schema))
	}
	k := t.Key()
	if _, ok := r.rows[k]; ok {
		return false
	}
	r.rows[k] = t
	return true
}

// InsertValues is Insert with a variadic convenience signature.
func (r *Relation) InsertValues(vs ...value.Value) bool { return r.Insert(Tuple(vs)) }

// Delete removes a tuple if present, reporting whether it was there.
func (r *Relation) Delete(t Tuple) bool {
	k := t.Key()
	if _, ok := r.rows[k]; !ok {
		return false
	}
	delete(r.rows, k)
	return true
}

// Contains reports tuple membership.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.rows[t.Key()]
	return ok
}

// ContainsKey reports membership by precomputed key.
func (r *Relation) ContainsKey(k string) bool {
	_, ok := r.rows[k]
	return ok
}

// Each calls f for every tuple in unspecified order. f must not mutate
// the relation.
func (r *Relation) Each(f func(Tuple)) {
	for _, t := range r.rows {
		f(t)
	}
}

// Tuples returns the tuples sorted lexicographically, for deterministic
// printing and comparison in tests.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, len(r.rows))
	for _, t := range r.rows {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Clone returns a deep-enough copy (tuples are immutable by convention).
func (r *Relation) Clone() *Relation {
	c := &Relation{schema: r.schema.Clone(), rows: make(map[string]Tuple, len(r.rows))}
	for k, t := range r.rows {
		c.rows[k] = t
	}
	return c
}

// WithSchema returns a relation with the same rows but attribute names
// replaced by the given schema (same arity). Used for renaming.
func (r *Relation) WithSchema(s Schema) *Relation {
	if len(s) != len(r.schema) {
		panic("relation: WithSchema arity mismatch")
	}
	return &Relation{schema: s, rows: r.rows}
}

// Equal reports set equality of tuples and order-sensitive schema
// equality.
func (r *Relation) Equal(o *Relation) bool {
	if !r.schema.Equal(o.schema) || len(r.rows) != len(o.rows) {
		return false
	}
	for k := range r.rows {
		if _, ok := o.rows[k]; !ok {
			return false
		}
	}
	return true
}

// EqualContents reports set equality of tuples after aligning o's columns
// to r's schema by name. Schemas must contain the same attribute names.
func (r *Relation) EqualContents(o *Relation) bool {
	if len(r.schema) != len(o.schema) || len(r.rows) != len(o.rows) {
		return false
	}
	perm, err := o.schema.Indexes(r.schema)
	if err != nil {
		return false
	}
	for _, t := range o.rows {
		aligned := make(Tuple, len(perm))
		for i, j := range perm {
			aligned[i] = t[j]
		}
		if !r.Contains(aligned) {
			return false
		}
	}
	return true
}

// ContentKey returns an injective encoding of the relation's contents
// (schema + sorted tuple keys), suitable for hashing whole relations, and
// hence worlds, and hence world-sets.
func (r *Relation) ContentKey() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.schema, ","))
	b.WriteByte('|')
	keys := make([]string, 0, len(r.rows))
	for k := range r.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(0x1e)
	}
	return b.String()
}

// Project returns a new relation keeping the columns at the given
// indexes, in that order, with the given output names. Duplicate rows
// collapse (set semantics).
func (r *Relation) Project(idx []int, names Schema) *Relation {
	out := New(names)
	for _, t := range r.rows {
		p := make(Tuple, len(idx))
		for i, j := range idx {
			p[i] = t[j]
		}
		out.Insert(p)
	}
	return out
}

// String renders the relation as an ASCII table in the style of the
// paper's figures: header row of attribute names, one row per tuple,
// sorted.
func (r *Relation) String() string { return r.Render("") }

// Render renders the relation with an optional caption.
func (r *Relation) Render(caption string) string {
	cols := len(r.schema)
	widths := make([]int, cols)
	for i, n := range r.schema {
		widths[i] = len([]rune(n))
	}
	tuples := r.Tuples()
	cells := make([][]string, len(tuples))
	for ti, t := range tuples {
		row := make([]string, cols)
		for i, v := range t {
			row[i] = v.String()
			if w := len([]rune(row[i])); w > widths[i] {
				widths[i] = w
			}
		}
		cells[ti] = row
	}
	var b strings.Builder
	if caption != "" {
		b.WriteString(caption)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len([]rune(c)); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.schema)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, row := range cells {
		writeRow(row)
	}
	if len(tuples) == 0 {
		b.WriteString("(empty)\n")
	}
	return b.String()
}
