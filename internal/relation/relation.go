package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"worldsetdb/internal/hashkey"
	"worldsetdb/internal/value"
)

// Tuple is an ordered list of values conforming to some schema.
type Tuple []value.Value

// Key returns an injective encoding of the tuple, usable as a map key.
// Hot paths should prefer Hash plus Equal verification; Key is kept for
// the places that need injectivity (ContentKey, deterministic ordering
// of world enumerations).
func (t Tuple) Key() string {
	var b []byte
	for _, v := range t {
		b = v.AppendKey(b)
		b = append(b, 0x1f) // field separator; never produced by AppendKey payloads of equal length ambiguity
	}
	return string(b)
}

// Hash returns the FNV-1a digest of the whole tuple, allocation-free.
// Equal tuples (per value.Compare) hash identically; unequal tuples may
// collide, so callers must verify candidates with Equal.
func (t Tuple) Hash() uint64 {
	h := hashkey.Offset
	for _, v := range t {
		h = v.Hash(h)
		h = hashkey.Byte(h, 0x1f)
	}
	return h
}

// HashOn returns the FNV-1a digest of the columns at idx, in that order.
// A nil idx means all columns (identity projection).
func (t Tuple) HashOn(idx []int) uint64 {
	if idx == nil {
		return t.Hash()
	}
	h := hashkey.Offset
	for _, i := range idx {
		h = t[i].Hash(h)
		h = hashkey.Byte(h, 0x1f)
	}
	return h
}

// Equal reports value-wise equality (value.Compare == 0 per field).
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i].Compare(u[i]) != 0 {
			return false
		}
	}
	return true
}

// EqualOn reports whether t's columns at tIdx equal u's columns at uIdx.
// A nil index list means all columns of the respective tuple. The two
// lists must have the same effective length.
func (t Tuple) EqualOn(u Tuple, tIdx, uIdx []int) bool {
	if tIdx == nil && uIdx == nil {
		return t.Equal(u)
	}
	n := len(tIdx)
	if tIdx == nil {
		n = len(t)
	}
	for p := 0; p < n; p++ {
		ti, ui := p, p
		if tIdx != nil {
			ti = tIdx[p]
		}
		if uIdx != nil {
			ui = uIdx[p]
		}
		if t[ti].Compare(u[ui]) != 0 {
			return false
		}
	}
	return true
}

// Project returns the tuple's columns at idx, in that order, as a new
// tuple.
func (t Tuple) Project(idx []int) Tuple {
	p := make(Tuple, len(idx))
	for i, j := range idx {
		p[i] = t[j]
	}
	return p
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Less orders tuples lexicographically.
func (t Tuple) Less(u Tuple) bool {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c < 0
		}
	}
	return len(t) < len(u)
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "⟨" + strings.Join(parts, ", ") + "⟩"
}

// Relation is a set of tuples over a schema. The zero Relation is not
// usable; construct with New. Relations are mutable until shared; all
// algebra operators in package ra allocate fresh results. Once a
// relation is shared (stored in a world-set, passed to a parallel
// operator) it must not be mutated: concurrent readers rely on it, and
// sibling relations created by WithSchema share the row storage.
//
// Rows are stored in hash buckets keyed by the tuples' FNV-1a digest
// with exact value comparison on collision, so membership tests and
// inserts allocate no key strings.
type Relation struct {
	schema Schema
	rows   map[uint64][]Tuple
	n      int

	// mu guards the lazily computed caches below. The row storage itself
	// is not guarded: mutation is only legal before the relation is
	// shared.
	mu      sync.Mutex
	ck      string
	ckValid bool
	chash   uint64
	chValid bool
	indexes map[string]*Index
}

// New returns an empty relation over the given schema.
func New(schema Schema) *Relation {
	return &Relation{schema: schema, rows: make(map[uint64][]Tuple)}
}

// FromRows builds a relation over schema containing the given tuples.
// Each row must have exactly len(schema) values.
func FromRows(schema Schema, rows ...Tuple) *Relation {
	r := New(schema)
	for _, t := range rows {
		r.Insert(t)
	}
	return r
}

// Schema returns the relation's schema. Callers must not mutate it.
func (r *Relation) Schema() Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.n }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return r.n == 0 }

// invalidate drops memoized caches after a mutation.
func (r *Relation) invalidate() {
	if r.ckValid || r.chValid || r.indexes != nil {
		r.mu.Lock()
		r.ck, r.ckValid = "", false
		r.chash, r.chValid = 0, false
		r.indexes = nil
		r.mu.Unlock()
	}
}

// Insert adds a tuple, reporting whether it was new. It panics if the
// arity does not match the schema: arity mismatches are program bugs, not
// data errors.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != len(r.schema) {
		panic(fmt.Sprintf("relation: inserting arity-%d tuple into schema %v", len(t), r.schema))
	}
	h := t.Hash()
	for _, u := range r.rows[h] {
		if t.Equal(u) {
			return false
		}
	}
	r.rows[h] = append(r.rows[h], t)
	r.n++
	r.invalidate()
	return true
}

// InsertDistinct adds a tuple the caller guarantees is not already
// present, skipping the membership scan. The parallel operator merges in
// package physical use it: their partitioning schemes hash equal tuples
// to the same partition and deduplicate within partitions, so
// cross-partition duplicates cannot occur. Anywhere that guarantee does
// not hold, use Insert.
func (r *Relation) InsertDistinct(t Tuple) {
	if len(t) != len(r.schema) {
		panic(fmt.Sprintf("relation: inserting arity-%d tuple into schema %v", len(t), r.schema))
	}
	h := t.Hash()
	r.rows[h] = append(r.rows[h], t)
	r.n++
	r.invalidate()
}

// InsertValues is Insert with a variadic convenience signature.
func (r *Relation) InsertValues(vs ...value.Value) bool { return r.Insert(Tuple(vs)) }

// Delete removes a tuple if present, reporting whether it was there.
func (r *Relation) Delete(t Tuple) bool {
	h := t.Hash()
	bucket := r.rows[h]
	for i, u := range bucket {
		if t.Equal(u) {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			if len(bucket) == 0 {
				delete(r.rows, h)
			} else {
				r.rows[h] = bucket
			}
			r.n--
			r.invalidate()
			return true
		}
	}
	return false
}

// Contains reports tuple membership.
func (r *Relation) Contains(t Tuple) bool {
	for _, u := range r.rows[t.Hash()] {
		if t.Equal(u) {
			return true
		}
	}
	return false
}

// ContainsProj reports whether some tuple of r equals t's columns at
// idx. r's tuples are compared in full, so idx must have length
// len(r.Schema()). Used to probe set membership with a projection of a
// wider tuple without materializing it.
func (r *Relation) ContainsProj(t Tuple, idx []int) bool {
	for _, u := range r.rows[t.HashOn(idx)] {
		if u.EqualOn(t, nil, idx) {
			return true
		}
	}
	return false
}

// Each calls f for every tuple in unspecified order. f must not mutate
// the relation.
func (r *Relation) Each(f func(Tuple)) {
	for _, bucket := range r.rows {
		for _, t := range bucket {
			f(t)
		}
	}
}

// Tuples returns the tuples sorted lexicographically, for deterministic
// printing and comparison in tests.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, r.n)
	for _, bucket := range r.rows {
		out = append(out, bucket...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Clone returns a deep-enough copy (tuples are immutable by convention).
func (r *Relation) Clone() *Relation {
	c := &Relation{schema: r.schema.Clone(), rows: make(map[uint64][]Tuple, len(r.rows)), n: r.n}
	for h, bucket := range r.rows {
		c.rows[h] = append([]Tuple(nil), bucket...)
	}
	return c
}

// WithSchema returns a relation with the same rows but attribute names
// replaced by the given schema (same arity). Used for renaming. The
// result shares row storage with r; neither may be mutated afterwards.
func (r *Relation) WithSchema(s Schema) *Relation {
	if len(s) != len(r.schema) {
		panic("relation: WithSchema arity mismatch")
	}
	return &Relation{schema: s, rows: r.rows, n: r.n}
}

// Equal reports set equality of tuples and order-sensitive schema
// equality.
func (r *Relation) Equal(o *Relation) bool {
	if !r.schema.Equal(o.schema) || r.n != o.n {
		return false
	}
	for _, bucket := range r.rows {
		for _, t := range bucket {
			if !o.Contains(t) {
				return false
			}
		}
	}
	return true
}

// EqualContents reports set equality of tuples after aligning o's columns
// to r's schema by name. Schemas must contain the same attribute names.
func (r *Relation) EqualContents(o *Relation) bool {
	if len(r.schema) != len(o.schema) || r.n != o.n {
		return false
	}
	perm, err := o.schema.Indexes(r.schema)
	if err != nil {
		return false
	}
	equal := true
	o.Each(func(t Tuple) {
		if equal && !r.ContainsProj(t, perm) {
			equal = false
		}
	})
	return equal
}

// ContentKey returns an injective encoding of the relation's contents
// (schema + sorted tuple keys), suitable for hashing whole relations, and
// hence worlds, and hence world-sets. The key is memoized: world-set
// deduplication calls ContentKey once per world per relation instance,
// and instances are routinely shared across many worlds. The memo is
// invalidated by Insert/Delete and safe under concurrent readers.
func (r *Relation) ContentKey() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ckValid {
		return r.ck
	}
	var b strings.Builder
	b.WriteString(strings.Join(r.schema, ","))
	b.WriteByte('|')
	keys := make([]string, 0, r.n)
	for _, bucket := range r.rows {
		for _, t := range bucket {
			keys = append(keys, t.Key())
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(0x1e)
	}
	r.ck, r.ckValid = b.String(), true
	return r.ck
}

// ContentHash returns a digest of the relation's contents (schema plus
// the set of tuples), memoized like ContentKey. Equal relations hash
// equally; unequal relations may collide, so consumers (world-set
// deduplication) must verify candidates with Equal. Tuple digests are
// avalanched and combined with XOR, so the digest is independent of
// iteration order without sorting — unlike ContentKey, computing it
// allocates nothing.
func (r *Relation) ContentHash() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.chValid {
		return r.chash
	}
	h := hashkey.Offset
	for _, name := range r.schema {
		h = hashkey.String(h, name)
		h = hashkey.Byte(h, ',')
	}
	var set uint64
	for _, bucket := range r.rows {
		for _, t := range bucket {
			set ^= hashkey.Finalize(t.Hash())
		}
	}
	h = hashkey.Mix(h, set)
	h = hashkey.Uint64(h, uint64(r.n))
	r.chash, r.chValid = h, true
	return h
}

// Project returns a new relation keeping the columns at the given
// indexes, in that order, with the given output names. Duplicate rows
// collapse (set semantics).
func (r *Relation) Project(idx []int, names Schema) *Relation {
	out := New(names)
	for _, bucket := range r.rows {
		for _, t := range bucket {
			out.Insert(t.Project(idx))
		}
	}
	return out
}

// String renders the relation as an ASCII table in the style of the
// paper's figures: header row of attribute names, one row per tuple,
// sorted.
func (r *Relation) String() string { return r.Render("") }

// Render renders the relation with an optional caption.
func (r *Relation) Render(caption string) string {
	cols := len(r.schema)
	widths := make([]int, cols)
	for i, n := range r.schema {
		widths[i] = len([]rune(n))
	}
	tuples := r.Tuples()
	cells := make([][]string, len(tuples))
	for ti, t := range tuples {
		row := make([]string, cols)
		for i, v := range t {
			row[i] = v.String()
			if w := len([]rune(row[i])); w > widths[i] {
				widths[i] = w
			}
		}
		cells[ti] = row
	}
	var b strings.Builder
	if caption != "" {
		b.WriteString(caption)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len([]rune(c)); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.schema)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, row := range cells {
		writeRow(row)
	}
	if len(tuples) == 0 {
		b.WriteString("(empty)\n")
	}
	return b.String()
}
