package relation

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"worldsetdb/internal/value"
)

func tup(vals ...int64) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = value.Int(v)
	}
	return t
}

// TestSchemaResolution covers exact, suffix and ambiguous attribute
// lookup — the resolution rules SQL-style qualified names rely on.
func TestSchemaResolution(t *testing.T) {
	s := NewSchema("R1.CID", "R1.EID", "R2.CID")
	if got := s.Index("R1.EID"); got != 1 {
		t.Errorf("exact lookup = %d, want 1", got)
	}
	if got := s.Index("EID"); got != 1 {
		t.Errorf("suffix lookup = %d, want 1", got)
	}
	if got := s.Index("CID"); got != -1 {
		t.Errorf("ambiguous suffix lookup = %d, want -1", got)
	}
	if got := s.Index("R2.CID"); got != 2 {
		t.Errorf("qualified lookup = %d, want 2", got)
	}
	if got := s.Index("missing"); got != -1 {
		t.Errorf("missing lookup = %d, want -1", got)
	}
}

// TestSchemaDuplicatePanics: duplicate attributes are construction bugs.
func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSchema with duplicates must panic")
		}
	}()
	NewSchema("A", "B", "A")
}

// TestSchemaSetOps checks Intersect/Minus/Concat ordering semantics.
func TestSchemaSetOps(t *testing.T) {
	a := NewSchema("A", "B", "C")
	b := NewSchema("C", "D", "A")
	if got := a.Intersect(b); !got.Equal(Schema{"A", "C"}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(Schema{"B"}) {
		t.Errorf("Minus = %v", got)
	}
	if got := a.Concat(Schema{"D"}); !got.Equal(Schema{"A", "B", "C", "D"}) {
		t.Errorf("Concat = %v", got)
	}
}

// TestIDAttrClassification checks the '#' world-id convention.
func TestIDAttrClassification(t *testing.T) {
	s := NewSchema("A", "#w", "B", "#v1")
	if got := s.IDAttrs(); !got.Equal(Schema{"#w", "#v1"}) {
		t.Errorf("IDAttrs = %v", got)
	}
	if got := s.ValueAttrs(); !got.Equal(Schema{"A", "B"}) {
		t.Errorf("ValueAttrs = %v", got)
	}
}

// TestSetSemantics checks duplicate collapse, delete and membership.
func TestSetSemantics(t *testing.T) {
	r := New(NewSchema("A", "B"))
	if !r.Insert(tup(1, 2)) {
		t.Error("first insert should be new")
	}
	if r.Insert(tup(1, 2)) {
		t.Error("duplicate insert should report false")
	}
	// Int/Float equality: (1, 2.0) is the same tuple.
	if r.Insert(Tuple{value.Int(1), value.Float(2.0)}) {
		t.Error("numerically equal tuple should collapse")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	if !r.Delete(tup(1, 2)) || r.Delete(tup(1, 2)) {
		t.Error("delete semantics broken")
	}
	if !r.Empty() {
		t.Error("relation should be empty")
	}
}

// TestProjectDedup checks set-semantics projection.
func TestProjectDedup(t *testing.T) {
	r := FromRows(NewSchema("A", "B"), tup(1, 1), tup(1, 2), tup(2, 2))
	p := r.Project([]int{0}, NewSchema("A"))
	if p.Len() != 2 {
		t.Errorf("projection should collapse to 2 rows, got %d", p.Len())
	}
}

// TestEqualContents checks column alignment by name.
func TestEqualContents(t *testing.T) {
	a := FromRows(NewSchema("A", "B"), tup(1, 2), tup(3, 4))
	b := FromRows(NewSchema("B", "A"), tup(2, 1), tup(4, 3))
	if !a.EqualContents(b) {
		t.Error("EqualContents should align columns by name")
	}
	if a.Equal(b) {
		t.Error("Equal is order-sensitive and should fail here")
	}
	c := FromRows(NewSchema("B", "A"), tup(2, 1), tup(4, 5))
	if a.EqualContents(c) {
		t.Error("different contents must not compare equal")
	}
}

// TestContentKeyCharacterizes: equal keys iff equal relations.
func TestContentKeyCharacterizes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Relation {
			r := New(NewSchema("A", "B"))
			for i := 0; i < rng.Intn(5); i++ {
				r.Insert(tup(int64(rng.Intn(3)), int64(rng.Intn(3))))
			}
			return r
		}
		a, b := mk(), mk()
		return (a.ContentKey() == b.ContentKey()) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTuplesSorted checks deterministic iteration.
func TestTuplesSorted(t *testing.T) {
	r := FromRows(NewSchema("A"), tup(3), tup(1), tup(2))
	ts := r.Tuples()
	for i := 1; i < len(ts); i++ {
		if !ts[i-1].Less(ts[i]) {
			t.Fatalf("tuples not sorted: %v", ts)
		}
	}
}

// TestRender checks the paper-style ASCII table output.
func TestRender(t *testing.T) {
	r := FromRows(NewSchema("Dep", "Arr"),
		Tuple{value.Str("FRA"), value.Str("BCN")},
		Tuple{value.Str("FRA"), value.Str("ATL")})
	out := r.Render("Flights")
	for _, want := range []string{"Flights", "Dep", "Arr", "FRA", "BCN", "ATL"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering misses %q:\n%s", want, out)
		}
	}
	empty := New(NewSchema("A"))
	if !strings.Contains(empty.String(), "(empty)") {
		t.Error("empty relation should render a marker")
	}
}

// TestWithSchemaSharesRows: renaming is O(1) and views the same rows.
func TestWithSchemaSharesRows(t *testing.T) {
	r := FromRows(NewSchema("A"), tup(1))
	v := r.WithSchema(NewSchema("B"))
	if v.Len() != 1 || !v.Schema().Equal(Schema{"B"}) {
		t.Error("WithSchema should keep rows and swap names")
	}
}

// TestTupleKeySeparatorSafety: tuple keys must not confuse field
// boundaries (("ab", "c") vs ("a", "bc")).
func TestTupleKeySeparatorSafety(t *testing.T) {
	a := Tuple{value.Str("ab"), value.Str("c")}
	b := Tuple{value.Str("a"), value.Str("bc")}
	if a.Key() == b.Key() {
		t.Error("tuple keys must be injective across field boundaries")
	}
}
