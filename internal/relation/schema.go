// Package relation implements the named-perspective relational model the
// paper works in: schemas are ordered lists of named attributes, tuples
// are value lists, and relations are sets of tuples (the paper assumes
// set semantics for SQL, I-SQL and world-set algebra throughout).
//
// Attributes whose name starts with '#' are world-id attributes in the
// sense of Definition 5.1 (inlined representations); everything else is
// a value attribute. Keeping the distinction in the name lets the id/value
// split be "statically inferred", as §5.2 requires.
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// IDPrefix marks world-id attributes in inlined representations.
const IDPrefix = "#"

// IsIDAttr reports whether the attribute name denotes a world-id
// attribute of an inlined representation.
func IsIDAttr(name string) bool { return strings.HasPrefix(name, IDPrefix) }

// Schema is an ordered list of attribute names. Names must be unique
// within a schema.
type Schema []string

// NewSchema builds a schema, panicking on duplicate names: schema
// construction is programmer-controlled, so a duplicate is a bug.
func NewSchema(names ...string) Schema {
	s := Schema(names)
	if dup := s.firstDuplicate(); dup != "" {
		panic(fmt.Sprintf("relation: duplicate attribute %q in schema %v", dup, names))
	}
	return s
}

func (s Schema) firstDuplicate() string {
	seen := make(map[string]bool, len(s))
	for _, n := range s {
		if seen[n] {
			return n
		}
		seen[n] = true
	}
	return ""
}

// Index returns the position of the attribute with the given name, or -1.
// Resolution is by exact match first; if that fails and name is
// unqualified (no dot), a unique suffix match "X.name" succeeds, mirroring
// SQL's qualified-name resolution.
func (s Schema) Index(name string) int {
	for i, n := range s {
		if n == name {
			return i
		}
	}
	if !strings.Contains(name, ".") {
		found := -1
		for i, n := range s {
			if strings.HasSuffix(n, "."+name) {
				if found >= 0 {
					return -1 // ambiguous
				}
				found = i
			}
		}
		return found
	}
	return -1
}

// Contains reports whether the attribute resolves in s.
func (s Schema) Contains(name string) bool { return s.Index(name) >= 0 }

// Indexes resolves each name, returning an error naming the first
// attribute that does not resolve.
func (s Schema) Indexes(names []string) ([]int, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		j := s.Index(n)
		if j < 0 {
			return nil, fmt.Errorf("attribute %q not in schema %v", n, []string(s))
		}
		idx[i] = j
	}
	return idx, nil
}

// Equal reports order-sensitive schema equality.
func (s Schema) Equal(t Schema) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of s.
func (s Schema) Clone() Schema { return append(Schema(nil), s...) }

// Concat returns s followed by t. The result panics on duplicates, which
// mirrors the named algebra's requirement that product operands have
// disjoint attribute sets.
func (s Schema) Concat(t Schema) Schema {
	return NewSchema(append(append([]string{}, s...), t...)...)
}

// Intersect returns the attributes (in s's order) present in both schemas
// by exact name. Used by natural joins on shared id attributes.
func (s Schema) Intersect(t Schema) Schema {
	var out Schema
	for _, n := range s {
		if t.exactContains(n) {
			out = append(out, n)
		}
	}
	return out
}

// Minus returns the attributes of s (in order) not present in t by exact
// name.
func (s Schema) Minus(t Schema) Schema {
	var out Schema
	for _, n := range s {
		if !t.exactContains(n) {
			out = append(out, n)
		}
	}
	return out
}

func (s Schema) exactContains(name string) bool {
	for _, n := range s {
		if n == name {
			return true
		}
	}
	return false
}

// IDAttrs returns the world-id attributes of s, in order.
func (s Schema) IDAttrs() Schema {
	var out Schema
	for _, n := range s {
		if IsIDAttr(n) {
			out = append(out, n)
		}
	}
	return out
}

// ValueAttrs returns the non-id attributes of s, in order.
func (s Schema) ValueAttrs() Schema {
	var out Schema
	for _, n := range s {
		if !IsIDAttr(n) {
			out = append(out, n)
		}
	}
	return out
}

// SortedNames returns the attribute names in lexicographic order,
// without mutating s.
func (s Schema) SortedNames() []string {
	out := append([]string{}, s...)
	sort.Strings(out)
	return out
}

func (s Schema) String() string { return "(" + strings.Join(s, ", ") + ")" }
