package rewrite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
)

// The equivalence tests run over the schema R(A, B, C), S(D).
var (
	eqNames   = []string{"R", "S"}
	eqSchemas = []relation.Schema{relation.NewSchema("A", "B", "C"), relation.NewSchema("D")}
)

func rel(name string) wsa.Expr { return &wsa.Rel{Name: name} }
func proj(from wsa.Expr, cols ...string) wsa.Expr {
	return &wsa.Project{Columns: cols, From: from}
}
func sel(from wsa.Expr, pred ra.Pred) wsa.Expr { return &wsa.Select{Pred: pred, From: from} }
func choice(from wsa.Expr, attrs ...string) wsa.Expr {
	return &wsa.Choice{Attrs: attrs, From: from}
}
func ren(from wsa.Expr, a, b string) wsa.Expr {
	return &wsa.Rename{Pairs: []ra.RenamePair{{From: a, To: b}}, From: from}
}

// checkEquivalence property-tests lhs ≡ rhs over random world-sets. If
// singleton is true, inputs are restricted to one world (complete
// databases), the sound setting for the CompleteOnly rules.
func checkEquivalence(t *testing.T, id string, lhs, rhs wsa.Expr, singleton bool) {
	t.Helper()
	maxWorlds := 4
	if singleton {
		maxWorlds = 1
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ws := datagen.RandomWorldSet(rng, eqNames, eqSchemas, 3, 4, maxWorlds)
		l, err := wsa.Eval(lhs, ws)
		if err != nil {
			t.Fatalf("%s lhs %s: %v", id, lhs, err)
		}
		r, err := wsa.Eval(rhs, ws)
		if err != nil {
			t.Fatalf("%s rhs %s: %v", id, rhs, err)
		}
		return l.EqualWorlds(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("equation %s: %s ≢ %s: %v", id, lhs, rhs, err)
	}
}

// TestEquivalencesFigure7 verifies each equation of Figure 7 (in its
// sound form — see the counterexample tests for the printed forms that
// fail) against the Figure 3 reference semantics.
func TestEquivalencesFigure7(t *testing.T) {
	a1 := ra.EqConst("A", value.Int(1))
	cases := []struct {
		id        string
		lhs, rhs  wsa.Expr
		singleton bool // only sound on complete inputs
	}{
		{"(1)", wsa.NewPoss(sel(choice(rel("R"), "B"), a1)), sel(wsa.NewPoss(choice(rel("R"), "B")), a1), false},
		{"(2)", wsa.NewPoss(proj(choice(rel("R"), "B"), "A")), proj(wsa.NewPoss(choice(rel("R"), "B")), "A"), false},
		{"(3)", wsa.NewPoss(wsa.NewUnion(proj(rel("R"), "A"), ren(rel("S"), "D", "A"))),
			wsa.NewUnion(wsa.NewPoss(proj(rel("R"), "A")), wsa.NewPoss(ren(rel("S"), "D", "A"))), false},
		{"(4)", wsa.NewCert(sel(choice(rel("R"), "B"), a1)), sel(wsa.NewCert(choice(rel("R"), "B")), a1), false},
		{"(5)", wsa.NewCert(wsa.NewIntersect(proj(choice(rel("R"), "B"), "A"), ren(rel("S"), "D", "A"))),
			wsa.NewIntersect(wsa.NewCert(proj(choice(rel("R"), "B"), "A")), wsa.NewCert(ren(rel("S"), "D", "A"))), false},
		{"(6)", wsa.NewCert(wsa.NewProduct(proj(choice(rel("R"), "B"), "A"), choice(rel("S"), "D"))),
			wsa.NewProduct(wsa.NewCert(proj(choice(rel("R"), "B"), "A")), wsa.NewCert(choice(rel("S"), "D"))), false},
		{"(7)", proj(choice(rel("R"), "A"), "A", "B"), choice(proj(rel("R"), "A", "B"), "A"), false},
		{"(8)", choice(wsa.NewProduct(proj(rel("R"), "A", "B"), rel("S")), "A"),
			wsa.NewProduct(choice(proj(rel("R"), "A", "B"), "A"), rel("S")), false},
		{"(9) restricted", sel(wsa.NewPossGroup([]string{"A", "B"}, []string{"A"}, choice(rel("R"), "C")), a1),
			wsa.NewPossGroup([]string{"A", "B"}, []string{"A"}, sel(choice(rel("R"), "C"), a1)), false},
		{"(10) restricted", sel(wsa.NewCertGroup([]string{"A", "B"}, []string{"A"}, choice(rel("R"), "C")), a1),
			wsa.NewCertGroup([]string{"A", "B"}, []string{"A"}, sel(choice(rel("R"), "C"), a1)), false},
		{"(11)", wsa.NewPoss(choice(rel("R"), "A")), wsa.NewPoss(rel("R")), false},
		{"(12)p", wsa.NewPossGroup([]string{"A", "B"}, []string{"A"}, choice(rel("R"), "C")),
			proj(choice(rel("R"), "C"), "A"), false},
		{"(12)c", wsa.NewCertGroup([]string{"A", "B"}, []string{"A"}, choice(rel("R"), "C")),
			proj(choice(rel("R"), "C"), "A"), false},
		{"(13)", proj(wsa.NewPossGroup([]string{"A", "C"}, []string{"A", "B"}, choice(rel("R"), "B")), "A"),
			proj(choice(rel("R"), "B"), "A"), false},
		{"(14)", proj(wsa.NewPossGroup([]string{"A"}, []string{"A", "B"}, choice(rel("R"), "C")), "B"),
			wsa.NewPossGroup([]string{"A"}, []string{"B"}, choice(rel("R"), "C")), false},
		{"(15)", wsa.NewPoss(wsa.NewPossGroup([]string{"C"}, []string{"A", "B"}, choice(rel("R"), "A"))),
			wsa.NewPoss(proj(choice(rel("R"), "A"), "A", "B")), false},
		{"(16)", wsa.NewCert(wsa.NewCertGroup([]string{"C"}, []string{"A", "B"}, choice(rel("R"), "A"))),
			wsa.NewCert(proj(choice(rel("R"), "A"), "A", "B")), false},
		{"(17) commute", choice(choice(rel("R"), "B"), "A"), choice(choice(rel("R"), "A"), "B"), false},
		{"(17) merge", choice(choice(rel("R"), "B"), "A"), choice(rel("R"), "A", "B"), false},
		{"(18) restricted p-outer",
			wsa.NewPossGroup([]string{"A", "B"}, []string{"A"},
				wsa.NewPossGroup([]string{"A", "B"}, []string{"A", "B"}, choice(rel("R"), "C"))),
			wsa.NewPossGroup([]string{"A", "B"}, []string{"A"}, choice(rel("R"), "C")), false},
		{"(18) restricted c-outer",
			wsa.NewCertGroup([]string{"A", "B"}, []string{"A"},
				wsa.NewPossGroup([]string{"A", "B"}, []string{"A", "B"}, choice(rel("R"), "C"))),
			wsa.NewPossGroup([]string{"A", "B"}, []string{"A"}, choice(rel("R"), "C")), false},
		{"(20) restricted", wsa.NewPossGroup([]string{"A"}, []string{"A", "B"}, choice(rel("R"), "A", "C")),
			proj(choice(rel("R"), "A"), "A", "B"), true},
		{"(21) restricted", wsa.NewCertGroup([]string{"A"}, []string{"B"}, choice(rel("R"), "A")),
			proj(choice(rel("R"), "A"), "B"), true},
		{"(22) poss∘cert", wsa.NewPoss(wsa.NewCert(choice(rel("R"), "A"))), wsa.NewCert(choice(rel("R"), "A")), false},
		{"(22) cert∘cert", wsa.NewCert(wsa.NewCert(choice(rel("R"), "A"))), wsa.NewCert(choice(rel("R"), "A")), false},
		{"(23) poss∘poss", wsa.NewPoss(wsa.NewPoss(choice(rel("R"), "A"))), wsa.NewPoss(choice(rel("R"), "A")), false},
		{"(23) cert∘poss", wsa.NewCert(wsa.NewPoss(choice(rel("R"), "A"))), wsa.NewPoss(choice(rel("R"), "A")), false},
		{"(24)", wsa.NewCert(wsa.NewDiff(choice(rel("R"), "A"), sel(rel("R"), ra.EqConst("B", value.Int(1))))),
			wsa.NewCert(wsa.NewDiff(wsa.NewCert(choice(rel("R"), "A")), sel(rel("R"), ra.EqConst("B", value.Int(1))))), false},
		{"(25)", wsa.NewCert(choice(rel("R"), "A")),
			wsa.NewDiff(choice(rel("R"), "A"),
				wsa.NewPoss(wsa.NewDiff(wsa.NewPoss(choice(rel("R"), "A")), choice(rel("R"), "A")))), false},
		{"(26)", wsa.NewPoss(proj(choice(rel("R"), "B"), "A")),
			wsa.NewDiff(wsa.NewPoss(proj(rel("R"), "A")),
				wsa.NewCert(wsa.NewDiff(wsa.NewPoss(proj(rel("R"), "A")), proj(choice(rel("R"), "B"), "A")))), false},
		{"(8)+(17) derived", wsa.NewProduct(choice(proj(rel("R"), "A", "B"), "A"), choice(rel("S"), "D")),
			choice(wsa.NewProduct(proj(rel("R"), "A", "B"), rel("S")), "A", "D"), false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			checkEquivalence(t, c.id, c.lhs, c.rhs, c.singleton)
		})
	}
}

// evalOn evaluates q on ws, failing the test on error.
func evalOn(t *testing.T, q wsa.Expr, ws *worldset.WorldSet) *worldset.WorldSet {
	t.Helper()
	out, err := wsa.Eval(q, ws)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return out
}

func mkR(rows ...[3]int64) *relation.Relation {
	r := relation.New(eqSchemas[0])
	for _, row := range rows {
		r.InsertValues(value.Int(row[0]), value.Int(row[1]), value.Int(row[2]))
	}
	return r
}

func twoWorldInput(r1, r2 *relation.Relation) *worldset.WorldSet {
	ws := worldset.New(eqNames, eqSchemas)
	s := relation.New(eqSchemas[1])
	ws.Add(worldset.World{r1, s})
	ws.Add(worldset.World{r2, s.Clone()})
	return ws
}

func singletonInput(r *relation.Relation) *worldset.WorldSet {
	return worldset.FromDB(eqNames, []*relation.Relation{r, relation.New(eqSchemas[1])})
}

// TestPaperFormCounterexamples records concrete counterexamples to the
// Figure 7 equations as printed; the library's rule set uses the sound
// restrictions instead (see rules.go and EXPERIMENTS.md).
func TestPaperFormCounterexamples(t *testing.T) {
	a1 := ra.EqConst("A", value.Int(1))

	t.Run("(9) unrestricted", func(t *testing.T) {
		// Worlds {(1,7,0),(2,0,0)} and {(1,8,0),(3,0,0)}: the selection
		// A=1 merges the groups {1,2} and {1,3} into {1}, so pushing σ
		// below pγ changes the grouping.
		ws := twoWorldInput(mkR([3]int64{1, 7, 0}, [3]int64{2, 0, 0}), mkR([3]int64{1, 8, 0}, [3]int64{3, 0, 0}))
		lhs := sel(wsa.NewPossGroup([]string{"A"}, []string{"A", "B"}, rel("R")), a1)
		rhs := wsa.NewPossGroup([]string{"A"}, []string{"A", "B"}, sel(rel("R"), a1))
		if evalOn(t, lhs, ws).EqualWorlds(evalOn(t, rhs, ws)) {
			t.Fatal("expected the unrestricted equation (9) to fail on this instance")
		}
	})

	t.Run("(18) X subset of inner grouping", func(t *testing.T) {
		// χ_{A,B} creates worlds {(1,1,0)} and {(1,2,0)}; the outer pγ
		// grouped on A ⊊ {A,B} merges them, the right-hand side does not.
		ws := singletonInput(mkR([3]int64{1, 1, 0}, [3]int64{1, 2, 0}))
		inner := wsa.NewPossGroup([]string{"A", "B"}, []string{"A", "B"}, choice(rel("R"), "A", "B"))
		lhs := wsa.NewPossGroup([]string{"A"}, []string{"A", "B"}, inner)
		rhs := wsa.NewPossGroup([]string{"A", "B"}, []string{"A", "B"}, choice(rel("R"), "A", "B"))
		if evalOn(t, lhs, ws).EqualWorlds(evalOn(t, rhs, ws)) {
			t.Fatal("expected the unrestricted equation (18) to fail on this instance")
		}
	})

	t.Run("(19) inner cγ", func(t *testing.T) {
		// Both choice worlds share π_A = {1} but intersect to ∅ under the
		// inner cγ, so the outer pγ sees empty answers while the
		// right-hand side keeps {1}.
		ws := singletonInput(mkR([3]int64{1, 1, 0}, [3]int64{1, 2, 0}))
		inner := wsa.NewCertGroup([]string{"A"}, []string{"A", "B"}, choice(rel("R"), "A", "B"))
		lhs := wsa.NewPossGroup([]string{"A"}, []string{"A"}, inner)
		rhs := wsa.NewCertGroup([]string{"A"}, []string{"A"}, choice(rel("R"), "A", "B"))
		if evalOn(t, lhs, ws).EqualWorlds(evalOn(t, rhs, ws)) {
			t.Fatal("expected equation (19) to fail on this instance")
		}
	})

	t.Run("(21) choice attrs beyond grouping", func(t *testing.T) {
		// Worlds {(1,1,0)} and {(1,2,0)} from χ_{A,B} group together on
		// A and intersect their B-projections to ∅; π_B keeps {1}, {2}.
		ws := singletonInput(mkR([3]int64{1, 1, 0}, [3]int64{1, 2, 0}))
		lhs := wsa.NewCertGroup([]string{"A"}, []string{"B"}, choice(rel("R"), "A", "B"))
		rhs := proj(choice(rel("R"), "A", "B"), "B")
		if evalOn(t, lhs, ws).EqualWorlds(evalOn(t, rhs, ws)) {
			t.Fatal("expected the printed equation (21) to fail on this instance")
		}
	})

	t.Run("(20) multi-world input", func(t *testing.T) {
		// On a two-world input, the pγ side merges choice worlds that
		// descend from different input worlds; the π∘χ side does not.
		ws := twoWorldInput(mkR([3]int64{1, 7, 0}), mkR([3]int64{1, 8, 0}))
		lhs := wsa.NewPossGroup([]string{"A"}, []string{"A", "B"}, choice(rel("R"), "A"))
		rhs := proj(choice(rel("R"), "A"), "A", "B")
		if evalOn(t, lhs, ws).EqualWorlds(evalOn(t, rhs, ws)) {
			t.Fatal("expected equation (20) to fail on multi-world inputs")
		}
	})
}
