package rewrite

import (
	"fmt"
	"math"
	"strings"

	"worldsetdb/internal/ra"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
)

// This file is the planner's cardinality-propagating cost estimator.
// Instead of the old purely structural constants (product=+10,
// group=+20, ...), every operator's expense is derived from the
// estimated cardinality of its inputs — seeded, when decomposition
// statistics are available, with the actual certain/alternative tuple
// counts of the base relations — times the estimated world multiplier
// its input carries: choice-of and repair-by-key multiply worlds,
// group-worlds-by pairs them quadratically, and poss/cert collapse them
// back to one. The absolute numbers still only matter relative to one
// another; callers must never pin them.

// TableStat is the planner's view of one base relation, extracted from
// wsd.Stats (StatsOf) or supplied directly in tests.
type TableStat struct {
	// Certain and Alternative are the tuple counts of the relation's
	// certain part and of all alternatives' contributions across
	// components.
	Certain, Alternative float64
	// Components is the number of decomposition components contributing
	// to the relation.
	Components int
}

// Stats maps relation names to their decomposition statistics. A nil
// map (or a missing entry) falls back to defaultCard tuples per
// relation, which reproduces a purely structural — but still
// cardinality-shaped — model.
type Stats map[string]TableStat

// StatsOf extracts planner statistics from a decomposition — the
// adapter between the wsd.Stats snapshots carry and the name-keyed
// view the estimator propagates.
func StatsOf(db *wsd.DecompDB) Stats {
	s := db.Stats()
	out := make(Stats, len(db.Names))
	for i, name := range db.Names {
		r := s.Rel(i)
		out[name] = TableStat{
			Certain:     float64(r.Certain),
			Alternative: float64(r.Alternative),
			Components:  r.Components,
		}
	}
	return out
}

// Selectivity defaults per predicate class, and the cardinality assumed
// for relations without statistics.
const (
	selEq       = 0.1  // equality conjunct
	selNe       = 0.9  // inequality
	selRange    = 0.33 // <, <=, >, >=
	selDefault  = 0.5  // anything else (Not, unknown)
	distinctFrc = 0.2  // distinct-value fraction for choice-of world growth
	defaultCard = 100  // tuples assumed for a relation with no stats
	costCeil    = 1e15 // clamp: comparisons stay total, no Inf/NaN
)

// selectivity estimates the fraction of tuples a predicate keeps.
func selectivity(p ra.Pred) float64 {
	switch n := p.(type) {
	case ra.True:
		return 1
	case ra.Cmp:
		switch n.Op {
		case ra.OpEq:
			return selEq
		case ra.OpNe:
			return selNe
		default:
			return selRange
		}
	case ra.And:
		return selectivity(n.L) * selectivity(n.R)
	case ra.Or:
		s := selectivity(n.L) + selectivity(n.R)
		if s > 1 {
			return 1
		}
		return s
	case ra.Not:
		return 1 - selectivity(n.P)
	}
	return selDefault
}

func clamp(x float64) float64 {
	if x > costCeil {
		return costCeil
	}
	if x < 0 || x != x { // negative or NaN: defensive
		return 0
	}
	return x
}

// wfac damps a world multiplier into a cost factor: factorized
// evaluation is largely world-count-independent (cost follows pieces,
// not worlds), so carrying worlds linearly into cost would both
// misprice the native engine and wall off the uphill intermediate
// states the equivalence search must pass through (hoisting a close
// above a choice-of so equation (11) can absorb it). Logarithmic
// scaling keeps world growth strictly penalized while leaving those
// paths reachable under the branch-and-bound bound.
func wfac(worlds float64) float64 {
	if worlds <= 1 {
		return 1
	}
	return 1 + math.Log2(worlds)
}

// estimate is the propagated (cardinality, world multiplier, cost)
// triple of a subplan: card is the estimated tuple count of the output
// per world, worlds the estimated factor by which the subplan's
// operators multiplied the world count (choice-of, repair; closes
// collapse it back to 1), and cost the cumulative work — per-operator
// work is the input cardinality scaled by the worlds it exists in.
type estimate struct {
	card   float64
	worlds float64
	cost   float64
}

// estimateOn propagates estimates bottom-up.
func estimateOn(q wsa.Expr, st Stats) estimate {
	switch n := q.(type) {
	case *wsa.Rel:
		card := float64(defaultCard)
		if t, ok := st[n.Name]; ok {
			card = t.Certain + t.Alternative
		}
		return estimate{card: card, worlds: 1, cost: card}
	case *wsa.Select:
		in := estimateOn(n.From, st)
		return estimate{
			card:   clamp(in.card * selectivity(n.Pred)),
			worlds: in.worlds,
			cost:   clamp(in.cost + in.card*wfac(in.worlds)),
		}
	case *wsa.Project:
		in := estimateOn(n.From, st)
		return estimate{card: in.card, worlds: in.worlds,
			cost: clamp(in.cost + in.card*wfac(in.worlds))}
	case *wsa.Rename:
		in := estimateOn(n.From, st)
		return estimate{card: in.card, worlds: in.worlds,
			cost: clamp(in.cost + 0.1*in.card*wfac(in.worlds))}
	case *wsa.BinOp:
		l, r := estimateOn(n.L, st), estimateOn(n.R, st)
		w := clamp(l.worlds * r.worlds)
		var card float64
		switch n.Kind {
		case wsa.OpProduct:
			card = clamp(l.card * r.card)
		case wsa.OpUnion:
			card = clamp(l.card + r.card)
		case wsa.OpIntersect:
			card = l.card
			if r.card < card {
				card = r.card
			}
			card *= 0.5
		case wsa.OpDiff:
			card = l.card * 0.7
		default:
			card = clamp(l.card + r.card)
		}
		return estimate{card: card, worlds: w,
			cost: clamp(l.cost + r.cost + (l.card+r.card+card)*wfac(w))}
	case *wsa.Join:
		l, r := estimateOn(n.L, st), estimateOn(n.R, st)
		w := clamp(l.worlds * r.worlds)
		card := clamp(l.card * r.card * selectivity(n.Pred))
		return estimate{card: card, worlds: w,
			cost: clamp(l.cost + r.cost + (l.card+r.card+card)*wfac(w))}
	case *wsa.Choice:
		in := estimateOn(n.From, st)
		// choice-of splits every world by the distinct values of the
		// chosen attributes: the world multiplier grows by the estimated
		// distinct count, and the split itself touches every input tuple
		// in every world.
		distinct := in.card * distinctFrc
		if distinct < 2 {
			distinct = 2
		}
		return estimate{
			card:   in.card,
			worlds: clamp(in.worlds * distinct),
			cost:   clamp(in.cost + in.card*wfac(in.worlds) + distinct),
		}
	case *wsa.Group:
		in := estimateOn(n.From, st)
		// group-worlds-by pairs worlds: quadratic in the world-scaled
		// input — the dominating operator of the algebra, as in the old
		// structural model, but now proportional to what it actually
		// touches.
		wcard := clamp(in.card * wfac(in.worlds))
		return estimate{card: in.card, worlds: in.worlds,
			cost: clamp(in.cost + wcard*(1+0.1*wcard))}
	case *wsa.Close:
		in := estimateOn(n.From, st)
		card := in.card
		if n.Kind == wsa.CloseCert {
			card *= 0.5
		}
		// poss/cert collapse the world-set to a single certain answer:
		// everything above a close is evaluated once, which is why
		// pushing closes down (equations (11), (15), (16)) wins.
		return estimate{card: card, worlds: 1,
			cost: clamp(in.cost + in.card*wfac(in.worlds))}
	case *wsa.RepairKey:
		in := estimateOn(n.From, st)
		// repair-by-key multiplies worlds per key-violating group and
		// rescans the input per choice.
		dups := in.card * distinctFrc
		if dups < 2 {
			dups = 2
		}
		return estimate{
			card:   in.card,
			worlds: clamp(in.worlds * dups),
			cost:   clamp(in.cost + 4*in.card*wfac(in.worlds) + dups),
		}
	}
	return estimate{card: defaultCard, worlds: 1, cost: defaultCard}
}

// Cost estimates the evaluation expense of a WSA plan with no
// decomposition statistics (base relations assume defaultCard tuples).
// The absolute numbers only matter relative to one another; callers
// must compare plans, never pin values.
func Cost(q wsa.Expr) float64 { return CostOn(q, nil) }

// CostOn estimates the evaluation expense of a WSA plan under the given
// decomposition statistics.
func CostOn(q wsa.Expr, st Stats) float64 { return estimateOn(q, st).cost }

// EstimateCard returns the estimated output cardinality (tuples per
// world) of a plan under the given statistics — the per-operator number
// EXPLAIN prints and EXPLAIN ANALYZE compares against actual output.
func EstimateCard(q wsa.Expr, st Stats) float64 { return estimateOn(q, st).card }

// opLabel is a short operator name for estimate rendering.
func opLabel(q wsa.Expr) string {
	switch n := q.(type) {
	case *wsa.Rel:
		return "rel " + n.Name
	case *wsa.Select:
		return "select " + n.Pred.String()
	case *wsa.Project:
		return "project " + strings.Join(n.Columns, ",")
	case *wsa.Rename:
		return "rename"
	case *wsa.BinOp:
		switch n.Kind {
		case wsa.OpProduct:
			return "product"
		case wsa.OpUnion:
			return "union"
		case wsa.OpIntersect:
			return "intersect"
		default:
			return "diff"
		}
	case *wsa.Join:
		return "join " + n.Pred.String()
	case *wsa.Choice:
		return "choice-of " + strings.Join(n.Attrs, ",")
	case *wsa.Group:
		return "group-worlds-by"
	case *wsa.Close:
		if n.Kind == wsa.CloseCert {
			return "cert"
		}
		return "poss"
	case *wsa.RepairKey:
		return "repair-by-key " + strings.Join(n.Attrs, ",")
	}
	return "op"
}

// ExplainEstimates renders the plan operator by operator — root first,
// children indented — with the estimated cost and output cardinality of
// every subplan, the EXPLAIN surface for plan-choice inspection.
func ExplainEstimates(q wsa.Expr, st Stats) string {
	var b strings.Builder
	var walk func(q wsa.Expr, depth int)
	walk = func(q wsa.Expr, depth int) {
		e := estimateOn(q, st)
		fmt.Fprintf(&b, "%s%s  (cost=%.1f rows=%.1f worlds=%.1fx)\n",
			strings.Repeat("  ", depth), opLabel(q), e.cost, e.card, e.worlds)
		for _, c := range children(q) {
			walk(c, depth+1)
		}
	}
	walk(q, 0)
	return strings.TrimRight(b.String(), "\n")
}
