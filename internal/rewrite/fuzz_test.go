package rewrite

import (
	"math/rand"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/randquery"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/wsa"
)

// TestFuzzOptimizer generates random queries, optimizes them (in both
// the multi-world and the complete-input regimes) and cross-checks the
// optimized plan against the original on random inputs. This guards the
// whole rule set — including the side conditions added on top of the
// paper's Figure 7 — in composition, not just rule by rule.
func TestFuzzOptimizer(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz test skipped in -short mode")
	}
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A", "B"), relation.NewSchema("C")}
	env := wsa.NewEnv(names, schemas)
	rng := rand.New(rand.NewSource(777))
	gen := randquery.NewQueryGen(rng, names, schemas)
	opts := &Options{MaxExpansions: 400, MaxSize: 60}

	for qi := 0; qi < 120; qi++ {
		q := gen.Query(1 + rng.Intn(3))
		for _, complete := range []bool{false, true} {
			opt, trace := OptimizeOpts(q, env, complete, opts)
			if Cost(opt) > Cost(q) {
				t.Fatalf("optimizer increased cost: %s (%.1f) → %s (%.1f)",
					q, Cost(q), opt, Cost(opt))
			}
			maxWorlds := 4
			if complete {
				maxWorlds = 1
			}
			for wi := 0; wi < 3; wi++ {
				ws := datagen.RandomWorldSet(rng, names, schemas, 3, 3, maxWorlds)
				want, err := wsa.Eval(q, ws)
				if err != nil {
					t.Fatalf("query %d (%s): %v", qi, q, err)
				}
				got, err := wsa.Eval(opt, ws)
				if err != nil {
					t.Fatalf("query %d optimized (%s): %v", qi, opt, err)
				}
				if !got.EqualWorlds(want) {
					t.Fatalf("optimizer broke semantics (complete=%v)\noriginal: %s\noptimized: %s\ntrace: %v\ninput:\n%s",
						complete, q, opt, trace, ws)
				}
			}
		}
	}
}
