package rewrite

import (
	"container/heap"

	"worldsetdb/internal/obs"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/wsa"
)

// The plan cost model lives in estimate.go: a cardinality-propagating
// estimator (Cost, CostOn) seeded by decomposition statistics. This
// file is the search over the Figure 7 equivalence space that minimizes
// it, pruned branch-and-bound style against the best complete plan.

// SearchExpanded and SearchPruned count, across every rewrite search in
// the process, the candidate plans expanded versus abandoned by the
// branch-and-bound bound — exported at isqld /metrics as
// wsdb_rewrite_expanded_total / wsdb_rewrite_pruned_total.
var (
	SearchExpanded obs.Counter
	SearchPruned   obs.Counter
)

// SearchStats reports one rewrite search's effort: candidates expanded
// (popped and rewritten) versus pruned (discarded because their cost
// bound already exceeded the best complete plan).
type SearchStats struct {
	Expanded int
	Pruned   int
}

// children returns the direct subqueries of q.
func children(q wsa.Expr) []wsa.Expr {
	switch n := q.(type) {
	case *wsa.Select:
		return []wsa.Expr{n.From}
	case *wsa.Project:
		return []wsa.Expr{n.From}
	case *wsa.Rename:
		return []wsa.Expr{n.From}
	case *wsa.BinOp:
		return []wsa.Expr{n.L, n.R}
	case *wsa.Join:
		return []wsa.Expr{n.L, n.R}
	case *wsa.Choice:
		return []wsa.Expr{n.From}
	case *wsa.Group:
		return []wsa.Expr{n.From}
	case *wsa.Close:
		return []wsa.Expr{n.From}
	case *wsa.RepairKey:
		return []wsa.Expr{n.From}
	}
	return nil
}

// withChildren rebuilds q with replaced subqueries (same arity as
// children(q)).
func withChildren(q wsa.Expr, cs []wsa.Expr) wsa.Expr {
	switch n := q.(type) {
	case *wsa.Select:
		return &wsa.Select{Pred: n.Pred, From: cs[0]}
	case *wsa.Project:
		return &wsa.Project{Columns: n.Columns, From: cs[0]}
	case *wsa.Rename:
		return &wsa.Rename{Pairs: n.Pairs, From: cs[0]}
	case *wsa.BinOp:
		return &wsa.BinOp{Kind: n.Kind, L: cs[0], R: cs[1]}
	case *wsa.Join:
		return &wsa.Join{L: cs[0], R: cs[1], Pred: n.Pred}
	case *wsa.Choice:
		return &wsa.Choice{Attrs: n.Attrs, From: cs[0]}
	case *wsa.Group:
		return &wsa.Group{Kind: n.Kind, GroupBy: n.GroupBy, Proj: n.Proj, From: cs[0]}
	case *wsa.Close:
		return &wsa.Close{Kind: n.Kind, From: cs[0]}
	case *wsa.RepairKey:
		return &wsa.RepairKey{Attrs: n.Attrs, From: cs[0]}
	}
	return q
}

// rewritesAt returns all expressions obtained by applying a single rule
// once, at the root or at any descendant position.
func rewritesAt(ctx *Context, q wsa.Expr, rules []Rule) []candidate {
	var out []candidate
	for _, r := range rules {
		for _, nq := range r.Apply(ctx, q) {
			out = append(out, candidate{expr: nq, rule: r.ID})
		}
	}
	cs := children(q)
	for i, c := range cs {
		for _, sub := range rewritesAt(ctx, c, rules) {
			ncs := append([]wsa.Expr{}, cs...)
			ncs[i] = sub.expr
			out = append(out, candidate{expr: withChildren(q, ncs), rule: sub.rule})
		}
	}
	return out
}

type candidate struct {
	expr wsa.Expr
	rule string
}

// Step records one rewrite in an optimization trace.
type Step struct {
	// Rule is the equation that fired, e.g. "(20)".
	Rule string
	// Expr is the whole query after the rewrite.
	Expr wsa.Expr
}

// item is a search-frontier entry.
type item struct {
	expr  wsa.Expr
	cost  float64
	trace []Step
}

type frontier []*item

func (f frontier) Len() int            { return len(f) }
func (f frontier) Less(i, j int) bool  { return f[i].cost < f[j].cost }
func (f frontier) Swap(i, j int)       { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x interface{}) { *f = append(*f, x.(*item)) }
func (f *frontier) Pop() interface{} {
	old := *f
	n := len(old)
	it := old[n-1]
	*f = old[:n-1]
	return it
}

// Options tune the optimizer's search.
type Options struct {
	// MaxExpansions bounds the number of expressions explored
	// (default 4000).
	MaxExpansions int
	// MaxSize prunes expressions with more AST nodes than this
	// (default 80).
	MaxSize int
	// Stats seeds the cost estimator with decomposition statistics
	// (nil: the defaultCard model).
	Stats Stats
	// NoPrune disables the branch-and-bound bound (the pre-stats
	// exhaustive behavior) — the ablation arm of the PLAN benchmarks.
	NoPrune bool
	// PruneSlack is the bound factor: a candidate whose cost exceeds
	// PruneSlack times the best complete plan found so far is pruned —
	// its lower bound (no rewrite sequence improves a plan by more than
	// PruneSlack, empirically generous) already exceeds a known plan.
	// Default 16.
	PruneSlack float64
	// Search, when non-nil, receives the expanded/pruned counts of this
	// search (also accumulated into SearchExpanded/SearchPruned).
	Search *SearchStats
}

func (o *Options) maxExpansions() int {
	if o == nil || o.MaxExpansions == 0 {
		return 4000
	}
	return o.MaxExpansions
}

func (o *Options) maxSize() int {
	if o == nil || o.MaxSize == 0 {
		return 80
	}
	return o.MaxSize
}

func (o *Options) stats() Stats {
	if o == nil {
		return nil
	}
	return o.Stats
}

func (o *Options) pruneSlack() float64 {
	if o == nil || o.PruneSlack == 0 {
		return 16
	}
	return o.PruneSlack
}

// Optimize searches the rewrite space for the cheapest equivalent plan
// under Cost, using the verified Figure 7 equivalences. It returns the
// best plan found and the rewrite trace that produced it.
//
// completeInput declares that the query will run on a singleton
// world-set (a complete database); this additionally enables the rules
// that are only sound in that case — the setting of all rewriting
// examples in §6 of the paper.
func Optimize(q wsa.Expr, env *wsa.Env, completeInput bool) (wsa.Expr, []Step) {
	return OptimizeOpts(q, env, completeInput, nil)
}

// Prelower normalizes q for engines that evaluate over factored
// world-set representations (internal/wsdexec): selections are first
// pushed below the entangling binary operators (PushSelections), then
// the cost-based search runs restricted to the equivalences sound on
// arbitrary world-sets, with tight bounds suitable for per-query use.
// The rules that matter most here are the group-worlds-by reductions
// ((12)–(14)), the poss/choice-of absorption (11) and the poss/cert
// fusions ((15), (16), (22), (23)): every group-worlds-by or choice-of
// they eliminate is one less operator that can entangle decomposition
// components and force the factorized engine to merge or enumerate,
// and every selection evaluated before a ×/⋈/∩/− shrinks the operand
// a merge would have to cover.
func Prelower(q wsa.Expr, env *wsa.Env) wsa.Expr {
	return PrelowerStats(q, env, nil, nil)
}

// PrelowerStats is Prelower with the search's cost model seeded by
// decomposition statistics (the compile-time half of cost-based
// planning) and the search effort reported into search (may be nil).
func PrelowerStats(q wsa.Expr, env *wsa.Env, st Stats, search *SearchStats) wsa.Expr {
	out, _ := OptimizeOpts(PushSelections(q, env), env, false,
		&Options{MaxExpansions: 200, MaxSize: 60, Stats: st, Search: search})
	return out
}

// PushSelections deterministically pushes selection conjuncts below the
// entangling binary operators — single-sided conjuncts of a σ over ×/⋈
// move into the operand they reference, a σ over ∩ distributes to both
// sides, a σ over − moves to the left side. Per world this is the
// classic relational pushdown (sound on every world-set, verified in
// equivalences_test.go); for the factorized engine it matters because
// operands are filtered before the operator inspects which
// decomposition components they depend on: a selection that empties a
// component's contribution removes it from the entanglement set, so
// merges stay small or vanish. Unlike the Figure 7 search this is a
// normalization, not a cost decision — the rewrite never increases
// per-tuple predicate work, so it always applies.
func PushSelections(q wsa.Expr, env *wsa.Env) wsa.Expr {
	ctx := &Context{Env: env}
	var walk func(q wsa.Expr) wsa.Expr
	walk = func(q wsa.Expr) wsa.Expr {
		if cs := children(q); len(cs) > 0 {
			nc := make([]wsa.Expr, len(cs))
			for i, c := range cs {
				nc[i] = walk(c)
			}
			q = withChildren(q, nc)
		}
		if p, ok := q.(*wsa.Project); ok {
			return pushProject(ctx, p)
		}
		s, ok := q.(*wsa.Select)
		if !ok {
			return q
		}
		switch n := s.From.(type) {
		case *wsa.Select:
			// σ_a(σ_b(q)) = σ_{a∧b}(q): fuse so conjuncts trapped
			// behind an inner selection still reach the split below.
			return walk(&wsa.Select{Pred: ra.And{L: s.Pred, R: n.Pred}, From: n.From})
		case *wsa.BinOp:
			switch n.Kind {
			case wsa.OpProduct:
				l, r, rest := splitConjuncts(ctx, s.Pred, n.L, n.R)
				if l == nil && r == nil {
					return q
				}
				out := wsa.NewProduct(wrapSelect(n.L, l), wrapSelect(n.R, r))
				return walk(wrapSelect(out, rest))
			case wsa.OpIntersect:
				return wsa.NewIntersect(walk(&wsa.Select{Pred: s.Pred, From: n.L}),
					walk(&wsa.Select{Pred: s.Pred, From: n.R}))
			case wsa.OpDiff:
				return wsa.NewDiff(walk(&wsa.Select{Pred: s.Pred, From: n.L}), n.R)
			}
		case *wsa.Join:
			l, r, rest := splitConjuncts(ctx, s.Pred, n.L, n.R)
			if l == nil && r == nil {
				return q
			}
			return &wsa.Join{L: wrapSelect(n.L, l), R: wrapSelect(n.R, r),
				Pred: andAll(append(conjuncts(n.Pred, nil), rest...))}
		}
		return q
	}
	return walk(q)
}

// pushProject distributes a projection over a product when the column
// list splits cleanly: a left-operand prefix followed by a
// right-operand suffix, every column unambiguous (absent from the other
// side's schema). π_{xs,ys}(q1 × q2) = π_{xs}(q1) × π_{ys}(q2) holds
// per world in both set and bag semantics; narrowing the operands
// before the product shrinks the tuples any component merge has to
// expand. Interleaved or ambiguous column lists are left alone — the
// rewrite must not reorder the output schema.
func pushProject(ctx *Context, p *wsa.Project) wsa.Expr {
	b, ok := p.From.(*wsa.BinOp)
	if !ok || b.Kind != wsa.OpProduct {
		return p
	}
	lAttrs, rAttrs := schemaAttrs(ctx, b.L), schemaAttrs(ctx, b.R)
	if lAttrs == nil || rAttrs == nil {
		return p
	}
	ls, rs := asSet(lAttrs), asSet(rAttrs)
	k := 0
	for k < len(p.Columns) && ls[p.Columns[k]] && !rs[p.Columns[k]] {
		k++
	}
	if k == 0 || k == len(p.Columns) {
		return p
	}
	for _, c := range p.Columns[k:] {
		if !rs[c] || ls[c] {
			return p
		}
	}
	return wsa.NewProduct(
		pushProject(ctx, &wsa.Project{Columns: p.Columns[:k], From: b.L}),
		pushProject(ctx, &wsa.Project{Columns: p.Columns[k:], From: b.R}))
}

// conjuncts flattens nested ∧ into a list (True contributes nothing).
func conjuncts(p ra.Pred, dst []ra.Pred) []ra.Pred {
	switch n := p.(type) {
	case ra.True:
		return dst
	case ra.And:
		return conjuncts(n.R, conjuncts(n.L, dst))
	}
	return append(dst, p)
}

// andAll folds a conjunct list back into one predicate (True if empty).
func andAll(ps []ra.Pred) ra.Pred {
	if len(ps) == 0 {
		return ra.True{}
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = ra.And{L: out, R: p}
	}
	return out
}

// wrapSelect applies the conjunct list to q (q unchanged if empty).
func wrapSelect(q wsa.Expr, ps []ra.Pred) wsa.Expr {
	if len(ps) == 0 {
		return q
	}
	return &wsa.Select{Pred: andAll(ps), From: q}
}

// splitConjuncts partitions a predicate's conjuncts by the operand they
// unambiguously reference: columns entirely within exactly one
// operand's schema (and absent from the other's — shared names would
// make the reference ambiguous) go to that side, everything else stays.
// Operands that do not typecheck keep the predicate where it is.
func splitConjuncts(ctx *Context, p ra.Pred, lq, rq wsa.Expr) (l, r, rest []ra.Pred) {
	lAttrs, rAttrs := schemaAttrs(ctx, lq), schemaAttrs(ctx, rq)
	if lAttrs == nil || rAttrs == nil {
		return nil, nil, conjuncts(p, nil)
	}
	ls, rs := asSet(lAttrs), asSet(rAttrs)
	only := func(cols []string, in, other map[string]bool) bool {
		if len(cols) == 0 {
			return false
		}
		for _, col := range cols {
			if !in[col] || other[col] {
				return false
			}
		}
		return true
	}
	for _, c := range conjuncts(p, nil) {
		cols := c.Columns(nil)
		switch {
		case only(cols, ls, rs):
			l = append(l, c)
		case only(cols, rs, ls):
			r = append(r, c)
		default:
			rest = append(rest, c)
		}
	}
	return l, r, rest
}

// OptimizeOpts is Optimize with explicit search bounds. The best-first
// search is pruned branch-and-bound style: a candidate whose cost
// exceeds PruneSlack times the best complete plan found so far cannot
// (under the bound's assumption on achievable improvement) lead to a
// better plan and is dropped, and — the frontier being a min-heap —
// the search stops outright once the cheapest remaining candidate is
// past the bound, instead of burning the expansion budget on hopeless
// variants. Every plan in the space is complete (rules rewrite whole
// trees), so the incumbent is always a valid result.
func OptimizeOpts(q wsa.Expr, env *wsa.Env, completeInput bool, opt *Options) (wsa.Expr, []Step) {
	ctx := &Context{Env: env}
	var rules []Rule
	for _, r := range Rules() {
		if r.CompleteOnly && !completeInput {
			continue
		}
		rules = append(rules, r)
	}

	st := opt.stats()
	best := &item{expr: q, cost: CostOn(q, st)}
	visited := map[string]bool{q.String(): true}
	f := &frontier{best}
	heap.Init(f)

	expanded, pruned := 0, 0
	slack := opt.pruneSlack()
	prune := func(cost float64) bool {
		return !(opt != nil && opt.NoPrune) && cost > best.cost*slack
	}
	for f.Len() > 0 && expanded < opt.maxExpansions() {
		cur := heap.Pop(f).(*item)
		if cur.cost < best.cost {
			best = cur
		}
		if prune(cur.cost) {
			// Min-heap: everything still queued costs at least this much.
			pruned += 1 + f.Len()
			break
		}
		expanded++
		for _, cand := range rewritesAt(ctx, cur.expr, rules) {
			key := cand.expr.String()
			if visited[key] || wsa.Size(cand.expr) > opt.maxSize() {
				continue
			}
			visited[key] = true
			cost := CostOn(cand.expr, st)
			if prune(cost) {
				pruned++
				continue
			}
			trace := append(append([]Step{}, cur.trace...), Step{Rule: cand.rule, Expr: cand.expr})
			heap.Push(f, &item{expr: cand.expr, cost: cost, trace: trace})
		}
	}
	SearchExpanded.Add(uint64(expanded))
	SearchPruned.Add(uint64(pruned))
	if opt != nil && opt.Search != nil {
		opt.Search.Expanded, opt.Search.Pruned = expanded, pruned
	}
	return best.expr, best.trace
}
