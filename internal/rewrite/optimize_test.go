package rewrite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
)

// tripEnv is the Example 6.1 schema: HFlights(Dep, Arr),
// Hotels(Name, City, Price).
func tripEnv() *wsa.Env {
	return wsa.NewEnv(
		[]string{"HFlights", "Hotels"},
		[]relation.Schema{
			relation.NewSchema("Dep", "Arr"),
			relation.NewSchema("Name", "City", "Price"),
		})
}

func tripWS() *worldset.WorldSet {
	return worldset.FromDB([]string{"HFlights", "Hotels"},
		[]*relation.Relation{datagen.PaperFlights(), datagen.PaperHotels()})
}

// q1 of Figure 8: cert(π_City(σ_{Arr=City}(pγ^*_Dep(χ_{Dep,City}(HFlights × Hotels))))).
func figure8Q1() wsa.Expr {
	return wsa.NewCert(
		&wsa.Project{Columns: []string{"City"},
			From: &wsa.Select{Pred: ra.Eq("Arr", "City"),
				From: wsa.NewPossGroup([]string{"Dep"}, nil,
					&wsa.Choice{Attrs: []string{"Dep", "City"},
						From: wsa.NewProduct(&wsa.Rel{Name: "HFlights"}, &wsa.Rel{Name: "Hotels"})})}})
}

// q1′ of Figure 8: cert(π_City(χ_Dep(HFlights) ⋈_{Arr=City} Hotels)).
func figure8Q1Prime() wsa.Expr {
	return wsa.NewCert(
		&wsa.Project{Columns: []string{"City"},
			From: &wsa.Join{
				L:    &wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "HFlights"}},
				R:    &wsa.Rel{Name: "Hotels"},
				Pred: ra.Eq("Arr", "City")}})
}

// q2 of Figure 9 replaces cert by poss.
func figure9Q2() wsa.Expr {
	return wsa.NewPoss(
		&wsa.Project{Columns: []string{"City"},
			From: &wsa.Select{Pred: ra.Eq("Arr", "City"),
				From: wsa.NewPossGroup([]string{"Dep"}, nil,
					&wsa.Choice{Attrs: []string{"Dep", "City"},
						From: wsa.NewProduct(&wsa.Rel{Name: "HFlights"}, &wsa.Rel{Name: "Hotels"})})}})
}

// q2′ of Figure 9: π_City(poss(HFlights ⋈_{Arr=City} Hotels)).
func figure9Q2Prime() wsa.Expr {
	return &wsa.Project{Columns: []string{"City"},
		From: wsa.NewPoss(&wsa.Join{
			L:    &wsa.Rel{Name: "HFlights"},
			R:    &wsa.Rel{Name: "Hotels"},
			Pred: ra.Eq("Arr", "City")})}
}

func hasNode(q wsa.Expr, pred func(wsa.Expr) bool) bool {
	found := false
	wsa.Walk(q, func(e wsa.Expr) {
		if pred(e) {
			found = true
		}
	})
	return found
}

// TestFigure8Rewrite checks that the optimizer reproduces the q1 → q1′
// rewriting: the group-worlds-by and the product disappear, the
// choice-of narrows to Dep, and the plan is at least as cheap as the
// paper's q1′ while remaining semantically equivalent.
func TestFigure8Rewrite(t *testing.T) {
	q1 := figure8Q1()
	q1p := figure8Q1Prime()
	opt, trace := Optimize(q1, tripEnv(), true)

	if Cost(opt) > Cost(q1p) {
		t.Errorf("optimized cost %.1f exceeds q1′ cost %.1f\noptimized: %s\ntrace: %v",
			Cost(opt), Cost(q1p), opt, trace)
	}
	if hasNode(opt, func(e wsa.Expr) bool { _, ok := e.(*wsa.Group); return ok }) {
		t.Errorf("optimized q1 still contains group-worlds-by: %s", opt)
	}
	if hasNode(opt, func(e wsa.Expr) bool {
		b, ok := e.(*wsa.BinOp)
		return ok && b.Kind == wsa.OpProduct
	}) {
		t.Errorf("optimized q1 still contains a raw product: %s", opt)
	}

	// Semantic equivalence of q1, q1′ and the optimizer output on the
	// paper's trip-planning database.
	ws := tripWS()
	ref, err := wsa.Eval(q1, ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []wsa.Expr{q1p, opt} {
		got, err := wsa.Eval(q, ws)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !got.EqualWorlds(ref) {
			t.Errorf("%s is not equivalent to q1", q)
		}
	}
}

// TestFigure9Rewrite checks the q2 → q2′ rewriting: poss is pushed below
// projection and selection, absorbs the choice-of (equation (11)), and
// the final plan has neither choice-of nor group-worlds-by.
func TestFigure9Rewrite(t *testing.T) {
	q2 := figure9Q2()
	q2p := figure9Q2Prime()
	opt, trace := Optimize(q2, tripEnv(), true)

	if Cost(opt) > Cost(q2p) {
		t.Errorf("optimized cost %.1f exceeds q2′ cost %.1f\noptimized: %s\ntrace: %v",
			Cost(opt), Cost(q2p), opt, trace)
	}
	if hasNode(opt, func(e wsa.Expr) bool { _, ok := e.(*wsa.Group); return ok }) {
		t.Errorf("optimized q2 still contains group-worlds-by: %s", opt)
	}
	if hasNode(opt, func(e wsa.Expr) bool { _, ok := e.(*wsa.Choice); return ok }) {
		t.Errorf("optimized q2 still contains choice-of: %s", opt)
	}

	ws := tripWS()
	ref, err := wsa.Eval(q2, ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []wsa.Expr{q2p, opt} {
		got, err := wsa.Eval(q, ws)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !got.EqualWorlds(ref) {
			t.Errorf("%s is not equivalent to q2", q)
		}
	}
}

// TestOptimizePreservesSemantics fuzzes the whole optimizer: for a zoo
// of queries, the optimized plan must agree with the original on random
// inputs (multi-world inputs with the CompleteOnly rules disabled,
// singleton inputs with them enabled).
func TestOptimizePreservesSemantics(t *testing.T) {
	zoo := []wsa.Expr{
		figure8Q1(), figure9Q2(),
	}
	// Also run the generic-schema queries.
	generic := []wsa.Expr{
		wsa.NewPoss(sel(proj(choice(rel("R"), "A", "B"), "A", "B"), ra.Eq("A", "B"))),
		wsa.NewCert(proj(choice(rel("R"), "A"), "B")),
		wsa.NewPossGroup([]string{"A"}, []string{"A"}, choice(rel("R"), "A", "C")),
		wsa.NewPoss(wsa.NewPoss(choice(rel("R"), "A"))),
		sel(wsa.NewCertGroup([]string{"A", "B"}, []string{"A"}, choice(rel("R"), "C")),
			ra.EqConst("A", value.Int(1))),
	}
	for _, complete := range []bool{false, true} {
		for qi, q := range generic {
			opt, _ := Optimize(q, wsa.NewEnv(eqNames, eqSchemas), complete)
			maxWorlds := 4
			if complete {
				maxWorlds = 1
			}
			qi, q, opt := qi, q, opt
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				ws := datagen.RandomWorldSet(rng, eqNames, eqSchemas, 3, 4, maxWorlds)
				want, err := wsa.Eval(q, ws)
				if err != nil {
					return false
				}
				got, err := wsa.Eval(opt, ws)
				if err != nil {
					return false
				}
				return got.EqualWorlds(want)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Errorf("generic query %d (complete=%v): optimizer broke semantics: %s → %s: %v",
					qi, complete, q, opt, err)
			}
		}
	}
	// Trip-planning zoo on the paper database.
	ws := tripWS()
	for qi, q := range zoo {
		opt, _ := Optimize(q, tripEnv(), true)
		want, err := wsa.Eval(q, ws)
		if err != nil {
			t.Fatal(err)
		}
		got, err := wsa.Eval(opt, ws)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualWorlds(want) {
			t.Errorf("zoo query %d: optimizer broke semantics: %s → %s", qi, q, opt)
		}
	}
}
