package rewrite

import (
	"math/rand"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/randquery"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/wsa"
)

// TestPushSelectionsStructure pins the shapes PushSelections produces:
// single-sided conjuncts move below ×/⋈/∩/−, cross-operand and
// ambiguous conjuncts stay put, projections split over products only
// when the column list partitions cleanly. Shapes are compared via
// String(), the same canonical form the optimizer's visited-set uses.
func TestPushSelectionsStructure(t *testing.T) {
	env := wsa.NewEnv(eqNames, eqSchemas)
	a1 := ra.EqConst("A", value.Int(1))
	d2 := ra.EqConst("D", value.Int(2))
	ad := ra.Eq("A", "D")
	cases := []struct {
		name     string
		in, want wsa.Expr
	}{
		{"split both sides over product",
			sel(wsa.NewProduct(rel("R"), rel("S")), ra.And{L: a1, R: d2}),
			wsa.NewProduct(sel(rel("R"), a1), sel(rel("S"), d2))},
		{"left-only conjunct over product",
			sel(wsa.NewProduct(rel("R"), rel("S")), a1),
			wsa.NewProduct(sel(rel("R"), a1), rel("S"))},
		{"cross conjunct stays above product",
			sel(wsa.NewProduct(rel("R"), rel("S")), ad),
			sel(wsa.NewProduct(rel("R"), rel("S")), ad)},
		{"mixed: sided parts sink, cross part stays",
			sel(wsa.NewProduct(rel("R"), rel("S")), ra.And{L: ad, R: a1}),
			sel(wsa.NewProduct(sel(rel("R"), a1), rel("S")), ad)},
		{"fused nested selections still split",
			sel(sel(wsa.NewProduct(rel("R"), rel("S")), d2), a1),
			wsa.NewProduct(sel(rel("R"), a1), sel(rel("S"), d2))},
		{"join keeps cross pred, sinks sided conjunct",
			sel(&wsa.Join{L: rel("R"), R: rel("S"), Pred: ad}, a1),
			&wsa.Join{L: sel(rel("R"), a1), R: rel("S"), Pred: ad}},
		{"selection distributes over intersection",
			sel(wsa.NewIntersect(proj(rel("R"), "A"), ren(rel("S"), "D", "A")), a1),
			wsa.NewIntersect(sel(proj(rel("R"), "A"), a1), sel(ren(rel("S"), "D", "A"), a1))},
		{"selection pushes into difference's left side",
			sel(wsa.NewDiff(proj(rel("R"), "A"), ren(rel("S"), "D", "A")), a1),
			wsa.NewDiff(sel(proj(rel("R"), "A"), a1), ren(rel("S"), "D", "A"))},
		{"projection splits over product",
			proj(wsa.NewProduct(rel("R"), rel("S")), "A", "B", "D"),
			wsa.NewProduct(proj(rel("R"), "A", "B"), proj(rel("S"), "D"))},
		{"interleaved projection is not reordered",
			proj(wsa.NewProduct(rel("R"), rel("S")), "D", "A"),
			proj(wsa.NewProduct(rel("R"), rel("S")), "D", "A")},
		{"pushdown applies under other operators",
			wsa.NewPoss(sel(wsa.NewProduct(choice(rel("R"), "B"), rel("S")), d2)),
			wsa.NewPoss(wsa.NewProduct(choice(rel("R"), "B"), sel(rel("S"), d2)))},
	}
	for _, c := range cases {
		got := PushSelections(c.in, env)
		if got.String() != c.want.String() {
			t.Errorf("%s:\n  in:   %s\n  got:  %s\n  want: %s", c.name, c.in, got, c.want)
		}
	}
}

// TestPushSelectionsEquivalences property-tests the pushdown identities
// against the Figure 3 reference semantics on random world-sets — each
// case runs the original and its pushed form and requires identical
// world-sets (the same harness the Figure 7 equations use).
func TestPushSelectionsEquivalences(t *testing.T) {
	env := wsa.NewEnv(eqNames, eqSchemas)
	a1 := ra.EqConst("A", value.Int(1))
	d2 := ra.EqConst("D", value.Int(2))
	cases := []struct {
		id string
		q  wsa.Expr
	}{
		{"σ∧ over ×", sel(wsa.NewProduct(choice(rel("R"), "B"), choice(rel("S"), "D")), ra.And{L: a1, R: d2})},
		{"σ over ⋈", sel(&wsa.Join{L: choice(rel("R"), "C"), R: rel("S"), Pred: ra.Eq("A", "D")}, a1)},
		{"σ over ∩", sel(wsa.NewIntersect(proj(choice(rel("R"), "B"), "A"), ren(rel("S"), "D", "A")), a1)},
		{"σ over −", sel(wsa.NewDiff(proj(choice(rel("R"), "B"), "A"), ren(rel("S"), "D", "A")), a1)},
		{"σσ fuse", sel(sel(wsa.NewProduct(rel("R"), choice(rel("S"), "D")), d2), a1)},
		{"π over ×", proj(wsa.NewProduct(choice(rel("R"), "B"), rel("S")), "A", "D")},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			checkEquivalence(t, c.id, c.q, PushSelections(c.q, env), false)
		})
	}
}

// TestFuzzPushSelections cross-checks PushSelections against the
// reference semantics on random queries and random world-sets, the
// composition guard for the pass (fusion + per-operator pushes
// interacting on arbitrary trees).
func TestFuzzPushSelections(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz test skipped in -short mode")
	}
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A", "B"), relation.NewSchema("C")}
	env := wsa.NewEnv(names, schemas)
	rng := rand.New(rand.NewSource(4242))
	gen := randquery.NewQueryGen(rng, names, schemas)

	for qi := 0; qi < 200; qi++ {
		q := gen.Query(1 + rng.Intn(3))
		pushed := PushSelections(q, env)
		for wi := 0; wi < 3; wi++ {
			ws := datagen.RandomWorldSet(rng, names, schemas, 3, 3, 4)
			want, err := wsa.Eval(q, ws)
			if err != nil {
				t.Fatalf("query %d (%s): %v", qi, q, err)
			}
			got, err := wsa.Eval(pushed, ws)
			if err != nil {
				t.Fatalf("query %d pushed (%s): %v", qi, pushed, err)
			}
			if !got.EqualWorlds(want) {
				t.Fatalf("pushdown broke semantics\noriginal: %s\npushed: %s\ninput:\n%s", q, pushed, ws)
			}
		}
	}
}
