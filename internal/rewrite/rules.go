// Package rewrite implements the algebraic equivalences of Figure 7
// (equations (1)–(23)), equation (24), and a small set of engineering
// rules (join fusion, projection collapsing) as directed rewrite rules,
// together with a cost-based best-first optimizer that reproduces the
// q1 → q1′ and q2 → q2′ rewrites of Figures 8 and 9.
//
// Every equivalence used by the optimizer is property-tested against the
// Figure 3 reference semantics in equivalences_test.go before the
// optimizer is allowed to rely on it.
package rewrite

import (
	"sort"

	"worldsetdb/internal/ra"
	"worldsetdb/internal/wsa"
)

// Context supplies the schema environment rules need to check their side
// conditions (e.g. X ⊆ Attrs(q1) in equation (8)).
type Context struct {
	Env *wsa.Env
}

// Rule is a directed rewrite l → r applicable at the root of an
// expression. Apply returns the rewritten expressions (usually zero or
// one) when the rule matches.
//
// Rules marked CompleteOnly are only sound when the query's input is a
// singleton world-set (a complete database): the group-worlds-by and
// choice-of absorption rules of Figure 7 merge worlds by the value of
// their answer projection, which on multi-world inputs can group worlds
// that descend from different input worlds. The paper's rewriting
// examples (Figures 8 and 9) all start from complete databases, where
// these rules are exact; our property tests record counterexamples for
// the unrestricted forms (see EXPERIMENTS.md).
type Rule struct {
	// ID is the paper's equation number, e.g. "(11)", or an engineering
	// rule tag like "(join)".
	ID string
	// Name describes the rewrite.
	Name string
	// CompleteOnly marks rules sound only for singleton input world-sets.
	CompleteOnly bool
	Apply        func(ctx *Context, q wsa.Expr) []wsa.Expr
}

// attrset helpers ------------------------------------------------------

func asSet(attrs []string) map[string]bool {
	m := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		m[a] = true
	}
	return m
}

func subset(a, b []string) bool {
	bs := asSet(b)
	for _, x := range a {
		if !bs[x] {
			return false
		}
	}
	return true
}

func unionAttrs(a, b []string) []string {
	seen := asSet(a)
	out := append([]string{}, a...)
	for _, x := range b {
		if !seen[x] {
			out = append(out, x)
			seen[x] = true
		}
	}
	sort.Strings(out)
	return out
}

func sameSet(a, b []string) bool { return subset(a, b) && subset(b, a) }

// schemaAttrs returns the output attributes of q, or nil if q does not
// typecheck in ctx (in which case rules relying on it do not fire).
func schemaAttrs(ctx *Context, q wsa.Expr) []string {
	s, err := q.Schema(ctx.Env)
	if err != nil {
		return nil
	}
	return s
}

// groupProj resolves a Group's projection list ("*" = all attributes of
// the input).
func groupProj(ctx *Context, g *wsa.Group) []string {
	if g.Proj != nil {
		return g.Proj
	}
	in, err := g.From.Schema(ctx.Env)
	if err != nil {
		return nil
	}
	return in
}

// Rules returns the directed rule set used by the optimizer.
func Rules() []Rule {
	return []Rule{
		// ---- Commute rules (push poss/cert down) ----
		{ID: "(1)", Name: "poss(σ(q)) → σ(poss(q))", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if c, ok := q.(*wsa.Close); ok && c.Kind == wsa.ClosePoss {
				if s, ok := c.From.(*wsa.Select); ok {
					return []wsa.Expr{&wsa.Select{Pred: s.Pred, From: wsa.NewPoss(s.From)}}
				}
			}
			return nil
		}},
		{ID: "(2)", Name: "poss(π(q)) → π(poss(q))", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if c, ok := q.(*wsa.Close); ok && c.Kind == wsa.ClosePoss {
				if p, ok := c.From.(*wsa.Project); ok {
					return []wsa.Expr{&wsa.Project{Columns: p.Columns, From: wsa.NewPoss(p.From)}}
				}
			}
			return nil
		}},
		{ID: "(3)", Name: "poss(q1 ∪ q2) → poss(q1) ∪ poss(q2)", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if c, ok := q.(*wsa.Close); ok && c.Kind == wsa.ClosePoss {
				if b, ok := c.From.(*wsa.BinOp); ok && b.Kind == wsa.OpUnion {
					return []wsa.Expr{wsa.NewUnion(wsa.NewPoss(b.L), wsa.NewPoss(b.R))}
				}
			}
			return nil
		}},
		{ID: "(3r)", Name: "poss(q1) ∪ poss(q2) → poss(q1 ∪ q2)", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if b, ok := q.(*wsa.BinOp); ok && b.Kind == wsa.OpUnion {
				l, lok := b.L.(*wsa.Close)
				r, rok := b.R.(*wsa.Close)
				if lok && rok && l.Kind == wsa.ClosePoss && r.Kind == wsa.ClosePoss {
					return []wsa.Expr{wsa.NewPoss(wsa.NewUnion(l.From, r.From))}
				}
			}
			return nil
		}},
		{ID: "(1r)", Name: "σ(poss(q)) → poss(σ(q))", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if s, ok := q.(*wsa.Select); ok {
				if c, ok := s.From.(*wsa.Close); ok && c.Kind == wsa.ClosePoss {
					return []wsa.Expr{wsa.NewPoss(&wsa.Select{Pred: s.Pred, From: c.From})}
				}
			}
			return nil
		}},
		{ID: "(2r)", Name: "π(poss(q)) → poss(π(q))", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if p, ok := q.(*wsa.Project); ok {
				if c, ok := p.From.(*wsa.Close); ok && c.Kind == wsa.ClosePoss {
					return []wsa.Expr{wsa.NewPoss(&wsa.Project{Columns: p.Columns, From: c.From})}
				}
			}
			return nil
		}},
		{ID: "(4r)", Name: "σ(cert(q)) → cert(σ(q))", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if s, ok := q.(*wsa.Select); ok {
				if c, ok := s.From.(*wsa.Close); ok && c.Kind == wsa.CloseCert {
					return []wsa.Expr{wsa.NewCert(&wsa.Select{Pred: s.Pred, From: c.From})}
				}
			}
			return nil
		}},
		{ID: "(4)", Name: "cert(σ(q)) → σ(cert(q))", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if c, ok := q.(*wsa.Close); ok && c.Kind == wsa.CloseCert {
				if s, ok := c.From.(*wsa.Select); ok {
					return []wsa.Expr{&wsa.Select{Pred: s.Pred, From: wsa.NewCert(s.From)}}
				}
			}
			return nil
		}},
		{ID: "(5)", Name: "cert(q1 ∩ q2) → cert(q1) ∩ cert(q2)", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if c, ok := q.(*wsa.Close); ok && c.Kind == wsa.CloseCert {
				if b, ok := c.From.(*wsa.BinOp); ok && b.Kind == wsa.OpIntersect {
					return []wsa.Expr{wsa.NewIntersect(wsa.NewCert(b.L), wsa.NewCert(b.R))}
				}
			}
			return nil
		}},
		{ID: "(6)", Name: "cert(q1 × q2) → cert(q1) × cert(q2)", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if c, ok := q.(*wsa.Close); ok && c.Kind == wsa.CloseCert {
				if b, ok := c.From.(*wsa.BinOp); ok && b.Kind == wsa.OpProduct {
					return []wsa.Expr{wsa.NewProduct(wsa.NewCert(b.L), wsa.NewCert(b.R))}
				}
			}
			return nil
		}},
		{ID: "(7a)", Name: "π_{X∪Y}(χ_X(q)) → χ_X(π_{X∪Y}(q))", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if p, ok := q.(*wsa.Project); ok {
				if x, ok := p.From.(*wsa.Choice); ok && subset(x.Attrs, p.Columns) {
					return []wsa.Expr{&wsa.Choice{Attrs: x.Attrs, From: &wsa.Project{Columns: p.Columns, From: x.From}}}
				}
			}
			return nil
		}},
		{ID: "(7b)", Name: "χ_X(π_{X∪Y}(q)) → π_{X∪Y}(χ_X(q))", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if x, ok := q.(*wsa.Choice); ok {
				if p, ok := x.From.(*wsa.Project); ok && subset(x.Attrs, p.Columns) {
					return []wsa.Expr{&wsa.Project{Columns: p.Columns, From: &wsa.Choice{Attrs: x.Attrs, From: p.From}}}
				}
			}
			return nil
		}},
		{ID: "(8a)", Name: "χ_X(q1 × q2) → χ_X(q1) × q2, X ⊆ Attrs(q1)", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if x, ok := q.(*wsa.Choice); ok {
				if b, ok := x.From.(*wsa.BinOp); ok && b.Kind == wsa.OpProduct {
					if la := schemaAttrs(ctx, b.L); la != nil && subset(x.Attrs, la) {
						return []wsa.Expr{wsa.NewProduct(&wsa.Choice{Attrs: x.Attrs, From: b.L}, b.R)}
					}
				}
			}
			return nil
		}},
		{ID: "(8b)", Name: "χ_X(q1) × q2 → χ_X(q1 × q2)", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if b, ok := q.(*wsa.BinOp); ok && b.Kind == wsa.OpProduct {
				if x, ok := b.L.(*wsa.Choice); ok {
					return []wsa.Expr{&wsa.Choice{Attrs: x.Attrs, From: wsa.NewProduct(x.From, b.R)}}
				}
			}
			return nil
		}},
		// (9) and (10) additionally require Y ⊆ X: without it the
		// selection changes which worlds group together (see the
		// counterexample in equivalences_test.go).
		{ID: "(9)", Name: "σ_φ(pγ^Y_X(q)) → pγ^Y_X(σ_φ(q)), Attrs(φ) ⊆ X∩Y, Y ⊆ X", Apply: commuteSelGamma(wsa.GroupPoss)},
		{ID: "(10)", Name: "σ_φ(cγ^Y_X(q)) → cγ^Y_X(σ_φ(q)), Attrs(φ) ⊆ X∩Y, Y ⊆ X", Apply: commuteSelGamma(wsa.GroupCert)},

		// ---- Reduce rules ----
		{ID: "(11)", Name: "poss(χ_X(q)) → poss(q)", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if c, ok := q.(*wsa.Close); ok && c.Kind == wsa.ClosePoss {
				if x, ok := c.From.(*wsa.Choice); ok {
					return []wsa.Expr{wsa.NewPoss(x.From)}
				}
			}
			return nil
		}},
		{ID: "(12)", Name: "γ^X_{X∪Y}(q) → π_X(q), proj ⊆ group", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if g, ok := q.(*wsa.Group); ok {
				proj := groupProj(ctx, g)
				if proj != nil && subset(proj, g.GroupBy) {
					return []wsa.Expr{&wsa.Project{Columns: proj, From: g.From}}
				}
			}
			return nil
		}},
		{ID: "(13)", Name: "π_Z(pγ^{Y∪Z}_{X∪Z}(q)) → π_Z(q)", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if p, ok := q.(*wsa.Project); ok {
				if g, ok := p.From.(*wsa.Group); ok && g.Kind == wsa.GroupPoss {
					proj := groupProj(ctx, g)
					if proj != nil && subset(p.Columns, proj) && subset(p.Columns, g.GroupBy) {
						return []wsa.Expr{&wsa.Project{Columns: p.Columns, From: g.From}}
					}
				}
			}
			return nil
		}},
		{ID: "(14)", Name: "π_Z(pγ^{Y∪Z}_X(q)) → pγ^Z_X(q)", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if p, ok := q.(*wsa.Project); ok {
				if g, ok := p.From.(*wsa.Group); ok && g.Kind == wsa.GroupPoss {
					proj := groupProj(ctx, g)
					if proj != nil && subset(p.Columns, proj) {
						return []wsa.Expr{wsa.NewPossGroup(g.GroupBy, p.Columns, g.From)}
					}
				}
			}
			return nil
		}},
		{ID: "(15)", Name: "poss(pγ^Y_X(q)) → poss(π_Y(q))", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if c, ok := q.(*wsa.Close); ok && c.Kind == wsa.ClosePoss {
				if g, ok := c.From.(*wsa.Group); ok && g.Kind == wsa.GroupPoss {
					proj := groupProj(ctx, g)
					if proj != nil {
						return []wsa.Expr{wsa.NewPoss(&wsa.Project{Columns: proj, From: g.From})}
					}
				}
			}
			return nil
		}},
		{ID: "(16)", Name: "cert(cγ^Y_X(q)) → cert(π_Y(q))", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if c, ok := q.(*wsa.Close); ok && c.Kind == wsa.CloseCert {
				if g, ok := c.From.(*wsa.Group); ok && g.Kind == wsa.GroupCert {
					proj := groupProj(ctx, g)
					if proj != nil {
						return []wsa.Expr{wsa.NewCert(&wsa.Project{Columns: proj, From: g.From})}
					}
				}
			}
			return nil
		}},
		{ID: "(17)", Name: "χ_X(χ_Y(q)) → χ_{X∪Y}(q)", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if x, ok := q.(*wsa.Choice); ok {
				if y, ok := x.From.(*wsa.Choice); ok {
					return []wsa.Expr{&wsa.Choice{Attrs: unionAttrs(x.Attrs, y.Attrs), From: y.From}}
				}
			}
			return nil
		}},
		// (18) is restricted to equal grouping attributes (X = G): with
		// X ⊊ G the outer operator merges distinct inner groups and the
		// equation fails (counterexample in equivalences_test.go). The
		// inner-cγ variant (19) fails even then and is omitted.
		{ID: "(18)", Name: "γ^Y_X(pγ^P_X(q)) → pγ^Y_X(q)", Apply: collapseGamma(wsa.GroupPoss)},
		{ID: "(20)", Name: "pγ^Y_X(χ_{X∪Z}(q)) → π_Y(χ_X(q))", CompleteOnly: true, Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if g, ok := q.(*wsa.Group); ok && g.Kind == wsa.GroupPoss {
				if x, ok := g.From.(*wsa.Choice); ok && subset(g.GroupBy, x.Attrs) {
					proj := groupProj(ctx, g)
					if proj != nil {
						return []wsa.Expr{&wsa.Project{Columns: proj,
							From: &wsa.Choice{Attrs: g.GroupBy, From: x.From}}}
					}
				}
			}
			return nil
		}},
		// (21) is restricted to χ on exactly the grouping attributes:
		// then every group is a singleton and cγ degenerates to a
		// projection. The paper's broader form χ_{X∪Y∪Z} fails because
		// choice worlds sharing an X-value but differing on Y intersect
		// to the empty relation (counterexample in equivalences_test.go).
		{ID: "(21)", Name: "cγ^Y_X(χ_X(q)) → π_Y(χ_X(q))", CompleteOnly: true, Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if g, ok := q.(*wsa.Group); ok && g.Kind == wsa.GroupCert {
				if x, ok := g.From.(*wsa.Choice); ok && sameSet(g.GroupBy, x.Attrs) {
					proj := groupProj(ctx, g)
					if proj != nil {
						return []wsa.Expr{&wsa.Project{Columns: proj, From: x}}
					}
				}
			}
			return nil
		}},
		{ID: "(22/23)", Name: "close(close(q)) → inner close", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if c, ok := q.(*wsa.Close); ok {
				if inner, ok := c.From.(*wsa.Close); ok {
					return []wsa.Expr{inner}
				}
			}
			return nil
		}},
		{ID: "(24r)", Name: "cert(cert(R) − S) → cert(R − S)", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if c, ok := q.(*wsa.Close); ok && c.Kind == wsa.CloseCert {
				if d, ok := c.From.(*wsa.BinOp); ok && d.Kind == wsa.OpDiff {
					if lc, ok := d.L.(*wsa.Close); ok && lc.Kind == wsa.CloseCert {
						return []wsa.Expr{wsa.NewCert(wsa.NewDiff(lc.From, d.R))}
					}
				}
			}
			return nil
		}},

		// ---- Engineering rules ----
		{ID: "(join)", Name: "σ_φ(q1 × q2) → q1 ⋈_φ q2", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if s, ok := q.(*wsa.Select); ok {
				if b, ok := s.From.(*wsa.BinOp); ok && b.Kind == wsa.OpProduct {
					return []wsa.Expr{&wsa.Join{L: b.L, R: b.R, Pred: s.Pred}}
				}
			}
			return nil
		}},
		{ID: "(joinm)", Name: "σ_φ(q1 ⋈_ψ q2) → q1 ⋈_{φ∧ψ} q2", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if s, ok := q.(*wsa.Select); ok {
				if j, ok := s.From.(*wsa.Join); ok {
					return []wsa.Expr{&wsa.Join{L: j.L, R: j.R, Pred: ra.And{L: j.Pred, R: s.Pred}}}
				}
			}
			return nil
		}},
		{ID: "(πid)", Name: "π_identity(q) → q", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if p, ok := q.(*wsa.Project); ok {
				in := schemaAttrs(ctx, p.From)
				if in != nil && len(in) == len(p.Columns) {
					same := true
					for i := range in {
						if in[i] != p.Columns[i] {
							same = false
							break
						}
					}
					if same {
						return []wsa.Expr{p.From}
					}
				}
			}
			return nil
		}},
		{ID: "(ππ)", Name: "π_X(π_Y(q)) → π_X(q), X ⊆ Y", Apply: func(ctx *Context, q wsa.Expr) []wsa.Expr {
			if p, ok := q.(*wsa.Project); ok {
				if p2, ok := p.From.(*wsa.Project); ok && subset(p.Columns, p2.Columns) {
					return []wsa.Expr{&wsa.Project{Columns: p.Columns, From: p2.From}}
				}
			}
			return nil
		}},
	}
}

// commuteSelGamma builds equations (9) and (10): σ commutes with
// group-worlds-by when the selection only touches attributes that are
// both grouped and projected.
func commuteSelGamma(kind wsa.GroupKind) func(ctx *Context, q wsa.Expr) []wsa.Expr {
	return func(ctx *Context, q wsa.Expr) []wsa.Expr {
		s, ok := q.(*wsa.Select)
		if !ok {
			return nil
		}
		g, ok := s.From.(*wsa.Group)
		if !ok || g.Kind != kind {
			return nil
		}
		proj := groupProj(ctx, g)
		if proj == nil {
			return nil
		}
		cols := s.Pred.Columns(nil)
		if !subset(cols, g.GroupBy) || !subset(cols, proj) || !subset(proj, g.GroupBy) {
			return nil
		}
		return []wsa.Expr{&wsa.Group{Kind: kind, GroupBy: g.GroupBy, Proj: g.Proj,
			From: &wsa.Select{Pred: s.Pred, From: g.From}}}
	}
}

// collapseGamma builds the sound restriction of equation (18): nested
// group-worlds-by collapses when the outer and inner grouping attributes
// coincide as sets (then the outer operator induces exactly the inner
// partition, and the aggregated answers within a group are identical, so
// both the pγ and cγ outer variants reduce).
func collapseGamma(innerKind wsa.GroupKind) func(ctx *Context, q wsa.Expr) []wsa.Expr {
	return func(ctx *Context, q wsa.Expr) []wsa.Expr {
		outer, ok := q.(*wsa.Group)
		if !ok {
			return nil
		}
		inner, ok := outer.From.(*wsa.Group)
		if !ok || inner.Kind != innerKind {
			return nil
		}
		innerProj := groupProj(ctx, inner)
		if innerProj == nil {
			return nil
		}
		outerProj := groupProj(ctx, outer)
		if outerProj == nil {
			return nil
		}
		if !sameSet(outer.GroupBy, inner.GroupBy) ||
			!subset(outer.GroupBy, innerProj) || !subset(outerProj, innerProj) {
			return nil
		}
		return []wsa.Expr{&wsa.Group{Kind: innerKind, GroupBy: inner.GroupBy,
			Proj: outerProj, From: inner.From}}
	}
}
