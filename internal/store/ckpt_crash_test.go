package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Torn-checkpoint crash sweeps: a checkpoint that dies between the
// temp-file write and the rename (fresh writes and v1→v2 migration), or
// mid-page-flush before the meta-slot commit (incremental writes), must
// leave recovery falling back to the previous base plus WAL replay,
// byte-identically.

// sIns commits one routed "ins" transaction on a sharded catalog.
func sIns(t *testing.T, cat *Catalog, table string, v int) {
	t.Helper()
	err := cat.UpdateRouted([]string{table}, func(tx *Tx) error {
		return insInto(tx, table, v)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// mkAll commits one all-shard transaction creating every named table.
func mkAll(t *testing.T, cat *Catalog, names []string) {
	t.Helper()
	err := cat.UpdateRouted(nil, func(tx *Tx) error {
		for _, n := range names {
			if err := mkTable(tx, n); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTornCheckpointTempFileIgnored: a crash between the checkpoint's
// temp-file write and its rename leaves a stray dot-temp in the catalog
// directory. Recovery on a 4-shard catalog must ignore the strays (for
// the main and side files alike) and rebuild the committed state from
// the previous base plus the WALs.
func TestTornCheckpointTempFileIgnored(t *testing.T) {
	const nshards = 4
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "cat.wsd")
	names := shardNames(nshards)

	cat, wals, err := OpenSharded(wsdPath, dir, nshards, shardApplier)
	if err != nil {
		t.Fatal(err)
	}
	mkAll(t, cat, names)
	for i, n := range names {
		sIns(t, cat, n, 100+i)
	}
	if err := cat.CheckpointAll(wsdPath); err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		sIns(t, cat, n, 200+i) // WAL tail on every shard
	}
	want := dbBytes(t, cat.Snapshot())
	for _, w := range wals {
		w.Close()
	}

	// Simulate the torn checkpoint: half-written temp files for the main
	// file and a side file, killed before their renames.
	for _, base := range []string{"cat.wsd", "cat.wsd.s2"} {
		stray := filepath.Join(dir, "."+base+".tmp-1234")
		if err := os.WriteFile(stray, bytes.Repeat([]byte{0xAB}, 12345), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cat2, wals2, err := OpenSharded(wsdPath, dir, nshards, shardApplier)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range wals2 {
		defer w.Close()
	}
	if got := dbBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("recovery with stray checkpoint temp files differs from the committed state")
	}
}

// TestCrashMidPageFlushUnsharded: an incremental checkpoint that dies
// after flushing data pages but before the meta-slot commit leaves the
// base at the previous version; reopening replays the un-truncated WAL
// onto it byte-identically, and the next checkpoint succeeds.
func TestCrashMidPageFlushUnsharded(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "cat.wsd")
	walPath := filepath.Join(dir, "cat.wal")
	cat, wal, err := Open(wsdPath, walPath, putApplier)
	if err != nil {
		t.Fatal(err)
	}
	put(t, cat, "T", 1)
	put(t, cat, "U", 2)
	if err := cat.Checkpoint(wal, wsdPath); err != nil {
		t.Fatal(err)
	}
	baseVer := cat.Pagers()[0].Version()
	put(t, cat, "T", 3)
	put(t, cat, "U", 4)
	want := saveBytes(t, cat.Snapshot())

	cat.Pagers()[0].failBeforeMeta = func() error { return errors.New("injected crash before meta commit") }
	if err := cat.Checkpoint(wal, wsdPath); err == nil {
		t.Fatal("checkpoint with injected crash reported success")
	}
	if st := cat.DurabilityStats(); st[0].WALTailRecords == 0 {
		t.Fatal("failed checkpoint truncated the WAL — commits would be lost")
	}
	wal.Close() // crash

	// The base on disk must still be the previous checkpoint.
	ps, loaded, err := OpenPageStore(wsdPath, 0, true, 16)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil || loaded.Version != baseVer {
		t.Fatalf("base after torn checkpoint is at version %v, want %d", loaded, baseVer)
	}
	ps.Close()

	cat2, wal2, err := Open(wsdPath, walPath, putApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := saveBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("recovery after mid-flush crash differs from the committed state")
	}
	// The store heals: the next checkpoint commits and reloads cleanly.
	if err := cat2.Checkpoint(wal2, wsdPath); err != nil {
		t.Fatal(err)
	}
	got := reloadSnap(t, wsdPath, 16)
	if !bytes.Equal(saveBytes(t, got), want) {
		t.Fatal("checkpoint after recovery differs from the committed state")
	}
}

// TestShardedCrashMidPageFlush: CheckpointAll on a 4-shard catalog dies
// mid-flush on one side shard — other side files may already be at the
// new version, the main file is still at the old one, and no WAL was
// truncated. Recovery merges the mixed-epoch files and replays the WALs
// to the exact committed state.
func TestShardedCrashMidPageFlush(t *testing.T) {
	const nshards = 4
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "cat.wsd")
	names := shardNames(nshards)

	cat, wals, err := OpenSharded(wsdPath, dir, nshards, shardApplier)
	if err != nil {
		t.Fatal(err)
	}
	mkAll(t, cat, names)
	for i, n := range names {
		sIns(t, cat, n, 100+i)
	}
	if err := cat.CheckpointAll(wsdPath); err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		sIns(t, cat, n, 200+i)
	}
	want := dbBytes(t, cat.Snapshot())

	cat.Pagers()[2].failBeforeMeta = func() error { return errors.New("injected crash before meta commit") }
	if err := cat.CheckpointAll(wsdPath); err == nil {
		t.Fatal("CheckpointAll with injected crash reported success")
	}
	for i, st := range cat.DurabilityStats() {
		if st.WALTailRecords == 0 {
			t.Fatalf("failed CheckpointAll truncated shard %d's WAL", i)
		}
	}
	for _, w := range wals {
		w.Close() // crash
	}

	cat2, wals2, err := OpenSharded(wsdPath, dir, nshards, shardApplier)
	if err != nil {
		t.Fatal(err)
	}
	if got := dbBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("recovery after torn CheckpointAll differs from the committed state")
	}
	// The store heals: a clean CheckpointAll commits every shard and a
	// further reopen still matches.
	if err := cat2.CheckpointAll(wsdPath); err != nil {
		t.Fatal(err)
	}
	for _, w := range wals2 {
		w.Close()
	}
	cat3, wals3, err := OpenSharded(wsdPath, dir, nshards, shardApplier)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range wals3 {
		defer w.Close()
	}
	if got := dbBytes(t, cat3.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("reopen after healing checkpoint differs from the committed state")
	}
}

// TestShardedTornCheckpointEverySideShard: sweep the injected mid-flush
// crash across each side shard in turn (and the main file last) — every
// tear point must recover byte-identically.
func TestShardedTornCheckpointEverySideShard(t *testing.T) {
	const nshards = 4
	for victim := 0; victim < nshards; victim++ {
		victim := victim
		t.Run(fmt.Sprintf("shard%d", victim), func(t *testing.T) {
			dir := t.TempDir()
			wsdPath := filepath.Join(dir, "cat.wsd")
			names := shardNames(nshards)
			cat, wals, err := OpenSharded(wsdPath, dir, nshards, shardApplier)
			if err != nil {
				t.Fatal(err)
			}
			mkAll(t, cat, names)
			for i, n := range names {
				sIns(t, cat, n, 10+i)
			}
			if err := cat.CheckpointAll(wsdPath); err != nil {
				t.Fatal(err)
			}
			sIns(t, cat, names[victim], 777)
			sIns(t, cat, names[(victim+1)%nshards], 888)
			want := dbBytes(t, cat.Snapshot())

			cat.Pagers()[victim].failBeforeMeta = func() error { return errors.New("injected crash") }
			if err := cat.CheckpointAll(wsdPath); err == nil {
				t.Fatal("CheckpointAll with injected crash reported success")
			}
			for _, w := range wals {
				w.Close()
			}
			cat2, wals2, err := OpenSharded(wsdPath, dir, nshards, shardApplier)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range wals2 {
				defer w.Close()
			}
			if got := dbBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
				t.Fatal("recovery differs from the committed state")
			}
		})
	}
}
