package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/wsd"
)

// putApplier interprets statement records of the form "put <name> <v>":
// insert integer v into certain relation name, creating the relation
// (schema X) when missing. Deterministic, so statement replay and delta
// replay must converge on the same bytes.
func putApplier(cat *Catalog, rec WALRecord) error {
	return cat.Update(func(tx *Tx) error {
		db := tx.DB()
		for _, stmt := range rec.Stmts {
			tx.Log(stmt)
			var err error
			db, err = applyPut(db, stmt)
			if err != nil {
				return err
			}
		}
		tx.SetDB(db)
		return nil
	})
}

func applyPut(db *wsd.DecompDB, stmt string) (*wsd.DecompDB, error) {
	f := strings.Fields(stmt)
	if len(f) != 3 || f[0] != "put" {
		return nil, fmt.Errorf("putApplier: bad statement %q", stmt)
	}
	v, err := strconv.ParseInt(f[2], 10, 64)
	if err != nil {
		return nil, err
	}
	ri := db.IndexOf(f[1])
	if ri < 0 {
		db = db.WithRelation(f[1], relation.NewSchema("X"), nil)
		ri = db.IndexOf(f[1])
	}
	nr := relation.New(db.Schemas[ri])
	for _, t := range db.Certain[ri].Tuples() {
		nr.Insert(t)
	}
	nr.Insert(relation.Tuple{value.Int(v)})
	return db.WithCertain(ri, nr), nil
}

// put commits one logged "put" transaction.
func put(t *testing.T, cat *Catalog, name string, v int64) {
	t.Helper()
	err := cat.Update(func(tx *Tx) error {
		stmt := fmt.Sprintf("put %s %d", name, v)
		tx.Log(stmt)
		db, err := applyPut(tx.DB(), stmt)
		if err != nil {
			return err
		}
		tx.SetDB(db)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointNoopZeroWrites: a second Catalog.Checkpoint with no
// intervening commit performs zero page writes and leaves the base file
// untouched — the no-op skip.
func TestCheckpointNoopZeroWrites(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "cat.wsd")
	cat, wal, err := Open(wsdPath, filepath.Join(dir, "cat.wal"), putApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	put(t, cat, "T", 1)
	put(t, cat, "T", 2)
	if err := cat.Checkpoint(wal, wsdPath); err != nil {
		t.Fatal(err)
	}
	ps := cat.Pagers()[0]
	before := ps.Stats()
	fi1, err := os.Stat(wsdPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Checkpoint(wal, wsdPath); err != nil {
		t.Fatal(err)
	}
	after := ps.Stats()
	if after.PagesWritten != before.PagesWritten || after.BytesWritten != before.BytesWritten {
		t.Fatalf("no-op checkpoint wrote %d pages / %d bytes",
			after.PagesWritten-before.PagesWritten, after.BytesWritten-before.BytesWritten)
	}
	if after.NoopSkips != before.NoopSkips+1 {
		t.Fatalf("noop skips %d, want %d", after.NoopSkips, before.NoopSkips+1)
	}
	fi2, err := os.Stat(wsdPath)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() != fi1.Size() || !fi2.ModTime().Equal(fi1.ModTime()) {
		t.Fatal("no-op checkpoint modified the base file")
	}
	// The skip still refreshes durability bookkeeping.
	if v, _ := wal.LastCheckpoint(); v != cat.Snapshot().Version {
		t.Fatalf("no-op checkpoint recorded WAL checkpoint version %d, want %d", v, cat.Snapshot().Version)
	}
}

// TestCheckpointIncrementalBytes: after a full checkpoint of a wide
// catalog, committing to one relation and checkpointing again writes a
// small fraction of the bytes — O(dirty components), not O(catalog).
func TestCheckpointIncrementalBytes(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "cat.wsd")
	cat, wal, err := Open(wsdPath, filepath.Join(dir, "cat.wal"), putApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	for i := 0; i < 32; i++ {
		for k := 0; k < 20; k++ {
			put(t, cat, fmt.Sprintf("T%02d", i), int64(i*100+k))
		}
	}
	if err := cat.Checkpoint(wal, wsdPath); err != nil {
		t.Fatal(err)
	}
	ps := cat.Pagers()[0]
	full := ps.Stats().BytesWritten

	put(t, cat, "T00", 424242)
	if err := cat.Checkpoint(wal, wsdPath); err != nil {
		t.Fatal(err)
	}
	incr := ps.Stats().BytesWritten - full
	if incr*8 >= full {
		t.Fatalf("incremental checkpoint wrote %d bytes vs %d for the full one — not O(dirty)", incr, full)
	}

	want := saveBytes(t, cat.Snapshot())
	wal.Close()
	cat2, wal2, err := Open(wsdPath, filepath.Join(dir, "cat.wal"), putApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := saveBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("reopen after incremental checkpoint differs from the committed state")
	}
}

// TestCheckpointMigratesV1: a catalog saved in the v1 JSON format opens
// through OpenPaged, keeps serving commits, and its first checkpoint
// rewrites the base in the v2 page format — reopening from the migrated
// file is byte-identical.
func TestCheckpointMigratesV1(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "cat.wsd")
	db := deltaDB()
	db.Components = []wsd.DBComponent{compOf(db, 1, "A", 10, 11), compOf(db, 2, "B", 20)}
	if err := SaveFile(wsdPath, &Snapshot{Version: 4, DB: db, Views: map[string]string{"V": "select 1"}}); err != nil {
		t.Fatal(err)
	}

	cat, wal, err := Open(wsdPath, filepath.Join(dir, "cat.wal"), putApplier)
	if err != nil {
		t.Fatalf("opening a v1 base: %v", err)
	}
	if cat.Snapshot().Version != 4 {
		t.Fatalf("v1 base loaded at version %d, want 4", cat.Snapshot().Version)
	}
	put(t, cat, "A", 99)
	if err := cat.Checkpoint(wal, wsdPath); err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, cat.Snapshot())
	wal.Close()

	// The base is now a v2 page file, not JSON.
	ps, loaded, err := OpenPageStore(wsdPath, 0, true, 16)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil {
		t.Fatal("base is still a v1 file after a paged checkpoint")
	}
	ps.Close()

	cat2, wal2, err := Open(wsdPath, filepath.Join(dir, "cat.wal"), putApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := saveBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("reopen from the migrated page file differs from the pre-migration state")
	}
}

// TestRecoveryReplaysDeltas: recovery applies WAL page deltas without
// re-executing statements — proven by recovering with an applier that
// always fails, which only delta replay can survive.
func TestRecoveryReplaysDeltas(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "cat.wsd")
	walPath := filepath.Join(dir, "cat.wal")
	cat, wal, err := Open(wsdPath, walPath, putApplier)
	if err != nil {
		t.Fatal(err)
	}
	put(t, cat, "T", 1)
	put(t, cat, "U", 2)
	put(t, cat, "T", 3)
	want := saveBytes(t, cat.Snapshot())
	wal.Close() // crash: no checkpoint, state lives only in the log

	noStmts := func(cat *Catalog, rec WALRecord) error {
		return fmt.Errorf("statement replay invoked for v%d — delta replay should have handled it", rec.Version)
	}
	cat2, wal2, err := Open(wsdPath, walPath, noStmts)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := saveBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("delta-only recovery differs from the pre-crash state")
	}
}

// TestRecoveryStmtFallbackWithoutDeltas: with delta logging disabled
// (SetLogDeltas(false)), recovery still works through statement replay
// — the compatibility path for logs written by older builds.
func TestRecoveryStmtFallbackWithoutDeltas(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "cat.wsd")
	walPath := filepath.Join(dir, "cat.wal")
	cat, wal, err := Open(wsdPath, walPath, putApplier)
	if err != nil {
		t.Fatal(err)
	}
	cat.SetLogDeltas(false)
	put(t, cat, "T", 1)
	put(t, cat, "T", 2)
	want := saveBytes(t, cat.Snapshot())
	wal.Close()

	cat2, wal2, err := Open(wsdPath, walPath, putApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := saveBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("statement-replay recovery differs from the pre-crash state")
	}
}

// TestColdStartPoolSmallerThanCatalog: a catalog whose page file spans
// far more pages than the buffer pool still recovers byte-identically
// and keeps serving reads and commits — chains page in and out on
// demand.
func TestColdStartPoolSmallerThanCatalog(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "cat.wsd")
	walPath := filepath.Join(dir, "cat.wal")
	cat, wal, err := OpenPaged(wsdPath, walPath, putApplier, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		for k := 0; k < 30; k++ {
			put(t, cat, fmt.Sprintf("T%02d", i), int64(i*1000+k))
		}
	}
	if err := cat.Checkpoint(wal, wsdPath); err != nil {
		t.Fatal(err)
	}
	put(t, cat, "T00", -1) // leave a WAL tail too
	want := saveBytes(t, cat.Snapshot())
	wal.Close()

	fi, err := os.Stat(wsdPath)
	if err != nil {
		t.Fatal(err)
	}
	const pool = 4
	if npages := fi.Size() / 8192; npages <= pool*3 {
		t.Fatalf("test catalog spans only %d pages — not meaningfully larger than the %d-page pool", npages, pool)
	}
	cat2, wal2, err := OpenPaged(wsdPath, walPath, putApplier, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := saveBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("cold start with a small pool differs from the committed state")
	}
	st := cat2.Pagers()[0].PoolStats()
	if st.Evictions == 0 {
		t.Fatalf("pool smaller than catalog recorded no evictions (stats %+v)", st)
	}
	// And it keeps working as a live catalog.
	put(t, cat2, "T23", 777777)
	if err := cat2.Checkpoint(wal2, wsdPath); err != nil {
		t.Fatal(err)
	}
	got := reloadSnap(t, wsdPath, 8)
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, cat2.Snapshot())) {
		t.Fatal("post-recovery checkpoint through a small pool differs from the live state")
	}
}

// TestDurabilityStats: the per-shard durability rows report checkpoint
// age, disk bytes, and WAL tail consistent with the catalog's actual
// state.
func TestDurabilityStats(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "cat.wsd")
	cat, wal, err := Open(wsdPath, filepath.Join(dir, "cat.wal"), putApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()

	st := cat.DurabilityStats()
	if len(st) != 1 {
		t.Fatalf("unsharded catalog reports %d durability rows, want 1", len(st))
	}
	if st[0].CheckpointAgeSeconds >= 0 {
		t.Fatalf("never-checkpointed catalog reports age %f, want negative", st[0].CheckpointAgeSeconds)
	}
	if st[0].WALTailRecords != 0 {
		t.Fatalf("fresh WAL tail %d, want 0", st[0].WALTailRecords)
	}

	put(t, cat, "T", 1)
	put(t, cat, "T", 2)
	st = cat.DurabilityStats()
	if st[0].WALTailRecords != 2 {
		t.Fatalf("WAL tail %d after 2 commits, want 2", st[0].WALTailRecords)
	}
	if st[0].DiskBytes != 0 {
		t.Fatalf("disk bytes %d before any checkpoint, want 0", st[0].DiskBytes)
	}

	if err := cat.Checkpoint(wal, wsdPath); err != nil {
		t.Fatal(err)
	}
	st = cat.DurabilityStats()
	if st[0].WALTailRecords != 0 {
		t.Fatalf("WAL tail %d after checkpoint, want 0", st[0].WALTailRecords)
	}
	if st[0].CheckpointAgeSeconds < 0 {
		t.Fatal("checkpoint age still negative after a checkpoint")
	}
	if st[0].DiskBytes == 0 {
		t.Fatal("disk bytes 0 after a checkpoint")
	}
	if st[0].BaseVersion != cat.Snapshot().Version {
		t.Fatalf("base version %d, want %d", st[0].BaseVersion, cat.Snapshot().Version)
	}
	if st[0].Checkpoints == 0 {
		t.Fatal("checkpoint counter not incremented")
	}
}
