package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/wsd"
)

// WAL page-delta records. A commit's WAL record historically carried
// only the SQL statements; recovery re-executed them through the engine
// (O(query cost) per record). A CommitDelta captures the commit's
// effect on durable state instead — which certain relations changed,
// which components (by stable ID) were upserted or dropped, view and
// schema changes — so store.Open can replay a record by patching the
// decomposition directly, in time proportional to the touched data.
// Statements stay in the record as provenance and as the fallback for
// records written before deltas existed.
//
// The delta is computed on the commit path by pointer/shape diffing
// (see wsd.SameComponentShape): copy-on-write edits share
// *relation.Relation values for untouched data, so the diff never
// compares tuples. A false positive (rebuilt relation with equal
// content) only makes the record larger, never wrong.

// CommitDelta is the durable description of one commit's effect.
type CommitDelta struct {
	// Full marks a whole-snapshot delta: Names/Schemas/Certain/Upserts
	// describe the complete post-commit state, not a patch. Used for
	// schema changes (renames and drops make index-based patching
	// ambiguous) and as the safety fallback when components lack IDs.
	Full bool `json:"full,omitempty"`

	// Names and Schemas are set only on Full deltas.
	Names   []string   `json:"names,omitempty"`
	Schemas [][]string `json:"schemas,omitempty"`

	// Certain maps relation name → complete post-commit tuple set for
	// each certain relation the commit touched (every relation, on Full
	// deltas — empty ones omitted).
	Certain map[string][]jsonTuple `json:"certain,omitempty"`

	// Patch maps relation name → tuple-level edit for touched certain
	// relations whose change is a small fraction of their rows. A
	// single-row insert into an n-row relation logs one tuple instead
	// of n — without this, insert-heavy workloads pay O(n) delta encode
	// per commit and O(n) decode per replayed record, and past a few
	// dozen rows that costs more than re-executing the statement.
	// Relations are tuple sets (serialization sorts), so an edit list
	// replays to byte-identical state. Never set on Full deltas.
	Patch map[string]*relPatch `json:"patch,omitempty"`

	// Upserts carries every created or modified component, keyed by
	// stable ID, in post-commit order. Drops lists IDs of components
	// the commit removed, in pre-commit order.
	Upserts []deltaComp `json:"upserts,omitempty"`
	Drops   []uint64    `json:"drops,omitempty"`

	// Order overrides the derived component order (base order with
	// drops removed, upserts substituted in place and new components
	// appended) when the commit reordered components beyond that rule.
	Order []uint64 `json:"order,omitempty"`

	// ViewsChanged/Views carry the complete post-commit view map when
	// the commit changed it (a nil-vs-empty distinction plain omitempty
	// cannot express).
	ViewsChanged bool              `json:"vch,omitempty"`
	Views        map[string]string `json:"views,omitempty"`
}

type deltaComp struct {
	ID   uint64            `json:"id"`
	Alts []jsonAlternative `json:"alts"`
}

// relPatch is a tuple-level edit to one certain relation: Ins are the
// tuples the commit added, Del the tuples it removed (both sorted for
// deterministic record bytes).
type relPatch struct {
	Ins []jsonTuple `json:"ins,omitempty"`
	Del []jsonTuple `json:"del,omitempty"`
}

// diffRelation computes a tuple-level patch base → next, or nil when a
// whole-relation capture is the better encoding. The budget is a
// quarter of the larger side's rows: below it the patch is strictly
// smaller than the capture; above it (bulk loads, rewrites) the
// capture costs about the same and skips the membership probes. The
// probe pass bails out as soon as the budget is exceeded, so the diff
// costs O(n) hash lookups, never O(n) encodes.
func diffRelation(base, next *relation.Relation) *relPatch {
	if base == nil || next == nil {
		return nil
	}
	budget := next.Len() / 4
	if b := base.Len() / 4; b > budget {
		budget = b
	}
	if budget == 0 {
		return nil
	}
	var ins, del []relation.Tuple
	over := false
	next.Each(func(t relation.Tuple) {
		if over || base.Contains(t) {
			return
		}
		ins = append(ins, t)
		over = len(ins) > budget
	})
	if over {
		return nil
	}
	// |base ∩ next| = next.Len() - len(ins), so the deletion count is
	// known before probing for the deleted tuples themselves.
	nDel := base.Len() - (next.Len() - len(ins))
	if len(ins)+nDel > budget {
		return nil
	}
	if nDel > 0 {
		base.Each(func(t relation.Tuple) {
			if !next.Contains(t) {
				del = append(del, t)
			}
		})
	}
	return &relPatch{Ins: encodeTuples(ins), Del: encodeTuples(del)}
}

// encodeTuples encodes an edit list in sorted order.
func encodeTuples(ts []relation.Tuple) []jsonTuple {
	if len(ts) == 0 {
		return nil
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
	out := make([]jsonTuple, len(ts))
	for i, t := range ts {
		out[i] = encodeTuple(t)
	}
	return out
}

// decodeDelta parses a delta's raw JSON with UseNumber so tuple cells
// decode as json.Number (decodeValue's integer/float discrimination
// depends on it).
func decodeDelta(raw []byte) (*CommitDelta, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var d CommitDelta
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("store: decoding commit delta: %w", err)
	}
	return &d, nil
}

func sameSchema(a, b *wsd.DecompDB) bool {
	if len(a.Names) != len(b.Names) {
		return false
	}
	for i := range a.Names {
		if a.Names[i] != b.Names[i] {
			return false
		}
		as, bs := a.Schemas[i], b.Schemas[i]
		if len(as) != len(bs) {
			return false
		}
		for j := range as {
			if as[j] != bs[j] {
				return false
			}
		}
	}
	return true
}

func sameViews(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// fullDelta encodes next as a whole-snapshot delta.
func fullDelta(next *Snapshot) *CommitDelta {
	d := &CommitDelta{Full: true, Names: append([]string{}, next.DB.Names...), ViewsChanged: true, Views: next.Views}
	for _, s := range next.DB.Schemas {
		d.Schemas = append(d.Schemas, []string(s))
	}
	for i, r := range next.DB.Certain {
		if r == nil || r.Len() == 0 {
			continue
		}
		if d.Certain == nil {
			d.Certain = map[string][]jsonTuple{}
		}
		d.Certain[next.DB.Names[i]] = encodeRelation(r)
	}
	for _, c := range next.DB.Components {
		d.Upserts = append(d.Upserts, deltaComp{ID: c.ID, Alts: encodeAlternatives(next.DB.Names, c)})
	}
	return d
}

// diffSnapshots computes the delta carrying base → next. Component IDs
// must already be assigned on next (commitLocked assigns before
// diffing); a component without one forces a Full delta.
func diffSnapshots(base, next *Snapshot) *CommitDelta {
	if !sameSchema(base.DB, next.DB) {
		return fullDelta(next)
	}
	for i := range next.DB.Components {
		if next.DB.Components[i].ID == 0 {
			return fullDelta(next)
		}
	}
	baseByID := map[uint64]int{}
	for i := range base.DB.Components {
		id := base.DB.Components[i].ID
		if id == 0 {
			return fullDelta(next)
		}
		baseByID[id] = i
	}

	d := &CommitDelta{}
	for i := range next.DB.Certain {
		if next.DB.Certain[i] == base.DB.Certain[i] {
			continue
		}
		if p := diffRelation(base.DB.Certain[i], next.DB.Certain[i]); p != nil {
			if d.Patch == nil {
				d.Patch = map[string]*relPatch{}
			}
			d.Patch[next.DB.Names[i]] = p
			continue
		}
		if d.Certain == nil {
			d.Certain = map[string][]jsonTuple{}
		}
		d.Certain[next.DB.Names[i]] = encodeRelation(next.DB.Certain[i])
	}

	nextIDs := map[uint64]bool{}
	for _, c := range next.DB.Components {
		nextIDs[c.ID] = true
		if bi, ok := baseByID[c.ID]; ok && wsd.SameComponentShape(base.DB.Components[bi], c) {
			continue
		}
		d.Upserts = append(d.Upserts, deltaComp{ID: c.ID, Alts: encodeAlternatives(next.DB.Names, c)})
	}
	for _, c := range base.DB.Components {
		if !nextIDs[c.ID] {
			d.Drops = append(d.Drops, c.ID)
		}
	}

	// Derived order: base order minus drops, new IDs appended in upsert
	// order. Record an explicit order only when next deviates.
	derived := deriveOrder(base.DB, d)
	actual := make([]uint64, len(next.DB.Components))
	for i := range next.DB.Components {
		actual[i] = next.DB.Components[i].ID
	}
	if !sameIDSeq(derived, actual) {
		d.Order = actual
	}

	if !sameViews(base.Views, next.Views) {
		d.ViewsChanged = true
		d.Views = next.Views
	}
	return d
}

// diffShard computes the routed delta for a sharded commit: certain
// relations homed at a participant shard whose pointer changed, plus
// write-set components (by stable ID) that changed shape or dropped.
// Routed commits never create components, change schema or views, so
// the delta mirrors applyShardDiff exactly — replaying it with
// applyDelta's in-place substitution rule reproduces the merge.
func diffShard(base, next *wsd.DecompDB, nshards int, ps []int, wset map[uint64]bool) *CommitDelta {
	inP := map[int]bool{}
	for _, p := range ps {
		inP[p] = true
	}
	d := &CommitDelta{}
	for i := range base.Certain {
		if !inP[shardOfName(base.Names[i], nshards)] || next.Certain[i] == base.Certain[i] {
			continue
		}
		if p := diffRelation(base.Certain[i], next.Certain[i]); p != nil {
			if d.Patch == nil {
				d.Patch = map[string]*relPatch{}
			}
			d.Patch[base.Names[i]] = p
			continue
		}
		if d.Certain == nil {
			d.Certain = map[string][]jsonTuple{}
		}
		d.Certain[base.Names[i]] = encodeRelation(next.Certain[i])
	}
	baseByID := map[uint64]int{}
	for i := range base.Components {
		baseByID[base.Components[i].ID] = i
	}
	nextIDs := map[uint64]bool{}
	for _, c := range next.Components {
		if !wset[c.ID] {
			continue
		}
		nextIDs[c.ID] = true
		if bi, ok := baseByID[c.ID]; ok && wsd.SameComponentShape(base.Components[bi], c) {
			continue
		}
		d.Upserts = append(d.Upserts, deltaComp{ID: c.ID, Alts: encodeAlternatives(base.Names, c)})
	}
	for _, c := range base.Components {
		if wset[c.ID] && !nextIDs[c.ID] {
			d.Drops = append(d.Drops, c.ID)
		}
	}
	return d
}

func deriveOrder(base *wsd.DecompDB, d *CommitDelta) []uint64 {
	dropped := map[uint64]bool{}
	for _, id := range d.Drops {
		dropped[id] = true
	}
	inBase := map[uint64]bool{}
	var out []uint64
	for _, c := range base.Components {
		inBase[c.ID] = true
		if !dropped[c.ID] {
			out = append(out, c.ID)
		}
	}
	for _, u := range d.Upserts {
		if !inBase[u.ID] {
			out = append(out, u.ID)
		}
	}
	return out
}

func sameIDSeq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// isEmpty reports whether the delta carries no change at all (a commit
// whose statements had no durable effect).
func (d *CommitDelta) isEmpty() bool {
	return !d.Full && len(d.Certain) == 0 && len(d.Patch) == 0 &&
		len(d.Upserts) == 0 && len(d.Drops) == 0 && len(d.Order) == 0 && !d.ViewsChanged
}

// applyDelta patches (db, views) with d and returns the post-commit
// decomposition and view map. The inputs are never mutated; untouched
// relations and components are shared by pointer, exactly like the
// engine's own copy-on-write edits. The result is NOT re-normalized —
// the writer's state already was, and skipping it keeps replayed
// snapshots byte-identical to the originals.
func applyDelta(db *wsd.DecompDB, views map[string]string, d *CommitDelta) (*wsd.DecompDB, map[string]string, error) {
	if d.Full {
		return applyFullDelta(d)
	}
	out := wsd.NewDecompDB(db.Names, db.Schemas)
	copy(out.Certain, db.Certain)
	for name, rows := range d.Certain {
		ri := out.IndexOf(name)
		if ri < 0 {
			return nil, nil, fmt.Errorf("store: delta touches unknown relation %q", name)
		}
		rel, err := decodeRelation(out.Schemas[ri], rows)
		if err != nil {
			return nil, nil, fmt.Errorf("store: delta relation %q: %w", name, err)
		}
		out.Certain[ri] = rel
	}
	for name, p := range d.Patch {
		ri := out.IndexOf(name)
		if ri < 0 {
			return nil, nil, fmt.Errorf("store: delta patches unknown relation %q", name)
		}
		rel, err := applyPatch(out.Certain[ri], out.Schemas[ri], p)
		if err != nil {
			return nil, nil, fmt.Errorf("store: delta patch for %q: %w", name, err)
		}
		out.Certain[ri] = rel
	}

	dropped := map[uint64]bool{}
	for _, id := range d.Drops {
		dropped[id] = true
	}
	upserts := map[uint64]wsd.DBComponent{}
	for _, u := range d.Upserts {
		alts, err := decodeAlternatives(out, u.Alts, false)
		if err != nil {
			return nil, nil, fmt.Errorf("store: delta component %d: %w", u.ID, err)
		}
		upserts[u.ID] = wsd.DBComponent{ID: u.ID, Alternatives: alts}
	}

	inBase := map[uint64]bool{}
	out.Components = make([]wsd.DBComponent, 0, len(db.Components)+len(d.Upserts))
	for _, c := range db.Components {
		inBase[c.ID] = true
		if dropped[c.ID] {
			continue
		}
		if nc, ok := upserts[c.ID]; ok {
			out.Components = append(out.Components, nc)
			continue
		}
		out.Components = append(out.Components, c)
	}
	for _, u := range d.Upserts {
		if !inBase[u.ID] {
			out.Components = append(out.Components, upserts[u.ID])
		}
	}

	if len(d.Order) > 0 {
		byID := map[uint64]wsd.DBComponent{}
		for _, c := range out.Components {
			byID[c.ID] = c
		}
		if len(d.Order) != len(out.Components) {
			return nil, nil, fmt.Errorf("store: delta order lists %d components, state has %d", len(d.Order), len(out.Components))
		}
		reordered := make([]wsd.DBComponent, 0, len(d.Order))
		for _, id := range d.Order {
			c, ok := byID[id]
			if !ok {
				return nil, nil, fmt.Errorf("store: delta order references unknown component %d", id)
			}
			reordered = append(reordered, c)
		}
		out.Components = reordered
	}

	if d.ViewsChanged {
		views = copyViews(d.Views)
	}
	return out, views, nil
}

// applyPatch replays a tuple-level edit against the replay state's
// copy of the relation. A deletion of a missing tuple or an insertion
// of a present one means the patch was diffed against a different base
// than the one being replayed — that is an error (the caller falls
// back to statement re-execution), never a silent divergence.
func applyPatch(base *relation.Relation, schema relation.Schema, p *relPatch) (*relation.Relation, error) {
	var rel *relation.Relation
	if base == nil {
		rel = relation.New(schema)
	} else {
		rel = base.Clone()
	}
	for _, row := range p.Del {
		t, err := decodeTuple(schema, row)
		if err != nil {
			return nil, err
		}
		if !rel.Delete(t) {
			return nil, fmt.Errorf("deleted tuple %v not in replay state", t)
		}
	}
	for _, row := range p.Ins {
		t, err := decodeTuple(schema, row)
		if err != nil {
			return nil, err
		}
		if !rel.Insert(t) {
			return nil, fmt.Errorf("inserted tuple %v already in replay state", t)
		}
	}
	return rel, nil
}

func applyFullDelta(d *CommitDelta) (*wsd.DecompDB, map[string]string, error) {
	schemas := make([]relation.Schema, len(d.Schemas))
	for i, s := range d.Schemas {
		schemas[i] = relation.NewSchema(s...)
	}
	if len(d.Names) != len(schemas) {
		return nil, nil, fmt.Errorf("store: full delta has %d names, %d schemas", len(d.Names), len(schemas))
	}
	out := wsd.NewDecompDB(d.Names, schemas)
	for name, rows := range d.Certain {
		ri := out.IndexOf(name)
		if ri < 0 {
			return nil, nil, fmt.Errorf("store: full delta touches unknown relation %q", name)
		}
		rel, err := decodeRelation(out.Schemas[ri], rows)
		if err != nil {
			return nil, nil, fmt.Errorf("store: full delta relation %q: %w", name, err)
		}
		out.Certain[ri] = rel
	}
	for _, u := range d.Upserts {
		alts, err := decodeAlternatives(out, u.Alts, false)
		if err != nil {
			return nil, nil, fmt.Errorf("store: full delta component %d: %w", u.ID, err)
		}
		out.Components = append(out.Components, wsd.DBComponent{ID: u.ID, Alternatives: alts})
	}
	return out, copyViews(d.Views), nil
}

func copyViews(v map[string]string) map[string]string {
	out := make(map[string]string, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}
