package store

import (
	"bytes"
	"encoding/json"
	"testing"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/wsd"
)

// deltaDB builds a two-relation decomposition for delta tests.
func deltaDB() *wsd.DecompDB {
	db := wsd.NewDecompDB([]string{"A", "B"},
		[]relation.Schema{relation.NewSchema("X"), relation.NewSchema("X")})
	for i := range db.Certain {
		r := relation.New(db.Schemas[i])
		r.Insert(relation.Tuple{value.Int(int64(i))})
		db.Certain[i] = r
	}
	return db
}

// compOf builds a component with one single-relation alternative per
// value, contributing to name.
func compOf(db *wsd.DecompDB, id uint64, name string, vals ...int64) wsd.DBComponent {
	ri := db.IndexOf(name)
	alts := make([]wsd.DBAlternative, len(vals))
	for i, v := range vals {
		r := relation.New(db.Schemas[ri])
		r.Insert(relation.Tuple{value.Int(v)})
		alts[i] = wsd.DBAlternative{Rels: map[int]*relation.Relation{ri: r}}
	}
	return wsd.DBComponent{ID: id, Alternatives: alts}
}

// applyThroughDisk round-trips d through its JSON encoding (the WAL's
// framing) before applying — exactly what recovery sees.
func applyThroughDisk(t *testing.T, base *Snapshot, d *CommitDelta) *Snapshot {
	t.Helper()
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := decodeDelta(raw)
	if err != nil {
		t.Fatal(err)
	}
	db, views, err := applyDelta(base.DB, base.Views, dd)
	if err != nil {
		t.Fatal(err)
	}
	return &Snapshot{Version: base.Version + 1, DB: db, Views: views}
}

// TestDeltaRoundTrip: an incremental diff (changed certain relation,
// modified component, dropped component, new component) replays to the
// byte-identical snapshot.
func TestDeltaRoundTrip(t *testing.T) {
	db := deltaDB()
	db.Components = []wsd.DBComponent{
		compOf(db, 1, "A", 10, 11),
		compOf(db, 2, "B", 20, 21),
		compOf(db, 3, "A", 30),
	}
	base := &Snapshot{Version: 5, DB: db, Views: map[string]string{}}

	nr := relation.New(db.Schemas[0])
	nr.Insert(relation.Tuple{value.Int(0)})
	nr.Insert(relation.Tuple{value.Int(99)})
	next := db.WithCertain(0, nr)
	next.Components = []wsd.DBComponent{
		next.Components[0],               // untouched (shared alternatives)
		compOf(next, 2, "B", 20, 21, 22), // modified
		// ID 3 dropped
		compOf(next, 4, "A", 40), // created
	}
	nextSnap := &Snapshot{Version: 6, DB: next, Views: map[string]string{}}

	d := diffSnapshots(base, nextSnap)
	if d.Full {
		t.Fatal("incremental change produced a Full delta")
	}
	if len(d.Certain) != 1 {
		t.Fatalf("delta carries %d certain relations, want 1 (only A changed)", len(d.Certain))
	}
	if len(d.Upserts) != 2 || len(d.Drops) != 1 || d.Drops[0] != 3 {
		t.Fatalf("delta upserts=%d drops=%v, want 2 upserts and drop of id 3", len(d.Upserts), d.Drops)
	}
	got := applyThroughDisk(t, base, d)
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, nextSnap)) {
		t.Fatal("delta replay differs from the committed snapshot")
	}
}

// TestDeltaFullOnSchemaChange: adding a relation forces a Full delta,
// and the Full delta replays byte-identically.
func TestDeltaFullOnSchemaChange(t *testing.T) {
	db := deltaDB()
	db.Components = []wsd.DBComponent{compOf(db, 1, "A", 10, 11)}
	base := &Snapshot{Version: 1, DB: db, Views: map[string]string{}}
	next := db.WithRelation("C", relation.NewSchema("Y", "Z"), nil)
	nextSnap := &Snapshot{Version: 2, DB: next, Views: map[string]string{}}

	d := diffSnapshots(base, nextSnap)
	if !d.Full {
		t.Fatal("schema change did not force a Full delta")
	}
	got := applyThroughDisk(t, base, d)
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, nextSnap)) {
		t.Fatal("full delta replay differs from the committed snapshot")
	}
}

// TestDeltaOrderOverride: a commit that reorders components beyond the
// derived rule records an explicit order, and replay honors it.
func TestDeltaOrderOverride(t *testing.T) {
	db := deltaDB()
	db.Components = []wsd.DBComponent{
		compOf(db, 1, "A", 10),
		compOf(db, 2, "B", 20),
	}
	base := &Snapshot{Version: 1, DB: db, Views: map[string]string{}}
	next := db.WithCertain(0, db.Certain[0])
	next.Components[0], next.Components[1] = next.Components[1], next.Components[0]
	nextSnap := &Snapshot{Version: 2, DB: next, Views: map[string]string{}}

	d := diffSnapshots(base, nextSnap)
	if len(d.Order) != 2 || d.Order[0] != 2 || d.Order[1] != 1 {
		t.Fatalf("reorder recorded order %v, want [2 1]", d.Order)
	}
	got := applyThroughDisk(t, base, d)
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, nextSnap)) {
		t.Fatal("order-override replay differs from the committed snapshot")
	}
}

// TestDeltaViewsChange: view-map changes ride the delta even when the
// decomposition is untouched, including clearing to empty.
func TestDeltaViewsChange(t *testing.T) {
	db := deltaDB()
	base := &Snapshot{Version: 1, DB: db, Views: map[string]string{"V": "select 1"}}
	nextSnap := &Snapshot{Version: 2, DB: db, Views: map[string]string{}}
	d := diffSnapshots(base, nextSnap)
	if !d.ViewsChanged {
		t.Fatal("view drop not recorded")
	}
	got := applyThroughDisk(t, base, d)
	if len(got.Views) != 0 {
		t.Fatalf("replayed views %v, want empty", got.Views)
	}
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, nextSnap)) {
		t.Fatal("views-change replay differs from the committed snapshot")
	}
}

// TestDeltaShardDiffMirrorsPublish: diffShard's record replays to the
// same state applyShardDiff publishes, for a single-shard commit that
// modifies its homed certain relation and replaces one write-set
// component.
func TestDeltaShardDiffMirrorsPublish(t *testing.T) {
	const nshards = 4
	names := shardNames(nshards)
	dbNames := make([]string, nshards)
	schemas := make([]relation.Schema, nshards)
	for i := range dbNames {
		dbNames[i] = names[i]
		schemas[i] = relation.NewSchema("X")
	}
	db := wsd.NewDecompDB(dbNames, schemas)
	db.Components = []wsd.DBComponent{
		compOf(db, 1, names[1], 10, 11),
		compOf(db, 2, names[2], 20, 21),
	}

	si := shardOfName(names[1], nshards)
	nr := relation.New(db.Schemas[1])
	nr.Insert(relation.Tuple{value.Int(7)})
	next := db.WithCertain(1, nr)
	next.Components[0] = compOf(next, 1, names[1], 10) // shrink component 1
	wset := map[uint64]bool{1: true}

	d := diffShard(db, next, nshards, []int{si}, wset)
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := decodeDelta(raw)
	if err != nil {
		t.Fatal(err)
	}
	replayed, _, err := applyDelta(db, map[string]string{}, dd)
	if err != nil {
		t.Fatal(err)
	}
	c := &Catalog{nshards: nshards}
	published := c.applyShardDiff(db, next, []int{si}, wset)
	a := saveBytes(t, &Snapshot{Version: 1, DB: replayed, Views: map[string]string{}})
	b := saveBytes(t, &Snapshot{Version: 1, DB: published, Views: map[string]string{}})
	if !bytes.Equal(a, b) {
		t.Fatal("shard delta replay differs from applyShardDiff publication")
	}
}

// TestDeltaPatchSmallEdit: a single-row insert into a large relation
// logs a one-tuple patch, never the whole post-commit contents, and
// the patch replays byte-identically. This is what keeps delta records
// O(edit) on insert-heavy workloads — whole-relation capture would
// make both the commit path and recovery O(relation) per record.
func TestDeltaPatchSmallEdit(t *testing.T) {
	db := deltaDB()
	big := relation.New(db.Schemas[0])
	for i := int64(0); i < 100; i++ {
		big.Insert(relation.Tuple{value.Int(i)})
	}
	db.Certain[0] = big
	base := &Snapshot{Version: 1, DB: db, Views: map[string]string{}}

	nr := big.Clone()
	nr.Insert(relation.Tuple{value.Int(999)})
	next := db.WithCertain(0, nr)
	nextSnap := &Snapshot{Version: 2, DB: next, Views: map[string]string{}}

	d := diffSnapshots(base, nextSnap)
	if len(d.Certain) != 0 {
		t.Fatalf("small edit captured %d whole relations, want a patch", len(d.Certain))
	}
	p := d.Patch["A"]
	if p == nil || len(p.Ins) != 1 || len(p.Del) != 0 {
		t.Fatalf("patch = %+v, want exactly one inserted tuple", p)
	}
	got := applyThroughDisk(t, base, d)
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, nextSnap)) {
		t.Fatal("patch replay differs from the committed snapshot")
	}

	// Mixed edit: replace one tuple (delete + insert) — still a patch.
	nr2 := nr.Clone()
	nr2.Delete(relation.Tuple{value.Int(7)})
	nr2.Insert(relation.Tuple{value.Int(-7)})
	next2 := next.WithCertain(0, nr2)
	next2Snap := &Snapshot{Version: 3, DB: next2, Views: map[string]string{}}
	d2 := diffSnapshots(nextSnap, next2Snap)
	p2 := d2.Patch["A"]
	if p2 == nil || len(p2.Ins) != 1 || len(p2.Del) != 1 {
		t.Fatalf("patch = %+v, want one insert and one delete", p2)
	}
	got2 := applyThroughDisk(t, nextSnap, d2)
	if !bytes.Equal(saveBytes(t, got2), saveBytes(t, next2Snap)) {
		t.Fatal("delete+insert patch replay differs from the committed snapshot")
	}

	// Rewriting most of the relation is not patch-worthy: the capture
	// costs the same and skips the probes.
	bulk := relation.New(db.Schemas[0])
	for i := int64(500); i < 600; i++ {
		bulk.Insert(relation.Tuple{value.Int(i)})
	}
	next3 := next2.WithCertain(0, bulk)
	d3 := diffSnapshots(next2Snap, &Snapshot{Version: 4, DB: next3, Views: map[string]string{}})
	if len(d3.Patch) != 0 || len(d3.Certain) != 1 {
		t.Fatalf("bulk rewrite produced patch=%v certain=%d, want whole-relation capture", d3.Patch, len(d3.Certain))
	}
}

// TestDeltaPatchMismatchErrors: a patch applied against a base it was
// not diffed from errors out (recovery then falls back to statement
// re-execution) instead of silently diverging.
func TestDeltaPatchMismatchErrors(t *testing.T) {
	db := deltaDB()
	schema := db.Schemas[0]
	big := relation.New(schema)
	for i := int64(0); i < 20; i++ {
		big.Insert(relation.Tuple{value.Int(i)})
	}
	if _, err := applyPatch(big, schema, &relPatch{Del: []jsonTuple{{json.Number("99")}}}); err == nil {
		t.Fatal("deleting a missing tuple did not error")
	}
	if _, err := applyPatch(big, schema, &relPatch{Ins: []jsonTuple{{json.Number("5")}}}); err == nil {
		t.Fatal("inserting a present tuple did not error")
	}
}

// TestDeltaEmptyOnNoChange: diffing a snapshot against itself yields an
// empty delta.
func TestDeltaEmptyOnNoChange(t *testing.T) {
	db := deltaDB()
	db.Components = []wsd.DBComponent{compOf(db, 1, "A", 10)}
	snap := &Snapshot{Version: 1, DB: db, Views: map[string]string{}}
	if d := diffSnapshots(snap, snap); !d.isEmpty() {
		t.Fatalf("self-diff is not empty: %+v", d)
	}
}
