package store

import (
	"os"
	"time"

	"worldsetdb/internal/bufpool"
)

// Durability observability: one stat row per shard covering the three
// questions an operator asks of a WAL-plus-checkpoint store — how stale
// is the recovery base (checkpoint age), how big is it on disk, and how
// much WAL tail would a crash right now replay. The rows also carry the
// page store's checkpoint I/O counters and buffer-pool counters so
// /metrics can export everything from one call.

// DurabilityStat is one shard's durability posture.
type DurabilityStat struct {
	Shard int `json:"shard"`
	// BaseVersion is the catalog version of the shard's last durable
	// page checkpoint (0 when the shard has never page-checkpointed).
	BaseVersion uint64 `json:"base_version"`
	// CheckpointAgeSeconds is the time since the shard's last
	// checkpoint completed (or was skipped as a no-op); negative when no
	// checkpoint has happened since open.
	CheckpointAgeSeconds float64 `json:"checkpoint_age_seconds"`
	// DiskBytes is the on-disk size of the shard's checkpoint file (0
	// when the file does not exist yet).
	DiskBytes int64 `json:"disk_bytes"`
	// WALTailRecords is the number of records in the shard's WAL
	// segment — the replay work a crash right now would cost.
	WALTailRecords int `json:"wal_tail_records"`

	// Checkpoint I/O counters (zero without paging).
	PagesWritten uint64 `json:"pages_written"`
	BytesWritten uint64 `json:"bytes_written"`
	Checkpoints  uint64 `json:"checkpoints"`
	NoopSkips    uint64 `json:"noop_skips"`

	// Buffer-pool counters (zero without paging or before the first
	// page-file open/write).
	Pool bufpool.Stats `json:"pool"`
}

// DurabilityStats reports the per-shard durability posture (one entry
// for the whole catalog when unsharded). Safe to call concurrently with
// commits and checkpoints.
func (c *Catalog) DurabilityStats() []DurabilityStat {
	n := c.Shards()
	out := make([]DurabilityStat, n)
	now := time.Now()
	for i := 0; i < n; i++ {
		st := DurabilityStat{Shard: i, CheckpointAgeSeconds: -1}
		var w *WAL
		if c.nshards <= 1 {
			w, _ = c.logger.(*WAL)
		} else {
			w = c.shards[i].wal
		}
		var last time.Time
		if w != nil {
			st.WALTailRecords = w.TailRecords()
			_, last = w.LastCheckpoint()
		}
		if i < len(c.pagers) && c.pagers[i] != nil {
			ps := c.pagers[i]
			st.BaseVersion = ps.Version()
			cs := ps.Stats()
			st.PagesWritten = cs.PagesWritten
			st.BytesWritten = cs.BytesWritten
			st.Checkpoints = cs.Checkpoints
			st.NoopSkips = cs.NoopSkips
			st.Pool = ps.PoolStats()
			if cs.LastCkptAt.After(last) {
				last = cs.LastCkptAt
			}
			if fi, err := os.Stat(ps.Path()); err == nil {
				st.DiskBytes = fi.Size()
			}
		}
		if !last.IsZero() {
			st.CheckpointAgeSeconds = now.Sub(last).Seconds()
		}
		out[i] = st
	}
	return out
}

// EnablePaging attaches one PageStore per shard to a catalog that was
// constructed fresh (not through Open/OpenSharded, which wire the
// stores themselves): checkpoints through Checkpoint/CheckpointAll at
// wsdPath then write the incremental page format. Call before
// concurrent use. Existing page files at the shard paths are adopted;
// a v1 JSON file (or nothing) at a path leaves that store
// uninitialized until its first checkpoint migrates it.
func (c *Catalog) EnablePaging(wsdPath string, poolPages int) error {
	n := c.Shards()
	pagers := make([]*PageStore, n)
	for i := 0; i < n; i++ {
		ps, _, err := OpenPageStore(shardCkptPath(wsdPath, i), i, i == 0, poolPages)
		if err != nil {
			for _, p := range pagers {
				if p != nil {
					p.Close()
				}
			}
			return err
		}
		pagers[i] = ps
	}
	c.pagers = pagers
	return nil
}

// Pagers exposes the catalog's page stores (nil entries possible; empty
// without paging). Read-only observability access for /metrics.
func (c *Catalog) Pagers() []*PageStore { return c.pagers }
