package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"worldsetdb/internal/relation"
)

// gatedBatchLogger is a BatchTxLogger whose AppendBatch blocks until
// released, so tests can hold a flush leader mid-fsync while more
// committers enqueue — making batch formation deterministic.
type gatedBatchLogger struct {
	mu      sync.Mutex
	batches [][]WALRecord
	entered chan struct{} // signaled when AppendBatch is entered
	release chan struct{} // receives one token per AppendBatch allowed out
	fail    error         // when set, AppendBatch returns it (after the gate)
}

func newGatedBatchLogger() *gatedBatchLogger {
	return &gatedBatchLogger{entered: make(chan struct{}, 64), release: make(chan struct{}, 64)}
}

func (g *gatedBatchLogger) AppendCommit(version uint64, stmts []string) error {
	return g.AppendBatch([]WALRecord{{Version: version, Stmts: stmts}})
}

func (g *gatedBatchLogger) AppendBatch(recs []WALRecord) error {
	g.entered <- struct{}{}
	<-g.release
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.fail != nil {
		return g.fail
	}
	cp := append([]WALRecord{}, recs...)
	g.batches = append(g.batches, cp)
	return nil
}

func (g *gatedBatchLogger) snapshotBatches() [][]WALRecord {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([][]WALRecord{}, g.batches...)
}

func (g *gatedBatchLogger) setFail(err error) {
	g.mu.Lock()
	g.fail = err
	g.mu.Unlock()
}

// commitRelAsync starts one logged relation-adding commit and returns
// its error channel.
func commitRelAsync(c *Catalog, name string) chan error {
	done := make(chan error, 1)
	go func() {
		done <- c.Update(func(tx *Tx) error {
			tx.Log(name)
			tx.SetDB(tx.DB().WithRelation(name, relation.NewSchema("X"), nil))
			return nil
		})
	}()
	return done
}

// waitPending polls until n commits are queued behind the in-flight
// flush.
func waitPending(t *testing.T, c *Catalog, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.PendingCommits() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d commits enqueued", c.PendingCommits(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupCommitBatches: committers arriving while the leader is
// inside its fsync coalesce into the leader's next batch — one
// AppendBatch, one fsync, many records.
func TestGroupCommitBatches(t *testing.T) {
	g := newGatedBatchLogger()
	c := New(nil)
	c.SetLogger(g)

	first := commitRelAsync(c, "T0")
	<-g.entered // leader is mid-"fsync" with batch [T0]

	const waiters = 4
	var rest []chan error
	for i := 0; i < waiters; i++ {
		rest = append(rest, commitRelAsync(c, fmt.Sprintf("W%d", i)))
	}
	waitPending(t, c, waiters)

	g.release <- struct{}{} // let batch 1 (the lone leader record) finish
	if err := <-first; err != nil {
		t.Fatalf("leader commit: %v", err)
	}
	<-g.entered // leader drained the queue into batch 2
	g.release <- struct{}{}
	for i, done := range rest {
		if err := <-done; err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}

	batches := g.snapshotBatches()
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2 (leader + coalesced waiters): %v", len(batches), batches)
	}
	if len(batches[0]) != 1 || len(batches[1]) != waiters {
		t.Fatalf("batch sizes %d,%d; want 1,%d", len(batches[0]), len(batches[1]), waiters)
	}
	// Versions are contiguous across batches and published in order.
	want := uint64(2)
	for _, b := range batches {
		for _, rec := range b {
			if rec.Version != want {
				t.Fatalf("record version %d, want %d", rec.Version, want)
			}
			want++
		}
	}
	if got := c.Snapshot().Version; got != uint64(1+1+waiters) {
		t.Fatalf("final version %d, want %d", got, 1+1+waiters)
	}
	if c.PendingCommits() != 0 {
		t.Fatalf("queue not drained: %d pending", c.PendingCommits())
	}
}

// TestGroupCommitFailureAborts: a failing batch write publishes
// nothing, rolls the writer head back, and the next commit succeeds
// with the reused version number.
func TestGroupCommitFailureAborts(t *testing.T) {
	g := newGatedBatchLogger()
	boom := errors.New("disk on fire")
	c := New(nil)
	c.SetLogger(g)
	g.setFail(boom)
	g.release <- struct{}{}
	err := c.Update(func(tx *Tx) error {
		tx.Log("T0")
		tx.SetDB(tx.DB().WithRelation("T0", relation.NewSchema("X"), nil))
		return nil
	})
	<-g.entered
	if !errors.Is(err, boom) {
		t.Fatalf("commit error = %v, want wrapped %v", err, boom)
	}
	if got := c.Snapshot().Version; got != 1 {
		t.Fatalf("failed commit published version %d", got)
	}
	// The next commit re-bases on the durable version and succeeds.
	g.setFail(nil)
	g.release <- struct{}{}
	if err := <-commitRelAsync(c, "T1"); err != nil {
		t.Fatalf("commit after failure: %v", err)
	}
	<-g.entered
	snap := c.Snapshot()
	if snap.Version != 2 || snap.DB.IndexOf("T1") < 0 || snap.DB.IndexOf("T0") >= 0 {
		t.Fatalf("post-failure catalog wrong: v%d, names %v", snap.Version, snap.DB.Names)
	}
	batches := g.snapshotBatches()
	if len(batches) != 1 || batches[0][0].Version != 2 {
		t.Fatalf("logged batches after failure: %v", batches)
	}
}

// TestGroupCommitConcurrentWriters: heavy concurrent commit traffic
// through a real WAL (group commit live) recovers byte-identically and
// never fsyncs more than once per commit (run under -race in CI).
func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "checkpoint.wsd")
	walPath := filepath.Join(dir, "wal.log")
	cat, wal, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const commitsPer = 20
	var wg sync.WaitGroup
	errs := make([]error, writers*commitsPer)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < commitsPer; i++ {
				name := fmt.Sprintf("W%d_%d", g, i)
				errs[g*commitsPer+i] = cat.Update(func(tx *Tx) error {
					tx.Log(name)
					tx.SetDB(tx.DB().WithRelation(name, relation.NewSchema("X"), nil))
					return nil
				})
			}
		}(g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	commits := uint64(writers * commitsPer)
	if got := cat.Snapshot().Version; got != commits+1 {
		t.Fatalf("final version %d, want %d", got, commits+1)
	}
	if s := wal.Syncs(); s > commits {
		t.Fatalf("%d fsyncs for %d commits: group commit never batched", s, commits)
	} else {
		t.Logf("%d commits, %d fsyncs (amortization %.1fx)", commits, s, float64(commits)/float64(s))
	}
	want := saveBytes(t, cat.Snapshot())
	wal.Close()
	cat2, wal2, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := saveBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("group-committed catalog does not recover byte-identically")
	}
}

// TestGroupCommitCheckpointDrains: Checkpoint must wait for in-flight
// group commits, so the truncated log never orphans a commit that was
// acknowledged (or is about to be).
func TestGroupCommitCheckpointDrains(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "checkpoint.wsd")
	walPath := filepath.Join(dir, "wal.log")
	cat, wal, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				addRel(t, cat, fmt.Sprintf("W%d_%d", g, i))
			}
		}(g)
	}
	// Checkpoint racing the writers: every one must land either in the
	// checkpoint or in the log tail.
	for i := 0; i < 5; i++ {
		if err := cat.Checkpoint(wal, wsdPath); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	want := saveBytes(t, cat.Snapshot())
	wal.Close()
	cat2, wal2, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := saveBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("checkpoint during group commit lost a commit")
	}
}

// TestGroupBatchTornMidBatchTruncated: a crash anywhere inside a
// multi-record batch append — the kill -9 mid-batch case — recovers
// byte-identically to the intact record prefix, for every cut point.
func TestGroupBatchTornMidBatchTruncated(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wal.log")
	wal, _, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	recs := make([]WALRecord, n)
	for i := range recs {
		recs[i] = WALRecord{Version: uint64(i + 2), Stmts: []string{fmt.Sprintf("T%d", i)}}
	}
	if err := wal.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	wal.Close()
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Reference states: the catalog after replaying the first k records.
	wants := make([][]byte, n+1)
	for k := 0; k <= n; k++ {
		ref := New(nil)
		for _, rec := range recs[:k] {
			if err := addRelApplier(ref, rec); err != nil {
				t.Fatal(err)
			}
		}
		wants[k] = saveBytes(t, ref.Snapshot())
	}
	// Line boundaries of the batch records.
	var ends []int
	for i, b := range full {
		if b == '\n' {
			ends = append(ends, i+1)
		}
	}
	if len(ends) != n {
		t.Fatalf("batch wrote %d lines, want %d", len(ends), n)
	}
	for cut := 1; cut <= len(full); cut++ {
		// intact = number of whole records before the cut.
		intact := 0
		for intact < n && ends[intact] <= cut {
			intact++
		}
		caseDir := t.TempDir()
		caseWal := filepath.Join(caseDir, "wal.log")
		if err := os.WriteFile(caseWal, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cat, w, err := Open(filepath.Join(caseDir, "checkpoint.wsd"), caseWal, addRelApplier)
		if err != nil {
			t.Fatalf("cut at byte %d: %v", cut, err)
		}
		got := saveBytes(t, cat.Snapshot())
		w.Close()
		if !bytes.Equal(got, wants[intact]) {
			t.Fatalf("cut at byte %d (%d intact records): recovered state differs from the intact-prefix replay", cut, intact)
		}
	}
}
