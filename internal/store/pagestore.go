package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"worldsetdb/internal/bufpool"
	"worldsetdb/internal/obs"
	"worldsetdb/internal/page"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/wsd"
)

// Paged checkpoint storage (format v2). The catalog's recovery base is
// no longer a monolithic JSON document rewritten wholesale on every
// checkpoint: it is a page file — fixed-size CRC-framed pages (see
// internal/page) read through a buffer pool (internal/bufpool) — whose
// objects are the snapshot's certain relations and components, each
// stored as a chain of data pages. Because the catalog's copy-on-write
// commits share untouched relations by pointer and carry components by
// stable ID, a checkpoint can tell exactly which objects changed since
// the last one and rewrite only those chains: checkpoint cost is
// O(dirty), not O(catalog).
//
// # File layout
//
// Pages 0 and 1 are alternating meta slots; checkpoint N commits by
// writing slot N%2, so the previous checkpoint's meta (and every page
// it reaches) stays intact until the new one is durable. The meta
// payload names the directory chain head; the directory lists the
// catalog schema, views, and one (name|ID → chain head) entry per
// stored object. All payloads are the same JSON encodings the v1
// format uses (encodeRelation / encodeAlternatives), so v1 and v2
// persist byte-compatible content.
//
// # Crash safety
//
// An incremental checkpoint allocates pages only from the free list,
// which never contains a page reachable from the last durable meta:
// pages are freed in memory only after the new meta slot is fsynced.
// The write order is data chains → directory chain → file fsync → meta
// slot → fsync; a crash anywhere before the meta write leaves the
// previous checkpoint untouched, and a torn meta write is caught by
// the page CRC, falling back to the other slot. The first checkpoint
// over a fresh or v1-format file goes through a temp file + atomic
// rename instead (there is no previous page state to preserve), which
// is also how v1 catalogs migrate: Open reads v1 JSON as before, and
// the next checkpoint replaces it with a page file in one rename.
//
// # Sharding
//
// A sharded catalog checkpoints one page file per shard —
// shardCkptPath(wsdPath, i) — each holding the objects homed at that
// shard (certain relations by name hash, components by their lowest
// contributing relation), plus the full schema. Shard 0 is the
// coordinator: its directory additionally records the global component
// order. Files commit independently (parallel incremental writes), so
// a crash can leave them at mixed checkpoint versions; recovery merges
// by taking each object from the newest file holding it and replays
// the WAL tail from the oldest file version — page-delta replay is
// idempotent (records replace whole objects), so re-applying an epoch
// a newer file already contains is harmless.

// pageMagic identifies a v2 page-file meta slot.
const pageMagic = "worldsetdb-pages/v2"

// DefaultPoolPages is the buffer-pool capacity used when the caller
// does not choose one: 1024 frames × 8 KiB = 8 MiB of page cache.
const DefaultPoolPages = 1024

// pageFile is the bufpool.Backend over the checkpoint file: page id i
// lives at byte offset i*page.Size.
type pageFile struct{ f *os.File }

func (p *pageFile) ReadPage(id uint64, buf []byte) error {
	_, err := p.f.ReadAt(buf, int64(id)*page.Size)
	return err
}

func (p *pageFile) WritePage(id uint64, buf []byte) error {
	_, err := p.f.WriteAt(buf, int64(id)*page.Size)
	return err
}

// pageMeta is the payload of a meta slot — the commit point of one
// checkpoint.
type pageMeta struct {
	Magic   string `json:"magic"`
	Epoch   uint64 `json:"epoch"`   // checkpoint sequence number (slot = epoch%2)
	Version uint64 `json:"version"` // catalog version the checkpoint captured
	DirHead uint64 `json:"dir"`     // head page of the directory chain
	Pages   uint64 `json:"pages"`   // file length in pages at commit time
	CompID  uint64 `json:"comp_id"` // component ID counter at commit time
	Shard   int    `json:"shard"`
	Coord   bool   `json:"coord,omitempty"`
}

// pageDir is the payload of the directory chain: the catalog layout
// plus one entry per stored object.
type pageDir struct {
	Names   []string          `json:"names"`
	Schemas [][]string        `json:"schemas"`
	Views   map[string]string `json:"views"`
	Certain []dirCert         `json:"certain,omitempty"`
	Comps   []dirComp         `json:"comps,omitempty"`
	// Order, on the coordinator file, lists every component ID in the
	// snapshot's global order (the per-shard files only know their own).
	Order []uint64 `json:"order,omitempty"`
}

type dirCert struct {
	Name   string   `json:"name"`
	Schema []string `json:"schema"`
	Head   uint64   `json:"head"`
}

type dirComp struct {
	ID   uint64 `json:"id"`
	Head uint64 `json:"head"`
}

// certState / compState remember, per stored object, the exact value
// persisted by the last checkpoint and the page chain holding it —
// the dirty check (pointer identity for relations, shape identity for
// components) and the free-list bookkeeping both run against them.
type certState struct {
	rel    *relation.Relation
	schema []string
	head   uint64
	pages  []uint64
}

type compState struct {
	comp  wsd.DBComponent
	head  uint64
	pages []uint64
}

// PageStore is one shard's paged checkpoint file. Uninitialized (no
// page-format file on disk yet) until the first WriteCheckpoint, which
// creates the file atomically; after that, checkpoints are in-place
// and incremental. Methods are serialized by the store's checkpoint
// paths (catalog writer/shard locks); the stats counters are atomic so
// /metrics can read them concurrently.
type PageStore struct {
	mu        sync.Mutex
	path      string
	shard     int
	coord     bool
	poolPages int

	f      *os.File
	pool   *bufpool.Pool
	inited bool
	epoch  uint64
	vers   uint64
	npages uint64
	free   []uint64

	certs    map[string]*certState
	comps    map[uint64]*compState
	dirPages []uint64

	lastCkpt  atomic64Time
	pagesW    obs.Counter
	bytesW    obs.Counter
	ckpts     obs.Counter
	noops     obs.Counter
	bytesHist obs.Histogram // checkpoint size in bytes (1 unit = 1 byte)

	// failBeforeMeta, when set (crash tests), runs after the data pages
	// are flushed and fsynced but before the meta slot commits the
	// checkpoint — the window where a crash must fall back to the
	// previous checkpoint.
	failBeforeMeta func() error
}

// atomic64Time is a unix-nano timestamp readable without the PageStore
// mutex.
type atomic64Time struct{ v atomic.Int64 }

func (t *atomic64Time) set(now time.Time) { t.v.Store(now.UnixNano()) }
func (t *atomic64Time) get() time.Time {
	ns := t.v.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// shardCkptPath returns the checkpoint file of shard si: the main path
// for shard 0 (the coordinator — also the unsharded file, so the
// layout is shard-count agnostic), path + ".s<i>" beyond.
func shardCkptPath(wsdPath string, si int) string {
	if si == 0 {
		return wsdPath
	}
	return fmt.Sprintf("%s.s%d", wsdPath, si)
}

// loadedShard is one page file's decoded contents, in the file's own
// schema (merge remaps by name when files disagree).
type loadedShard struct {
	Version uint64
	CompID  uint64
	Shard   int
	Coord   bool
	Names   []string
	Schemas []relation.Schema
	Views   map[string]string
	Certs   []loadedCert
	Comps   []loadedComp
	Order   []uint64
}

type loadedCert struct {
	Name string
	Rel  *relation.Relation
}

type loadedComp struct {
	ID   uint64
	Comp wsd.DBComponent
}

// OpenPageStore opens the checkpoint file at path. When the file is
// missing, empty, or in the v1 JSON format, it returns an
// uninitialized store (and a nil loadedShard): the caller recovers
// from v1/empty state as before, and the first checkpoint migrates.
// When the file is a page file, both meta slots are probed and the
// newest fully loadable checkpoint wins — a torn in-place checkpoint
// (valid newer meta never written, or written but its chains
// unreadable) falls back to the previous one.
func OpenPageStore(path string, shard int, coord bool, poolPages int) (*PageStore, *loadedShard, error) {
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	ps := &PageStore{path: path, shard: shard, coord: coord, poolPages: poolPages,
		certs: map[string]*certState{}, comps: map[uint64]*compState{}}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return ps, nil, nil
		}
		return nil, nil, fmt.Errorf("store: opening page file: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if info.Size() < 2*page.Size {
		// Too short for meta slots: empty file, or a v1 JSON catalog
		// smaller than two pages. Either way, not page-formatted.
		f.Close()
		return ps, nil, nil
	}
	pf := &pageFile{f: f}
	metas := make([]*pageMeta, 2)
	buf := make([]byte, page.Size)
	for slot := uint64(0); slot < 2; slot++ {
		if err := pf.ReadPage(slot, buf); err != nil {
			continue
		}
		kind, _, payload, err := page.Decode(buf)
		if err != nil || kind != page.KindMeta {
			continue
		}
		var m pageMeta
		if json.Unmarshal(payload, &m) != nil || m.Magic != pageMagic {
			continue
		}
		metas[slot] = &m
	}
	if metas[0] == nil && metas[1] == nil {
		f.Close()
		if looksLikeV1(path) {
			return ps, nil, nil
		}
		return nil, nil, fmt.Errorf("store: %s: no valid page-file meta slot (corrupt checkpoint?)", path)
	}
	// Newest epoch first; fall back to the other slot if its chains do
	// not load (crash between the meta write and its data becoming
	// readable cannot happen — data is fsynced first — but a corrupt
	// file should still recover what it can).
	order := []*pageMeta{metas[0], metas[1]}
	if metas[0] == nil || (metas[1] != nil && metas[1].Epoch > metas[0].Epoch) {
		order = []*pageMeta{metas[1], metas[0]}
	}
	var lastErr error
	for _, m := range order {
		if m == nil {
			continue
		}
		ls, err := ps.loadMeta(f, m)
		if err != nil {
			lastErr = err
			continue
		}
		return ps, ls, nil
	}
	f.Close()
	return nil, nil, fmt.Errorf("store: %s: loading page file: %w", path, lastErr)
}

// looksLikeV1 sniffs whether path holds a v1 JSON catalog (first
// non-space byte is '{').
func looksLikeV1(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var b [1]byte
	for {
		if _, err := f.Read(b[:]); err != nil {
			return false
		}
		switch b[0] {
		case ' ', '\t', '\n', '\r':
			continue
		default:
			return b[0] == '{'
		}
	}
}

// loadMeta loads the checkpoint m describes and adopts it as the
// store's current state (remembered objects, free list, pool).
func (ps *PageStore) loadMeta(f *os.File, m *pageMeta) (*loadedShard, error) {
	pool := bufpool.New(&pageFile{f: f}, ps.poolPages, page.Size)
	reach := map[uint64]bool{}
	dirPayload, dirPages, err := readChain(pool, m.DirHead, page.KindDir, m.Pages, reach)
	if err != nil {
		return nil, fmt.Errorf("directory chain: %w", err)
	}
	var dir pageDir
	if err := json.Unmarshal(dirPayload, &dir); err != nil {
		return nil, fmt.Errorf("directory payload: %w", err)
	}
	if len(dir.Names) != len(dir.Schemas) {
		return nil, fmt.Errorf("directory lists %d names, %d schemas", len(dir.Names), len(dir.Schemas))
	}
	ls := &loadedShard{Version: m.Version, CompID: m.CompID, Shard: m.Shard, Coord: m.Coord,
		Names: dir.Names, Views: dir.Views, Order: dir.Order}
	if ls.Views == nil {
		ls.Views = map[string]string{}
	}
	for _, s := range dir.Schemas {
		ls.Schemas = append(ls.Schemas, relation.NewSchema(s...))
	}
	// Skeleton decomposition for decodeAlternatives' name resolution.
	skel := wsd.NewDecompDB(ls.Names, ls.Schemas)
	certs := map[string]*certState{}
	for _, dc := range dir.Certain {
		payload, pages, err := readChain(pool, dc.Head, page.KindData, m.Pages, reach)
		if err != nil {
			return nil, fmt.Errorf("certain %q: %w", dc.Name, err)
		}
		rows, err := decodeTupleRows(payload)
		if err != nil {
			return nil, fmt.Errorf("certain %q: %w", dc.Name, err)
		}
		rel, err := decodeRelation(relation.NewSchema(dc.Schema...), rows)
		if err != nil {
			return nil, fmt.Errorf("certain %q: %w", dc.Name, err)
		}
		ls.Certs = append(ls.Certs, loadedCert{Name: dc.Name, Rel: rel})
		certs[dc.Name] = &certState{rel: rel, schema: dc.Schema, head: dc.Head, pages: pages}
	}
	comps := map[uint64]*compState{}
	for _, dc := range dir.Comps {
		payload, pages, err := readChain(pool, dc.Head, page.KindData, m.Pages, reach)
		if err != nil {
			return nil, fmt.Errorf("component %d: %w", dc.ID, err)
		}
		alts, err := decodeAltRows(skel, payload)
		if err != nil {
			return nil, fmt.Errorf("component %d: %w", dc.ID, err)
		}
		comp := wsd.DBComponent{ID: dc.ID, Alternatives: alts}
		ls.Comps = append(ls.Comps, loadedComp{ID: dc.ID, Comp: comp})
		comps[dc.ID] = &compState{comp: comp, head: dc.Head, pages: pages}
	}
	// Adopt: free list = everything past the meta slots that no chain
	// of this checkpoint reaches.
	ps.f, ps.pool, ps.inited = f, pool, true
	ps.epoch, ps.vers, ps.npages = m.Epoch, m.Version, m.Pages
	ps.certs, ps.comps, ps.dirPages = certs, comps, dirPages
	ps.free = ps.free[:0]
	for id := uint64(2); id < m.Pages; id++ {
		if !reach[id] {
			ps.free = append(ps.free, id)
		}
	}
	ps.lastCkpt.set(time.Now())
	return ls, nil
}

// decodeTupleRows parses a certain relation's payload ([]jsonTuple)
// with UseNumber, matching the v1 decoder's number handling.
func decodeTupleRows(payload []byte) ([]jsonTuple, error) {
	var rows []jsonTuple
	if err := unmarshalUseNumber(payload, &rows); err != nil {
		return nil, err
	}
	return rows, nil
}

// decodeAltRows parses a component payload ([]jsonAlternative) and
// decodes it against db's schema (strict: the file's own directory
// defines the names the payload references).
func decodeAltRows(db *wsd.DecompDB, payload []byte) ([]wsd.DBAlternative, error) {
	var alts []jsonAlternative
	if err := unmarshalUseNumber(payload, &alts); err != nil {
		return nil, err
	}
	return decodeAlternatives(db, alts, false)
}

func unmarshalUseNumber(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	return dec.Decode(v)
}

// readChain walks a page chain from head, concatenating payloads. Every
// visited page is recorded in reach; npages bounds the walk so a
// corrupt next pointer cannot loop or run off the file.
func readChain(pool *bufpool.Pool, head uint64, kind page.Kind, npages uint64, reach map[uint64]bool) ([]byte, []uint64, error) {
	var payload []byte
	var pages []uint64
	id := head
	for id != 0 {
		if id < 2 || id >= npages {
			return nil, nil, fmt.Errorf("chain page %d out of range [2,%d)", id, npages)
		}
		if reach[id] {
			return nil, nil, fmt.Errorf("chain revisits page %d", id)
		}
		reach[id] = true
		pages = append(pages, id)
		fr, err := pool.Get(id)
		if err != nil {
			return nil, nil, err
		}
		k, next, chunk, err := page.Decode(fr.Data())
		if err != nil {
			fr.Release()
			return nil, nil, fmt.Errorf("page %d: %w", id, err)
		}
		if k != kind {
			fr.Release()
			return nil, nil, fmt.Errorf("page %d: kind %d, want %d", id, k, kind)
		}
		payload = append(payload, chunk...)
		fr.Release()
		id = next
	}
	return payload, pages, nil
}

// ckptData is one shard's slice of a snapshot, handed to
// WriteCheckpoint: the full catalog layout plus the objects homed at
// the shard.
type ckptData struct {
	Version uint64
	CompID  uint64
	Names   []string
	Schemas []relation.Schema
	Views   map[string]string
	Certs   []ckptCert
	Comps   []wsd.DBComponent
	Order   []uint64 // coordinator only: every component ID in global order
}

type ckptCert struct {
	Name string
	Rel  *relation.Relation
}

// ckptSlices splits snap into per-shard checkpoint inputs (one slice
// covering everything when nshards <= 1). Certain relations home by
// name hash; components by the shard of their lowest contributing
// relation (shard 0 when they contribute nowhere) — the same rule as
// Snapshot.CompShards. Empty relations are skipped: recovery rebuilds
// them from the schema.
func ckptSlices(snap *Snapshot, nshards int, compID uint64) []ckptData {
	if nshards < 1 {
		nshards = 1
	}
	out := make([]ckptData, nshards)
	order := make([]uint64, len(snap.DB.Components))
	for i := range out {
		out[i] = ckptData{Version: snap.Version, CompID: compID,
			Names: snap.DB.Names, Views: snap.Views}
		for _, s := range snap.DB.Schemas {
			out[i].Schemas = append(out[i].Schemas, s)
		}
	}
	for ri, rel := range snap.DB.Certain {
		if rel == nil || rel.Len() == 0 {
			continue
		}
		home := 0
		if nshards > 1 {
			home = shardOfName(snap.DB.Names[ri], nshards)
		}
		out[home].Certs = append(out[home].Certs, ckptCert{Name: snap.DB.Names[ri], Rel: rel})
	}
	for ci, comp := range snap.DB.Components {
		order[ci] = comp.ID
		home := 0
		if nshards > 1 {
			first := -1
			for _, a := range comp.Alternatives {
				for ri, r := range a.Rels {
					if r == nil || r.Len() == 0 {
						continue
					}
					if first < 0 || ri < first {
						first = ri
					}
				}
			}
			if first >= 0 {
				home = shardOfName(snap.DB.Names[first], nshards)
			}
		}
		out[home].Comps = append(out[home].Comps, comp)
	}
	out[0].Order = order
	return out
}

// Version reports the catalog version of the last durable checkpoint
// (0 when uninitialized).
func (ps *PageStore) Version() uint64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.vers
}

// Path returns the checkpoint file path.
func (ps *PageStore) Path() string { return ps.path }

// NoteNoop records a checkpoint request that was skipped because
// nothing changed since the last one.
func (ps *PageStore) NoteNoop() {
	ps.noops.Inc()
	ps.lastCkpt.set(time.Now())
}

// WriteCheckpoint persists d as the shard's new recovery base. The
// first call (or the first over a v1 file) writes a complete page file
// through a temp file + atomic rename; later calls rewrite only the
// chains of objects that changed since the previous checkpoint, plus
// the directory, and commit with one meta-slot write.
func (ps *PageStore) WriteCheckpoint(d ckptData) error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.inited {
		return ps.writeFresh(d)
	}
	if ps.vers == d.Version {
		ps.noops.Inc()
		ps.lastCkpt.set(time.Now())
		return nil
	}

	var freed []uint64
	written := uint64(0)

	newCerts := make(map[string]*certState, len(d.Certs))
	for _, c := range d.Certs {
		schema := []string(c.Rel.Schema())
		if st, ok := ps.certs[c.Name]; ok && st.rel == c.Rel && sameStrs(st.schema, schema) {
			newCerts[c.Name] = st
			continue
		}
		payload, err := json.Marshal(encodeRelation(c.Rel))
		if err != nil {
			return err
		}
		head, pages, err := ps.writeChain(page.KindData, payload)
		if err != nil {
			return err
		}
		written += uint64(len(pages))
		newCerts[c.Name] = &certState{rel: c.Rel, schema: schema, head: head, pages: pages}
	}
	for name, st := range ps.certs {
		if ns, ok := newCerts[name]; !ok || ns != st {
			freed = append(freed, st.pages...)
		}
	}

	newComps := make(map[uint64]*compState, len(d.Comps))
	dirComps := make([]dirComp, 0, len(d.Comps))
	for _, comp := range d.Comps {
		if st, ok := ps.comps[comp.ID]; ok && wsd.SameComponentShape(st.comp, comp) {
			// Unchanged shape, but remember the new container (the shape
			// check walks the remembered value's relation pointers, which
			// the current snapshot shares).
			ns := &compState{comp: comp, head: st.head, pages: st.pages}
			newComps[comp.ID] = ns
			dirComps = append(dirComps, dirComp{ID: comp.ID, Head: st.head})
			continue
		}
		payload, err := json.Marshal(encodeAlternatives(d.Names, comp))
		if err != nil {
			return err
		}
		head, pages, err := ps.writeChain(page.KindData, payload)
		if err != nil {
			return err
		}
		written += uint64(len(pages))
		newComps[comp.ID] = &compState{comp: comp, head: head, pages: pages}
		dirComps = append(dirComps, dirComp{ID: comp.ID, Head: head})
	}
	for id, st := range ps.comps {
		if ns, ok := newComps[id]; !ok || ns.head != st.head {
			freed = append(freed, st.pages...)
		}
	}

	dir := pageDir{Names: d.Names, Views: d.Views, Comps: dirComps, Order: d.Order}
	for _, s := range d.Schemas {
		dir.Schemas = append(dir.Schemas, []string(s))
	}
	for _, c := range d.Certs {
		st := newCerts[c.Name]
		dir.Certain = append(dir.Certain, dirCert{Name: c.Name, Schema: st.schema, Head: st.head})
	}
	dirPayload, err := json.Marshal(dir)
	if err != nil {
		return err
	}
	dirHead, dirPages, err := ps.writeChain(page.KindDir, dirPayload)
	if err != nil {
		return err
	}
	written += uint64(len(dirPages))
	freed = append(freed, ps.dirPages...)

	if err := ps.pool.FlushDirty(); err != nil {
		return err
	}
	if err := ps.f.Sync(); err != nil {
		return fmt.Errorf("store: fsyncing checkpoint data pages: %w", err)
	}
	if ps.failBeforeMeta != nil {
		if err := ps.failBeforeMeta(); err != nil {
			return err
		}
	}
	if err := ps.writeMeta(pageMeta{Magic: pageMagic, Epoch: ps.epoch + 1, Version: d.Version,
		DirHead: dirHead, Pages: ps.npages, CompID: d.CompID, Shard: ps.shard, Coord: ps.coord}); err != nil {
		return err
	}
	written++ // the meta page

	// Commit point passed: adopt the new state and recycle the old
	// chains.
	ps.epoch++
	ps.vers = d.Version
	ps.certs, ps.comps, ps.dirPages = newCerts, newComps, dirPages
	ps.free = append(ps.free, freed...)
	sort.Slice(ps.free, func(i, j int) bool { return ps.free[i] < ps.free[j] })
	ps.noteWrite(written)
	return nil
}

func (ps *PageStore) noteWrite(pages uint64) {
	ps.pagesW.Add(pages)
	ps.bytesW.Add(pages * page.Size)
	ps.ckpts.Inc()
	ps.bytesHist.Observe(time.Duration(pages * page.Size))
	ps.lastCkpt.set(time.Now())
}

// writeMeta writes and fsyncs one meta slot — the checkpoint's commit
// point. Direct file I/O, not the pool: meta pages are never part of
// any chain and must hit disk immediately and in order.
func (ps *PageStore) writeMeta(m pageMeta) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	buf := make([]byte, page.Size)
	if err := page.Encode(buf, page.KindMeta, 0, payload); err != nil {
		return err
	}
	pf := &pageFile{f: ps.f}
	if err := pf.WritePage(m.Epoch%2, buf); err != nil {
		return fmt.Errorf("store: writing checkpoint meta slot: %w", err)
	}
	if err := ps.f.Sync(); err != nil {
		return fmt.Errorf("store: fsyncing checkpoint meta slot: %w", err)
	}
	return nil
}

// writeChain stages one object's payload as a chain of dirty pool
// frames (flushed by WriteCheckpoint's FlushDirty). Pages come from
// the free list — which never holds a page the previous checkpoint
// reaches — or extend the file.
func (ps *PageStore) writeChain(kind page.Kind, payload []byte) (uint64, []uint64, error) {
	chunks := page.Chunks(payload)
	ids := make([]uint64, len(chunks))
	for i := range ids {
		ids[i] = ps.alloc()
	}
	for i, chunk := range chunks {
		next := uint64(0)
		if i+1 < len(chunks) {
			next = ids[i+1]
		}
		fr, err := ps.pool.NewFrame(ids[i])
		if err != nil {
			return 0, nil, err
		}
		if err := page.Encode(fr.Data(), kind, next, chunk); err != nil {
			fr.Release()
			return 0, nil, err
		}
		fr.MarkDirty()
		fr.Release()
	}
	return ids[0], ids, nil
}

func (ps *PageStore) alloc() uint64 {
	if n := len(ps.free); n > 0 {
		id := ps.free[n-1]
		ps.free = ps.free[:n-1]
		return id
	}
	id := ps.npages
	ps.npages++
	return id
}

// writeFresh writes a complete page file for d through a temp file +
// atomic rename — the first checkpoint, and the v1 → v2 migration
// (path may currently hold a v1 JSON catalog; the rename replaces it).
func (ps *PageStore) writeFresh(d ckptData) error {
	dirName := filepath.Dir(ps.path)
	tmpf, err := os.CreateTemp(dirName, "."+filepath.Base(ps.path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := tmpf.Name()
	cleanup := func(err error) error {
		tmpf.Close()
		os.Remove(tmp)
		return err
	}

	// Sequential writer over the temp file: pages 0/1 reserved for the
	// meta slots, chains appended from page 2.
	pf := &pageFile{f: tmpf}
	next := uint64(2)
	buf := make([]byte, page.Size)
	writeChain := func(kind page.Kind, payload []byte) (uint64, []uint64, error) {
		chunks := page.Chunks(payload)
		ids := make([]uint64, len(chunks))
		for i := range ids {
			ids[i] = next
			next++
		}
		for i, chunk := range chunks {
			nxt := uint64(0)
			if i+1 < len(chunks) {
				nxt = ids[i+1]
			}
			if err := page.Encode(buf, kind, nxt, chunk); err != nil {
				return 0, nil, err
			}
			if err := pf.WritePage(ids[i], buf); err != nil {
				return 0, nil, err
			}
		}
		return ids[0], ids, nil
	}

	// Zero meta slots first so the file always spans at least 2 pages.
	zero := make([]byte, page.Size)
	if err := pf.WritePage(0, zero); err != nil {
		return cleanup(err)
	}
	if err := pf.WritePage(1, zero); err != nil {
		return cleanup(err)
	}

	certs := make(map[string]*certState, len(d.Certs))
	var dirCerts []dirCert
	for _, c := range d.Certs {
		payload, err := json.Marshal(encodeRelation(c.Rel))
		if err != nil {
			return cleanup(err)
		}
		head, pages, err := writeChain(page.KindData, payload)
		if err != nil {
			return cleanup(err)
		}
		schema := []string(c.Rel.Schema())
		certs[c.Name] = &certState{rel: c.Rel, schema: schema, head: head, pages: pages}
		dirCerts = append(dirCerts, dirCert{Name: c.Name, Schema: schema, Head: head})
	}
	comps := make(map[uint64]*compState, len(d.Comps))
	var dirComps []dirComp
	for _, comp := range d.Comps {
		payload, err := json.Marshal(encodeAlternatives(d.Names, comp))
		if err != nil {
			return cleanup(err)
		}
		head, pages, err := writeChain(page.KindData, payload)
		if err != nil {
			return cleanup(err)
		}
		comps[comp.ID] = &compState{comp: comp, head: head, pages: pages}
		dirComps = append(dirComps, dirComp{ID: comp.ID, Head: head})
	}
	dir := pageDir{Names: d.Names, Views: d.Views, Certain: dirCerts, Comps: dirComps, Order: d.Order}
	for _, s := range d.Schemas {
		dir.Schemas = append(dir.Schemas, []string(s))
	}
	dirPayload, err := json.Marshal(dir)
	if err != nil {
		return cleanup(err)
	}
	dirHead, dirPages, err := writeChain(page.KindDir, dirPayload)
	if err != nil {
		return cleanup(err)
	}

	// Meta into slot 1 (epoch 1); slot 0 stays zeroed and invalid.
	metaPayload, err := json.Marshal(pageMeta{Magic: pageMagic, Epoch: 1, Version: d.Version,
		DirHead: dirHead, Pages: next, CompID: d.CompID, Shard: ps.shard, Coord: ps.coord})
	if err != nil {
		return cleanup(err)
	}
	if err := page.Encode(buf, page.KindMeta, 0, metaPayload); err != nil {
		return cleanup(err)
	}
	if err := pf.WritePage(1, buf); err != nil {
		return cleanup(err)
	}
	if err := tmpf.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := tmpf.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmpf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, ps.path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := fsyncDir(dirName); err != nil {
		return err
	}

	f, err := os.OpenFile(ps.path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if ps.f != nil {
		ps.f.Close()
	}
	ps.f = f
	ps.pool = bufpool.New(&pageFile{f: f}, ps.poolPages, page.Size)
	ps.inited = true
	ps.epoch, ps.vers, ps.npages = 1, d.Version, next
	ps.certs, ps.comps, ps.dirPages = certs, comps, dirPages
	ps.free = nil
	ps.noteWrite(next)
	return nil
}

// fsyncDir makes a rename durable (see SaveFile for the platform
// excuses).
func fsyncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening directory for fsync after rename: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("store: fsyncing directory after rename: %w", err)
	}
	return nil
}

// Close releases the file handle. The store becomes unusable.
func (ps *PageStore) Close() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.f == nil {
		return nil
	}
	err := ps.f.Close()
	ps.f = nil
	return err
}

// PoolStats exposes the buffer pool's counters (zero when the store is
// uninitialized).
func (ps *PageStore) PoolStats() bufpool.Stats {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.pool == nil {
		return bufpool.Stats{}
	}
	return ps.pool.Stats()
}

// mergeLoaded assembles a snapshot from per-shard page files, possibly
// at mixed checkpoint versions after a torn multi-file checkpoint.
// files[0] must be the coordinator: its schema, views and component
// order are authoritative. Each object is taken from the newest file
// holding it; the returned version is the OLDEST file version — the
// replay base — since only epochs newer than every file are guaranteed
// absent, and re-applying epochs a newer file already contains is safe
// (delta replay replaces whole objects).
func mergeLoaded(files []*loadedShard) (*Snapshot, uint64, error) {
	coord := files[0]
	if !coord.Coord {
		return nil, 0, fmt.Errorf("store: checkpoint file 0 is not the coordinator")
	}
	version := coord.Version
	compID := coord.CompID
	for _, f := range files[1:] {
		if f.Version < version {
			version = f.Version
		}
		if f.CompID > compID {
			compID = f.CompID
		}
	}
	db := wsd.NewDecompDB(coord.Names, coord.Schemas)
	certVer := map[string]uint64{}
	for _, f := range files {
		for _, c := range f.Certs {
			ri := db.IndexOf(c.Name)
			if ri < 0 {
				continue // relation the coordinator no longer (or does not yet) know; replay heals
			}
			if !sameStrs([]string(db.Schemas[ri]), []string(c.Rel.Schema())) {
				continue // stale schema; replay heals
			}
			if v, ok := certVer[c.Name]; ok && v >= f.Version {
				continue
			}
			db.Certain[ri] = c.Rel
			certVer[c.Name] = f.Version
		}
	}
	type pick struct {
		comp wsd.DBComponent
		ver  uint64
	}
	picked := map[uint64]pick{}
	for _, f := range files {
		remap := buildRemap(f, db)
		for _, c := range f.Comps {
			if p, ok := picked[c.ID]; ok && p.ver >= f.Version {
				continue
			}
			comp, ok := remapComp(c.Comp, remap)
			if !ok {
				continue
			}
			picked[c.ID] = pick{comp: comp, ver: f.Version}
		}
	}
	// Order: the coordinator's global list first, then components it
	// does not know (created after its epoch — a full-delta replay will
	// reposition them) by ascending ID for determinism.
	used := map[uint64]bool{}
	for _, id := range coord.Order {
		p, ok := picked[id]
		if !ok {
			continue
		}
		db.Components = append(db.Components, p.comp)
		used[id] = true
	}
	var rest []uint64
	for id := range picked {
		if !used[id] {
			rest = append(rest, id)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, id := range rest {
		db.Components = append(db.Components, picked[id].comp)
	}
	return &Snapshot{Version: version, DB: db, Views: coord.Views}, compID, nil
}

// buildRemap maps file-local relation indices to the merged catalog's
// (-1 = the merged catalog does not have the relation, or disagrees on
// its schema — the contribution is dropped and replay heals it).
func buildRemap(f *loadedShard, db *wsd.DecompDB) []int {
	remap := make([]int, len(f.Names))
	for i, name := range f.Names {
		remap[i] = -1
		ri := db.IndexOf(name)
		if ri < 0 {
			continue
		}
		if !sameStrs([]string(db.Schemas[ri]), []string(f.Schemas[i])) {
			continue
		}
		remap[i] = ri
	}
	return remap
}

func remapComp(c wsd.DBComponent, remap []int) (wsd.DBComponent, bool) {
	identity := true
	for i := range remap {
		if remap[i] != i {
			identity = false
			break
		}
	}
	if identity {
		return c, true
	}
	out := wsd.DBComponent{ID: c.ID, Alternatives: make([]wsd.DBAlternative, len(c.Alternatives))}
	for ai, a := range c.Alternatives {
		alt := wsd.DBAlternative{Rels: map[int]*relation.Relation{}}
		for ri, r := range a.Rels {
			if ri < len(remap) && remap[ri] >= 0 {
				alt.Rels[remap[ri]] = r
			}
		}
		out.Alternatives[ai] = alt
	}
	return out, true
}

func sameStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CkptStats is a PageStore's cumulative checkpoint I/O accounting.
type CkptStats struct {
	PagesWritten uint64    // pages written across all checkpoints
	BytesWritten uint64    // PagesWritten * page.Size
	Checkpoints  uint64    // checkpoints that wrote at least one page
	NoopSkips    uint64    // checkpoint requests skipped with zero writes
	LastCkptAt   time.Time // completion time of the last checkpoint or skip
}

// Stats reports the store's checkpoint I/O counters. Safe to call
// concurrently with checkpoints (the counters are atomic).
func (ps *PageStore) Stats() CkptStats {
	if ps == nil {
		return CkptStats{}
	}
	return CkptStats{
		PagesWritten: ps.pagesW.Value(),
		BytesWritten: ps.bytesW.Value(),
		Checkpoints:  ps.ckpts.Value(),
		NoopSkips:    ps.noops.Value(),
		LastCkptAt:   ps.lastCkpt.get(),
	}
}

// BytesHist exposes the checkpoint-size histogram: one observation per
// page-writing checkpoint, in bytes (the obs.Histogram's power-of-two
// buckets read as byte sizes here, not durations).
func (ps *PageStore) BytesHist() *obs.Histogram {
	if ps == nil {
		return nil
	}
	return &ps.bytesHist
}
