package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"worldsetdb/internal/page"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/wsd"
)

// pageSnap builds an n-relation snapshot with data in every certain
// relation and a component per relation, suitable for page-store
// round trips.
func pageSnap(n int, version uint64, rowsPer int) *Snapshot {
	names := make([]string, n)
	schemas := make([]relation.Schema, n)
	for i := range names {
		names[i] = relName(i)
		schemas[i] = relation.NewSchema("X")
	}
	db := wsd.NewDecompDB(names, schemas)
	for i := range db.Certain {
		r := relation.New(schemas[i])
		for k := 0; k < rowsPer; k++ {
			r.Insert(relation.Tuple{value.Int(int64(i*1000 + k))})
		}
		db.Certain[i] = r
	}
	for i := range names {
		db.Components = append(db.Components, compOf(db, uint64(i+1), names[i], int64(i), int64(i+100)))
	}
	return &Snapshot{Version: version, DB: db, Views: map[string]string{}}
}

func relName(i int) string {
	return string(rune('A'+i%26)) + string(rune('a'+i/26))
}

// reloadSnap reopens the page file at path and returns the snapshot it
// holds.
func reloadSnap(t *testing.T, path string, poolPages int) *Snapshot {
	t.Helper()
	ps, loaded, err := OpenPageStore(path, 0, true, poolPages)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if loaded == nil {
		t.Fatalf("%s is not a page file", path)
	}
	snap, _, err := mergeLoaded([]*loadedShard{loaded})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestPageStoreFreshWriteReload: the first checkpoint creates a page
// file that reloads byte-identically (through Save).
func TestPageStoreFreshWriteReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cat.wsd")
	snap := pageSnap(8, 3, 5)
	ps, loaded, err := OpenPageStore(path, 0, true, 64)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != nil {
		t.Fatal("missing file reported as loadable")
	}
	if err := ps.WriteCheckpoint(ckptSlices(snap, 1, 99)[0]); err != nil {
		t.Fatal(err)
	}
	ps.Close()
	got := reloadSnap(t, path, 64)
	if got.Version != 3 {
		t.Fatalf("reloaded version %d, want 3", got.Version)
	}
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, snap)) {
		t.Fatal("page-file reload differs from the checkpointed snapshot")
	}
}

// TestPageStoreIncrementalWritesOnlyDirty: a second checkpoint that
// touched one relation out of many rewrites a small fraction of the
// pages the first one wrote.
func TestPageStoreIncrementalWritesOnlyDirty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cat.wsd")
	snap := pageSnap(24, 1, 40)
	ps, _, err := OpenPageStore(path, 0, true, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if err := ps.WriteCheckpoint(ckptSlices(snap, 1, 50)[0]); err != nil {
		t.Fatal(err)
	}
	full := ps.Stats().PagesWritten

	nr := relation.New(snap.DB.Schemas[0])
	nr.Insert(relation.Tuple{value.Int(424242)})
	db2 := snap.DB.WithCertain(0, nr)
	snap2 := &Snapshot{Version: 2, DB: db2, Views: snap.Views}
	if err := ps.WriteCheckpoint(ckptSlices(snap2, 1, 50)[0]); err != nil {
		t.Fatal(err)
	}
	incr := ps.Stats().PagesWritten - full
	if incr*4 >= full {
		t.Fatalf("incremental checkpoint wrote %d pages vs %d for the full one — not O(dirty)", incr, full)
	}
	got := reloadSnap(t, path, 256)
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, snap2)) {
		t.Fatal("incremental checkpoint reload differs from the committed snapshot")
	}
}

// TestPageStoreNoopSkipZeroWrites: checkpointing an already-persisted
// version writes nothing — not one page, not one byte.
func TestPageStoreNoopSkipZeroWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cat.wsd")
	snap := pageSnap(4, 7, 3)
	ps, _, err := OpenPageStore(path, 0, true, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if err := ps.WriteCheckpoint(ckptSlices(snap, 1, 9)[0]); err != nil {
		t.Fatal(err)
	}
	before := ps.Stats()
	fi1, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.WriteCheckpoint(ckptSlices(snap, 1, 9)[0]); err != nil {
		t.Fatal(err)
	}
	after := ps.Stats()
	if after.PagesWritten != before.PagesWritten || after.BytesWritten != before.BytesWritten {
		t.Fatalf("no-op checkpoint wrote %d pages", after.PagesWritten-before.PagesWritten)
	}
	if after.Checkpoints != before.Checkpoints {
		t.Fatal("no-op checkpoint counted as a page-writing checkpoint")
	}
	if after.NoopSkips != before.NoopSkips+1 {
		t.Fatalf("no-op skips %d, want %d", after.NoopSkips, before.NoopSkips+1)
	}
	fi2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() != fi1.Size() || !fi2.ModTime().Equal(fi1.ModTime()) {
		t.Fatal("no-op checkpoint modified the file")
	}
}

// TestPageStoreRecyclesFreedPages: repeatedly rewriting the same
// relation reuses freed pages instead of growing the file.
func TestPageStoreRecyclesFreedPages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cat.wsd")
	snap := pageSnap(6, 1, 30)
	ps, _, err := OpenPageStore(path, 0, true, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if err := ps.WriteCheckpoint(ckptSlices(snap, 1, 7)[0]); err != nil {
		t.Fatal(err)
	}
	var sizeAt5 int64
	db := snap.DB
	for v := uint64(2); v <= 11; v++ {
		nr := relation.New(db.Schemas[0])
		for k := 0; k < 30; k++ {
			nr.Insert(relation.Tuple{value.Int(int64(v)*100 + int64(k))})
		}
		db = db.WithCertain(0, nr)
		s := &Snapshot{Version: v, DB: db, Views: snap.Views}
		if err := ps.WriteCheckpoint(ckptSlices(s, 1, 7)[0]); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if v == 5 {
			sizeAt5 = fi.Size()
		}
		if v > 5 && fi.Size() > sizeAt5+2*page.Size {
			t.Fatalf("file grew from %d to %d bytes across same-size rewrites — freed pages not recycled", sizeAt5, fi.Size())
		}
	}
	got := reloadSnap(t, path, 128)
	want := &Snapshot{Version: 11, DB: db, Views: snap.Views}
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, want)) {
		t.Fatal("reload after recycling differs from the last checkpoint")
	}
}

// TestPageStoreMetaSlotFallback: corrupting the newest meta slot makes
// the open fall back to the previous checkpoint — an in-place torn
// checkpoint never loses the older base.
func TestPageStoreMetaSlotFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cat.wsd")
	snap1 := pageSnap(4, 1, 3)
	ps, _, err := OpenPageStore(path, 0, true, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.WriteCheckpoint(ckptSlices(snap1, 1, 5)[0]); err != nil {
		t.Fatal(err)
	}
	nr := relation.New(snap1.DB.Schemas[1])
	nr.Insert(relation.Tuple{value.Int(31337)})
	snap2 := &Snapshot{Version: 2, DB: snap1.DB.WithCertain(1, nr), Views: snap1.Views}
	if err := ps.WriteCheckpoint(ckptSlices(snap2, 1, 5)[0]); err != nil {
		t.Fatal(err)
	}
	ps.Close()

	// The fresh write used epoch 1 (slot 1); the second used epoch 2
	// (slot 0). Corrupt slot 0 — the newest — and reopen.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xff}, 64), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got := reloadSnap(t, path, 64)
	if got.Version != 1 {
		t.Fatalf("fallback loaded version %d, want 1 (the surviving slot)", got.Version)
	}
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, snap1)) {
		t.Fatal("meta-slot fallback state differs from the older checkpoint")
	}
}

// TestPageStoreShardedSlicesMerge: a 4-way sliced checkpoint written to
// four files merges back byte-identically, including global component
// order.
func TestPageStoreShardedSlicesMerge(t *testing.T) {
	const nshards = 4
	dir := t.TempDir()
	main := filepath.Join(dir, "cat.wsd")
	snap := pageSnap(12, 9, 6)
	slices := ckptSlices(snap, nshards, 12)
	var files []*loadedShard
	for i := 0; i < nshards; i++ {
		ps, _, err := OpenPageStore(shardCkptPath(main, i), i, i == 0, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := ps.WriteCheckpoint(slices[i]); err != nil {
			t.Fatal(err)
		}
		ps.Close()
	}
	for i := 0; i < nshards; i++ {
		ps, sl, err := OpenPageStore(shardCkptPath(main, i), i, i == 0, 64)
		if err != nil {
			t.Fatal(err)
		}
		if sl == nil {
			t.Fatalf("shard %d file is not a page file", i)
		}
		files = append(files, sl)
		ps.Close()
	}
	got, compID, err := mergeLoaded(files)
	if err != nil {
		t.Fatal(err)
	}
	if compID != 12 {
		t.Fatalf("merged comp-ID counter %d, want 12", compID)
	}
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, snap)) {
		t.Fatal("sharded merge differs from the sliced snapshot")
	}
}
