package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"syscall"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/wsd"
)

// Catalog persistence: a snapshot round-trips through a JSON ".wsd"
// document holding the decomposition (certain tuples plus components,
// with alternative contributions keyed by relation name) and the view
// definitions. The format stores the factored form directly — a
// 2^40-world catalog persists in space linear in its decomposition
// size.

// formatTag identifies the persisted format.
const formatTag = "worldsetdb-catalog/v1"

type jsonCatalog struct {
	Format     string            `json:"format"`
	Version    uint64            `json:"version"`
	Names      []string          `json:"names"`
	Schemas    [][]string        `json:"schemas"`
	Certain    [][]jsonTuple     `json:"certain"`
	Components []jsonComponent   `json:"components,omitempty"`
	Views      map[string]string `json:"views,omitempty"`
	// CompID persists the component-ID allocator so IDs stay stable
	// across restarts — WAL delta records and page chains address
	// components by these IDs. Absent in historical files; the loader
	// then seeds the allocator past the highest assigned ID.
	CompID uint64 `json:"comp_id,omitempty"`
}

type jsonComponent struct {
	Alternatives []jsonAlternative `json:"alternatives"`
	// ID is the component's stable identity (see wsd.DBComponent.ID);
	// omitted in files written before IDs were persisted.
	ID uint64 `json:"id,omitempty"`
}

type jsonAlternative struct {
	// Rels maps relation name → contributed tuples.
	Rels map[string][]jsonTuple `json:"rels,omitempty"`
}

type jsonTuple []any

// encodeTuple converts a tuple to its JSON cells. Ints and floats
// encode as numbers (they compare and hash identically when both are
// exactly representable, so the round trip is semantics-preserving);
// values JSON cannot carry natively use tagged objects.
func encodeTuple(t relation.Tuple) jsonTuple {
	out := make(jsonTuple, len(t))
	for i, v := range t {
		out[i] = encodeValue(v)
	}
	return out
}

func encodeValue(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindBool:
		return v.AsBool()
	case value.KindInt:
		// int64 encodes as a JSON number with full decimal precision and
		// decodes through json.Number, so the round trip is exact.
		return v.AsInt()
	case value.KindFloat:
		f := v.AsFloat()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return map[string]any{"$float": strconv.FormatFloat(f, 'g', -1, 64)}
		}
		return f
	case value.KindString:
		return v.AsString()
	case value.KindPad:
		return map[string]any{"$pad": true}
	}
	return nil
}

func decodeValue(raw any) (value.Value, error) {
	switch x := raw.(type) {
	case nil:
		return value.Null(), nil
	case bool:
		return value.Bool(x), nil
	case string:
		return value.Str(x), nil
	case json.Number:
		if i, err := strconv.ParseInt(string(x), 10, 64); err == nil {
			return value.Int(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return value.Value{}, fmt.Errorf("store: unparsable number %q", x)
		}
		return value.Float(f), nil
	case map[string]any:
		if s, ok := x["$int"].(string); ok {
			i, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return value.Value{}, fmt.Errorf("store: bad $int %q", s)
			}
			return value.Int(i), nil
		}
		if s, ok := x["$float"].(string); ok {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return value.Value{}, fmt.Errorf("store: bad $float %q", s)
			}
			return value.Float(f), nil
		}
		if _, ok := x["$pad"]; ok {
			return value.Pad(), nil
		}
	}
	return value.Value{}, fmt.Errorf("store: cannot decode value %v (%T)", raw, raw)
}

func encodeRelation(r *relation.Relation) []jsonTuple {
	tuples := r.Tuples()
	out := make([]jsonTuple, len(tuples))
	for i, t := range tuples {
		out[i] = encodeTuple(t)
	}
	return out
}

// encodeAlternatives converts a component's alternatives to their JSON
// form, contributions keyed by relation name (empty contributions are
// skipped — they carry no durable state). Shared by Save, the WAL's
// page-delta records and the page store's object payloads, so all three
// persist byte-compatible content.
func encodeAlternatives(names []string, comp wsd.DBComponent) []jsonAlternative {
	out := make([]jsonAlternative, len(comp.Alternatives))
	for ai, a := range comp.Alternatives {
		ja := jsonAlternative{}
		for ri, rel := range a.Rels {
			if rel == nil || rel.Len() == 0 {
				continue
			}
			if ja.Rels == nil {
				ja.Rels = map[string][]jsonTuple{}
			}
			ja.Rels[names[ri]] = encodeRelation(rel)
		}
		out[ai] = ja
	}
	return out
}

// decodeAlternatives rebuilds a component's alternatives against db's
// schema. With lenient set, contributions to relations db does not know
// are dropped instead of failing — the page store's mixed-epoch merge
// uses this (a torn multi-file checkpoint can hold components from an
// older schema; the WAL replay that follows heals the state).
func decodeAlternatives(db *wsd.DecompDB, alts []jsonAlternative, lenient bool) ([]wsd.DBAlternative, error) {
	out := make([]wsd.DBAlternative, len(alts))
	for ai, ja := range alts {
		alt := wsd.DBAlternative{Rels: map[int]*relation.Relation{}}
		for name, rows := range ja.Rels {
			ri := db.IndexOf(name)
			if ri < 0 {
				if lenient {
					continue
				}
				return nil, fmt.Errorf("store: component references unknown relation %q", name)
			}
			rel, err := decodeRelation(db.Schemas[ri], rows)
			if err != nil {
				if lenient {
					continue
				}
				return nil, fmt.Errorf("store: component relation %q: %w", name, err)
			}
			alt.Rels[ri] = rel
		}
		out[ai] = alt
	}
	return out, nil
}

func decodeTuple(schema relation.Schema, row jsonTuple) (relation.Tuple, error) {
	if len(row) != len(schema) {
		return nil, fmt.Errorf("store: arity-%d tuple under schema %v", len(row), schema)
	}
	t := make(relation.Tuple, len(row))
	for i, cell := range row {
		v, err := decodeValue(cell)
		if err != nil {
			return nil, err
		}
		t[i] = v
	}
	return t, nil
}

func decodeRelation(schema relation.Schema, rows []jsonTuple) (*relation.Relation, error) {
	r := relation.New(schema)
	for _, row := range rows {
		t, err := decodeTuple(schema, row)
		if err != nil {
			return nil, err
		}
		r.Insert(t)
	}
	return r, nil
}

// Save writes the snapshot as a .wsd JSON document.
func Save(w io.Writer, snap *Snapshot) error {
	doc := jsonCatalog{
		Format:  formatTag,
		Version: snap.Version,
		Names:   snap.DB.Names,
		Views:   snap.Views,
		CompID:  snap.compID,
	}
	if doc.CompID == 0 {
		doc.CompID = snap.DB.MaxComponentID()
	}
	for _, s := range snap.DB.Schemas {
		doc.Schemas = append(doc.Schemas, []string(s))
	}
	for _, r := range snap.DB.Certain {
		doc.Certain = append(doc.Certain, encodeRelation(r))
	}
	for _, c := range snap.DB.Components {
		doc.Components = append(doc.Components, jsonComponent{
			Alternatives: encodeAlternatives(snap.DB.Names, c), ID: c.ID})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// Load reads a .wsd JSON document and returns a catalog seeded with the
// decoded snapshot (the persisted version number is preserved).
func Load(r io.Reader) (*Catalog, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var doc jsonCatalog
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("store: decoding catalog: %w", err)
	}
	if doc.Format != formatTag {
		return nil, fmt.Errorf("store: unknown catalog format %q (want %q)", doc.Format, formatTag)
	}
	if len(doc.Names) != len(doc.Schemas) || len(doc.Names) != len(doc.Certain) {
		return nil, fmt.Errorf("store: inconsistent catalog: %d names, %d schemas, %d certain relations",
			len(doc.Names), len(doc.Schemas), len(doc.Certain))
	}
	schemas := make([]relation.Schema, len(doc.Schemas))
	for i, s := range doc.Schemas {
		schemas[i] = relation.NewSchema(s...)
	}
	db := wsd.NewDecompDB(doc.Names, schemas)
	for i, rows := range doc.Certain {
		rel, err := decodeRelation(schemas[i], rows)
		if err != nil {
			return nil, fmt.Errorf("store: certain relation %q: %w", doc.Names[i], err)
		}
		db.Certain[i] = rel
	}
	for ci, jc := range doc.Components {
		alts, err := decodeAlternatives(db, jc.Alternatives, false)
		if err != nil {
			return nil, fmt.Errorf("store: component %d: %w", ci, err)
		}
		db.Components = append(db.Components, wsd.DBComponent{Alternatives: alts, ID: jc.ID})
	}
	views := doc.Views
	if views == nil {
		views = map[string]string{}
	}
	version := doc.Version
	if version == 0 {
		version = 1
	}
	compID := doc.CompID
	if m := db.MaxComponentID(); m > compID {
		compID = m
	}
	return newCatalogSeeded(&Snapshot{Version: version, DB: db, Views: views}, compID), nil
}

// SaveFile writes the snapshot to path atomically: the document goes to
// a temp file in the same directory, is fsynced, and replaces path with
// one rename — a crash mid-save can no longer truncate an existing
// catalog file to a torn prefix.
func SaveFile(path string, snap *Snapshot) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := Save(f, snap); err != nil {
		return cleanup(err)
	}
	// CreateTemp makes 0600 files; keep the historical os.Create mode so
	// other readers of the saved catalog are unaffected by the atomic
	// rename path.
	if err := f.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Durability of the rename itself: without the directory fsync a
	// crash can forget the rename, leaving the previous file — or, for a
	// first save, nothing — at path. A checkpoint that is not durable
	// must not report success, so the error propagates; excused are only
	// platforms that genuinely cannot fsync a directory (Windows rejects
	// it outright; some filesystems report EINVAL/ENOTSUP).
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening directory for fsync after rename: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("store: fsyncing directory after rename: %w", err)
	}
	return nil
}

// LoadFile reads a catalog from path.
func LoadFile(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
