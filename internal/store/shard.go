package store

import (
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync"
	"time"

	"worldsetdb/internal/obs"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/wsd"
)

// Component-sharded catalog: the decomposition's independence structure
// used as a physical partitioning key. Every relation has a home shard
// (FNV-1a of its name mod N), and a component belongs to the shards of
// the relations it touches. Each shard has its own writer lock, its own
// WAL segment (wal-<shard>.log) with its own group-commit queue, and
// its own portion of the merged snapshot, so commits touching disjoint
// shards execute, fsync and publish fully in parallel.
//
// # Routing
//
// A statement routes by the relations it references plus the relations
// co-touched by any component touching them (the same dependent-
// component closure the bounded evaluator in internal/isql uses): a
// commit that modifies a component touching relations R and S writes to
// both relations' factored content, so it must hold both homes. The
// closure is re-derived under the candidate locks until stable — the
// component topology around a relation only changes under its home
// shard's lock, so a stable derivation cannot be invalidated while the
// locks are held. Statements without routing information (DDL, CTAS,
// view changes, legacy DML — anything that can create components or
// reshape the schema) serialize against all shards.
//
// # Snapshots and epochs
//
// Readers stay wait-free: one atomic merged Snapshot spans all shards.
// Commits are assigned a global epoch (monotone per shard, since it is
// taken under the shard locks) and publish by diffing onto the evolving
// merged snapshot — replace the certain relations homed at the
// participant shards, replace or drop the touched components by their
// stable IDs (routed commits never create components: the native DML
// paths only rewrite or fold existing ones, and every creating
// statement is all-shard). Snapshot.Version is the highest published
// epoch; shardVers carries the per-shard read timestamps staged
// transactions validate against.
//
// # Cross-shard two-phase publish
//
// A multi-shard commit drains the participant queues while holding
// their locks, stages one record per participant segment (each carrying
// the full participant list), fsyncs them in parallel, then appends a
// commit marker to the coordinator segment (the lowest participant).
// Recovery (OpenSharded) merges all segments by epoch and discards
// cross-shard epochs whose marker is absent — a crash between staging
// and the marker rolls the transaction back on every shard, never on
// just some.
type shardState struct {
	mu  sync.Mutex // writer lock for commits touching this shard
	wal *WAL       // per-shard log segment; nil = not durable

	// head is the newest assigned (possibly unpublished) merged view
	// with this shard's portion current — single-shard commits chain on
	// it exactly like the unsharded catalog chains on its head. nil
	// means the published snapshot is current for this shard.
	hmu     sync.Mutex
	head    *Snapshot
	headVer uint64 // epoch of the newest assigned commit on this shard
	pubVer  uint64 // epoch of the newest published commit on this shard

	// Per-shard group-commit queue, the same leader/batch protocol as
	// the unsharded catalog's.
	qmu      sync.Mutex
	qcond    *sync.Cond
	queue    []*shardReq
	flushing bool

	// stats, guarded by hmu (cheap, already taken on every commit).
	commits   uint64
	conflicts uint64

	// queueHist measures group-commit queue wait on this shard (enqueue
	// to flush start). Zero-value usable, exported at isqld /metrics.
	queueHist obs.Histogram
}

// shardReq is one enqueued single-shard commit awaiting durability.
type shardReq struct {
	epoch   uint64
	baseVer uint64 // headVer the commit chained on (stale-abort check)
	db      *wsd.DecompDB
	wset    map[uint64]bool // component IDs the commit may replace
	stmts   []string
	delta   *CommitDelta // page-delta record for replay-free recovery
	done    chan error
	enq     time.Time // when the commit entered the queue
	trace   *obs.Span // committer's trace; the flush leader attaches spans
}

// NewSharded returns a catalog over db partitioned into nshards
// component shards. nshards <= 1 is the plain unsharded catalog.
func NewSharded(db *wsd.DecompDB, nshards int) *Catalog {
	c := New(db)
	c.shard(nshards)
	return c
}

// Reshard converts a freshly constructed catalog (no concurrent users
// yet — server/bench wiring, before serving starts) into an nshards-way
// sharded one. nshards <= 1 leaves it unsharded. The shard count is a
// runtime property, not a persisted one: Save/Load carry no shard
// layout, so the same catalog file can be reopened at any count.
func (c *Catalog) Reshard(nshards int) { c.shard(nshards) }

// shard converts a freshly constructed (or freshly recovered,
// single-threaded) catalog into an nshards-way sharded one: assigns
// component IDs, initializes the per-shard states and stamps the
// current snapshot with per-shard versions.
func (c *Catalog) shard(nshards int) {
	if nshards <= 1 {
		return
	}
	c.nshards = nshards
	c.shards = make([]*shardState, nshards)
	for i := range c.shards {
		sh := &shardState{}
		sh.qcond = sync.NewCond(&sh.qmu)
		c.shards[i] = sh
	}
	c.resetSharded(c.cur.Load())
}

// resetSharded republishes snap as the sharded catalog's current state
// with every shard at snap.Version. Single-threaded use only
// (construction and recovery).
func (c *Catalog) resetSharded(snap *Snapshot) {
	c.assignIDs(snap.DB)
	vers := make([]uint64, c.nshards)
	for i := range vers {
		vers[i] = snap.Version
	}
	ns := &Snapshot{Version: snap.Version, DB: snap.DB, Views: snap.Views,
		shardVers: vers, nshards: c.nshards, compID: c.compID.Load()}
	c.hmu.Lock()
	c.head = ns
	c.hmu.Unlock()
	c.cur.Store(ns)
	c.epoch.Store(snap.Version)
	for _, sh := range c.shards {
		sh.hmu.Lock()
		sh.head, sh.headVer, sh.pubVer = nil, snap.Version, snap.Version
		sh.hmu.Unlock()
	}
}

// Shards reports the catalog's shard count (1 when unsharded).
func (c *Catalog) Shards() int {
	if c.nshards <= 1 {
		return 1
	}
	return c.nshards
}

// ShardOf returns the home shard of a relation name.
func (c *Catalog) ShardOf(name string) int {
	if c.nshards <= 1 {
		return 0
	}
	return shardOfName(name, c.nshards)
}

func shardOfName(name string, nshards int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(nshards))
}

// SetShardLoggers attaches one WAL segment per shard. Must be called
// before concurrent use (cmd wiring attaches them once, after
// recovery), with exactly Shards() entries.
func (c *Catalog) SetShardLoggers(wals []*WAL) {
	if len(wals) != c.Shards() {
		panic(fmt.Sprintf("store: %d WAL segments for %d shards", len(wals), c.Shards()))
	}
	if c.nshards <= 1 {
		c.SetLogger(wals[0])
		return
	}
	for i, sh := range c.shards {
		sh.wal = wals[i]
	}
}

// refShards returns, sorted, the shards a statement referencing refs
// can read or write: the homes of the refs plus the homes of every
// relation co-touched by a component touching a ref.
func (c *Catalog) refShards(db *wsd.DecompDB, refs []string) []int {
	set := map[int]bool{}
	refIdx := map[int]bool{}
	for _, name := range refs {
		set[shardOfName(name, c.nshards)] = true
		if i := db.IndexOf(name); i >= 0 {
			refIdx[i] = true
		}
	}
	for _, comp := range db.Components {
		touchesRef := false
		var touched []int
		for _, a := range comp.Alternatives {
			for ri, r := range a.Rels {
				if r == nil || r.Len() == 0 {
					continue
				}
				touched = append(touched, ri)
				if refIdx[ri] {
					touchesRef = true
				}
			}
		}
		if touchesRef {
			for _, ri := range touched {
				set[shardOfName(db.Names[ri], c.nshards)] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// compIDsTouching returns the IDs of the components contributing at
// least one tuple to any of the given relation indices — the components
// a commit referencing those relations is allowed to replace.
func compIDsTouching(db *wsd.DecompDB, refIdx map[int]bool) map[uint64]bool {
	out := map[uint64]bool{}
	for _, comp := range db.Components {
		for _, a := range comp.Alternatives {
			hit := false
			for ri, r := range a.Rels {
				if refIdx[ri] && r != nil && r.Len() > 0 {
					out[comp.ID] = true
					hit = true
					break
				}
			}
			if hit {
				break
			}
		}
	}
	return out
}

func (c *Catalog) lockShards(ps []int) {
	for _, p := range ps {
		c.shards[p].mu.Lock()
	}
}

func (c *Catalog) unlockShards(ps []int) {
	for i := len(ps) - 1; i >= 0; i-- {
		c.shards[ps[i]].mu.Unlock()
	}
}

func (c *Catalog) allShards() []int {
	all := make([]int, c.nshards)
	for i := range all {
		all[i] = i
	}
	return all
}

// lockRoute locks the shards refs route to, re-deriving the route under
// the locks until it is stable. Component topology around a relation
// only changes while its home shard's lock is held, so once the
// re-derivation adds nothing outside the held set, the route cannot be
// invalidated until the locks are released. Returns the sorted locked
// set; escalates to all shards if the route refuses to converge.
func (c *Catalog) lockRoute(refs []string) []int {
	ps := map[int]bool{}
	for _, name := range refs {
		ps[shardOfName(name, c.nshards)] = true
	}
	hold := setToSorted(ps)
	for try := 0; ; try++ {
		if try >= 4 || len(hold) == c.nshards {
			hold = c.allShards()
			c.lockShards(hold)
			return hold
		}
		c.lockShards(hold)
		again := c.refShards(c.cur.Load().DB, refs)
		grew := false
		for _, p := range again {
			if !ps[p] {
				ps[p] = true
				grew = true
			}
		}
		if !grew {
			return hold
		}
		c.unlockShards(hold)
		hold = setToSorted(ps)
	}
}

func setToSorted(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// UpdateRouted is Update with routing information: refs names every
// relation the transaction can read or write. Statements whose route
// resolves to one shard take that shard's write path (group commit on
// its WAL segment); statements spanning shards commit through the
// two-phase publish; refs == nil (no routing information) serializes
// against all shards. On an unsharded catalog it is exactly Update.
func (c *Catalog) UpdateRouted(refs []string, fn func(*Tx) error) error {
	if c.nshards <= 1 {
		return c.Update(fn)
	}
	if refs == nil {
		return c.updateAll(fn)
	}
	ps := c.lockRoute(refs)
	if len(ps) == 1 {
		return c.updateShard(ps[0], refs, fn)
	}
	return c.updateMulti(ps, refs, fn)
}

// shardHead returns the base the next commit on sh must build on: the
// shard's assigned head when a group commit is in flight, the published
// snapshot otherwise. Callers hold sh.mu.
func (c *Catalog) shardHead(sh *shardState) *Snapshot {
	sh.hmu.Lock()
	defer sh.hmu.Unlock()
	if sh.head != nil {
		return sh.head
	}
	return c.cur.Load()
}

// updateShard runs a single-shard commit. Called with shard si's lock
// held; releases it on every path.
func (c *Catalog) updateShard(si int, refs []string, fn func(*Tx) error) error {
	sh := c.shards[si]
	locked := true
	defer func() {
		if locked {
			sh.mu.Unlock()
		}
	}()
	base := c.shardHead(sh)
	tx := &Tx{base: base}
	if err := fn(tx); err != nil {
		return err
	}
	if tx.views != nil {
		// Routed statements never change views; a caller that does has
		// mis-routed (views are global) — escalate rather than tear.
		sh.mu.Unlock()
		locked = false
		return c.updateAll(fn)
	}
	if tx.db == nil {
		return nil
	}
	refIdx := map[int]bool{}
	for _, name := range refs {
		if i := base.DB.IndexOf(name); i >= 0 {
			refIdx[i] = true
		}
	}
	wset := compIDsTouching(base.DB, refIdx)
	done, err := c.enqueueShard(si, base, tx.db, wset, tx.stmts, tx.trace)
	if err != nil {
		return err
	}
	sh.mu.Unlock()
	locked = false
	if done == nil {
		return nil // published inline (not durable)
	}
	c.flushShard(si)
	return <-done
}

// enqueueShard assigns the commit's epoch, advances the shard head and
// either publishes inline (no WAL) or enqueues for the shard's group
// commit. Called with shard si's lock held. A nil done channel with nil
// error means the commit is already published.
func (c *Catalog) enqueueShard(si int, base *Snapshot, db *wsd.DecompDB, wset map[uint64]bool, stmts []string, trace *obs.Span) (chan error, error) {
	sh := c.shards[si]
	if sh.wal != nil && len(stmts) == 0 {
		return nil, fmt.Errorf("store: refusing to log a commit with no statement records (writer did not call Tx.Log)")
	}
	epoch := c.epoch.Add(1)
	vers := append([]uint64{}, base.shardVers...)
	vers[si] = epoch
	head := &Snapshot{Version: epoch, DB: db, Views: base.Views,
		shardVers: vers, nshards: c.nshards, compID: c.compID.Load()}
	req := &shardReq{epoch: epoch, db: db, wset: wset, stmts: stmts,
		enq: time.Now(), trace: trace}
	if sh.wal != nil && !c.noDeltas {
		req.delta = diffShard(base.DB, db, c.nshards, []int{si}, wset)
	}
	trace.SetInt("shard", int64(si))
	sh.hmu.Lock()
	req.baseVer = sh.headVer
	sh.head, sh.headVer = head, epoch
	sh.hmu.Unlock()
	if sh.wal == nil {
		c.publishShard(si, req)
		return nil, nil
	}
	req.done = make(chan error, 1)
	sh.qmu.Lock()
	sh.queue = append(sh.queue, req)
	sh.qmu.Unlock()
	return req.done, nil
}

// flushShard elects a group-commit leader for one shard — the same
// leader/batch/handoff protocol as the unsharded catalog's flush, per
// shard, so disjoint shards fsync concurrently.
func (c *Catalog) flushShard(si int) {
	sh := c.shards[si]
	sh.qmu.Lock()
	if sh.flushing || len(sh.queue) == 0 {
		sh.qmu.Unlock()
		return
	}
	sh.flushing = true
	batch := sh.queue
	sh.queue = nil
	sh.qmu.Unlock()
	c.flushShardBatch(si, batch)
	sh.qmu.Lock()
	sh.flushing = false
	sh.qcond.Broadcast()
	if len(sh.queue) > 0 {
		go c.flushShard(si)
	}
	sh.qmu.Unlock()
}

// flushShardBatch persists one drained batch to the shard's segment
// with a single fsync and publishes its epochs in order. Requests
// staged on an aborted chain (their base epoch no longer matches the
// published chain) are failed without being written.
func (c *Catalog) flushShardBatch(si int, batch []*shardReq) {
	sh := c.shards[si]
	sh.hmu.Lock()
	expect := sh.pubVer
	sh.hmu.Unlock()
	n := 0
	for n < len(batch) && batch[n].baseVer == expect {
		expect = batch[n].epoch
		n++
	}
	ok, stale := batch[:n], batch[n:]
	if len(ok) > 0 {
		recs := make([]WALRecord, len(ok))
		for i, r := range ok {
			recs[i] = WALRecord{Version: r.epoch, Stmts: r.stmts, Shard: si, Delta: r.delta}
		}
		flushStart := time.Now()
		err := sh.wal.AppendBatch(recs)
		flushDur := time.Since(flushStart)
		if err != nil {
			c.abortShard(si, batch, fmt.Errorf("store: logging shard %d commit batch e%d..e%d: %w",
				si, recs[0].Version, recs[len(recs)-1].Version, err))
			return
		}
		for _, r := range ok {
			sh.queueHist.Observe(flushStart.Sub(r.enq))
			if r.trace != nil {
				// The done-channel send below orders these attaches before
				// the committer reads its trace.
				r.trace.ChildSpan("wal.queue", r.enq, flushStart.Sub(r.enq))
				r.trace.ChildSpan("wal.fsync", flushStart, flushDur).
					SetInt("batch", int64(len(ok)))
			}
			c.publishShard(si, r)
			r.done <- nil
		}
	}
	if len(stale) > 0 {
		c.abortShard(si, stale, fmt.Errorf("store: commit aborted: it was staged on a shard version whose log write failed"))
	}
}

// abortShard fails queued commits on one shard after a log-write
// failure and rolls the shard head back to its published state.
func (c *Catalog) abortShard(si int, failed []*shardReq, err error) {
	sh := c.shards[si]
	sh.hmu.Lock()
	sh.head, sh.headVer = nil, sh.pubVer
	sh.hmu.Unlock()
	sh.qmu.Lock()
	trailing := sh.queue
	sh.queue = nil
	sh.qmu.Unlock()
	for _, r := range failed {
		if r.done != nil {
			r.done <- err
		}
	}
	for _, r := range trailing {
		if r.done != nil {
			r.done <- err
		}
	}
}

// publishShard merges one single-shard commit into the reader-visible
// snapshot: participant certain relations and wset components come from
// the commit, everything else from the current snapshot.
func (c *Catalog) publishShard(si int, req *shardReq) {
	c.pub.Lock()
	cur := c.cur.Load()
	db := c.applyShardDiff(cur.DB, req.db, []int{si}, req.wset)
	c.storeMerged(cur, db, cur.Views, []int{si}, req.epoch)
	c.pub.Unlock()
	sh := c.shards[si]
	sh.hmu.Lock()
	sh.pubVer = req.epoch
	if sh.headVer == req.epoch {
		sh.head = nil // chain drained: next base is the merged snapshot
	}
	sh.commits++
	sh.hmu.Unlock()
}

// storeMerged publishes a merged snapshot. Caller holds pub.
func (c *Catalog) storeMerged(cur *Snapshot, db *wsd.DecompDB, views map[string]string, ps []int, epoch uint64) {
	vers := append([]uint64{}, cur.shardVers...)
	for _, p := range ps {
		vers[p] = epoch
	}
	ver := cur.Version
	if epoch > ver {
		ver = epoch
	}
	c.cur.Store(&Snapshot{Version: ver, DB: db, Views: views,
		shardVers: vers, nshards: c.nshards, compID: c.compID.Load()})
}

// applyShardDiff overlays a commit's staged decomposition onto the
// current merged one: certain relations homed at a participant shard
// and components in wset (by stable ID) come from next; everything else
// keeps the current snapshot's pointers. Routed commits never create
// components, so the overlay only replaces or drops — the merged
// component order is the current order with touched entries substituted
// in place, which keeps publication order-independent across shards.
func (c *Catalog) applyShardDiff(base, next *wsd.DecompDB, ps []int, wset map[uint64]bool) *wsd.DecompDB {
	inP := map[int]bool{}
	for _, p := range ps {
		inP[p] = true
	}
	out := &wsd.DecompDB{
		Names:   base.Names,
		Schemas: base.Schemas,
		Certain: make([]*relation.Relation, len(base.Certain)),
	}
	for i := range base.Certain {
		if inP[shardOfName(base.Names[i], c.nshards)] {
			out.Certain[i] = next.Certain[i]
		} else {
			out.Certain[i] = base.Certain[i]
		}
	}
	repl := map[uint64]wsd.DBComponent{}
	for _, comp := range next.Components {
		if wset[comp.ID] {
			repl[comp.ID] = comp
		}
	}
	out.Components = make([]wsd.DBComponent, 0, len(base.Components))
	for _, comp := range base.Components {
		if wset[comp.ID] {
			if nc, hit := repl[comp.ID]; hit {
				out.Components = append(out.Components, nc)
			}
			continue // absent in next: the commit folded or emptied it
		}
		out.Components = append(out.Components, comp)
	}
	return out
}

// drain blocks until no group commit is queued or mid-flush on the
// shard. Callers hold sh.mu, so nothing new can be enqueued meanwhile;
// once drained, the shard's head is nil and the published snapshot is
// current for it.
func (sh *shardState) drain() {
	sh.qmu.Lock()
	for sh.flushing || len(sh.queue) > 0 {
		sh.qcond.Wait()
	}
	sh.qmu.Unlock()
}

// updateMulti runs a cross-shard commit over the locked participant set
// ps (1 < len(ps)). Called with the locks held; releases them.
func (c *Catalog) updateMulti(ps []int, refs []string, fn func(*Tx) error) error {
	defer c.unlockShards(ps)
	for _, p := range ps {
		c.shards[p].drain()
	}
	base := c.cur.Load()
	tx := &Tx{base: base}
	if err := fn(tx); err != nil {
		return err
	}
	if tx.views != nil {
		return fmt.Errorf("store: routed commit staged view changes (views are global; commit with refs == nil)")
	}
	if tx.db == nil {
		return nil
	}
	refIdx := map[int]bool{}
	for _, name := range refs {
		if i := base.DB.IndexOf(name); i >= 0 {
			refIdx[i] = true
		}
	}
	wset := compIDsTouching(base.DB, refIdx)
	epoch := c.epoch.Add(1)
	var delta *CommitDelta
	if c.shards[ps[0]].wal != nil && !c.noDeltas {
		delta = diffShard(base.DB, tx.db, c.nshards, ps, wset)
	}
	if err := c.stageAndMark(ps, epoch, tx.stmts, delta, tx.trace); err != nil {
		return err
	}
	c.pub.Lock()
	cur := c.cur.Load()
	db := c.applyShardDiff(cur.DB, tx.db, ps, wset)
	c.storeMerged(cur, db, cur.Views, ps, epoch)
	c.pub.Unlock()
	c.finishShards(ps, epoch)
	return nil
}

// updateAll runs a commit serialized against every shard: DDL, CTAS,
// view changes and legacy DML — anything that can create components,
// reshape the schema or read the whole catalog. The staged state
// replaces the merged snapshot wholesale; new components get IDs here.
func (c *Catalog) updateAll(fn func(*Tx) error) error {
	all := c.allShards()
	c.lockShards(all)
	defer c.unlockShards(all)
	for _, p := range all {
		c.shards[p].drain()
	}
	base := c.cur.Load()
	tx := &Tx{base: base}
	if err := fn(tx); err != nil {
		return err
	}
	if tx.db == nil && tx.views == nil {
		return nil
	}
	db := tx.DB()
	// IDs are assigned before staging so the logged delta names the same
	// component IDs recovery will re-derive.
	c.assignIDs(db)
	epoch := c.epoch.Add(1)
	next := &Snapshot{Version: epoch, DB: db, Views: tx.Views(),
		nshards: c.nshards, compID: c.compID.Load()}
	var delta *CommitDelta
	if c.shards[all[0]].wal != nil && !c.noDeltas {
		delta = diffSnapshots(base, next)
	}
	if err := c.stageAndMark(all, epoch, tx.stmts, delta, tx.trace); err != nil {
		return err
	}
	c.pub.Lock()
	vers := make([]uint64, c.nshards)
	for i := range vers {
		vers[i] = epoch
	}
	next.shardVers = vers
	c.cur.Store(next)
	c.pub.Unlock()
	c.finishShards(all, epoch)
	return nil
}

// finishShards advances participant shards past a published cross-shard
// epoch. Caller holds the participant locks.
func (c *Catalog) finishShards(ps []int, epoch uint64) {
	for _, p := range ps {
		sh := c.shards[p]
		sh.hmu.Lock()
		sh.head, sh.headVer, sh.pubVer = nil, epoch, epoch
		sh.commits++
		sh.hmu.Unlock()
	}
}

// stageAndMark is the two-phase durability protocol for a cross-shard
// commit: stage one record per participant segment (fsynced in
// parallel, each carrying the full participant list), then append the
// commit marker to the coordinator segment — the lowest participant.
// Recovery discards staged cross-shard epochs without their marker, so
// a failure (or crash) anywhere before the marker aborts the commit on
// every shard; after the marker it is durable on every shard.
func (c *Catalog) stageAndMark(ps []int, epoch uint64, stmts []string, delta *CommitDelta, trace *obs.Span) error {
	if c.shards[ps[0]].wal == nil {
		return nil
	}
	if len(stmts) == 0 {
		return fmt.Errorf("store: refusing to log a commit with no statement records (writer did not call Tx.Log)")
	}
	stage := trace.Child("txn.2pc.stage").SetInt("participants", int64(len(ps)))
	var wg sync.WaitGroup
	errs := make([]error, len(ps))
	for i, p := range ps {
		wg.Add(1)
		go func(i, p int) {
			defer wg.Done()
			errs[i] = c.shards[p].wal.AppendBatch([]WALRecord{
				{Version: epoch, Stmts: stmts, Shard: p, Parts: ps, Delta: delta}})
		}(i, p)
	}
	wg.Wait()
	stage.End()
	for _, err := range errs {
		if err != nil {
			// Staged records without a marker are discarded by recovery;
			// nothing needs undoing on the shards that did fsync.
			return fmt.Errorf("store: staging cross-shard commit e%d: %w", epoch, err)
		}
	}
	mark := trace.Child("txn.2pc.marker").SetInt("coordinator", int64(ps[0]))
	if err := c.shards[ps[0]].wal.AppendBatch([]WALRecord{
		{Version: epoch, Shard: ps[0], Parts: ps, Marker: true}}); err != nil {
		mark.End()
		return fmt.Errorf("store: writing commit marker for e%d: %w", epoch, err)
	}
	mark.End()
	return nil
}

// waitPublishedSharded blocks until the merged snapshot reaches version
// v or every shard's group-commit queue goes idle (the commit that
// would have produced v was aborted).
func (c *Catalog) waitPublishedSharded(v uint64) {
	for {
		if c.cur.Load().Version >= v {
			return
		}
		busy := false
		for _, sh := range c.shards {
			sh.qmu.Lock()
			if sh.flushing || len(sh.queue) > 0 {
				busy = true
				if c.cur.Load().Version < v {
					sh.qcond.Wait() // woken after every flushed batch
				}
			}
			sh.qmu.Unlock()
			if busy {
				break
			}
		}
		if !busy {
			return
		}
	}
}

// CheckpointAll persists the merged snapshot as the new recovery base
// and truncates every shard segment, with all shard locks held and all
// queues drained so no commit can land between the snapshot read and
// the truncates. The unsharded catalog keeps using Checkpoint.
//
// With paging enabled the base is one page file per shard (the main
// file plus <wsdPath>.s<i> side files), each written incrementally —
// only shards whose homed state changed rewrite any pages. Side files
// commit before the main file, so a crash mid-checkpoint leaves either
// the old base (main file not yet renamed/advanced) or a mixed set of
// per-shard epochs that recovery merges and heals from the WALs.
func (c *Catalog) CheckpointAll(wsdPath string) error {
	if c.nshards <= 1 {
		return fmt.Errorf("store: CheckpointAll requires a sharded catalog (use Checkpoint)")
	}
	all := c.allShards()
	c.lockShards(all)
	defer c.unlockShards(all)
	for _, p := range all {
		c.shards[p].drain()
	}
	snap := c.cur.Load()
	if len(c.pagers) == c.nshards && c.pagers[0] != nil && c.pagers[0].Path() == wsdPath {
		if err := c.checkpointPaged(snap, wsdPath); err != nil {
			return err
		}
	} else {
		if err := SaveFile(wsdPath, snap); err != nil {
			return fmt.Errorf("store: writing checkpoint: %w", err)
		}
	}
	for _, sh := range c.shards {
		if sh.wal == nil {
			continue
		}
		if err := sh.wal.reset(); err != nil {
			return err
		}
		sh.wal.noteCheckpoint(snap.Version)
	}
	return nil
}

// checkpointPaged writes the sharded snapshot across the per-shard page
// files: side shards first (in parallel — they are independent files),
// the coordinating main file last. Every file records the full global
// version, so recovery can tell exactly which files a torn checkpoint
// advanced. Called with all shard locks held and queues drained.
func (c *Catalog) checkpointPaged(snap *Snapshot, wsdPath string) error {
	allNoop := true
	for _, ps := range c.pagers {
		if ps.Version() != snap.Version {
			allNoop = false
			break
		}
	}
	if allNoop {
		// Nothing committed since the last checkpoint on any shard: the
		// on-disk base already is this state. Zero writes.
		for _, ps := range c.pagers {
			ps.NoteNoop()
		}
		return nil
	}
	slices := ckptSlices(snap, c.nshards, c.compID.Load())
	var wg sync.WaitGroup
	errs := make([]error, c.nshards)
	for i := 1; i < c.nshards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.pagers[i].WriteCheckpoint(slices[i])
		}(i)
	}
	wg.Wait()
	for i := 1; i < c.nshards; i++ {
		if errs[i] != nil {
			return fmt.Errorf("store: writing shard %d page checkpoint: %w", i, errs[i])
		}
	}
	if err := c.pagers[0].WriteCheckpoint(slices[0]); err != nil {
		return fmt.Errorf("store: writing shard 0 page checkpoint: %w", err)
	}
	// A previous run at a higher shard count can leave side files beyond
	// ours; they are stale the moment this full-set checkpoint commits.
	for i := c.nshards; ; i++ {
		p := shardCkptPath(wsdPath, i)
		if _, err := os.Stat(p); err != nil {
			break
		}
		os.Remove(p)
	}
	return nil
}

// CompShards maps each component of the snapshot's decomposition to its
// home shard — the shard of the lowest-indexed relation it contributes
// tuples to (shard 0 for a component contributing nowhere). nil when
// the snapshot is not from a sharded catalog; query execution uses the
// map to align its parallel scan chunks with shard boundaries
// (wsdexec.Options.Shards).
func (s *Snapshot) CompShards() []int {
	if s.nshards <= 1 {
		return nil
	}
	out := make([]int, len(s.DB.Components))
	for ci, c := range s.DB.Components {
		home := 0
		first := -1
		for _, a := range c.Alternatives {
			for ri, r := range a.Rels {
				if r == nil || r.Len() == 0 {
					continue
				}
				if first < 0 || ri < first {
					first = ri
				}
			}
		}
		if first >= 0 {
			home = shardOfName(s.DB.Names[first], s.nshards)
		}
		out[ci] = home
	}
	return out
}

// commitSharded publishes a staged transaction on a sharded catalog
// with shard-level first-committer-wins: the shards the transaction's
// reads and writes route to are locked and validated against the
// transaction's per-shard read timestamps (base.shardVers); commits
// that touched disjoint shards since Begin do not conflict. Validation
// happens under the locks at the serialization point, covering reads as
// well as writes, so a successful commit is equivalent to running the
// whole transaction at its commit epoch.
func (s *Staged) commitSharded() error {
	c := s.cat
	all := s.all || len(s.writes) == 0 // no routing info (direct Staged.Update): conservative
	var ps []int
	if all {
		ps = c.allShards()
		c.lockShards(ps)
	} else {
		refs := make([]string, 0, len(s.reads)+len(s.writes))
		for r := range s.reads {
			refs = append(refs, r)
		}
		for r := range s.writes {
			if !s.reads[r] {
				refs = append(refs, r)
			}
		}
		ps = c.lockRoute(refs)
	}
	// Validate: every touched shard must still be at the epoch the
	// transaction read it at. headVer (not pubVer) — a conflicting
	// commit awaiting its group-commit fsync already wins.
	curV := c.cur.Load().Version
	for _, p := range ps {
		sh := c.shards[p]
		sh.hmu.Lock()
		hv := sh.headVer
		if hv != s.base.shardVers[p] {
			sh.conflicts++
			sh.hmu.Unlock()
			c.unlockShards(ps)
			// Wait out the winner's group-commit flush before reporting
			// the conflict. The retry re-begins from the published
			// snapshot; returning while the winning epoch is still queued
			// would make the retried transaction conflict against the
			// same head again — a validation spin instead of one wait for
			// the in-flight fsync. (The unsharded path gets this from
			// WaitPublished on the global version, which cannot see
			// per-shard heads.)
			sh.drain()
			if hv > curV {
				curV = hv
			}
			return &ConflictError{Base: s.base.Version, Current: curV}
		}
		sh.hmu.Unlock()
	}
	if all {
		defer c.unlockShards(ps)
		for _, p := range ps {
			c.shards[p].drain()
		}
		db := s.cur.DB
		c.assignIDs(db)
		epoch := c.epoch.Add(1)
		next := &Snapshot{Version: epoch, DB: db, Views: s.cur.Views,
			nshards: c.nshards, compID: c.compID.Load()}
		var delta *CommitDelta
		if c.shards[ps[0]].wal != nil && !c.noDeltas {
			delta = diffSnapshots(c.cur.Load(), next)
		}
		if err := c.stageAndMark(ps, epoch, s.stmts, delta, nil); err != nil {
			return err
		}
		c.pub.Lock()
		vers := make([]uint64, c.nshards)
		for i := range vers {
			vers[i] = epoch
		}
		next.shardVers = vers
		c.cur.Store(next)
		c.pub.Unlock()
		c.finishShards(ps, epoch)
		return nil
	}
	wrefs := make([]string, 0, len(s.writes))
	wIdx := map[int]bool{}
	for r := range s.writes {
		wrefs = append(wrefs, r)
		if i := s.base.DB.IndexOf(r); i >= 0 {
			wIdx[i] = true
		}
	}
	wset := compIDsTouching(s.base.DB, wIdx)
	wps := c.refShards(s.base.DB, wrefs)
	if len(wps) == 1 {
		si := wps[0]
		done, err := c.enqueueShard(si, c.shardHead(c.shards[si]), s.cur.DB, wset, s.stmts, nil)
		c.unlockShards(ps)
		if err != nil {
			return err
		}
		if done == nil {
			return nil
		}
		c.flushShard(si)
		return <-done
	}
	defer c.unlockShards(ps)
	for _, p := range wps {
		c.shards[p].drain()
	}
	epoch := c.epoch.Add(1)
	var delta *CommitDelta
	if c.shards[wps[0]].wal != nil && !c.noDeltas {
		delta = diffShard(s.base.DB, s.cur.DB, c.nshards, wps, wset)
	}
	if err := c.stageAndMark(wps, epoch, s.stmts, delta, nil); err != nil {
		return err
	}
	c.pub.Lock()
	cur := c.cur.Load()
	db := c.applyShardDiff(cur.DB, s.cur.DB, wps, wset)
	c.storeMerged(cur, db, cur.Views, wps, epoch)
	c.pub.Unlock()
	c.finishShards(wps, epoch)
	return nil
}

// ShardStat is one shard's commit statistics.
type ShardStat struct {
	Shard     int    `json:"shard"`
	Version   uint64 `json:"version"`   // newest published epoch
	Commits   uint64 `json:"commits"`   // commits published
	Conflicts uint64 `json:"conflicts"` // staged commits refused validation
	Pending   int    `json:"pending"`   // queued for group commit
	Syncs     uint64 `json:"syncs"`     // WAL fsyncs on this segment
}

// ShardObs exposes one shard's latency histograms: group-commit queue
// wait and WAL fsync. Fsync is nil when the shard is not durable.
type ShardObs struct {
	Shard int
	Queue *obs.Histogram
	Fsync *obs.Histogram
}

// ObsShards returns the live latency histograms per shard (one entry
// for the whole catalog when unsharded). The histograms are the
// catalog's own — concurrent commits keep updating them — so callers
// snapshot before exporting.
func (c *Catalog) ObsShards() []ShardObs {
	if c.nshards <= 1 {
		o := ShardObs{Shard: 0, Queue: &c.queueHist}
		if w, ok := c.logger.(*WAL); ok {
			o.Fsync = w.FsyncHist()
		}
		return []ShardObs{o}
	}
	out := make([]ShardObs, c.nshards)
	for i, sh := range c.shards {
		out[i] = ShardObs{Shard: i, Queue: &sh.queueHist, Fsync: sh.wal.FsyncHist()}
	}
	return out
}

// ShardStats reports per-shard commit statistics (one entry for the
// whole catalog when unsharded).
func (c *Catalog) ShardStats() []ShardStat {
	if c.nshards <= 1 {
		st := ShardStat{Shard: 0, Version: c.cur.Load().Version, Pending: c.PendingCommits()}
		if w, ok := c.logger.(*WAL); ok && w != nil {
			st.Syncs = w.Syncs()
		}
		return []ShardStat{st}
	}
	out := make([]ShardStat, c.nshards)
	for i, sh := range c.shards {
		sh.hmu.Lock()
		out[i] = ShardStat{Shard: i, Version: sh.pubVer, Commits: sh.commits, Conflicts: sh.conflicts}
		sh.hmu.Unlock()
		sh.qmu.Lock()
		out[i].Pending = len(sh.queue)
		sh.qmu.Unlock()
		if sh.wal != nil {
			out[i].Syncs = sh.wal.Syncs()
		}
	}
	return out
}
